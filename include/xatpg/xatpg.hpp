// Umbrella header for the public xatpg API.
//
// Out-of-tree consumers use these headers only (installed under
// <prefix>/include/xatpg and exported via find_package(xatpg)); everything
// under src/ is internal and unversioned.
#pragma once

#include "xatpg/error.hpp"     // IWYU pragma: export
#include "xatpg/options.hpp"   // IWYU pragma: export
#include "xatpg/progress.hpp"  // IWYU pragma: export
#include "xatpg/session.hpp"   // IWYU pragma: export
#include "xatpg/types.hpp"     // IWYU pragma: export
