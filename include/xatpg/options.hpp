// Public option types of the xatpg API: BDD variable ordering and dynamic
// reordering knobs, fault-simulation caps, and the full ATPG option block
// with boundary validation.
//
// Canonical definitions — library internals include this header (see
// xatpg/types.hpp for the policy).  AtpgOptions::validate() is the single
// gate for degenerate values: the Session facade surfaces its result as a
// typed OptionError, and the legacy AtpgEngine constructor rejects invalid
// options loudly (CheckError) instead of silently accepting them.
#pragma once

#include <cstdint>

#include "xatpg/error.hpp"

namespace xatpg {

/// Static BDD variable layout for the symbolic encoding's three variable
/// groups (present / next / auxiliary state).
enum class VarOrder {
  Interleaved,         ///< x_i, y_i, w_i adjacent per signal (default)
  Blocked,             ///< all x, then all y, then all w
  ReverseInterleaved,  ///< interleaved, signals in reverse netlist order
  Sifted,              ///< interleaved start + dynamic group sifting
};

[[nodiscard]] const char* var_order_name(VarOrder order);

/// Dynamic (Rudell sifting) reordering policy for a BDD manager.
struct ReorderPolicy {
  /// Auto-reorder at public operation entry once the live-node count
  /// crosses the trigger.  Explicit sift() calls work regardless.
  bool enabled = false;
  /// First auto-sift watermark (live nodes after GC).
  std::size_t trigger_nodes = 1024;
  /// A sifted block's walk aborts in a direction once the table grows past
  /// max_growth x the best size seen for that block (transient bound; the
  /// accepted position is never worse than the starting one).
  double max_growth = 1.2;
  /// After an auto-sift the next trigger is
  /// max(trigger_nodes, size_after * trigger_growth).
  double trigger_growth = 2.0;
};

/// Caps for the exact consistent-set fault simulator.
struct FaultSimOptions {
  std::size_t k = 24;            ///< settle bound per test cycle
  std::size_t candidate_cap = 256;
};

struct AtpgOptions {
  std::size_t k = 24;                    ///< settle bound (TCR_k)
  VarOrder order = VarOrder::Interleaved;
  /// Dynamic BDD reordering for the symbolic shards.  Every worker shard
  /// (and the engine's own context) gets the same policy and reorders
  /// independently whenever its own tables cross the trigger; results stay
  /// byte-identical across thread counts and orders because every symbolic
  /// query the engine consumes is canonicalized to be order-independent.
  ReorderPolicy reorder{};
  std::size_t random_budget = 512;       ///< vectors spent in random TPG
  std::size_t random_walk_len = 48;      ///< restart interval (reset pulses)
  std::uint64_t seed = 1;
  std::size_t diff_depth = 16;           ///< differentiation BFS depth
  std::size_t diff_node_cap = 20000;     ///< differentiation BFS nodes
  /// Wall-clock FALLBACK budget per fault for the 3-phase search.  The
  /// binding per-fault budget is deterministic — the differentiation BFS is
  /// cut off by diff_depth / diff_node_cap, which depend only on (circuit,
  /// options, fault) — so outcomes are byte-identical across machines,
  /// load, and thread counts.  0 (the default) disables the wall clock
  /// entirely.  A positive value arms a last-resort timeout for exploratory
  /// runs with the deterministic caps raised: a search that trips it is
  /// abandoned (fault left undetected, counted as gave_up) and the engine
  /// logs a loud warning, because any run that trips it is machine-
  /// dependent and its results must not be treated as reproducible.
  double per_fault_seconds = 0;
  FaultSimOptions sim;
  /// Phase 1+2 enabled (ablation: false forces pure differentiation BFS
  /// from reset for every fault).
  bool use_activation = true;
  /// A-priori undetectable-fault classification (§6's proposed
  /// improvement): before searching, prove a fault redundant when its
  /// faulted line never carries the opposite of the stuck value in *any*
  /// state a legal test session can pass through.  Sound; skips the
  /// 3-phase search for proven faults.
  bool classify_undetectable = false;
  /// Worker threads for the fault-parallel 3-phase search.  1 = run on the
  /// engine's own symbolic context only; 0 = one worker per hardware
  /// thread.  Outcomes and sequences are byte-identical for every value.
  std::size_t threads = 1;

  /// Hard ceiling for `threads` (beyond it a value is a typo, not a fleet).
  static constexpr std::size_t kMaxThreads = 4096;

  /// Boundary validation: rejects the degenerate values every layer above
  /// used to accept silently (k = 0 makes every vector "oscillate",
  /// diff_depth = 0 disables phase 3 entirely, per_fault_seconds < 0 or
  /// NaN is meaningless — 0 means "wall clock disabled", threads > 4096 is
  /// a typo).  Returns an OptionError listing *all* violations.  The
  /// Session facade calls this for every run; AtpgEngine's constructor
  /// enforces it loudly.
  [[nodiscard]] Expected<void> validate() const;
};

}  // namespace xatpg
