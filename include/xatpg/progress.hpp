// Streaming run model of the public xatpg API: phase transitions, per-fault
// resolution events, periodic progress snapshots (including per-shard BDD
// statistics), and cooperative cancellation.
//
// Observer contract
// -----------------
//  * Every callback is invoked on the thread that called Session::run /
//    AtpgEngine::run — never from a worker thread — so observers need no
//    locking of their own state.
//  * Callbacks fire between faults (and between work blocks during the
//    parallel 3-phase fan-out); keep them cheap, they sit on the run's
//    critical path.
//  * on_fault_resolved fires exactly once per fault whose outcome becomes
//    final during the run (covered by any phase, or proven redundant);
//    faults left undetected get no event.  Events arrive in deterministic
//    order for a fixed fault list, independent of the thread count.  One
//    caveat for incremental runs (add_faults): a FaultSim event for a fault
//    whose 3-phase search has not run yet reports the sequence that covered
//    it at that moment; the final result may attribute an *earlier*
//    sequence once the search status is known (coverage itself is final).
//  * A CancelToken may be fired from any thread (it is a thread-safe shared
//    flag), including from inside an observer callback.  The run stops at
//    the next between-faults checkpoint and returns the deterministic
//    partial result (AtpgResult::cancelled == true).
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "xatpg/types.hpp"

namespace xatpg {

/// numerator / denominator with a uniform guard: 0 when the denominator is
/// zero or the quotient is non-finite.  Every derived rate in the public
/// surface (cache hit rate, sweep speedup/efficiency) goes through this so
/// zero-work runs and degenerate inputs can never produce NaN/inf.
[[nodiscard]] inline double safe_ratio(double numerator, double denominator) {
  if (denominator == 0.0) return 0.0;
  const double ratio = numerator / denominator;
  return std::isfinite(ratio) ? ratio : 0.0;
}

/// Cooperative cancellation handle: a copyable reference to a shared flag.
/// Copies observe the same flag; request_cancel() is safe from any thread.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }
  void reset() noexcept { flag_->store(false, std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Phases of one run, in order (Classify is skipped unless
/// AtpgOptions::classify_undetectable is set).
enum class RunPhase : std::uint8_t {
  RandomTpg,   ///< random walks on the explicit CSSG
  Classify,    ///< a-priori undetectable-fault classification
  ThreePhase,  ///< fault-parallel 3-phase search + deterministic merge
  Done,        ///< run finished (also fired after a cancelled run)
};

constexpr const char* run_phase_name(RunPhase phase) {
  switch (phase) {
    case RunPhase::RandomTpg: return "random-tpg";
    case RunPhase::Classify: return "classify";
    case RunPhase::ThreePhase: return "three-phase";
    case RunPhase::Done: return "done";
  }
  return "?";
}

/// BDD accounting for one symbolic shard.  Shard 0 is the engine's own
/// context (the main thread's worker); shards 1..N-1 are the worker shards,
/// reported only once they have been built (lazy workers that never claim a
/// fault block stay at zero).
struct ShardBddStats {
  std::size_t shard = 0;
  /// Resident nodes this shard can reference: the frozen shared base arena
  /// plus its private delta arena (live + uncollected).
  std::size_t live_nodes = 0;
  /// Resident-node watermark: base_nodes + delta_peak.  NOTE: the base
  /// arena is SHARED — summing peak_nodes across shards counts it once per
  /// shard.  Corpus-level totals must use base_nodes once + Σ delta_peak.
  std::size_t peak_nodes = 0;
  /// Nodes in the frozen shared base arena this shard's delta resolves
  /// against (identical for every shard of one engine; 0 for a monolithic
  /// manager).
  std::size_t base_nodes = 0;
  /// This shard's private delta-arena allocated-node watermark.
  std::size_t delta_peak = 0;
  std::size_t reorders = 0;     ///< sifting passes performed
  std::size_t faults_done = 0;  ///< 3-phase searches completed on this shard
  std::size_t cache_lookups = 0;  ///< computed-cache probes (cumulative)
  std::size_t cache_hits = 0;     ///< probes answered from the cache
  /// Work blocks this shard's worker claimed by stealing from another
  /// worker's deque (scheduler telemetry; results never depend on it).
  std::size_t blocks_stolen = 0;
  /// Unique-table load factor (chained entries / buckets, in [0, 2];
  /// subtables double at 2).
  double unique_load = 0;

  /// Fraction of computed-cache probes answered from the cache (0 when the
  /// shard has not probed yet).
  [[nodiscard]] double cache_hit_rate() const {
    return safe_ratio(static_cast<double>(cache_hits),
                      static_cast<double>(cache_lookups));
  }
};

/// Periodic progress snapshot, emitted from the run's calling thread.
struct RunProgress {
  RunPhase phase = RunPhase::RandomTpg;
  std::size_t faults_total = 0;
  /// Faults whose outcome is final (covered or proven redundant).
  std::size_t faults_resolved = 0;
  std::size_t covered = 0;
  std::size_t sequences_committed = 0;
  double elapsed_seconds = 0;
  std::vector<ShardBddStats> shards;
};

/// Streaming observer for Session::run / AtpgEngine::run.  Default methods
/// are no-ops: override only what you need.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// A phase begins.  RunPhase::Done fires exactly once, at the end.
  virtual void on_phase(RunPhase /*phase*/) {}

  /// Fault `outcome.fault` (index `fault_index` in the run's fault list)
  /// reached its final outcome: covered by some phase, or proven redundant.
  virtual void on_fault_resolved(std::size_t /*fault_index*/,
                                 const FaultOutcome& /*outcome*/) {}

  /// Periodic snapshot (after each random walk, between generation work
  /// blocks, after each committed sequence).
  virtual void on_progress(const RunProgress& /*progress*/) {}
};

}  // namespace xatpg
