// Public data types of the xatpg API: signal ids, the stuck-at fault model,
// test sequences, ATPG outcomes/statistics, CSSG statistics, and the
// synthesis style selector.
//
// These are the *canonical* definitions — library internals (src/) include
// this header rather than keeping private copies, so the public surface and
// the implementation cannot drift apart.  The header is self-contained
// (standard library only); the few member functions that touch internal
// classes (Fault::describe, Fault::to_injection) are declared against
// forward declarations and defined inside the library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xatpg {

class Netlist;        // internal: netlist/netlist.hpp
struct LaneInjection;  // internal: sim/parallel.hpp

/// Signal identifier: index of the gate driving the signal.
using SignalId = std::uint32_t;
inline constexpr SignalId kNoSignal = 0xffffffffu;

/// Synthesis style for benchmark reconstructions (the paper's two suites).
enum class SynthStyle : std::uint8_t {
  SpeedIndependent,  ///< one atomic gC per non-input signal (Petrify's role)
  BoundedDelay,      ///< two-level AND-OR with combinational feedback (SIS)
};

/// Stuck-at fault (§1, §5): the paper's fault model is the *input* stuck-at
/// model — every gate input pin stuck at 0/1 — which subsumes the output
/// stuck-at model (every signal stuck at 0/1) because each signal drives
/// some pin; the tables report both universes separately and so do we.
struct Fault {
  enum class Site : std::uint8_t {
    GatePin,       ///< connection into fanin position `pin` of gate `gate`
    SignalOutput,  ///< output of gate `gate` (includes primary inputs)
  };
  Site site = Site::GatePin;
  SignalId gate = kNoSignal;
  std::size_t pin = 0;
  bool stuck_value = false;

  bool operator==(const Fault&) const = default;

  /// "pin c.1 s-a-0" / "out y s-a-1" style description.
  [[nodiscard]] std::string describe(const Netlist& netlist) const;

  /// Injection spec for the 64-lane parallel ternary simulator (internal).
  [[nodiscard]] LaneInjection to_injection(std::uint64_t lanes) const;
};

/// One synchronous test: input vectors applied from reset, one per test
/// cycle.
struct TestSequence {
  std::vector<std::vector<bool>> vectors;

  bool operator==(const TestSequence&) const = default;
};

enum class CoveredBy : std::uint8_t {
  None,        ///< undetected (possibly redundant)
  Random,      ///< random TPG (the paper's "rnd" column)
  ThreePhase,  ///< 3-phase symbolic ATPG ("3-ph")
  FaultSim,    ///< detected while simulating another fault's test ("sim")
};

constexpr const char* covered_by_name(CoveredBy by) {
  switch (by) {
    case CoveredBy::None: return "none";
    case CoveredBy::Random: return "random";
    case CoveredBy::ThreePhase: return "three-phase";
    case CoveredBy::FaultSim: return "fault-sim";
  }
  return "?";
}

struct FaultOutcome {
  Fault fault;
  CoveredBy covered_by = CoveredBy::None;
  int sequence_index = -1;  ///< index into AtpgResult::sequences
  /// Proven undetectable by the a-priori classifier (covered_by == None).
  bool proven_redundant = false;
  /// The 3-phase search for this fault was truncated by a resource cap
  /// (BFS depth, node cap, simulator candidate cap, or the wall-clock
  /// fallback) before exhausting the space, and no test was found.  False
  /// for an uncovered fault means the search ran to completion — the fault
  /// is genuinely untestable under the caps' search space, not a victim of
  /// them.  Always false for covered or proven-redundant faults.
  bool gave_up = false;

  bool operator==(const FaultOutcome&) const = default;
};

struct AtpgStats {
  std::size_t total_faults = 0;
  std::size_t covered = 0;
  std::size_t by_random = 0;
  std::size_t by_three_phase = 0;
  std::size_t by_fault_sim = 0;
  std::size_t undetected = 0;
  std::size_t proven_redundant = 0;
  /// Undetected faults whose search was cap-truncated (see
  /// FaultOutcome::gave_up).  undetected - gave_up - proven_redundant =
  /// faults whose search space was exhausted without finding a test.
  std::size_t gave_up = 0;
  double seconds = 0;
  double random_seconds = 0;
  double three_phase_seconds = 0;

  [[nodiscard]] double coverage() const {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(covered) / static_cast<double>(total_faults);
  }
};

struct AtpgResult {
  std::vector<FaultOutcome> outcomes;
  std::vector<TestSequence> sequences;
  AtpgStats stats;
  /// True when the run was stopped early by a CancelToken.  The partial
  /// result is deterministic: outcomes committed so far are final, and the
  /// sequence list is a prefix of the uncancelled run's.
  bool cancelled = false;
};

/// Sizes reported for Figure-2-style TCSG -> CSSG statistics.
struct CssgStats {
  double reachable_states = 0;         ///< TCSG states (stable + unstable)
  double stable_states = 0;            ///< stable reachable states
  double tcr_pairs = 0;                ///< |TCR_k|
  double nonconfluent_pairs = 0;       ///< pruned: sibling outcome differs
  double unstable_pairs = 0;           ///< pruned: unsettled k-step sibling
  double cssg_edges = 0;               ///< |CSSG_k|
  double cssg_reachable_states = 0;    ///< states reachable by valid vectors
  std::size_t traversal_iterations = 0;
  std::size_t tcr_steps = 0;
  std::size_t peak_bdd_nodes = 0;
};

}  // namespace xatpg
