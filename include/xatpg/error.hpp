// Typed error layer of the public xatpg API.
//
// Every failure a consumer can trigger through the facade (bad input text,
// unsynthesizable specification, degenerate options, blown resource caps)
// surfaces as an xatpg::Error carried inside an Expected<T> — never as a
// process abort, std::exit, or an internal exception escaping the API.
// Internal invariant violations (xatpg::CheckError) are translated at the
// facade boundary into ErrorCode::ResourceError so tools always get a
// diagnosable value.
//
// This header is self-contained (standard library only) so out-of-tree
// consumers can use it against an installed package.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace xatpg {

/// Failure taxonomy of the public API.
enum class ErrorCode {
  ParseError,     ///< malformed .xnl / .bench / test-program text
  SynthError,     ///< specification cannot be synthesized (e.g. CSC fails)
  OptionError,    ///< degenerate options, unknown names, invalid faults
  ResourceError,  ///< resource caps exceeded, missing files, internal limits
};

constexpr const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::ParseError: return "ParseError";
    case ErrorCode::SynthError: return "SynthError";
    case ErrorCode::OptionError: return "OptionError";
    case ErrorCode::ResourceError: return "ResourceError";
  }
  return "Error";
}

/// A typed failure: taxonomy code plus a human-readable diagnostic.
struct Error {
  ErrorCode code = ErrorCode::ResourceError;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(error_code_name(code)) + ": " + message;
  }

  bool operator==(const Error&) const = default;
};

/// Thrown only when a consumer dereferences an errored Expected without
/// checking — a programming error in the consumer, not a library failure.
class BadExpectedAccess : public std::logic_error {
 public:
  explicit BadExpectedAccess(const Error& error)
      : std::logic_error("Expected accessed without a value — " +
                         error.to_string()) {}
};

/// Minimal result type (std::expected is C++23; the library targets C++20):
/// holds either a T or an Error.  Check with has_value()/operator bool before
/// dereferencing; value() on an errored Expected throws BadExpectedAccess.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : v_(std::move(value)) {}       // NOLINT(runtime/explicit)
  Expected(Error error) : v_(std::move(error)) {}   // NOLINT(runtime/explicit)

  [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return has_value(); }

  T& value() & {
    if (!has_value()) throw BadExpectedAccess(std::get<Error>(v_));
    return std::get<T>(v_);
  }
  const T& value() const& {
    if (!has_value()) throw BadExpectedAccess(std::get<Error>(v_));
    return std::get<T>(v_);
  }
  T&& value() && {
    if (!has_value()) throw BadExpectedAccess(std::get<Error>(v_));
    return std::get<T>(std::move(v_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Precondition: !has_value().
  const Error& error() const { return std::get<Error>(v_); }

  T value_or(T fallback) const& {
    return has_value() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Expected<void>: success carries no value.
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : err_(std::move(error)) {}  // NOLINT(runtime/explicit)

  [[nodiscard]] bool has_value() const { return !err_.has_value(); }
  explicit operator bool() const { return has_value(); }

  void value() const {
    if (err_) throw BadExpectedAccess(*err_);
  }

  /// Precondition: !has_value().
  const Error& error() const { return *err_; }

 private:
  std::optional<Error> err_;
};

}  // namespace xatpg
