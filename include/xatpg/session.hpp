// xatpg::Session — the stable public facade of the library.
//
// A Session owns one circuit, its test-mode reset state, and the symbolic
// ATPG engine (CSSG abstraction + per-worker BDD shards) built for it.  It
// is the supported way to drive the paper's flow from outside the library:
//
//   auto session = xatpg::Session::from_benchmark("chu150",
//                                                 xatpg::SynthStyle::SpeedIndependent);
//   if (!session) { /* session.error() is a typed xatpg::Error */ }
//   auto result = session->run(session->input_stuck_faults());
//   std::cout << result->stats.coverage();
//
// Lifecycle
// ---------
//  1. Construct through a factory (from_xnl / from_xnl_file /
//     from_benchmark).  All construction failures — malformed text, failed
//     synthesis, degenerate options, blown resource caps — come back as
//     typed errors; nothing aborts or exits.
//  2. run(faults) establishes the session's fault universe and runs the
//     full flow (random TPG -> 3-phase symbolic ATPG -> cross fault
//     simulation), optionally streaming progress to a RunObserver and
//     honouring a CancelToken (see xatpg/progress.hpp for the contract).
//  3. add_faults(more) grows the universe *incrementally*: new faults are
//     first cross-simulated against the already-committed sequences, and
//     only the still-uncovered ones pay for a 3-phase search.  The combined
//     result is byte-identical to a from-scratch run on the union universe.
//     add_faults({}) after a cancelled run resumes it: cached searches are
//     reused and the final result is byte-identical to an uncancelled run.
//  4. Results, test-program export and statistics are read back at any
//     time; the expensive artifacts (CSSG, shards, generated tests) persist
//     across runs on the same Session.
//
// Concurrency contract — ONE SESSION PER JOB
// ------------------------------------------
// A Session is single-threaded: at most one run()/add_faults() may be
// active on it at a time, and the accessors are only safe between runs on
// the thread that owns the Session.  Servers and worker pools must give
// every concurrent job its own Session (sessions for the same circuit are
// cheap relative to a run, and results are byte-identical across them) —
// sharing one Session across workers is NOT made safe by any external
// locking of run() alone, because accessors like bdd_stats() also touch
// engine state.  The only cross-thread operation supported is firing a run's
// CancelToken, which is safe from any thread at any time.
//
// Violations are loud, not UB: entering run()/add_faults() while another
// run is active on the same Session — from another thread, or reentrantly
// from inside an observer callback — throws xatpg::CheckError (a
// std::logic_error) instead of corrupting engine state.  Like BadExpectedAccess, this reports a
// programming error in the consumer, so it is deliberately an exception
// rather than a typed Error the caller might be tempted to retry.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xatpg/error.hpp"
#include "xatpg/options.hpp"
#include "xatpg/progress.hpp"
#include "xatpg/types.hpp"

namespace xatpg {

class Session {
 public:
  // --- construction (typed-error factories) ---------------------------------

  /// Parse a circuit from .xnl text.  The reset state is the stable state
  /// reached by relaxing the all-false assignment; a circuit that cannot
  /// settle from there yields ResourceError.
  [[nodiscard]] static Expected<Session> from_xnl(const std::string& text,
                                    const AtpgOptions& options = {});

  /// Like from_xnl, reading the text from a file (missing/unreadable file
  /// yields ResourceError).
  [[nodiscard]] static Expected<Session> from_xnl_file(const std::string& path,
                                         const AtpgOptions& options = {});

  /// Parse a circuit from ISCAS-style .bench text (INPUT/OUTPUT/assignment
  /// lines).  DFF is rejected with ParseError — this library models
  /// asynchronous (clockless) logic; combinational .bench circuits settle
  /// and test like any other netlist.
  [[nodiscard]] static Expected<Session> from_bench(const std::string& text,
                                      const AtpgOptions& options = {});

  /// Like from_bench, reading the text from a file.
  [[nodiscard]] static Expected<Session> from_bench_file(const std::string& path,
                                           const AtpgOptions& options = {});

  /// Synthesize one of the named benchmark reconstructions (Table 1/2
  /// suites, fig1a/fig1b).  Unknown names yield OptionError; a failed
  /// synthesis yields SynthError.
  [[nodiscard]] static Expected<Session> from_benchmark(
      const std::string& name,
      SynthStyle style = SynthStyle::SpeedIndependent,
      const AtpgOptions& options = {});

  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  // --- circuit --------------------------------------------------------------

  [[nodiscard]] const std::string& circuit_name() const;
  [[nodiscard]] std::size_t num_inputs() const;
  [[nodiscard]] std::size_t num_outputs() const;
  [[nodiscard]] std::size_t num_signals() const;
  /// Total gate input pins (the input stuck-at fault sites).
  [[nodiscard]] std::size_t num_pins() const;
  /// The circuit in native .xnl text (round-trips through from_xnl).
  [[nodiscard]] std::string circuit_xnl() const;
  /// The stable test-mode reset state (one bit per signal).
  [[nodiscard]] const std::vector<bool>& reset_state() const;

  [[nodiscard]] const AtpgOptions& options() const;

  // --- CSSG abstraction -----------------------------------------------------

  /// Figure-2-style statistics of the CSSG built for this circuit.
  [[nodiscard]] const CssgStats& cssg_stats() const;
  /// Graphviz dump of the explicit CSSG (stable states + valid vectors).
  [[nodiscard]] std::string cssg_dot() const;

  // --- fault universes ------------------------------------------------------

  /// All input (gate-pin) stuck-at faults: 2 per pin.
  [[nodiscard]] std::vector<Fault> input_stuck_faults() const;
  /// All output (signal) stuck-at faults: 2 per signal.
  [[nodiscard]] std::vector<Fault> output_stuck_faults() const;
  /// "pin c.1 s-a-0" / "out y s-a-1" style description.
  [[nodiscard]] std::string describe(const Fault& fault) const;

  // --- runs -----------------------------------------------------------------

  /// Run the full flow on `faults` (replacing any previous universe).
  /// Streams events to `observer` and stops cooperatively between faults
  /// when `cancel` fires (the partial result is deterministic and
  /// resumable).  Invalid faults (out-of-range ids) yield OptionError.
  [[nodiscard]] Expected<AtpgResult> run(const std::vector<Fault>& faults,
                           RunObserver* observer = nullptr,
                           const CancelToken* cancel = nullptr);

  /// Grow the universe incrementally (see the file header).  The returned
  /// result covers the whole union universe and is byte-identical to a
  /// from-scratch run on it.
  [[nodiscard]] Expected<AtpgResult> add_faults(const std::vector<Fault>& faults,
                                  RunObserver* observer = nullptr,
                                  const CancelToken* cancel = nullptr);

  /// The current fault universe (what run/add_faults accumulated).
  [[nodiscard]] const std::vector<Fault>& fault_universe() const;
  /// True once run() has produced a result on this session.
  [[nodiscard]] bool has_result() const;
  /// The last run's result.  Precondition: has_result().
  [[nodiscard]] const AtpgResult& last_result() const;

  // --- export & accounting --------------------------------------------------

  /// Tester-facing export of `result`'s sequences: vectors and expected
  /// primary-output responses per cycle.  Sequences that are not valid CSSG
  /// paths of this circuit yield OptionError.
  [[nodiscard]] Expected<std::string> test_program(const AtpgResult& result) const;

  /// BDD accounting of the engine's own symbolic context (shard 0):
  /// allocated-node watermark, live nodes after a garbage collection,
  /// sifting passes, computed-cache hit counters, and the unique-table load
  /// factor.
  [[nodiscard]] ShardBddStats bdd_stats() const;

  /// BDD accounting for EVERY built symbolic shard — shard 0 plus each
  /// worker shard a multi-threaded run lazily constructed — including
  /// per-shard 3-phase searches completed and work blocks stolen during the
  /// most recent run.  Accounting that must not miss worker-shard activity
  /// (e.g. total sifting passes across a parallel run) has to sum over this
  /// rather than read bdd_stats() alone.
  [[nodiscard]] std::vector<ShardBddStats> shard_bdd_stats() const;

  /// Run one dynamic-reordering (sifting) pass on the engine's own symbolic
  /// context now, regardless of the session's ReorderPolicy, and return the
  /// live node count after the pass.  Results of past and future runs are
  /// unaffected (every engine query is canonicalized to be order-
  /// independent); only node counts and timing change.  The perf harness
  /// records this as the post-sift size.
  std::size_t sift_now();

 private:
  struct Impl;
  explicit Session(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace xatpg
