// Ablation for §5.4's conservativeness remark: the word-parallel ternary
// fault screen vs the exact consistent-set detector.
//
// The paper uses ternary simulation to decide detection and accepts the
// resulting conservativeness ("does not affect the fault coverage" because
// missed equivalences are recovered by the 3-phase step).  On gC-style
// implementations ternary analysis loses information through the
// set/reset feedback, so the gap is visible: this bench replays the same
// random vector set through both detectors and counts the faults each can
// *prove* detected.
#include <cstdio>

#include "atpg/engine.hpp"
#include "atpg/fault_sim.hpp"
#include "benchmarks/benchmarks.hpp"
#include "util/random.hpp"

int main() {
  using namespace xatpg;
  std::printf("Ablation: ternary screen vs exact consistent-set detection\n"
              "(64 random valid vectors from reset, input stuck-at)\n\n");
  std::printf("%-16s | %6s | %12s | %10s\n", "example", "faults",
              "ternary-det", "exact-det");
  std::printf("-----------------+--------+--------------+-----------\n");
  std::size_t total = 0, ternary_total = 0, exact_total = 0;
  for (const std::string& name : si_benchmark_names()) {
    const SynthResult synth =
        benchmark_circuit(name, SynthStyle::SpeedIndependent);
    const auto faults = input_stuck_faults(synth.netlist);

    // One shared random walk over valid vectors.
    AtpgOptions options;
    AtpgEngine engine(synth.netlist, synth.reset_state, options);
    Rng rng(17);
    std::vector<std::vector<bool>> vectors;
    std::vector<std::vector<bool>> good_states;
    std::uint32_t good_id = 0;  // reset id is 0 by construction of extract
    for (int step = 0; step < 64; ++step) {
      const auto& edges = engine.graph().edges[good_id];
      if (edges.empty()) break;
      const auto& edge = edges[rng.below(edges.size())];
      vectors.push_back(edge.pattern);
      good_states.push_back(engine.graph().states[edge.to]);
      good_id = edge.to;
    }

    // Ternary screen (batches of <= 63 faults).
    std::size_t ternary_detected = 0;
    for (std::size_t base = 0; base < faults.size(); base += 63) {
      const std::vector<Fault> chunk(
          faults.begin() + static_cast<long>(base),
          faults.begin() +
              static_cast<long>(std::min(base + 63, faults.size())));
      ternary_detected +=
          ternary_screen(synth.netlist, synth.reset_state, chunk, vectors)
              .size();
    }

    // Exact detector on the same vectors.
    std::size_t exact_detected = 0;
    for (const Fault& fault : faults) {
      FaultSimulator sim(synth.netlist, fault, synth.reset_state);
      for (std::size_t t = 0;
           t < vectors.size() && sim.status() == DetectStatus::Undetermined;
           ++t)
        sim.step(vectors[t], good_states[t]);
      if (sim.status() == DetectStatus::Detected) ++exact_detected;
    }

    std::printf("%-16s | %6zu | %12zu | %10zu\n", name.c_str(), faults.size(),
                ternary_detected, exact_detected);
    total += faults.size();
    ternary_total += ternary_detected;
    exact_total += exact_detected;
  }
  std::printf("-----------------+--------+--------------+-----------\n");
  std::printf("%-16s | %6zu | %11.1f%% | %9.1f%%\n", "Total", total,
              100.0 * static_cast<double>(ternary_total) /
                  static_cast<double>(total),
              100.0 * static_cast<double>(exact_total) /
                  static_cast<double>(total));
  return 0;
}
