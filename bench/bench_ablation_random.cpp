// Ablation for §5.4: how much does random TPG buy before 3-phase ATPG?
//
// Sweeps the random vector budget and reports the share of input stuck-at
// faults covered by the random phase alone, averaged over the SI suite —
// the paper reports "coverage ratios between 40% and 80%" for random TPG
// and an average of ~45% on its benchmarks.
#include <cstdio>

#include "atpg/engine.hpp"
#include "benchmarks/benchmarks.hpp"

int main() {
  using namespace xatpg;
  std::printf("Ablation: random TPG budget vs faults covered by the random "
              "phase (input stuck-at, SI suite)\n\n");
  std::printf("%8s | %10s | %10s | %12s\n", "budget", "rnd-cov%", "final-cov%",
              "3-ph faults");
  std::printf("---------+------------+------------+-------------\n");
  for (const std::size_t budget : {0u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    std::size_t total = 0, rnd = 0, covered = 0, three = 0;
    for (const std::string& name : si_benchmark_names()) {
      const SynthResult synth =
          benchmark_circuit(name, SynthStyle::SpeedIndependent);
      AtpgOptions options;
      options.random_budget = budget;
      options.random_walk_len = 6;
      options.seed = 1;
      AtpgEngine engine(synth.netlist, synth.reset_state, options);
      const auto result = engine.run(input_stuck_faults(synth.netlist));
      total += result.stats.total_faults;
      rnd += result.stats.by_random;
      covered += result.stats.covered;
      three += result.stats.by_three_phase;
    }
    std::printf("%8zu | %9.1f%% | %9.1f%% | %12zu\n", budget,
                100.0 * static_cast<double>(rnd) / static_cast<double>(total),
                100.0 * static_cast<double>(covered) /
                    static_cast<double>(total),
                three);
  }
  return 0;
}
