// Micro-benchmarks (google-benchmark) for the computational kernels: BDD
// operations, relational products, ternary settling, parallel 64-lane fault
// simulation, and explicit race exploration.
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"
#include "benchmarks/benchmarks.hpp"
#include "sgraph/cssg.hpp"
#include "sim/explicit.hpp"
#include "sim/parallel.hpp"
#include "sim/ternary.hpp"
#include "atpg/fault.hpp"
#include "util/random.hpp"

namespace {

using namespace xatpg;

void BM_BddApply(benchmark::State& state) {
  BddManager mgr(32);
  Rng rng(1);
  std::vector<Bdd> funcs;
  for (int i = 0; i < 16; ++i) {
    Bdd f = mgr.var(rng.below(32));
    for (int j = 0; j < 8; ++j) {
      const Bdd lit = rng.flip() ? mgr.var(rng.below(32))
                                 : !mgr.var(rng.below(32));
      f = rng.flip() ? (f & lit) : (f | lit);
    }
    funcs.push_back(f);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(funcs[i % 16] & funcs[(i + 7) % 16]);
    ++i;
  }
}
BENCHMARK(BM_BddApply);

void BM_BddRelProduct(benchmark::State& state) {
  const SynthResult synth =
      benchmark_circuit("seq4", SynthStyle::SpeedIndependent);
  SymbolicEncoding enc(synth.netlist);
  // Build R_delta-ish relation and a state set, then time and_exists.
  Bdd relation = enc.mgr().bdd_false();
  for (SignalId s = 0; s < enc.num_signals(); ++s)
    relation |= (enc.cur(s) ^ enc.target(s)) & (enc.next(s) ^ enc.cur(s));
  const Bdd set = enc.state_minterm_cur(synth.reset_state);
  const Bdd cube = enc.cur_cube();
  for (auto _ : state)
    benchmark::DoNotOptimize(enc.mgr().and_exists(relation, set, cube));
}
BENCHMARK(BM_BddRelProduct);

void BM_TernarySettle(benchmark::State& state) {
  const SynthResult synth =
      benchmark_circuit("mmu", SynthStyle::BoundedDelay);
  TernarySim sim(synth.netlist);
  std::vector<bool> vec;
  for (const SignalId in : synth.netlist.inputs())
    vec.push_back(!synth.reset_state[in]);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim.settle(synth.reset_state, vec));
}
BENCHMARK(BM_TernarySettle);

void BM_Parallel64LaneSettle(benchmark::State& state) {
  const SynthResult synth =
      benchmark_circuit("mmu", SynthStyle::BoundedDelay);
  std::vector<LaneInjection> injections;
  const auto faults = input_stuck_faults(synth.netlist);
  for (std::size_t i = 0; i < faults.size() && i < 63; ++i)
    injections.push_back(faults[i].to_injection(1ull << (i + 1)));
  ParallelTernarySim sim(synth.netlist, injections);
  std::vector<bool> vec;
  for (const SignalId in : synth.netlist.inputs())
    vec.push_back(!synth.reset_state[in]);
  for (auto _ : state) {
    sim.load_state(synth.reset_state);
    sim.settle(vec);
    benchmark::DoNotOptimize(sim.lanes_with_unknown());
  }
}
BENCHMARK(BM_Parallel64LaneSettle);

void BM_ExplicitExplore(benchmark::State& state) {
  const SynthResult synth =
      benchmark_circuit("master-read", SynthStyle::SpeedIndependent);
  std::vector<bool> vec;
  for (const SignalId in : synth.netlist.inputs())
    vec.push_back(synth.reset_state[in]);
  vec[0] = !vec[0];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        explore_settling(synth.netlist, synth.reset_state, vec, 24));
}
BENCHMARK(BM_ExplicitExplore);

void BM_CssgConstruction(benchmark::State& state) {
  const SynthResult synth =
      benchmark_circuit("ebergen", SynthStyle::SpeedIndependent);
  for (auto _ : state) {
    CssgOptions options;
    options.k = 24;
    Cssg cssg(synth.netlist, {synth.reset_state}, options);
    benchmark::DoNotOptimize(cssg.stats().cssg_edges);
  }
}
BENCHMARK(BM_CssgConstruction);

}  // namespace

// Like BENCHMARK_MAIN(), but with a `--smoke` flag that caps every benchmark
// at a minimal measurement time so `cmake --build build --target bench_smoke`
// can sanity-run the whole suite in well under a second.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke")
      smoke = true;
    else
      args.push_back(argv[i]);
  }
  static char min_time_flag[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time_flag);
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
