// Shared harness for the Table 1 / Table 2 reproductions: runs the full
// ATPG flow (random TPG -> 3-phase -> fault simulation) on a benchmark
// suite through the public xatpg::Session facade and prints the paper's
// columns.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"  // suite name lists (in-tree only)
#include "util/timer.hpp"
#include "xatpg/xatpg.hpp"

namespace xatpg::benchtab {

/// Parse and range-check one numeric flag value.  strtoul silently wraps
/// negatives and saturates overflow — reject both along with trailing
/// garbage, and enforce [min_value, max_value].  Shared by every counted
/// flag so the validation cannot drift per flag.
inline unsigned long parse_count_flag(const char* flag, const char* value,
                                      unsigned long min_value,
                                      unsigned long max_value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || value[0] == '-' || errno == ERANGE ||
      parsed < min_value || parsed > max_value) {
    std::fprintf(stderr, "invalid %s value '%s' (want %lu..%lu)\n", flag,
                 value, min_value, max_value);
    std::exit(2);
  }
  return parsed;
}

/// Apply the shared command-line flags to `options`:
///   --threads N   fault-parallel 3-phase workers (0 = hardware threads)
///   --seed N      random TPG seed
///   --k N         settle bound per test cycle (TCR_k; also the simulator's)
///   --reorder     enable dynamic BDD variable reordering (sifting) on the
///                 engine context and every worker shard.  Coverage and
///                 sequences are guaranteed identical to the default run
///                 (the determinism/differential suites lock this); only
///                 node counts and timing may change.
/// Unknown arguments abort with a usage message.
inline void parse_flags(int argc, char** argv, AtpgOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const bool has_value = i + 1 < argc;
    if (std::strcmp(argv[i], "--threads") == 0 && has_value) {
      options.threads = static_cast<std::size_t>(
          parse_count_flag("--threads", argv[++i], 0, AtpgOptions::kMaxThreads));
    } else if (std::strcmp(argv[i], "--seed") == 0 && has_value) {
      options.seed = parse_count_flag("--seed", argv[++i], 0, ~0ul);
    } else if (std::strcmp(argv[i], "--k") == 0 && has_value) {
      options.k = static_cast<std::size_t>(
          parse_count_flag("--k", argv[++i], 1, 1ul << 20));
      options.sim.k = options.k;
    } else if (std::strcmp(argv[i], "--reorder") == 0) {
      options.reorder.enabled = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--seed N] [--k N] [--reorder]\n",
                   argv[0]);
      std::exit(2);
    }
  }
}

struct Row {
  std::string name;
  std::size_t out_tot = 0, out_cov = 0;
  std::size_t in_tot = 0, in_cov = 0;
  std::size_t rnd = 0, three_ph = 0, sim = 0;
  double cpu_ms = 0;
  /// BDD accounting on the engine's own symbolic context: allocated-node
  /// watermark across the whole run, live nodes at the end, sift passes.
  std::size_t peak_nodes = 0, live_nodes = 0, reorders = 0;
};

inline Row run_circuit(const std::string& name, SynthStyle style,
                       const AtpgOptions& options) {
  Row row;
  row.name = name;
  // The timed window starts before session construction: CSSG building is
  // part of the paper's CPU column (and was timed the same way when this
  // harness drove AtpgEngine directly).
  Timer timer;
  Expected<Session> session = Session::from_benchmark(name, style, options);
  if (!session) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 session.error().to_string().c_str());
    std::exit(1);
  }

  const Expected<AtpgResult> out_result =
      session->run(session->output_stuck_faults());
  const Expected<AtpgResult> in_result =
      session->run(session->input_stuck_faults());
  if (!out_result || !in_result) {
    const Error& error = !out_result ? out_result.error() : in_result.error();
    std::fprintf(stderr, "%s: %s\n", name.c_str(), error.to_string().c_str());
    std::exit(1);
  }
  row.out_tot = out_result->stats.total_faults;
  row.out_cov = out_result->stats.covered;
  row.in_tot = in_result->stats.total_faults;
  row.in_cov = in_result->stats.covered;
  row.rnd = in_result->stats.by_random;
  row.three_ph = in_result->stats.by_three_phase;
  row.sim = in_result->stats.by_fault_sim;
  row.cpu_ms = timer.millis();

  const ShardBddStats bdd = session->bdd_stats();
  row.peak_nodes = bdd.peak_nodes;
  row.live_nodes = bdd.live_nodes;
  row.reorders = bdd.reorders;
  return row;
}

inline void print_table(const char* title,
                        const std::vector<Row>& rows) {
  std::printf("%s\n", title);
  std::printf(
      "%-16s | %-13s | %-13s | %-17s | %-22s | %s\n", "", "output-s",
      "input-s", "input-s by phase", "BDD nodes", "");
  std::printf("%-16s | %5s %7s | %5s %7s | %5s %5s %5s | %8s %8s %4s | %9s\n",
              "example", "tot", "cov", "tot", "cov", "rnd", "3-ph", "sim",
              "peak", "live", "sift", "CPU(ms)");
  std::printf(
      "-----------------+---------------+---------------+-------------------+-"
      "-----------------------+----------\n");
  std::size_t out_tot = 0, out_cov = 0, in_tot = 0, in_cov = 0;
  std::size_t peak = 0, live = 0;
  double cpu = 0;
  for (const Row& row : rows) {
    std::printf(
        "%-16s | %5zu %7zu | %5zu %7zu | %5zu %5zu %5zu | %8zu %8zu %4zu | "
        "%9.1f\n",
        row.name.c_str(), row.out_tot, row.out_cov, row.in_tot, row.in_cov,
        row.rnd, row.three_ph, row.sim, row.peak_nodes, row.live_nodes,
        row.reorders, row.cpu_ms);
    out_tot += row.out_tot;
    out_cov += row.out_cov;
    in_tot += row.in_tot;
    in_cov += row.in_cov;
    peak += row.peak_nodes;
    live += row.live_nodes;
    cpu += row.cpu_ms;
  }
  std::printf(
      "-----------------+---------------+---------------+-------------------+-"
      "-----------------------+----------\n");
  std::printf("%-16s | %5s %6.2f%% | %5s %6.2f%% | %17s | %8zu %8zu %4s | "
              "%9.1f\n",
              "Total FC", "",
              100.0 * static_cast<double>(out_cov) /
                  static_cast<double>(out_tot),
              "",
              100.0 * static_cast<double>(in_cov) /
                  static_cast<double>(in_tot),
              "", peak, live, "", cpu);
  std::printf("\n");
}

}  // namespace xatpg::benchtab
