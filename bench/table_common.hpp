// Shared harness for the Table 1 / Table 2 reproductions: runs the full
// ATPG flow (random TPG -> 3-phase -> fault simulation) on a benchmark
// suite and prints the paper's columns.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "atpg/engine.hpp"
#include "benchmarks/benchmarks.hpp"
#include "util/timer.hpp"

namespace xatpg::benchtab {

/// Apply the shared command-line flags to `options`:
///   --threads N   fault-parallel 3-phase workers (0 = hardware threads)
///   --reorder     enable dynamic BDD variable reordering (sifting) on the
///                 engine context and every worker shard.  Coverage and
///                 sequences are guaranteed identical to the default run
///                 (the determinism/differential suites lock this); only
///                 node counts and timing may change.
/// Unknown arguments abort with a usage message.
inline void parse_flags(int argc, char** argv, AtpgOptions& options) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      char* end = nullptr;
      errno = 0;
      const unsigned long parsed = std::strtoul(value, &end, 10);
      // strtoul silently wraps negatives and saturates overflow — reject
      // both along with trailing garbage.
      if (end == value || *end != '\0' || value[0] == '-' ||
          errno == ERANGE || parsed > 4096) {
        std::fprintf(stderr, "invalid --threads value '%s'\n", value);
        std::exit(2);
      }
      options.threads = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(argv[i], "--reorder") == 0) {
      options.reorder.enabled = true;
    } else {
      std::fprintf(stderr, "usage: %s [--threads N] [--reorder]\n", argv[0]);
      std::exit(2);
    }
  }
}

struct Row {
  std::string name;
  std::size_t out_tot = 0, out_cov = 0;
  std::size_t in_tot = 0, in_cov = 0;
  std::size_t rnd = 0, three_ph = 0, sim = 0;
  double cpu_ms = 0;
  /// BDD accounting on the engine's own symbolic context: allocated-node
  /// watermark across the whole run, live nodes at the end, sift passes.
  std::size_t peak_nodes = 0, live_nodes = 0, reorders = 0;
};

inline Row run_circuit(const std::string& name, SynthStyle style,
                       const AtpgOptions& options) {
  Row row;
  row.name = name;
  const SynthResult synth = benchmark_circuit(name, style);
  Timer timer;
  AtpgEngine engine(synth.netlist, synth.reset_state, options);

  const auto out_result = engine.run(output_stuck_faults(synth.netlist));
  row.out_tot = out_result.stats.total_faults;
  row.out_cov = out_result.stats.covered;

  const auto in_result = engine.run(input_stuck_faults(synth.netlist));
  row.in_tot = in_result.stats.total_faults;
  row.in_cov = in_result.stats.covered;
  row.rnd = in_result.stats.by_random;
  row.three_ph = in_result.stats.by_three_phase;
  row.sim = in_result.stats.by_fault_sim;
  row.cpu_ms = timer.millis();

  BddManager& mgr = engine.cssg().encoding().mgr();
  row.peak_nodes = mgr.peak_nodes();
  mgr.collect_garbage();
  row.live_nodes = mgr.allocated_nodes();
  row.reorders = mgr.reorder_count();
  return row;
}

inline void print_table(const char* title,
                        const std::vector<Row>& rows) {
  std::printf("%s\n", title);
  std::printf(
      "%-16s | %-13s | %-13s | %-17s | %-22s | %s\n", "", "output-s",
      "input-s", "input-s by phase", "BDD nodes", "");
  std::printf("%-16s | %5s %7s | %5s %7s | %5s %5s %5s | %8s %8s %4s | %9s\n",
              "example", "tot", "cov", "tot", "cov", "rnd", "3-ph", "sim",
              "peak", "live", "sift", "CPU(ms)");
  std::printf(
      "-----------------+---------------+---------------+-------------------+-"
      "-----------------------+----------\n");
  std::size_t out_tot = 0, out_cov = 0, in_tot = 0, in_cov = 0;
  std::size_t peak = 0, live = 0;
  double cpu = 0;
  for (const Row& row : rows) {
    std::printf(
        "%-16s | %5zu %7zu | %5zu %7zu | %5zu %5zu %5zu | %8zu %8zu %4zu | "
        "%9.1f\n",
        row.name.c_str(), row.out_tot, row.out_cov, row.in_tot, row.in_cov,
        row.rnd, row.three_ph, row.sim, row.peak_nodes, row.live_nodes,
        row.reorders, row.cpu_ms);
    out_tot += row.out_tot;
    out_cov += row.out_cov;
    in_tot += row.in_tot;
    in_cov += row.in_cov;
    peak += row.peak_nodes;
    live += row.live_nodes;
    cpu += row.cpu_ms;
  }
  std::printf(
      "-----------------+---------------+---------------+-------------------+-"
      "-----------------------+----------\n");
  std::printf("%-16s | %5s %6.2f%% | %5s %6.2f%% | %17s | %8zu %8zu %4s | "
              "%9.1f\n",
              "Total FC", "",
              100.0 * static_cast<double>(out_cov) /
                  static_cast<double>(out_tot),
              "",
              100.0 * static_cast<double>(in_cov) /
                  static_cast<double>(in_tot),
              "", peak, live, "", cpu);
  std::printf("\n");
}

}  // namespace xatpg::benchtab
