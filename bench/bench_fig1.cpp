// Reproduction of Figure 1: the two §2 motivation circuits.
//
// (a) non-confluence: applying AB=10 to stable state 01...0 settles to two
//     different states depending on gate delays (the paper's 10101101 vs
//     10100000 outcome pair — our reconstruction has the same structure:
//     the y latch either captures the pulse on c or misses it).
// (b) oscillation: raising A with B=0 puts the NAND/OR ring into the
//     repeating c-,d-,c+,d+ cycle.
//
// The harness prints, for every (reachable stable state, input pattern)
// pair of both circuits, the verdict of exhaustive race analysis and of
// conservative ternary simulation — the data behind the figure.
#include <cstdio>

#include "benchmarks/benchmarks.hpp"
#include "sim/explicit.hpp"
#include "sim/ternary.hpp"

namespace {

using namespace xatpg;

void analyze(const Netlist& netlist, const std::vector<bool>& reset) {
  std::printf("circuit '%s'\n", netlist.name().c_str());
  std::printf("%-14s | %-8s | %-20s | %s\n", "stable state", "pattern",
              "exact analysis", "ternary");
  const auto stables = explicit_stable_reachable(netlist, reset, 32);
  TernarySim sim(netlist);
  const std::size_t m = netlist.inputs().size();
  for (const auto& state : stables) {
    for (std::uint64_t bits = 0; bits < (1ull << m); ++bits) {
      std::vector<bool> vec(m);
      bool same = true;
      for (std::size_t i = 0; i < m; ++i) {
        vec[i] = (bits >> i) & 1;
        same = same && (vec[i] == state[netlist.inputs()[i]]);
      }
      if (same) continue;
      const auto exact = explore_settling(netlist, state, vec, 32);
      const auto ternary = sim.settle(state, vec);
      std::string verdict;
      if (exact.confluent()) {
        verdict = "valid vector";
      } else if (exact.stable_states.size() > 1) {
        verdict = "NON-CONFLUENT (" +
                  std::to_string(exact.stable_states.size()) + " outcomes)";
      } else {
        verdict = "OSCILLATES/UNSETTLED";
      }
      std::string state_text, vec_text;
      for (const bool b : state) state_text += b ? '1' : '0';
      for (const bool b : vec) vec_text += b ? '1' : '0';
      std::printf("%-14s | %-8s | %-20s | %s\n", state_text.c_str(),
                  vec_text.c_str(), verdict.c_str(),
                  ternary.confluent ? "definite" : "has-X");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::vector<bool> reset_a, reset_b;
  const Netlist fig1a = fig1a_circuit(&reset_a);
  const Netlist fig1b = fig1b_circuit(&reset_b);
  std::printf("Figure 1: circuits showing (a) non-confluence and (b) "
              "oscillation\n\n");
  analyze(fig1a, reset_a);
  analyze(fig1b, reset_b);
  return 0;
}
