// Ablation: speed-independent implementation architecture.
//
// The paper's Petrify circuits are gate-level implementations whose fault
// universes (Table 1 "tot" columns, 36-140 faults) are larger than a
// one-complex-gate-per-signal mapping yields.  The standard-C architecture
// decomposes each signal into explicit set/reset AND-OR networks feeding a
// 2-input C-element: fault counts scale toward the paper's magnitudes, and
// because the decomposition is not hazard-free under unbounded delays, the
// CSSG prunes more and coverage can drop — quantifying the complex-gate
// assumption the atomic-gC mapping relies on.
#include <cstdio>

#include "atpg/engine.hpp"
#include "benchmarks/benchmarks.hpp"

int main() {
  using namespace xatpg;
  std::printf("Ablation: atomic gC vs decomposed standard-C architecture "
              "(input stuck-at)\n\n");
  std::printf("%-14s | %-20s | %-20s\n", "", "atomic gC", "standard-C");
  std::printf("%-14s | %6s %6s %6s | %6s %6s %6s\n", "example", "pins",
              "cov", "cov%", "pins", "cov", "cov%");
  std::printf("---------------+----------------------+--------------------\n");
  for (const char* name :
       {"rpdft", "dff", "chu150", "converta", "rcv-setup", "ebergen",
        "vbe5b", "nowick"}) {
    const Stg stg = benchmark_stg(name);
    const StateGraph sg = expand_stg(stg);

    struct Cell {
      std::size_t pins = 0, cov = 0, tot = 0;
    };
    const auto run_arch = [&](SiArchitecture arch) {
      SynthOptions synth_options;
      synth_options.style = SynthStyle::SpeedIndependent;
      synth_options.architecture = arch;
      const SynthResult synth = synthesize(sg, synth_options);
      AtpgOptions options;
      options.random_budget = 24;
      options.random_walk_len = 6;
      options.per_fault_seconds = 1.0;
      AtpgEngine engine(synth.netlist, synth.reset_state, options);
      const auto faults = input_stuck_faults(synth.netlist);
      const auto result = engine.run(faults);
      return Cell{synth.netlist.num_pins(), result.stats.covered,
                  result.stats.total_faults};
    };
    const Cell a = run_arch(SiArchitecture::AtomicGc);
    const Cell b = run_arch(SiArchitecture::StandardC);
    std::printf("%-14s | %6zu %6zu %5.1f%% | %6zu %6zu %5.1f%%\n",
                name, a.pins, a.cov,
                100.0 * static_cast<double>(a.cov) /
                    static_cast<double>(a.tot),
                b.pins, b.cov,
                100.0 * static_cast<double>(b.cov) /
                    static_cast<double>(b.tot));
  }
  return 0;
}
