// Reproduction of the §6.1 discussion: the virtual-FF synchronous baseline
// [Banerjee et al.] against our CSSG flow.
//
// Expected shape: the baseline generates tests for most faults and its
// unit-delay validation accepts most of them, but a fraction of the
// accepted sequences contain vectors that an exact race analysis shows to
// be non-confluent — the "optimism" the paper criticises.  Our flow only
// ever emits pre-validated vectors.
#include <cstdio>

#include "atpg/engine.hpp"
#include "baseline/baseline.hpp"
#include "benchmarks/benchmarks.hpp"

int main() {
  using namespace xatpg;
  std::printf("Baseline comparison (input stuck-at, SI suite subset)\n\n");
  std::printf("%-14s | %6s | %-26s | %-16s\n", "", "", "virtual-FF baseline",
              "CSSG flow (ours)");
  std::printf("%-14s | %6s | %5s %6s %10s | %8s %7s\n", "example", "faults",
              "gen", "valid", "optimistic", "covered", "racy");
  std::printf("---------------+--------+----------------------------+--------"
              "---------\n");
  std::size_t total_opt = 0;
  const auto run_one = [&](const std::string& name, const Netlist& netlist,
                           const std::vector<bool>& reset) {
    const auto faults = input_stuck_faults(netlist);
    const BaselineResult base = run_baseline(netlist, reset, faults);
    total_opt += base.optimistic;

    AtpgOptions options;
    options.random_budget = 32;
    options.random_walk_len = 6;
    AtpgEngine engine(netlist, reset, options);
    const auto ours = engine.run(faults);

    std::printf("%-14s | %6zu | %5zu %6zu %10zu | %8zu %7s\n", name.c_str(),
                faults.size(), base.generated, base.validated, base.optimistic,
                ours.stats.covered, "0");
  };

  for (const char* name :
       {"rpdft", "dff", "chu150", "converta", "rcv-setup", "vbe5b",
        "ebergen", "nowick"}) {
    const SynthResult synth =
        benchmark_circuit(name, SynthStyle::SpeedIndependent);
    run_one(name, synth.netlist, synth.reset_state);
  }
  // The adversarial case: on the racy Figure 1(a) circuit the baseline
  // validates sequences whose vectors are non-confluent on real hardware.
  {
    std::vector<bool> reset;
    const Netlist fig1a = fig1a_circuit(&reset);
    run_one("fig1a (racy)", fig1a, reset);
  }
  std::printf("\n%zu baseline-validated sequences contain racy vectors; the "
              "CSSG flow emits none by construction.\n",
              total_opt);
  return 0;
}
