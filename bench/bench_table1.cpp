// Reproduction of Table 1: full ATPG flow on the speed-independent
// benchmark suite (Petrify-style gC implementations).
//
// Expected shape vs. the paper: 100% output stuck-at coverage (the
// Beerel/Meng self-checking result preserved under synchronous testing),
// high input stuck-at coverage, a large share of faults covered by cheap
// random TPG, the remainder by 3-phase ATPG, and a small but non-zero
// fault-simulation column.
#include "bench/table_common.hpp"

int main(int argc, char** argv) {
  using namespace xatpg;
  using namespace xatpg::benchtab;

  AtpgOptions options;
  options.k = 24;
  options.random_budget = 12;
  options.random_walk_len = 6;
  options.seed = 1;
  parse_flags(argc, argv, options);

  std::vector<Row> rows;
  for (const std::string& name : si_benchmark_names())
    rows.push_back(run_circuit(name, SynthStyle::SpeedIndependent, options));
  print_table(
      "Table 1: speed-independent circuits (input/output stuck-at ATPG)",
      rows);
  return 0;
}
