// Reproduction of Figure 2: the TCSG -> CSSG abstraction.
//
// For every benchmark circuit this prints the sizes along the §4 pipeline:
// reachable test-mode states, stable states, TCR_k pairs, pairs pruned for
// non-confluence, pairs pruned for oscillation/late settling, and the
// surviving CSSG edges (the valid synchronous test vectors) — i.e. the
// figure's "boxes and shaded circles" as numbers.
#include <cstdio>

#include "benchmarks/benchmarks.hpp"
#include "sgraph/cssg.hpp"

namespace {

void run_suite(const char* title, const std::vector<std::string>& names,
               xatpg::SynthStyle style) {
  using namespace xatpg;
  std::printf("%s\n", title);
  std::printf("%-16s | %7s %7s | %7s %9s %7s | %7s %9s\n", "example", "reach",
              "stable", "TCR_k", "non-conf", "osc", "edges", "CSSG-rch");
  std::printf("-----------------+-----------------+---------------------------"
              "+------------------\n");
  for (const std::string& name : names) {
    const SynthResult synth = benchmark_circuit(name, style);
    CssgOptions options;
    options.k = 24;
    Cssg cssg(synth.netlist, {synth.reset_state}, options);
    const CssgStats& s = cssg.stats();
    std::printf("%-16s | %7.0f %7.0f | %7.0f %9.0f %7.0f | %7.0f %9.0f\n",
                name.c_str(), s.reachable_states, s.stable_states, s.tcr_pairs,
                s.nonconfluent_pairs, s.unstable_pairs, s.cssg_edges,
                s.cssg_reachable_states);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace xatpg;
  std::printf("Figure 2: TCSG -> CSSG abstraction (k = 24)\n\n");
  run_suite(
      "speed-independent suite (atomic gC implementations are race-free in "
      "test mode: nothing is pruned)",
      si_benchmark_names(), SynthStyle::SpeedIndependent);
  run_suite(
      "bounded-delay suite (two-level + feedback implementations race: the "
      "pruning does real work)",
      bd_benchmark_names(), SynthStyle::BoundedDelay);

  // The paper's actual Figure 2 example: a TCSG in which one vector races
  // and one oscillates, and its CSSG.
  std::vector<bool> reset_a;
  const Netlist fig1a = fig1a_circuit(&reset_a);
  CssgOptions options;
  options.k = 20;
  Cssg cssg(fig1a, {reset_a}, options);
  std::printf("fig1a circuit: %d stable states, %.0f TCR pairs, %.0f "
              "non-confluent pruned, %.0f CSSG edges\n",
              static_cast<int>(cssg.stats().stable_states),
              cssg.stats().tcr_pairs, cssg.stats().nonconfluent_pairs,
              cssg.stats().cssg_edges);
  std::printf("CSSG as Graphviz:\n%s", cssg.to_dot().c_str());
  return 0;
}
