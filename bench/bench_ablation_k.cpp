// Ablation for §4.1: the test-cycle bound k.
//
// A small k models a short test cycle: settlements that need more gate
// transitions are treated as "too long oscillation" and their vectors are
// pruned from the CSSG, shrinking the reachable test space and (eventually)
// the achievable coverage.  A large enough k saturates: the circuit's
// longest settlement |u| is covered.
#include <cstdio>

#include "atpg/engine.hpp"
#include "benchmarks/benchmarks.hpp"

int main() {
  using namespace xatpg;
  const std::vector<std::string> circuits{"rpdft", "chu150", "ebergen",
                                          "seq4", "mmu"};
  std::printf("Ablation: settle bound k vs CSSG size and input stuck-at "
              "coverage\n\n");
  std::printf("%-10s | %3s | %9s | %9s | %8s\n", "example", "k", "edges",
              "states", "coverage");
  std::printf("-----------+-----+-----------+-----------+---------\n");
  for (const std::string& name : circuits) {
    const SynthResult synth =
        benchmark_circuit(name, SynthStyle::SpeedIndependent);
    for (const std::size_t k : {1u, 2u, 3u, 4u, 6u, 8u, 16u, 32u}) {
      AtpgOptions options;
      options.k = k;
      options.sim.k = k;
      options.random_budget = 32;
      options.random_walk_len = 6;
      AtpgEngine engine(synth.netlist, synth.reset_state, options);
      const auto result = engine.run(input_stuck_faults(synth.netlist));
      std::printf("%-10s | %3zu | %9.0f | %9.0f | %7.1f%%\n", name.c_str(), k,
                  engine.cssg().stats().cssg_edges,
                  engine.cssg().stats().cssg_reachable_states,
                  100.0 * result.stats.coverage());
    }
    std::printf("\n");
  }
  return 0;
}
