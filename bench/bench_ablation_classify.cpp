// Ablation for the §6 improvement the paper proposes but does not
// implement: "classifying undetectable faults to avoid wasting time in
// covering them".  The poor Table 2 circuits are slow precisely because a
// test for an undetectable fault tries all possible input patterns; the
// a-priori classifier (a symbolic constant-line proof over the test-mode
// reachable states) removes that work soundly.
#include <cstdio>

#include "atpg/engine.hpp"
#include "benchmarks/benchmarks.hpp"
#include "util/timer.hpp"

int main() {
  using namespace xatpg;
  std::printf("Ablation: a-priori undetectable-fault classification "
              "(bounded-delay suite, input stuck-at)\n\n");
  std::printf("%-14s | %6s | %-22s | %-27s\n", "", "", "classifier off",
              "classifier on");
  std::printf("%-14s | %6s | %8s %11s | %8s %9s %11s\n", "example", "faults",
              "coverage", "3-ph ms", "coverage", "proven", "3-ph ms");
  std::printf("---------------+--------+------------------------+------------"
              "----------------\n");
  for (const std::string& name : bd_benchmark_names()) {
    const SynthResult synth = benchmark_circuit(name, SynthStyle::BoundedDelay);
    const auto faults = input_stuck_faults(synth.netlist);

    const auto run_once = [&](bool classify) {
      AtpgOptions options;
      options.random_budget = 12;
      options.random_walk_len = 6;
      options.classify_undetectable = classify;
      AtpgEngine engine(synth.netlist, synth.reset_state, options);
      return engine.run(faults);
    };
    const auto off = run_once(false);
    const auto on = run_once(true);

    std::printf("%-14s | %6zu | %7.1f%% %9.1f | %7.1f%% %9zu %9.1f\n",
                name.c_str(), faults.size(), 100.0 * off.stats.coverage(),
                off.stats.three_phase_seconds * 1e3,
                100.0 * on.stats.coverage(), on.stats.proven_redundant,
                on.stats.three_phase_seconds * 1e3);
  }
  std::printf("\nThe classifier must never reduce coverage (it is sound); it "
              "removes the 3-phase time spent proving redundant faults "
              "undetectable by exhaustion.\n");
  return 0;
}
