// Reproduction of Table 2: the same flow on hazard-free bounded-delay
// (SIS-style two-level + feedback) implementations of the shared
// specifications.
//
// Expected shape vs. the paper: most circuits test comparably to their
// speed-independent twins, but the three redundant designs (trimos-send,
// vbe10b, vbe6a — synthesized with aggressive spurious-pulse consensus
// covers) drop to visibly lower input stuck-at coverage and dominate CPU,
// because the ATPG exhausts its search proving faults on redundant cubes
// undetectable.
#include "bench/table_common.hpp"

int main(int argc, char** argv) {
  using namespace xatpg;
  using namespace xatpg::benchtab;

  AtpgOptions options;
  options.k = 24;
  options.random_budget = 12;
  options.random_walk_len = 6;
  options.seed = 1;
  parse_flags(argc, argv, options);

  std::vector<Row> rows;
  for (const std::string& name : bd_benchmark_names())
    rows.push_back(run_circuit(name, SynthStyle::BoundedDelay, options));
  print_table(
      "Table 2: hazard-free bounded-delay circuits (input/output stuck-at "
      "ATPG)",
      rows);
  return 0;
}
