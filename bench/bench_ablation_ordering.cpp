// Ablation for the §6 conclusion's "studying better variable ordering
// strategies in the use of BDDs": compares the static orderings supported
// by the symbolic encoding — and dynamic (Rudell sifting) reordering on top
// of each — on the CSSG construction, which dominates 3-phase ATPG cost.
//
// Per configuration it reports the peak allocated-node watermark, the final
// live node count before and after one explicit sifting pass, wall time,
// and the GC / auto-sift counters.  The `sifted` rows start interleaved and
// reorder dynamically while the pipeline is being built; `--reorder`
// additionally arms the auto-trigger for the three static layouts, which
// measures how much of the sifted row's win survives a bad starting order.
//
// Usage: bench_ablation_ordering [--reorder]
#include <cstdio>
#include <cstring>

#include "benchmarks/benchmarks.hpp"
#include "sgraph/cssg.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace xatpg;
  bool reorder_static = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reorder") == 0) {
      reorder_static = true;
    } else {
      std::fprintf(stderr, "usage: %s [--reorder]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::string> circuits{"mr1", "seq4", "master-read",
                                          "sbuf-send-ctl", "mmu"};
  std::printf("Ablation: BDD variable ordering for the CSSG construction%s\n\n",
              reorder_static ? " (dynamic reordering on static orders too)"
                             : "");
  std::printf("%-14s | %-20s | %10s | %10s | %10s | %9s | %4s | %4s\n",
              "example", "order", "peak nodes", "final live", "post-sift",
              "time(ms)", "GCs", "sift");
  std::printf("---------------+----------------------+------------+-----------"
              "-+------------+-----------+------+-----\n");
  for (const std::string& name : circuits) {
    const SynthResult synth =
        benchmark_circuit(name, SynthStyle::SpeedIndependent);
    for (const VarOrder order :
         {VarOrder::Interleaved, VarOrder::Blocked,
          VarOrder::ReverseInterleaved, VarOrder::Sifted}) {
      CssgOptions options;
      options.k = 24;
      options.order = order;
      if (reorder_static) options.reorder.enabled = true;
      Timer timer;
      Cssg cssg(synth.netlist, {synth.reset_state}, options);
      const double build_ms = timer.millis();
      BddManager& mgr = cssg.encoding().mgr();
      mgr.collect_garbage();
      const std::size_t final_live = mgr.allocated_nodes();
      // One explicit pass on the finished pipeline: how much table is left
      // on it regardless of the auto-trigger's timing.
      const ReorderStats pass = cssg.encoding().sift_now();
      std::printf("%-14s | %-20s | %10zu | %10zu | %10zu | %9.1f | %4zu | "
                  "%4zu\n",
                  name.c_str(), var_order_name(order),
                  cssg.stats().peak_bdd_nodes, final_live, pass.size_after,
                  build_ms, mgr.gc_count(), mgr.reorder_count());
    }
    std::printf("\n");
  }
  return 0;
}
