// Ablation for the §6 conclusion's "studying better variable ordering
// strategies in the use of BDDs": compares the static orderings supported
// by the symbolic encoding on the CSSG construction (peak BDD nodes and
// wall time), which dominates 3-phase ATPG cost.
#include <cstdio>

#include "benchmarks/benchmarks.hpp"
#include "sgraph/cssg.hpp"
#include "util/timer.hpp"

int main() {
  using namespace xatpg;
  const std::vector<std::string> circuits{"mr1", "seq4", "master-read",
                                          "sbuf-send-ctl", "mmu"};
  std::printf("Ablation: BDD variable ordering for the CSSG construction\n\n");
  std::printf("%-14s | %-20s | %10s | %9s | %4s\n", "example", "order",
              "peak nodes", "time(ms)", "GCs");
  std::printf("---------------+----------------------+------------+-----------+"
              "-----\n");
  for (const std::string& name : circuits) {
    const SynthResult synth =
        benchmark_circuit(name, SynthStyle::SpeedIndependent);
    for (const VarOrder order : {VarOrder::Interleaved, VarOrder::Blocked,
                                 VarOrder::ReverseInterleaved}) {
      CssgOptions options;
      options.k = 24;
      options.order = order;
      Timer timer;
      Cssg cssg(synth.netlist, {synth.reset_state}, options);
      std::printf("%-14s | %-20s | %10zu | %9.1f | %4zu\n", name.c_str(),
                  var_order_name(order), cssg.stats().peak_bdd_nodes,
                  timer.millis(), cssg.encoding().mgr().gc_count());
    }
    std::printf("\n");
  }
  return 0;
}
