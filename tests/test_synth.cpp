#include "synth/synth.hpp"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "sim/ternary.hpp"
#include "synth/cover.hpp"
#include "util/check.hpp"

namespace xatpg {
namespace {

// --- cover algebra ------------------------------------------------------------

TEST(MinCube, CoversMinterm) {
  // cube x1 x2' over 3 vars: care 110, value 010 (bit0=x0 free).
  const MinCube c{0b110, 0b010};
  EXPECT_TRUE(c.covers_minterm(0b010));
  EXPECT_TRUE(c.covers_minterm(0b011));
  EXPECT_FALSE(c.covers_minterm(0b110));
}

TEST(MinCube, Containment) {
  const MinCube big{0b100, 0b100};    // x2
  const MinCube small{0b110, 0b110};  // x2 x1
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(PrimeImplicants, XorHasNoMerging) {
  // on = {01, 10}: two primes, nothing combines.
  const auto primes = prime_implicants({0b01, 0b10}, {}, 2);
  EXPECT_EQ(primes.size(), 2u);
}

TEST(PrimeImplicants, FullCubeCollapses) {
  const auto primes = prime_implicants({0, 1, 2, 3}, {}, 2);
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].care, 0u);  // tautology cube
}

TEST(PrimeImplicants, DontCaresEnlargePrimes) {
  // f: on = {11}, dc = {10} over 2 vars -> prime x1 (bit1).
  const auto primes = prime_implicants({0b11}, {0b10}, 2);
  bool found = false;
  for (const auto& p : primes)
    if (p.care == 0b10 && p.value == 0b10) found = true;
  EXPECT_TRUE(found);
}

TEST(MinimizeSop, CoversExactlyOnSet) {
  // Random-ish function over 4 vars.
  const std::vector<std::uint32_t> on{0, 1, 3, 7, 8, 9, 15};
  std::vector<std::uint32_t> off;
  for (std::uint32_t m = 0; m < 16; ++m)
    if (std::find(on.begin(), on.end(), m) == on.end()) off.push_back(m);
  const auto cover = minimize_sop(on, {}, 4);
  EXPECT_TRUE(cover_is_correct(cover, on, off));
}

TEST(MinimizeSop, UsesDontCares) {
  // on = {3}, dc = {1, 2, 0} -> single tautology-ish cube allowed.
  const auto cover = minimize_sop({3}, {0, 1, 2}, 2);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].num_literals(), 0);
}

TEST(MinimizeSop, EmptyOnSet) { EXPECT_TRUE(minimize_sop({}, {0}, 2).empty()); }

TEST(MinimizeSop, ParameterizedExhaustive3Var) {
  // Every 3-variable function: the minimized cover must match the truth
  // table exactly (no dc).
  for (std::uint32_t tt = 0; tt < 256; ++tt) {
    std::vector<std::uint32_t> on, off;
    for (std::uint32_t m = 0; m < 8; ++m)
      ((tt >> m) & 1 ? on : off).push_back(m);
    const auto cover = minimize_sop(on, {}, 3);
    EXPECT_TRUE(cover_is_correct(cover, on, off)) << "truth table " << tt;
  }
}

TEST(Consensus, BasicResolvent) {
  // x y + x' z -> consensus y z.
  const MinCube a{0b011, 0b011};  // x0 x1  (bits 0,1)
  const MinCube b{0b101, 0b100};  // x0' x2
  MinCube c;
  ASSERT_TRUE(consensus(a, b, &c));
  EXPECT_EQ(c.care, 0b110u);
  EXPECT_EQ(c.value, 0b110u);
}

TEST(Consensus, NoClashNoConsensus) {
  const MinCube a{0b001, 0b001};
  const MinCube b{0b010, 0b010};
  MinCube c;
  EXPECT_FALSE(consensus(a, b, &c));  // zero clashing variables
}

TEST(Consensus, AddConsensusCubesClosesCover) {
  // x y + x' z: consensus y z must be added.
  std::vector<MinCube> cover{{0b011, 0b011}, {0b101, 0b100}};
  const auto added = add_consensus_cubes(cover);
  EXPECT_GE(added, 1u);
  bool found = false;
  for (const auto& c : cover)
    if (c.care == 0b110 && c.value == 0b110) found = true;
  EXPECT_TRUE(found);
  // Function unchanged: consensus terms are implicants.
  for (std::uint32_t m = 0; m < 8; ++m) {
    const bool orig = ((m & 0b011) == 0b011) || ((m & 0b101) == 0b100);
    EXPECT_EQ(cover_eval(cover, m), orig) << m;
  }
}

// --- synthesis ---------------------------------------------------------------

class SynthCelem : public ::testing::Test {
 protected:
  SynthCelem() : stg(make_celem("celem", 2)), sg(expand_stg(stg)) {}
  Stg stg;
  StateGraph sg;
};

TEST_F(SynthCelem, SpeedIndependentProducesGc) {
  const SynthResult result = synthesize(sg, {SynthStyle::SpeedIndependent});
  const Netlist& n = result.netlist;
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  const Gate& ack = n.gate(n.signal("ack"));
  EXPECT_EQ(ack.type, GateType::Gc);
  EXPECT_TRUE(n.is_stable_state(result.reset_state));
}

TEST_F(SynthCelem, SpeedIndependentImplementsNextState) {
  const SynthResult result = synthesize(sg, {SynthStyle::SpeedIndependent});
  const Netlist& n = result.netlist;
  // For every reachable SG state, the netlist gate target must equal the
  // SG next-state function.
  for (std::uint32_t st = 0; st < sg.num_states(); ++st) {
    std::vector<bool> state(n.num_signals(), false);
    for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig)
      state[n.signal(stg.signal(sig).name)] = sg.codes[st][sig];
    EXPECT_EQ(n.eval_gate_bool(n.signal("ack"), state), sg.next_value(st, 2))
        << "state " << st;
  }
}

TEST_F(SynthCelem, BoundedDelayProducesAndOr) {
  SynthOptions options;
  options.style = SynthStyle::BoundedDelay;
  const SynthResult result = synthesize(sg, options);
  const Netlist& n = result.netlist;
  EXPECT_TRUE(n.is_stable_state(result.reset_state));
  // ack = r0 r1 + ack (r0 + r1) needs AND terms and an OR.
  EXPECT_EQ(n.gate(n.signal("ack")).type, GateType::Or);
}

TEST_F(SynthCelem, BoundedDelayImplementsNextStateAfterSettling) {
  SynthOptions options;
  options.style = SynthStyle::BoundedDelay;
  const SynthResult result = synthesize(sg, options);
  const Netlist& n = result.netlist;
  TernarySim sim(n);
  // From reset, walk the SG behaviour: each SG input event, applied as a
  // synchronous vector, must settle the netlist to the SG's next stable
  // situation.  (Spot-check the first rising phase: r0+, then r1+.)
  std::vector<bool> state = result.reset_state;
  auto apply = [&](bool r0, bool r1) {
    const auto settled = sim.settle(state, {r0, r1});
    ASSERT_TRUE(settled.confluent);
    state = settled.final_state();
  };
  apply(true, false);
  EXPECT_FALSE(state[n.signal("ack")]);
  apply(true, true);
  EXPECT_TRUE(state[n.signal("ack")]);
  apply(false, true);
  EXPECT_TRUE(state[n.signal("ack")]);  // C-element holds
  apply(false, false);
  EXPECT_FALSE(state[n.signal("ack")]);
}

TEST(Synth, StandardCArchitecture) {
  const Stg stg = make_celem("celem", 2);
  const StateGraph sg = expand_stg(stg);
  SynthOptions options;
  options.style = SynthStyle::SpeedIndependent;
  options.architecture = SiArchitecture::StandardC;
  const SynthResult result = synthesize(sg, options);
  const Netlist& n = result.netlist;
  EXPECT_TRUE(n.is_stable_state(result.reset_state));
  // The output signal is now a real 2-input C-element.
  EXPECT_EQ(n.gate(n.signal("ack")).type, GateType::Celem);
  // More fault sites than the atomic-gC mapping of the same function.
  const SynthResult atomic = synthesize(sg, {SynthStyle::SpeedIndependent});
  EXPECT_GT(n.num_pins(), atomic.netlist.num_pins());
  // Functional fidelity on reachable codes (after relaxing the networks).
  for (std::uint32_t st = 0; st < sg.num_states(); ++st) {
    std::vector<bool> state(n.num_signals(), false);
    for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig)
      state[n.signal(stg.signal(sig).name)] = sg.codes[st][sig];
    for (std::size_t pass = 0; pass < n.num_signals(); ++pass) {
      bool changed = false;
      for (SignalId s = 0; s < n.num_signals(); ++s) {
        if (n.is_input(s) || s == n.signal("ack")) continue;
        const bool target = n.eval_gate_bool(s, state);
        if (state[s] != target) {
          state[s] = target;
          changed = true;
        }
      }
      if (!changed) break;
    }
    EXPECT_EQ(n.eval_gate_bool(n.signal("ack"), state), sg.next_value(st, 2))
        << "state " << st;
  }
}

TEST(Synth, RedundantCoversAddGates) {
  const Stg stg = make_celem("celem", 2);
  const StateGraph sg = expand_stg(stg);
  SynthOptions plain;
  plain.style = SynthStyle::BoundedDelay;
  plain.hazard_consensus = true;
  SynthOptions redundant = plain;
  redundant.extra_redundancy = true;
  const auto a = synthesize(sg, plain);
  const auto b = synthesize(sg, redundant);
  EXPECT_GE(b.num_cubes, a.num_cubes);
}

TEST(Synth, CscViolationRejected) {
  Stg stg("csc-broken");
  const auto r = stg.add_signal("r", SignalKind::Input, false);
  const auto a = stg.add_signal("a", SignalKind::Output, false);
  const auto rp = stg.add_transition(r, true);
  const auto ap = stg.add_transition(a, true);
  const auto rm = stg.add_transition(r, false);
  const auto am = stg.add_transition(a, false);
  const auto ap2 = stg.add_transition(a, true);
  const auto am2 = stg.add_transition(a, false);
  stg.arc(rp, ap);
  stg.arc(ap, rm);
  stg.arc(rm, am);
  stg.arc(am, ap2);
  stg.arc(ap2, am2);
  stg.arc(am2, rp, 1);
  const StateGraph sg = expand_stg(stg);
  EXPECT_THROW(synthesize(sg, {}), CheckError);
}

TEST(Synth, NsFunctionPartitionsCodes) {
  const Stg stg = make_celem("celem", 2);
  const StateGraph sg = expand_stg(stg);
  const NsFunction ns = next_state_function(sg, 2);
  // on + off = reachable codes (8 of them), dc = 0 (all 2^3 reachable).
  EXPECT_EQ(ns.on.size() + ns.off.size(), 8u);
  EXPECT_TRUE(ns.dc.empty());
}

TEST(Synth, SetResetFunctionsDisjoint) {
  const Stg stg = make_celem("celem", 2);
  const StateGraph sg = expand_stg(stg);
  const NsFunction set = set_function(sg, 2);
  const NsFunction reset = reset_function(sg, 2);
  for (const auto m : set.on)
    EXPECT_EQ(std::count(reset.on.begin(), reset.on.end(), m), 0);
}

}  // namespace
}  // namespace xatpg
