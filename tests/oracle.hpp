// Brute-force CSSG oracle, shared by the randomized differential suite
// (tests/test_differential.cpp) and the structural netlist fuzzer
// (tests/fuzz/fuzz_structural.cpp).
//
// The oracle re-derives the complete-state-signal graph by explicit search:
// BFS from reset over all input patterns, keeping only confluent settlings
// (exactly one stable outcome, every trajectory done within the bound) —
// the definition of a valid synchronous test vector.  The symbolic CSSG's
// state and edge sets must match it exactly; cssg_oracle_mismatch() reports
// the first divergence as text so non-gtest consumers (the fuzzer harness)
// can use the same check.
#pragma once

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "netlist/netlist.hpp"
#include "sgraph/cssg.hpp"
#include "sim/explicit.hpp"

namespace xatpg::testing {

struct OracleCssg {
  std::set<std::vector<bool>> states;
  // (from state, input pattern, to state)
  std::set<std::tuple<std::vector<bool>, std::vector<bool>, std::vector<bool>>>
      edges;
};

/// Brute-force CSSG from `reset` with settlement bound `k`.  Cost is
/// O(states x 2^inputs x settlement interleavings) — callers keep circuits
/// small (<= ~4 inputs, ~12 signals).
inline OracleCssg oracle_cssg(const Netlist& netlist,
                              const std::vector<bool>& reset, std::size_t k) {
  OracleCssg oracle;
  const auto& inputs = netlist.inputs();
  oracle.states.insert(reset);
  std::vector<std::vector<bool>> worklist{reset};
  while (!worklist.empty()) {
    const std::vector<bool> state = worklist.back();
    worklist.pop_back();
    for (std::uint64_t bits = 0; bits < (1ull << inputs.size()); ++bits) {
      std::vector<bool> pattern(inputs.size());
      bool same = true;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        pattern[i] = (bits >> i) & 1;
        same = same && (pattern[i] == state[inputs[i]]);
      }
      if (same) continue;  // R_I: at least one input must flip
      const ExploreResult explored =
          explore_settling(netlist, state, pattern, k);
      if (!explored.confluent()) continue;
      const std::vector<bool>& succ = *explored.stable_states.begin();
      oracle.edges.insert({state, pattern, succ});
      if (oracle.states.insert(succ).second) worklist.push_back(succ);
    }
  }
  return oracle;
}

namespace oracle_detail {

inline std::string bits(const std::vector<bool>& v) {
  std::string s;
  for (const bool b : v) s += b ? '1' : '0';
  return s;
}

template <typename Set>
std::string first_difference(const Set& got, const Set& want,
                             std::string (*print)(
                                 const typename Set::value_type&)) {
  for (const auto& x : got)
    if (!want.count(x)) return "unexpected " + print(x);
  for (const auto& x : want)
    if (!got.count(x)) return "missing " + print(x);
  return {};
}

}  // namespace oracle_detail

/// Build the symbolic CSSG under `options` and diff it against the oracle;
/// the symbolic stable-reachable set is additionally checked against the
/// explicit enumerator (it must cover the oracle BFS and may contain stable
/// states only reachable through racing vectors).  Returns "" on a perfect
/// match, else a one-line description of the first divergence.
inline std::string cssg_oracle_mismatch(const Netlist& netlist,
                                        const std::vector<bool>& reset,
                                        const OracleCssg& oracle,
                                        const CssgOptions& options) {
  const Cssg cssg(netlist, {reset}, options);
  const ExplicitCssg graph = cssg.extract_explicit();

  std::set<std::vector<bool>> states(graph.states.begin(), graph.states.end());
  if (states.size() != graph.states.size())
    return "symbolic CSSG lists a state under two ids";
  if (states != oracle.states) {
    std::ostringstream os;
    os << "state sets differ (symbolic " << states.size() << ", oracle "
       << oracle.states.size() << "): "
       << oracle_detail::first_difference<std::set<std::vector<bool>>>(
              states, oracle.states,
              +[](const std::vector<bool>& s) { return oracle_detail::bits(s); });
    return os.str();
  }

  using Edge =
      std::tuple<std::vector<bool>, std::vector<bool>, std::vector<bool>>;
  std::set<Edge> edges;
  for (std::uint32_t id = 0; id < graph.states.size(); ++id)
    for (const auto& edge : graph.edges[id])
      edges.insert({graph.states[id], edge.pattern, graph.states[edge.to]});
  if (edges != oracle.edges) {
    std::ostringstream os;
    os << "edge sets differ (symbolic " << edges.size() << ", oracle "
       << oracle.edges.size() << "): "
       << oracle_detail::first_difference<std::set<Edge>>(
              edges, oracle.edges, +[](const Edge& e) {
                return oracle_detail::bits(std::get<0>(e)) + " --" +
                       oracle_detail::bits(std::get<1>(e)) + "--> " +
                       oracle_detail::bits(std::get<2>(e));
              });
    return os.str();
  }

  const std::set<std::vector<bool>> stable_explicit =
      explicit_stable_reachable(netlist, reset, options.k);
  const auto stable_symbolic_list =
      cssg.encoding().all_states_cur(cssg.stable_reachable());
  const std::set<std::vector<bool>> stable_symbolic(
      stable_symbolic_list.begin(), stable_symbolic_list.end());
  if (stable_symbolic != stable_explicit) {
    std::ostringstream os;
    os << "stable-reachable sets differ (symbolic " << stable_symbolic.size()
       << ", explicit " << stable_explicit.size() << "): "
       << oracle_detail::first_difference<std::set<std::vector<bool>>>(
              stable_symbolic, stable_explicit,
              +[](const std::vector<bool>& s) { return oracle_detail::bits(s); });
    return os.str();
  }
  return {};
}

}  // namespace xatpg::testing
