#include "atpg/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "benchmarks/benchmarks.hpp"
#include "fixtures.hpp"
#include "sim/explicit.hpp"

namespace xatpg {
namespace {

// --- fault universe ----------------------------------------------------------

TEST(FaultModel, UniverseSizes) {
  const Netlist n = fig1a_circuit(nullptr);
  EXPECT_EQ(output_stuck_faults(n).size(), 2 * n.num_signals());
  EXPECT_EQ(input_stuck_faults(n).size(), 2 * n.num_pins());
}

TEST(FaultModel, Describe) {
  const Netlist n = fig1a_circuit(nullptr);
  const Fault f{Fault::Site::SignalOutput, n.signal("y"), 0, true};
  EXPECT_EQ(f.describe(n), "out y s-a-1");
}

TEST(FaultModel, ApplyOutputFaultTiesSignal) {
  const Netlist n = fig1a_circuit(nullptr);
  const Fault f{Fault::Site::SignalOutput, n.signal("c"), 0, true};
  const Netlist faulty = apply_fault(n, f);
  EXPECT_EQ(faulty.num_signals(), n.num_signals());
  std::vector<bool> st(faulty.num_signals(), false);
  // c's target is constant 1 whatever the state.
  EXPECT_TRUE(faulty.eval_gate_bool(faulty.signal("c"), st));
}

TEST(FaultModel, ApplyPinFaultAddsConstant) {
  const Netlist n = fig1a_circuit(nullptr);
  // Pin c.0 (reading a) stuck at 1.
  const Fault f{Fault::Site::GatePin, n.signal("c"), 0, true};
  const Netlist faulty = apply_fault(n, f);
  EXPECT_EQ(faulty.num_signals(), n.num_signals() + 1);
  // c now computes 1 & b.
  std::vector<bool> st(faulty.num_signals(), false);
  st[faulty.signal("b")] = true;
  st.back() = true;  // the constant signal's value
  st[faulty.signal("#stuck")] = true;
  EXPECT_TRUE(faulty.eval_gate_bool(faulty.signal("c"), st));
}

TEST(FaultModel, ApplyInputStuck) {
  const Netlist n = fig1a_circuit(nullptr);
  const Fault f{Fault::Site::SignalOutput, n.signal("A"), 0, false};
  const Netlist faulty = apply_fault(n, f);
  std::vector<bool> st(faulty.num_signals(), true);
  EXPECT_FALSE(faulty.eval_gate_bool(faulty.signal("A"), st));
}

// --- exact fault simulator ----------------------------------------------------

class ChainFixture : public ::testing::Test {
 protected:
  ChainFixture() {
    fixtures::Circuit fix = fixtures::chain();
    netlist = std::move(fix.netlist);
    reset = std::move(fix.reset);
  }
  Netlist netlist;
  std::vector<bool> reset;
};

TEST_F(ChainFixture, DetectsOutputStuck) {
  const Fault f{Fault::Site::SignalOutput, netlist.signal("y"), 0, false};
  FaultSimulator sim(netlist, f, reset);
  EXPECT_EQ(sim.status(), DetectStatus::Undetermined);
  // Apply A=1: good y -> 1, faulty y stuck 0: every execution mismatches.
  std::vector<bool> good_after(netlist.num_signals(), false);
  good_after[netlist.signal("A")] = true;
  good_after[netlist.signal("y")] = true;
  EXPECT_EQ(sim.step({true}, good_after), DetectStatus::Detected);
}

TEST_F(ChainFixture, UndetectedWhenOutputsAgree) {
  // y s-a-0 with A kept 0: good y is 0 too; never detected.
  const Fault f{Fault::Site::SignalOutput, netlist.signal("y"), 0, false};
  FaultSimulator sim(netlist, f, reset);
  EXPECT_EQ(sim.step({false}, reset), DetectStatus::Undetermined);
}

TEST_F(ChainFixture, RestartIsSticky) {
  const Fault f{Fault::Site::SignalOutput, netlist.signal("y"), 0, false};
  FaultSimulator sim(netlist, f, reset);
  std::vector<bool> good_after(netlist.num_signals(), false);
  good_after[netlist.signal("A")] = true;
  good_after[netlist.signal("y")] = true;
  ASSERT_EQ(sim.step({true}, good_after), DetectStatus::Detected);
  sim.restart();
  EXPECT_EQ(sim.status(), DetectStatus::Detected);
}

TEST(TernaryScreen, SoundOnChain) {
  const fixtures::Circuit fix = fixtures::chain();
  const Netlist& n = fix.netlist;
  const std::vector<bool>& reset = fix.reset;
  const std::vector<Fault> faults = output_stuck_faults(n);
  const auto detected =
      ternary_screen(n, reset, faults, {{true}, {false}});
  // y s-a-0 and y s-a-1 are both caught by toggling A; verify soundness by
  // cross-checking each screened fault with the exact simulator.
  EXPECT_FALSE(detected.empty());
  for (const std::size_t idx : detected) {
    FaultSimulator sim(n, faults[idx], reset);
    std::vector<bool> good = reset;
    bool exact_detected = false;
    for (const bool a : {true, false}) {
      const auto exact = explore_settling(n, good, {a}, 20);
      ASSERT_TRUE(exact.confluent());
      good = *exact.stable_states.begin();
      if (sim.step({a}, good) == DetectStatus::Detected) exact_detected = true;
    }
    EXPECT_TRUE(exact_detected)
        << faults[idx].describe(n) << ": ternary claimed, exact disagrees";
  }
}

// --- engine on a real benchmark ------------------------------------------------

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture() {
    auto synth = benchmark_circuit("rpdft", SynthStyle::SpeedIndependent);
    netlist = std::move(synth.netlist);
    reset = std::move(synth.reset_state);
    AtpgOptions options;
    options.random_budget = 64;
    options.seed = 7;
    engine = std::make_unique<AtpgEngine>(netlist, reset, options);
  }
  Netlist netlist;
  std::vector<bool> reset;
  std::unique_ptr<AtpgEngine> engine;
};

TEST_F(EngineFixture, OutputStuckFullCoverage) {
  // Speed-independent circuits are 100% output stuck-at testable in
  // operation mode (Beerel/Meng) — the paper confirms the result holds
  // under synchronous-vector testing; so must we.
  const auto result = engine->run(output_stuck_faults(netlist));
  EXPECT_EQ(result.stats.undetected, 0u)
      << "coverage " << result.stats.coverage();
  EXPECT_EQ(result.stats.covered, result.stats.total_faults);
}

TEST_F(EngineFixture, InputStuckHighCoverage) {
  const auto result = engine->run(input_stuck_faults(netlist));
  EXPECT_GE(result.stats.coverage(), 0.9);
}

TEST_F(EngineFixture, PhaseCountsAddUp) {
  const auto result = engine->run(input_stuck_faults(netlist));
  EXPECT_EQ(result.stats.by_random + result.stats.by_three_phase +
                result.stats.by_fault_sim,
            result.stats.covered);
  EXPECT_EQ(result.stats.covered + result.stats.undetected,
            result.stats.total_faults);
  EXPECT_EQ(result.outcomes.size(), result.stats.total_faults);
}

TEST_F(EngineFixture, SequencesAreCssgValid) {
  const auto result = engine->run(input_stuck_faults(netlist));
  for (const auto& seq : result.sequences)
    EXPECT_TRUE(engine->follow(seq).has_value());
}

TEST_F(EngineFixture, EverySequenceDetectsItsFault) {
  // Independently re-verify each covered fault against its recorded
  // sequence with a fresh exact simulator.
  const auto result = engine->run(input_stuck_faults(netlist));
  for (const auto& outcome : result.outcomes) {
    if (outcome.covered_by == CoveredBy::None) continue;
    ASSERT_GE(outcome.sequence_index, 0);
    const TestSequence& seq = result.sequences[outcome.sequence_index];
    const auto path = engine->follow(seq);
    ASSERT_TRUE(path.has_value());
    FaultSimulator sim(netlist, outcome.fault, reset);
    DetectStatus status = sim.status();
    for (std::size_t t = 0;
         t < seq.vectors.size() && status == DetectStatus::Undetermined; ++t)
      status = sim.step(seq.vectors[t], engine->graph().states[(*path)[t + 1]]);
    EXPECT_EQ(status, DetectStatus::Detected)
        << outcome.fault.describe(netlist);
  }
}

TEST_F(EngineFixture, ZeroRandomBudgetStillCovers) {
  AtpgOptions options;
  options.random_budget = 0;
  AtpgEngine pure3ph(netlist, reset, options);
  const auto result = pure3ph.run(output_stuck_faults(netlist));
  EXPECT_EQ(result.stats.by_random, 0u);
  EXPECT_EQ(result.stats.undetected, 0u);
}

TEST_F(EngineFixture, DeterministicUnderSeed) {
  AtpgOptions options;
  options.random_budget = 64;
  options.seed = 99;
  AtpgEngine e1(netlist, reset, options);
  AtpgEngine e2(netlist, reset, options);
  const auto r1 = e1.run(input_stuck_faults(netlist));
  const auto r2 = e2.run(input_stuck_faults(netlist));
  EXPECT_EQ(r1.stats.by_random, r2.stats.by_random);
  EXPECT_EQ(r1.stats.by_three_phase, r2.stats.by_three_phase);
  EXPECT_EQ(r1.sequences.size(), r2.sequences.size());
}

TEST_F(EngineFixture, TestProgramExport) {
  const auto result = engine->run(output_stuck_faults(netlist));
  std::ostringstream os;
  write_test_program(os, netlist, *engine, result.sequences);
  const std::string text = os.str();
  EXPECT_NE(text.find(".inputs"), std::string::npos);
  EXPECT_NE(text.find(".sequence 0"), std::string::npos);
  EXPECT_NE(text.find(" / "), std::string::npos);
}

TEST(EngineRedundant, BoundedDelayRedundantCircuitHasUndetectedFaults) {
  // The extra consensus cubes in the redundant bounded-delay mapping are
  // logically redundant: some stuck-at faults on them must be untestable —
  // the mechanism behind trimos-send/vbe10b/vbe6a in Table 2.
  auto plain = benchmark_circuit("rpdft", SynthStyle::BoundedDelay);
  auto synth = benchmark_circuit("vbe6a", SynthStyle::BoundedDelay);
  AtpgOptions options;
  options.random_budget = 128;
  AtpgEngine engine(synth.netlist, synth.reset_state, options);
  const auto result = engine.run(input_stuck_faults(synth.netlist));
  EXPECT_GT(result.stats.undetected, 0u);
}

TEST(Classifier, SoundOnSpeedIndependentSuite) {
  // Anything the classifier proves redundant must indeed be undetected by
  // the full (complete-within-caps) search.
  for (const char* name : {"rpdft", "chu150", "vbe5b", "ebergen"}) {
    auto synth = benchmark_circuit(name, SynthStyle::SpeedIndependent);
    AtpgOptions options;
    options.random_budget = 24;
    options.random_walk_len = 6;
    AtpgEngine engine(synth.netlist, synth.reset_state, options);
    const auto faults = input_stuck_faults(synth.netlist);
    const auto full = engine.run(faults);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (engine.provably_redundant(faults[i])) {
        EXPECT_EQ(full.outcomes[i].covered_by, CoveredBy::None)
            << name << " " << faults[i].describe(synth.netlist);
      }
    }
  }
}

TEST(Classifier, DoesNotChangeCoverage) {
  auto synth = benchmark_circuit("vbe6a", SynthStyle::BoundedDelay);
  const auto faults = input_stuck_faults(synth.netlist);
  const auto run_once = [&](bool classify) {
    AtpgOptions options;
    options.random_budget = 12;
    options.random_walk_len = 6;
    options.classify_undetectable = classify;
    AtpgEngine engine(synth.netlist, synth.reset_state, options);
    return engine.run(faults);
  };
  const auto off = run_once(false);
  const auto on = run_once(true);
  EXPECT_EQ(off.stats.covered, on.stats.covered);
  // On this hazard-laden circuit the classifier proves a large share of
  // the fault list undetectable up front.
  EXPECT_GT(on.stats.proven_redundant, 0u);
  EXPECT_LE(on.stats.three_phase_seconds, off.stats.three_phase_seconds + 0.5);
}

TEST(Classifier, FindsNothingOnFullyTestableCircuit) {
  auto synth = benchmark_circuit("dff", SynthStyle::SpeedIndependent);
  AtpgOptions options;
  options.classify_undetectable = true;
  options.random_budget = 24;
  AtpgEngine engine(synth.netlist, synth.reset_state, options);
  const auto result = engine.run(output_stuck_faults(synth.netlist));
  EXPECT_EQ(result.stats.proven_redundant, 0u);
  EXPECT_EQ(result.stats.undetected, 0u);
}

TEST(EngineStorage, DffBothStylesCovered) {
  for (const SynthStyle style :
       {SynthStyle::SpeedIndependent, SynthStyle::BoundedDelay}) {
    auto synth = benchmark_circuit("dff", style);
    AtpgOptions options;
    options.random_budget = 128;
    AtpgEngine engine(synth.netlist, synth.reset_state, options);
    const auto result = engine.run(output_stuck_faults(synth.netlist));
    EXPECT_GE(result.stats.coverage(), 0.95)
        << (style == SynthStyle::SpeedIndependent ? "SI" : "BD");
  }
}

}  // namespace
}  // namespace xatpg
