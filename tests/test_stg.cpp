#include "stg/stg.hpp"

#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "util/check.hpp"

namespace xatpg {
namespace {

using fixtures::celem_stg;

TEST(Stg, Construction) {
  const Stg stg = celem_stg();
  EXPECT_EQ(stg.num_signals(), 3u);
  EXPECT_EQ(stg.num_transitions(), 6u);
  EXPECT_EQ(stg.num_places(), 8u);
  EXPECT_EQ(stg.transition_label(0), "r0+");
  EXPECT_EQ(stg.transition_label(1), "r0-");
}

TEST(Stg, DuplicateSignalNameThrows) {
  Stg stg("x");
  stg.add_signal("a", SignalKind::Input, false);
  EXPECT_THROW(stg.add_signal("a", SignalKind::Output, false), CheckError);
}

TEST(StgExpand, CelemStateGraph) {
  const Stg stg = celem_stg();
  const StateGraph sg = expand_stg(stg);
  // States: 00/0, 10/0, 01/0, 11/0, 11/1, 01/1, 10/1, 00/1 = 8.
  EXPECT_EQ(sg.num_states(), 8u);
  // Initial state: everything 0, both r+ enabled, a not excited.
  EXPECT_EQ(sg.codes[sg.initial], (std::vector<bool>{false, false, false}));
  EXPECT_TRUE(sg.excited[sg.initial][0]);
  EXPECT_TRUE(sg.excited[sg.initial][1]);
  EXPECT_FALSE(sg.excited[sg.initial][2]);
}

TEST(StgExpand, NextValueFollowsExcitation) {
  const Stg stg = celem_stg();
  const StateGraph sg = expand_stg(stg);
  for (std::uint32_t st = 0; st < sg.num_states(); ++st) {
    const bool r0 = sg.codes[st][0];
    const bool r1 = sg.codes[st][1];
    const bool a = sg.codes[st][2];
    // The C-element next-state function: a' = r0 r1 + a (r0 + r1).
    const bool expected = (r0 && r1) || (a && (r0 || r1));
    EXPECT_EQ(sg.next_value(st, 2), expected) << "state " << st;
  }
}

TEST(StgExpand, QuiescentStates) {
  const Stg stg = celem_stg();
  const StateGraph sg = expand_stg(stg);
  // Output a is excited only in states 11/0 and 00/1: 6 quiescent states.
  EXPECT_EQ(sg.quiescent_states().size(), 6u);
}

TEST(StgExpand, InconsistentStgThrows) {
  Stg stg("bad");
  const auto a = stg.add_signal("a", SignalKind::Input, false);
  const auto ap1 = stg.add_transition(a, true);
  const auto ap2 = stg.add_transition(a, true);  // a+ twice in a row
  stg.arc(ap1, ap2, 0);
  stg.arc(ap2, ap1, 1);
  EXPECT_THROW(expand_stg(stg), CheckError);
}

TEST(StgExpand, StateLimitEnforced) {
  const Stg stg = celem_stg();
  EXPECT_THROW(expand_stg(stg, 3), CheckError);
}

TEST(Csc, CelemHasCsc) {
  const StateGraph sg = expand_stg(celem_stg());
  EXPECT_TRUE(csc_violations(sg).empty());
}

TEST(Csc, DetectsViolation) {
  // Two handshakes sharing no state signal: after (r+, a+, r-), the code
  // returns to a state equal to a later one but with different output
  // excitation.  Build the classic USC/CSC failure: x controls nothing.
  Stg stg("csc-broken");
  const auto r = stg.add_signal("r", SignalKind::Input, false);
  const auto a = stg.add_signal("a", SignalKind::Output, false);
  // Ring: r+ -> a+ -> r- -> a- -> r+ ... but with an extra internal round:
  // a second a+/a- pair gated only by places (same codes, different
  // excitation).
  const auto rp = stg.add_transition(r, true);
  const auto ap = stg.add_transition(a, true);
  const auto rm = stg.add_transition(r, false);
  const auto am = stg.add_transition(a, false);
  const auto ap2 = stg.add_transition(a, true);
  const auto am2 = stg.add_transition(a, false);
  stg.arc(rp, ap);
  stg.arc(ap, rm);
  stg.arc(rm, am);
  stg.arc(am, ap2);   // a rises again while r stays 0...
  stg.arc(ap2, am2);  // ...and falls again
  stg.arc(am2, rp, 1);
  const StateGraph sg = expand_stg(stg);
  // State after am (code r=0,a=0, a+ excited) collides with the initial
  // state (code r=0,a=0, only r+ excited): CSC violation on signal a.
  EXPECT_FALSE(csc_violations(sg).empty());
}

TEST(StgDot, ProducesGraphviz) {
  const StateGraph sg = expand_stg(celem_stg());
  const std::string dot = state_graph_to_dot(sg);
  EXPECT_NE(dot.find("digraph sg"), std::string::npos);
  EXPECT_NE(dot.find("r0+"), std::string::npos);
}

TEST(StgExpand, ConcurrencyDiamond) {
  // Fork into two concurrent transitions: expect the diamond (4 states from
  // the fork point, not 3).
  Stg stg("diamond");
  const auto x = stg.add_signal("x", SignalKind::Input, false);
  const auto u = stg.add_signal("u", SignalKind::Output, false);
  const auto v = stg.add_signal("v", SignalKind::Output, false);
  const auto xp = stg.add_transition(x, true);
  const auto up = stg.add_transition(u, true);
  const auto vp = stg.add_transition(v, true);
  const auto xm = stg.add_transition(x, false);
  const auto um = stg.add_transition(u, false);
  const auto vm = stg.add_transition(v, false);
  stg.arc(xp, up);
  stg.arc(xp, vp);
  stg.arc(up, xm);
  stg.arc(vp, xm);
  stg.arc(xm, um);
  stg.arc(xm, vm);
  stg.arc(um, xp, 1);
  stg.arc(vm, xp, 1);
  const StateGraph sg = expand_stg(stg);
  // Cycle: 000 -> 100 -> {110, 101} -> 111 -> 011 -> {001, 010} -> 000:
  // 8 distinct states.
  EXPECT_EQ(sg.num_states(), 8u);
  EXPECT_TRUE(csc_violations(sg).empty());
}

}  // namespace
}  // namespace xatpg
