// Property tests for dynamic BDD variable reordering (Rudell sifting).
//
// The contract under test: reordering changes the SHAPE of the shared BDD
// graph but never the FUNCTIONS — every external handle keeps denoting the
// same Boolean function through any number of sift passes, arbitrary
// explicit permutations, GC stress, and auto-triggered reorders.  The
// checks run the order-independent observers (sat_count, eval, support) on
// seeded random functions before and after reordering, and pin the classic
// "interleave the pairs" size collapse to show sifting actually optimizes.
#include <gtest/gtest.h>

#include <algorithm>

#include "bdd/bdd.hpp"
#include "fixtures.hpp"
#include "sgraph/encoding.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace xatpg {
namespace {

constexpr std::uint32_t kVars = 12;

std::vector<std::vector<bool>> random_assignments(std::uint64_t seed,
                                                  std::uint32_t nvars,
                                                  std::size_t count) {
  Rng rng(seed);
  std::vector<std::vector<bool>> out(count, std::vector<bool>(nvars));
  for (auto& a : out)
    for (std::uint32_t v = 0; v < nvars; ++v) a[v] = rng.flip();
  return out;
}

/// Order-independent observation of a function.
struct Semantics {
  double count = 0;
  std::vector<std::uint32_t> support;
  std::vector<bool> evals;
};

Semantics observe(BddManager& mgr, const Bdd& f,
                  const std::vector<std::vector<bool>>& assignments) {
  Semantics s;
  s.count = mgr.sat_count(f, mgr.num_vars());
  s.support = mgr.support_vars(f);
  s.evals.reserve(assignments.size());
  for (const auto& a : assignments) s.evals.push_back(mgr.eval(f, a));
  return s;
}

void expect_same(const Semantics& a, const Semantics& b, const char* what) {
  EXPECT_DOUBLE_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.support, b.support) << what;
  EXPECT_EQ(a.evals, b.evals) << what;
}

class ReorderProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};
  BddManager mgr{kVars};
  Bdd random_function(int depth) {
    return fixtures::random_bdd(mgr, rng, depth, kVars);
  }
};

TEST_P(ReorderProperty, SiftPreservesSemantics) {
  const auto assignments = random_assignments(GetParam() * 77 + 1, kVars, 128);
  std::vector<Bdd> funcs;
  for (int i = 0; i < 6; ++i) funcs.push_back(random_function(4));
  funcs.push_back(funcs[0] & funcs[1]);
  funcs.push_back(funcs[2] ^ !funcs[3]);

  std::vector<Semantics> before;
  for (const Bdd& f : funcs) before.push_back(observe(mgr, f, assignments));

  const ReorderStats stats = mgr.sift();
  EXPECT_LE(stats.size_after, stats.size_before);
  EXPECT_EQ(mgr.reorder_count(), 1u);

  for (std::size_t i = 0; i < funcs.size(); ++i)
    expect_same(before[i], observe(mgr, funcs[i], assignments), "post-sift");

  // The combinators still agree with the pre-sift handles: canonicity means
  // rebuilding a function after the reorder lands on the very same node.
  EXPECT_EQ(funcs[0] & funcs[1], funcs[6]);
  EXPECT_EQ(funcs[2] ^ !funcs[3], funcs[7]);
}

TEST_P(ReorderProperty, RepeatedSiftCyclesAreMonotoneAndStable) {
  const auto assignments = random_assignments(GetParam() * 31 + 7, kVars, 64);
  Bdd f = random_function(5);
  const Semantics base = observe(mgr, f, assignments);
  std::size_t last = mgr.sift().size_after;
  for (int cycle = 0; cycle < 4; ++cycle) {
    // Interleave fresh work (which churns the unique tables and computed
    // cache) with further sift passes.
    Bdd churn = random_function(3) | f;
    const ReorderStats stats = mgr.sift();
    EXPECT_LE(stats.size_after, stats.size_before);
    expect_same(base, observe(mgr, f, assignments), "sift cycle");
    EXPECT_TRUE((f & churn) == f);  // f implies churn by construction
    last = stats.size_after;
  }
  // One more pass on an untouched table cannot grow it.
  EXPECT_LE(mgr.sift().size_after, last);
}

TEST_P(ReorderProperty, SiftPreservesComplementEdgeCanonicity) {
  // swap_adjacent_levels restructures nodes in place; every table-resident
  // node (live or dead) must keep the no-complemented-THEN-edge canonical
  // form at every stage, or structural equality would silently stop being
  // function equality.
  std::vector<Bdd> funcs;
  for (int i = 0; i < 6; ++i) funcs.push_back(random_function(4));
  funcs.push_back((!funcs[0]) | funcs[1]);
  funcs.push_back(mgr.ite(funcs[2], !funcs[3], funcs[4]));
  mgr.validate_canonical();
  mgr.sift();
  mgr.validate_canonical();
  // Also after an explicit reversal (maximal swap churn) and a GC.
  std::vector<std::uint32_t> reversed(kVars);
  for (std::uint32_t v = 0; v < kVars; ++v) reversed[v] = kVars - 1 - v;
  mgr.reorder_to(reversed);
  mgr.validate_canonical();
  mgr.collect_garbage();
  mgr.validate_canonical();
}

TEST_P(ReorderProperty, ExplicitPermutationsPreserveSemantics) {
  const auto assignments = random_assignments(GetParam() * 13 + 3, kVars, 96);
  Bdd f = random_function(5);
  Bdd g = random_function(4);
  const Semantics base_f = observe(mgr, f, assignments);
  const Semantics base_g = observe(mgr, g, assignments);

  std::vector<std::uint32_t> order(kVars);
  for (std::uint32_t v = 0; v < kVars; ++v) order[v] = v;
  for (int round = 0; round < 6; ++round) {
    // Deterministic shuffle via the seeded Rng.
    for (std::uint32_t i = kVars; i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    mgr.reorder_to(order);
    EXPECT_EQ(mgr.current_order(), order);
    for (std::uint32_t l = 0; l < kVars; ++l) {
      EXPECT_EQ(mgr.var_at_level(l), order[l]);
      EXPECT_EQ(mgr.level_of(order[l]), l);
    }
    expect_same(base_f, observe(mgr, f, assignments), "permuted f");
    expect_same(base_g, observe(mgr, g, assignments), "permuted g");
    // Canonicity at the new order: conjunction of the surviving handles
    // equals a freshly computed conjunction.
    EXPECT_EQ(f & g, mgr.apply_and(f, g));
  }

  // Return to the identity order: the functions must land back on their
  // canonical identity-order shape, bit-for-bit.
  std::vector<std::uint32_t> identity(kVars);
  for (std::uint32_t v = 0; v < kVars; ++v) identity[v] = v;
  const std::size_t f_nodes_before = f.node_count();
  mgr.reorder_to(identity);
  mgr.reorder_to(identity);  // idempotent: zero swaps the second time
  expect_same(base_f, observe(mgr, f, assignments), "identity restore");
  (void)f_nodes_before;
}

TEST_P(ReorderProperty, GcStressedSiftMatchesUnstressedReference) {
  // Reference manager: same construction, no GC stress, no reordering.
  BddManager ref(kVars);
  Rng ref_rng(GetParam());
  const auto assignments = random_assignments(GetParam() * 5 + 11, kVars, 64);

  // Stressed manager: collect at every op entry AND sift between steps.
  mgr.set_gc_threshold(0);
  for (int step = 0; step < 3; ++step) {
    const Bdd f = random_function(4);
    const Bdd rf = fixtures::random_bdd(ref, ref_rng, 4, kVars);
    mgr.sift();
    Semantics stressed = observe(mgr, f, assignments);
    Semantics reference = observe(ref, rf, assignments);
    expect_same(reference, stressed, "gc-stressed sift");
    mgr.sift();  // double pass under stress
    expect_same(reference, observe(mgr, f, assignments), "double sift");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

// --- targeted behaviours ------------------------------------------------------

TEST(Reorder, SiftCollapsesTheClassicBadOrder) {
  // f = x0·y0 + x1·y1 + ... + x7·y7 with all x's ordered before all y's is
  // the textbook exponential case (~2^(n+1) nodes); pairing the variables
  // collapses it to 3n + 2.  Sifting must find (one of) the good orders.
  constexpr std::uint32_t kPairs = 8;
  BddManager mgr(2 * kPairs);
  Bdd f = mgr.bdd_false();
  for (std::uint32_t i = 0; i < kPairs; ++i)
    f |= mgr.var(i) & mgr.var(kPairs + i);
  const std::size_t bad = f.node_count();
  const double count = mgr.sat_count(f, 2 * kPairs);

  const ReorderStats stats = mgr.sift();
  const std::size_t good = f.node_count();
  EXPECT_GT(bad, 500u);            // exponential before
  EXPECT_LE(good, 3 * kPairs + 2); // linear after
  EXPECT_LT(stats.size_after, stats.size_before);
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, 2 * kPairs), count);
  // Every pair must have ended up adjacent in the order.
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    const std::uint32_t la = mgr.level_of(i);
    const std::uint32_t lb = mgr.level_of(kPairs + i);
    EXPECT_EQ(la > lb ? la - lb : lb - la, 1u) << "pair " << i;
  }
}

TEST(Reorder, MaxGrowthBoundControlsTheWalksNotTheOutcomeValidity) {
  // The max_growth bound may only abort a block's walk early — it must
  // never compromise correctness or let a pass grow the table.  Pin the
  // abort logic from both sides: an effectively unbounded walk must visit
  // every position and therefore reach the known-optimal pairing of the
  // classic function (if the abort comparison were inverted, every walk
  // would stop after its first move and this fails), while the tightest
  // bound (1.0: abort on any growth over the best seen) must still leave a
  // semantically identical, never-larger table using at most as many swaps.
  constexpr std::uint32_t kPairs = 6;
  const auto build = [](BddManager& mgr) {
    Bdd f = mgr.bdd_false();
    for (std::uint32_t i = 0; i < kPairs; ++i)
      f |= mgr.var(i) & mgr.var(kPairs + i);
    return f;
  };
  const auto assignments = random_assignments(17, 2 * kPairs, 64);

  BddManager loose_mgr(2 * kPairs);
  Bdd loose_f = build(loose_mgr);
  const Semantics base = observe(loose_mgr, loose_f, assignments);
  ReorderPolicy policy;
  policy.max_growth = 1e9;  // never abort: walks must be exhaustive
  loose_mgr.set_reorder_policy(policy);
  const ReorderStats loose = loose_mgr.sift();
  EXPECT_LE(loose_f.node_count(), 3 * kPairs + 2);
  expect_same(base, observe(loose_mgr, loose_f, assignments), "loose bound");

  BddManager tight_mgr(2 * kPairs);
  Bdd tight_f = build(tight_mgr);
  policy.max_growth = 1.0;  // abort a direction on any growth
  tight_mgr.set_reorder_policy(policy);
  const ReorderStats tight = tight_mgr.sift();
  EXPECT_LE(tight.size_after, tight.size_before);
  EXPECT_LE(tight.swaps, loose.swaps);
  expect_same(base, observe(tight_mgr, tight_f, assignments), "tight bound");
}

TEST(Reorder, GroupsMoveAsBlocksAndStayAdjacent) {
  constexpr std::uint32_t kGroups = 4;
  BddManager mgr(3 * kGroups);
  std::vector<std::vector<std::uint32_t>> groups;
  for (std::uint32_t g = 0; g < kGroups; ++g)
    groups.push_back({3 * g, 3 * g + 1, 3 * g + 2});
  mgr.set_var_groups(groups);

  // Functions correlating far-apart groups, to give sifting a reason to
  // move them.
  Rng rng(99);
  Bdd f = mgr.bdd_false();
  for (int i = 0; i < 24; ++i) {
    const std::uint32_t a = rng.below(3 * kGroups);
    const std::uint32_t b = rng.below(3 * kGroups);
    f |= (rng.flip() ? mgr.var(a) : mgr.nvar(a)) & mgr.var(b);
  }
  const double count = mgr.sat_count(f, mgr.num_vars());
  mgr.sift();
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, mgr.num_vars()), count);
  for (std::uint32_t g = 0; g < kGroups; ++g) {
    // Adjacent levels, internal creation order preserved.
    const std::uint32_t l0 = mgr.level_of(3 * g);
    EXPECT_EQ(mgr.level_of(3 * g + 1), l0 + 1) << "group " << g;
    EXPECT_EQ(mgr.level_of(3 * g + 2), l0 + 2) << "group " << g;
  }
}

TEST(Reorder, GroupValidationRejectsBadGroups) {
  BddManager mgr(6);
  EXPECT_THROW(mgr.set_var_groups({{0, 2}}), CheckError);     // not adjacent
  EXPECT_THROW(mgr.set_var_groups({{0, 1}, {1, 2}}), CheckError);  // overlap
  EXPECT_THROW(mgr.set_var_groups({{0, 9}}), CheckError);     // out of range
  EXPECT_THROW(mgr.set_var_groups({{}}), CheckError);         // empty
  mgr.set_var_groups({{0, 1}, {4, 5}});                       // fine
  mgr.clear_var_groups();
}

TEST(Reorder, AutoReorderTriggersAtThreshold) {
  BddManager mgr(16);
  ReorderPolicy policy;
  policy.enabled = true;
  policy.trigger_nodes = 64;
  mgr.set_reorder_policy(policy);

  Rng rng(7);
  const auto assignments = random_assignments(42, 16, 64);
  Bdd f = mgr.bdd_false();
  for (std::uint32_t i = 0; i < 8; ++i) f |= mgr.var(i) & mgr.var(8 + i);
  const Semantics base = observe(mgr, f, assignments);
  // Keep operating; the op entries must auto-sift once the table crosses
  // the trigger.
  for (int i = 0; i < 20 && mgr.reorder_count() == 0; ++i)
    f = f | (mgr.var(rng.below(16)) & mgr.var(rng.below(16)));
  EXPECT_GE(mgr.reorder_count(), 1u);
  // Semantics of the original handle survived the auto-reorders (f itself
  // was reassigned; observe the function through a rebuilt twin).
  Bdd twin = mgr.bdd_false();
  for (std::uint32_t i = 0; i < 8; ++i) twin |= mgr.var(i) & mgr.var(8 + i);
  expect_same(base, observe(mgr, twin, assignments), "auto-reorder");
}

TEST(Reorder, ReorderToValidatesItsPermutation) {
  BddManager mgr(4);
  EXPECT_THROW(mgr.reorder_to({0, 1, 2}), CheckError);        // wrong size
  EXPECT_THROW(mgr.reorder_to({0, 1, 2, 2}), CheckError);     // duplicate
  EXPECT_THROW(mgr.reorder_to({0, 1, 2, 7}), CheckError);     // out of range
  mgr.reorder_to({3, 1, 0, 2});
  EXPECT_EQ(mgr.current_order(), (std::vector<std::uint32_t>{3, 1, 0, 2}));
}

TEST(Reorder, EncodingSiftedModeKeepsTriplesGroupedAndSemanticsExact) {
  // The encoding-level contract: VarOrder::Sifted preserves the stable()
  // predicate's semantics (checked exhaustively against the netlist), and
  // every signal's cur/next/aux triple stays level-adjacent after sifting.
  std::vector<bool> st;
  const Netlist n = fig1a_circuit(&st);
  ReorderPolicy policy;
  policy.trigger_nodes = 128;
  SymbolicEncoding enc(n, VarOrder::Sifted, policy);
  const Bdd stable = enc.stable();
  enc.sift_now();
  BddManager& mgr = enc.mgr();
  EXPECT_GE(mgr.reorder_count(), 1u);
  for (std::uint64_t bits = 0; bits < (1ull << n.num_signals()); ++bits) {
    std::vector<bool> state(n.num_signals());
    for (SignalId s = 0; s < n.num_signals(); ++s) state[s] = (bits >> s) & 1;
    std::vector<bool> assignment(mgr.num_vars(), false);
    for (SignalId s = 0; s < n.num_signals(); ++s)
      assignment[enc.cur_var(s)] = state[s];
    ASSERT_EQ(mgr.eval(stable, assignment), n.is_stable_state(state));
  }
  for (SignalId s = 0; s < n.num_signals(); ++s) {
    std::vector<std::uint32_t> levels{mgr.level_of(enc.cur_var(s)),
                                      mgr.level_of(enc.next_var(s)),
                                      mgr.level_of(enc.aux_var(s))};
    std::sort(levels.begin(), levels.end());
    EXPECT_EQ(levels[2] - levels[0], 2u) << "signal " << s;
  }
}

}  // namespace
}  // namespace xatpg
