#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/strings.hpp"

namespace xatpg {
namespace {

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(XATPG_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(XATPG_CHECK(1 + 1 == 3), CheckError);
}

TEST(Check, MessageIsIncluded) {
  try {
    XATPG_CHECK_MSG(false, "custom diagnostic " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom diagnostic 42"),
              std::string::npos);
  }
}

TEST(Check, WhatIncludesFileLineAndExpression) {
  try {
    XATPG_CHECK(2 + 2 == 5);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("check failed"), std::string::npos);
  }
}

TEST(Check, IsALogicError) {
  // Callers that only know std::logic_error must still be able to catch.
  EXPECT_THROW(XATPG_CHECK(false), std::logic_error);
}

TEST(Check, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  auto count = [&] {
    ++calls;
    return true;
  };
  XATPG_CHECK(count());
  EXPECT_EQ(calls, 1);
}

TEST(CheckDeathTest, UncaughtCheckTerminatesWithDiagnostic) {
  // A CheckError escaping a noexcept boundary must reach std::terminate with
  // the diagnostic visible on stderr (how a release-build tool dies when an
  // invariant is violated outside any try block).
  EXPECT_DEATH(
      { []() noexcept { XATPG_CHECK_MSG(false, "fatal invariant " << 7); }(); },
      "fatal invariant 7");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next() != b.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowZeroBoundThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), CheckError);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Strings, SplitWs) {
  const auto tokens = split_ws("  foo bar\tbaz  ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "foo");
  EXPECT_EQ(tokens[1], "bar");
  EXPECT_EQ(tokens[2], "baz");
}

TEST(Strings, SplitWsEmpty) { EXPECT_TRUE(split_ws("   ").empty()); }

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a::b:", ':');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(a)", "INPUT("));
  EXPECT_FALSE(starts_with("IN", "INPUT("));
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace xatpg
