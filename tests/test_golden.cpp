// Golden-value regression tests: exact BDD-manager node counts and CSSG
// state/edge counts for the fixture circuits.
//
// These lock in the paper-table semantics: the CSSG statistics are what the
// Figure 2 / Table 1 columns are computed from, and the BDD counts pin the
// symbolic core's behaviour (hashing, GC thresholds, operation ordering).
// Every number below is deterministic — the library draws randomness only
// from the seeded xoshiro Rng — so any drift is a real semantic change and
// must be reviewed, not papered over.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "fixtures.hpp"
#include "sgraph/cssg.hpp"
#include "util/random.hpp"

namespace xatpg {
namespace {

struct CssgGolden {
  const char* name;
  fixtures::Circuit (*make)();
  std::size_t k;
  std::size_t num_signals, num_pins;
  double reachable, stable, tcr_pairs, nonconfluent, unstable, edges,
      cssg_reachable;
};

class CssgGoldenTest : public ::testing::TestWithParam<CssgGolden> {};

TEST_P(CssgGoldenTest, StateAndEdgeCounts) {
  const CssgGolden& g = GetParam();
  const fixtures::Circuit fix = g.make();
  EXPECT_EQ(fix.netlist.num_signals(), g.num_signals);
  EXPECT_EQ(fix.netlist.num_pins(), g.num_pins);

  CssgOptions options;
  options.k = g.k;
  Cssg cssg(fix.netlist, {fix.reset}, options);
  const CssgStats& st = cssg.stats();
  EXPECT_DOUBLE_EQ(st.reachable_states, g.reachable);
  EXPECT_DOUBLE_EQ(st.stable_states, g.stable);
  EXPECT_DOUBLE_EQ(st.tcr_pairs, g.tcr_pairs);
  EXPECT_DOUBLE_EQ(st.nonconfluent_pairs, g.nonconfluent);
  EXPECT_DOUBLE_EQ(st.unstable_pairs, g.unstable);
  EXPECT_DOUBLE_EQ(st.cssg_edges, g.edges);
  EXPECT_DOUBLE_EQ(st.cssg_reachable_states, g.cssg_reachable);
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, CssgGoldenTest,
    ::testing::Values(
        // Figure 1(a): 44 transient-reachable states collapse to 7 stable
        // ones; 4 of the 23 TCR pairs are pruned as non-confluent races.
        CssgGolden{"fig1a", fixtures::fig1a, 20, 6, 6, 44, 7, 23, 4, 0, 19, 7},
        // Figure 1(b): the oscillating ring prunes both non-confluent and
        // unstable pairs, leaving a 4-edge CSSG over 3 stable states.
        CssgGolden{"fig1b", fixtures::fig1b, 20, 6, 6, 33, 3, 13, 6, 3, 4, 3},
        // A lone C-element is race-free: every TCR pair survives.
        CssgGolden{"celem", fixtures::celem, 20, 3, 2, 8, 6, 18, 0, 0, 18, 6},
        // The gC transparent latch has the same state-count shape as the
        // C-element (both are 2-input state-holding gates).
        CssgGolden{"latch", fixtures::async_latch, 20, 3, 2, 8, 6, 18, 0, 0,
                   18, 6},
        // Two-stage pipeline controller: 2 racy pairs pruned.
        CssgGolden{"pipeline2", fixtures::pipeline2, 24, 5, 7, 26, 8, 25, 2, 0,
                   23, 8}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// --- BDD manager node accounting ---------------------------------------------

TEST(BddGolden, SeededFunctionNodeCounts) {
  // Disjunction of eight seeded random functions over 12 variables: the
  // unique-table contents after construction are a function of the node
  // hashing, reduction and complement-canonicalization rules only.  (The
  // same build cost 1278 nodes before complemented edges.)
  BddManager mgr(12);
  Rng rng(2024);
  Bdd acc = mgr.bdd_false();
  for (int i = 0; i < 8; ++i) acc |= fixtures::random_bdd(mgr, rng, 4, 12);
  EXPECT_EQ(mgr.allocated_nodes(), 1156u);
  EXPECT_EQ(mgr.peak_nodes(), 1156u);
  EXPECT_EQ(mgr.gc_count(), 0u);
}

TEST(BddGolden, FreshManagerBaseline) {
  // A fresh manager owns exactly the single terminal node (TRUE; FALSE is
  // its complemented edge); single-literal nodes are created lazily on
  // first var() use, and nvar shares var's node through a complement.
  BddManager mgr(8);
  EXPECT_EQ(mgr.allocated_nodes(), 1u);
  (void)mgr.var(0);
  EXPECT_EQ(mgr.allocated_nodes(), 2u);
  (void)mgr.var(0);  // cached: no new node
  EXPECT_EQ(mgr.allocated_nodes(), 2u);
  (void)mgr.nvar(0);  // a complemented edge: still no new node
  EXPECT_EQ(mgr.allocated_nodes(), 2u);
}

TEST(BddGolden, CssgPeakNodesOnFixtures) {
  // Peak live-node watermark while building the full symbolic pipeline.
  // These are the numbers the ordering/k ablation benchmarks report; a
  // regression here is a regression in Figure 2 reproduction quality.
  struct Row {
    fixtures::Circuit (*make)();
    std::size_t k;
    std::size_t peak;
  };
  for (const Row& row : {Row{fixtures::fig1a, 20, 1417},
                         Row{fixtures::fig1b, 20, 1363},
                         Row{fixtures::celem, 20, 184},
                         Row{fixtures::async_latch, 20, 182},
                         Row{fixtures::pipeline2, 24, 910}}) {
    const fixtures::Circuit fix = row.make();
    CssgOptions options;
    options.k = row.k;
    Cssg cssg(fix.netlist, {fix.reset}, options);
    EXPECT_EQ(cssg.stats().peak_bdd_nodes, row.peak) << fix.netlist.name();
  }
}

TEST(BddGolden, PostSiftNodeCountsOnFixtures) {
  // Dynamic-reordering regression lock: live node counts entering and
  // leaving one sifting pass over the fully built symbolic pipeline.  Two
  // invariants ride along with the exact numbers: a sifting pass may never
  // leave the table LARGER than it found it (the starting position is
  // always a candidate, so the configured max_growth bound only limits
  // transients mid-walk), and a second pass from the already-optimized
  // order may not grow it either.
  struct Row {
    const char* name;
    fixtures::Circuit (*make)();
    std::size_t k;
    std::size_t before, after;
  };
  for (const Row& row : {Row{"fig1a", fixtures::fig1a, 20, 229, 199},
                         Row{"fig1b", fixtures::fig1b, 20, 223, 196},
                         Row{"chain", fixtures::chain, 20, 45, 45},
                         Row{"celem", fixtures::celem, 20, 54, 54},
                         Row{"latch", fixtures::async_latch, 20, 53, 47},
                         Row{"pipeline2", fixtures::pipeline2, 24, 181, 168}}) {
    const fixtures::Circuit fix = row.make();
    CssgOptions options;
    options.k = row.k;
    Cssg cssg(fix.netlist, {fix.reset}, options);
    const ReorderStats pass = cssg.encoding().sift_now();
    EXPECT_EQ(pass.size_before, row.before) << row.name;
    EXPECT_EQ(pass.size_after, row.after) << row.name;
    EXPECT_LE(pass.size_after, pass.size_before) << row.name;
    const ReorderStats again = cssg.encoding().sift_now();
    EXPECT_LE(again.size_after, row.after) << row.name << " (second pass)";
  }
}

// --- random-netlist generator stability --------------------------------------

TEST(GeneratorGolden, Seed7Shape) {
  // The generator feeds property tests across suites; its output for a
  // given seed is part of the fixture contract.
  const fixtures::Circuit r = fixtures::random_netlist(7);
  EXPECT_EQ(r.netlist.name(), "random7");
  EXPECT_EQ(r.netlist.num_signals(), 11u);
  EXPECT_EQ(r.netlist.num_pins(), 18u);
  EXPECT_TRUE(r.netlist.is_stable_state(r.reset));
}

}  // namespace
}  // namespace xatpg
