// The freeze boundary of the base/delta BDD layering (bdd/bdd.hpp):
//   * a frozen base rejects every mutating operation loudly (XATPG_CHECK);
//   * delta managers resolve substrate functions to handle-identical base
//     nodes and produce results identical to a monolithic manager on seeded
//     random expressions;
//   * GC / sift on one delta never perturbs a sibling delta;
//   * concurrent deltas over one frozen base are race-free (the test runs
//     under the TSan/ASan CI matrix like the rest of the suite).
#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"

namespace xatpg {
namespace {

/// A deterministic random expression over the manager's first `nvars`
/// literals: the same seed replays the identical operation stream on any
/// manager, which is what makes cross-manager handle comparisons meaningful.
Bdd random_expression(BddManager& mgr, std::uint32_t nvars, std::uint64_t seed,
                      std::size_t ops = 24) {
  Rng rng(seed);
  Bdd acc = mgr.var(static_cast<std::uint32_t>(rng.below(nvars)));
  for (std::size_t i = 0; i < ops; ++i) {
    const Bdd lit = mgr.var(static_cast<std::uint32_t>(rng.below(nvars)));
    switch (rng.below(4)) {
      case 0: acc = acc & lit; break;
      case 1: acc = acc | lit; break;
      case 2: acc = acc ^ lit; break;
      default: acc = mgr.ite(lit, !acc, acc); break;
    }
  }
  return acc;
}

/// A base manager with every literal materialized and one substrate
/// function built before the freeze.
class FreezeTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kVars = 8;

  void build_and_freeze() {
    substrate_ = random_expression(base_, kVars, /*seed=*/1);
    base_.freeze();
  }

  BddManager base_{kVars};
  Bdd substrate_;
};

TEST_F(FreezeTest, FrozenBaseRejectsMutatingOps) {
  build_and_freeze();
  ASSERT_TRUE(base_.frozen());
  const Bdd a = substrate_;  // copying a handle is not a mutation
  EXPECT_THROW((void)(a & !a), CheckError);
  EXPECT_THROW((void)base_.ite(a, a, a), CheckError);
  EXPECT_THROW((void)base_.exists(a, a), CheckError);
  EXPECT_THROW((void)base_.make_cube({0, 1}), CheckError);
  EXPECT_THROW((void)base_.make_minterm({0, 1}, {true, false}), CheckError);
  EXPECT_THROW((void)base_.new_var(), CheckError);
  EXPECT_THROW((void)base_.collect_garbage(), CheckError);
  EXPECT_THROW((void)base_.sift(), CheckError);
  EXPECT_THROW((void)base_.reorder_to({0, 1, 2, 3, 4, 5, 6, 7}), CheckError);
  EXPECT_THROW(base_.set_var_groups({{0, 1}}), CheckError);
  EXPECT_THROW(base_.set_gc_threshold(1), CheckError);
  EXPECT_THROW(base_.set_reorder_policy({}), CheckError);
}

TEST_F(FreezeTest, FrozenBaseStillAnswersReadOnlyQueries) {
  build_and_freeze();
  EXPECT_GT(substrate_.node_count(), 0u);
  EXPECT_GT(base_.allocated_nodes(), 0u);
  EXPECT_FALSE(substrate_.is_false());
  // var() for an already-materialized literal is a pure lookup.
  EXPECT_EQ(base_.var(0), base_.var(0));
}

TEST_F(FreezeTest, FreezeAndDeltaConstructionGuards) {
  EXPECT_THROW(BddManager(base_, BddManager::Delta{}), CheckError)
      << "delta over an unfrozen base must be rejected";
  build_and_freeze();
  EXPECT_THROW(base_.freeze(), CheckError) << "double freeze must be rejected";
  BddManager delta(base_, BddManager::Delta{});
  EXPECT_TRUE(delta.is_delta());
  EXPECT_FALSE(delta.frozen());
  EXPECT_EQ(delta.base(), &base_);
  EXPECT_EQ(delta.base_nodes(), base_.allocated_nodes());
  EXPECT_THROW(delta.freeze(), CheckError)
      << "a delta cannot become a base (one level of layering)";
  EXPECT_THROW((void)delta.new_var(), CheckError)
      << "the variable universe is fixed by the base";
}

TEST_F(FreezeTest, SubstrateResolvesToHandleIdenticalBaseNodes) {
  build_and_freeze();
  BddManager delta(base_, BddManager::Delta{});
  // Replaying the exact substrate-building op stream inside the delta must
  // resolve the result from the frozen base arena: same edge word.  (Dead
  // intermediates were swept from the base at freeze, so the replay may
  // rebuild those locally — but they die with it, so a collection leaves
  // the delta arena empty again.)
  const Bdd replay = random_expression(delta, kVars, /*seed=*/1);
  EXPECT_EQ(replay.index(), substrate_.index());
  EXPECT_EQ(replay, delta.adopt(substrate_));
  delta.collect_garbage();
  EXPECT_EQ(delta.allocated_nodes(), 0u)
      << "everything the replay resolved must live in the base arena";
}

TEST_F(FreezeTest, NewFunctionsAllocateLocallyOnly) {
  build_and_freeze();
  const std::size_t base_size = base_.allocated_nodes();
  BddManager delta(base_, BddManager::Delta{});
  const Bdd fresh = random_expression(delta, kVars, /*seed=*/99);
  EXPECT_EQ(base_.allocated_nodes(), base_size)
      << "delta work must never grow the frozen base arena";
  EXPECT_GT(delta.allocated_nodes(), 0u);
  // A genuinely new node carries a global index past the base arena (the
  // edge word is node_index << 1 | complement_bit).
  EXPECT_GE(fresh.index() >> 1, static_cast<std::uint32_t>(base_size));
}

TEST_F(FreezeTest, DeltaMatchesMonolithicOnSeededRandomBdds) {
  build_and_freeze();
  BddManager delta(base_, BddManager::Delta{});
  for (std::uint64_t seed = 2; seed < 12; ++seed) {
    BddManager mono(kVars);
    const Bdd expect = random_expression(mono, kVars, seed);
    const Bdd got = random_expression(delta, kVars, seed);
    EXPECT_EQ(got.node_count(), expect.node_count()) << "seed " << seed;
    // Truth-table equivalence on every assignment (8 vars = 256 rows).
    for (std::uint32_t bits = 0; bits < (1u << kVars); ++bits) {
      std::vector<bool> assignment(kVars);
      for (std::uint32_t v = 0; v < kVars; ++v)
        assignment[v] = ((bits >> v) & 1u) != 0;
      ASSERT_EQ(delta.eval(got, assignment), mono.eval(expect, assignment))
          << "seed " << seed << " assignment " << bits;
    }
  }
}

TEST_F(FreezeTest, GcOnOneDeltaNeverPerturbsASibling) {
  build_and_freeze();
  BddManager left(base_, BddManager::Delta{});
  BddManager right(base_, BddManager::Delta{});
  const Bdd keep = random_expression(right, kVars, /*seed=*/5);
  const std::size_t right_size = right.allocated_nodes();
  const std::size_t keep_nodes = keep.node_count();

  // Churn garbage through the left delta, then collect it.
  for (std::uint64_t seed = 50; seed < 60; ++seed)
    (void)random_expression(left, kVars, seed);
  left.collect_garbage();
  const ReorderStats sifted = left.sift();
  EXPECT_EQ(sifted.swaps, 0u) << "a delta's order is pinned by the base";
  EXPECT_EQ(sifted.blocks_sifted, 0u);

  EXPECT_EQ(right.allocated_nodes(), right_size);
  EXPECT_EQ(keep.node_count(), keep_nodes);
  const Bdd again = random_expression(right, kVars, /*seed=*/5);
  EXPECT_EQ(again, keep) << "sibling delta state must be untouched";
}

TEST_F(FreezeTest, DeltaGcKeepsBaseNodesPermanentlyLive) {
  build_and_freeze();
  BddManager delta(base_, BddManager::Delta{});
  (void)random_expression(delta, kVars, /*seed=*/7);
  delta.collect_garbage();  // every local root is dead — sweep it all
  EXPECT_EQ(delta.base_nodes(), base_.allocated_nodes());
  // The substrate is still fully usable through the delta afterwards.
  const Bdd readopted = delta.adopt(substrate_);
  EXPECT_EQ(readopted.index(), substrate_.index());
  EXPECT_GT(readopted.node_count(), 0u);
}

TEST_F(FreezeTest, AdoptRejectsForeignHandles) {
  build_and_freeze();
  BddManager delta(base_, BddManager::Delta{});
  BddManager other(kVars);
  const Bdd foreign = other.var(0);
  EXPECT_THROW((void)delta.adopt(foreign), CheckError);
  EXPECT_THROW((void)base_.adopt(delta.adopt(substrate_)), CheckError)
      << "adoption crosses base -> delta only";
  EXPECT_FALSE(delta.adopt(Bdd{}).valid()) << "invalid handles pass through";
}

TEST_F(FreezeTest, ConcurrentDeltasOverOneFrozenBase) {
  build_and_freeze();  // publication point: freeze happens-before the spawns
  constexpr std::size_t kWorkers = 4;
  std::vector<std::size_t> node_counts(kWorkers, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (std::size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([this, w, &node_counts] {
        BddManager delta(base_, BddManager::Delta{});
        Bdd acc = delta.adopt(substrate_);
        for (std::uint64_t seed = 100; seed < 110; ++seed)
          acc = acc ^ random_expression(delta, kVars, seed + w);
        delta.collect_garbage();
        node_counts[w] = acc.node_count();
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  for (std::size_t w = 0; w < kWorkers; ++w)
    EXPECT_GT(node_counts[w], 0u) << "worker " << w;
}

}  // namespace
}  // namespace xatpg
