#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace xatpg {
namespace {

class BddTest : public ::testing::Test {
 protected:
  BddManager mgr{8};
  Bdd v(std::uint32_t i) { return mgr.var(i); }
};

TEST_F(BddTest, Constants) {
  EXPECT_TRUE(mgr.bdd_true().is_true());
  EXPECT_TRUE(mgr.bdd_false().is_false());
  EXPECT_NE(mgr.bdd_true(), mgr.bdd_false());
}

TEST_F(BddTest, VarCanonical) {
  EXPECT_EQ(v(0), v(0));
  EXPECT_NE(v(0), v(1));
}

TEST_F(BddTest, NotInvolution) {
  const Bdd f = (v(0) & v(1)) | v(2);
  EXPECT_EQ(!!f, f);
}

TEST_F(BddTest, NVarEqualsNotVar) { EXPECT_EQ(mgr.nvar(3), !v(3)); }

TEST_F(BddTest, AndBasics) {
  EXPECT_EQ(v(0) & mgr.bdd_true(), v(0));
  EXPECT_EQ(v(0) & mgr.bdd_false(), mgr.bdd_false());
  EXPECT_EQ(v(0) & v(0), v(0));
  EXPECT_EQ(v(0) & !v(0), mgr.bdd_false());
}

TEST_F(BddTest, OrBasics) {
  EXPECT_EQ(v(0) | mgr.bdd_true(), mgr.bdd_true());
  EXPECT_EQ(v(0) | mgr.bdd_false(), v(0));
  EXPECT_EQ(v(0) | !v(0), mgr.bdd_true());
}

TEST_F(BddTest, XorBasics) {
  EXPECT_EQ(v(0) ^ v(0), mgr.bdd_false());
  EXPECT_EQ(v(0) ^ !v(0), mgr.bdd_true());
  EXPECT_EQ(v(0) ^ mgr.bdd_false(), v(0));
  EXPECT_EQ(v(0) ^ mgr.bdd_true(), !v(0));
}

TEST_F(BddTest, DeMorgan) {
  const Bdd lhs = !(v(0) & v(1));
  const Bdd rhs = (!v(0)) | (!v(1));
  EXPECT_EQ(lhs, rhs);
}

TEST_F(BddTest, DistributivityRandomized) {
  Rng rng(42);
  auto random_fn = [&](int depth) {
    return fixtures::random_bdd(mgr, rng, depth, 8);
  };
  for (int i = 0; i < 20; ++i) {
    const Bdd a = random_fn(3), b = random_fn(3), c = random_fn(3);
    EXPECT_EQ(a & (b | c), (a & b) | (a & c));
    EXPECT_EQ(a | (b & c), (a | b) & (a | c));
  }
}

TEST_F(BddTest, IteMatchesDefinition) {
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const Bdd f = rng.flip() ? v(rng.below(8)) : (v(rng.below(8)) & v(rng.below(8)));
    const Bdd g = v(rng.below(8)) | v(rng.below(8));
    const Bdd h = v(rng.below(8)) ^ v(rng.below(8));
    EXPECT_EQ(mgr.ite(f, g, h), (f & g) | ((!f) & h));
  }
}

TEST_F(BddTest, EvalTruthTable) {
  const Bdd f = (v(0) & v(1)) | ((!v(0)) & v(2));
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> a(8, false);
    a[0] = bits & 1;
    a[1] = bits & 2;
    a[2] = bits & 4;
    const bool expected = (a[0] && a[1]) || (!a[0] && a[2]);
    EXPECT_EQ(mgr.eval(f, a), expected);
  }
}

TEST_F(BddTest, ExistsRemovesVariable) {
  const Bdd f = v(0) & v(1);
  const Bdd q = mgr.exists(f, mgr.make_cube({0}));
  EXPECT_EQ(q, v(1));
  const auto support = mgr.support_vars(q);
  EXPECT_EQ(support, (std::vector<std::uint32_t>{1}));
}

TEST_F(BddTest, ExistsIsDisjunctionOfCofactors) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = (v(rng.below(4)) & v(4 + rng.below(4))) ^ v(rng.below(8));
    const std::uint32_t x = rng.below(8);
    const Bdd q = mgr.exists(f, mgr.make_cube({x}));
    EXPECT_EQ(q, mgr.cofactor(f, x, false) | mgr.cofactor(f, x, true));
  }
}

TEST_F(BddTest, ForallIsConjunctionOfCofactors) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = (v(rng.below(4)) | v(4 + rng.below(4))) ^ v(rng.below(8));
    const std::uint32_t x = rng.below(8);
    const Bdd q = mgr.forall(f, mgr.make_cube({x}));
    EXPECT_EQ(q, mgr.cofactor(f, x, false) & mgr.cofactor(f, x, true));
  }
}

TEST_F(BddTest, AndExistsEqualsExistsOfAnd) {
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    const Bdd f = (v(rng.below(8)) & v(rng.below(8))) | v(rng.below(8));
    const Bdd g = (v(rng.below(8)) | v(rng.below(8))) ^ v(rng.below(8));
    const Bdd cube = mgr.make_cube({std::uint32_t(rng.below(8)), std::uint32_t(rng.below(8))});
    EXPECT_EQ(mgr.and_exists(f, g, cube), mgr.exists(f & g, cube));
  }
}

TEST_F(BddTest, PermuteSwapsVariables) {
  const Bdd f = v(0) & !v(1);
  std::vector<std::uint32_t> perm(8);
  for (std::uint32_t i = 0; i < 8; ++i) perm[i] = i;
  perm[0] = 1;
  perm[1] = 0;
  EXPECT_EQ(mgr.permute(f, perm), v(1) & !v(0));
}

TEST_F(BddTest, PermuteShiftGroup) {
  // Shift vars 0..3 onto 4..7 — the cur->next renaming pattern.
  const Bdd f = (v(0) | v(2)) & v(3);
  std::vector<std::uint32_t> perm{4, 5, 6, 7, 0, 1, 2, 3};
  EXPECT_EQ(mgr.permute(f, perm), (v(4) | v(6)) & v(7));
  // Applying the (involutive) permutation twice restores f.
  EXPECT_EQ(mgr.permute(mgr.permute(f, perm), perm), f);
}

TEST_F(BddTest, ComposeSubstitutes) {
  const Bdd f = v(0) & v(1);
  const Bdd g = v(2) | v(3);
  const Bdd composed = mgr.compose(f, 0, g);
  EXPECT_EQ(composed, (v(2) | v(3)) & v(1));
}

TEST_F(BddTest, ComposeWithConstant) {
  const Bdd f = v(0) ^ v(1);
  EXPECT_EQ(mgr.compose(f, 0, mgr.bdd_true()), !v(1));
  EXPECT_EQ(mgr.compose(f, 0, mgr.bdd_false()), v(1));
}

TEST_F(BddTest, CofactorFixesVariable) {
  const Bdd f = (v(0) & v(1)) | ((!v(0)) & v(2));
  EXPECT_EQ(mgr.cofactor(f, 0, true), v(1));
  EXPECT_EQ(mgr.cofactor(f, 0, false), v(2));
}

TEST_F(BddTest, SupportVars) {
  const Bdd f = (v(1) & v(3)) | v(6);
  EXPECT_EQ(mgr.support_vars(f), (std::vector<std::uint32_t>{1, 3, 6}));
}

TEST_F(BddTest, SatCount) {
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_true(), 8), 256.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_false(), 8), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0), 8), 128.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) & v(1), 8), 64.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) | v(1), 8), 192.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) ^ v(7), 8), 128.0);
}

TEST_F(BddTest, MakeCubeAndMinterm) {
  const Bdd cube = mgr.make_cube({0, 2});
  EXPECT_EQ(cube, v(0) & v(2));
  const Bdd m = mgr.make_minterm({0, 1, 2}, {true, false, true});
  EXPECT_EQ(m, v(0) & !v(1) & v(2));
}

TEST_F(BddTest, PickMintermSatisfies) {
  Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    const Bdd f = (v(rng.below(8)) | v(rng.below(8))) & !v(rng.below(8));
    if (f.is_false()) continue;
    std::vector<std::uint32_t> all_vars;
    for (std::uint32_t x = 0; x < 8; ++x) all_vars.push_back(x);
    const auto picked = mgr.pick_minterm(f, all_vars);
    std::vector<bool> assignment(8);
    for (std::uint32_t x = 0; x < 8; ++x)
      assignment[x] = picked[x] == Tri::One;  // DontCare -> 0 is fine
    EXPECT_TRUE(mgr.eval(f, assignment));
  }
}

TEST_F(BddTest, PickMintermOnZeroThrows) {
  EXPECT_THROW(mgr.pick_minterm(mgr.bdd_false(), {0}), CheckError);
}

TEST_F(BddTest, Implies) {
  EXPECT_TRUE((v(0) & v(1)).implies(v(0)));
  EXPECT_FALSE(v(0).implies(v(0) & v(1)));
  EXPECT_TRUE(mgr.bdd_false().implies(v(3)));
}

TEST_F(BddTest, NodeCount) {
  EXPECT_EQ(mgr.bdd_true().node_count(), 1u);
  EXPECT_EQ(v(0).node_count(), 3u);  // node + two terminals
}

TEST(BddManagerTest, GarbageCollectionKeepsLiveNodes) {
  BddManager mgr(16);
  Bdd keep = mgr.var(0) & mgr.var(1) & mgr.var(2);
  {
    // Create garbage.
    for (int i = 0; i < 1000; ++i) {
      Bdd junk = mgr.var(i % 16) ^ mgr.var((i + 5) % 16);
      junk = junk | mgr.var((i + 3) % 16);
    }
  }
  const std::size_t before = mgr.allocated_nodes();
  const std::size_t freed = mgr.collect_garbage();
  EXPECT_GT(freed, 0u);
  EXPECT_LT(mgr.allocated_nodes(), before);
  // The kept function still evaluates correctly after GC.
  std::vector<bool> a(16, true);
  EXPECT_TRUE(mgr.eval(keep, a));
  a[1] = false;
  EXPECT_FALSE(mgr.eval(keep, a));
  // And operations on it still work (unique table was rebuilt correctly).
  EXPECT_EQ(keep & mgr.var(0), keep);
}

TEST(BddManagerTest, HandlesSurviveManagerScopesIndependently) {
  BddManager mgr(4);
  Bdd a;
  {
    Bdd b = mgr.var(1) | mgr.var(2);
    a = b;  // copy keeps refcount via registry
  }
  mgr.collect_garbage();
  std::vector<bool> assignment{false, true, false, false};
  EXPECT_TRUE(mgr.eval(a, assignment));
}

TEST(BddManagerTest, MoveSemantics) {
  BddManager mgr(4);
  Bdd a = mgr.var(0) & mgr.var(1);
  Bdd b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserting state
  EXPECT_TRUE(b.valid());
  mgr.collect_garbage();
  std::vector<bool> assignment{true, true, false, false};
  EXPECT_TRUE(mgr.eval(b, assignment));
}

TEST(BddManagerTest, NewVarGrowsUniverse) {
  BddManager mgr(0);
  EXPECT_EQ(mgr.num_vars(), 0u);
  const auto a = mgr.new_var();
  const auto b = mgr.new_var();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_NE(mgr.var(a), mgr.var(b));
}

TEST(BddManagerTest, LargeRandomEquivalenceAgainstTruthTable) {
  // Build random 10-var expressions and compare against brute-force
  // evaluation on all 1024 assignments.
  BddManager mgr(10);
  Rng rng(31337);
  for (int trial = 0; trial < 5; ++trial) {
    // Random expression tree as (op, lhs, rhs) over literals.
    struct Node {
      int op;  // 0=AND 1=OR 2=XOR, -1=literal
      int var = 0;
      bool neg = false;
      int lhs = 0, rhs = 0;
    };
    std::vector<Node> nodes;
    auto build = [&](auto&& self, int depth) -> int {
      if (depth == 0) {
        nodes.push_back({-1, static_cast<int>(rng.below(10)), rng.flip(), 0, 0});
        return static_cast<int>(nodes.size()) - 1;
      }
      const int l = self(self, depth - 1);
      const int r = self(self, depth - 1);
      nodes.push_back({static_cast<int>(rng.below(3)), 0, false, l, r});
      return static_cast<int>(nodes.size()) - 1;
    };
    const int root = build(build, 5);

    auto to_bdd = [&](auto&& self, int n) -> Bdd {
      const Node& nd = nodes[n];
      if (nd.op == -1) {
        Bdd lit = mgr.var(nd.var);
        return nd.neg ? !lit : lit;
      }
      const Bdd l = self(self, nd.lhs);
      const Bdd r = self(self, nd.rhs);
      return nd.op == 0 ? (l & r) : nd.op == 1 ? (l | r) : (l ^ r);
    };
    const Bdd f = to_bdd(to_bdd, root);

    auto eval_expr = [&](auto&& self, int n,
                         const std::vector<bool>& a) -> bool {
      const Node& nd = nodes[n];
      if (nd.op == -1) return nd.neg ? !a[nd.var] : a[nd.var];
      const bool l = self(self, nd.lhs, a);
      const bool r = self(self, nd.rhs, a);
      return nd.op == 0 ? (l && r) : nd.op == 1 ? (l || r) : (l != r);
    };

    for (int bits = 0; bits < 1024; ++bits) {
      std::vector<bool> a(10);
      for (int i = 0; i < 10; ++i) a[i] = (bits >> i) & 1;
      ASSERT_EQ(mgr.eval(f, a), eval_expr(eval_expr, root, a))
          << "trial " << trial << " assignment " << bits;
    }
  }
}

}  // namespace
}  // namespace xatpg
