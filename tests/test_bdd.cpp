#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace xatpg {
namespace {

class BddTest : public ::testing::Test {
 protected:
  BddManager mgr{8};
  Bdd v(std::uint32_t i) { return mgr.var(i); }
};

TEST_F(BddTest, Constants) {
  EXPECT_TRUE(mgr.bdd_true().is_true());
  EXPECT_TRUE(mgr.bdd_false().is_false());
  EXPECT_NE(mgr.bdd_true(), mgr.bdd_false());
}

TEST_F(BddTest, VarCanonical) {
  EXPECT_EQ(v(0), v(0));
  EXPECT_NE(v(0), v(1));
}

TEST_F(BddTest, NotInvolution) {
  const Bdd f = (v(0) & v(1)) | v(2);
  EXPECT_EQ(!!f, f);
}

TEST_F(BddTest, NVarEqualsNotVar) { EXPECT_EQ(mgr.nvar(3), !v(3)); }

TEST_F(BddTest, AndBasics) {
  EXPECT_EQ(v(0) & mgr.bdd_true(), v(0));
  EXPECT_EQ(v(0) & mgr.bdd_false(), mgr.bdd_false());
  EXPECT_EQ(v(0) & v(0), v(0));
  EXPECT_EQ(v(0) & !v(0), mgr.bdd_false());
}

TEST_F(BddTest, OrBasics) {
  EXPECT_EQ(v(0) | mgr.bdd_true(), mgr.bdd_true());
  EXPECT_EQ(v(0) | mgr.bdd_false(), v(0));
  EXPECT_EQ(v(0) | !v(0), mgr.bdd_true());
}

TEST_F(BddTest, XorBasics) {
  EXPECT_EQ(v(0) ^ v(0), mgr.bdd_false());
  EXPECT_EQ(v(0) ^ !v(0), mgr.bdd_true());
  EXPECT_EQ(v(0) ^ mgr.bdd_false(), v(0));
  EXPECT_EQ(v(0) ^ mgr.bdd_true(), !v(0));
}

TEST_F(BddTest, DeMorgan) {
  const Bdd lhs = !(v(0) & v(1));
  const Bdd rhs = (!v(0)) | (!v(1));
  EXPECT_EQ(lhs, rhs);
}

TEST_F(BddTest, DistributivityRandomized) {
  Rng rng(42);
  auto random_fn = [&](int depth) {
    return fixtures::random_bdd(mgr, rng, depth, 8);
  };
  for (int i = 0; i < 20; ++i) {
    const Bdd a = random_fn(3), b = random_fn(3), c = random_fn(3);
    EXPECT_EQ(a & (b | c), (a & b) | (a & c));
    EXPECT_EQ(a | (b & c), (a | b) & (a | c));
  }
}

TEST_F(BddTest, IteMatchesDefinition) {
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const Bdd f = rng.flip() ? v(rng.below(8)) : (v(rng.below(8)) & v(rng.below(8)));
    const Bdd g = v(rng.below(8)) | v(rng.below(8));
    const Bdd h = v(rng.below(8)) ^ v(rng.below(8));
    EXPECT_EQ(mgr.ite(f, g, h), (f & g) | ((!f) & h));
  }
}

TEST_F(BddTest, EvalTruthTable) {
  const Bdd f = (v(0) & v(1)) | ((!v(0)) & v(2));
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> a(8, false);
    a[0] = bits & 1;
    a[1] = bits & 2;
    a[2] = bits & 4;
    const bool expected = (a[0] && a[1]) || (!a[0] && a[2]);
    EXPECT_EQ(mgr.eval(f, a), expected);
  }
}

TEST_F(BddTest, ExistsRemovesVariable) {
  const Bdd f = v(0) & v(1);
  const Bdd q = mgr.exists(f, mgr.make_cube({0}));
  EXPECT_EQ(q, v(1));
  const auto support = mgr.support_vars(q);
  EXPECT_EQ(support, (std::vector<std::uint32_t>{1}));
}

TEST_F(BddTest, ExistsIsDisjunctionOfCofactors) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = (v(rng.below(4)) & v(4 + rng.below(4))) ^ v(rng.below(8));
    const std::uint32_t x = rng.below(8);
    const Bdd q = mgr.exists(f, mgr.make_cube({x}));
    EXPECT_EQ(q, mgr.cofactor(f, x, false) | mgr.cofactor(f, x, true));
  }
}

TEST_F(BddTest, ForallIsConjunctionOfCofactors) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = (v(rng.below(4)) | v(4 + rng.below(4))) ^ v(rng.below(8));
    const std::uint32_t x = rng.below(8);
    const Bdd q = mgr.forall(f, mgr.make_cube({x}));
    EXPECT_EQ(q, mgr.cofactor(f, x, false) & mgr.cofactor(f, x, true));
  }
}

TEST_F(BddTest, AndExistsEqualsExistsOfAnd) {
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    const Bdd f = (v(rng.below(8)) & v(rng.below(8))) | v(rng.below(8));
    const Bdd g = (v(rng.below(8)) | v(rng.below(8))) ^ v(rng.below(8));
    const Bdd cube = mgr.make_cube({std::uint32_t(rng.below(8)), std::uint32_t(rng.below(8))});
    EXPECT_EQ(mgr.and_exists(f, g, cube), mgr.exists(f & g, cube));
  }
}

TEST_F(BddTest, PermuteSwapsVariables) {
  const Bdd f = v(0) & !v(1);
  std::vector<std::uint32_t> perm(8);
  for (std::uint32_t i = 0; i < 8; ++i) perm[i] = i;
  perm[0] = 1;
  perm[1] = 0;
  EXPECT_EQ(mgr.permute(f, perm), v(1) & !v(0));
}

TEST_F(BddTest, PermuteShiftGroup) {
  // Shift vars 0..3 onto 4..7 — the cur->next renaming pattern.
  const Bdd f = (v(0) | v(2)) & v(3);
  std::vector<std::uint32_t> perm{4, 5, 6, 7, 0, 1, 2, 3};
  EXPECT_EQ(mgr.permute(f, perm), (v(4) | v(6)) & v(7));
  // Applying the (involutive) permutation twice restores f.
  EXPECT_EQ(mgr.permute(mgr.permute(f, perm), perm), f);
}

TEST_F(BddTest, ComposeSubstitutes) {
  const Bdd f = v(0) & v(1);
  const Bdd g = v(2) | v(3);
  const Bdd composed = mgr.compose(f, 0, g);
  EXPECT_EQ(composed, (v(2) | v(3)) & v(1));
}

TEST_F(BddTest, ComposeWithConstant) {
  const Bdd f = v(0) ^ v(1);
  EXPECT_EQ(mgr.compose(f, 0, mgr.bdd_true()), !v(1));
  EXPECT_EQ(mgr.compose(f, 0, mgr.bdd_false()), v(1));
}

TEST_F(BddTest, CofactorFixesVariable) {
  const Bdd f = (v(0) & v(1)) | ((!v(0)) & v(2));
  EXPECT_EQ(mgr.cofactor(f, 0, true), v(1));
  EXPECT_EQ(mgr.cofactor(f, 0, false), v(2));
}

TEST_F(BddTest, SupportVars) {
  const Bdd f = (v(1) & v(3)) | v(6);
  EXPECT_EQ(mgr.support_vars(f), (std::vector<std::uint32_t>{1, 3, 6}));
}

TEST_F(BddTest, SatCount) {
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_true(), 8), 256.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_false(), 8), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0), 8), 128.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) & v(1), 8), 64.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) | v(1), 8), 192.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) ^ v(7), 8), 128.0);
}

TEST_F(BddTest, MakeCubeAndMinterm) {
  const Bdd cube = mgr.make_cube({0, 2});
  EXPECT_EQ(cube, v(0) & v(2));
  const Bdd m = mgr.make_minterm({0, 1, 2}, {true, false, true});
  EXPECT_EQ(m, v(0) & !v(1) & v(2));
}

TEST_F(BddTest, PickMintermSatisfies) {
  Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    const Bdd f = (v(rng.below(8)) | v(rng.below(8))) & !v(rng.below(8));
    if (f.is_false()) continue;
    std::vector<std::uint32_t> all_vars;
    for (std::uint32_t x = 0; x < 8; ++x) all_vars.push_back(x);
    const auto picked = mgr.pick_minterm(f, all_vars);
    std::vector<bool> assignment(8);
    for (std::uint32_t x = 0; x < 8; ++x)
      assignment[x] = picked[x] == Tri::One;  // DontCare -> 0 is fine
    EXPECT_TRUE(mgr.eval(f, assignment));
  }
}

TEST_F(BddTest, PickMintermOnZeroThrows) {
  EXPECT_THROW(mgr.pick_minterm(mgr.bdd_false(), {0}), CheckError);
}

TEST_F(BddTest, Implies) {
  EXPECT_TRUE((v(0) & v(1)).implies(v(0)));
  EXPECT_FALSE(v(0).implies(v(0) & v(1)));
  EXPECT_TRUE(mgr.bdd_false().implies(v(3)));
}

TEST_F(BddTest, NodeCount) {
  EXPECT_EQ(mgr.bdd_true().node_count(), 1u);
  EXPECT_EQ(mgr.bdd_false().node_count(), 1u);  // shares the TRUE terminal
  EXPECT_EQ(v(0).node_count(), 2u);  // node + the single terminal
  EXPECT_EQ((!v(0)).node_count(), 2u);  // complement shares the same nodes
}

// --- complement-edge canonicity invariants -----------------------------------
//
// The kernel stores negation as an attribute bit on edges; canonical form
// forbids a complemented THEN edge anywhere in the unique table, which is
// what makes structural equality function equality.  These tests pin the
// invariants the rest of the stack silently relies on.

TEST(BddComplement, NegationIsFreeAndInvolutive) {
  BddManager mgr(8);
  Rng rng(99);
  const Bdd f = fixtures::random_bdd(mgr, rng, 5, 8);
  const std::size_t before = mgr.allocated_nodes();
  const Bdd nf = !f;
  const Bdd nnf = !nf;
  // operator! allocates no nodes — it is a bit flip on the edge.
  EXPECT_EQ(mgr.allocated_nodes(), before);
  EXPECT_EQ(mgr.apply_not(f), nf);
  EXPECT_EQ(mgr.allocated_nodes(), before);
  // Involution is handle-identical, not just semantically equal.
  EXPECT_EQ(nnf, f);
  EXPECT_EQ(nnf.index(), f.index());
  // f and !f share every node: same node_count, complementary attribute.
  EXPECT_EQ(nf.node_count(), f.node_count());
  EXPECT_NE(nf.complemented(), f.complemented());
}

TEST(BddComplement, ExcludedMiddleIsConstant) {
  BddManager mgr(8);
  Rng rng(123);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = fixtures::random_bdd(mgr, rng, 4, 8);
    EXPECT_TRUE((f ^ !f).is_true());
    EXPECT_TRUE((f | !f).is_true());
    EXPECT_TRUE((f & !f).is_false());
    EXPECT_TRUE(f.implies(f));
  }
}

TEST(BddComplement, ConstantsAreComplementsOfEachOther) {
  BddManager mgr(2);
  EXPECT_EQ(!mgr.bdd_true(), mgr.bdd_false());
  EXPECT_EQ(!mgr.bdd_false(), mgr.bdd_true());
  // One shared terminal: negating a constant allocates nothing.
  EXPECT_EQ(mgr.allocated_nodes(), 1u);
}

TEST(BddComplement, NVarAllocatesNothing) {
  BddManager mgr(4);
  (void)mgr.var(2);
  const std::size_t before = mgr.allocated_nodes();
  const Bdd neg = mgr.nvar(2);
  EXPECT_EQ(mgr.allocated_nodes(), before);
  EXPECT_EQ(neg, !mgr.var(2));
}

TEST(BddComplement, NoComplementedThenEdgeAfterOpBattery) {
  // Drive every operation family, then sweep the whole unique table and
  // assert the canonical-form invariants (no complemented THEN edge, no
  // redundant node, children strictly below) on every resident node.
  BddManager mgr(10);
  Rng rng(7777);
  Bdd acc = mgr.bdd_false();
  for (int i = 0; i < 10; ++i) {
    const Bdd f = fixtures::random_bdd(mgr, rng, 4, 10);
    const Bdd g = fixtures::random_bdd(mgr, rng, 4, 10);
    const Bdd cube = mgr.make_cube({1, 4, 7});
    acc |= mgr.and_exists(f, g, cube);
    acc ^= mgr.forall(f | g, cube);
    acc = mgr.ite(f, acc, !acc);
    acc = mgr.compose(acc, 3, g);
    acc = mgr.cofactor(acc, 5, rng.flip());
  }
  const std::size_t checked = mgr.validate_canonical();
  EXPECT_GE(checked, acc.node_count() - 1);  // everything live is resident
  // The invariants survive garbage collection (the sweep rebuilds chains).
  mgr.collect_garbage();
  mgr.validate_canonical();
}

TEST(BddComplement, CacheCountersAdvance) {
  BddManager mgr(8);
  Rng rng(31);
  EXPECT_EQ(mgr.cache_lookups(), 0u);
  Bdd acc = mgr.bdd_false();
  for (int i = 0; i < 6; ++i) acc |= fixtures::random_bdd(mgr, rng, 4, 8);
  // Repeat an identical operation: the second round must hit.
  const Bdd f = fixtures::random_bdd(mgr, rng, 4, 8);
  const Bdd g = fixtures::random_bdd(mgr, rng, 4, 8);
  (void)(f & g);
  const std::size_t hits_before = mgr.cache_hits();
  (void)(f & g);
  EXPECT_GT(mgr.cache_hits(), hits_before);
  EXPECT_GE(mgr.cache_lookups(), mgr.cache_hits());
  EXPECT_GT(mgr.unique_load(), 0.0);
  // Complement normalization: AND over complemented operands reuses the
  // same cache lines (the not-variant costs no fresh misses beyond the
  // first level of recursion).
  const std::size_t lookups_before = mgr.cache_lookups();
  const Bdd a = !((!f) | (!g));  // De Morgan spelling of f & g
  EXPECT_EQ(a, f & g);
  EXPECT_GT(mgr.cache_lookups(), lookups_before);
}

TEST(BddManagerTest, GarbageCollectionKeepsLiveNodes) {
  BddManager mgr(16);
  Bdd keep = mgr.var(0) & mgr.var(1) & mgr.var(2);
  {
    // Create garbage.
    for (int i = 0; i < 1000; ++i) {
      Bdd junk = mgr.var(i % 16) ^ mgr.var((i + 5) % 16);
      junk = junk | mgr.var((i + 3) % 16);
    }
  }
  const std::size_t before = mgr.allocated_nodes();
  const std::size_t freed = mgr.collect_garbage();
  EXPECT_GT(freed, 0u);
  EXPECT_LT(mgr.allocated_nodes(), before);
  // The kept function still evaluates correctly after GC.
  std::vector<bool> a(16, true);
  EXPECT_TRUE(mgr.eval(keep, a));
  a[1] = false;
  EXPECT_FALSE(mgr.eval(keep, a));
  // And operations on it still work (unique table was rebuilt correctly).
  EXPECT_EQ(keep & mgr.var(0), keep);
}

TEST(BddManagerTest, HandlesSurviveManagerScopesIndependently) {
  BddManager mgr(4);
  Bdd a;
  {
    Bdd b = mgr.var(1) | mgr.var(2);
    a = b;  // copy keeps refcount via registry
  }
  mgr.collect_garbage();
  std::vector<bool> assignment{false, true, false, false};
  EXPECT_TRUE(mgr.eval(a, assignment));
}

TEST(BddManagerTest, MoveSemantics) {
  BddManager mgr(4);
  Bdd a = mgr.var(0) & mgr.var(1);
  Bdd b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserting state
  EXPECT_TRUE(b.valid());
  mgr.collect_garbage();
  std::vector<bool> assignment{true, true, false, false};
  EXPECT_TRUE(mgr.eval(b, assignment));
}

TEST(BddManagerTest, NewVarGrowsUniverse) {
  BddManager mgr(0);
  EXPECT_EQ(mgr.num_vars(), 0u);
  const auto a = mgr.new_var();
  const auto b = mgr.new_var();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_NE(mgr.var(a), mgr.var(b));
}

TEST(BddManagerTest, LargeRandomEquivalenceAgainstTruthTable) {
  // Build random 10-var expressions and compare against brute-force
  // evaluation on all 1024 assignments.
  BddManager mgr(10);
  Rng rng(31337);
  for (int trial = 0; trial < 5; ++trial) {
    // Random expression tree as (op, lhs, rhs) over literals.
    struct Node {
      int op;  // 0=AND 1=OR 2=XOR, -1=literal
      int var = 0;
      bool neg = false;
      int lhs = 0, rhs = 0;
    };
    std::vector<Node> nodes;
    auto build = [&](auto&& self, int depth) -> int {
      if (depth == 0) {
        nodes.push_back({-1, static_cast<int>(rng.below(10)), rng.flip(), 0, 0});
        return static_cast<int>(nodes.size()) - 1;
      }
      const int l = self(self, depth - 1);
      const int r = self(self, depth - 1);
      nodes.push_back({static_cast<int>(rng.below(3)), 0, false, l, r});
      return static_cast<int>(nodes.size()) - 1;
    };
    const int root = build(build, 5);

    auto to_bdd = [&](auto&& self, int n) -> Bdd {
      const Node& nd = nodes[n];
      if (nd.op == -1) {
        Bdd lit = mgr.var(nd.var);
        return nd.neg ? !lit : lit;
      }
      const Bdd l = self(self, nd.lhs);
      const Bdd r = self(self, nd.rhs);
      return nd.op == 0 ? (l & r) : nd.op == 1 ? (l | r) : (l ^ r);
    };
    const Bdd f = to_bdd(to_bdd, root);

    auto eval_expr = [&](auto&& self, int n,
                         const std::vector<bool>& a) -> bool {
      const Node& nd = nodes[n];
      if (nd.op == -1) return nd.neg ? !a[nd.var] : a[nd.var];
      const bool l = self(self, nd.lhs, a);
      const bool r = self(self, nd.rhs, a);
      return nd.op == 0 ? (l && r) : nd.op == 1 ? (l || r) : (l != r);
    };

    for (int bits = 0; bits < 1024; ++bits) {
      std::vector<bool> a(10);
      for (int i = 0; i < 10; ++i) a[i] = (bits >> i) & 1;
      ASSERT_EQ(mgr.eval(f, a), eval_expr(eval_expr, root, a))
          << "trial " << trial << " assignment " << bits;
    }
  }
}

// --- handle-validity and cross-manager guards --------------------------------
//
// A default-constructed Bdd used to null-deref in the combinators, and the
// apply_* entry points accepted operands from a foreign manager (whose node
// indices are meaningless in this arena) and silently computed garbage.
// Both must fail loudly now.

TEST(BddGuards, InvalidHandleCombinatorsThrow) {
  BddManager mgr(2);
  const Bdd a = mgr.var(0);
  const Bdd invalid;
  EXPECT_THROW(invalid & a, CheckError);
  EXPECT_THROW(a & invalid, CheckError);
  EXPECT_THROW(invalid | a, CheckError);
  EXPECT_THROW(a | invalid, CheckError);
  EXPECT_THROW(invalid ^ a, CheckError);
  EXPECT_THROW(a ^ invalid, CheckError);
  EXPECT_THROW(!invalid, CheckError);
  EXPECT_THROW((void)invalid.implies(a), CheckError);
  EXPECT_THROW((void)a.implies(invalid), CheckError);
  Bdd acc = invalid;
  EXPECT_THROW(acc &= a, CheckError);
}

TEST(BddGuards, MixedManagerOperandsThrow) {
  BddManager m1(4), m2(4);
  const Bdd a = m1.var(0);
  const Bdd b = m2.var(0);
  const Bdd cube = m2.make_cube({0, 1});
  EXPECT_THROW(a & b, CheckError);
  EXPECT_THROW(a | b, CheckError);
  EXPECT_THROW(a ^ b, CheckError);
  EXPECT_THROW(m1.ite(a, b, a), CheckError);
  EXPECT_THROW(m1.apply_not(b), CheckError);
  EXPECT_THROW(m1.exists(a, cube), CheckError);
  EXPECT_THROW(m1.forall(a, cube), CheckError);
  EXPECT_THROW(m1.and_exists(a, b, cube), CheckError);
  EXPECT_THROW(m1.compose(a, 0, b), CheckError);
  EXPECT_THROW(m1.cofactor(b, 0, true), CheckError);
  EXPECT_THROW(m1.permute(b, {0, 1, 2, 3}), CheckError);
  EXPECT_THROW((void)m1.sat_count(b, 4), CheckError);
  EXPECT_THROW((void)m1.eval(b, {false, false, false, false}), CheckError);
  EXPECT_THROW(m1.pick_minterm(b, {0}), CheckError);
  EXPECT_THROW(m1.all_minterms(b, {0, 1, 2, 3}), CheckError);
  EXPECT_THROW(m1.support_vars(b), CheckError);
  EXPECT_THROW(m1.support_cube(b), CheckError);
}

// Orphaned handles (manager destroyed first) count as invalid operands.
TEST(BddGuards, OrphanedHandleThrowsInsteadOfCrashing) {
  Bdd orphan;
  {
    BddManager mgr(2);
    orphan = mgr.var(0);
  }
  EXPECT_FALSE(orphan.valid());
  BddManager other(2);
  EXPECT_THROW(orphan & other.var(0), CheckError);
  EXPECT_THROW(!orphan, CheckError);
}

// --- sat_count wide-support regression ---------------------------------------
//
// The all-double implementation multiplied per-level weights of 2^gap and
// overflowed to inf past ~1023 effective variables, silently poisoning every
// downstream statistic.  The mantissa/exponent (ldexp) version is exact for
// any representable count and throws instead of returning inf.

TEST(BddSatCount, WideSupportExactCounts) {
  const std::uint32_t nvars = 1100;
  BddManager mgr(nvars);
  // A cube of the first 100 variables: exactly 2^1000 satisfying
  // assignments of the 1100-variable universe — representable, and the
  // old implementation's overflow territory starts right above it.
  std::vector<std::uint32_t> vars(100);
  for (std::uint32_t i = 0; i < 100; ++i) vars[i] = i;
  EXPECT_EQ(mgr.sat_count(mgr.make_cube(vars), nvars), std::ldexp(1.0, 1000));
  // A cube of ALL 1100 variables: exactly one satisfying assignment.
  std::vector<std::uint32_t> all(nvars);
  for (std::uint32_t i = 0; i < nvars; ++i) all[i] = i;
  EXPECT_EQ(mgr.sat_count(mgr.make_cube(all), nvars), 1.0);
  EXPECT_EQ(mgr.sat_count(mgr.bdd_false(), nvars), 0.0);
}

TEST(BddSatCount, OverflowIsLoud) {
  const std::uint32_t nvars = 1100;
  BddManager mgr(nvars);
  // x_0 leaves 1099 free variables: 2^1099 > double max — must throw, not
  // return inf.
  EXPECT_THROW((void)mgr.sat_count(mgr.var(0), nvars), CheckError);
  EXPECT_THROW((void)mgr.sat_count(mgr.bdd_true(), nvars), CheckError);
}

TEST(BddSatCount, SmallCountsUnchanged) {
  BddManager mgr(8);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  // 2^8 assignments; f true on (a&b)|c: 1*1*2*32 + ... brute force instead:
  double expected = 0;
  for (int bits = 0; bits < 256; ++bits) {
    std::vector<bool> a(8);
    for (int i = 0; i < 8; ++i) a[i] = (bits >> i) & 1;
    if ((a[0] && a[1]) || a[2]) expected += 1;
  }
  EXPECT_EQ(mgr.sat_count(f, 8), expected);
}

// --- GC stress: "GC only at op entry" ----------------------------------------
//
// With the threshold forced to 0 a mark-and-sweep collection runs at every
// public operation entry (and the threshold never doubles back up), so any
// raw node index held across a collection point would be torn under the
// recursion's feet.  Re-run the whole op battery under that regime against
// an unstressed reference manager: results must be semantically identical.

TEST(BddGcStress, OpBatterySurvivesCollectionAtEveryEntry) {
  constexpr std::uint32_t kVars = 8;
  BddManager stress(kVars), ref(kVars);
  stress.set_gc_threshold(0);
  ASSERT_EQ(stress.gc_threshold(), 0u);

  const auto equivalent = [&](const Bdd& s, const Bdd& r) {
    for (int bits = 0; bits < (1 << kVars); ++bits) {
      std::vector<bool> a(kVars);
      for (std::uint32_t i = 0; i < kVars; ++i) a[i] = (bits >> i) & 1;
      if (stress.eval(s, a) != ref.eval(r, a)) return false;
    }
    return true;
  };

  Rng rng_s(2024), rng_r(2024);
  for (int trial = 0; trial < 8; ++trial) {
    const Bdd fs = fixtures::random_bdd(stress, rng_s, 4, kVars);
    const Bdd gs = fixtures::random_bdd(stress, rng_s, 4, kVars);
    const Bdd fr = fixtures::random_bdd(ref, rng_r, 4, kVars);
    const Bdd gr = fixtures::random_bdd(ref, rng_r, 4, kVars);
    ASSERT_TRUE(equivalent(fs, fr)) << "trial " << trial;

    const Bdd cube_s = stress.make_cube({0, 3});
    const Bdd cube_r = ref.make_cube({0, 3});
    EXPECT_TRUE(equivalent(fs & gs, fr & gr));
    EXPECT_TRUE(equivalent(fs | gs, fr | gr));
    EXPECT_TRUE(equivalent(fs ^ gs, fr ^ gr));
    EXPECT_TRUE(equivalent(!fs, !fr));
    EXPECT_TRUE(equivalent(stress.ite(fs, gs, !gs), ref.ite(fr, gr, !gr)));
    EXPECT_TRUE(equivalent(stress.exists(fs, cube_s), ref.exists(fr, cube_r)));
    EXPECT_TRUE(equivalent(stress.forall(fs, cube_s), ref.forall(fr, cube_r)));
    EXPECT_TRUE(equivalent(stress.and_exists(fs, gs, cube_s),
                           ref.and_exists(fr, gr, cube_r)));
    std::vector<std::uint32_t> swap_map{1, 0, 2, 3, 4, 5, 7, 6};
    EXPECT_TRUE(equivalent(stress.permute(fs, swap_map),
                           ref.permute(fr, swap_map)));
    EXPECT_TRUE(equivalent(stress.compose(fs, 2, gs), ref.compose(fr, 2, gr)));
    EXPECT_TRUE(equivalent(stress.cofactor(fs, 1, true),
                           ref.cofactor(fr, 1, true)));
    EXPECT_EQ(stress.sat_count(fs, kVars), ref.sat_count(fr, kVars));
    if (!fs.is_false()) {
      // The picked minterm must satisfy the stressed function.
      const std::vector<std::uint32_t> vars{0, 1, 2, 3, 4, 5, 6, 7};
      const auto tri = stress.pick_minterm(fs, vars);
      std::vector<bool> a(kVars, false);
      for (std::uint32_t i = 0; i < kVars; ++i) a[i] = tri[i] == Tri::One;
      EXPECT_TRUE(stress.eval(fs, a));
    }
  }
  // The regime really did collect constantly.
  EXPECT_GT(stress.gc_count(), 100u);
  EXPECT_EQ(ref.gc_count(), 0u);
}

}  // namespace
}  // namespace xatpg
