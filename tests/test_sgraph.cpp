#include "sgraph/cssg.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchmarks/benchmarks.hpp"
#include "fixtures.hpp"
#include "sim/explicit.hpp"
#include "sim/ternary.hpp"

namespace xatpg {
namespace {

// --- encoding ----------------------------------------------------------------

TEST(Encoding, VariableLayoutsAreDisjoint) {
  const Netlist n = fig1a_circuit(nullptr);
  for (const VarOrder order : {VarOrder::Interleaved, VarOrder::Blocked,
                               VarOrder::ReverseInterleaved}) {
    SymbolicEncoding enc(n, order);
    std::set<std::uint32_t> seen;
    for (SignalId s = 0; s < n.num_signals(); ++s) {
      seen.insert(enc.cur_var(s));
      seen.insert(enc.next_var(s));
      seen.insert(enc.aux_var(s));
    }
    EXPECT_EQ(seen.size(), 3 * n.num_signals()) << var_order_name(order);
  }
}

TEST(Encoding, RenameRoundTrip) {
  const Netlist n = fig1a_circuit(nullptr);
  SymbolicEncoding enc(n);
  const Bdd f = enc.cur(0) & !enc.cur(2);
  const Bdd g = enc.cur_to_next(f);
  EXPECT_EQ(g, enc.next(0) & !enc.next(2));
  EXPECT_EQ(enc.next_to_cur(g), f);
}

TEST(Encoding, StateMintermRoundTrip) {
  std::vector<bool> st;
  const Netlist n = fig1a_circuit(&st);
  SymbolicEncoding enc(n);
  const Bdd m = enc.state_minterm_cur(st);
  EXPECT_EQ(enc.pick_state_cur(m), st);
  EXPECT_DOUBLE_EQ(enc.count_states_cur(m), 1.0);
}

TEST(Encoding, TargetMatchesBoolEval) {
  std::vector<bool> st;
  const Netlist n = fig1a_circuit(&st);
  SymbolicEncoding enc(n);
  // For each signal and a sample of states, the target BDD evaluated on a
  // state must equal eval_gate_bool.
  for (std::uint64_t bits = 0; bits < (1ull << n.num_signals()); ++bits) {
    std::vector<bool> state(n.num_signals());
    for (SignalId s = 0; s < n.num_signals(); ++s) state[s] = (bits >> s) & 1;
    std::vector<bool> assignment(enc.mgr().num_vars(), false);
    for (SignalId s = 0; s < n.num_signals(); ++s)
      assignment[enc.cur_var(s)] = state[s];
    for (SignalId s = 0; s < n.num_signals(); ++s)
      ASSERT_EQ(enc.mgr().eval(enc.target(s), assignment),
                n.eval_gate_bool(s, state))
          << "signal " << s << " state " << bits;
  }
}

TEST(Encoding, StablePredicateMatchesNetlist) {
  std::vector<bool> st;
  const Netlist n = fig1a_circuit(&st);
  SymbolicEncoding enc(n);
  const Bdd stable = enc.stable();
  for (std::uint64_t bits = 0; bits < (1ull << n.num_signals()); ++bits) {
    std::vector<bool> state(n.num_signals());
    for (SignalId s = 0; s < n.num_signals(); ++s) state[s] = (bits >> s) & 1;
    std::vector<bool> assignment(enc.mgr().num_vars(), false);
    for (SignalId s = 0; s < n.num_signals(); ++s)
      assignment[enc.cur_var(s)] = state[s];
    ASSERT_EQ(enc.mgr().eval(stable, assignment), n.is_stable_state(state));
  }
}

TEST(Encoding, AllStatesEnumerates) {
  const Netlist n = fig1a_circuit(nullptr);
  SymbolicEncoding enc(n);
  const Bdd set = enc.cur(0) & !enc.cur(1);  // 2^(n-2) states
  const auto states = enc.all_states_cur(set);
  EXPECT_EQ(states.size(), 1u << (n.num_signals() - 2));
  for (const auto& st : states) {
    EXPECT_TRUE(st[0]);
    EXPECT_FALSE(st[1]);
  }
}

// --- CSSG on the Figure 1 circuits -------------------------------------------

class CssgFig1a : public ::testing::Test {
 protected:
  CssgFig1a() {
    fixtures::Circuit fix = fixtures::fig1a();
    netlist = std::move(fix.netlist);
    reset = std::move(fix.reset);
    CssgOptions options;
    options.k = 20;
    cssg = std::make_unique<Cssg>(netlist, std::vector<std::vector<bool>>{reset}, options);
  }
  std::vector<bool> reset;
  Netlist netlist;
  std::unique_ptr<Cssg> cssg;
};

TEST_F(CssgFig1a, StableReachableMatchesExplicitOracle) {
  const auto explicit_states = explicit_stable_reachable(netlist, reset, 20);
  const auto symbolic_states =
      cssg->encoding().all_states_cur(cssg->stable_reachable());
  const std::set<std::vector<bool>> symbolic_set(symbolic_states.begin(),
                                                 symbolic_states.end());
  EXPECT_EQ(symbolic_set, explicit_states);
}

TEST_F(CssgFig1a, RacingVectorExcludedFromCssg) {
  // From the initial state (A=0,B=1), the pattern AB=10 races: there must
  // be no CSSG edge from reset with that input labeling.
  auto& enc = cssg->encoding();
  Bdd from_reset = cssg->relation() & enc.state_minterm_cur(reset);
  // Constrain successor inputs to A=1, B=0.
  from_reset &= enc.next(netlist.signal("A")) & !enc.next(netlist.signal("B"));
  EXPECT_TRUE(from_reset.is_false());
}

TEST_F(CssgFig1a, SafeVectorPresentInCssg) {
  // AB=11 from reset is confluent and must be a CSSG edge.
  auto& enc = cssg->encoding();
  Bdd edge = cssg->relation() & enc.state_minterm_cur(reset) &
             enc.next(netlist.signal("A")) & enc.next(netlist.signal("B"));
  EXPECT_FALSE(edge.is_false());
}

TEST_F(CssgFig1a, CssgEdgesAreDeterministic) {
  // For every (state, input pattern) there is at most one successor.
  const ExplicitCssg graph = cssg->extract_explicit();
  for (std::uint32_t id = 0; id < graph.states.size(); ++id) {
    std::set<std::vector<bool>> patterns;
    for (const auto& e : graph.edges[id])
      EXPECT_TRUE(patterns.insert(e.pattern).second)
          << "duplicate pattern from state " << id;
  }
}

TEST_F(CssgFig1a, CssgEdgesValidatedByExplicitExploration) {
  // Every explicit CSSG edge must be exactly the unique bounded settling of
  // its vector; every valid settling must be present as an edge.
  const ExplicitCssg graph = cssg->extract_explicit();
  const std::size_t m = netlist.inputs().size();
  for (std::uint32_t id = 0; id < graph.states.size(); ++id) {
    const auto& state = graph.states[id];
    std::set<std::vector<bool>> edge_patterns;
    for (const auto& e : graph.edges[id]) {
      edge_patterns.insert(e.pattern);
      const auto exact =
          explore_settling(netlist, state, e.pattern, cssg->options().k);
      ASSERT_TRUE(exact.confluent());
      EXPECT_EQ(*exact.stable_states.begin(), graph.states[e.to]);
    }
    // Completeness: any confluent pattern must appear as an edge.
    for (std::uint64_t bits = 0; bits < (1ull << m); ++bits) {
      std::vector<bool> vec(m);
      bool same = true;
      for (std::size_t i = 0; i < m; ++i) {
        vec[i] = (bits >> i) & 1;
        same = same && (vec[i] == state[netlist.inputs()[i]]);
      }
      if (same) continue;
      const auto exact = explore_settling(netlist, state, vec, cssg->options().k);
      EXPECT_EQ(edge_patterns.count(vec) > 0, exact.confluent())
          << "state " << id << " pattern bits " << bits;
    }
  }
}

TEST_F(CssgFig1a, JustifyReachesTarget) {
  // Justify the state with y latched (if CSSG-reachable).
  auto& enc = cssg->encoding();
  const Bdd target = enc.cur(netlist.signal("y")) & cssg->cssg_reachable();
  if (target.is_false()) GTEST_SKIP() << "y=1 not reachable via valid vectors";
  const auto just = cssg->justify(target);
  ASSERT_TRUE(just.has_value());
  // Replay the vectors with ternary simulation; must be confluent at every
  // step and land on the target.
  TernarySim sim(netlist);
  std::vector<bool> state = just->reset_state;
  for (const auto& vec : just->vectors) {
    const auto settled = sim.settle(state, vec);
    ASSERT_TRUE(settled.confluent);
    state = settled.final_state();
  }
  EXPECT_EQ(state, just->final_state);
  EXPECT_TRUE(state[netlist.signal("y")]);
}

TEST_F(CssgFig1a, JustifyUnreachableReturnsNullopt) {
  auto& enc = cssg->encoding();
  // A state outside the reachable set: all signals 1 including c with a=0
  // is unstable/unreachable; intersect with nothing reachable.
  const Bdd impossible = enc.state_minterm_cur(
      std::vector<bool>(netlist.num_signals(), true)) & !cssg->cssg_reachable();
  const Bdd target = impossible & !cssg->cssg_reachable();
  if (!(target & cssg->cssg_reachable()).is_false()) GTEST_SKIP();
  EXPECT_FALSE(cssg->justify(target).has_value());
}

TEST_F(CssgFig1a, StatsAreConsistent) {
  const CssgStats& st = cssg->stats();
  EXPECT_GT(st.reachable_states, 0);
  EXPECT_GT(st.stable_states, 0);
  EXPECT_LE(st.stable_states, st.reachable_states);
  EXPECT_GT(st.cssg_edges, 0);
  EXPECT_LE(st.cssg_edges, st.tcr_pairs);
  EXPECT_GE(st.cssg_reachable_states, 1);
  EXPECT_LE(st.cssg_reachable_states, st.stable_states);
}

TEST_F(CssgFig1a, DotExport) {
  const std::string dot = cssg->to_dot();
  EXPECT_NE(dot.find("digraph cssg"), std::string::npos);
}

TEST(CssgFig1b, OscillatingVectorExcluded) {
  std::vector<bool> reset;
  const Netlist netlist = fig1b_circuit(&reset);
  CssgOptions options;
  options.k = 16;
  Cssg cssg(netlist, {reset}, options);
  auto& enc = cssg.encoding();
  // A+ with B=0 oscillates: no such edge from reset.
  Bdd edge = cssg.relation() & enc.state_minterm_cur(reset) &
             enc.next(netlist.signal("A")) & !enc.next(netlist.signal("B"));
  EXPECT_TRUE(edge.is_false());
  // A+B+ is also excluded: even though every fair execution converges, the
  // c/d ring can ping-pong unboundedly while b's rise is postponed, so some
  // k-step trajectory is still unstable (a "transient oscillation" in the
  // paper's §2 sense).
  Bdd ab = cssg.relation() & enc.state_minterm_cur(reset) &
           enc.next(netlist.signal("A")) & enc.next(netlist.signal("B"));
  EXPECT_TRUE(ab.is_false());
  // B+ alone is hazard-free (d is held at 1 by b): the edge exists.
  Bdd good = cssg.relation() & enc.state_minterm_cur(reset) &
             !enc.next(netlist.signal("A")) & enc.next(netlist.signal("B"));
  EXPECT_FALSE(good.is_false());
  EXPECT_GT(cssg.stats().unstable_pairs + cssg.stats().nonconfluent_pairs, 0);
}

// --- CSSG on synthesized benchmarks (cross-validation) -----------------------

class CssgBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(CssgBenchmark, ExplicitGraphMatchesOracle) {
  const SynthResult r = benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  if (r.netlist.num_signals() > 12) GTEST_SKIP() << "oracle too slow";
  CssgOptions options;
  options.k = 24;
  Cssg cssg(r.netlist, {r.reset_state}, options);
  const ExplicitCssg graph = cssg.extract_explicit();
  EXPECT_GE(graph.states.size(), 2u);

  // Sample validation: every edge's settlement is confluent and lands on
  // the recorded successor (full exploration on the first 10 states).
  const std::size_t check = std::min<std::size_t>(graph.states.size(), 10);
  for (std::uint32_t id = 0; id < check; ++id) {
    for (const auto& e : graph.edges[id]) {
      const auto exact = explore_settling(r.netlist, graph.states[id],
                                          e.pattern, options.k);
      ASSERT_TRUE(exact.confluent()) << GetParam();
      EXPECT_EQ(*exact.stable_states.begin(), graph.states[e.to]);
    }
  }
}

TEST_P(CssgBenchmark, OperationVectorsAreValid) {
  // The circuit's own operating protocol (SG input events applied one at a
  // time) must survive CSSG pruning: an SI circuit is race-free in
  // operation mode, so each single-input-change vector from a quiescent
  // protocol state must be a CSSG edge.
  const Stg stg = benchmark_stg(GetParam());
  const StateGraph sg = expand_stg(stg);
  const SynthResult r = benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  CssgOptions options;
  options.k = 24;
  Cssg cssg(r.netlist, {r.reset_state}, options);
  auto& enc = cssg.encoding();

  // From reset, apply the first enabled SG input event; the corresponding
  // CSSG edge must exist.
  std::vector<bool> vec;
  for (const SignalId in : r.netlist.inputs())
    vec.push_back(r.reset_state[in]);
  // Find an input event enabled in the quiescent reset situation.
  bool found = false;
  for (std::uint32_t st = 0; st < sg.num_states() && !found; ++st) {
    bool match = true;
    for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig)
      match = match && (sg.codes[st][sig] ==
                        r.reset_state[r.netlist.signal(stg.signal(sig).name)]);
    if (!match) continue;
    for (const auto& e : sg.edges[st]) {
      const auto& tr = stg.transition(e.transition);
      if (stg.signal(tr.signal).kind != SignalKind::Input) continue;
      for (std::size_t i = 0; i < r.netlist.inputs().size(); ++i)
        if (r.netlist.signal_name(r.netlist.inputs()[i]) ==
            stg.signal(tr.signal).name)
          vec[i] = tr.rising;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << GetParam();

  Bdd edge = cssg.relation() & enc.state_minterm_cur(r.reset_state);
  for (std::size_t i = 0; i < vec.size(); ++i) {
    const Bdd lit = enc.next(r.netlist.inputs()[i]);
    edge &= vec[i] ? lit : !lit;
  }
  EXPECT_FALSE(edge.is_false()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SmallBenchmarks, CssgBenchmark,
                         ::testing::Values("rpdft", "dff", "rcv-setup",
                                           "chu150", "converta", "vbe5b"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(CssgOrdering, AllOrdersAgreeOnCounts) {
  const auto [netlist, reset] = fixtures::fig1a();
  double edges = -1;
  for (const VarOrder order : {VarOrder::Interleaved, VarOrder::Blocked,
                               VarOrder::ReverseInterleaved}) {
    CssgOptions options;
    options.k = 20;
    options.order = order;
    Cssg cssg(netlist, {reset}, options);
    if (edges < 0) {
      edges = cssg.stats().cssg_edges;
    } else {
      EXPECT_DOUBLE_EQ(cssg.stats().cssg_edges, edges)
          << var_order_name(order);
    }
  }
}

TEST(CssgK, SmallKPrunesMoreEdges) {
  const auto [netlist, reset] = fixtures::fig1b();
  CssgOptions small, large;
  small.k = 1;
  large.k = 16;
  Cssg cssg_small(netlist, {reset}, small);
  Cssg cssg_large(netlist, {reset}, large);
  EXPECT_LE(cssg_small.stats().cssg_edges, cssg_large.stats().cssg_edges);
}

}  // namespace
}  // namespace xatpg
