// write_test_program coverage: golden outputs for fig1a/chu150 plus a
// round-trip that re-parses the exported program and replays it through
// AtpgEngine::follow(), confirming every sequence is a valid CSSG path with
// matching expected primary-output responses.
#include <gtest/gtest.h>

#include <sstream>

#include "atpg/engine.hpp"
#include "benchmarks/benchmarks.hpp"
#include "fixtures.hpp"
#include "util/strings.hpp"

namespace xatpg {
namespace {

AtpgOptions export_options() {
  AtpgOptions options;
  options.random_budget = 24;
  options.random_walk_len = 6;
  options.seed = 5;
  // per_fault_seconds stays 0 (wall clock disabled) so the output is
  // deterministic even on slow machines — the deterministic caps bind.
  return options;
}

std::string export_program(const Netlist& netlist, AtpgEngine& engine) {
  const AtpgResult result = engine.run(input_stuck_faults(netlist));
  std::ostringstream os;
  write_test_program(os, netlist, engine, result.sequences);
  return os.str();
}

TEST(TestProgramGolden, Fig1a) {
  const fixtures::Circuit c = fixtures::fig1a();
  AtpgEngine engine(c.netlist, c.reset, export_options());
  EXPECT_EQ(export_program(c.netlist, engine),
            "# xatpg synchronous test program for 'fig1a'\n"
            ".inputs A B\n"
            ".outputs y\n"
            ".sequence 0  # apply from reset\n"
            "00 / 0\n"
            "10 / 0\n"
            "11 / 1\n"
            "10 / 1\n"
            "01 / 1\n"
            "11 / 1\n"
            ".end\n");
}

TEST(TestProgramGolden, Chu150) {
  const SynthResult synth =
      benchmark_circuit("chu150", SynthStyle::SpeedIndependent);
  AtpgEngine engine(synth.netlist, synth.reset_state, export_options());
  EXPECT_EQ(export_program(synth.netlist, engine),
            "# xatpg synchronous test program for 'chu150'\n"
            ".inputs r0 r1\n"
            ".outputs ack\n"
            ".sequence 0  # apply from reset\n"
            "01 / 0\n"
            "10 / 0\n"
            "01 / 0\n"
            "11 / 1\n"
            "01 / 1\n"
            "11 / 1\n"
            ".end\n");
}

// --- round trip --------------------------------------------------------------

/// A parsed test program: per sequence, the input vectors and the expected
/// primary-output responses (strings of '0'/'1', one char per output).
struct ParsedProgram {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<TestSequence> sequences;
  std::vector<std::vector<std::string>> expected;  ///< per seq, per cycle
  bool saw_end = false;
};

ParsedProgram parse_test_program(const std::string& text) {
  ParsedProgram program;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::string trimmed(trim(line));
    if (trimmed.empty()) continue;
    const auto tokens = split_ws(trimmed);
    if (tokens[0] == ".inputs") {
      program.inputs.assign(tokens.begin() + 1, tokens.end());
    } else if (tokens[0] == ".outputs") {
      program.outputs.assign(tokens.begin() + 1, tokens.end());
    } else if (tokens[0] == ".sequence") {
      program.sequences.emplace_back();
      program.expected.emplace_back();
    } else if (tokens[0] == ".end") {
      program.saw_end = true;
    } else {
      // "vector / response"
      EXPECT_EQ(tokens.size(), 3u) << trimmed;
      EXPECT_EQ(tokens[1], "/");
      if (tokens.size() != 3 || program.sequences.empty()) continue;
      std::vector<bool> vec;
      for (const char c : tokens[0]) vec.push_back(c == '1');
      program.sequences.back().vectors.push_back(vec);
      program.expected.back().push_back(tokens[2]);
    }
  }
  return program;
}

void check_round_trip(const Netlist& netlist, const std::vector<bool>& reset) {
  AtpgEngine engine(netlist, reset, export_options());
  const AtpgResult result = engine.run(input_stuck_faults(netlist));
  std::ostringstream os;
  write_test_program(os, netlist, engine, result.sequences);

  const ParsedProgram program = parse_test_program(os.str());
  EXPECT_TRUE(program.saw_end);

  // Header names match the netlist, in order.
  ASSERT_EQ(program.inputs.size(), netlist.inputs().size());
  for (std::size_t i = 0; i < program.inputs.size(); ++i)
    EXPECT_EQ(program.inputs[i], netlist.signal_name(netlist.inputs()[i]));
  ASSERT_EQ(program.outputs.size(), netlist.outputs().size());
  for (std::size_t i = 0; i < program.outputs.size(); ++i)
    EXPECT_EQ(program.outputs[i], netlist.signal_name(netlist.outputs()[i]));

  // The exported sequences round-trip bit-exactly.
  ASSERT_EQ(program.sequences.size(), result.sequences.size());
  for (std::size_t s = 0; s < program.sequences.size(); ++s)
    EXPECT_EQ(program.sequences[s], result.sequences[s]) << "sequence " << s;

  // Every re-parsed sequence is a valid CSSG path from reset, and the
  // expected responses printed next to each vector are exactly the good
  // circuit's primary-output values along that path.
  for (std::size_t s = 0; s < program.sequences.size(); ++s) {
    const auto path = engine.follow(program.sequences[s]);
    ASSERT_TRUE(path.has_value()) << "sequence " << s << " is not CSSG-valid";
    ASSERT_EQ(program.expected[s].size(), program.sequences[s].vectors.size());
    for (std::size_t t = 0; t < program.expected[s].size(); ++t) {
      const auto& state = engine.graph().states[(*path)[t + 1]];
      std::string response;
      for (const SignalId po : netlist.outputs())
        response += state[po] ? '1' : '0';
      EXPECT_EQ(program.expected[s][t], response)
          << "sequence " << s << " cycle " << t;
    }
  }
}

TEST(TestProgramRoundTrip, Fig1a) {
  const fixtures::Circuit c = fixtures::fig1a();
  check_round_trip(c.netlist, c.reset);
}

TEST(TestProgramRoundTrip, Chu150) {
  const SynthResult synth =
      benchmark_circuit("chu150", SynthStyle::SpeedIndependent);
  check_round_trip(synth.netlist, synth.reset_state);
}

TEST(TestProgramRoundTrip, Pipeline2) {
  const fixtures::Circuit c = fixtures::pipeline2();
  check_round_trip(c.netlist, c.reset);
}

// Foreign sequences (not CSSG-valid) are rejected loudly rather than
// exported as an unreplayable program.
TEST(TestProgramExportErrors, InvalidSequenceThrows) {
  const fixtures::Circuit c = fixtures::celem();
  AtpgEngine engine(c.netlist, c.reset, export_options());
  TestSequence bogus;
  bogus.vectors.push_back(std::vector<bool>{true});  // wrong arity: not an edge
  std::ostringstream os;
  EXPECT_THROW(write_test_program(os, c.netlist, engine, {bogus}), CheckError);
}

}  // namespace
}  // namespace xatpg
