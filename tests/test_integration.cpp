// End-to-end integration: STG specification -> synthesis -> CSSG -> ATPG ->
// test-program replay, with every stage's output checked against the
// previous stage's semantics.  The table-shape tests run through the
// public xatpg::Session facade; the replay tests stay on internals (they
// need the exact settling oracle).
#include <gtest/gtest.h>

#include <sstream>

#include "atpg/engine.hpp"
#include "atpg/fault_sim.hpp"
#include "baseline/baseline.hpp"
#include "benchmarks/benchmarks.hpp"
#include "fixtures.hpp"
#include "sim/explicit.hpp"
#include "xatpg/xatpg.hpp"

namespace xatpg {
namespace {

class EndToEnd : public ::testing::TestWithParam<std::string> {};

TEST_P(EndToEnd, FullFlowOnSpeedIndependent) {
  // 1. Specification.
  const Stg stg = benchmark_stg(GetParam());
  const StateGraph sg = expand_stg(stg);
  ASSERT_TRUE(csc_violations(sg).empty());

  // 2. Synthesis.
  const SynthResult synth = benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  ASSERT_TRUE(synth.netlist.is_stable_state(synth.reset_state));

  // 3. CSSG + ATPG.
  AtpgOptions options;
  options.random_budget = 24;
  options.random_walk_len = 6;
  AtpgEngine engine(synth.netlist, synth.reset_state, options);
  const auto faults = input_stuck_faults(synth.netlist);
  const AtpgResult result = engine.run(faults);
  EXPECT_GE(result.stats.coverage(), 0.80) << GetParam();

  // 4. Export and golden replay: the fault-free device must match every
  //    strobe of the exported program, using the exact settling oracle.
  std::ostringstream program;
  write_test_program(program, synth.netlist, engine, result.sequences);
  EXPECT_NE(program.str().find(".end"), std::string::npos);

  for (const auto& seq : result.sequences) {
    const auto path = engine.follow(seq);
    ASSERT_TRUE(path.has_value());
    std::vector<bool> device = synth.reset_state;
    for (std::size_t t = 0; t < seq.vectors.size(); ++t) {
      const auto settled =
          explore_settling(synth.netlist, device, seq.vectors[t], options.k);
      ASSERT_TRUE(settled.confluent())
          << GetParam() << ": exported vector is not race-free";
      device = *settled.stable_states.begin();
      EXPECT_EQ(device, engine.graph().states[(*path)[t + 1]]);
    }
  }

  // 5. Every fault claimed covered is re-proven with a fresh simulator.
  for (const auto& outcome : result.outcomes) {
    if (outcome.covered_by == CoveredBy::None) continue;
    const auto& seq = result.sequences[outcome.sequence_index];
    const auto path = engine.follow(seq);
    FaultSimulator sim(synth.netlist, outcome.fault, synth.reset_state);
    DetectStatus status = sim.status();
    for (std::size_t t = 0;
         t < seq.vectors.size() && status == DetectStatus::Undetermined; ++t)
      status = sim.step(seq.vectors[t], engine.graph().states[(*path)[t + 1]]);
    EXPECT_EQ(status, DetectStatus::Detected)
        << GetParam() << " " << outcome.fault.describe(synth.netlist);
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, EndToEnd,
                         ::testing::Values("rpdft", "dff", "chu150",
                                           "rcv-setup", "converta", "vbe5b",
                                           "ebergen", "nowick", "seq4"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(EndToEndShape, Table1OutputStuckIsComplete) {
  // The headline theoretical shape on a sample of the SI suite: output
  // stuck-at coverage is complete.  Driven through the public facade —
  // exactly the call sequence `xatpg run --faults output` makes.
  for (const char* name : {"chu150", "ebergen", "vbe5b", "mmu", "seq4"}) {
    AtpgOptions options;
    options.random_budget = 24;
    options.random_walk_len = 6;
    auto session =
        Session::from_benchmark(name, SynthStyle::SpeedIndependent, options);
    ASSERT_TRUE(session.has_value()) << name << ": "
                                     << session.error().to_string();
    const auto result = session->run(session->output_stuck_faults());
    ASSERT_TRUE(result.has_value()) << name;
    EXPECT_EQ(result->stats.undetected, 0u) << name;
  }
}

TEST(EndToEndShape, Table2RedundantCircuitsCollapse) {
  // The Table 2 shape: the redundant/hazard-laden trio tests far worse in
  // the bounded-delay mapping than a clean circuit does.
  const auto coverage = [](const std::string& name) {
    AtpgOptions options;
    options.random_budget = 24;
    options.random_walk_len = 6;
    options.per_fault_seconds = 0.5;
    auto session =
        Session::from_benchmark(name, SynthStyle::BoundedDelay, options);
    XATPG_CHECK(session.has_value());
    const auto result = session->run(session->input_stuck_faults());
    XATPG_CHECK(result.has_value());
    return result->stats.coverage();
  };
  const double clean = coverage("ebergen");
  const double redundant = coverage("vbe6a");
  EXPECT_GE(clean, 0.9);
  EXPECT_LE(redundant, 0.5);
}

TEST(EndToEndShape, FixtureCircuitsSurviveTheFullFlow) {
  // The tiny canonical fixtures (C-element, asynchronous latch, two-stage
  // pipeline) are exercised by many suites; the full ATPG flow must accept
  // each one and fully cover its output stuck-at faults.
  for (const fixtures::Circuit& fix : {fixtures::celem(),
                                       fixtures::async_latch(),
                                       fixtures::pipeline2()}) {
    ASSERT_TRUE(fix.netlist.is_stable_state(fix.reset)) << fix.netlist.name();
    AtpgOptions options;
    options.random_budget = 24;
    options.random_walk_len = 6;
    AtpgEngine engine(fix.netlist, fix.reset, options);
    const auto result = engine.run(output_stuck_faults(fix.netlist));
    EXPECT_EQ(result.stats.undetected, 0u) << fix.netlist.name();
    for (const auto& seq : result.sequences) {
      std::vector<bool> state = fix.reset;
      for (const auto& vec : seq.vectors) {
        const auto exact = explore_settling(fix.netlist, state, vec, options.k);
        ASSERT_TRUE(exact.confluent())
            << fix.netlist.name() << ": exported vector races";
        state = *exact.stable_states.begin();
      }
    }
  }
}

TEST(EndToEndShape, BaselineNeedsValidationOursDoesNot) {
  // §6.1: on the racy Figure 1(a) circuit, the baseline validates at least
  // one sequence that exact analysis shows to race; our flow's sequences
  // are all race-free by construction (checked via the exact oracle).
  const auto [fig1a, reset] = fixtures::fig1a();
  const auto faults = input_stuck_faults(fig1a);

  const BaselineResult base = run_baseline(fig1a, reset, faults);
  EXPECT_GT(base.optimistic, 0u);

  AtpgOptions options;
  options.random_budget = 24;
  AtpgEngine engine(fig1a, reset, options);
  const auto ours = engine.run(faults);
  for (const auto& seq : ours.sequences) {
    std::vector<bool> state = reset;
    for (const auto& vec : seq.vectors) {
      const auto exact = explore_settling(fig1a, state, vec, options.k);
      ASSERT_TRUE(exact.confluent());
      state = *exact.stable_states.begin();
    }
  }
}

}  // namespace
}  // namespace xatpg
