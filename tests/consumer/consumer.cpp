// Minimal out-of-tree consumer: runs the quickstart flow against the
// *installed* xatpg package, using only <xatpg/...> public headers.  Any
// include of a src/ internal header here is a bug.  Exits non-zero if the
// flow misbehaves, so CI can use it as a smoke test.
#include <iostream>

#include <xatpg/xatpg.hpp>

int main() {
  using namespace xatpg;

  // Typed errors work.
  const Expected<Session> missing = Session::from_benchmark("no-such-circuit");
  if (missing.has_value() ||
      missing.error().code != ErrorCode::OptionError) {
    std::cerr << "expected OptionError for unknown benchmark\n";
    return 1;
  }
  AtpgOptions bad;
  bad.k = 0;
  if (bad.validate().has_value()) {
    std::cerr << "expected validate() to reject k = 0\n";
    return 1;
  }

  // The quickstart flow works.
  AtpgOptions options;
  options.random_budget = 32;
  options.threads = 2;
  Expected<Session> session =
      Session::from_benchmark("chu150", SynthStyle::SpeedIndependent, options);
  if (!session) {
    std::cerr << "session failed: " << session.error().to_string() << "\n";
    return 1;
  }
  const Expected<AtpgResult> result =
      session->run(session->input_stuck_faults());
  if (!result) {
    std::cerr << "run failed: " << result.error().to_string() << "\n";
    return 1;
  }
  if (result->stats.covered != result->stats.total_faults) {
    std::cerr << "chu150 input stuck-at coverage regressed: "
              << result->stats.covered << "/" << result->stats.total_faults
              << "\n";
    return 1;
  }
  const Expected<std::string> program = session->test_program(*result);
  if (!program || program->find(".end") == std::string::npos) {
    std::cerr << "test-program export failed\n";
    return 1;
  }

  // Incremental growth works.
  Session grower = std::move(*session);
  const Expected<AtpgResult> grown =
      grower.add_faults(grower.output_stuck_faults());
  if (!grown || grown->stats.total_faults <= result->stats.total_faults) {
    std::cerr << "add_faults failed\n";
    return 1;
  }

  std::cout << "consumer ok: " << grower.circuit_name() << " "
            << grown->stats.covered << "/" << grown->stats.total_faults
            << " covered via find_package(xatpg)\n";
  return 0;
}
