// Cross-module property tests: invariants that tie independent
// implementations of the same semantics to each other (symbolic vs
// explicit, scalar vs parallel, faulty-netlist materialization vs lane
// injection).
#include <gtest/gtest.h>

#include <set>

#include "atpg/fault.hpp"
#include "benchmarks/benchmarks.hpp"
#include "bdd/bdd.hpp"
#include "fixtures.hpp"
#include "sgraph/cssg.hpp"
#include "sim/explicit.hpp"
#include "sim/parallel.hpp"
#include "sim/ternary.hpp"
#include "util/random.hpp"

namespace xatpg {
namespace {

// --- BDD algebra sweeps -------------------------------------------------------

class BddProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  BddManager mgr{12};
  Rng rng{GetParam()};

  Bdd random_function(int depth) {
    return fixtures::random_bdd(mgr, rng, depth, 12);
  }
};

TEST_P(BddProperty, QuantifierDualities) {
  for (int i = 0; i < 10; ++i) {
    const Bdd f = random_function(4);
    const Bdd cube = mgr.make_cube(
        {std::uint32_t(rng.below(12)), std::uint32_t(rng.below(12))});
    // ∃x f == !∀x !f
    EXPECT_EQ(mgr.exists(f, cube), !mgr.forall(!f, cube));
    // ∀x f implies f's universal abstraction is below existential
    EXPECT_TRUE(mgr.forall(f, cube).implies(mgr.exists(f, cube)));
  }
}

TEST_P(BddProperty, AndExistsFusionMatchesComposition) {
  for (int i = 0; i < 10; ++i) {
    const Bdd f = random_function(4);
    const Bdd g = random_function(4);
    const Bdd cube = mgr.make_cube({std::uint32_t(rng.below(12)),
                                    std::uint32_t(rng.below(12)),
                                    std::uint32_t(rng.below(12))});
    EXPECT_EQ(mgr.and_exists(f, g, cube), mgr.exists(f & g, cube));
  }
}

TEST_P(BddProperty, ComposeAgainstCofactorShannon) {
  for (int i = 0; i < 10; ++i) {
    const Bdd f = random_function(4);
    const Bdd g = random_function(3);
    const std::uint32_t v = rng.below(12);
    // f[v <- g] == g & f|v=1  |  !g & f|v=0
    const Bdd expected = (g & mgr.cofactor(f, v, true)) |
                         ((!g) & mgr.cofactor(f, v, false));
    EXPECT_EQ(mgr.compose(f, v, g), expected);
  }
}

TEST_P(BddProperty, SatCountConsistentWithMinterms) {
  for (int i = 0; i < 5; ++i) {
    const Bdd f = random_function(3);
    std::vector<std::uint32_t> vars;
    for (std::uint32_t v = 0; v < 12; ++v) vars.push_back(v);
    const auto minterms = mgr.all_minterms(f, vars, 1u << 13);
    EXPECT_DOUBLE_EQ(mgr.sat_count(f, 12),
                     static_cast<double>(minterms.size()));
  }
}

TEST_P(BddProperty, MintermsAllSatisfyAndAreDistinct) {
  const Bdd f = random_function(4);
  if (f.is_false()) GTEST_SKIP();
  std::vector<std::uint32_t> vars;
  for (std::uint32_t v = 0; v < 12; ++v) vars.push_back(v);
  const auto minterms = mgr.all_minterms(f, vars, 1u << 13);
  std::set<std::vector<bool>> unique(minterms.begin(), minterms.end());
  EXPECT_EQ(unique.size(), minterms.size());
  for (const auto& m : minterms) EXPECT_TRUE(mgr.eval(f, m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// --- faulty netlist vs lane injection -----------------------------------------

class FaultEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultEquivalence, MaterializedNetlistMatchesLaneInjection) {
  // The two independent fault mechanisms — rebuilding the netlist
  // (apply_fault) and forcing rails in the parallel simulator
  // (LaneInjection) — must agree on the settled state for every fault and
  // a set of probe vectors, whenever the parallel (conservative) simulator
  // resolves to definite values.
  const SynthResult synth =
      benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  const Netlist& good = synth.netlist;
  const auto faults = input_stuck_faults(good);
  Rng rng(42);

  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Fault& fault = faults[fi];
    const Netlist faulty = apply_fault(good, fault);
    TernarySim faulty_scalar(faulty);
    ParallelTernarySim par(good, {fault.to_injection(1ull << 1)});

    std::vector<bool> vec;
    for (const SignalId in : good.inputs())
      vec.push_back(!synth.reset_state[in]);

    // Parallel lane 1 carries the injected fault.
    par.load_state(synth.reset_state);
    par.settle(vec);

    // Scalar run on the materialized netlist.
    const auto scalar = faulty_scalar.settle(
        fault_initial_state(good, fault, synth.reset_state),
        map_input_vector(good, faulty, vec));

    for (SignalId s = 0; s < good.num_signals(); ++s) {
      if (fault.site == Fault::Site::SignalOutput && fault.gate == s) continue;
      const Ternary lane = par.value(s, 1);
      const Ternary mat = scalar.state[s];
      if (lane != Ternary::X && mat != Ternary::X) {
        EXPECT_EQ(lane, mat) << GetParam() << " " << fault.describe(good)
                             << " signal " << good.signal_name(s);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, FaultEquivalence,
                         ::testing::Values("rpdft", "dff", "rcv-setup",
                                           "vbe5b"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// --- random netlists: conservative vs exact simulation ------------------------

class RandomNetlistProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetlistProperty, GeneratorIsDeterministicAndValid) {
  const fixtures::Circuit a = fixtures::random_netlist(GetParam());
  const fixtures::Circuit b = fixtures::random_netlist(GetParam());
  EXPECT_EQ(write_xnl_string(a.netlist), write_xnl_string(b.netlist));
  EXPECT_EQ(a.reset, b.reset);
  EXPECT_TRUE(a.netlist.is_stable_state(a.reset));
}

TEST_P(RandomNetlistProperty, TernaryNeverMissesARace) {
  // The fixture generator covers gate mixes no hand-written circuit does;
  // on each generated circuit, every vector from reset must satisfy the
  // soundness contract: >= 2 exact outcomes implies non-confluent ternary,
  // and a definite ternary settle implies a unique exact outcome.
  const fixtures::Circuit fix = fixtures::random_netlist(GetParam());
  const Netlist& n = fix.netlist;
  TernarySim sim(n);
  const std::size_t m = n.inputs().size();
  for (std::uint64_t bits = 0; bits < (1ull << m); ++bits) {
    std::vector<bool> vec(m);
    for (std::size_t i = 0; i < m; ++i) vec[i] = (bits >> i) & 1;
    const auto ternary = sim.settle(fix.reset, vec);
    const auto exact = explore_settling(n, fix.reset, vec, 40);
    if (exact.stable_states.size() >= 2) {
      EXPECT_FALSE(ternary.confluent) << n.name() << " vector " << bits;
    }
    if (ternary.confluent && !exact.exceeded_bound) {
      ASSERT_EQ(exact.stable_states.size(), 1u)
          << n.name() << " vector " << bits;
      EXPECT_EQ(*exact.stable_states.begin(), ternary.final_state());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistProperty,
                         ::testing::Values(1u, 7u, 21u, 99u, 1234u));

// --- CSSG determinism, symbolically --------------------------------------------

class CssgDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(CssgDeterminism, RelationIsAFunctionOfStateAndPattern) {
  // Directly on the BDDs: there must be no pair of CSSG edges from the
  // same state whose successors agree on all inputs but differ on a gate.
  const SynthResult synth =
      benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  CssgOptions options;
  options.k = 24;
  Cssg cssg(synth.netlist, {synth.reset_state}, options);
  SymbolicEncoding& enc = cssg.encoding();
  BddManager& mgr = enc.mgr();

  const Bdd rel_xw = enc.next_to_aux(cssg.relation());
  Bdd eq_inputs = mgr.bdd_true();
  Bdd eq_all = mgr.bdd_true();
  for (SignalId s = 0; s < enc.num_signals(); ++s) {
    const Bdd eq = !(enc.next(s) ^ enc.aux(s));
    eq_all &= eq;
    if (synth.netlist.is_input(s)) eq_inputs &= eq;
  }
  const Bdd two_successors =
      cssg.relation() & rel_xw & eq_inputs & !eq_all;
  EXPECT_TRUE(two_successors.is_false()) << GetParam();
}

TEST_P(CssgDeterminism, RingsPartitionReachable) {
  const SynthResult synth =
      benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  CssgOptions options;
  options.k = 24;
  Cssg cssg(synth.netlist, {synth.reset_state}, options);
  BddManager& mgr = cssg.encoding().mgr();
  Bdd unioned = mgr.bdd_false();
  for (std::size_t i = 0; i < cssg.rings().size(); ++i) {
    for (std::size_t j = i + 1; j < cssg.rings().size(); ++j)
      EXPECT_TRUE((cssg.rings()[i] & cssg.rings()[j]).is_false())
          << "rings " << i << "," << j << " overlap";
    unioned |= cssg.rings()[i];
  }
  EXPECT_EQ(unioned, cssg.cssg_reachable());
}

TEST_P(CssgDeterminism, ImagePreimageAdjoint) {
  const SynthResult synth =
      benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  CssgOptions options;
  options.k = 24;
  Cssg cssg(synth.netlist, {synth.reset_state}, options);
  // img(S) ∩ T nonempty  <=>  S ∩ pre(T) nonempty, for sample S, T.
  const Bdd s = cssg.rings().front();
  for (const Bdd& t : cssg.rings()) {
    const bool forward = !(cssg.image(s) & t).is_false();
    const bool backward = !(s & cssg.preimage(t)).is_false();
    EXPECT_EQ(forward, backward);
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, CssgDeterminism,
                         ::testing::Values("rpdft", "chu150", "ebergen",
                                           "seq4", "mmu", "vbe5b"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// --- synthesized implementations vs specification -------------------------------

class ImplementationFidelity : public ::testing::TestWithParam<std::string> {};

TEST_P(ImplementationFidelity, BothStylesComputeTheSameNextState) {
  // On every reachable SG code, the SI gC target and the BD SOP target of
  // each non-input signal must both equal the specification's next-state
  // value (they may differ on unreachable codes — that is the don't-care
  // freedom).
  const Stg stg = benchmark_stg(GetParam());
  const StateGraph sg = expand_stg(stg);
  const SynthResult si = benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  const SynthResult bd = benchmark_circuit(GetParam(), SynthStyle::BoundedDelay);

  for (std::uint32_t st = 0; st < sg.num_states(); ++st) {
    // SI netlist: signals are the only gates.
    std::vector<bool> si_state(si.netlist.num_signals(), false);
    for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig)
      si_state[si.netlist.signal(stg.signal(sig).name)] = sg.codes[st][sig];
    // BD netlist: relax the auxiliary combinational gates first.
    std::vector<bool> bd_state(bd.netlist.num_signals(), false);
    for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig)
      bd_state[bd.netlist.signal(stg.signal(sig).name)] = sg.codes[st][sig];
    for (std::size_t pass = 0; pass < bd.netlist.num_signals(); ++pass) {
      bool changed = false;
      for (SignalId s = 0; s < bd.netlist.num_signals(); ++s) {
        bool is_protocol_signal = false;
        for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig)
          if (bd.netlist.signal_name(s) == stg.signal(sig).name)
            is_protocol_signal = true;
        if (is_protocol_signal) continue;
        const bool target = bd.netlist.eval_gate_bool(s, bd_state);
        if (bd_state[s] != target) {
          bd_state[s] = target;
          changed = true;
        }
      }
      if (!changed) break;
    }
    for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig) {
      if (stg.signal(sig).kind == SignalKind::Input) continue;
      const bool expected = sg.next_value(st, sig);
      EXPECT_EQ(si.netlist.eval_gate_bool(
                    si.netlist.signal(stg.signal(sig).name), si_state),
                expected)
          << GetParam() << " SI " << stg.signal(sig).name << " state " << st;
      EXPECT_EQ(bd.netlist.eval_gate_bool(
                    bd.netlist.signal(stg.signal(sig).name), bd_state),
                expected)
          << GetParam() << " BD " << stg.signal(sig).name << " state " << st;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, ImplementationFidelity,
                         ::testing::ValuesIn(si_benchmark_names()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace xatpg
