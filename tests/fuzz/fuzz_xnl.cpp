// Fuzz harness for the .xnl parser (docs/FORMATS.md).
//
// Contract under test (the Expected<T> boundary, include/xatpg/error.hpp):
// for ANY byte string, parse_xnl_string either returns a valid netlist or
// throws exactly CheckError (which Session translates to a typed ParseError)
// — never another exception type, never a crash, leak or hang.  Accepted
// input additionally owes the serve layer a total canonicalization: write_xnl
// of the parse must re-parse, and re-writing that must describe the same
// circuit line-for-line modulo gate-line order (the cache key is built from
// the canonical bytes; see fuzz::sorted_lines for why byte equality is the
// wrong ask).
#include <exception>
#include <string>
#include <vector>

#include "fuzz_common.hpp"
#include "netlist/netlist.hpp"
#include "sim/ternary.hpp"
#include "util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (std::size_t{1} << 16)) return 0;  // bound per-input work
  const std::string text(reinterpret_cast<const char*>(data),
                         reinterpret_cast<const char*>(data) + size);
  try {
    const xatpg::Netlist netlist = xatpg::parse_xnl_string(text);

    const std::string canonical = xatpg::write_xnl_string(netlist);
    std::string again;
    try {
      again = xatpg::write_xnl_string(xatpg::parse_xnl_string(canonical));
    } catch (const xatpg::CheckError& e) {
      xatpg::fuzz::violation(
          (std::string("accepted netlist failed to re-parse its own "
                       "canonical form: ") +
           e.what())
              .c_str(),
          data, size);
    }
    if (xatpg::fuzz::sorted_lines(again) != xatpg::fuzz::sorted_lines(canonical))
      xatpg::fuzz::violation(
          "write->parse->write changed the circuit's line set", data, size);

    // Settling must terminate on arbitrary accepted circuits (it is allowed
    // to report failure — not every valid structure is confluent).
    std::vector<bool> state(netlist.num_signals(), false);
    (void)xatpg::settle_to_stable(netlist, state);
  } catch (const xatpg::CheckError&) {
    // The one permitted escape: Session turns this into Error{ParseError}.
  } catch (const std::bad_alloc&) {
    // Permitted: Session turns this into Error{ResourceError}.
  } catch (const std::exception& e) {
    xatpg::fuzz::violation(e.what(), data, size);
  } catch (...) {
    xatpg::fuzz::violation("non-std exception escaped parse_xnl", data, size);
  }
  return 0;
}
