// Structure-aware netlist fuzzer (the deep-state harness of docs/FUZZING.md).
//
// Byte-level fuzzing of parse_xnl almost never produces a circuit that
// survives check_invariants, so the interesting machinery — CSSG
// construction, settling, the three-phase ATPG engine — would never run.
// This harness turns the input bytes into a *generation recipe* instead:
// seed a valid random netlist, then apply a chain of structure-preserving
// mutations (gate swap / fanin rewire / gate splice / reset perturbation,
// src/netlist/random_netlist.hpp), each re-validated, and drive every mutant
// through three oracles:
//
//   1. canonicalization: write_xnl -> parse_xnl -> write_xnl must preserve
//      the circuit's line set (the serve cache keys on canonical bytes;
//      re-parsing may renumber, so fuzz::sorted_lines is the identity);
//   2. the brute-force CSSG oracle (tests/oracle.hpp): the symbolic CSSG
//      must match explicit enumeration exactly;
//   3. the ATPG engine must run to completion with one outcome per fault.
//
// Any exception at all is a violation here: every circuit is valid by
// construction, so even CheckError (legal for hostile *text*) means a
// soundness bug on these inputs.
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "atpg/engine.hpp"
#include "atpg/fault.hpp"
#include "fuzz_common.hpp"
#include "netlist/netlist.hpp"
#include "netlist/random_netlist.hpp"
#include "oracle.hpp"
#include "sgraph/cssg.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace {

constexpr std::size_t kSettle = 20;
/// Brute-force enumeration is exponential-ish; cap the circuits it sees.
constexpr std::size_t kOracleMaxSignals = 12;
/// The engine is cheap on toy circuits but not free; cap its inputs too.
constexpr std::size_t kEngineMaxSignals = 16;

void check_roundtrip(const xatpg::Netlist& netlist, const std::uint8_t* data,
                     std::size_t size) {
  const std::string canonical = xatpg::write_xnl_string(netlist);
  std::string again;
  try {
    const xatpg::Netlist reparsed = xatpg::parse_xnl_string(canonical);
    if (reparsed.num_signals() != netlist.num_signals())
      xatpg::fuzz::violation("canonical re-parse changed the signal count",
                             data, size);
    again = xatpg::write_xnl_string(reparsed);
  } catch (const xatpg::CheckError& e) {
    xatpg::fuzz::violation(
        (std::string("mutant failed to re-parse its canonical form: ") +
         e.what())
            .c_str(),
        data, size);
  }
  if (xatpg::fuzz::sorted_lines(again) != xatpg::fuzz::sorted_lines(canonical))
    xatpg::fuzz::violation(
        "mutant write->parse->write changed the circuit's line set", data,
        size);
}

void check_cssg_oracle(const xatpg::Netlist& netlist,
                       const std::vector<bool>& reset,
                       const std::uint8_t* data, std::size_t size) {
  const xatpg::testing::OracleCssg oracle =
      xatpg::testing::oracle_cssg(netlist, reset, kSettle);
  xatpg::CssgOptions options;
  options.k = kSettle;
  const std::string mismatch =
      xatpg::testing::cssg_oracle_mismatch(netlist, reset, oracle, options);
  if (!mismatch.empty())
    xatpg::fuzz::violation(
        (std::string("symbolic CSSG diverged from brute force: ") + mismatch +
         "\ncircuit:\n" + xatpg::write_xnl_string(netlist))
            .c_str(),
        data, size);
}

void check_engine(const xatpg::Netlist& netlist,
                  const std::vector<bool>& reset, const std::uint8_t* data,
                  std::size_t size) {
  xatpg::AtpgOptions options;
  options.seed = 7;
  options.random_budget = 8;
  options.random_walk_len = 4;
  const std::vector<xatpg::Fault> faults = xatpg::input_stuck_faults(netlist);
  xatpg::AtpgEngine engine(netlist, reset, options);
  const xatpg::AtpgResult result = engine.run(faults);
  if (result.outcomes.size() != faults.size())
    xatpg::fuzz::violation("engine returned wrong outcome count", data, size);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0 || size > 64) return 0;  // a recipe, not a document
  std::uint64_t seed = 0xa5a5a5a5ull;
  for (std::size_t i = 0; i < size; ++i) seed = seed * 1099511628211ull + data[i];
  xatpg::Rng rng(seed);

  xatpg::RandomNetlistOptions generate;
  generate.num_inputs = 3;
  generate.num_gates = 4 + rng.below(4);
  std::vector<bool> reset;
  xatpg::Netlist current;
  try {
    current = xatpg::random_netlist(rng.next(), generate, &reset);
  } catch (const xatpg::CheckError&) {
    return 0;  // generator refused the seed (non-confluent from all-false)
  }

  try {
    const std::size_t rounds = 1 + rng.below(3);
    for (std::size_t round = 0; round < rounds; ++round) {
      std::optional<xatpg::MutatedNetlist> mutant =
          xatpg::mutate_netlist(current, rng);
      if (!mutant) break;
      current = std::move(mutant->netlist);
      reset = std::move(mutant->reset);

      check_roundtrip(current, data, size);
      if (current.num_signals() <= kOracleMaxSignals)
        check_cssg_oracle(current, reset, data, size);
      if (current.num_signals() <= kEngineMaxSignals)
        check_engine(current, reset, data, size);
    }
  } catch (const std::exception& e) {
    xatpg::fuzz::violation(
        (std::string("exception on a valid-by-construction circuit: ") +
         e.what())
            .c_str(),
        data, size);
  } catch (...) {
    xatpg::fuzz::violation("non-std exception on a valid circuit", data, size);
  }
  return 0;
}
