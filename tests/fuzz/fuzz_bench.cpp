// Fuzz harness for the ISCAS-style .bench parser (docs/FORMATS.md).
//
// Same Expected<T> contract as fuzz_xnl: only CheckError/bad_alloc may
// escape.  Accepted .bench circuits additionally canonicalize through .xnl
// at serve admission (server.cpp), so the harness asserts that path too:
// write_xnl of any accepted bench parse must itself re-parse as .xnl and
// preserve the circuit's line set (see fuzz::sorted_lines).  This is what
// makes signal names with embedded whitespace — which .bench argument
// splitting used to accept — a bug the parsers now reject.
#include <exception>
#include <string>
#include <vector>

#include "fuzz_common.hpp"
#include "netlist/netlist.hpp"
#include "sim/ternary.hpp"
#include "util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (std::size_t{1} << 16)) return 0;
  const std::string text(reinterpret_cast<const char*>(data),
                         reinterpret_cast<const char*>(data) + size);
  try {
    const xatpg::Netlist netlist = xatpg::parse_bench_string(text);

    const std::string canonical = xatpg::write_xnl_string(netlist);
    std::string again;
    try {
      again = xatpg::write_xnl_string(xatpg::parse_xnl_string(canonical));
    } catch (const xatpg::CheckError& e) {
      xatpg::fuzz::violation(
          (std::string("accepted .bench circuit failed to canonicalize "
                       "through .xnl: ") +
           e.what())
              .c_str(),
          data, size);
    }
    if (xatpg::fuzz::sorted_lines(again) != xatpg::fuzz::sorted_lines(canonical))
      xatpg::fuzz::violation(
          "bench canonicalization changed the circuit's line set", data, size);

    std::vector<bool> state(netlist.num_signals(), false);
    (void)xatpg::settle_to_stable(netlist, state);
  } catch (const xatpg::CheckError&) {
  } catch (const std::bad_alloc&) {
  } catch (const std::exception& e) {
    xatpg::fuzz::violation(e.what(), data, size);
  } catch (...) {
    xatpg::fuzz::violation("non-std exception escaped parse_bench", data,
                           size);
  }
  return 0;
}
