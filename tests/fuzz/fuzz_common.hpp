// Shared scaffolding for the xatpg fuzz harnesses (docs/FUZZING.md).
//
// Every harness defines the libFuzzer entry point:
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// and is built in one of two modes by tests/fuzz/CMake wiring:
//
//  * XATPG_HAVE_LIBFUZZER — clang's -fsanitize=fuzzer supplies main() and
//    drives coverage-guided mutation.  This is the exploration mode.
//  * otherwise — this header supplies a plain-loop main() that replays the
//    checked-in corpus and then runs a bounded number of deterministic
//    byte-level mutations of it.  This is the regression mode: it builds
//    with any C++20 toolchain, so the harnesses run as ordinary ctest
//    targets (and in CI fuzz-smoke) even where libFuzzer is absent.
//
// The fallback driver understands a libFuzzer-compatible subset of flags
// (-runs=N, -seed=S, -max_len=L; positional args are corpus files or
// directories), so the same command line works in both modes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace xatpg::fuzz {

/// Renumbering-invariant view of a .xnl text: its lines, sorted.
///
/// write_xnl emits gate lines in signal-id order while parse_xnl assigns ids
/// by first mention (the .outputs line interns names early, and feedback
/// fanins intern before their defining gate), so write->parse->write may
/// permute gate lines — with mutual feedback the order can even oscillate
/// with period 2, so no byte-level fixpoint exists.  Every line fully
/// describes one gate by signal *names*, though, so the sorted line multiset
/// is the canonical identity that must survive any number of round trips.
inline std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// Report a contract violation — an input escaped the Expected<T>/CheckError
/// boundary — dump the offending bytes so the failure is reproducible, and
/// abort so both drivers (libFuzzer and the plain loop) register a crash.
[[noreturn]] inline void violation(const char* what, const std::uint8_t* data,
                                   std::size_t size) {
  std::fprintf(stderr, "\nFUZZ CONTRACT VIOLATION: %s\ninput (%zu bytes): ",
               what, size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint8_t c = data[i];
    if (c >= 0x20 && c < 0x7f && c != '\\')
      std::fputc(c, stderr);
    else
      std::fprintf(stderr, "\\x%02x", c);
  }
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace xatpg::fuzz

#if !defined(XATPG_HAVE_LIBFUZZER)

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "util/random.hpp"

namespace xatpg::fuzz {

inline std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// One deterministic byte-level edit.  Crude next to libFuzzer's coverage
/// guidance, but over a structured seed corpus it reliably exercises the
/// parsers' error paths (which is what the smoke runs are for).
inline void mutate(std::vector<std::uint8_t>& bytes, Rng& rng,
                   std::size_t max_len) {
  // Characters the grammars under test care about: keeps random edits from
  // collapsing instantly into "unknown directive" on every iteration.
  static constexpr char kDictionary[] =
      " \t\n:.,-01#(){}[]\"\\=eE+gxzabc78";
  switch (rng.below(6)) {
    case 0: {  // bit flip
      if (bytes.empty()) break;
      bytes[rng.below(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    }
    case 1: {  // overwrite with a dictionary or random byte
      if (bytes.empty()) break;
      bytes[rng.below(bytes.size())] =
          rng.flip() ? static_cast<std::uint8_t>(
                           kDictionary[rng.below(sizeof kDictionary - 1)])
                     : static_cast<std::uint8_t>(rng.below(256));
      break;
    }
    case 2: {  // insert
      if (bytes.size() >= max_len) break;
      const auto at = bytes.begin() +
                      static_cast<std::ptrdiff_t>(rng.below(bytes.size() + 1));
      bytes.insert(at, static_cast<std::uint8_t>(
                           kDictionary[rng.below(sizeof kDictionary - 1)]));
      break;
    }
    case 3: {  // erase a short range
      if (bytes.empty()) break;
      const std::size_t start = rng.below(bytes.size());
      const std::size_t len = 1 + rng.below(8);
      bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(start),
                  bytes.begin() + static_cast<std::ptrdiff_t>(
                                      std::min(bytes.size(), start + len)));
      break;
    }
    case 4: {  // duplicate a short range (repeats directives/fields)
      if (bytes.empty() || bytes.size() >= max_len) break;
      const std::size_t start = rng.below(bytes.size());
      const std::size_t len =
          std::min({std::size_t{1} + rng.below(16), bytes.size() - start,
                    max_len - bytes.size()});
      std::vector<std::uint8_t> chunk(
          bytes.begin() + static_cast<std::ptrdiff_t>(start),
          bytes.begin() + static_cast<std::ptrdiff_t>(start + len));
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(start),
                   chunk.begin(), chunk.end());
      break;
    }
    default: {  // truncate
      if (bytes.empty()) break;
      bytes.resize(rng.below(bytes.size()));
      break;
    }
  }
}

inline int fallback_main(int argc, char** argv) {
  std::size_t runs = 10000;
  std::uint64_t seed = 1;
  std::size_t max_len = 4096;
  std::vector<std::vector<std::uint8_t>> corpus;
  std::size_t corpus_files = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = static_cast<std::size_t>(std::strtoull(arg.c_str() + 6, nullptr, 10));
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("-", 0) == 0) {
      // Unknown libFuzzer flag: ignore, so command lines written for the
      // libFuzzer build run unchanged against the fallback driver.
      continue;
    } else {
      std::error_code ec;
      if (std::filesystem::is_directory(arg, ec)) {
        for (const auto& entry : std::filesystem::directory_iterator(arg)) {
          if (!entry.is_regular_file()) continue;
          corpus.push_back(read_file(entry.path()));
          ++corpus_files;
        }
      } else {
        corpus.push_back(read_file(arg));
        ++corpus_files;
      }
    }
  }

  // Replay every corpus entry verbatim first: checked-in crashers are
  // regression inputs and must pass before any mutation runs.
  for (const auto& entry : corpus)
    LLVMFuzzerTestOneInput(entry.data(), entry.size());

  Rng rng(seed);
  for (std::size_t i = 0; i < runs; ++i) {
    std::vector<std::uint8_t> input;
    if (!corpus.empty()) input = corpus[rng.below(corpus.size())];
    if (input.size() > max_len) input.resize(max_len);
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) mutate(input, rng, max_len);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  std::printf("fallback fuzz driver: %zu corpus inputs + %zu mutations, OK\n",
              corpus_files, runs);
  return 0;
}

}  // namespace xatpg::fuzz

int main(int argc, char** argv) {
  return xatpg::fuzz::fallback_main(argc, argv);
}

#endif  // !XATPG_HAVE_LIBFUZZER
