// Fuzz harness for the serve protocol frame decoder (docs/PROTOCOL.md).
//
// parse_request is the daemon's outermost untrusted surface and its contract
// is stricter than the parsers': it must return Expected<Request> for ANY
// line — a CheckError escaping it means the reader thread dies and takes the
// daemon's connection down, so even the "permitted" parser escape is a
// violation here.  Only bad_alloc (translated by the server's own boundary)
// may propagate.
#include <exception>
#include <string>

#include "fuzz_common.hpp"
#include "serve/protocol.hpp"
#include "util/check.hpp"
#include "xatpg/options.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (std::size_t{1} << 16)) return 0;
  const std::string line(reinterpret_cast<const char*>(data),
                         reinterpret_cast<const char*>(data) + size);
  const xatpg::AtpgOptions defaults;
  try {
    const xatpg::Expected<xatpg::serve::Request> request =
        xatpg::serve::parse_request(line, defaults);
    if (request.has_value()) {
      // Echo paths the server takes with decoder output: the id lands in
      // frames and the options land in the cache key.  Both must be total.
      (void)xatpg::serve::ack_frame(request.value().id, 0);
      (void)xatpg::serve::error_frame(
          request.value().id,
          xatpg::Error{xatpg::ErrorCode::OptionError, "fuzz"});
      (void)xatpg::serve::options_fingerprint(request.value().options);
    }
  } catch (const std::bad_alloc&) {
  } catch (const xatpg::CheckError& e) {
    xatpg::fuzz::violation(
        (std::string("CheckError escaped parse_request: ") + e.what()).c_str(),
        data, size);
  } catch (const std::exception& e) {
    xatpg::fuzz::violation(e.what(), data, size);
  } catch (...) {
    xatpg::fuzz::violation("non-std exception escaped parse_request", data,
                           size);
  }
  return 0;
}
