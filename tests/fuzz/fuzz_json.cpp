// Fuzz harness for src/util/json.hpp — the JSON model shared by the perf
// record reader and the serve protocol.
//
// Contract: parse() either returns a document or throws exactly CheckError
// (malformed syntax, nesting past the depth cap); the typed accessors throw
// exactly CheckError on wrong-typed or out-of-range fields (the
// double->size_t paths are where UB used to hide).  Nothing else may escape,
// and deeply nested input must not blow the stack.
#include <exception>
#include <string>

#include "fuzz_common.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace {

/// Run every typed accessor over every key of an object, recursing into
/// nested objects/arrays: wrong-typed CheckErrors are the accessors'
/// documented behaviour, anything else is a violation caught by the caller.
void exercise_accessors(const xatpg::json::Value& value, int depth) {
  if (depth > 8) return;
  if (value.type == xatpg::json::Value::Type::Object) {
    for (const auto& [key, field] : value.object) {
      try {
        (void)xatpg::json::num_field(value, key.c_str(), 0);
      } catch (const xatpg::CheckError&) {
      }
      try {
        (void)xatpg::json::size_field(value, key.c_str());
      } catch (const xatpg::CheckError&) {
      }
      try {
        (void)xatpg::json::string_field(value, key.c_str());
      } catch (const xatpg::CheckError&) {
      }
      try {
        (void)xatpg::json::bool_field(value, key.c_str(), false);
      } catch (const xatpg::CheckError&) {
      }
      exercise_accessors(field, depth + 1);
    }
  }
  for (const auto& element : value.array)
    exercise_accessors(element, depth + 1);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (std::size_t{1} << 16)) return 0;
  const std::string text(reinterpret_cast<const char*>(data),
                         reinterpret_cast<const char*>(data) + size);
  try {
    const xatpg::json::Value root = xatpg::json::parse(text);
    exercise_accessors(root, 0);

    // Accepted numbers must survive the writer: number() promises a valid
    // JSON token for any double it is handed, including the non-finite ones.
    if (root.type == xatpg::json::Value::Type::Number)
      (void)xatpg::json::parse(xatpg::json::number(root.number));
    if (root.type == xatpg::json::Value::Type::String)
      (void)xatpg::json::parse('"' + xatpg::json::escape(root.string) + '"');
  } catch (const xatpg::CheckError&) {
  } catch (const std::bad_alloc&) {
  } catch (const std::exception& e) {
    xatpg::fuzz::violation(e.what(), data, size);
  } catch (...) {
    xatpg::fuzz::violation("non-std exception escaped json::parse", data,
                           size);
  }
  return 0;
}
