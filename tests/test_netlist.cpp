#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fixtures.hpp"
#include "util/check.hpp"

namespace xatpg {
namespace {

using fixtures::kFig1aXnl;
using fixtures::kFig1bXnl;

TEST(Netlist, BuildByHand) {
  Netlist n("toy");
  const SignalId a = n.add_input("A");
  const SignalId b = n.add_input("B");
  const SignalId g = n.add_gate(GateType::And, "g", {a, b});
  n.set_output(g);
  n.check_invariants();
  EXPECT_EQ(n.num_signals(), 3u);
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_TRUE(n.is_input(a));
  EXPECT_FALSE(n.is_input(g));
  EXPECT_TRUE(n.is_output(g));
  EXPECT_EQ(n.signal("g"), g);
  EXPECT_EQ(n.num_pins(), 2u);
}

TEST(Netlist, DuplicateDefinitionThrows) {
  Netlist n;
  n.add_input("A");
  EXPECT_THROW(n.add_input("A"), CheckError);
}

TEST(Netlist, UndefinedSignalFailsValidation) {
  Netlist n;
  const SignalId a = n.add_input("A");
  const SignalId ghost = n.declare_signal("ghost");
  n.add_gate(GateType::Or, "g", {a, ghost});
  EXPECT_THROW(n.check_invariants(), CheckError);
}

TEST(Netlist, FindSignal) {
  Netlist n;
  n.add_input("A");
  EXPECT_TRUE(n.find_signal("A").has_value());
  EXPECT_FALSE(n.find_signal("nope").has_value());
  EXPECT_THROW(n.signal("nope"), CheckError);
}

TEST(Netlist, GateEvalBasics) {
  Netlist n;
  const SignalId a = n.add_input("A");
  const SignalId b = n.add_input("B");
  const SignalId g_and = n.add_gate(GateType::And, "g_and", {a, b});
  const SignalId g_nor = n.add_gate(GateType::Nor, "g_nor", {a, b});
  const SignalId g_xor = n.add_gate(GateType::Xor, "g_xor", {a, b});
  const SignalId g_c = n.add_gate(GateType::Celem, "g_c", {a, b});
  n.check_invariants();

  std::vector<bool> st(n.num_signals(), false);
  auto set = [&](SignalId s, bool v) { st[s] = v; };

  set(a, true);
  set(b, false);
  EXPECT_FALSE(n.eval_gate_bool(g_and, st));
  EXPECT_FALSE(n.eval_gate_bool(g_nor, st));
  EXPECT_TRUE(n.eval_gate_bool(g_xor, st));
  // C-element holds its previous value on mixed inputs.
  set(g_c, false);
  EXPECT_FALSE(n.eval_gate_bool(g_c, st));
  set(g_c, true);
  EXPECT_TRUE(n.eval_gate_bool(g_c, st));
  // All-1 sets, all-0 resets.
  set(b, true);
  set(g_c, false);
  EXPECT_TRUE(n.eval_gate_bool(g_c, st));
  set(a, false);
  set(b, false);
  set(g_c, true);
  EXPECT_FALSE(n.eval_gate_bool(g_c, st));
}

TEST(Netlist, SopGateEval) {
  Netlist n;
  const SignalId a = n.add_input("A");
  const SignalId b = n.add_input("B");
  const SignalId c = n.add_input("C");
  // f = A B' + C
  Cover cover{Cube{{1, 0, -1}}, Cube{{-1, -1, 1}}};
  const SignalId f = n.add_sop("f", {a, b, c}, cover);
  n.check_invariants();
  std::vector<bool> st(n.num_signals(), false);
  EXPECT_FALSE(n.eval_gate_bool(f, st));
  st[a] = true;
  EXPECT_TRUE(n.eval_gate_bool(f, st));
  st[b] = true;
  EXPECT_FALSE(n.eval_gate_bool(f, st));
  st[c] = true;
  EXPECT_TRUE(n.eval_gate_bool(f, st));
}

TEST(Netlist, GcGateEval) {
  Netlist n;
  const SignalId a = n.add_input("A");
  const SignalId b = n.add_input("B");
  // set = A B, reset = A' B'  (the C-element as a gC)
  const SignalId q =
      n.add_gc("q", {a, b}, Cover{Cube{{1, 1}}}, Cover{Cube{{0, 0}}});
  n.check_invariants();
  std::vector<bool> st(n.num_signals(), false);
  // Hold at 0 on mixed input.
  st[a] = true;
  EXPECT_FALSE(n.eval_gate_bool(q, st));
  // Set.
  st[b] = true;
  EXPECT_TRUE(n.eval_gate_bool(q, st));
  // Hold at 1.
  st[q] = true;
  st[b] = false;
  EXPECT_TRUE(n.eval_gate_bool(q, st));
  // Reset.
  st[a] = false;
  EXPECT_FALSE(n.eval_gate_bool(q, st));
}

TEST(Netlist, StableStateDetection) {
  Netlist n = parse_xnl_string(kFig1aXnl);
  // A=0,B=1,a=0,b=1,c=0,y=0 is stable.
  std::vector<bool> st(n.num_signals(), false);
  st[n.signal("B")] = true;
  st[n.signal("b")] = true;
  EXPECT_TRUE(n.is_stable_state(st));
  // Flipping input A makes buffer a excited.
  st[n.signal("A")] = true;
  EXPECT_FALSE(n.is_stable_state(st));
  EXPECT_FALSE(n.is_gate_stable(n.signal("a"), st));
}

TEST(NetlistParser, ParsesFig1a) {
  const Netlist n = parse_xnl_string(kFig1aXnl);
  EXPECT_EQ(n.name(), "fig1a");
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.num_signals(), 6u);
  EXPECT_EQ(n.gate(n.signal("c")).type, GateType::And);
  // y reads its own output (feedback latch).
  const Gate& y = n.gate(n.signal("y"));
  ASSERT_EQ(y.fanins.size(), 2u);
  EXPECT_EQ(y.fanins[1], n.signal("y"));
}

TEST(NetlistParser, RoundTripThroughWriter) {
  const Netlist n1 = parse_xnl_string(kFig1bXnl);
  const std::string text = write_xnl_string(n1);
  const Netlist n2 = parse_xnl_string(text);
  EXPECT_EQ(n1.name(), n2.name());
  EXPECT_EQ(n1.num_signals(), n2.num_signals());
  EXPECT_EQ(n1.inputs().size(), n2.inputs().size());
  EXPECT_EQ(n1.outputs().size(), n2.outputs().size());
  // Signal ids may be renumbered by the writer's emission order; compare
  // structure by name.
  for (SignalId s1 = 0; s1 < n1.num_signals(); ++s1) {
    const Gate& g1 = n1.gate(s1);
    const SignalId s2 = n2.signal(g1.name);
    const Gate& g2 = n2.gate(s2);
    EXPECT_EQ(g1.type, g2.type);
    ASSERT_EQ(g1.fanins.size(), g2.fanins.size());
    for (std::size_t pin = 0; pin < g1.fanins.size(); ++pin)
      EXPECT_EQ(n1.signal_name(g1.fanins[pin]), n2.signal_name(g2.fanins[pin]));
  }
}

TEST(NetlistParser, SopAndGcRoundTrip) {
  const char* text = R"(
.model covers
.inputs A B
.outputs f q
.sop f : A B : 11 0-
.gc q : A B : 11 : 00
.end
)";
  const Netlist n1 = parse_xnl_string(text);
  const Netlist n2 = parse_xnl_string(write_xnl_string(n1));
  EXPECT_EQ(n2.gate(n2.signal("f")).cover.size(), 2u);
  EXPECT_EQ(n2.gate(n2.signal("q")).cover.size(), 1u);
  EXPECT_EQ(n2.gate(n2.signal("q")).reset_cover.size(), 1u);
  EXPECT_EQ(n1.gate(n1.signal("f")).cover, n2.gate(n2.signal("f")).cover);
}

TEST(NetlistParser, RejectsMalformedCube) {
  const char* text = R"(
.model bad
.inputs A B
.sop f : A B : 1-1
.end
)";
  EXPECT_THROW(parse_xnl_string(text), CheckError);
}

TEST(NetlistParser, RejectsUnknownDirective) {
  EXPECT_THROW(parse_xnl_string(".bogus x\n"), CheckError);
}

TEST(NetlistParser, RejectsContentAfterEnd) {
  EXPECT_THROW(parse_xnl_string(".model m\n.end\n.inputs A\n"), CheckError);
}

TEST(NetlistParser, RejectsModelWithoutName) {
  EXPECT_THROW(parse_xnl_string(".model\n.end\n"), CheckError);
  EXPECT_THROW(parse_xnl_string(".model two names\n.end\n"), CheckError);
}

TEST(NetlistParser, RejectsGateMissingOutput) {
  EXPECT_THROW(parse_xnl_string(".gate AND\n.end\n"), CheckError);
}

TEST(NetlistParser, RejectsUnknownGateType) {
  EXPECT_THROW(parse_xnl_string(".inputs A\n.gate FROB f A\n.end\n"),
               CheckError);
}

TEST(NetlistParser, RejectsBadCubeLiteral) {
  const char* text = R"(
.model bad
.inputs A B
.sop f : A B : 1x
.end
)";
  EXPECT_THROW(parse_xnl_string(text), CheckError);
}

TEST(NetlistParser, RejectsGcWithMissingResetField) {
  const char* text = R"(
.model bad
.inputs A B
.gc q : A B : 11
.end
)";
  EXPECT_THROW(parse_xnl_string(text), CheckError);
}

TEST(NetlistParser, RejectsSopWithMultipleOutputs) {
  const char* text = R"(
.model bad
.inputs A B
.sop f g : A B : 11
.end
)";
  EXPECT_THROW(parse_xnl_string(text), CheckError);
}

TEST(NetlistParser, RejectsRedefinedSignal) {
  const char* text = R"(
.model bad
.inputs A
.gate NOT f A
.gate BUF f A
.end
)";
  EXPECT_THROW(parse_xnl_string(text), CheckError);
}

TEST(NetlistParser, RejectsUndrivenOutput) {
  // `.outputs ghost` declares the signal but nothing ever defines it; the
  // final check_invariants() pass must reject the netlist.
  const char* text = R"(
.model bad
.inputs A
.outputs ghost
.end
)";
  EXPECT_THROW(parse_xnl_string(text), CheckError);
}

TEST(NetlistParser, EmptyInputIsAValidEmptyNetlist) {
  const Netlist n = parse_xnl_string("");
  EXPECT_EQ(n.num_signals(), 0u);
}

TEST(NetlistParser, CommentsAndBlankLines) {
  const char* text = R"(
# a comment
.model c   # trailing comment

.inputs A
.gate NOT n A
.outputs n
.end
)";
  const Netlist n = parse_xnl_string(text);
  EXPECT_EQ(n.num_signals(), 2u);
}

TEST(BenchParser, ParsesIscasStyle) {
  const char* text = R"(
# small bench
INPUT(a)
INPUT(b)
OUTPUT(f)
n1 = NAND(a, b)
f = NOT(n1)
)";
  const Netlist n = parse_bench_string(text);
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.gate(n.signal("n1")).type, GateType::Nand);
  EXPECT_EQ(n.gate(n.signal("f")).type, GateType::Not);
}

TEST(BenchParser, RejectsDff) {
  const char* text = "INPUT(a)\nq = DFF(a)\n";
  EXPECT_THROW(parse_bench_string(text), CheckError);
}

TEST(BenchParser, RejectsMissingParenthesis) {
  EXPECT_THROW(parse_bench_string("INPUT(a\n"), CheckError);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nf = AND(a\n"), CheckError);
}

TEST(BenchParser, RejectsLineWithoutAssignment) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nnot an assignment\n"),
               CheckError);
}

TEST(BenchParser, RejectsUndefinedOutput) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(zz)\n"), CheckError);
}

TEST(NetlistAnalysis, Fanouts) {
  const Netlist n = parse_xnl_string(kFig1aXnl);
  const auto fo = n.fanouts();
  // Signal c fans out to y's pin 0.
  const auto& c_fo = fo[n.signal("c")];
  ASSERT_EQ(c_fo.size(), 1u);
  EXPECT_EQ(c_fo[0].gate, n.signal("y"));
  EXPECT_EQ(c_fo[0].pin, 0u);
}

TEST(NetlistAnalysis, SccFindsFeedback) {
  const Netlist n = parse_xnl_string(kFig1bXnl);
  std::uint32_t num_sccs = 0;
  const auto comp = n.scc_ids(&num_sccs);
  // c and d form a cycle -> same SCC; everything else is its own SCC.
  EXPECT_EQ(comp[n.signal("c")], comp[n.signal("d")]);
  EXPECT_NE(comp[n.signal("a")], comp[n.signal("c")]);
  EXPECT_EQ(num_sccs, n.num_signals() - 1);
}

TEST(NetlistAnalysis, FeedbackArcsBreakAllCycles) {
  for (const char* text : {kFig1aXnl, kFig1bXnl}) {
    const Netlist n = parse_xnl_string(text);
    const auto cuts = n.feedback_arcs();
    EXPECT_FALSE(cuts.empty());
    // topo_order succeeds iff the cut circuit is acyclic.
    const auto order = n.topo_order(cuts);
    EXPECT_EQ(order.size(), n.num_signals());
  }
}

TEST(NetlistAnalysis, TopoOrderRespectsDependencies) {
  Netlist n;
  const SignalId a = n.add_input("A");
  const SignalId x = n.add_gate(GateType::Not, "x", {a});
  const SignalId y = n.add_gate(GateType::Not, "y", {x});
  n.check_invariants();
  const auto order = n.topo_order({});
  const auto pos = [&](SignalId s) {
    return std::find(order.begin(), order.end(), s) - order.begin();
  };
  EXPECT_LT(pos(a), pos(x));
  EXPECT_LT(pos(x), pos(y));
}

TEST(NetlistAnalysis, TopoOrderThrowsOnCycle) {
  const Netlist n = parse_xnl_string(kFig1bXnl);
  EXPECT_THROW(n.topo_order({}), CheckError);
}

TEST(GateTypes, ParseNames) {
  EXPECT_EQ(parse_gate_type("AND2"), GateType::And);
  EXPECT_EQ(parse_gate_type("and"), GateType::And);
  EXPECT_EQ(parse_gate_type("INV"), GateType::Not);
  EXPECT_EQ(parse_gate_type("C"), GateType::Celem);
  EXPECT_EQ(parse_gate_type("NOR3"), GateType::Nor);
  EXPECT_THROW(parse_gate_type("FROB"), CheckError);
}

TEST(GateTypes, StateHolding) {
  EXPECT_TRUE(is_state_holding(GateType::Celem));
  EXPECT_TRUE(is_state_holding(GateType::Gc));
  EXPECT_FALSE(is_state_holding(GateType::And));
}

TEST(GateTypes, MajGate) {
  Netlist n;
  const SignalId a = n.add_input("A");
  const SignalId b = n.add_input("B");
  const SignalId c = n.add_input("C");
  const SignalId m = n.add_gate(GateType::Maj, "m", {a, b, c});
  n.check_invariants();
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> st(n.num_signals(), false);
    st[a] = bits & 1;
    st[b] = bits & 2;
    st[c] = bits & 4;
    const int ones = int(st[a]) + int(st[b]) + int(st[c]);
    EXPECT_EQ(n.eval_gate_bool(m, st), ones >= 2);
  }
}

}  // namespace
}  // namespace xatpg
