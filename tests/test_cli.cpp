// CLI exit-code contract suite: every typed failure must exit 1 and print
// exactly one protocol error frame — {"v":1,"type":"error","error":{...}} —
// on stderr, with the taxonomy code a script can dispatch on; usage errors
// exit 2; successes exit 0 with stderr silent.  Drives the installed binary
// (XATPG_CLI_BIN, injected by CMake) as a subprocess, so what is tested is
// exactly what a shell sees.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/protocol.hpp"
#include "util/json.hpp"

namespace {

using xatpg::json::parse;
using xatpg::json::string_field;
using xatpg::json::Value;

struct CliResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Run `xatpg <args>` with stdout/stderr captured to temp files.
CliResult run_cli(const std::string& args) {
  const std::string out_path = ::testing::TempDir() + "cli_stdout.txt";
  const std::string err_path = ::testing::TempDir() + "cli_stderr.txt";
  const std::string command = std::string(XATPG_CLI_BIN) + " " + args + " >" +
                              out_path + " 2>" + err_path;
  const int status = std::system(command.c_str());
  CliResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  result.out = slurp(out_path);
  result.err = slurp(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return result;
}

/// Assert stderr is one protocol error frame and return its taxonomy code.
std::string error_code_of(const CliResult& result) {
  const Value root = parse(result.err);
  EXPECT_EQ(root.type, Value::Type::Object) << result.err;
  EXPECT_EQ(xatpg::json::num_field(root, "v", 0), xatpg::serve::kProtocolVersion);
  EXPECT_EQ(string_field(root, "type"), "error");
  const Value* error = root.find("error");
  if (error == nullptr || error->type != Value::Type::Object) {
    ADD_FAILURE() << "no error object in: " << result.err;
    return {};
  }
  EXPECT_FALSE(string_field(*error, "message").empty());
  return string_field(*error, "code");
}

TEST(CliContract, SuccessExitsZeroWithSilentStderr) {
  const CliResult result = run_cli("run --circuit fig1a --json");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.err.empty()) << result.err;
  EXPECT_NE(result.out.find("\"coverage\""), std::string::npos);
}

TEST(CliContract, UnknownBenchmarkIsOptionErrorJson) {
  const CliResult result = run_cli("run --circuit no_such_benchmark");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(error_code_of(result), "OptionError");
}

TEST(CliContract, DegenerateOptionsAreOptionErrorJson) {
  // k = 0 makes every vector "oscillate"; AtpgOptions::validate rejects it.
  const CliResult result = run_cli("run --circuit fig1a --k 0");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(error_code_of(result), "OptionError");
}

TEST(CliContract, MalformedCircuitIsParseErrorJson) {
  const std::string path = ::testing::TempDir() + "cli_malformed.xnl";
  std::ofstream(path) << "this is ( not a netlist\n";
  const CliResult result = run_cli("run --circuit " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(error_code_of(result), "ParseError");
}

TEST(CliContract, MissingFileIsResourceErrorJson) {
  const CliResult result =
      run_cli("run --circuit /nonexistent/definitely_missing.xnl");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(error_code_of(result), "ResourceError");
}

// SynthError has no in-tree CLI trigger: every shipped benchmark satisfies
// CSC under both styles (verified by sweeping `cssg --style bd` over the
// full name list), so the synthesis-failure branch cannot be reached from
// the command line with checked-in inputs.  The frame shape for the code is
// covered here at the unit level so the printer's contract still holds the
// day a failing specification lands.
TEST(CliContract, SynthErrorFrameShapeIsWellFormed) {
  const std::string frame = xatpg::serve::error_frame(
      "", xatpg::Error{xatpg::ErrorCode::SynthError, "CSC violation"});
  const Value root = parse(frame);
  EXPECT_EQ(string_field(root, "type"), "error");
  EXPECT_EQ(string_field(*root.find("error"), "code"), "SynthError");
}

TEST(CliContract, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cli("run --no-such-flag").exit_code, 2);
  EXPECT_EQ(run_cli("frobnicate").exit_code, 2);
  // Transport selection for the daemon commands is a usage question too.
  EXPECT_EQ(run_cli("serve").exit_code, 2);
  EXPECT_EQ(run_cli("client --pipe").exit_code, 2);
}

}  // namespace
