// Perf-harness suite: corpus shape, record determinism, JSON round-trip,
// and the regression comparator the CI perf gate runs (xatpg bench-compare).
#include "perf/perf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/check.hpp"
#include "xatpg/session.hpp"

namespace xatpg::perf {
namespace {

CorpusEntry entry_by_id(const std::string& id) {
  for (CorpusEntry& entry : default_corpus())
    if (entry.id == id) return entry;
  ADD_FAILURE() << "corpus entry '" << id << "' not found";
  return {};
}

TEST(PerfCorpus, DefaultCorpusCoversAllFamilies) {
  const std::vector<CorpusEntry> corpus = default_corpus();
  std::set<std::string> ids;
  std::size_t si = 0, bd = 0, rand = 0, bench = 0;
  for (const CorpusEntry& entry : corpus) {
    EXPECT_TRUE(ids.insert(entry.id).second) << "duplicate id " << entry.id;
    switch (entry.kind) {
      case CorpusEntry::Kind::SiBenchmark: ++si; break;
      case CorpusEntry::Kind::BdBenchmark: ++bd; break;
      case CorpusEntry::Kind::RandomNetlist: ++rand; break;
      case CorpusEntry::Kind::BenchText: ++bench; break;
    }
  }
  // Full named corpus (both synthesis styles) + seeded families + .bench.
  EXPECT_EQ(si, 24u);
  EXPECT_EQ(bd, 9u);
  EXPECT_GE(rand, 4u);
  EXPECT_GE(bench, 3u);
}

TEST(PerfRun, RecordsAreDeterministicWhereTheGateLooks) {
  // Everything bench-compare gates on — coverage and node counts — must be
  // bit-identical across runs; only cpu_ms may differ.
  const CorpusEntry entry = entry_by_id("bench/parity5");
  const CircuitRecord a = run_entry(entry, AtpgOptions{});
  const CircuitRecord b = run_entry(entry, AtpgOptions{});
  EXPECT_EQ(a.faults_total, b.faults_total);
  EXPECT_EQ(a.faults_covered, b.faults_covered);
  EXPECT_EQ(a.sequences, b.sequences);
  EXPECT_EQ(a.peak_nodes, b.peak_nodes);
  EXPECT_EQ(a.live_nodes, b.live_nodes);
  EXPECT_EQ(a.post_sift_nodes, b.post_sift_nodes);
  EXPECT_EQ(a.cache_lookups, b.cache_lookups);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  // And the record is populated, not a pile of zeros.
  EXPECT_GT(a.faults_total, 0u);
  EXPECT_GT(a.faults_covered, 0u);
  EXPECT_GT(a.peak_nodes, 0u);
  EXPECT_GT(a.cache_lookups, a.cache_hits);
  EXPECT_GT(a.cache_hit_rate, 0.0);
  EXPECT_LE(a.post_sift_nodes, a.live_nodes);
  EXPECT_GT(a.cpu_ms, 0.0);
}

TEST(PerfRun, RandomFamilyEntryRunsThroughSessionFacade) {
  const CorpusEntry entry = entry_by_id("rand/s11");
  const CircuitRecord record = run_entry(entry, AtpgOptions{});
  EXPECT_GT(record.signals, entry.rand_inputs);
  EXPECT_GT(record.faults_total, 0u);
  EXPECT_GT(record.peak_nodes, 0u);
}

TEST(PerfRun, SessionFromBenchParsesAndRejects) {
  const CorpusEntry c17 = entry_by_id("bench/c17");
  const Expected<Session> ok = Session::from_bench(c17.text);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->num_inputs(), 5u);
  EXPECT_EQ(ok->num_outputs(), 2u);

  const Expected<Session> dff =
      Session::from_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n");
  ASSERT_FALSE(dff.has_value());
  EXPECT_EQ(dff.error().code, ErrorCode::ParseError);
}

TEST(PerfJson, RoundTripPreservesEveryGatedField) {
  std::vector<CorpusEntry> corpus{entry_by_id("bench/parity5"),
                                  entry_by_id("bench/c17")};
  const BenchRecord record =
      run_corpus(corpus, AtpgOptions{}, "unit-\"host\"\n");
  const BenchRecord parsed = parse_record(to_json(record));
  EXPECT_EQ(parsed.schema, record.schema);
  EXPECT_EQ(parsed.kernel, record.kernel);
  EXPECT_EQ(parsed.host, record.host);  // escaping round-trips
  EXPECT_EQ(parsed.threads, record.threads);
  ASSERT_EQ(parsed.circuits.size(), record.circuits.size());
  for (std::size_t i = 0; i < parsed.circuits.size(); ++i) {
    const CircuitRecord& a = record.circuits[i];
    const CircuitRecord& b = parsed.circuits[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.faults_total, b.faults_total);
    EXPECT_EQ(a.faults_covered, b.faults_covered);
    EXPECT_EQ(a.peak_nodes, b.peak_nodes);
    EXPECT_EQ(a.live_nodes, b.live_nodes);
    EXPECT_EQ(a.post_sift_nodes, b.post_sift_nodes);
    EXPECT_EQ(a.cache_lookups, b.cache_lookups);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_NEAR(a.cpu_ms, b.cpu_ms, 1e-3);
    EXPECT_NEAR(a.coverage, b.coverage, 1e-9);
  }
}

TEST(PerfJson, MalformedRecordsThrowLoudly) {
  EXPECT_THROW(parse_record(""), CheckError);
  EXPECT_THROW(parse_record("[]"), CheckError);
  EXPECT_THROW(parse_record("{\"schema\": 1}"), CheckError);  // no circuits
  EXPECT_THROW(parse_record("{\"circuits\": []}"), CheckError);  // no schema
  EXPECT_THROW(parse_record("{\"schema\": 1, \"circuits\": [{}]}"),
               CheckError);  // circuit without id
  EXPECT_THROW(parse_record("{\"schema\": 1, \"circuits\": [1]}"), CheckError);
  EXPECT_THROW(parse_record("{bad json"), CheckError);
  EXPECT_THROW(parse_record("{\"schema\": 1, \"circuits\": []} trailing"),
               CheckError);
}

// --- comparator ---------------------------------------------------------------

BenchRecord tiny_record() {
  BenchRecord record;
  record.host = "ci";
  record.threads = 1;
  CircuitRecord a;
  a.id = "si/alpha";
  a.faults_total = 20;
  a.faults_covered = 18;
  a.peak_nodes = 1000;
  a.cpu_ms = 100;
  CircuitRecord b;
  b.id = "bd/beta";
  b.faults_total = 30;
  b.faults_covered = 30;
  b.peak_nodes = 4000;
  b.cpu_ms = 10;  // below the per-circuit CPU floor
  record.circuits = {a, b};
  return record;
}

TEST(PerfCompare, IdenticalRecordsPass) {
  const BenchRecord record = tiny_record();
  const Comparison comparison = compare(record, record);
  EXPECT_TRUE(comparison.ok);
  EXPECT_TRUE(comparison.failures.empty());
}

TEST(PerfCompare, CoverageDropFails) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  current.circuits[0].faults_covered = 17;
  const Comparison comparison = compare(baseline, current);
  EXPECT_FALSE(comparison.ok);
  ASSERT_EQ(comparison.failures.size(), 1u);
  EXPECT_NE(comparison.failures[0].find("coverage dropped"),
            std::string::npos);
}

TEST(PerfCompare, CoverageGainIsANote) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  current.circuits[0].faults_covered = 20;
  const Comparison comparison = compare(baseline, current);
  EXPECT_TRUE(comparison.ok);
  EXPECT_FALSE(comparison.notes.empty());
}

TEST(PerfCompare, NodeRegressionBeyondBoundFails) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  current.circuits[0].peak_nodes = 1251;  // > 1000 * 1.25
  EXPECT_FALSE(compare(baseline, current).ok);
  current.circuits[0].peak_nodes = 1250;  // exactly at the bound: passes
  EXPECT_TRUE(compare(baseline, current).ok);
}

TEST(PerfCompare, CpuGatesOnlyFireOnMatchingHostTags) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  current.circuits[0].cpu_ms = 1000;  // 10x the baseline, above the floor
  EXPECT_FALSE(compare(baseline, current).ok);

  // Different host tag: CPU is not comparable; nodes/coverage still gate.
  current.host = "laptop";
  const Comparison skipped = compare(baseline, current);
  EXPECT_TRUE(skipped.ok);
  EXPECT_TRUE(std::any_of(
      skipped.notes.begin(), skipped.notes.end(), [](const std::string& n) {
        return n.find("CPU gates skipped") != std::string::npos;
      }));

  // Sub-floor circuits never CPU-gate even on the same host.
  BenchRecord slow_small = baseline;
  slow_small.circuits[1].cpu_ms = 24;  // 2.4x but baseline is 10 ms < floor
  EXPECT_TRUE(compare(baseline, slow_small).ok);
}

TEST(PerfCompare, MissingCircuitAndChangedUniverseFail) {
  const BenchRecord baseline = tiny_record();
  BenchRecord missing = baseline;
  missing.circuits.pop_back();
  EXPECT_FALSE(compare(baseline, missing).ok);

  BenchRecord changed = baseline;
  changed.circuits[0].faults_total = 22;
  const Comparison comparison = compare(baseline, changed);
  EXPECT_FALSE(comparison.ok);
  EXPECT_NE(comparison.failures[0].find("fault universe changed"),
            std::string::npos);
}

TEST(PerfCompare, NewCircuitsAreNotesNotFailures) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  CircuitRecord extra;
  extra.id = "bench/extra";
  extra.faults_total = 4;
  extra.faults_covered = 4;
  extra.peak_nodes = 10;
  current.circuits.push_back(extra);
  const Comparison comparison = compare(baseline, current);
  EXPECT_TRUE(comparison.ok);
  EXPECT_TRUE(std::any_of(
      comparison.notes.begin(), comparison.notes.end(),
      [](const std::string& n) {
        return n.find("bench/extra") != std::string::npos;
      }));
}

TEST(PerfCompare, TotalCpuGateCatchesDeathByAThousandCuts) {
  // Every circuit individually under the per-circuit radar (below floor or
  // under the bound), but the corpus total blows the budget.
  BenchRecord baseline = tiny_record();
  baseline.circuits[0].cpu_ms = 100;
  baseline.circuits[1].cpu_ms = 100;
  BenchRecord current = baseline;
  current.circuits[0].cpu_ms = 124;  // under 25% individually
  current.circuits[1].cpu_ms = 130;  // over, but paired with the other...
  const Comparison comparison = compare(baseline, current);
  // 254 vs 200 total = +27% > 25%: the total gate fires even though the
  // second circuit alone would also have fired — assert the total message
  // exists so the aggregate path is covered.
  EXPECT_FALSE(comparison.ok);
  EXPECT_TRUE(std::any_of(
      comparison.failures.begin(), comparison.failures.end(),
      [](const std::string& f) {
        return f.find("total CPU regressed") != std::string::npos;
      }));
}

}  // namespace
}  // namespace xatpg::perf
