// Perf-harness suite: corpus shape, record determinism, JSON round-trip,
// and the regression comparator the CI perf gate runs (xatpg bench-compare).
#include "perf/perf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/check.hpp"
#include "xatpg/progress.hpp"
#include "xatpg/session.hpp"

namespace xatpg::perf {
namespace {

CorpusEntry entry_by_id(const std::string& id) {
  for (CorpusEntry& entry : default_corpus())
    if (entry.id == id) return entry;
  ADD_FAILURE() << "corpus entry '" << id << "' not found";
  return {};
}

TEST(PerfCorpus, DefaultCorpusCoversAllFamilies) {
  const std::vector<CorpusEntry> corpus = default_corpus();
  std::set<std::string> ids;
  std::size_t si = 0, bd = 0, rand = 0, bench = 0;
  for (const CorpusEntry& entry : corpus) {
    EXPECT_TRUE(ids.insert(entry.id).second) << "duplicate id " << entry.id;
    switch (entry.kind) {
      case CorpusEntry::Kind::SiBenchmark: ++si; break;
      case CorpusEntry::Kind::BdBenchmark: ++bd; break;
      case CorpusEntry::Kind::RandomNetlist: ++rand; break;
      case CorpusEntry::Kind::BenchText: ++bench; break;
    }
  }
  // Full named corpus (both synthesis styles) + seeded families + .bench.
  EXPECT_EQ(si, 24u);
  EXPECT_EQ(bd, 9u);
  EXPECT_GE(rand, 4u);
  EXPECT_GE(bench, 3u);
}

TEST(PerfRun, RecordsAreDeterministicWhereTheGateLooks) {
  // Everything bench-compare gates on — coverage and node counts — must be
  // bit-identical across runs; only cpu_ms may differ.
  const CorpusEntry entry = entry_by_id("bench/parity5");
  const CircuitRecord a = run_entry(entry, AtpgOptions{});
  const CircuitRecord b = run_entry(entry, AtpgOptions{});
  EXPECT_EQ(a.faults_total, b.faults_total);
  EXPECT_EQ(a.faults_covered, b.faults_covered);
  EXPECT_EQ(a.sequences, b.sequences);
  EXPECT_EQ(a.peak_nodes, b.peak_nodes);
  EXPECT_EQ(a.live_nodes, b.live_nodes);
  EXPECT_EQ(a.post_sift_nodes, b.post_sift_nodes);
  EXPECT_EQ(a.cache_lookups, b.cache_lookups);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  // And the record is populated, not a pile of zeros.
  EXPECT_GT(a.faults_total, 0u);
  EXPECT_GT(a.faults_covered, 0u);
  EXPECT_GT(a.peak_nodes, 0u);
  EXPECT_GT(a.cache_lookups, a.cache_hits);
  EXPECT_GT(a.cache_hit_rate, 0.0);
  EXPECT_LE(a.post_sift_nodes, a.live_nodes);
  EXPECT_GT(a.cpu_ms, 0.0);
}

TEST(PerfRun, RandomFamilyEntryRunsThroughSessionFacade) {
  const CorpusEntry entry = entry_by_id("rand/s11");
  const CircuitRecord record = run_entry(entry, AtpgOptions{});
  EXPECT_GT(record.signals, entry.rand_inputs);
  EXPECT_GT(record.faults_total, 0u);
  EXPECT_GT(record.peak_nodes, 0u);
}

TEST(PerfRun, SessionFromBenchParsesAndRejects) {
  const CorpusEntry c17 = entry_by_id("bench/c17");
  const Expected<Session> ok = Session::from_bench(c17.text);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->num_inputs(), 5u);
  EXPECT_EQ(ok->num_outputs(), 2u);

  const Expected<Session> dff =
      Session::from_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n");
  ASSERT_FALSE(dff.has_value());
  EXPECT_EQ(dff.error().code, ErrorCode::ParseError);
}

TEST(PerfJson, RoundTripPreservesEveryGatedField) {
  std::vector<CorpusEntry> corpus{entry_by_id("bench/parity5"),
                                  entry_by_id("bench/c17")};
  const BenchRecord record =
      run_corpus(corpus, AtpgOptions{}, "unit-\"host\"\n");
  const BenchRecord parsed = parse_record(to_json(record));
  EXPECT_EQ(parsed.schema, record.schema);
  EXPECT_EQ(parsed.kernel, record.kernel);
  EXPECT_EQ(parsed.host, record.host);  // escaping round-trips
  EXPECT_EQ(parsed.threads, record.threads);
  ASSERT_EQ(parsed.circuits.size(), record.circuits.size());
  for (std::size_t i = 0; i < parsed.circuits.size(); ++i) {
    const CircuitRecord& a = record.circuits[i];
    const CircuitRecord& b = parsed.circuits[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.faults_total, b.faults_total);
    EXPECT_EQ(a.faults_covered, b.faults_covered);
    EXPECT_EQ(a.peak_nodes, b.peak_nodes);
    EXPECT_EQ(a.live_nodes, b.live_nodes);
    EXPECT_EQ(a.post_sift_nodes, b.post_sift_nodes);
    EXPECT_EQ(a.cache_lookups, b.cache_lookups);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_NEAR(a.cpu_ms, b.cpu_ms, 1e-3);
    EXPECT_NEAR(a.coverage, b.coverage, 1e-9);
  }
}

TEST(PerfJson, ServeSectionRoundTripsAndDefaultsWhenAbsent) {
  BenchRecord record;
  record.host = "ci";
  record.serve.requests = 120;
  record.serve.circuits = 24;
  record.serve.workers = 2;
  record.serve.cold_rps = 3.25;
  record.serve.cold_p50_ms = 10.5;
  record.serve.cold_p99_ms = 3200.75;
  record.serve.cached_rps = 12000.5;
  record.serve.cached_p50_ms = 0.078;
  record.serve.cached_p99_ms = 0.141;
  const BenchRecord parsed = parse_record(to_json(record));
  EXPECT_EQ(parsed.serve.requests, record.serve.requests);
  EXPECT_EQ(parsed.serve.circuits, record.serve.circuits);
  EXPECT_EQ(parsed.serve.workers, record.serve.workers);
  EXPECT_NEAR(parsed.serve.cold_rps, record.serve.cold_rps, 1e-9);
  EXPECT_NEAR(parsed.serve.cold_p50_ms, record.serve.cold_p50_ms, 1e-9);
  EXPECT_NEAR(parsed.serve.cold_p99_ms, record.serve.cold_p99_ms, 1e-9);
  EXPECT_NEAR(parsed.serve.cached_rps, record.serve.cached_rps, 1e-9);
  EXPECT_NEAR(parsed.serve.cached_p50_ms, record.serve.cached_p50_ms, 1e-9);
  EXPECT_NEAR(parsed.serve.cached_p99_ms, record.serve.cached_p99_ms, 1e-9);

  // A record without a serve bench emits no "serve" key at all, and
  // pre-schema-4 records parse with the section defaulted to absent.
  BenchRecord plain;
  plain.host = "ci";
  EXPECT_EQ(to_json(plain).find("\"serve\""), std::string::npos);
  EXPECT_EQ(parse_record(to_json(plain)).serve.requests, 0u);
}

TEST(PerfRun, ServeBenchMeasuresColdThenCachedThroughTheDaemon) {
  // One tiny circuit, one repeat pass: 2 requests end to end through a real
  // in-process daemon.  run_serve_bench itself throws CheckError if the
  // cold request hits the cache or the repeat request misses it.
  const std::vector<CorpusEntry> corpus{entry_by_id("bench/c17")};
  const ServeRecord serve =
      run_serve_bench(corpus, AtpgOptions{}, /*cached_repeats=*/1);
  EXPECT_EQ(serve.requests, 2u);
  EXPECT_EQ(serve.circuits, 1u);
  EXPECT_GT(serve.cold_p50_ms, 0.0);
  EXPECT_GT(serve.cached_p50_ms, 0.0);
  EXPECT_GT(serve.cold_rps, 0.0);
  EXPECT_GT(serve.cached_rps, 0.0);
  // The cache hit does no engine work; even on a noisy host it must be far
  // faster than the cold run that built the result.
  EXPECT_LT(serve.cached_p50_ms, serve.cold_p50_ms);
}

TEST(PerfJson, MalformedRecordsThrowLoudly) {
  EXPECT_THROW(parse_record(""), CheckError);
  EXPECT_THROW(parse_record("[]"), CheckError);
  EXPECT_THROW(parse_record("{\"schema\": 1}"), CheckError);  // no circuits
  EXPECT_THROW(parse_record("{\"circuits\": []}"), CheckError);  // no schema
  EXPECT_THROW(parse_record("{\"schema\": 1, \"circuits\": [{}]}"),
               CheckError);  // circuit without id
  EXPECT_THROW(parse_record("{\"schema\": 1, \"circuits\": [1]}"), CheckError);
  EXPECT_THROW(parse_record("{bad json"), CheckError);
  EXPECT_THROW(parse_record("{\"schema\": 1, \"circuits\": []} trailing"),
               CheckError);
}

// --- comparator ---------------------------------------------------------------

BenchRecord tiny_record() {
  BenchRecord record;
  record.host = "ci";
  record.threads = 1;
  CircuitRecord a;
  a.id = "si/alpha";
  a.faults_total = 20;
  a.faults_covered = 18;
  a.peak_nodes = 1000;
  a.cpu_ms = 100;
  CircuitRecord b;
  b.id = "bd/beta";
  b.faults_total = 30;
  b.faults_covered = 30;
  b.peak_nodes = 4000;
  b.cpu_ms = 10;  // below the per-circuit CPU floor
  record.circuits = {a, b};
  return record;
}

TEST(PerfCompare, IdenticalRecordsPass) {
  const BenchRecord record = tiny_record();
  const Comparison comparison = compare(record, record);
  EXPECT_TRUE(comparison.ok);
  EXPECT_TRUE(comparison.failures.empty());
}

TEST(PerfCompare, CoverageDropFails) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  current.circuits[0].faults_covered = 17;
  const Comparison comparison = compare(baseline, current);
  EXPECT_FALSE(comparison.ok);
  ASSERT_EQ(comparison.failures.size(), 1u);
  EXPECT_NE(comparison.failures[0].find("coverage dropped"),
            std::string::npos);
}

TEST(PerfCompare, CoverageGainIsANote) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  current.circuits[0].faults_covered = 20;
  const Comparison comparison = compare(baseline, current);
  EXPECT_TRUE(comparison.ok);
  EXPECT_FALSE(comparison.notes.empty());
}

TEST(PerfCompare, NodeRegressionBeyondBoundFails) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  current.circuits[0].peak_nodes = 1251;  // > 1000 * 1.25
  EXPECT_FALSE(compare(baseline, current).ok);
  current.circuits[0].peak_nodes = 1250;  // exactly at the bound: passes
  EXPECT_TRUE(compare(baseline, current).ok);
}

TEST(PerfCompare, CpuGatesOnlyFireOnMatchingHostTags) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  current.circuits[0].cpu_ms = 1000;  // 10x the baseline, above the floor
  EXPECT_FALSE(compare(baseline, current).ok);

  // Different host tag: CPU is not comparable; nodes/coverage still gate.
  current.host = "laptop";
  const Comparison skipped = compare(baseline, current);
  EXPECT_TRUE(skipped.ok);
  EXPECT_TRUE(std::any_of(
      skipped.notes.begin(), skipped.notes.end(), [](const std::string& n) {
        return n.find("CPU gates skipped") != std::string::npos;
      }));

  // Sub-floor circuits never CPU-gate even on the same host.
  BenchRecord slow_small = baseline;
  slow_small.circuits[1].cpu_ms = 24;  // 2.4x but baseline is 10 ms < floor
  EXPECT_TRUE(compare(baseline, slow_small).ok);
}

TEST(PerfCompare, MissingCircuitAndChangedUniverseFail) {
  const BenchRecord baseline = tiny_record();
  BenchRecord missing = baseline;
  missing.circuits.pop_back();
  EXPECT_FALSE(compare(baseline, missing).ok);

  BenchRecord changed = baseline;
  changed.circuits[0].faults_total = 22;
  const Comparison comparison = compare(baseline, changed);
  EXPECT_FALSE(comparison.ok);
  EXPECT_NE(comparison.failures[0].find("fault universe changed"),
            std::string::npos);
}

TEST(PerfCompare, NewCircuitsAreNotesNotFailures) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  CircuitRecord extra;
  extra.id = "bench/extra";
  extra.faults_total = 4;
  extra.faults_covered = 4;
  extra.peak_nodes = 10;
  current.circuits.push_back(extra);
  const Comparison comparison = compare(baseline, current);
  EXPECT_TRUE(comparison.ok);
  EXPECT_TRUE(std::any_of(
      comparison.notes.begin(), comparison.notes.end(),
      [](const std::string& n) {
        return n.find("bench/extra") != std::string::npos;
      }));
}

TEST(PerfCompare, TotalCpuGateCatchesDeathByAThousandCuts) {
  // Every circuit individually under the per-circuit radar (below floor or
  // under the bound), but the corpus total blows the budget.
  BenchRecord baseline = tiny_record();
  baseline.circuits[0].cpu_ms = 100;
  baseline.circuits[1].cpu_ms = 100;
  BenchRecord current = baseline;
  current.circuits[0].cpu_ms = 124;  // under 25% individually
  current.circuits[1].cpu_ms = 130;  // over, but paired with the other...
  const Comparison comparison = compare(baseline, current);
  // 254 vs 200 total = +27% > 25%: the total gate fires even though the
  // second circuit alone would also have fired — assert the total message
  // exists so the aggregate path is covered.
  EXPECT_FALSE(comparison.ok);
  EXPECT_TRUE(std::any_of(
      comparison.failures.begin(), comparison.failures.end(),
      [](const std::string& f) {
        return f.find("total CPU regressed") != std::string::npos;
      }));
}

// --- schema 2: gave_up, host_cores, threads sweep ----------------------------

TEST(PerfJson, Schema2FieldsRoundTrip) {
  BenchRecord record = tiny_record();
  record.host_cores = 8;
  record.circuits[0].gave_up = 3;
  record.sweep = {{1, 400.0, 1.0, 1.0}, {4, 110.0, 3.6, 0.9}};
  const BenchRecord parsed = parse_record(to_json(record));
  EXPECT_EQ(parsed.host_cores, 8u);
  EXPECT_EQ(parsed.circuits[0].gave_up, 3u);
  EXPECT_EQ(parsed.total_gave_up(), 3u);
  ASSERT_EQ(parsed.sweep.size(), 2u);
  EXPECT_EQ(parsed.sweep[1].threads, 4u);
  EXPECT_NEAR(parsed.sweep[1].cpu_ms, 110.0, 1e-3);
  EXPECT_NEAR(parsed.sweep[1].speedup, 3.6, 1e-6);
  EXPECT_NEAR(parsed.sweep[1].efficiency, 0.9, 1e-6);
}

TEST(PerfJson, Schema1RecordsParseWithDefaults) {
  // A record written before schema 2 has no host_cores / gave_up / sweep;
  // the parser must default them instead of rejecting the baseline file.
  const std::string old_record =
      "{\"schema\": 1, \"kernel\": \"complement-edge\", \"host\": \"ci\",\n"
      " \"threads\": 1,\n"
      " \"circuits\": [{\"id\": \"si/alpha\", \"faults_total\": 5,\n"
      "                \"faults_covered\": 5, \"peak_nodes\": 10}]}";
  const BenchRecord parsed = parse_record(old_record);
  EXPECT_EQ(parsed.schema, 1);
  EXPECT_EQ(parsed.host_cores, 0u);
  EXPECT_TRUE(parsed.sweep.empty());
  ASSERT_EQ(parsed.circuits.size(), 1u);
  EXPECT_EQ(parsed.circuits[0].gave_up, 0u);
}

TEST(PerfCompare, GaveUpChangesAreNotesNotFailures) {
  const BenchRecord baseline = tiny_record();
  BenchRecord current = baseline;
  current.circuits[0].gave_up = 4;  // caps newly truncating searches
  const Comparison comparison = compare(baseline, current);
  EXPECT_TRUE(comparison.ok);
  EXPECT_TRUE(std::any_of(
      comparison.notes.begin(), comparison.notes.end(),
      [](const std::string& n) {
        return n.find("gave_up rose") != std::string::npos;
      }));
}

BenchRecord sweep_record(std::size_t host_cores) {
  BenchRecord record = tiny_record();
  record.host_cores = host_cores;
  record.sweep = {{1, 400.0, 1.0, 1.0},
                  {2, 210.0, 1.9, 0.95},
                  {4, 100.0, 4.0, 1.0}};
  return record;
}

TEST(PerfCompare, SpeedupRegressionBeyondBoundFails) {
  const BenchRecord baseline = sweep_record(/*host_cores=*/4);
  BenchRecord current = baseline;
  current.sweep[2].speedup = 2.9;  // < 4.0 * (1 - 0.25)
  const Comparison comparison = compare(baseline, current);
  EXPECT_FALSE(comparison.ok);
  EXPECT_TRUE(std::any_of(
      comparison.failures.begin(), comparison.failures.end(),
      [](const std::string& f) {
        return f.find("scaling at threads=4") != std::string::npos;
      }));
  // Exactly at the bound: passes (same convention as the node gate).
  current.sweep[2].speedup = 3.0;
  EXPECT_TRUE(compare(baseline, current).ok);
}

TEST(PerfCompare, ScalingGatesSkipAcrossHostClasses) {
  const auto skipped_note = [](const Comparison& c) {
    return std::any_of(c.notes.begin(), c.notes.end(),
                       [](const std::string& n) {
                         return n.find("scaling gates skipped") !=
                                std::string::npos;
                       });
  };
  // Same tag, different core counts: curves are not comparable.
  const BenchRecord base4 = sweep_record(4);
  BenchRecord cur8 = sweep_record(8);
  cur8.sweep[2].speedup = 1.0;  // would fail if gated
  Comparison comparison = compare(base4, cur8);
  EXPECT_TRUE(comparison.ok);
  EXPECT_TRUE(skipped_note(comparison));

  // Single-core host: no parallelism signal, never gates.
  const BenchRecord base1 = sweep_record(1);
  BenchRecord cur1 = sweep_record(1);
  cur1.sweep[2].speedup = 0.5;
  comparison = compare(base1, cur1);
  EXPECT_TRUE(comparison.ok);
  EXPECT_TRUE(skipped_note(comparison));

  // Different host tag: skipped like the CPU gates.
  BenchRecord other_host = sweep_record(4);
  other_host.host = "laptop";
  other_host.sweep[2].speedup = 0.5;
  comparison = compare(base4, other_host);
  EXPECT_TRUE(comparison.ok);
  EXPECT_TRUE(skipped_note(comparison));
}

TEST(PerfRun, ReordersCountSurvivesIntoTheRecord) {
  // Regression lock for the wiring bug where `reorders` was read from shard
  // 0 *before* the explicit sift pass and stayed 0 forever: with sifting
  // armed, the recorded count must be nonzero (the explicit post-run sift
  // alone performs at least one pass).
  const CorpusEntry entry = entry_by_id("bench/parity5");
  AtpgOptions options;
  options.reorder.enabled = true;
  options.reorder.trigger_nodes = 64;  // small enough to trip mid-run
  const CircuitRecord record = run_entry(entry, options);
  EXPECT_GT(record.reorders, 0u);
}

TEST(PerfSweep, RecordsCurveAndCrossChecksDeterminism) {
  const std::vector<CorpusEntry> corpus{entry_by_id("bench/c17")};
  AtpgOptions options;
  const BenchRecord record = run_sweep(corpus, options, "unit", {1, 2});
  EXPECT_GT(record.host_cores, 0u);
  ASSERT_EQ(record.circuits.size(), 1u);
  ASSERT_EQ(record.sweep.size(), 2u);
  EXPECT_EQ(record.sweep[0].threads, 1u);
  EXPECT_EQ(record.sweep[1].threads, 2u);
  EXPECT_NEAR(record.sweep[0].speedup, 1.0, 1e-9);
  EXPECT_NEAR(record.sweep[0].efficiency, 1.0, 1e-9);
  EXPECT_GT(record.sweep[1].speedup, 0.0);
  EXPECT_NEAR(record.sweep[1].efficiency, record.sweep[1].speedup / 2.0,
              1e-9);
  // The record's circuits come from the threads=1 point.
  EXPECT_EQ(record.threads, 1u);
}

TEST(PerfJson, Schema3FieldsRoundTrip) {
  BenchRecord record = tiny_record();
  record.circuits[0].base_nodes = 5000;
  record.circuits[0].delta_peak = 700;
  record.circuits[0].peak_resident_nodes = 7100;  // base + 3 shards' deltas
  record.sweep = {{1, 400.0, 1.0, 1.0, 5700},
                  {4, 100.0, 4.0, 1.0, 7100}};
  const BenchRecord parsed = parse_record(to_json(record));
  EXPECT_EQ(parsed.schema, kSchemaVersion);
  ASSERT_EQ(parsed.circuits.size(), 2u);
  EXPECT_EQ(parsed.circuits[0].base_nodes, 5000u);
  EXPECT_EQ(parsed.circuits[0].delta_peak, 700u);
  EXPECT_EQ(parsed.circuits[0].peak_resident_nodes, 7100u);
  EXPECT_EQ(parsed.circuits[1].base_nodes, 0u);  // defaults survive
  ASSERT_EQ(parsed.sweep.size(), 2u);
  EXPECT_EQ(parsed.sweep[0].peak_resident_nodes, 5700u);
  EXPECT_EQ(parsed.sweep[1].peak_resident_nodes, 7100u);
  // Schema-1/2 records (no such keys) parse with zeroed defaults.
  const BenchRecord old = parse_record(
      "{\"schema\": 2, \"circuits\": [{\"id\": \"x\"}],"
      " \"sweep\": [{\"threads\": 4, \"cpu_ms\": 10}]}");
  EXPECT_EQ(old.circuits[0].peak_resident_nodes, 0u);
  EXPECT_EQ(old.sweep[0].peak_resident_nodes, 0u);
}

TEST(PerfJson, DoublesRoundTripBitExactly) {
  // max_digits10 formatting: parse(emit(x)) == x, not merely "close".
  BenchRecord record = tiny_record();
  record.circuits[0].coverage = 1.0 / 3.0;
  record.circuits[0].cpu_ms = 0.1 + 0.2;  // 0.30000000000000004
  record.circuits[0].cache_hit_rate = 0.7234567890123456;
  record.circuits[0].unique_load = 1e-17;
  record.sweep = {{1, 400.125, 1.0, 1.0, 10},
                  {2, 201.0, 1.9900497512437811, 0.99502487562189056, 12}};
  const BenchRecord parsed = parse_record(to_json(record));
  EXPECT_EQ(parsed.circuits[0].coverage, record.circuits[0].coverage);
  EXPECT_EQ(parsed.circuits[0].cpu_ms, record.circuits[0].cpu_ms);
  EXPECT_EQ(parsed.circuits[0].cache_hit_rate,
            record.circuits[0].cache_hit_rate);
  EXPECT_EQ(parsed.circuits[0].unique_load, record.circuits[0].unique_load);
  ASSERT_EQ(parsed.sweep.size(), 2u);
  EXPECT_EQ(parsed.sweep[1].speedup, record.sweep[1].speedup);
  EXPECT_EQ(parsed.sweep[1].efficiency, record.sweep[1].efficiency);
  // And the emitted text is a fixed point: emit(parse(emit(x))) == emit(x).
  EXPECT_EQ(to_json(parsed), to_json(record));
}

TEST(PerfJson, NonFiniteDoublesClampToValidJson) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(json_double(kNan), "0");
  EXPECT_EQ(json_double(kInf), "0");
  EXPECT_EQ(json_double(-kInf), "0");
  EXPECT_EQ(json_double(0.25), "0.25");

  // A poisoned record must still emit parseable JSON (operator<< would have
  // written the invalid tokens `nan` / `inf`).
  BenchRecord record = tiny_record();
  record.circuits[0].cache_hit_rate = kNan;
  record.circuits[0].coverage = kInf;
  record.sweep = {{1, 400.0, kInf, kNan, 10}};
  const std::string text = to_json(record);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  const BenchRecord parsed = parse_record(text);
  EXPECT_EQ(parsed.circuits[0].cache_hit_rate, 0.0);
  EXPECT_EQ(parsed.circuits[0].coverage, 0.0);
  EXPECT_EQ(parsed.sweep[0].speedup, 0.0);
  EXPECT_EQ(parsed.sweep[0].efficiency, 0.0);
}

TEST(PerfGuards, SafeRatioGuardsZeroDenominators) {
  EXPECT_EQ(safe_ratio(1.0, 0.0), 0.0);
  EXPECT_EQ(safe_ratio(0.0, 0.0), 0.0);
  EXPECT_EQ(safe_ratio(-3.0, 0.0), 0.0);
  EXPECT_EQ(safe_ratio(3.0, 4.0), 0.75);
  // Non-finite quotients clamp even with a nonzero denominator.
  EXPECT_EQ(safe_ratio(std::numeric_limits<double>::infinity(), 2.0), 0.0);
  EXPECT_EQ(safe_ratio(std::numeric_limits<double>::quiet_NaN(), 2.0), 0.0);
}

TEST(PerfGuards, CacheHitRateGuardsZeroLookups) {
  ShardBddStats stats;  // a shard that never issued a cache lookup
  EXPECT_EQ(stats.cache_lookups, 0u);
  EXPECT_EQ(stats.cache_hit_rate(), 0.0);
  stats.cache_lookups = 8;
  stats.cache_hits = 2;
  EXPECT_EQ(stats.cache_hit_rate(), 0.25);
}

TEST(PerfCompare, MemoryGateLocksInTheResidentWin) {
  // The gate is self-contained within the current record's sweep: resident
  // peak at T >= 4 threads must stay under 0.6 x T x the threads=1 point.
  BenchRecord current = sweep_record(/*host_cores=*/8);
  current.sweep[0].peak_resident_nodes = 1000;  // threads=1 footprint
  current.sweep[1].peak_resident_nodes = 1100;  // threads=2: below the gate
  current.sweep[2].peak_resident_nodes = 2400;  // threads=4: == 0.6 * 4 * 1000
  const BenchRecord baseline = current;
  EXPECT_TRUE(compare(baseline, current).ok) << "exactly at the bound passes";

  current.sweep[2].peak_resident_nodes = 2401;  // one node over the bound
  const Comparison over = compare(baseline, current);
  EXPECT_FALSE(over.ok);
  EXPECT_TRUE(std::any_of(over.failures.begin(), over.failures.end(),
                          [](const std::string& f) {
                            return f.find("memory at threads=4") !=
                                   std::string::npos;
                          }));
}

TEST(PerfCompare, MemoryGateSkipsPreSchema3Sweeps) {
  // sweep_record() leaves peak_resident_nodes zeroed, like a parsed
  // schema-2 record: the gate must skip with a note, never fail.
  const BenchRecord record = sweep_record(/*host_cores=*/4);
  const Comparison comparison = compare(record, record);
  EXPECT_TRUE(comparison.ok);
  EXPECT_TRUE(std::any_of(
      comparison.notes.begin(), comparison.notes.end(),
      [](const std::string& n) {
        return n.find("memory gates skipped") != std::string::npos;
      }));
}

TEST(PerfRun, Schema3MemoryFieldsArePopulatedAndComposed) {
  const CorpusEntry entry = entry_by_id("bench/c17");
  const CircuitRecord record = run_entry(entry, AtpgOptions{});
  EXPECT_GT(record.base_nodes, 0u)
      << "the frozen shared arena holds the encoding + CSSG substrate";
  EXPECT_EQ(record.peak_nodes, record.base_nodes + record.delta_peak)
      << "shard 0's resident watermark = base + its delta peak";
  EXPECT_GE(record.peak_resident_nodes, record.peak_nodes)
      << "corpus resident = base once + every shard's delta peak";
  EXPECT_GE(record.live_nodes, record.base_nodes)
      << "base nodes are permanently live";
}

}  // namespace
}  // namespace xatpg::perf
