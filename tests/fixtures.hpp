// Shared test rig: the tiny canonical circuits every suite exercises, plus a
// seeded random-netlist generator and a seeded random-BDD builder.
//
// Keeping these in one header stops the suites from hand-rolling their own
// copies of the Figure 1 circuits (which silently drifted apart in early
// drafts) and gives the golden-value regression tests a single definition of
// "the fixture circuits" to lock statistics against.
#pragma once

#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "benchmarks/benchmarks.hpp"
#include "netlist/netlist.hpp"
#include "netlist/random_netlist.hpp"
#include "sim/ternary.hpp"
#include "stg/stg.hpp"
#include "synth/synth.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace xatpg::fixtures {

/// A netlist paired with a stable reset state — what nearly every simulation,
/// CSSG and ATPG test needs as its starting point.
struct Circuit {
  Netlist netlist;
  std::vector<bool> reset;
};

// --- canonical .xnl sources (exposed for parser/writer round-trip tests) -----

/// Figure 1(a): non-confluence.  From the stable state (A=0,B=1), applying
/// AB=10 races a rising `a` against a falling `b`; the pulse on c may or may
/// not latch y.
inline constexpr const char* kFig1aXnl = R"(
.model fig1a
.inputs A B
.outputs y
.gate BUF a A
.gate BUF b B
.gate AND c a b
.gate OR  y c y
.end
)";

/// Figure 1(b): oscillation.  With B=0, raising A makes the NAND/OR ring
/// unstable (c-, d-, c+, d+ repeats); B=1 breaks the ring.
inline constexpr const char* kFig1bXnl = R"(
.model fig1b
.inputs A B
.outputs d
.gate BUF a A
.gate BUF b B
.gate NAND c a d
.gate OR d c b
.end
)";

/// A hazard-free combinational circuit: two cascaded inverters.
inline constexpr const char* kChainXnl = R"(
.model chain
.inputs A
.outputs y
.gate NOT n A
.gate NOT y n
.end
)";

/// A single Muller C-element: all-1 sets q, all-0 resets q, otherwise holds.
inline constexpr const char* kCelemXnl = R"(
.model celem
.inputs A B
.outputs q
.gate C q A B
.end
)";

/// An asynchronous transparent latch as a generalized C-element: when the
/// enable C is high q follows D (set = D C, reset = D' C); when C is low q
/// holds its value.
inline constexpr const char* kLatchXnl = R"(
.model latch
.inputs D C
.outputs q
.gc q : D C : 11 : 01
.end
)";

// --- fixture circuits ---------------------------------------------------------

/// Parse a canonical source and settle the all-false state into a stable
/// reset state.  Used by chain/celem/async_latch, whose canonical reset is
/// the all-false settlement; fig1a/fig1b instead go through
/// fig1a_circuit()/fig1b_circuit() because the paper's initial states
/// (A=0,B=1 for fig1a; the quiet c=d=1 ring for fig1b) are NOT what
/// settling all-false produces.
inline Circuit from_xnl(const char* text) {
  Circuit c{parse_xnl_string(text), {}};
  c.reset.assign(c.netlist.num_signals(), false);
  XATPG_CHECK_MSG(settle_to_stable(c.netlist, c.reset),
                  "fixture circuit does not settle from the all-false state");
  return c;
}

/// Figure 1(a) with the paper's initial stable state (A=0, B=1).
inline Circuit fig1a() {
  Circuit c;
  c.netlist = fig1a_circuit(&c.reset);
  return c;
}

/// Figure 1(b) with its initial stable state (A=B=0, ring quiet).
inline Circuit fig1b() {
  Circuit c;
  c.netlist = fig1b_circuit(&c.reset);
  return c;
}

/// Two cascaded inverters, reset at A=0 (n=1, y=0).
inline Circuit chain() { return from_xnl(kChainXnl); }

/// Muller C-element, reset with both inputs and the output low.
inline Circuit celem() { return from_xnl(kCelemXnl); }

/// Asynchronous transparent latch, reset opaque with q=0.
inline Circuit async_latch() { return from_xnl(kLatchXnl); }

/// Two-stage decoupled pipeline controller: the `pipe2` STG template
/// synthesized as speed-independent gC logic, with its quiescent reset state.
inline Circuit pipeline2() {
  const StateGraph sg = expand_stg(make_pipeline2("pipe2"));
  SynthResult synth = synthesize(sg);
  return Circuit{std::move(synth.netlist), std::move(synth.reset_state)};
}

// --- seeded random-netlist generator -----------------------------------------

// The generator itself is a library facility now (src/netlist/
// random_netlist.hpp) so the perf-corpus harness can run seeded families;
// this wrapper keeps the fixture Circuit shape the suites consume.  The
// seed-7 shape stays locked by GeneratorGolden in test_golden.cpp.
using xatpg::RandomNetlistOptions;

inline Circuit random_netlist(std::uint64_t seed,
                              const RandomNetlistOptions& options = {}) {
  Circuit c;
  c.netlist = xatpg::random_netlist(seed, options, &c.reset);
  return c;
}

// --- seeded random BDD functions ---------------------------------------------

/// Random function over mgr's first `num_vars` variables: a depth-`depth`
/// balanced tree of and/or/xor over random literals.  Shared by the BDD
/// algebra sweeps in test_bdd and test_properties.
inline Bdd random_bdd(BddManager& mgr, Rng& rng, int depth,
                      std::uint32_t num_vars) {
  if (depth == 0)
    return rng.flip() ? mgr.var(rng.below(num_vars))
                      : !mgr.var(rng.below(num_vars));
  const Bdd a = random_bdd(mgr, rng, depth - 1, num_vars);
  const Bdd b = random_bdd(mgr, rng, depth - 1, num_vars);
  switch (rng.below(3)) {
    case 0: return a & b;
    case 1: return a | b;
    default: return a ^ b;
  }
}

/// The C-element STG specification used by the STG and synthesis suites:
/// (r0+ || r1+) -> a+ -> (r0- || r1-) -> a- -> repeat.
inline Stg celem_stg() {
  Stg stg("celem");
  const auto r0 = stg.add_signal("r0", SignalKind::Input, false);
  const auto r1 = stg.add_signal("r1", SignalKind::Input, false);
  const auto a = stg.add_signal("a", SignalKind::Output, false);
  const auto r0p = stg.add_transition(r0, true);
  const auto r0m = stg.add_transition(r0, false);
  const auto r1p = stg.add_transition(r1, true);
  const auto r1m = stg.add_transition(r1, false);
  const auto ap = stg.add_transition(a, true);
  const auto am = stg.add_transition(a, false);
  stg.arc(r0p, ap);
  stg.arc(r1p, ap);
  stg.arc(ap, r0m);
  stg.arc(ap, r1m);
  stg.arc(r0m, am);
  stg.arc(r1m, am);
  stg.arc(am, r0p, 1);
  stg.arc(am, r1p, 1);
  return stg;
}

}  // namespace xatpg::fixtures
