// In-process client/server integration suite for the serve subsystem
// (src/serve): every test builds a real Server, connects real byte streams
// to it over socketpairs, and speaks the NDJSON protocol end to end —
// admission, worker execution, progress streaming, the cross-request result
// cache, cancellation by disconnect, and graceful shutdown.  Runs under the
// TSan CI job: readers, workers and test clients genuinely race here.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "xatpg/session.hpp"

namespace {

using namespace xatpg;
using json::Value;
using std::chrono::steady_clock;

// --- wire helpers -----------------------------------------------------------

/// One test client endpoint over a socketpair half.
class Client {
 public:
  explicit Client(int fd) : fd_(fd) {}
  Client(Client&& other) noexcept : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  Client(const Client&) = delete;
  ~Client() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      ASSERT_GT(n, 0) << "client write failed";
      off += static_cast<std::size_t>(n);
    }
  }

  /// Next newline-terminated frame, or nullopt on EOF / timeout.
  std::optional<std::string> next_line(int timeout_ms = 60000) {
    const auto deadline =
        steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - steady_clock::now());
      if (left.count() <= 0) return std::nullopt;
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready <= 0) {
        if (ready < 0 && errno == EINTR) continue;
        return std::nullopt;  // timeout
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;  // EOF
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Next frame parsed, with its type checked against `want`; skips
  /// progress frames when `want` is something else (they interleave freely).
  Value expect_frame(const std::string& want) {
    while (true) {
      const std::optional<std::string> line = next_line();
      if (!line) {
        ADD_FAILURE() << "expected a '" << want << "' frame, got EOF/timeout";
        return {};
      }
      const Value frame = json::parse(*line);
      EXPECT_EQ(json::num_field(frame, "v", 0), serve::kProtocolVersion)
          << *line;
      const std::string type = json::string_field(frame, "type");
      if (type == "progress" && want != "progress") continue;
      EXPECT_EQ(type, want) << *line;
      return frame;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// A Server plus socketpair plumbing for connecting in-process clients.
class ServeFixture {
 public:
  explicit ServeFixture(serve::ServeConfig config) : server_(config) {
    server_.start();
  }

  Client connect() {
    int sv[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server_.attach(sv[0], sv[0], /*owns_fds=*/true);
    return Client(sv[1]);
  }

  serve::Server& server() { return server_; }

  /// Spin (cooperatively) until `pred` holds or the deadline passes.
  template <typename Pred>
  bool wait_until(Pred pred, int timeout_ms = 30000) {
    const auto deadline =
        steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
      if (steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
  }

 private:
  serve::Server server_;
};

std::string submit_benchmark(const std::string& id, const std::string& name,
                             const std::string& style = "si",
                             bool progress = false,
                             const std::string& options = "") {
  return "{\"op\":\"submit\",\"id\":\"" + id +
         "\",\"circuit\":{\"format\":\"benchmark\",\"name\":\"" + name +
         "\",\"style\":\"" + style + "\"},\"faults\":\"both\",\"progress\":" +
         (progress ? "true" : "false") +
         (options.empty() ? "" : ",\"options\":{" + options + "}") + "}\n";
}

std::string submit_bench_text(const std::string& id, const std::string& text) {
  return "{\"op\":\"submit\",\"id\":\"" + id +
         "\",\"circuit\":{\"format\":\"bench\",\"text\":\"" +
         json::escape(text) + "\"},\"faults\":\"both\"}\n";
}

/// The byte-exact result payload inside a result frame.  The payload is the
/// frame's final field, so it is the text between `"result":` and the
/// frame-closing brace.
std::string payload_of(const std::string& frame_line) {
  const std::string marker = "\"result\":";
  const std::size_t pos = frame_line.find(marker);
  if (pos == std::string::npos || frame_line.back() != '}') {
    ADD_FAILURE() << "no result payload in: " << frame_line;
    return {};
  }
  return frame_line.substr(pos + marker.size(),
                           frame_line.size() - 1 - (pos + marker.size()));
}

/// What a direct (no daemon) Session run serializes to for the same request
/// — the identity the daemon's responses are asserted against.
std::string direct_payload(Expected<Session> session_or_error) {
  EXPECT_TRUE(session_or_error.has_value());
  Session& session = session_or_error.value();
  std::vector<Fault> universe = session.input_stuck_faults();
  const auto output = session.output_stuck_faults();
  universe.insert(universe.end(), output.begin(), output.end());
  const auto result = session.run(universe);
  EXPECT_TRUE(result.has_value());
  return serve::serialize_result(session.circuit_name(), "both", *result);
}

const char* kSmallBench = R"(
INPUT(a)
INPUT(b)
OUTPUT(f)
n1 = NAND(a, b)
f = NOT(n1)
)";

// --- protocol basics --------------------------------------------------------

TEST(Serve, PingPongAndStatsCarryProtocolVersion) {
  ServeFixture fixture({});
  Client client = fixture.connect();
  client.send("{\"op\":\"ping\",\"id\":\"\"}\n");
  client.expect_frame("pong");
  client.send("{\"op\":\"stats\"}\n");
  const Value stats = client.expect_frame("stats");
  EXPECT_EQ(json::size_field(stats, "submitted"), 0u);
  const Value* cache = stats.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(json::size_field(*cache, "hits"), 0u);
}

TEST(Serve, MalformedAndUnknownRequestsGetTypedErrors) {
  ServeFixture fixture({});
  Client client = fixture.connect();

  client.send("this is not json\n");
  Value frame = client.expect_frame("error");
  EXPECT_EQ(json::string_field(*frame.find("error"), "code"), "ParseError");

  client.send("{\"op\":\"frobnicate\",\"id\":\"x\"}\n");
  frame = client.expect_frame("error");
  EXPECT_EQ(json::string_field(*frame.find("error"), "code"), "OptionError");

  // A typo'd option key is rejected, not silently defaulted.
  client.send(submit_benchmark("j1", "fig1a", "si", false, "\"threds\":2"));
  frame = client.expect_frame("error");
  EXPECT_EQ(json::string_field(*frame.find("error"), "code"), "OptionError");

  // Unknown benchmark names surface the Session factory's taxonomy.
  client.send(submit_benchmark("j2", "no_such_circuit"));
  frame = client.expect_frame("error");
  EXPECT_EQ(json::string_field(*frame.find("error"), "code"), "OptionError");
}

TEST(Serve, OversizedRequestLineIsResourceErrorAndCloses) {
  serve::ServeConfig config;
  config.max_request_bytes = 1024;
  ServeFixture fixture(config);
  Client client = fixture.connect();
  client.send(std::string(4096, 'x'));  // no newline: unframed flood
  const Value frame = client.expect_frame("error");
  EXPECT_EQ(json::string_field(*frame.find("error"), "code"), "ResourceError");
  EXPECT_FALSE(client.next_line(5000).has_value());  // connection closed
}

// --- correctness: daemon responses == direct Session runs -------------------

TEST(Serve, ResponsesByteIdenticalToDirectRuns) {
  ServeFixture fixture({});
  Client client = fixture.connect();

  client.send(submit_benchmark("named", "chu150"));
  client.expect_frame("ack");
  std::optional<std::string> line;
  for (line = client.next_line(); line; line = client.next_line()) {
    if (json::string_field(json::parse(*line), "type") == "result") break;
  }
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(payload_of(*line), direct_payload(Session::from_benchmark("chu150")));

  // A .bench-text circuit takes the canonicalization path: the daemon
  // re-emits the text as .xnl before running (so formatting variants of
  // one circuit share a cache entry), which deterministically renumbers
  // gates.  The response is byte-identical to a direct run on the
  // canonicalized text — PROTOCOL.md documents that fault sites in the
  // payload index the canonical circuit, not the submitted text.
  client.send(submit_bench_text("inline", kSmallBench));
  client.expect_frame("ack");
  for (line = client.next_line(); line; line = client.next_line()) {
    if (json::string_field(json::parse(*line), "type") == "result") break;
  }
  ASSERT_TRUE(line.has_value());
  Expected<Session> bench = Session::from_bench(kSmallBench);
  ASSERT_TRUE(bench.has_value());
  EXPECT_EQ(payload_of(*line),
            direct_payload(Session::from_xnl(bench->circuit_xnl())));
}

TEST(Serve, EightConcurrentClientsMixedCircuitsByteIdentical) {
  const std::vector<std::string> circuits = {
      "chu150", "fig1a",  "fig1b",     "ebergen",
      "nowick", "rpdft",  "rcv-setup", "chu150",
  };
  // Direct expectations first, one per unique circuit.
  std::vector<std::string> expected;
  expected.reserve(circuits.size());
  for (const std::string& name : circuits)
    expected.push_back(direct_payload(Session::from_benchmark(name)));

  serve::ServeConfig config;
  config.workers = 2;
  ServeFixture fixture(config);

  std::vector<Client> clients;
  clients.reserve(circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i)
    clients.push_back(fixture.connect());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    threads.emplace_back([&, i] {
      Client& client = clients[i];
      // Odd clients also stream progress, so progress frames race result
      // frames across connections while workers interleave.
      client.send(submit_benchmark("job-" + std::to_string(i), circuits[i],
                                   "si", i % 2 == 1));
      for (std::optional<std::string> line = client.next_line(); line;
           line = client.next_line()) {
        const std::string type = json::string_field(json::parse(*line), "type");
        if (type == "error" || type == "cancelled") {
          ++mismatches;
          return;
        }
        if (type == "result") {
          if (payload_of(*line) != expected[i]) ++mismatches;
          return;
        }
      }
      ++mismatches;  // EOF before a result
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const serve::ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.completed, circuits.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
}

// --- cross-request result cache ---------------------------------------------

TEST(Serve, RepeatRequestServedFromCacheTenTimesFaster) {
  ServeFixture fixture({});
  Client client = fixture.connect();

  client.send(submit_benchmark("cold", "mmu", "bd"));
  client.expect_frame("ack");
  std::optional<std::string> line;
  for (line = client.next_line(); line; line = client.next_line())
    if (json::string_field(json::parse(*line), "type") == "result") break;
  ASSERT_TRUE(line.has_value());
  const Value cold = json::parse(*line);
  EXPECT_FALSE(cold.find("cached")->boolean);
  const double cold_ms = json::num_field(cold, "engine_ms", 0);
  const std::string cold_payload = payload_of(*line);
  EXPECT_GT(cold_ms, 1.0);  // mmu/bd is a real run, tens of milliseconds

  client.send(submit_benchmark("hot", "mmu", "bd"));
  line = client.next_line();
  ASSERT_TRUE(line.has_value());
  const Value hot = json::parse(*line);
  EXPECT_EQ(json::string_field(hot, "type"), "result") << *line;
  EXPECT_TRUE(hot.find("cached")->boolean);
  // Byte-identical payload, and >= 10x lower engine time (a cache hit does
  // no engine work at all, so its engine_ms is identically zero).
  EXPECT_EQ(payload_of(*line), cold_payload);
  EXPECT_LE(json::num_field(hot, "engine_ms", 1e9), cold_ms / 10.0);

  const serve::ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.insertions, 1u);
}

TEST(Serve, CacheKeyIgnoresResultInvariantKnobs) {
  // threads does not change results (the determinism suites prove it), so
  // requests differing only in threads share one cache entry.
  ServeFixture fixture({});
  Client client = fixture.connect();
  client.send(submit_benchmark("t1", "fig1a", "si", false, "\"threads\":1"));
  client.expect_frame("ack");
  client.expect_frame("result");
  client.send(submit_benchmark("t2", "fig1a", "si", false, "\"threads\":2"));
  const Value hot = client.expect_frame("result");
  EXPECT_TRUE(hot.find("cached")->boolean);

  // A knob that DOES change results (the seed) must miss.
  client.send(submit_benchmark("t3", "fig1a", "si", false, "\"seed\":7"));
  client.expect_frame("ack");
  const Value other = client.expect_frame("result");
  EXPECT_FALSE(other.find("cached")->boolean);
}

TEST(Serve, CacheEvictsLruUnderByteCap) {
  serve::ResultCache cache(64);
  std::string out;
  cache.insert("a", std::string(20, 'x'));  // 21 bytes
  cache.insert("b", std::string(20, 'y'));  // 42 bytes
  EXPECT_TRUE(cache.lookup("a", out));      // refresh: b is now LRU
  cache.insert("c", std::string(20, 'z'));  // 63 bytes: fits
  cache.insert("d", std::string(20, 'w'));  // evicts b (LRU), then fits
  EXPECT_TRUE(cache.lookup("a", out));
  EXPECT_FALSE(cache.lookup("b", out));
  EXPECT_TRUE(cache.lookup("c", out));
  EXPECT_TRUE(cache.lookup("d", out));
  cache.insert("huge", std::string(100, 'h'));  // over the whole cap: refused
  EXPECT_FALSE(cache.lookup("huge", out));
  const serve::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, 64u);
}

// --- admission control ------------------------------------------------------

TEST(Serve, QueueFullSubmissionsGetTypedRejectionNotHang) {
  serve::ServeConfig config;
  config.workers = 0;  // nothing drains: queue occupancy is deterministic
  config.queue_capacity = 2;
  ServeFixture fixture(config);
  Client client = fixture.connect();

  client.send(submit_benchmark("q1", "fig1a"));
  client.send(submit_benchmark("q2", "fig1b"));
  client.send(submit_benchmark("q3", "chu150"));
  client.expect_frame("ack");
  client.expect_frame("ack");
  const Value rejection = client.expect_frame("error");
  EXPECT_EQ(json::string_field(rejection, "id"), "q3");
  const Value* error = rejection.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(json::string_field(*error, "code"), "ResourceError");
  EXPECT_NE(json::string_field(*error, "message").find("queue full"),
            std::string::npos);
  EXPECT_EQ(fixture.server().stats().rejected, 1u);

  // Shutdown cancels what was queued (never started) and says goodbye.
  fixture.server().shutdown();
  Value cancelled = client.expect_frame("cancelled");
  EXPECT_EQ(json::string_field(cancelled, "reason"), "shutdown");
  cancelled = client.expect_frame("cancelled");
  EXPECT_EQ(json::string_field(cancelled, "reason"), "shutdown");
  client.expect_frame("bye");
  EXPECT_EQ(fixture.server().stats().cancelled, 2u);
}

// --- cancellation by disconnect ---------------------------------------------

TEST(Serve, DisconnectMidRunCancelsOnlyThatJob) {
  serve::ServeConfig config;
  config.workers = 1;  // one worker: the victim job runs, the other queues
  ServeFixture fixture(config);

  Client victim = fixture.connect();
  Client bystander = fixture.connect();

  // vbe10b/bd is the corpus's long run — progress frames prove it is
  // genuinely mid-run before the disconnect.
  victim.send(submit_benchmark("victim", "vbe10b", "bd", /*progress=*/true));
  victim.expect_frame("ack");
  bystander.send(submit_benchmark("bystander", "chu150"));
  bystander.expect_frame("ack");

  victim.expect_frame("progress");
  victim.close();  // mid-run disconnect

  // The bystander's job is untouched: it runs next and completes.
  const Value result = bystander.expect_frame("result");
  EXPECT_EQ(json::string_field(result, "id"), "bystander");

  // The victim's job ended cancelled, observed via stats.
  EXPECT_TRUE(fixture.wait_until(
      [&] { return fixture.server().stats().cancelled == 1; }))
      << "victim job was not cancelled";
  const serve::ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(fixture.wait_until([&] { return fixture.server().drained(); }));
}

// --- graceful shutdown ------------------------------------------------------

TEST(Serve, ShutdownRequestDrainsInFlightAndSaysBye) {
  serve::ServeConfig config;
  config.workers = 1;
  ServeFixture fixture(config);
  Client client = fixture.connect();

  client.send(submit_benchmark("last", "fig1a"));
  client.expect_frame("ack");
  client.expect_frame("result");  // in-flight work drains to completion
  client.send("{\"op\":\"shutdown\"}\n");
  fixture.server().shutdown();
  client.expect_frame("bye");
  EXPECT_FALSE(client.next_line(5000).has_value());  // EOF after bye
  EXPECT_TRUE(fixture.server().drained());
}

// --- Session concurrency contract (satellite: one session per job) ----------

TEST(SessionContract, ReentrantRunThrowsCheckError) {
  Expected<Session> session = Session::from_benchmark("fig1a");
  ASSERT_TRUE(session.has_value());

  struct ReentrantObserver : RunObserver {
    Session* session = nullptr;
    bool threw = false;
    void poke() {
      if (threw) return;
      try {
        (void)session->run({});
      } catch (const CheckError&) {
        threw = true;
      }
    }
    void on_progress(const RunProgress&) override { poke(); }
    void on_fault_resolved(std::size_t, const FaultOutcome&) override {
      poke();
    }
  } observer;
  observer.session = &session.value();

  // The outer run must stay healthy: the violation is reported to the
  // offending caller (the observer), not smuggled into the outer result.
  const auto result =
      session->run(session->input_stuck_faults(), &observer);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->cancelled);
  EXPECT_TRUE(observer.threw)
      << "reentrant Session::run did not throw CheckError";

  // And the Session still works after the rejected reentrant call.
  const auto again = session->run(session->input_stuck_faults());
  ASSERT_TRUE(again.has_value());
}

}  // namespace
