#include "baseline/baseline.hpp"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "fixtures.hpp"
#include "sim/explicit.hpp"

namespace xatpg {
namespace {

TEST(VffModelTest, CutsMakeCombinational) {
  std::vector<bool> reset;
  const Netlist n = fig1b_circuit(&reset);
  const VffModel model(n);
  EXPECT_GT(model.num_state_bits(), 0u);
  // Evaluation from the reset state's bits reproduces the reset signals.
  const auto bits = model.state_bits_of(reset);
  std::vector<bool> inputs;
  for (const SignalId in : n.inputs()) inputs.push_back(reset[in]);
  const auto vals = model.eval(inputs, bits);
  for (SignalId s = 0; s < n.num_signals(); ++s)
    EXPECT_EQ(vals[s], reset[s]) << n.signal_name(s);
}

TEST(VffModelTest, StateHoldingGatesGetBits) {
  auto synth = benchmark_circuit("rpdft", SynthStyle::SpeedIndependent);
  const VffModel model(synth.netlist);
  // The gC gate has implicit own-value state: at least one state bit.
  EXPECT_GE(model.num_state_bits(), 1u);
}

TEST(UnitDelay, SettlesCombinationalChain) {
  const fixtures::Circuit fix = fixtures::chain();
  const Netlist& n = fix.netlist;
  const auto settled = unit_delay_settle(n, fix.reset, {true});
  ASSERT_TRUE(settled.has_value());
  EXPECT_TRUE((*settled)[n.signal("y")]);
}

TEST(UnitDelay, ReportsOscillation) {
  std::vector<bool> reset;
  const Netlist n = fig1b_circuit(&reset);
  // A+ with B=0: the NAND/OR ring oscillates under unit delay too.
  EXPECT_FALSE(unit_delay_settle(n, reset, {true, false}).has_value());
}

TEST(UnitDelay, BlindToRaces) {
  // The crucial §6.1 point: unit-delay simulation of the Figure 1(a) racy
  // vector picks one deterministic outcome and reports "settled", while
  // exact analysis shows two possible outcomes.
  std::vector<bool> reset;
  const Netlist n = fig1a_circuit(&reset);
  const auto settled = unit_delay_settle(n, reset, {true, false});
  EXPECT_TRUE(settled.has_value());
  const auto exact = explore_settling(n, reset, {true, false}, 24);
  EXPECT_GE(exact.stable_states.size(), 2u);
}

TEST(Baseline, GeneratesAndValidates) {
  auto synth = benchmark_circuit("rpdft", SynthStyle::SpeedIndependent);
  const auto faults = output_stuck_faults(synth.netlist);
  const auto result = run_baseline(synth.netlist, synth.reset_state, faults);
  EXPECT_EQ(result.per_fault.size(), faults.size());
  EXPECT_GT(result.generated, 0u);
  EXPECT_LE(result.validated, result.generated);
  EXPECT_LE(result.optimistic, result.validated);
}

TEST(Baseline, SequencesObserveMismatchUnderUnitDelay) {
  auto synth = benchmark_circuit("dff", SynthStyle::SpeedIndependent);
  const auto faults = output_stuck_faults(synth.netlist);
  const auto result = run_baseline(synth.netlist, synth.reset_state, faults);
  for (const auto& fr : result.per_fault) {
    if (!fr.validated) continue;
    EXPECT_FALSE(fr.sequence.vectors.empty());
  }
}

TEST(Baseline, OptimismExistsOnRacyCircuit) {
  // On the Figure 1(a) circuit, the racy vector (AB=10 from A=0,B=1) is the
  // only way to distinguish some faults in the synchronous model; the
  // baseline validates such tests although they race on real hardware.
  std::vector<bool> reset;
  const Netlist n = fig1a_circuit(&reset);
  const auto faults = output_stuck_faults(n);
  const auto result = run_baseline(n, reset, faults);
  EXPECT_GT(result.generated, 0u);
  // The exact audit must flag at least one validated-but-racy sequence on
  // this adversarial circuit.
  EXPECT_GT(result.optimistic, 0u);
}

}  // namespace
}  // namespace xatpg
