// Tier-1 contracts of the fuzzing subsystem (docs/FUZZING.md), runnable
// without any fuzzer: the structure-aware mutator only produces valid
// round-trippable circuits, and the known-bad corpus slices — including
// every checked-in crasher — are rejected at the public boundaries with a
// typed Error (no throw, no abort).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/random_netlist.hpp"
#include "serve/protocol.hpp"
#include "util/check.hpp"
#include "util/random.hpp"
#include "xatpg/session.hpp"

namespace xatpg {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::filesystem::path corpus_dir() { return XATPG_FUZZ_CORPUS_DIR; }

// Renumbering-invariant identity of a .xnl text (mirrors fuzz::sorted_lines
// in tests/fuzz/fuzz_common.hpp, which cannot be included here because it
// supplies main() in fallback mode): parse_xnl assigns ids by first mention,
// so re-parsing may permute gate lines, but each line fully describes one
// gate by signal names.
std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

// --- the mutator's validity + round-trip contract ---------------------------

TEST(StructuralMutator, MutantsRoundTripThroughXnl) {
  std::set<NetlistMutation> kinds_seen;
  std::size_t mutants = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed);
    std::vector<bool> reset;
    RandomNetlistOptions generate;
    generate.num_gates = 5 + seed % 4;
    Netlist current;
    try {
      current = random_netlist(seed, generate, &reset);
    } catch (const CheckError&) {
      continue;  // generator refused the seed (non-confluent from all-false)
    }
    for (int round = 0; round < 3; ++round) {
      std::optional<MutatedNetlist> mutant = mutate_netlist(current, rng);
      if (!mutant) break;
      const NetlistMutation kind = mutant->mutation;
      kinds_seen.insert(kind);
      ++mutants;
      current = std::move(mutant->netlist);
      reset = std::move(mutant->reset);
      SCOPED_TRACE("seed " + std::to_string(seed) + " round " +
                   std::to_string(round) + " mutation " +
                   netlist_mutation_name(kind));

      // Valid by construction...
      ASSERT_NO_THROW(current.check_invariants());
      // ...with a genuinely stable reset...
      ASSERT_EQ(reset.size(), current.num_signals());
      EXPECT_TRUE(current.is_stable_state(reset));

      // ...and canonicalization is total: the canonical text must re-parse
      // and re-write to the same set of lines (parse may renumber signals,
      // but every line names its gate's signals in full).
      const std::string canonical = write_xnl_string(current);
      Netlist reparsed;
      ASSERT_NO_THROW(reparsed = parse_xnl_string(canonical)) << canonical;
      EXPECT_EQ(reparsed.num_signals(), current.num_signals());
      EXPECT_EQ(reparsed.inputs().size(), current.inputs().size());
      EXPECT_EQ(sorted_lines(write_xnl_string(reparsed)),
                sorted_lines(canonical));
    }
  }
  // The walk above must exercise the whole mutation vocabulary, otherwise
  // the fuzzer's coverage quietly shrank.
  EXPECT_GE(mutants, 24u);
  EXPECT_EQ(kinds_seen.size(), 4u)
      << "some mutation kinds never produced a valid mutant";
}

// --- known-bad slices stay typed at every boundary ---------------------------

void expect_typed_rejection(const Expected<Session>& result, ErrorCode code,
                            const std::string& what) {
  ASSERT_FALSE(result.has_value()) << what << ": accepted";
  EXPECT_EQ(result.error().code, code)
      << what << ": " << result.error().to_string();
  EXPECT_FALSE(result.error().message.empty()) << what;
}

TEST(KnownBadCorpus, BenchCrashersRejectedTyped) {
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir() / "bench" /
                                           "crashers")) {
    const std::string text = read_file(entry.path());
    expect_typed_rejection(Session::from_bench(text), ErrorCode::ParseError,
                           entry.path().filename().string());
  }
}

TEST(KnownBadCorpus, ProtocolCrashersRejectedTyped) {
  const AtpgOptions defaults;
  for (const auto& entry : std::filesystem::directory_iterator(
           corpus_dir() / "protocol" / "crashers")) {
    SCOPED_TRACE(entry.path().filename().string());
    const std::string line = read_file(entry.path());
    const Expected<serve::Request> request =
        serve::parse_request(line, defaults);
    ASSERT_FALSE(request.has_value());
    EXPECT_TRUE(request.error().code == ErrorCode::ParseError ||
                request.error().code == ErrorCode::OptionError)
        << request.error().to_string();
  }
}

TEST(KnownBadCorpus, JsonCrashersRejectedTypedThroughProtocol) {
  // json.hpp is internal; its hostile inputs reach production wrapped in a
  // request line, so assert the typed rejection at that boundary.  Some
  // crashers are syntactically valid JSON that used to break the typed
  // accessors (huge counts), so either ParseError or OptionError is the
  // correct verdict — what matters is that it IS a typed verdict.
  const AtpgOptions defaults;
  for (const auto& entry : std::filesystem::directory_iterator(
           corpus_dir() / "json" / "crashers")) {
    SCOPED_TRACE(entry.path().filename().string());
    const Expected<serve::Request> request =
        serve::parse_request(read_file(entry.path()), defaults);
    ASSERT_FALSE(request.has_value());
    EXPECT_TRUE(request.error().code == ErrorCode::ParseError ||
                request.error().code == ErrorCode::OptionError)
        << request.error().to_string();
  }
}

TEST(KnownBadCorpus, HandWrittenBadXnlRejectedTyped) {
  // A slice of the grammar's error taxonomy (docs/FORMATS.md): every entry
  // must come back as Error{ParseError}, never an exception or abort.
  const std::vector<std::pair<const char*, const char*>> bad = {
      {"unknown directive", ".modell x\n"},
      {"gate arity", ".inputs a\n.gate NOT z a a\n.end\n"},
      {"undefined signal", ".inputs a\n.outputs z\n.gate NOT z ghost\n.end\n"},
      {"defined twice", ".inputs a a\n"},
      {"content after end", ".end\n.inputs a\n"},
      {"bad cube literal", ".inputs a\n.sop z : a : 2\n.end\n"},
      {"cube arity", ".inputs a b\n.sop z : a b : 1\n.end\n"},
      {"unknown gate type", ".inputs a\n.gate FROB z a\n.end\n"},
      {"colon in name", ".inputs a\n.gate BUF z: a\n.end\n"},
      {"missing fields", ".gc z : a\n"},
  };
  for (const auto& [what, text] : bad)
    expect_typed_rejection(Session::from_xnl(text), ErrorCode::ParseError,
                           what);
}

TEST(KnownBadCorpus, HandWrittenBadBenchRejectedTyped) {
  const std::vector<std::pair<const char*, const char*>> bad = {
      {"dff rejected", "INPUT(a)\nq = DFF(a)\n"},
      {"missing paren", "INPUT(a\n"},
      {"no assignment", "z NAND a b\n"},
      {"empty gate type", "INPUT(a)\nz = (a)\n"},
      {"empty arg name", "INPUT(a)\nz = AND(a,)\n"},
      {"spaced name", "INPUT(a)\nx y = NOT(a)\nz = NOT(x y)\n"},
  };
  for (const auto& [what, text] : bad)
    expect_typed_rejection(Session::from_bench(text), ErrorCode::ParseError,
                           what);
}

}  // namespace
}  // namespace xatpg
