// Coverage for the public facade (xatpg::Session): typed-error taxonomy on
// every failure path, option validation at the boundary, the streaming
// observer contract, cooperative cancellation, incremental runs, and the
// export surface.  Everything here drives the library the way an
// out-of-tree consumer would — through include/xatpg only — with internal
// headers used solely to cross-check results.
#include "xatpg/xatpg.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>

#include "atpg/engine.hpp"  // cross-checks + the loud legacy constructor
#include "fixtures.hpp"

namespace xatpg {
namespace {

AtpgOptions session_options(std::size_t threads = 1) {
  AtpgOptions options;
  options.random_budget = 24;
  options.random_walk_len = 6;
  options.seed = 5;
  options.threads = threads;
  // per_fault_seconds stays at 0: the wall-clock fallback is disabled and
  // the deterministic caps bind, so results are stable under slow sanitizers.
  return options;
}

// --- error taxonomy ----------------------------------------------------------

TEST(SessionErrors, MalformedXnlIsParseError) {
  const auto session = Session::from_xnl(".model broken\n.bogus x\n.end\n");
  ASSERT_FALSE(session.has_value());
  EXPECT_EQ(session.error().code, ErrorCode::ParseError);
  EXPECT_NE(session.error().message.find("unknown directive"),
            std::string::npos);
}

TEST(SessionErrors, UndrivenSignalIsParseError) {
  const auto session = Session::from_xnl(
      ".model broken\n.inputs A\n.outputs y\n.gate AND y A ghost\n.end\n");
  ASSERT_FALSE(session.has_value());
  EXPECT_EQ(session.error().code, ErrorCode::ParseError);
}

TEST(SessionErrors, UnsettlingCircuitIsResourceError) {
  // A self-inverting loop never settles from all-false: no reset state.
  const auto session = Session::from_xnl(
      ".model osc\n.inputs A\n.outputs q\n.gate NOT q q\n.end\n");
  ASSERT_FALSE(session.has_value());
  EXPECT_EQ(session.error().code, ErrorCode::ResourceError);
}

TEST(SessionErrors, UnknownBenchmarkIsOptionError) {
  const auto session = Session::from_benchmark("no-such-circuit");
  ASSERT_FALSE(session.has_value());
  EXPECT_EQ(session.error().code, ErrorCode::OptionError);
  EXPECT_NE(session.error().message.find("no-such-circuit"), std::string::npos);
}

TEST(SessionErrors, MissingFileIsResourceError) {
  const auto session = Session::from_xnl_file("/nonexistent/path.xnl");
  ASSERT_FALSE(session.has_value());
  EXPECT_EQ(session.error().code, ErrorCode::ResourceError);
}

TEST(SessionErrors, DegenerateOptionsAreOptionErrors) {
  AtpgOptions bad = session_options();
  bad.k = 0;
  bad.per_fault_seconds = -1;
  const auto session = Session::from_benchmark("chu150",
                                               SynthStyle::SpeedIndependent,
                                               bad);
  ASSERT_FALSE(session.has_value());
  EXPECT_EQ(session.error().code, ErrorCode::OptionError);
  // validate() aggregates: both violations are named.
  EXPECT_NE(session.error().message.find("k = 0"), std::string::npos);
  EXPECT_NE(session.error().message.find("per_fault_seconds"),
            std::string::npos);
}

TEST(SessionErrors, InvalidFaultIsOptionError) {
  auto session = Session::from_benchmark("chu150",
                                         SynthStyle::SpeedIndependent,
                                         session_options());
  ASSERT_TRUE(session.has_value());
  Fault bogus;
  bogus.site = Fault::Site::SignalOutput;
  bogus.gate = 100000;  // far out of range
  const auto result = session->run({bogus});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::OptionError);
  EXPECT_EQ(session->describe(bogus), "<invalid fault>");
}

TEST(SessionErrors, ForeignSequenceExportIsOptionError) {
  auto session = Session::from_benchmark("chu150",
                                         SynthStyle::SpeedIndependent,
                                         session_options());
  ASSERT_TRUE(session.has_value());
  AtpgResult bogus;
  bogus.sequences.push_back(TestSequence{{{true}}});  // wrong input arity
  const auto program = session->test_program(bogus);
  ASSERT_FALSE(program.has_value());
  EXPECT_EQ(program.error().code, ErrorCode::OptionError);
}

// --- option validation (satellite: AtpgOptions::validate) --------------------

TEST(OptionValidation, DefaultsAreValid) {
  EXPECT_TRUE(AtpgOptions{}.validate().has_value());
}

TEST(OptionValidation, EachDegenerateKnobIsRejected) {
  const auto rejects = [](auto&& tweak) {
    AtpgOptions options;
    tweak(options);
    return !options.validate().has_value();
  };
  EXPECT_TRUE(rejects([](AtpgOptions& o) { o.k = 0; }));
  EXPECT_TRUE(rejects([](AtpgOptions& o) { o.diff_depth = 0; }));
  EXPECT_TRUE(rejects([](AtpgOptions& o) { o.diff_node_cap = 0; }));
  EXPECT_TRUE(rejects([](AtpgOptions& o) { o.random_walk_len = 0; }));
  EXPECT_TRUE(rejects([](AtpgOptions& o) { o.threads = 4097; }));
  EXPECT_TRUE(rejects([](AtpgOptions& o) { o.per_fault_seconds = -1.0; }));
  EXPECT_TRUE(rejects([](AtpgOptions& o) {
    o.per_fault_seconds = std::numeric_limits<double>::quiet_NaN();
  }));
  EXPECT_TRUE(rejects([](AtpgOptions& o) { o.sim.k = 0; }));
  EXPECT_TRUE(rejects([](AtpgOptions& o) { o.sim.candidate_cap = 0; }));
  // Boundary values stay valid.
  EXPECT_FALSE(rejects([](AtpgOptions& o) { o.threads = 4096; }));
  EXPECT_FALSE(rejects([](AtpgOptions& o) { o.threads = 0; }));  // = hardware
  EXPECT_FALSE(rejects([](AtpgOptions& o) { o.k = 1; }));
}

TEST(OptionValidation, LegacyEngineConstructorRejectsLoudly) {
  const fixtures::Circuit c = fixtures::celem();
  AtpgOptions bad;
  bad.diff_depth = 0;
  EXPECT_THROW(AtpgEngine(c.netlist, c.reset, bad), CheckError);
  AtpgOptions huge;
  huge.threads = 100000;
  EXPECT_THROW(AtpgEngine(c.netlist, c.reset, huge), CheckError);
}

// --- lifecycle and results ----------------------------------------------------

TEST(SessionFlow, QuickstartOnBenchmark) {
  auto session = Session::from_benchmark("chu150",
                                         SynthStyle::SpeedIndependent,
                                         session_options(2));
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(session->circuit_name(), "chu150");
  EXPECT_GT(session->num_signals(), 0u);
  EXPECT_GT(session->num_pins(), 0u);
  EXPECT_GT(session->cssg_stats().stable_states, 0.0);
  EXPECT_FALSE(session->has_result());

  const auto faults = session->input_stuck_faults();
  EXPECT_EQ(faults.size(), 2 * session->num_pins());
  const auto result = session->run(faults);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(session->has_result());
  EXPECT_EQ(session->fault_universe().size(), faults.size());
  EXPECT_EQ(result->stats.total_faults, faults.size());
  EXPECT_GE(result->stats.coverage(), 0.9);
  EXPECT_EQ(session->last_result().stats.covered, result->stats.covered);

  const auto program = session->test_program(*result);
  ASSERT_TRUE(program.has_value());
  EXPECT_NE(program->find(".end"), std::string::npos);

  const ShardBddStats bdd = session->bdd_stats();
  EXPECT_GT(bdd.live_nodes, 0u);
  EXPECT_GE(bdd.peak_nodes, bdd.live_nodes);
}

TEST(SessionFlow, FromXnlMatchesInternalEngine) {
  // The facade and a hand-built internal engine must agree bit-for-bit on
  // the same circuit/options (facade construction adds nothing).
  const auto session = Session::from_xnl(fixtures::kCelemXnl,
                                         session_options());
  ASSERT_TRUE(session.has_value());
  const fixtures::Circuit c = fixtures::celem();
  AtpgEngine engine(c.netlist, c.reset, session_options());

  auto mutable_session = Session::from_xnl(fixtures::kCelemXnl,
                                           session_options());
  ASSERT_TRUE(mutable_session.has_value());
  const auto facade = mutable_session->run(mutable_session->input_stuck_faults());
  ASSERT_TRUE(facade.has_value());
  const AtpgResult internal = engine.run(input_stuck_faults(c.netlist));
  EXPECT_EQ(facade->outcomes, internal.outcomes);
  EXPECT_EQ(facade->sequences, internal.sequences);
}

TEST(SessionFlow, CircuitXnlRoundTrips) {
  auto session = Session::from_benchmark("ebergen");
  ASSERT_TRUE(session.has_value());
  const auto reparsed = Session::from_xnl(session->circuit_xnl());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->circuit_name(), session->circuit_name());
  EXPECT_EQ(reparsed->num_signals(), session->num_signals());
  EXPECT_EQ(reparsed->num_pins(), session->num_pins());
}

TEST(SessionFlow, CssgDotIsWellFormed) {
  auto session = Session::from_benchmark("fig1a");
  ASSERT_TRUE(session.has_value());
  const std::string dot = session->cssg_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

// --- observer contract --------------------------------------------------------

class RecordingObserver : public RunObserver {
 public:
  void on_phase(RunPhase phase) override { phases.push_back(phase); }
  void on_fault_resolved(std::size_t index, const FaultOutcome& outcome) override {
    resolved.emplace_back(index, outcome);
    thread_ids.push_back(std::this_thread::get_id());
  }
  void on_progress(const RunProgress& progress) override {
    snapshots.push_back(progress);
    thread_ids.push_back(std::this_thread::get_id());
  }

  std::vector<RunPhase> phases;
  std::vector<std::pair<std::size_t, FaultOutcome>> resolved;
  std::vector<RunProgress> snapshots;
  std::vector<std::thread::id> thread_ids;
};

TEST(SessionObserver, EventsAreCompleteOrderedAndSingleThreaded) {
  auto session = Session::from_benchmark("mmu", SynthStyle::BoundedDelay,
                                         session_options(4));
  ASSERT_TRUE(session.has_value());
  RecordingObserver observer;
  const auto result = session->run(session->input_stuck_faults(), &observer);
  ASSERT_TRUE(result.has_value());

  // Phases in order, Done exactly once, at the end.
  ASSERT_FALSE(observer.phases.empty());
  EXPECT_EQ(observer.phases.front(), RunPhase::RandomTpg);
  EXPECT_EQ(observer.phases.back(), RunPhase::Done);
  EXPECT_TRUE(std::is_sorted(observer.phases.begin(), observer.phases.end()));

  // Exactly one resolution event per covered/redundant fault, with the
  // outcome the final result also reports.
  EXPECT_EQ(observer.resolved.size(),
            result->stats.covered + result->stats.proven_redundant);
  for (const auto& [index, outcome] : observer.resolved)
    EXPECT_EQ(result->outcomes[index], outcome) << "fault " << index;

  // Every callback arrived on the calling thread, even at threads=4.
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread::id id : observer.thread_ids) EXPECT_EQ(id, self);

  // Progress snapshots are monotone in resolved count and carry per-shard
  // BDD statistics; the final snapshot accounts for every sequence.
  std::size_t last = 0;
  for (const RunProgress& p : observer.snapshots) {
    EXPECT_GE(p.faults_resolved, last);
    last = p.faults_resolved;
    EXPECT_EQ(p.faults_total, result->stats.total_faults);
    ASSERT_FALSE(p.shards.empty());
    EXPECT_EQ(p.shards[0].shard, 0u);
  }
  ASSERT_FALSE(observer.snapshots.empty());
  EXPECT_EQ(observer.snapshots.back().sequences_committed,
            result->sequences.size());
  EXPECT_GT(observer.snapshots.back().shards[0].live_nodes, 0u);
}

TEST(SessionObserver, EventStreamIsThreadCountInvariant) {
  std::optional<std::vector<std::pair<std::size_t, FaultOutcome>>> base;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    auto session = Session::from_benchmark("mmu", SynthStyle::BoundedDelay,
                                           session_options(threads));
    ASSERT_TRUE(session.has_value());
    RecordingObserver observer;
    ASSERT_TRUE(session->run(session->input_stuck_faults(), &observer)
                    .has_value());
    if (!base) {
      base = observer.resolved;
    } else {
      EXPECT_EQ(*base, observer.resolved) << "threads=" << threads;
    }
  }
}

// --- cancellation + incremental through the facade ----------------------------

class SessionCancelAtCommit : public RunObserver {
 public:
  SessionCancelAtCommit(CancelToken token, std::size_t commits)
      : token_(std::move(token)), remaining_(commits) {}
  void on_fault_resolved(std::size_t /*index*/,
                         const FaultOutcome& outcome) override {
    if (outcome.covered_by == CoveredBy::ThreePhase && remaining_ > 0 &&
        --remaining_ == 0)
      token_.request_cancel();
  }

 private:
  CancelToken token_;
  std::size_t remaining_;
};

TEST(SessionCancellation, PartialPrefixThenResumeMatchesFullRun) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto full_session = Session::from_benchmark(
        "mmu", SynthStyle::BoundedDelay, session_options(threads));
    ASSERT_TRUE(full_session.has_value());
    const auto full =
        full_session->run(full_session->input_stuck_faults());
    ASSERT_TRUE(full.has_value());
    ASSERT_GE(full->stats.by_three_phase, 3u);

    auto session = Session::from_benchmark("mmu", SynthStyle::BoundedDelay,
                                           session_options(threads));
    ASSERT_TRUE(session.has_value());
    CancelToken token;
    SessionCancelAtCommit observer(token, 2);
    const auto partial =
        session->run(session->input_stuck_faults(), &observer, &token);
    ASSERT_TRUE(partial.has_value());
    EXPECT_TRUE(partial->cancelled);
    EXPECT_EQ(partial->stats.by_three_phase, 2u);
    ASSERT_LT(partial->sequences.size(), full->sequences.size());
    for (std::size_t s = 0; s < partial->sequences.size(); ++s)
      EXPECT_EQ(partial->sequences[s], full->sequences[s]);

    // Resume: an empty delta re-runs the universe from the caches and must
    // land exactly on the uncancelled result.
    const auto resumed = session->add_faults({});
    ASSERT_TRUE(resumed.has_value());
    EXPECT_FALSE(resumed->cancelled);
    EXPECT_EQ(resumed->outcomes, full->outcomes);
    EXPECT_EQ(resumed->sequences, full->sequences);
  }
}

TEST(SessionIncremental, AddFaultsMatchesFromScratchUnion) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto fresh = Session::from_benchmark("mmu", SynthStyle::BoundedDelay,
                                         session_options(threads));
    ASSERT_TRUE(fresh.has_value());
    const auto faults = fresh->input_stuck_faults();
    const auto full = fresh->run(faults);
    ASSERT_TRUE(full.has_value());

    auto grown = Session::from_benchmark("mmu", SynthStyle::BoundedDelay,
                                         session_options(threads));
    ASSERT_TRUE(grown.has_value());
    const std::size_t half = faults.size() / 2;
    ASSERT_TRUE(grown
                    ->run(std::vector<Fault>(faults.begin(),
                                             faults.begin() + half))
                    .has_value());
    const auto incremental = grown->add_faults(
        std::vector<Fault>(faults.begin() + half, faults.end()));
    ASSERT_TRUE(incremental.has_value());
    EXPECT_EQ(grown->fault_universe().size(), faults.size());
    EXPECT_EQ(incremental->outcomes, full->outcomes);
    EXPECT_EQ(incremental->sequences, full->sequences);
    EXPECT_EQ(incremental->stats.by_fault_sim, full->stats.by_fault_sim);
  }
}

TEST(SessionCancellation, CrossThreadCancelStopsTheRun) {
  // Fire the token from another thread mid-run: the run must stop at some
  // between-faults checkpoint and still return a well-formed result.  (On
  // these small circuits it may also finish first — both are legal; the
  // assertion is only that nothing crashes and the result is consistent.)
  auto session = Session::from_benchmark("mmu", SynthStyle::BoundedDelay,
                                         session_options(2));
  ASSERT_TRUE(session.has_value());
  CancelToken token;
  std::thread firer([token]() mutable { token.request_cancel(); });
  const auto result =
      session->run(session->input_stuck_faults(), nullptr, &token);
  firer.join();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->stats.covered, result->stats.by_random +
                                       result->stats.by_three_phase +
                                       result->stats.by_fault_sim);
}

}  // namespace
}  // namespace xatpg
