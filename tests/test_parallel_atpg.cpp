// Determinism suite for the fault-parallel ATPG engine: the fan-out over
// worker shards must be invisible in the results.  For every fixture
// circuit, `AtpgEngine::run` with threads ∈ {1, 2, 4, 8} must produce
// byte-identical FaultOutcome tables, test sequences, and phase counters —
// scheduling (including work stealing) may only change wall-clock numbers.
//
// This suite is also the ThreadSanitizer workload in CI: the threads=2/4/8
// runs exercise the thread pool, the work-stealing queue (own-deque pops
// AND cross-deque steals, including the owner/thief race on a deque's last
// block), the per-worker shard build, and every shared read-only path
// (netlist, explicit CSSG).
#include "atpg/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "atpg/fault.hpp"
#include "benchmarks/benchmarks.hpp"
#include "fixtures.hpp"
#include "util/thread_pool.hpp"
#include "util/work_queue.hpp"

namespace xatpg {
namespace {

AtpgOptions determinism_options(std::size_t threads) {
  AtpgOptions options;
  options.random_budget = 24;
  options.random_walk_len = 6;
  options.seed = 5;
  options.threads = threads;
  // The wall-clock fallback (the one machine-dependent knob) is disabled by
  // default; state it explicitly — this suite is the byte-identity
  // guarantee, and it must hold even under slow sanitizers.
  options.per_fault_seconds = 0;
  return options;
}

void expect_identical(const AtpgResult& base, const AtpgResult& other,
                      std::size_t threads, const std::string& name) {
  SCOPED_TRACE(name + " threads=" + std::to_string(threads));
  EXPECT_EQ(base.outcomes, other.outcomes);
  EXPECT_EQ(base.sequences, other.sequences);
  EXPECT_EQ(base.stats.by_random, other.stats.by_random);
  EXPECT_EQ(base.stats.by_three_phase, other.stats.by_three_phase);
  EXPECT_EQ(base.stats.by_fault_sim, other.stats.by_fault_sim);
  EXPECT_EQ(base.stats.covered, other.stats.covered);
  EXPECT_EQ(base.stats.undetected, other.stats.undetected);
  EXPECT_EQ(base.stats.proven_redundant, other.stats.proven_redundant);
  EXPECT_EQ(base.stats.gave_up, other.stats.gave_up);
}

void check_determinism(const Netlist& netlist, const std::vector<bool>& reset,
                       const std::string& name, bool classify = false,
                       bool reorder = false) {
  std::optional<AtpgResult> base_in, base_out;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    AtpgOptions options = determinism_options(threads);
    options.classify_undetectable = classify;
    if (reorder) {
      // Aggressive trigger so per-shard sifting actually fires mid-run
      // (several times per run on these circuits): each worker's shard
      // reorders on its own schedule, and that must stay invisible in the
      // merged results.
      options.reorder.enabled = true;
      options.reorder.trigger_nodes = 64;
    }
    AtpgEngine engine(netlist, reset, options);
    const AtpgResult in = engine.run(input_stuck_faults(netlist));
    const AtpgResult out = engine.run(output_stuck_faults(netlist));
    if (!base_in) {
      base_in = in;
      base_out = out;
      continue;
    }
    expect_identical(*base_in, in, threads, name + "/input");
    expect_identical(*base_out, out, threads, name + "/output");
  }
}

TEST(ParallelDeterminism, Fig1a) {
  const fixtures::Circuit c = fixtures::fig1a();
  check_determinism(c.netlist, c.reset, "fig1a");
}

TEST(ParallelDeterminism, Fig1b) {
  const fixtures::Circuit c = fixtures::fig1b();
  check_determinism(c.netlist, c.reset, "fig1b");
}

TEST(ParallelDeterminism, AsyncLatch) {
  const fixtures::Circuit c = fixtures::async_latch();
  check_determinism(c.netlist, c.reset, "latch");
}

TEST(ParallelDeterminism, Pipeline2) {
  const fixtures::Circuit c = fixtures::pipeline2();
  check_determinism(c.netlist, c.reset, "pipeline2");
}

TEST(ParallelDeterminism, RpdftWithClassifier) {
  const auto synth = benchmark_circuit("rpdft", SynthStyle::SpeedIndependent);
  check_determinism(synth.netlist, synth.reset_state, "rpdft",
                    /*classify=*/true);
}

// Dynamic BDD reordering runs per shard, at shard-local trigger points that
// differ with the fault split — the determinism guarantee must hold anyway.
TEST(ParallelDeterminism, Pipeline2WithReordering) {
  const fixtures::Circuit c = fixtures::pipeline2();
  check_determinism(c.netlist, c.reset, "pipeline2+reorder",
                    /*classify=*/false, /*reorder=*/true);
}

TEST(ParallelDeterminism, RpdftWithClassifierAndReordering) {
  const auto synth = benchmark_circuit("rpdft", SynthStyle::SpeedIndependent);
  check_determinism(synth.netlist, synth.reset_state, "rpdft+reorder",
                    /*classify=*/true, /*reorder=*/true);
}

// Thread count 0 (= hardware concurrency) must also match threads=1.
TEST(ParallelDeterminism, HardwareThreadsMatchSerial) {
  const fixtures::Circuit c = fixtures::pipeline2();
  AtpgOptions serial = determinism_options(1);
  AtpgOptions hw = determinism_options(0);
  AtpgEngine e1(c.netlist, c.reset, serial);
  AtpgEngine e2(c.netlist, c.reset, hw);
  const auto faults = input_stuck_faults(c.netlist);
  expect_identical(e1.run(faults), e2.run(faults), 0, "pipeline2/hw");
}

// The parallel engine must keep the serial engine's quality guarantees:
// every committed sequence still detects its fault under the exact
// simulator, whichever phase got the credit.
TEST(ParallelEngine, SequencesDetectTheirFaultsAtFourThreads) {
  const auto synth = benchmark_circuit("rpdft", SynthStyle::SpeedIndependent);
  AtpgOptions options = determinism_options(4);
  AtpgEngine engine(synth.netlist, synth.reset_state, options);
  const AtpgResult result = engine.run(input_stuck_faults(synth.netlist));
  EXPECT_GE(result.stats.coverage(), 0.9);
  for (const FaultOutcome& outcome : result.outcomes) {
    if (outcome.covered_by == CoveredBy::None) continue;
    ASSERT_GE(outcome.sequence_index, 0);
    const TestSequence& seq = result.sequences[outcome.sequence_index];
    const auto path = engine.follow(seq);
    ASSERT_TRUE(path.has_value());
    FaultSimulator sim(synth.netlist, outcome.fault, synth.reset_state);
    DetectStatus status = sim.status();
    for (std::size_t t = 0;
         t < seq.vectors.size() && status == DetectStatus::Undetermined; ++t)
      status = sim.step(seq.vectors[t],
                        engine.graph().states[(*path)[t + 1]]);
    EXPECT_EQ(status, DetectStatus::Detected)
        << outcome.fault.describe(synth.netlist);
  }
}

TEST(ParallelEngine, ShardAccountingCoversEverySearchedFault) {
  // Engine-level stress of the stealing fan-out: with the random phase off,
  // every fault goes through a 3-phase search on SOME shard.  The per-shard
  // faults_done counters must sum to exactly the batch size — a block that
  // was stolen still runs exactly once, a block that was never stolen still
  // runs exactly once — and the steal telemetry must be internally
  // consistent regardless of how the whale-vs-thief timing played out.
  const auto synth = benchmark_circuit("mmu", SynthStyle::BoundedDelay);
  const auto faults = input_stuck_faults(synth.netlist);
  AtpgOptions options = determinism_options(4);
  options.random_budget = 0;
  AtpgEngine engine(synth.netlist, synth.reset_state, options);
  const AtpgResult result = engine.run(faults);
  EXPECT_GT(result.stats.by_three_phase, 0u);

  const std::vector<ShardBddStats> shards = engine.shard_bdd_stats();
  ASSERT_EQ(shards.size(), 4u);
  std::size_t searched = 0, stolen = 0;
  for (const ShardBddStats& shard : shards) {
    searched += shard.faults_done;
    stolen += shard.blocks_stolen;
  }
  EXPECT_EQ(searched, faults.size());
  // A worker cannot steal more blocks than it completed faults (each stolen
  // block contains at least one fault it then searched).
  for (const ShardBddStats& shard : shards)
    EXPECT_LE(shard.blocks_stolen, shard.faults_done) << "shard "
                                                      << shard.shard;
  (void)stolen;  // how many steals happen is scheduling, not contract
}

// --- cancellation ------------------------------------------------------------
// A CancelToken fired at a fixed 3-phase commit index must (a) stop the run
// between faults, (b) leave a deterministic partial result that is a prefix
// of the full run — same leading sequences, every committed outcome final —
// and (c) stay byte-identical across thread counts, because the trigger
// event (the k-th commit in the deterministic merge) is scheduling-free.

/// Fires the token when the n-th ThreePhase commit is reported.
class CancelAtCommit : public RunObserver {
 public:
  CancelAtCommit(CancelToken token, std::size_t commits)
      : token_(std::move(token)), remaining_(commits) {}
  void on_fault_resolved(std::size_t /*index*/,
                         const FaultOutcome& outcome) override {
    if (outcome.covered_by == CoveredBy::ThreePhase && remaining_ > 0 &&
        --remaining_ == 0)
      token_.request_cancel();
  }

 private:
  CancelToken token_;
  std::size_t remaining_;
};

void expect_prefix_of(const AtpgResult& partial, const AtpgResult& full,
                      const std::string& name) {
  SCOPED_TRACE(name);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_FALSE(full.cancelled);
  ASSERT_LT(partial.sequences.size(), full.sequences.size());
  for (std::size_t s = 0; s < partial.sequences.size(); ++s)
    EXPECT_EQ(partial.sequences[s], full.sequences[s]) << "sequence " << s;
  ASSERT_EQ(partial.outcomes.size(), full.outcomes.size());
  for (std::size_t j = 0; j < partial.outcomes.size(); ++j) {
    if (partial.outcomes[j].covered_by != CoveredBy::None) {
      // Committed before the cancel: final, and identical to the full run.
      EXPECT_EQ(partial.outcomes[j], full.outcomes[j]) << "fault " << j;
    } else {
      // Unresolved at cancel time: the full run can only have covered it
      // with a sequence the partial run never committed.
      EXPECT_TRUE(full.outcomes[j].covered_by == CoveredBy::None ||
                  full.outcomes[j].sequence_index >=
                      static_cast<int>(partial.sequences.size()))
          << "fault " << j;
    }
  }
}

TEST(Cancellation, MidMergePartialResultIsAPrefixAcrossThreads) {
  const auto synth = benchmark_circuit("mmu", SynthStyle::BoundedDelay);
  const auto faults = input_stuck_faults(synth.netlist);
  std::optional<AtpgResult> base_partial;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    AtpgOptions options = determinism_options(threads);
    AtpgEngine full_engine(synth.netlist, synth.reset_state, options);
    const AtpgResult full = full_engine.run(faults);
    ASSERT_GE(full.stats.by_three_phase, 3u);  // enough commits to cut short

    AtpgEngine engine(synth.netlist, synth.reset_state, options);
    CancelToken token;
    CancelAtCommit observer(token, 2);
    const AtpgResult partial = engine.run(faults, &observer, &token);
    EXPECT_EQ(partial.stats.by_three_phase, 2u);
    expect_prefix_of(partial, full, "mmu/bd threads=" + std::to_string(threads));

    if (!base_partial) {
      base_partial = partial;
    } else {
      expect_identical(*base_partial, partial, threads, "mmu/bd partial");
      EXPECT_EQ(base_partial->cancelled, partial.cancelled);
    }
  }
}

TEST(Cancellation, TokenAlreadyFiredYieldsEmptyRun) {
  const fixtures::Circuit c = fixtures::celem();
  AtpgEngine engine(c.netlist, c.reset, determinism_options(2));
  CancelToken token;
  token.request_cancel();
  const AtpgResult result = engine.run(input_stuck_faults(c.netlist), nullptr,
                                       &token);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.stats.covered, 0u);
  EXPECT_TRUE(result.sequences.empty());
}

// --- incremental runs ---------------------------------------------------------
// add_faults() must behave as if the union universe had been run from
// scratch: committed sequences are reused by cross-simulating the new
// faults first, cached searches are never redone, and the merged result is
// byte-identical — at every thread count.

void check_incremental(const Netlist& netlist, const std::vector<bool>& reset,
                       const std::vector<Fault>& faults,
                       const std::string& name,
                       std::size_t random_budget = 24) {
  const std::size_t half = faults.size() / 2;
  const std::vector<Fault> first(faults.begin(), faults.begin() + half);
  const std::vector<Fault> rest(faults.begin() + half, faults.end());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    AtpgOptions options = determinism_options(threads);
    options.random_budget = random_budget;
    AtpgEngine fresh(netlist, reset, options);
    const AtpgResult full = fresh.run(faults);

    AtpgEngine grown(netlist, reset, options);
    grown.run(first);
    const AtpgResult incremental = grown.add_faults(rest);
    ASSERT_EQ(grown.universe().size(), faults.size());
    expect_identical(full, incremental, threads, name + "/incremental");
    EXPECT_EQ(full.sequences.size(), incremental.sequences.size());
  }
}

TEST(Incremental, MatchesFromScratchOnMmuBoundedDelay) {
  const auto synth = benchmark_circuit("mmu", SynthStyle::BoundedDelay);
  check_incremental(synth.netlist, synth.reset_state,
                    input_stuck_faults(synth.netlist), "mmu/bd");
}

TEST(Incremental, MatchesFromScratchWithoutRandomPhase) {
  // random_budget = 0 forces everything through the 3-phase merge, so the
  // incremental run exercises the cached-commit + catch-up machinery (and
  // vbe5b has two search-exhausted faults that must stay undetected).
  const auto synth = benchmark_circuit("vbe5b", SynthStyle::SpeedIndependent);
  check_incremental(synth.netlist, synth.reset_state,
                    input_stuck_faults(synth.netlist), "vbe5b/si",
                    /*random_budget=*/0);
}

TEST(Incremental, OutputFaultsJoinInputUniverse) {
  // Growing with a *different* fault model mid-session must work too.
  const fixtures::Circuit c = fixtures::pipeline2();
  std::vector<Fault> all = input_stuck_faults(c.netlist);
  const std::vector<Fault> extra = output_stuck_faults(c.netlist);
  const std::size_t in_count = all.size();
  all.insert(all.end(), extra.begin(), extra.end());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    AtpgOptions options = determinism_options(threads);
    AtpgEngine fresh(c.netlist, c.reset, options);
    const AtpgResult full = fresh.run(all);
    AtpgEngine grown(c.netlist, c.reset, options);
    grown.run(std::vector<Fault>(all.begin(), all.begin() + in_count));
    expect_identical(full, grown.add_faults(extra), threads, "pipe2/mixed");
  }
}

TEST(Incremental, ResumeAfterCancelReproducesFullRun) {
  // The acceptance contract: cancel mid-run, then add_faults() on the
  // remainder (here: an empty delta — the universe is already complete)
  // finishes the job byte-identically to an uncancelled run, reusing every
  // search the cancelled run already paid for.
  const auto synth = benchmark_circuit("mmu", SynthStyle::BoundedDelay);
  const auto faults = input_stuck_faults(synth.netlist);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    AtpgOptions options = determinism_options(threads);
    AtpgEngine fresh(synth.netlist, synth.reset_state, options);
    const AtpgResult full = fresh.run(faults);

    AtpgEngine engine(synth.netlist, synth.reset_state, options);
    CancelToken token;
    CancelAtCommit observer(token, 2);
    const AtpgResult partial = engine.run(faults, &observer, &token);
    ASSERT_TRUE(partial.cancelled);
    const AtpgResult resumed = engine.add_faults({});
    EXPECT_FALSE(resumed.cancelled);
    expect_identical(full, resumed, threads, "mmu/bd resume");
  }
}

// --- deterministic per-fault budgets -----------------------------------------

TEST(ParallelDeterminism, TightDeterministicCapsGiveUpIdenticallyAcrossThreads) {
  // Starve the differentiation BFS so searches truncate: the truncations are
  // cut by diff_node_cap (a pure function of the input), so the resulting
  // gave_up population must be nonzero AND byte-identical at every thread
  // count — a cap blowout may never depend on scheduling.
  const auto synth = benchmark_circuit("mmu", SynthStyle::BoundedDelay);
  const auto faults = input_stuck_faults(synth.netlist);
  std::optional<AtpgResult> base;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    AtpgOptions options = determinism_options(threads);
    options.random_budget = 0;  // force every fault through the 3-phase search
    options.diff_node_cap = 10;
    AtpgEngine engine(synth.netlist, synth.reset_state, options);
    const AtpgResult result = engine.run(faults);
    EXPECT_GT(result.stats.gave_up, 0u);
    for (std::size_t j = 0; j < result.outcomes.size(); ++j)
      if (result.outcomes[j].gave_up) {
        EXPECT_EQ(result.outcomes[j].covered_by, CoveredBy::None);
        EXPECT_FALSE(result.outcomes[j].proven_redundant);
      }
    if (!base)
      base = result;
    else
      expect_identical(*base, result, threads, "mmu/bd tight-caps");
  }
}

TEST(ParallelDeterminism, DisabledWallClockMatchesHugeWallClockBudget) {
  // per_fault_seconds = 0 (disabled) and a budget no search can ever trip
  // must be indistinguishable: the wall clock is a fallback, never the
  // binding cap on a healthy run.
  const auto synth = benchmark_circuit("mmu", SynthStyle::BoundedDelay);
  const auto faults = input_stuck_faults(synth.netlist);
  AtpgOptions disabled = determinism_options(4);
  disabled.per_fault_seconds = 0;
  AtpgOptions huge = determinism_options(4);
  huge.per_fault_seconds = 1e9;
  AtpgEngine a(synth.netlist, synth.reset_state, disabled);
  AtpgEngine b(synth.netlist, synth.reset_state, huge);
  expect_identical(a.run(faults), b.run(faults), 4, "mmu/bd wall-clock");
}

// --- the concurrency primitives themselves -----------------------------------

TEST(StealingWorkQueue, DrainsEveryItemExactlyOnceAcrossThreads) {
  std::vector<std::size_t> items(10000);
  std::iota(items.begin(), items.end(), std::size_t{0});
  StealingWorkQueue<std::size_t> queue(std::move(items),
                                       work_block_size(10000, 4), 4);
  std::vector<std::atomic<int>> claimed(10000);
  {
    ThreadPool pool(4);
    for (std::size_t w = 0; w < 4; ++w)
      pool.submit([&, w] {
        while (const auto block = queue.pop_block(w))
          for (const std::size_t i : *block) claimed[i].fetch_add(1);
      });
    pool.wait_idle();
  }
  for (std::size_t i = 0; i < claimed.size(); ++i)
    ASSERT_EQ(claimed[i].load(), 1) << "item " << i;
}

TEST(StealingWorkQueue, ThievesDrainAnIdleOwnersDeque) {
  // Deterministic single-threaded steal path: worker 0 never pops, so its
  // seeded blocks are reachable ONLY by stealing.  Workers 1..3 must drain
  // the whole batch anyway, and the steal telemetry must account for every
  // block that crossed a deque boundary.
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  StealingWorkQueue<int> queue(std::move(items), /*block_size=*/4,
                               /*workers=*/4);
  ASSERT_EQ(queue.num_blocks(), 16u);  // 4 seeded blocks per worker
  std::vector<int> claimed(64, 0);
  bool any = true;
  while (any) {
    any = false;
    for (const std::size_t w : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}})
      if (const auto block = queue.pop_block(w)) {
        any = true;
        for (const int i : *block) ++claimed[i];
      }
  }
  for (std::size_t i = 0; i < claimed.size(); ++i)
    EXPECT_EQ(claimed[i], 1) << "item " << i;
  EXPECT_EQ(queue.steals(0), 0u);
  EXPECT_EQ(queue.total_steals(), 4u);  // exactly worker 0's seeded blocks
  EXPECT_FALSE(queue.pop_block(0).has_value());  // drained for the owner too
}

TEST(StealingWorkQueue, WhaleOwnerDonatesItsUntouchedBlocks) {
  // The heavy-tail scenario the scheduler exists for: worker 0 claims one
  // block and then stalls on it (a "whale" fault) while workers 1..3 run.
  // The thieves must finish worker 0's untouched blocks; nothing may strand.
  std::vector<std::size_t> items(64);
  std::iota(items.begin(), items.end(), std::size_t{0});
  StealingWorkQueue<std::size_t> queue(std::move(items), /*block_size=*/4,
                                       /*workers=*/4);
  std::vector<std::atomic<int>> claimed(64);
  const auto whale = queue.pop_block(0);  // worker 0 starts its first block…
  ASSERT_TRUE(whale.has_value());
  for (const std::size_t i : *whale) claimed[i].fetch_add(1);
  {  // …and is stuck on it for the entire lifetime of the other workers.
    ThreadPool pool(3);
    for (std::size_t w = 1; w < 4; ++w)
      pool.submit([&, w] {
        while (const auto block = queue.pop_block(w))
          for (const std::size_t i : *block) claimed[i].fetch_add(1);
      });
    pool.wait_idle();
  }
  EXPECT_FALSE(queue.pop_block(0).has_value());  // whale finds nothing left
  for (std::size_t i = 0; i < claimed.size(); ++i)
    ASSERT_EQ(claimed[i].load(), 1) << "item " << i;
  // Worker 0 was seeded 4 blocks and ran 1; the other 3 were stealable only.
  EXPECT_GE(queue.total_steals(), 3u);
  EXPECT_EQ(queue.steals(0), 0u);
}

TEST(StealingWorkQueue, LastBlockRaceResolvesToExactlyOneClaim) {
  // One block, four workers: the seeding gives it to worker 3, so three
  // thieves race the owner on the same packed cursor.  Exactly one claim
  // may succeed.  Iterate to give TSan and the race a real chance.
  for (int round = 0; round < 200; ++round) {
    StealingWorkQueue<int> queue({1, 2, 3}, /*block_size=*/8, /*workers=*/4);
    ASSERT_EQ(queue.num_blocks(), 1u);
    std::atomic<int> wins{0};
    {
      ThreadPool pool(4);
      for (std::size_t w = 0; w < 4; ++w)
        pool.submit([&, w] {
          if (queue.pop_block(w).has_value()) wins.fetch_add(1);
        });
      pool.wait_idle();
    }
    ASSERT_EQ(wins.load(), 1) << "round " << round;
    ASSERT_FALSE(queue.pop_block(0).has_value());
  }
}

TEST(StealingWorkQueue, EmptyQueueYieldsNulloptForEveryWorker) {
  StealingWorkQueue<int> queue({}, /*block_size=*/4, /*workers=*/4);
  EXPECT_EQ(queue.num_blocks(), 0u);
  for (std::size_t w = 0; w < 4; ++w)
    EXPECT_FALSE(queue.pop_block(w).has_value()) << "worker " << w;
  EXPECT_EQ(queue.total_steals(), 0u);
}

TEST(StealingWorkQueue, BlockSizeHeuristic) {
  EXPECT_EQ(work_block_size(0, 1), 1u);
  EXPECT_EQ(work_block_size(100, 1), 100u);   // serial: one block
  EXPECT_EQ(work_block_size(100, 4), 6u);     // ~4 blocks per worker
  EXPECT_EQ(work_block_size(3, 8), 1u);       // never zero
  EXPECT_EQ(work_block_size(5, 4), 1u);       // items barely >= workers
}

TEST(StealingWorkQueue, EveryWorkerSeededWhenItemsReachWorkerCount) {
  // The rounding guarantee: items >= workers must split into at least
  // `workers` blocks, so the contiguous deal-out seeds every deque.
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}, std::size_t{16}}) {
    for (const std::size_t items :
         {workers, workers + 1, 2 * workers - 1, std::size_t{100},
          std::size_t{1000}}) {
      if (items < workers) continue;
      const std::size_t size = work_block_size(items, workers);
      ASSERT_GE(size, 1u);
      const std::size_t blocks = (items + size - 1) / size;
      EXPECT_GE(blocks, workers)
          << "items=" << items << " workers=" << workers << " size=" << size;
    }
  }
}

TEST(ThreadPool, WaitIdleSeesAllSubmittedWork) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
  // The pool stays usable after an idle barrier.
  for (int i = 0; i < 10; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 110);
}

}  // namespace
}  // namespace xatpg
