#include "benchmarks/benchmarks.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fixtures.hpp"
#include "sim/explicit.hpp"
#include "sim/ternary.hpp"

namespace xatpg {
namespace {

TEST(BenchmarkRegistry, SuiteSizes) {
  EXPECT_EQ(si_benchmark_names().size(), 24u);
  EXPECT_EQ(bd_benchmark_names().size(), 9u);
  // Every BD benchmark is also in the SI suite (same specifications).
  for (const auto& name : bd_benchmark_names())
    EXPECT_NE(std::find(si_benchmark_names().begin(),
                        si_benchmark_names().end(), name),
              si_benchmark_names().end())
        << name;
}

TEST(BenchmarkRegistry, RedundantFlags) {
  EXPECT_TRUE(benchmark_is_redundant("trimos-send"));
  EXPECT_TRUE(benchmark_is_redundant("vbe10b"));
  EXPECT_TRUE(benchmark_is_redundant("vbe6a"));
  EXPECT_FALSE(benchmark_is_redundant("chu150"));
}

TEST(BenchmarkRegistry, UnknownNameThrows) {
  EXPECT_THROW(benchmark_stg("nonesuch"), CheckError);
}

TEST(FixtureCircuits, Fig1SourcesDoNotDrift) {
  // The Figure 1 netlists exist twice: as xnl text in tests/fixtures.hpp
  // (for parser tests) and embedded in fig1a_circuit()/fig1b_circuit()
  // (which also supply the paper's initial states).  Lock the two copies
  // together so an edit to either shows up as a failure here.
  EXPECT_EQ(write_xnl_string(fixtures::fig1a().netlist),
            write_xnl_string(parse_xnl_string(fixtures::kFig1aXnl)));
  EXPECT_EQ(write_xnl_string(fixtures::fig1b().netlist),
            write_xnl_string(parse_xnl_string(fixtures::kFig1bXnl)));
}

TEST(FixtureCircuits, ValidateAndRoundTrip) {
  // The shared test-rig circuits must satisfy the same contract as the
  // registry benchmarks: structurally valid, stable at reset, and
  // serializable through the native format without loss.
  for (const fixtures::Circuit& fix :
       {fixtures::fig1a(), fixtures::fig1b(), fixtures::chain(),
        fixtures::celem(), fixtures::async_latch(), fixtures::pipeline2(),
        fixtures::random_netlist(3)}) {
    fix.netlist.check_invariants();
    EXPECT_TRUE(fix.netlist.is_stable_state(fix.reset)) << fix.netlist.name();
    const Netlist reparsed = parse_xnl_string(write_xnl_string(fix.netlist));
    EXPECT_EQ(reparsed.num_signals(), fix.netlist.num_signals())
        << fix.netlist.name();
    EXPECT_EQ(reparsed.inputs().size(), fix.netlist.inputs().size())
        << fix.netlist.name();
  }
}

// Parameterized validation of every named benchmark specification.
class BenchmarkSpecTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSpecTest, ExpandsConsistently) {
  const Stg stg = benchmark_stg(GetParam());
  const StateGraph sg = expand_stg(stg);
  EXPECT_GE(sg.num_states(), 4u);
  EXPECT_LE(sg.num_states(), 4096u);
}

TEST_P(BenchmarkSpecTest, HasCompleteStateCoding) {
  const StateGraph sg = expand_stg(benchmark_stg(GetParam()));
  const auto violations = csc_violations(sg);
  EXPECT_TRUE(violations.empty())
      << GetParam() << ": " << (violations.empty() ? "" : violations.front());
}

TEST_P(BenchmarkSpecTest, HasQuiescentResetState) {
  const StateGraph sg = expand_stg(benchmark_stg(GetParam()));
  EXPECT_FALSE(sg.quiescent_states().empty());
}

TEST_P(BenchmarkSpecTest, SynthesizesSpeedIndependent) {
  const SynthResult r = benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  r.netlist.check_invariants();
  EXPECT_TRUE(r.netlist.is_stable_state(r.reset_state));
  EXPECT_FALSE(r.netlist.inputs().empty());
  EXPECT_FALSE(r.netlist.outputs().empty());
}

TEST_P(BenchmarkSpecTest, SynthesizesBoundedDelay) {
  const SynthResult r = benchmark_circuit(GetParam(), SynthStyle::BoundedDelay);
  r.netlist.check_invariants();
  EXPECT_TRUE(r.netlist.is_stable_state(r.reset_state));
}

TEST_P(BenchmarkSpecTest, SiImplementationFollowsSgBehaviour) {
  // Walking the SG's own event order as synchronous vectors must settle the
  // SI netlist deterministically through the matching codes.
  const Stg stg = benchmark_stg(GetParam());
  const StateGraph sg = expand_stg(stg);
  const SynthResult r = benchmark_circuit(GetParam(), SynthStyle::SpeedIndependent);
  const Netlist& n = r.netlist;

  // Locate the SG state matching the reset state's signal values.
  std::uint32_t current = 0;
  bool found = false;
  for (std::uint32_t st = 0; st < sg.num_states() && !found; ++st) {
    bool match = true;
    for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig)
      match = match &&
              (sg.codes[st][sig] == r.reset_state[n.signal(stg.signal(sig).name)]);
    // Reset states are quiescent; insist on a quiescent match.
    if (match) {
      bool quiet = true;
      for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig)
        if (stg.signal(sig).kind != SignalKind::Input && sg.excited[st][sig])
          quiet = false;
      if (quiet) {
        current = st;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << GetParam();

  // Follow up to 40 SG input events; after each, outputs must settle to the
  // SG's stable successor codes.
  std::vector<bool> state = r.reset_state;
  for (int step = 0; step < 40; ++step) {
    // Find an enabled *input* transition from `current`.
    const StateGraph::Edge* chosen = nullptr;
    for (const auto& e : sg.edges[current]) {
      if (stg.signal(stg.transition(e.transition).signal).kind ==
          SignalKind::Input) {
        chosen = &e;
        break;
      }
    }
    if (!chosen) break;  // outputs pending — SG quiescence handled below
    // Apply the input event as a synchronous vector.
    std::vector<bool> vec;
    for (const SignalId in : n.inputs()) vec.push_back(state[in]);
    const std::uint32_t tsig = stg.transition(chosen->transition).signal;
    for (std::size_t i = 0; i < n.inputs().size(); ++i)
      if (n.signal_name(n.inputs()[i]) == stg.signal(tsig).name)
        vec[i] = stg.transition(chosen->transition).rising;
    // Exact bounded exploration (ternary simulation is conservative and can
    // report Φ through gC feedback even when the settlement is unique).
    const auto settled = explore_settling(n, state, vec, 40);
    ASSERT_TRUE(settled.confluent()) << GetParam() << " step " << step;
    state = *settled.stable_states.begin();
    // Advance the SG to the quiescent state reached by firing the input
    // event and then all excited outputs.
    std::uint32_t sg_state = chosen->to;
    for (int fire = 0; fire < 100; ++fire) {
      const StateGraph::Edge* out_edge = nullptr;
      for (const auto& e : sg.edges[sg_state])
        if (stg.signal(stg.transition(e.transition).signal).kind !=
            SignalKind::Input) {
          out_edge = &e;
          break;
        }
      if (!out_edge) break;
      sg_state = out_edge->to;
    }
    current = sg_state;
    for (std::uint32_t sig = 0; sig < stg.num_signals(); ++sig)
      ASSERT_EQ(state[n.signal(stg.signal(sig).name)], sg.codes[current][sig])
          << GetParam() << " signal " << stg.signal(sig).name << " step "
          << step;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkSpecTest,
                         ::testing::ValuesIn(si_benchmark_names()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(BenchmarkDistinctness, CircuitsDiffer) {
  // The suite should not contain structurally identical netlists under
  // different names (signal counts + gate type multiset as a fingerprint).
  std::set<std::string> fingerprints;
  std::size_t duplicates = 0;
  for (const auto& name : si_benchmark_names()) {
    const SynthResult r = benchmark_circuit(name, SynthStyle::SpeedIndependent);
    std::string fp;
    std::multiset<std::string> parts;
    const auto cover_text = [](const Cover& cover) {
      std::multiset<std::string> cubes;
      for (const auto& cube : cover) {
        std::string t;
        for (const auto lit : cube.lits)
          t += lit == 1 ? '1' : lit == 0 ? '0' : '-';
        cubes.insert(t);
      }
      std::string out;
      for (const auto& c : cubes) out += c + ",";
      return out;
    };
    for (const auto& g : r.netlist.gates()) {
      std::string part = std::string(gate_type_name(g.type)) + "/" +
                         std::to_string(g.fanins.size()) + "/" +
                         cover_text(g.cover) + "/" + cover_text(g.reset_cover);
      parts.insert(part);
    }
    for (const auto& p : parts) fp += p + ";";
    if (!fingerprints.insert(fp).second) ++duplicates;
  }
  // A couple of coincidental twins are tolerable; wholesale duplication is
  // not.
  EXPECT_LE(duplicates, 3u);
}

TEST(Fig1Circuits, MatchPaperBehaviour) {
  std::vector<bool> st_a, st_b;
  const Netlist a = fig1a_circuit(&st_a);
  const Netlist b = fig1b_circuit(&st_b);
  EXPECT_TRUE(a.is_stable_state(st_a));
  EXPECT_TRUE(b.is_stable_state(st_b));
  TernarySim sim_a(a), sim_b(b);
  EXPECT_FALSE(sim_a.settle(st_a, {true, false}).confluent);  // race
  EXPECT_FALSE(sim_b.settle(st_b, {true, false}).confluent);  // oscillation
}

}  // namespace
}  // namespace xatpg
