#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "netlist/netlist.hpp"
#include "sim/explicit.hpp"
#include "sim/parallel.hpp"
#include "sim/ternary.hpp"

namespace xatpg {
namespace {

using fixtures::Circuit;

TEST(TernaryAlgebra, TruthTables) {
  using T = Ternary;
  EXPECT_EQ(ternary_and(T::V1, T::V1), T::V1);
  EXPECT_EQ(ternary_and(T::V0, T::X), T::V0);  // 0 dominates
  EXPECT_EQ(ternary_and(T::X, T::V1), T::X);
  EXPECT_EQ(ternary_or(T::V1, T::X), T::V1);  // 1 dominates
  EXPECT_EQ(ternary_or(T::V0, T::X), T::X);
  EXPECT_EQ(ternary_not(T::X), T::X);
  EXPECT_EQ(ternary_not(T::V0), T::V1);
  EXPECT_EQ(ternary_lub(T::V0, T::V0), T::V0);
  EXPECT_EQ(ternary_lub(T::V0, T::V1), T::X);
  EXPECT_EQ(ternary_lub(T::X, T::V1), T::X);
}

TEST(TernarySimTest, StableInputNoChangeStaysStable) {
  const Circuit fix = fixtures::chain();
  const Netlist& n = fix.netlist;
  const std::vector<bool>& st = fix.reset;  // A=0, n=1, y=0
  ASSERT_TRUE(n.is_stable_state(st));
  TernarySim sim(n);
  const auto result = sim.settle(st, {false});
  EXPECT_TRUE(result.confluent);
  EXPECT_EQ(result.final_state(), st);
}

TEST(TernarySimTest, CombinationalChainSettles) {
  const Circuit fix = fixtures::chain();
  const Netlist& n = fix.netlist;
  TernarySim sim(n);
  const auto result = sim.settle(fix.reset, {true});
  ASSERT_TRUE(result.confluent);
  const auto fin = result.final_state();
  EXPECT_TRUE(fin[n.signal("A")]);
  EXPECT_FALSE(fin[n.signal("n")]);
  EXPECT_TRUE(fin[n.signal("y")]);
}

TEST(TernarySimTest, DetectsNonConfluenceInFig1a) {
  const Circuit fix = fixtures::fig1a();
  const Netlist& n = fix.netlist;
  TernarySim sim(n);
  // Apply AB = 10: a rising races b falling; y may or may not latch.
  const auto result = sim.settle(fix.reset, {true, false});
  EXPECT_FALSE(result.confluent);
  // The racing signal y must be marked unknown.
  EXPECT_EQ(result.state[n.signal("y")], Ternary::X);
}

TEST(TernarySimTest, Fig1aSafeVectorIsConfluent) {
  const Circuit fix = fixtures::fig1a();
  const Netlist& n = fix.netlist;
  TernarySim sim(n);
  // Raising only A (B stays 1) makes c rise and latch y deterministically.
  const auto result = sim.settle(fix.reset, {true, true});
  ASSERT_TRUE(result.confluent);
  const auto fin = result.final_state();
  EXPECT_TRUE(fin[n.signal("c")]);
  EXPECT_TRUE(fin[n.signal("y")]);
}

TEST(TernarySimTest, DetectsOscillationInFig1b) {
  const Circuit fix = fixtures::fig1b();
  const Netlist& n = fix.netlist;
  TernarySim sim(n);
  // Raising A with B=0 starts the c/d oscillation.
  const auto result = sim.settle(fix.reset, {true, false});
  EXPECT_FALSE(result.confluent);
  EXPECT_EQ(result.state[n.signal("c")], Ternary::X);
  EXPECT_EQ(result.state[n.signal("d")], Ternary::X);
}

TEST(TernarySimTest, Fig1bBreakingTheRingIsConfluent) {
  const Circuit fix = fixtures::fig1b();
  const Netlist& n = fix.netlist;
  TernarySim sim(n);
  // Raising A and B together: d is held at 1 by b, c falls to !a = 0.
  const auto result = sim.settle(fix.reset, {true, true});
  ASSERT_TRUE(result.confluent);
  const auto fin = result.final_state();
  EXPECT_FALSE(fin[n.signal("c")]);
  EXPECT_TRUE(fin[n.signal("d")]);
}

TEST(TernarySimTest, SettleToStableHelper) {
  const Netlist n = parse_xnl_string(fixtures::kChainXnl);
  std::vector<bool> st(n.num_signals(), false);  // A=0,n=0,y=0: n excited
  EXPECT_TRUE(settle_to_stable(n, st));
  EXPECT_TRUE(st[n.signal("n")]);
  EXPECT_FALSE(st[n.signal("y")]);
  EXPECT_TRUE(n.is_stable_state(st));
}

// --- explicit exploration (the exact oracle) --------------------------------

TEST(ExplicitExplore, ConfluentVectorHasUniqueOutcome) {
  const Circuit fix = fixtures::fig1a();
  const auto result =
      explore_settling(fix.netlist, fix.reset, {true, true}, 20);
  EXPECT_TRUE(result.confluent());
  EXPECT_EQ(result.stable_states.size(), 1u);
  EXPECT_FALSE(result.exceeded_bound);
}

TEST(ExplicitExplore, RaceYieldsTwoStableStates) {
  const Circuit fix = fixtures::fig1a();
  const Netlist& n = fix.netlist;
  const auto result = explore_settling(n, fix.reset, {true, false}, 20);
  EXPECT_FALSE(result.confluent());
  // Exactly the two settlements the paper describes: y latched or not.
  EXPECT_EQ(result.stable_states.size(), 2u);
  bool saw_latched = false, saw_unlatched = false;
  for (const auto& st : result.stable_states) {
    if (st[n.signal("y")]) saw_latched = true;
    if (!st[n.signal("y")]) saw_unlatched = true;
  }
  EXPECT_TRUE(saw_latched);
  EXPECT_TRUE(saw_unlatched);
}

TEST(ExplicitExplore, OscillationExceedsBound) {
  const Circuit fix = fixtures::fig1b();
  const auto result =
      explore_settling(fix.netlist, fix.reset, {true, false}, 30);
  EXPECT_TRUE(result.exceeded_bound);
  EXPECT_FALSE(result.confluent());
}

TEST(ExplicitExplore, TernaryVsExplicitRelationship) {
  // Properties relating the conservative ternary analysis to the exact
  // bounded-interleaving explorer:
  //  (1) a genuine race (>= 2 distinct stable outcomes among interleavings)
  //      must be flagged by ternary simulation;
  //  (2) when ternary simulation resolves to a definite state, that state is
  //      the unique stable outcome of the exact explorer.
  // Note the explorer may additionally report exceeded_bound on *transient*
  // oscillations (unfair interleavings postponing an excited gate forever);
  // ternary simulation, which models finite gate delays, legitimately
  // resolves those — this is exactly the §2 "transient oscillation"
  // distinction, and why the CSSG (not ternary sim) is the vector-validity
  // arbiter in the ATPG flow.
  for (const Circuit& fix :
       {fixtures::fig1a(), fixtures::fig1b(), fixtures::chain()}) {
    const Netlist& n = fix.netlist;
    TernarySim sim(n);
    const std::size_t m = n.inputs().size();
    const auto stables = explicit_stable_reachable(n, fix.reset, 30);
    for (const auto& st : stables) {
      for (std::uint64_t bits = 0; bits < (1u << m); ++bits) {
        std::vector<bool> vec(m);
        bool same = true;
        for (std::size_t i = 0; i < m; ++i) {
          vec[i] = (bits >> i) & 1;
          same = same && (vec[i] == st[n.inputs()[i]]);
        }
        if (same) continue;
        const auto ternary = sim.settle(st, vec);
        const auto exact = explore_settling(n, st, vec, 50);
        if (exact.stable_states.size() >= 2) {
          EXPECT_FALSE(ternary.confluent)
              << n.name() << ": ternary missed a real race";
        }
        if (ternary.confluent) {
          ASSERT_EQ(exact.stable_states.size(), 1u)
              << n.name() << ": ternary definite but outcomes not unique";
          EXPECT_EQ(*exact.stable_states.begin(), ternary.final_state());
        }
      }
    }
  }
}

TEST(ExplicitExplore, StableReachableContainsReset) {
  const Circuit fix = fixtures::chain();
  const auto states = explicit_stable_reachable(fix.netlist, fix.reset, 20);
  EXPECT_TRUE(states.count(fix.reset));
  EXPECT_EQ(states.size(), 2u);  // A=0 and A=1 settlements
}

// --- parallel two-rail simulation -------------------------------------------

TEST(RailAlgebra, LaneRoundTrip) {
  Rail r = rail_all(Ternary::V0);
  set_rail_lane(r, 7, Ternary::V1);
  set_rail_lane(r, 9, Ternary::X);
  EXPECT_EQ(rail_lane(r, 0), Ternary::V0);
  EXPECT_EQ(rail_lane(r, 7), Ternary::V1);
  EXPECT_EQ(rail_lane(r, 9), Ternary::X);
}

TEST(RailAlgebra, MatchesScalarTernary) {
  const Ternary vals[] = {Ternary::V0, Ternary::V1, Ternary::X};
  RailOps ops;
  for (const Ternary a : vals)
    for (const Ternary b : vals) {
      Rail ra = rail_all(a), rb = rail_all(b);
      EXPECT_EQ(rail_lane(ops.and_(ra, rb), 13), ternary_and(a, b));
      EXPECT_EQ(rail_lane(ops.or_(ra, rb), 13), ternary_or(a, b));
      EXPECT_EQ(rail_lane(ops.not_(ra), 13), ternary_not(a));
    }
}

TEST(ParallelSim, FaultFreeLaneMatchesScalar) {
  const Circuit fix = fixtures::fig1a();
  const Netlist& n = fix.netlist;
  TernarySim scalar(n);
  ParallelTernarySim par(n, {});
  const std::vector<bool>& st = fix.reset;
  const std::vector<bool> vec{true, true};
  const auto scalar_result = scalar.settle(st, vec);
  par.load_state(st);
  par.settle(vec);
  for (SignalId s = 0; s < n.num_signals(); ++s)
    EXPECT_EQ(par.value(s, 0), scalar_result.state[s]) << "signal " << s;
}

TEST(ParallelSim, OutputStuckAtDetected) {
  const Circuit fix = fixtures::chain();
  const Netlist& n = fix.netlist;
  // Lane 1: y stuck-at-0.
  LaneInjection inj{LaneInjection::Site::SignalOutput, n.signal("y"), 0, false,
                    1ull << 1};
  ParallelTernarySim par(n, {inj});
  par.load_state(fix.reset);
  par.settle({true});  // good: y -> 1; faulty: y stuck 0
  EXPECT_EQ(par.value(n.signal("y"), 0), Ternary::V1);
  EXPECT_EQ(par.value(n.signal("y"), 1), Ternary::V0);
  EXPECT_EQ(par.lanes_definite(n.signal("y"), true) & 1ull, 1ull);
  EXPECT_EQ(par.lanes_definite(n.signal("y"), false) & 2ull, 2ull);
}

TEST(ParallelSim, InputPinStuckAt) {
  const Circuit fix = fixtures::chain();
  const Netlist& n = fix.netlist;
  // Lane 3: the pin n->y (pin 0 of gate y) stuck-at-1, so y = NOT(1) = 0.
  LaneInjection inj{LaneInjection::Site::GatePin, n.signal("y"), 0, true,
                    1ull << 3};
  ParallelTernarySim par(n, {inj});
  par.load_state(fix.reset);
  par.settle({true});  // good circuit: n=0, y=1; faulty: y=0
  EXPECT_EQ(par.value(n.signal("y"), 0), Ternary::V1);
  EXPECT_EQ(par.value(n.signal("y"), 3), Ternary::V0);
}

TEST(ParallelSim, RaceMarksLaneUnknown) {
  const Circuit fix = fixtures::fig1a();
  ParallelTernarySim par(fix.netlist, {});
  par.load_state(fix.reset);
  par.settle({true, false});  // the racing vector
  EXPECT_NE(par.lanes_with_unknown() & 1ull, 0ull);
}

TEST(ParallelSim, SixtyFourLanesIndependent) {
  const Circuit fix = fixtures::chain();
  const Netlist& n = fix.netlist;
  // Odd lanes: y output stuck at 0.
  std::uint64_t odd = 0;
  for (int lane = 1; lane < 64; lane += 2) odd |= 1ull << lane;
  LaneInjection inj{LaneInjection::Site::SignalOutput, n.signal("y"), 0, false,
                    odd};
  ParallelTernarySim par(n, {inj});
  par.load_state(fix.reset);
  par.settle({true});
  for (unsigned lane = 0; lane < 64; ++lane) {
    const Ternary expected = (lane % 2) ? Ternary::V0 : Ternary::V1;
    ASSERT_EQ(par.value(n.signal("y"), lane), expected) << "lane " << lane;
  }
}

TEST(ParallelSim, InjectionValidation) {
  const Netlist n = parse_xnl_string(fixtures::kChainXnl);
  LaneInjection bad{LaneInjection::Site::GatePin, n.signal("y"), 5, true, 1};
  EXPECT_THROW(ParallelTernarySim(n, {bad}), CheckError);
}

}  // namespace
}  // namespace xatpg
