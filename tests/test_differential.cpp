// Randomized differential tests: the symbolic pipeline against the explicit
// enumerator, and the full ATPG engine against itself across every variable
// -ordering configuration.
//
// Two oracles pin the symbolic machinery:
//  1. The explicit race explorer (src/sim/explicit) re-derives the CSSG by
//     brute force — BFS over valid vectors, every settling exhaustively
//     interleaved — and the symbolic CSSG's state and edge sets must match
//     it exactly, for every static variable order and with dynamic
//     reordering enabled.
//  2. AtpgEngine::run is a pure function of (netlist, reset, fault list,
//     seed): all VarOrder modes x reorder on/off x threads {1, 4} must
//     produce byte-identical outcomes, sequences and phase counters.  This
//     is what licenses per-shard dynamic reordering in the fault-parallel
//     engine — shards may hold wildly different orders mid-run, and it must
//     be invisible.
#include <gtest/gtest.h>

#include "atpg/engine.hpp"
#include "atpg/fault.hpp"
#include "fixtures.hpp"
#include "oracle.hpp"
#include "sgraph/cssg.hpp"

namespace xatpg {
namespace {

using testing::OracleCssg;
using testing::cssg_oracle_mismatch;
using testing::oracle_cssg;

constexpr std::size_t kSettle = 20;

/// Aggressive policy so reordering actually fires on these small circuits.
ReorderPolicy test_reorder_policy() {
  ReorderPolicy policy;
  policy.enabled = true;
  policy.trigger_nodes = 256;
  return policy;
}

const std::vector<VarOrder>& all_orders() {
  static const std::vector<VarOrder> orders{
      VarOrder::Interleaved, VarOrder::Blocked, VarOrder::ReverseInterleaved,
      VarOrder::Sifted};
  return orders;
}

// --- CSSG vs the explicit enumerator ------------------------------------------
// The oracle itself (OracleCssg, oracle_cssg, cssg_oracle_mismatch) lives in
// tests/oracle.hpp, shared with the structural fuzzer harness.

void expect_cssg_matches_oracle(const Netlist& netlist,
                                const std::vector<bool>& reset,
                                const OracleCssg& oracle, VarOrder order) {
  SCOPED_TRACE(std::string("order=") + var_order_name(order));
  CssgOptions options;
  options.k = kSettle;
  options.order = order;
  options.reorder = test_reorder_policy();
  EXPECT_EQ(std::string(),
            cssg_oracle_mismatch(netlist, reset, oracle, options));
}

class CssgDifferential
    : public ::testing::TestWithParam<std::pair<const char*,
                                                fixtures::Circuit (*)()>> {};

TEST_P(CssgDifferential, SymbolicMatchesExplicitForEveryOrder) {
  const fixtures::Circuit fix = GetParam().second();
  const OracleCssg oracle = oracle_cssg(fix.netlist, fix.reset, kSettle);
  ASSERT_FALSE(oracle.states.empty());
  for (const VarOrder order : all_orders())
    expect_cssg_matches_oracle(fix.netlist, fix.reset, oracle, order);
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, CssgDifferential,
    ::testing::Values(std::pair{"fig1a", &fixtures::fig1a},
                      std::pair{"fig1b", &fixtures::fig1b},
                      std::pair{"celem", &fixtures::celem},
                      std::pair{"latch", &fixtures::async_latch},
                      std::pair{"pipeline2", &fixtures::pipeline2}),
    [](const auto& param_info) { return std::string(param_info.param.first); });

class RandomCssgDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomCssgDifferential, SymbolicMatchesExplicitForEveryOrder) {
  fixtures::RandomNetlistOptions options;
  options.num_inputs = 3;
  options.num_gates = 6;
  const fixtures::Circuit fix =
      fixtures::random_netlist(GetParam(), options);
  const OracleCssg oracle = oracle_cssg(fix.netlist, fix.reset, kSettle);
  ASSERT_FALSE(oracle.states.empty());
  for (const VarOrder order : all_orders())
    expect_cssg_matches_oracle(fix.netlist, fix.reset, oracle, order);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCssgDifferential,
                         ::testing::Values(3u, 7u, 11u, 19u, 23u));

// --- engine invariance across ordering configurations -------------------------

AtpgOptions engine_options(VarOrder order, bool reorder, std::size_t threads) {
  AtpgOptions options;
  options.order = order;
  options.random_budget = 24;
  options.random_walk_len = 6;
  options.seed = 5;
  options.threads = threads;
  // per_fault_seconds stays 0 (wall clock off): the caps stay deterministic.
  if (reorder) options.reorder = test_reorder_policy();
  return options;
}

void expect_identical(const AtpgResult& base, const AtpgResult& other,
                      const std::string& config) {
  SCOPED_TRACE(config);
  EXPECT_EQ(base.outcomes, other.outcomes);
  EXPECT_EQ(base.sequences, other.sequences);
  EXPECT_EQ(base.stats.by_random, other.stats.by_random);
  EXPECT_EQ(base.stats.by_three_phase, other.stats.by_three_phase);
  EXPECT_EQ(base.stats.by_fault_sim, other.stats.by_fault_sim);
  EXPECT_EQ(base.stats.covered, other.stats.covered);
  EXPECT_EQ(base.stats.undetected, other.stats.undetected);
  EXPECT_EQ(base.stats.proven_redundant, other.stats.proven_redundant);
}

void check_engine_invariance(const Netlist& netlist,
                             const std::vector<bool>& reset,
                             const std::string& name, bool classify = false) {
  const auto faults = input_stuck_faults(netlist);
  std::optional<AtpgResult> base;
  for (const VarOrder order : all_orders()) {
    for (const bool reorder : {false, true}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        AtpgOptions options = engine_options(order, reorder, threads);
        options.classify_undetectable = classify;
        AtpgEngine engine(netlist, reset, options);
        const AtpgResult result = engine.run(faults);
        const std::string config = name + " order=" +
                                   var_order_name(order) +
                                   " reorder=" + (reorder ? "on" : "off") +
                                   " threads=" + std::to_string(threads);
        if (!base) {
          base = result;
          // The baseline must be meaningful, not vacuous.
          EXPECT_GT(base->stats.total_faults, 0u) << config;
        } else {
          expect_identical(*base, result, config);
        }
      }
    }
  }
}

TEST(EngineDifferential, Fig1aInvariantAcrossConfigs) {
  const fixtures::Circuit c = fixtures::fig1a();
  check_engine_invariance(c.netlist, c.reset, "fig1a");
}

TEST(EngineDifferential, Pipeline2InvariantAcrossConfigs) {
  const fixtures::Circuit c = fixtures::pipeline2();
  check_engine_invariance(c.netlist, c.reset, "pipeline2");
}

TEST(EngineDifferential, Pipeline2WithClassifierInvariant) {
  const fixtures::Circuit c = fixtures::pipeline2();
  check_engine_invariance(c.netlist, c.reset, "pipeline2+classify",
                          /*classify=*/true);
}

TEST(EngineDifferential, RandomNetlistsInvariantAcrossConfigs) {
  for (const std::uint64_t seed : {7u, 19u}) {
    fixtures::RandomNetlistOptions options;
    options.num_inputs = 3;
    options.num_gates = 6;
    const fixtures::Circuit c = fixtures::random_netlist(seed, options);
    check_engine_invariance(c.netlist, c.reset,
                            "random" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace xatpg
