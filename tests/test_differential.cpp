// Randomized differential tests: the symbolic pipeline against the explicit
// enumerator, and the full ATPG engine against itself across every variable
// -ordering configuration.
//
// Two oracles pin the symbolic machinery:
//  1. The explicit race explorer (src/sim/explicit) re-derives the CSSG by
//     brute force — BFS over valid vectors, every settling exhaustively
//     interleaved — and the symbolic CSSG's state and edge sets must match
//     it exactly, for every static variable order and with dynamic
//     reordering enabled.
//  2. AtpgEngine::run is a pure function of (netlist, reset, fault list,
//     seed): all VarOrder modes x reorder on/off x threads {1, 4} must
//     produce byte-identical outcomes, sequences and phase counters.  This
//     is what licenses per-shard dynamic reordering in the fault-parallel
//     engine — shards may hold wildly different orders mid-run, and it must
//     be invisible.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "atpg/engine.hpp"
#include "atpg/fault.hpp"
#include "fixtures.hpp"
#include "sgraph/cssg.hpp"
#include "sim/explicit.hpp"

namespace xatpg {
namespace {

constexpr std::size_t kSettle = 20;

/// Aggressive policy so reordering actually fires on these small circuits.
ReorderPolicy test_reorder_policy() {
  ReorderPolicy policy;
  policy.enabled = true;
  policy.trigger_nodes = 256;
  return policy;
}

const std::vector<VarOrder>& all_orders() {
  static const std::vector<VarOrder> orders{
      VarOrder::Interleaved, VarOrder::Blocked, VarOrder::ReverseInterleaved,
      VarOrder::Sifted};
  return orders;
}

// --- CSSG vs the explicit enumerator ------------------------------------------

struct OracleCssg {
  std::set<std::vector<bool>> states;
  // (from state, input pattern, to state)
  std::set<std::tuple<std::vector<bool>, std::vector<bool>, std::vector<bool>>>
      edges;
};

/// Brute-force CSSG: BFS from reset over all input patterns, keeping only
/// confluent settlings (exactly one stable outcome, every trajectory done
/// within the bound) — the definition of a valid synchronous test vector.
OracleCssg oracle_cssg(const Netlist& netlist, const std::vector<bool>& reset,
                       std::size_t k) {
  OracleCssg oracle;
  const auto& inputs = netlist.inputs();
  oracle.states.insert(reset);
  std::vector<std::vector<bool>> worklist{reset};
  while (!worklist.empty()) {
    const std::vector<bool> state = worklist.back();
    worklist.pop_back();
    for (std::uint64_t bits = 0; bits < (1ull << inputs.size()); ++bits) {
      std::vector<bool> pattern(inputs.size());
      bool same = true;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        pattern[i] = (bits >> i) & 1;
        same = same && (pattern[i] == state[inputs[i]]);
      }
      if (same) continue;  // R_I: at least one input must flip
      const ExploreResult explored =
          explore_settling(netlist, state, pattern, k);
      if (!explored.confluent()) continue;
      const std::vector<bool>& succ = *explored.stable_states.begin();
      oracle.edges.insert({state, pattern, succ});
      if (oracle.states.insert(succ).second) worklist.push_back(succ);
    }
  }
  return oracle;
}

void expect_cssg_matches_oracle(const Netlist& netlist,
                                const std::vector<bool>& reset,
                                const OracleCssg& oracle, VarOrder order) {
  SCOPED_TRACE(std::string("order=") + var_order_name(order));
  CssgOptions options;
  options.k = kSettle;
  options.order = order;
  options.reorder = test_reorder_policy();
  const Cssg cssg(netlist, {reset}, options);
  const ExplicitCssg graph = cssg.extract_explicit();

  std::set<std::vector<bool>> states(graph.states.begin(), graph.states.end());
  EXPECT_EQ(states, oracle.states);
  EXPECT_EQ(states.size(), graph.states.size());  // ids are distinct states

  std::set<std::tuple<std::vector<bool>, std::vector<bool>, std::vector<bool>>>
      edges;
  for (std::uint32_t id = 0; id < graph.states.size(); ++id)
    for (const auto& edge : graph.edges[id])
      edges.insert({graph.states[id], edge.pattern, graph.states[edge.to]});
  EXPECT_EQ(edges, oracle.edges);

  // The symbolic stable-reachable set must cover the oracle BFS (it also
  // contains stable states only reachable through racing vectors).
  const auto stable_explicit =
      explicit_stable_reachable(netlist, reset, kSettle);
  const auto stable_symbolic =
      cssg.encoding().all_states_cur(cssg.stable_reachable());
  EXPECT_EQ(std::set<std::vector<bool>>(stable_symbolic.begin(),
                                        stable_symbolic.end()),
            stable_explicit);
}

class CssgDifferential
    : public ::testing::TestWithParam<std::pair<const char*,
                                                fixtures::Circuit (*)()>> {};

TEST_P(CssgDifferential, SymbolicMatchesExplicitForEveryOrder) {
  const fixtures::Circuit fix = GetParam().second();
  const OracleCssg oracle = oracle_cssg(fix.netlist, fix.reset, kSettle);
  ASSERT_FALSE(oracle.states.empty());
  for (const VarOrder order : all_orders())
    expect_cssg_matches_oracle(fix.netlist, fix.reset, oracle, order);
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, CssgDifferential,
    ::testing::Values(std::pair{"fig1a", &fixtures::fig1a},
                      std::pair{"fig1b", &fixtures::fig1b},
                      std::pair{"celem", &fixtures::celem},
                      std::pair{"latch", &fixtures::async_latch},
                      std::pair{"pipeline2", &fixtures::pipeline2}),
    [](const auto& param_info) { return std::string(param_info.param.first); });

class RandomCssgDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomCssgDifferential, SymbolicMatchesExplicitForEveryOrder) {
  fixtures::RandomNetlistOptions options;
  options.num_inputs = 3;
  options.num_gates = 6;
  const fixtures::Circuit fix =
      fixtures::random_netlist(GetParam(), options);
  const OracleCssg oracle = oracle_cssg(fix.netlist, fix.reset, kSettle);
  ASSERT_FALSE(oracle.states.empty());
  for (const VarOrder order : all_orders())
    expect_cssg_matches_oracle(fix.netlist, fix.reset, oracle, order);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCssgDifferential,
                         ::testing::Values(3u, 7u, 11u, 19u, 23u));

// --- engine invariance across ordering configurations -------------------------

AtpgOptions engine_options(VarOrder order, bool reorder, std::size_t threads) {
  AtpgOptions options;
  options.order = order;
  options.random_budget = 24;
  options.random_walk_len = 6;
  options.seed = 5;
  options.threads = threads;
  // per_fault_seconds stays 0 (wall clock off): the caps stay deterministic.
  if (reorder) options.reorder = test_reorder_policy();
  return options;
}

void expect_identical(const AtpgResult& base, const AtpgResult& other,
                      const std::string& config) {
  SCOPED_TRACE(config);
  EXPECT_EQ(base.outcomes, other.outcomes);
  EXPECT_EQ(base.sequences, other.sequences);
  EXPECT_EQ(base.stats.by_random, other.stats.by_random);
  EXPECT_EQ(base.stats.by_three_phase, other.stats.by_three_phase);
  EXPECT_EQ(base.stats.by_fault_sim, other.stats.by_fault_sim);
  EXPECT_EQ(base.stats.covered, other.stats.covered);
  EXPECT_EQ(base.stats.undetected, other.stats.undetected);
  EXPECT_EQ(base.stats.proven_redundant, other.stats.proven_redundant);
}

void check_engine_invariance(const Netlist& netlist,
                             const std::vector<bool>& reset,
                             const std::string& name, bool classify = false) {
  const auto faults = input_stuck_faults(netlist);
  std::optional<AtpgResult> base;
  for (const VarOrder order : all_orders()) {
    for (const bool reorder : {false, true}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        AtpgOptions options = engine_options(order, reorder, threads);
        options.classify_undetectable = classify;
        AtpgEngine engine(netlist, reset, options);
        const AtpgResult result = engine.run(faults);
        const std::string config = name + " order=" +
                                   var_order_name(order) +
                                   " reorder=" + (reorder ? "on" : "off") +
                                   " threads=" + std::to_string(threads);
        if (!base) {
          base = result;
          // The baseline must be meaningful, not vacuous.
          EXPECT_GT(base->stats.total_faults, 0u) << config;
        } else {
          expect_identical(*base, result, config);
        }
      }
    }
  }
}

TEST(EngineDifferential, Fig1aInvariantAcrossConfigs) {
  const fixtures::Circuit c = fixtures::fig1a();
  check_engine_invariance(c.netlist, c.reset, "fig1a");
}

TEST(EngineDifferential, Pipeline2InvariantAcrossConfigs) {
  const fixtures::Circuit c = fixtures::pipeline2();
  check_engine_invariance(c.netlist, c.reset, "pipeline2");
}

TEST(EngineDifferential, Pipeline2WithClassifierInvariant) {
  const fixtures::Circuit c = fixtures::pipeline2();
  check_engine_invariance(c.netlist, c.reset, "pipeline2+classify",
                          /*classify=*/true);
}

TEST(EngineDifferential, RandomNetlistsInvariantAcrossConfigs) {
  for (const std::uint64_t seed : {7u, 19u}) {
    fixtures::RandomNetlistOptions options;
    options.num_inputs = 3;
    options.num_gates = 6;
    const fixtures::Circuit c = fixtures::random_netlist(seed, options);
    check_engine_invariance(c.netlist, c.reset,
                            "random" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace xatpg
