#!/usr/bin/env python3
"""Dead-link checker for the repo's markdown documentation.

Scans README.md and docs/*.md (or the files given on the command line)
for markdown links `[text](target)` and verifies every *relative* target:

  * the referenced file or directory exists (relative to the containing
    document), and
  * if the target carries a `#fragment`, the referenced markdown file has
    a heading whose GitHub-style anchor slug matches.

External targets (http://, https://, mailto:) are out of scope — CI must
not flake on the network.  Exit 0 when every link resolves, 1 otherwise,
printing one `file:line: message` per dead link.  Runs as the
`lint_doc_links` ctest entry and in the CI lint job.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def heading_anchors(path: Path) -> set[str]:
    """GitHub-style anchor slugs for every heading in a markdown file."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        text = match.group(1).strip()
        # Strip markdown emphasis/code/link syntax before slugging.
        text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
        text = re.sub(r"[`*_]", "", text)
        slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
        slug = slug.replace(" ", "-")
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(doc: Path, repo_root: Path) -> list[str]:
    errors: list[str] = []
    in_fence = False
    for lineno, line in enumerate(
        doc.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            path_part, _, fragment = target.partition("#")
            if not path_part:  # intra-document "#section"
                dest = doc
            else:
                dest = (doc.parent / path_part).resolve()
                try:
                    dest.relative_to(repo_root)
                except ValueError:
                    errors.append(
                        f"{doc}:{lineno}: link '{target}' escapes the repo"
                    )
                    continue
                if not dest.exists():
                    errors.append(
                        f"{doc}:{lineno}: dead link '{target}' "
                        f"(no such file: {dest})"
                    )
                    continue
            if fragment:
                if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                    errors.append(
                        f"{doc}:{lineno}: link '{target}' has an anchor but "
                        f"'{dest.name}' is not a markdown file"
                    )
                elif fragment.lower() not in heading_anchors(dest):
                    errors.append(
                        f"{doc}:{lineno}: dead anchor '#{fragment}' "
                        f"(no matching heading in {dest.name})"
                    )
    return errors


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if len(argv) > 1:
        docs = [Path(a).resolve() for a in argv[1:]]
    else:
        docs = sorted(
            [repo_root / "README.md", *(repo_root / "docs").glob("*.md")]
        )
    errors: list[str] = []
    for doc in docs:
        if not doc.exists():
            errors.append(f"{doc}: no such file")
            continue
        errors.extend(check_file(doc, repo_root))
    for err in errors:
        print(err, file=sys.stderr)
    print(
        f"check_doc_links: {len(docs)} files, "
        f"{'FAIL (' + str(len(errors)) + ' dead links)' if errors else 'OK'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
