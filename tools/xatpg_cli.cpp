// xatpg — command-line front end of the library.  The circuit commands
// (run/cssg/export) are driven exclusively through the installed public API
// (include/xatpg; no src/ internals), which makes them a living proof that
// the facade is complete; the perf commands (bench/bench-compare)
// additionally link the in-tree corpus harness (src/perf), which itself
// drives every circuit through the same Session facade.
//
//   xatpg run    --circuit <name|file.xnl|file.bench> [--style si|bd]
//                [--faults input|output|both] [--threads N] [--seed N]
//                [--k N] [--random-budget N] [--reorder] [--classify]
//                [--progress] [--json]
//   xatpg cssg   --circuit ... [--json | --dot] [--out FILE]
//   xatpg export --circuit ... [--out FILE] [run flags]
//   xatpg bench  [--threads N | --threads-sweep] [--seed N] [--reorder]
//                [--filter SUBSTR] [--host TAG] [--json] [--out FILE]
//   xatpg bench-compare BASELINE.json CURRENT.json
//                [--max-regress PCT] [--min-cpu-ms MS]
//
// `run --json` emits the paper's table columns (tot/cov per universe,
// rnd/3-ph/sim, BDD node accounting, CPU time) as a single JSON object.
// `bench --json` emits the versioned perf record (see src/perf/perf.hpp);
// `bench-compare` diffs two records and exits 1 on any regression — the CI
// perf gate is exactly this command against bench/baseline.json.
// Typed errors (xatpg::Error) print to stderr and exit 1; usage errors
// exit 2.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "perf/perf.hpp"
#include "util/check.hpp"
#include "xatpg/xatpg.hpp"

namespace {

using namespace xatpg;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <command> [flags]\n"
      << "\n"
      << "commands:\n"
      << "  run     full ATPG flow (random TPG -> 3-phase -> fault sim)\n"
      << "  cssg    CSSG abstraction statistics (--dot for graphviz)\n"
      << "  export  generate and print the synchronous test program\n"
      << "  bench   run the perf corpus; --json emits the versioned record\n"
      << "  bench-compare BASELINE CURRENT   diff two records; exit 1 on\n"
      << "          coverage drop or node/CPU regression (the CI perf gate)\n"
      << "\n"
      << "flags:\n"
      << "  --circuit X        benchmark name (chu150, ebergen, fig1a, ...)\n"
      << "                     or a .xnl / .bench netlist file path\n"
      << "  --style si|bd      speed-independent (default) or bounded-delay\n"
      << "  --faults F         input|output|both (run default: both;\n"
      << "                     export default: input)\n"
      << "  --threads N        fault-parallel workers (0 = hardware)\n"
      << "  --threads-sweep    bench: run the corpus at threads 1,2,4,8 and\n"
      << "                     record the scaling curve (speedup/efficiency\n"
      << "                     per thread count)\n"
      << "  --seed N           random TPG seed\n"
      << "  --k N              settle bound per test cycle\n"
      << "  --random-budget N  vectors spent in random TPG\n"
      << "  --reorder          dynamic BDD variable reordering (sifting)\n"
      << "  --classify         a-priori undetectable-fault classification\n"
      << "  --progress         stream phase/progress events to stderr\n"
      << "  --json             machine-readable output\n"
      << "  --dot              cssg: graphviz dump instead of statistics\n"
      << "  --out FILE         write output to FILE instead of stdout\n"
      << "  --filter SUBSTR    bench: only corpus ids containing SUBSTR\n"
      << "  --host TAG         bench: host tag stored in the record (CPU\n"
      << "                     gates only fire between equal tags; default\n"
      << "                     $XATPG_BENCH_HOST)\n"
      << "  --max-regress PCT  bench-compare: node/CPU bound (default 25)\n"
      << "  --min-cpu-ms MS    bench-compare: per-circuit CPU gate floor\n"
      << "                     (default 25)\n";
  return 2;
}

struct CliArgs {
  std::string command;
  std::string circuit;
  SynthStyle style = SynthStyle::SpeedIndependent;
  std::string faults;  ///< resolved after parsing: run=both, export=input
  bool json = false;
  bool dot = false;
  bool progress = false;
  bool threads_sweep = false;          ///< bench: record the scaling curve
  std::string out;
  std::string filter;                  ///< bench: corpus id substring
  std::string host;                    ///< bench: record host tag
  double max_regress = 0.25;           ///< bench-compare: node/CPU bound
  double min_cpu_ms = 25.0;            ///< bench-compare: CPU gate floor
  std::vector<std::string> positional; ///< bench-compare: the two records
  AtpgOptions options;
};

std::optional<std::uint64_t> parse_u64(const std::string& text,
                                       std::uint64_t max_value) {
  if (text.empty() || text[0] == '-') return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    // Exact overflow guard: value*10+digit <= max_value, without wrapping
    // even when max_value is the full 2^64-1 range (--seed).
    if (value > (max_value - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

/// Parses argv into `args`; returns false (after a diagnostic) on bad input.
bool parse_args(int argc, char** argv, CliArgs& args) {
  args.command = argv[1];
  if (args.command != "run" && args.command != "cssg" &&
      args.command != "export" && args.command != "bench" &&
      args.command != "bench-compare") {
    std::cerr << "unknown command '" << args.command << "'\n";
    return false;
  }
  if (const char* host_env = std::getenv("XATPG_BENCH_HOST"))
    args.host = host_env;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    const auto count = [&](std::uint64_t max) -> std::optional<std::uint64_t> {
      const auto text = value();
      if (!text) return std::nullopt;
      const auto parsed = parse_u64(*text, max);
      if (!parsed)
        std::cerr << "invalid " << flag << " value '" << *text << "'\n";
      return parsed;
    };
    if (flag == "--circuit") {
      const auto v = value();
      if (!v) return false;
      args.circuit = *v;
    } else if (flag == "--style") {
      const auto v = value();
      if (!v) return false;
      if (*v == "si") {
        args.style = SynthStyle::SpeedIndependent;
      } else if (*v == "bd") {
        args.style = SynthStyle::BoundedDelay;
      } else {
        std::cerr << "invalid --style '" << *v << "' (want si or bd)\n";
        return false;
      }
    } else if (flag == "--faults") {
      const auto v = value();
      if (!v) return false;
      if (*v != "input" && *v != "output" && *v != "both") {
        std::cerr << "invalid --faults '" << *v
                  << "' (want input, output or both)\n";
        return false;
      }
      args.faults = *v;
    } else if (flag == "--threads") {
      const auto v = count(AtpgOptions::kMaxThreads);
      if (!v) return false;
      args.options.threads = static_cast<std::size_t>(*v);
    } else if (flag == "--seed") {
      const auto v = count(~std::uint64_t{0});
      if (!v) return false;
      args.options.seed = *v;
    } else if (flag == "--k") {
      const auto v = count(1u << 20);
      if (!v) return false;
      args.options.k = static_cast<std::size_t>(*v);
      args.options.sim.k = static_cast<std::size_t>(*v);
    } else if (flag == "--random-budget") {
      const auto v = count(1u << 30);
      if (!v) return false;
      args.options.random_budget = static_cast<std::size_t>(*v);
    } else if (flag == "--threads-sweep") {
      args.threads_sweep = true;
    } else if (flag == "--reorder") {
      args.options.reorder.enabled = true;
    } else if (flag == "--classify") {
      args.options.classify_undetectable = true;
    } else if (flag == "--progress") {
      args.progress = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--dot") {
      args.dot = true;
    } else if (flag == "--out") {
      const auto v = value();
      if (!v) return false;
      args.out = *v;
    } else if (flag == "--filter") {
      const auto v = value();
      if (!v) return false;
      args.filter = *v;
    } else if (flag == "--host") {
      const auto v = value();
      if (!v) return false;
      args.host = *v;
    } else if (flag == "--max-regress") {
      const auto v = count(1000);
      if (!v) return false;
      args.max_regress = static_cast<double>(*v) / 100.0;
    } else if (flag == "--min-cpu-ms") {
      const auto v = count(1u << 30);
      if (!v) return false;
      args.min_cpu_ms = static_cast<double>(*v);
    } else if (!flag.empty() && flag[0] != '-' &&
               args.command == "bench-compare") {
      args.positional.push_back(flag);
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  if (args.command == "bench-compare") {
    if (args.positional.size() != 2) {
      std::cerr << "bench-compare needs exactly two record files "
                   "(baseline, current)\n";
      return false;
    }
  } else if (args.command != "bench" && args.circuit.empty()) {
    std::cerr << "--circuit is required\n";
    return false;
  }
  if (args.faults.empty())
    args.faults = args.command == "export" ? "input" : "both";
  return true;
}

bool looks_like_file(const std::string& circuit) {
  return circuit.find('/') != std::string::npos ||
         circuit.find(".xnl") != std::string::npos ||
         circuit.find(".bench") != std::string::npos;
}

bool looks_like_bench_file(const std::string& circuit) {
  return circuit.size() >= 6 &&
         circuit.compare(circuit.size() - 6, 6, ".bench") == 0;
}

using perf::json_escape;

/// Stderr observer for --progress: phase transitions and a coarse heartbeat.
class StderrObserver : public RunObserver {
 public:
  void on_phase(RunPhase phase) override {
    std::cerr << "[xatpg] phase: " << run_phase_name(phase) << "\n";
  }
  void on_fault_resolved(std::size_t index, const FaultOutcome& outcome) override {
    std::cerr << "[xatpg] fault #" << index << " resolved: "
              << (outcome.proven_redundant ? "proven-redundant"
                                           : covered_by_name(outcome.covered_by))
              << "\n";
  }
  void on_progress(const RunProgress& progress) override {
    std::cerr << "[xatpg] " << run_phase_name(progress.phase) << ": "
              << progress.faults_resolved << "/" << progress.faults_total
              << " resolved, " << progress.sequences_committed
              << " sequences";
    for (const ShardBddStats& shard : progress.shards)
      if (shard.live_nodes != 0)
        std::cerr << " | shard" << shard.shard << " " << shard.live_nodes
                  << " nodes";
    std::cerr << "\n";
  }
};

void print_universe_json(std::ostream& out, const char* key,
                         const AtpgStats& stats) {
  out << "  \"" << key << "\": {\"total\": " << stats.total_faults
      << ", \"covered\": " << stats.covered << ", \"rnd\": " << stats.by_random
      << ", \"three_phase\": " << stats.by_three_phase
      << ", \"sim\": " << stats.by_fault_sim
      << ", \"undetected\": " << stats.undetected
      << ", \"proven_redundant\": " << stats.proven_redundant
      << ", \"gave_up\": " << stats.gave_up
      << ", \"coverage\": " << perf::json_double(stats.coverage()) << "}";
}

void print_universe_text(std::ostream& out, const char* title,
                         const AtpgStats& stats) {
  out << title << ": " << stats.covered << "/" << stats.total_faults
      << " covered (" << 100.0 * stats.coverage() << "%)  rnd " << stats.by_random
      << "  3-ph " << stats.by_three_phase << "  sim " << stats.by_fault_sim;
  if (stats.proven_redundant != 0)
    out << "  redundant " << stats.proven_redundant;
  if (stats.gave_up != 0) out << "  gave-up " << stats.gave_up;
  out << "\n";
}

int fail(const Error& error) {
  std::cerr << "xatpg: " << error.to_string() << "\n";
  return 1;
}

int cmd_run(Session& session, const CliArgs& args, std::ostream& out) {
  StderrObserver observer;
  RunObserver* obs = args.progress ? &observer : nullptr;

  const auto t0 = std::chrono::steady_clock::now();
  std::optional<AtpgResult> out_result, in_result;
  if (args.faults == "output" || args.faults == "both") {
    auto r = session.run(session.output_stuck_faults(), obs);
    if (!r) return fail(r.error());
    out_result = std::move(r.value());
  }
  if (args.faults == "input" || args.faults == "both") {
    auto r = session.run(session.input_stuck_faults(), obs);
    if (!r) return fail(r.error());
    in_result = std::move(r.value());
  }
  const double cpu_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  const ShardBddStats bdd = session.bdd_stats();

  if (args.json) {
    out << "{\n  \"circuit\": \"" << json_escape(session.circuit_name())
        << "\",\n  \"style\": \""
        << (args.style == SynthStyle::SpeedIndependent ? "si" : "bd")
        << "\",\n  \"signals\": " << session.num_signals()
        << ",\n  \"inputs\": " << session.num_inputs()
        << ",\n  \"outputs\": " << session.num_outputs()
        << ",\n  \"pins\": " << session.num_pins() << ",\n";
    if (out_result) {
      print_universe_json(out, "output_stuck", out_result->stats);
      out << ",\n";
    }
    if (in_result) {
      print_universe_json(out, "input_stuck", in_result->stats);
      out << ",\n";
    }
    out << "  \"sequences\": "
        << (in_result   ? in_result->sequences.size()
            : out_result ? out_result->sequences.size()
                         : 0)
        << ",\n  \"cancelled\": "
        << (((in_result && in_result->cancelled) ||
             (out_result && out_result->cancelled))
                ? "true"
                : "false")
        << ",\n  \"bdd\": {\"peak_nodes\": " << bdd.peak_nodes
        << ", \"live_nodes\": " << bdd.live_nodes
        << ", \"base_nodes\": " << bdd.base_nodes
        << ", \"delta_peak\": " << bdd.delta_peak
        << ", \"reorders\": " << bdd.reorders
        << ", \"cache_lookups\": " << bdd.cache_lookups
        << ", \"cache_hits\": " << bdd.cache_hits
        << ", \"cache_hit_rate\": " << perf::json_double(bdd.cache_hit_rate())
        << ", \"unique_load\": " << perf::json_double(bdd.unique_load) << "}"
        << ",\n  \"cpu_ms\": " << perf::json_double(cpu_ms) << "\n}\n";
  } else {
    out << "circuit '" << session.circuit_name() << "': "
        << session.num_inputs() << " inputs, " << session.num_outputs()
        << " outputs, " << session.num_signals() << " signals, "
        << session.num_pins() << " pins\n";
    if (out_result) print_universe_text(out, "output stuck-at", out_result->stats);
    if (in_result) print_universe_text(out, "input stuck-at", in_result->stats);
    out << "BDD: peak " << bdd.peak_nodes << " nodes, live " << bdd.live_nodes
        << ", sift passes " << bdd.reorders << ", cache hit rate "
        << 100.0 * bdd.cache_hit_rate() << "%, unique load "
        << bdd.unique_load << "\n";
    out << "CPU: " << cpu_ms << " ms\n";
  }
  return 0;
}

int cmd_cssg(Session& session, const CliArgs& args, std::ostream& out) {
  if (args.dot) {
    out << session.cssg_dot();
    return 0;
  }
  const CssgStats& stats = session.cssg_stats();
  if (args.json) {
    out << "{\n  \"circuit\": \"" << json_escape(session.circuit_name())
        << "\",\n  \"reachable_states\": " << stats.reachable_states
        << ",\n  \"stable_states\": " << stats.stable_states
        << ",\n  \"tcr_pairs\": " << stats.tcr_pairs
        << ",\n  \"nonconfluent_pairs\": " << stats.nonconfluent_pairs
        << ",\n  \"unstable_pairs\": " << stats.unstable_pairs
        << ",\n  \"cssg_edges\": " << stats.cssg_edges
        << ",\n  \"cssg_reachable_states\": " << stats.cssg_reachable_states
        << ",\n  \"peak_bdd_nodes\": " << stats.peak_bdd_nodes << "\n}\n";
  } else {
    out << "circuit '" << session.circuit_name() << "'\n"
        << "TCSG reachable states: " << stats.reachable_states << " ("
        << stats.stable_states << " stable)\n"
        << "TCR_k pairs:           " << stats.tcr_pairs << "\n"
        << "pruned non-confluent:  " << stats.nonconfluent_pairs << "\n"
        << "pruned oscillating:    " << stats.unstable_pairs << "\n"
        << "CSSG edges:            " << stats.cssg_edges << "\n"
        << "CSSG reachable states: " << stats.cssg_reachable_states << "\n"
        << "peak BDD nodes:        " << stats.peak_bdd_nodes << "\n";
  }
  return 0;
}

int cmd_bench(const CliArgs& args, std::ostream& out) {
  std::vector<perf::CorpusEntry> corpus = perf::default_corpus();
  if (!args.filter.empty()) {
    std::erase_if(corpus, [&](const perf::CorpusEntry& entry) {
      return entry.id.find(args.filter) == std::string::npos;
    });
    if (corpus.empty()) {
      std::cerr << "--filter '" << args.filter
                << "' matches no corpus entry\n";
      return 2;
    }
  }
  try {
    const perf::BenchRecord record =
        args.threads_sweep
            ? perf::run_sweep(corpus, args.options, args.host, {1, 2, 4, 8},
                              &std::cerr)
            : perf::run_corpus(corpus, args.options, args.host, &std::cerr);
    if (args.json) {
      perf::write_json(record, out);
    } else {
      out << "corpus: " << record.circuits.size() << " circuits, "
          << record.total_covered() << "/" << record.total_faults()
          << " faults covered";
      if (record.total_gave_up() > 0)
        out << " (" << record.total_gave_up() << " gave up)";
      out << ", " << record.total_peak_nodes() << " summed peak nodes, "
          << record.total_cpu_ms() << " ms\n";
      for (const perf::SweepPoint& point : record.sweep)
        out << "  threads " << point.threads << ": " << point.cpu_ms
            << " ms, speedup " << point.speedup << "x, efficiency "
            << point.efficiency << ", peak resident "
            << point.peak_resident_nodes << " nodes (host_cores "
            << record.host_cores << ")\n";
    }
  } catch (const CheckError& e) {
    std::cerr << "xatpg bench: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int cmd_bench_compare(const CliArgs& args, std::ostream& out) {
  const auto load = [](const std::string& path)
      -> std::optional<perf::BenchRecord> {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open '" << path << "' for reading\n";
      return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      return perf::parse_record(text.str());
    } catch (const CheckError& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return std::nullopt;
    }
  };
  const auto baseline = load(args.positional[0]);
  const auto current = load(args.positional[1]);
  if (!baseline || !current) return 1;

  perf::CompareOptions options;
  options.max_node_regression = args.max_regress;
  options.max_cpu_regression = args.max_regress;
  options.min_cpu_ms = args.min_cpu_ms;
  const perf::Comparison comparison = perf::compare(*baseline, *current, options);
  for (const std::string& message : comparison.notes)
    out << "note: " << message << "\n";
  for (const std::string& message : comparison.failures)
    out << "FAIL: " << message << "\n";
  out << (comparison.ok ? "perf gate: OK (" : "perf gate: FAILED (")
      << comparison.failures.size() << " failures, "
      << comparison.notes.size() << " notes)\n";
  return comparison.ok ? 0 : 1;
}

int cmd_export(Session& session, const CliArgs& args, std::ostream& out) {
  // --faults selects the exported universe; "both" concatenates the input
  // and output models into one run (default: input, the paper's program).
  std::vector<Fault> universe;
  if (args.faults == "input" || args.faults == "both")
    universe = session.input_stuck_faults();
  if (args.faults == "output" || args.faults == "both") {
    const auto output = session.output_stuck_faults();
    universe.insert(universe.end(), output.begin(), output.end());
  }
  StderrObserver observer;
  auto result = session.run(universe, args.progress ? &observer : nullptr);
  if (!result) return fail(result.error());
  const auto program = session.test_program(result.value());
  if (!program) return fail(program.error());
  out << program.value();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  CliArgs args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  std::ofstream file;
  if (!args.out.empty()) {
    file.open(args.out);
    if (!file)
      return fail(Error{ErrorCode::ResourceError,
                        "cannot open '" + args.out + "' for writing"});
  }
  std::ostream& out = args.out.empty() ? std::cout : file;

  if (args.command == "bench") return cmd_bench(args, out);
  if (args.command == "bench-compare") return cmd_bench_compare(args, out);

  Expected<Session> session =
      looks_like_bench_file(args.circuit)
          ? Session::from_bench_file(args.circuit, args.options)
      : looks_like_file(args.circuit)
          ? Session::from_xnl_file(args.circuit, args.options)
          : Session::from_benchmark(args.circuit, args.style, args.options);
  if (!session) return fail(session.error());

  if (args.command == "run") return cmd_run(*session, args, out);
  if (args.command == "cssg") return cmd_cssg(*session, args, out);
  return cmd_export(*session, args, out);
}
