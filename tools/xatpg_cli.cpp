// xatpg — command-line front end of the library.  The circuit commands
// (run/cssg/export) are driven exclusively through the installed public API
// (include/xatpg; no src/ internals), which makes them a living proof that
// the facade is complete; the perf commands (bench/bench-compare)
// additionally link the in-tree corpus harness (src/perf), which itself
// drives every circuit through the same Session facade.
//
//   xatpg run    --circuit <name|file.xnl|file.bench> [--style si|bd]
//                [--faults input|output|both] [--threads N] [--seed N]
//                [--k N] [--random-budget N] [--reorder] [--classify]
//                [--progress] [--json]
//   xatpg cssg   --circuit ... [--json | --dot] [--out FILE]
//   xatpg export --circuit ... [--out FILE] [run flags]
//   xatpg bench  [--threads N | --threads-sweep] [--seed N] [--reorder]
//                [--filter SUBSTR] [--host TAG] [--json] [--out FILE]
//   xatpg bench-compare BASELINE.json CURRENT.json
//                [--max-regress PCT] [--min-cpu-ms MS]
//   xatpg serve  (--pipe | --socket PATH) [--serve-workers N]
//                [--queue-capacity N] [--cache-bytes N]
//                [--max-job-seconds N] [run option flags as defaults]
//   xatpg client (--pipe | --socket PATH) --circuit ... [--repeat N]
//                [--progress] [--shutdown op|sigterm] [run option flags]
//
// `run --json` emits the paper's table columns (tot/cov per universe,
// rnd/3-ph/sim, BDD node accounting, CPU time) as a single JSON object.
// `bench --json` emits the versioned perf record (see src/perf/perf.hpp);
// `bench-compare` diffs two records and exits 1 on any regression — the CI
// perf gate is exactly this command against bench/baseline.json.
// `serve` runs the long-lived ATPG daemon (src/serve, docs/PROTOCOL.md);
// `client` drives one — in --pipe mode it forks its own binary as the
// daemon — echoing every received frame to stdout (the CI smoke validates
// them) and propagating the daemon's exit status.
//
// Exit-code contract: every typed failure (xatpg::Error, any taxonomy code)
// prints ONE protocol error frame — {"v":1,"type":"error","error":{"code":
// ...,"message":...}} — to stderr and exits 1, so scripts can parse failure
// categories without scraping prose.  Usage errors exit 2.
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perf/perf.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "xatpg/xatpg.hpp"

namespace {

using namespace xatpg;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <command> [flags]\n"
      << "\n"
      << "commands:\n"
      << "  run     full ATPG flow (random TPG -> 3-phase -> fault sim)\n"
      << "  cssg    CSSG abstraction statistics (--dot for graphviz)\n"
      << "  export  generate and print the synchronous test program\n"
      << "  bench   run the perf corpus; --json emits the versioned record\n"
      << "  bench-compare BASELINE CURRENT   diff two records; exit 1 on\n"
      << "          coverage drop or node/CPU regression (the CI perf gate)\n"
      << "  serve   long-lived ATPG daemon (NDJSON protocol, see\n"
      << "          docs/PROTOCOL.md); --pipe serves stdin/stdout,\n"
      << "          --socket PATH serves an AF_UNIX socket\n"
      << "  client  drive a daemon (forks one in --pipe mode), echoing\n"
      << "          every received frame to stdout\n"
      << "\n"
      << "flags:\n"
      << "  --circuit X        benchmark name (chu150, ebergen, fig1a, ...)\n"
      << "                     or a .xnl / .bench netlist file path\n"
      << "  --style si|bd      speed-independent (default) or bounded-delay\n"
      << "  --faults F         input|output|both (run default: both;\n"
      << "                     export default: input)\n"
      << "  --threads N        fault-parallel workers (0 = hardware)\n"
      << "  --threads-sweep    bench: run the corpus at threads 1,2,4,8 and\n"
      << "                     record the scaling curve (speedup/efficiency\n"
      << "                     per thread count)\n"
      << "  --seed N           random TPG seed\n"
      << "  --k N              settle bound per test cycle\n"
      << "  --random-budget N  vectors spent in random TPG\n"
      << "  --reorder          dynamic BDD variable reordering (sifting)\n"
      << "  --classify         a-priori undetectable-fault classification\n"
      << "  --progress         stream phase/progress events to stderr\n"
      << "  --json             machine-readable output\n"
      << "  --dot              cssg: graphviz dump instead of statistics\n"
      << "  --out FILE         write output to FILE instead of stdout\n"
      << "  --filter SUBSTR    bench: only corpus ids containing SUBSTR\n"
      << "  --serve            bench: measure the serve daemon over the\n"
      << "                     corpus (req/s, p50/p99 cold vs cached)\n"
      << "  --host TAG         bench: host tag stored in the record (CPU\n"
      << "                     gates only fire between equal tags; default\n"
      << "                     $XATPG_BENCH_HOST)\n"
      << "  --max-regress PCT  bench-compare: node/CPU bound (default 25)\n"
      << "  --min-cpu-ms MS    bench-compare: per-circuit CPU gate floor\n"
      << "                     (default 25)\n"
      << "  --pipe             serve/client: daemon over stdin/stdout\n"
      << "  --socket PATH      serve/client: daemon over an AF_UNIX socket\n"
      << "  --serve-workers N  serve: worker pool size (default 1)\n"
      << "  --queue-capacity N serve: bounded job-queue depth (default 16)\n"
      << "  --cache-bytes N    serve: result-cache byte cap (default 8MiB)\n"
      << "  --max-job-seconds N  serve: per-job time budget (0 = unlimited)\n"
      << "  --repeat N         client: submit the request N times (a repeat\n"
      << "                     exercises the daemon's result cache)\n"
      << "  --shutdown W       client: end the daemon via 'op' (a shutdown\n"
      << "                     request frame, default) or 'sigterm'\n";
  return 2;
}

struct CliArgs {
  std::string command;
  std::string circuit;
  SynthStyle style = SynthStyle::SpeedIndependent;
  std::string faults;  ///< resolved after parsing: run=both, export=input
  bool json = false;
  bool dot = false;
  bool progress = false;
  bool threads_sweep = false;          ///< bench: record the scaling curve
  bool serve_bench = false;            ///< bench: daemon throughput/latency
  std::string out;
  std::string filter;                  ///< bench: corpus id substring
  std::string host;                    ///< bench: record host tag
  double max_regress = 0.25;           ///< bench-compare: node/CPU bound
  double min_cpu_ms = 25.0;            ///< bench-compare: CPU gate floor
  std::vector<std::string> positional; ///< bench-compare: the two records
  bool pipe = false;                   ///< serve/client: stdin/stdout daemon
  std::string socket_path;             ///< serve/client: AF_UNIX daemon
  std::size_t serve_workers = 1;
  std::size_t queue_capacity = 16;
  std::size_t cache_bytes = std::size_t{8} << 20;
  double max_job_seconds = 0;
  std::size_t repeat = 1;              ///< client: submissions of the request
  std::string shutdown_mode = "op";    ///< client: "op" | "sigterm"
  AtpgOptions options;
};

std::optional<std::uint64_t> parse_u64(const std::string& text,
                                       std::uint64_t max_value) {
  if (text.empty() || text[0] == '-') return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    // Exact overflow guard: value*10+digit <= max_value, without wrapping
    // even when max_value is the full 2^64-1 range (--seed).
    if (value > (max_value - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

/// Parses argv into `args`; returns false (after a diagnostic) on bad input.
bool parse_args(int argc, char** argv, CliArgs& args) {
  args.command = argv[1];
  if (args.command != "run" && args.command != "cssg" &&
      args.command != "export" && args.command != "bench" &&
      args.command != "bench-compare" && args.command != "serve" &&
      args.command != "client") {
    std::cerr << "unknown command '" << args.command << "'\n";
    return false;
  }
  if (const char* host_env = std::getenv("XATPG_BENCH_HOST"))
    args.host = host_env;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    const auto count = [&](std::uint64_t max) -> std::optional<std::uint64_t> {
      const auto text = value();
      if (!text) return std::nullopt;
      const auto parsed = parse_u64(*text, max);
      if (!parsed)
        std::cerr << "invalid " << flag << " value '" << *text << "'\n";
      return parsed;
    };
    if (flag == "--circuit") {
      const auto v = value();
      if (!v) return false;
      args.circuit = *v;
    } else if (flag == "--style") {
      const auto v = value();
      if (!v) return false;
      if (*v == "si") {
        args.style = SynthStyle::SpeedIndependent;
      } else if (*v == "bd") {
        args.style = SynthStyle::BoundedDelay;
      } else {
        std::cerr << "invalid --style '" << *v << "' (want si or bd)\n";
        return false;
      }
    } else if (flag == "--faults") {
      const auto v = value();
      if (!v) return false;
      if (*v != "input" && *v != "output" && *v != "both") {
        std::cerr << "invalid --faults '" << *v
                  << "' (want input, output or both)\n";
        return false;
      }
      args.faults = *v;
    } else if (flag == "--threads") {
      const auto v = count(AtpgOptions::kMaxThreads);
      if (!v) return false;
      args.options.threads = static_cast<std::size_t>(*v);
    } else if (flag == "--seed") {
      const auto v = count(~std::uint64_t{0});
      if (!v) return false;
      args.options.seed = *v;
    } else if (flag == "--k") {
      const auto v = count(1u << 20);
      if (!v) return false;
      args.options.k = static_cast<std::size_t>(*v);
      args.options.sim.k = static_cast<std::size_t>(*v);
    } else if (flag == "--random-budget") {
      const auto v = count(1u << 30);
      if (!v) return false;
      args.options.random_budget = static_cast<std::size_t>(*v);
    } else if (flag == "--threads-sweep") {
      args.threads_sweep = true;
    } else if (flag == "--serve") {
      args.serve_bench = true;
    } else if (flag == "--reorder") {
      args.options.reorder.enabled = true;
    } else if (flag == "--classify") {
      args.options.classify_undetectable = true;
    } else if (flag == "--progress") {
      args.progress = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--dot") {
      args.dot = true;
    } else if (flag == "--out") {
      const auto v = value();
      if (!v) return false;
      args.out = *v;
    } else if (flag == "--filter") {
      const auto v = value();
      if (!v) return false;
      args.filter = *v;
    } else if (flag == "--host") {
      const auto v = value();
      if (!v) return false;
      args.host = *v;
    } else if (flag == "--max-regress") {
      const auto v = count(1000);
      if (!v) return false;
      args.max_regress = static_cast<double>(*v) / 100.0;
    } else if (flag == "--min-cpu-ms") {
      const auto v = count(1u << 30);
      if (!v) return false;
      args.min_cpu_ms = static_cast<double>(*v);
    } else if (flag == "--pipe") {
      args.pipe = true;
    } else if (flag == "--socket") {
      const auto v = value();
      if (!v) return false;
      args.socket_path = *v;
    } else if (flag == "--serve-workers") {
      const auto v = count(1024);
      if (!v) return false;
      args.serve_workers = static_cast<std::size_t>(*v);
    } else if (flag == "--queue-capacity") {
      const auto v = count(1u << 20);
      if (!v) return false;
      args.queue_capacity = static_cast<std::size_t>(*v);
    } else if (flag == "--cache-bytes") {
      const auto v = count(std::uint64_t{1} << 40);
      if (!v) return false;
      args.cache_bytes = static_cast<std::size_t>(*v);
    } else if (flag == "--max-job-seconds") {
      const auto v = count(1u << 20);
      if (!v) return false;
      args.max_job_seconds = static_cast<double>(*v);
    } else if (flag == "--repeat") {
      const auto v = count(1u << 20);
      if (!v) return false;
      args.repeat = static_cast<std::size_t>(*v);
    } else if (flag == "--shutdown") {
      const auto v = value();
      if (!v) return false;
      if (*v != "op" && *v != "sigterm") {
        std::cerr << "invalid --shutdown '" << *v << "' (want op or sigterm)\n";
        return false;
      }
      args.shutdown_mode = *v;
    } else if (!flag.empty() && flag[0] != '-' &&
               args.command == "bench-compare") {
      args.positional.push_back(flag);
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  if (args.command == "bench-compare") {
    if (args.positional.size() != 2) {
      std::cerr << "bench-compare needs exactly two record files "
                   "(baseline, current)\n";
      return false;
    }
  } else if (args.command == "serve" || args.command == "client") {
    if (args.pipe == !args.socket_path.empty()) {
      // Exactly one transport: neither or both is a usage error.
      std::cerr << args.command << " needs exactly one of --pipe or "
                   "--socket PATH\n";
      return false;
    }
    if (args.command == "client" && args.circuit.empty()) {
      std::cerr << "--circuit is required\n";
      return false;
    }
    if (args.command == "client" && args.shutdown_mode == "sigterm" &&
        !args.pipe) {
      std::cerr << "--shutdown sigterm needs --pipe (the client only owns "
                   "the daemon process it forked)\n";
      return false;
    }
  } else if (args.command == "bench") {
    if (args.serve_bench && args.threads_sweep) {
      std::cerr << "--serve and --threads-sweep are separate recordings; "
                   "run them as two bench invocations\n";
      return false;
    }
  } else if (args.circuit.empty()) {
    std::cerr << "--circuit is required\n";
    return false;
  }
  if (args.faults.empty())
    args.faults = args.command == "export" ? "input" : "both";
  return true;
}

bool looks_like_file(const std::string& circuit) {
  return circuit.find('/') != std::string::npos ||
         circuit.find(".xnl") != std::string::npos ||
         circuit.find(".bench") != std::string::npos;
}

bool looks_like_bench_file(const std::string& circuit) {
  return circuit.size() >= 6 &&
         circuit.compare(circuit.size() - 6, 6, ".bench") == 0;
}

using perf::json_escape;

/// Stderr observer for --progress: phase transitions and a coarse heartbeat.
class StderrObserver : public RunObserver {
 public:
  void on_phase(RunPhase phase) override {
    std::cerr << "[xatpg] phase: " << run_phase_name(phase) << "\n";
  }
  void on_fault_resolved(std::size_t index, const FaultOutcome& outcome) override {
    std::cerr << "[xatpg] fault #" << index << " resolved: "
              << (outcome.proven_redundant ? "proven-redundant"
                                           : covered_by_name(outcome.covered_by))
              << "\n";
  }
  void on_progress(const RunProgress& progress) override {
    std::cerr << "[xatpg] " << run_phase_name(progress.phase) << ": "
              << progress.faults_resolved << "/" << progress.faults_total
              << " resolved, " << progress.sequences_committed
              << " sequences";
    for (const ShardBddStats& shard : progress.shards)
      if (shard.live_nodes != 0)
        std::cerr << " | shard" << shard.shard << " " << shard.live_nodes
                  << " nodes";
    std::cerr << "\n";
  }
};

void print_universe_json(std::ostream& out, const char* key,
                         const AtpgStats& stats) {
  out << "  \"" << key << "\": {\"total\": " << stats.total_faults
      << ", \"covered\": " << stats.covered << ", \"rnd\": " << stats.by_random
      << ", \"three_phase\": " << stats.by_three_phase
      << ", \"sim\": " << stats.by_fault_sim
      << ", \"undetected\": " << stats.undetected
      << ", \"proven_redundant\": " << stats.proven_redundant
      << ", \"gave_up\": " << stats.gave_up
      << ", \"coverage\": " << perf::json_double(stats.coverage()) << "}";
}

void print_universe_text(std::ostream& out, const char* title,
                         const AtpgStats& stats) {
  out << title << ": " << stats.covered << "/" << stats.total_faults
      << " covered (" << 100.0 * stats.coverage() << "%)  rnd " << stats.by_random
      << "  3-ph " << stats.by_three_phase << "  sim " << stats.by_fault_sim;
  if (stats.proven_redundant != 0)
    out << "  redundant " << stats.proven_redundant;
  if (stats.gave_up != 0) out << "  gave-up " << stats.gave_up;
  out << "\n";
}

int fail(const Error& error) {
  // The exit-code contract (file header): one machine-readable protocol
  // error frame on stderr, exit 1, for EVERY taxonomy code.
  std::cerr << serve::error_frame("", error);
  return 1;
}

int cmd_run(Session& session, const CliArgs& args, std::ostream& out) {
  StderrObserver observer;
  RunObserver* obs = args.progress ? &observer : nullptr;

  const auto t0 = std::chrono::steady_clock::now();
  std::optional<AtpgResult> out_result, in_result;
  if (args.faults == "output" || args.faults == "both") {
    auto r = session.run(session.output_stuck_faults(), obs);
    if (!r) return fail(r.error());
    out_result = std::move(r.value());
  }
  if (args.faults == "input" || args.faults == "both") {
    auto r = session.run(session.input_stuck_faults(), obs);
    if (!r) return fail(r.error());
    in_result = std::move(r.value());
  }
  const double cpu_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  const ShardBddStats bdd = session.bdd_stats();

  if (args.json) {
    out << "{\n  \"circuit\": \"" << json_escape(session.circuit_name())
        << "\",\n  \"style\": \""
        << (args.style == SynthStyle::SpeedIndependent ? "si" : "bd")
        << "\",\n  \"signals\": " << session.num_signals()
        << ",\n  \"inputs\": " << session.num_inputs()
        << ",\n  \"outputs\": " << session.num_outputs()
        << ",\n  \"pins\": " << session.num_pins() << ",\n";
    if (out_result) {
      print_universe_json(out, "output_stuck", out_result->stats);
      out << ",\n";
    }
    if (in_result) {
      print_universe_json(out, "input_stuck", in_result->stats);
      out << ",\n";
    }
    out << "  \"sequences\": "
        << (in_result   ? in_result->sequences.size()
            : out_result ? out_result->sequences.size()
                         : 0)
        << ",\n  \"cancelled\": "
        << (((in_result && in_result->cancelled) ||
             (out_result && out_result->cancelled))
                ? "true"
                : "false")
        << ",\n  \"bdd\": {\"peak_nodes\": " << bdd.peak_nodes
        << ", \"live_nodes\": " << bdd.live_nodes
        << ", \"base_nodes\": " << bdd.base_nodes
        << ", \"delta_peak\": " << bdd.delta_peak
        << ", \"reorders\": " << bdd.reorders
        << ", \"cache_lookups\": " << bdd.cache_lookups
        << ", \"cache_hits\": " << bdd.cache_hits
        << ", \"cache_hit_rate\": " << perf::json_double(bdd.cache_hit_rate())
        << ", \"unique_load\": " << perf::json_double(bdd.unique_load) << "}"
        << ",\n  \"cpu_ms\": " << perf::json_double(cpu_ms) << "\n}\n";
  } else {
    out << "circuit '" << session.circuit_name() << "': "
        << session.num_inputs() << " inputs, " << session.num_outputs()
        << " outputs, " << session.num_signals() << " signals, "
        << session.num_pins() << " pins\n";
    if (out_result) print_universe_text(out, "output stuck-at", out_result->stats);
    if (in_result) print_universe_text(out, "input stuck-at", in_result->stats);
    out << "BDD: peak " << bdd.peak_nodes << " nodes, live " << bdd.live_nodes
        << ", sift passes " << bdd.reorders << ", cache hit rate "
        << 100.0 * bdd.cache_hit_rate() << "%, unique load "
        << bdd.unique_load << "\n";
    out << "CPU: " << cpu_ms << " ms\n";
  }
  return 0;
}

int cmd_cssg(Session& session, const CliArgs& args, std::ostream& out) {
  if (args.dot) {
    out << session.cssg_dot();
    return 0;
  }
  const CssgStats& stats = session.cssg_stats();
  if (args.json) {
    out << "{\n  \"circuit\": \"" << json_escape(session.circuit_name())
        << "\",\n  \"reachable_states\": " << stats.reachable_states
        << ",\n  \"stable_states\": " << stats.stable_states
        << ",\n  \"tcr_pairs\": " << stats.tcr_pairs
        << ",\n  \"nonconfluent_pairs\": " << stats.nonconfluent_pairs
        << ",\n  \"unstable_pairs\": " << stats.unstable_pairs
        << ",\n  \"cssg_edges\": " << stats.cssg_edges
        << ",\n  \"cssg_reachable_states\": " << stats.cssg_reachable_states
        << ",\n  \"peak_bdd_nodes\": " << stats.peak_bdd_nodes << "\n}\n";
  } else {
    out << "circuit '" << session.circuit_name() << "'\n"
        << "TCSG reachable states: " << stats.reachable_states << " ("
        << stats.stable_states << " stable)\n"
        << "TCR_k pairs:           " << stats.tcr_pairs << "\n"
        << "pruned non-confluent:  " << stats.nonconfluent_pairs << "\n"
        << "pruned oscillating:    " << stats.unstable_pairs << "\n"
        << "CSSG edges:            " << stats.cssg_edges << "\n"
        << "CSSG reachable states: " << stats.cssg_reachable_states << "\n"
        << "peak BDD nodes:        " << stats.peak_bdd_nodes << "\n";
  }
  return 0;
}

int cmd_bench(const CliArgs& args, std::ostream& out) {
  std::vector<perf::CorpusEntry> corpus = perf::default_corpus();
  if (!args.filter.empty()) {
    std::erase_if(corpus, [&](const perf::CorpusEntry& entry) {
      return entry.id.find(args.filter) == std::string::npos;
    });
    if (corpus.empty()) {
      std::cerr << "--filter '" << args.filter
                << "' matches no corpus entry\n";
      return 2;
    }
  }
  try {
    perf::BenchRecord record;
    if (args.serve_bench) {
      // Daemon throughput/latency: the engine numbers for these circuits
      // are the regular corpus record's job; this record carries only the
      // serve section (plus host/threads tags for the comparator).
      record.host = args.host;
      record.threads = args.options.threads;
      record.host_cores = std::thread::hardware_concurrency();
      record.serve = perf::run_serve_bench(corpus, args.options,
                                           /*cached_repeats=*/4, &std::cerr);
    } else {
      record = args.threads_sweep
                   ? perf::run_sweep(corpus, args.options, args.host,
                                     {1, 2, 4, 8}, &std::cerr)
                   : perf::run_corpus(corpus, args.options, args.host,
                                      &std::cerr);
    }
    if (args.json) {
      perf::write_json(record, out);
    } else if (args.serve_bench) {
      const perf::ServeRecord& s = record.serve;
      out << "serve: " << s.requests << " requests over " << s.circuits
          << " circuits (" << s.workers << " worker)\n"
          << "  cold:   " << s.cold_rps << " req/s, p50 " << s.cold_p50_ms
          << " ms, p99 " << s.cold_p99_ms << " ms\n"
          << "  cached: " << s.cached_rps << " req/s, p50 " << s.cached_p50_ms
          << " ms, p99 " << s.cached_p99_ms << " ms\n";
    } else {
      out << "corpus: " << record.circuits.size() << " circuits, "
          << record.total_covered() << "/" << record.total_faults()
          << " faults covered";
      if (record.total_gave_up() > 0)
        out << " (" << record.total_gave_up() << " gave up)";
      out << ", " << record.total_peak_nodes() << " summed peak nodes, "
          << record.total_cpu_ms() << " ms\n";
      for (const perf::SweepPoint& point : record.sweep)
        out << "  threads " << point.threads << ": " << point.cpu_ms
            << " ms, speedup " << point.speedup << "x, efficiency "
            << point.efficiency << ", peak resident "
            << point.peak_resident_nodes << " nodes (host_cores "
            << record.host_cores << ")\n";
    }
  } catch (const CheckError& e) {
    std::cerr << "xatpg bench: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int cmd_bench_compare(const CliArgs& args, std::ostream& out) {
  const auto load = [](const std::string& path)
      -> std::optional<perf::BenchRecord> {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open '" << path << "' for reading\n";
      return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      return perf::parse_record(text.str());
    } catch (const CheckError& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return std::nullopt;
    }
  };
  const auto baseline = load(args.positional[0]);
  const auto current = load(args.positional[1]);
  if (!baseline || !current) return 1;

  perf::CompareOptions options;
  options.max_node_regression = args.max_regress;
  options.max_cpu_regression = args.max_regress;
  options.min_cpu_ms = args.min_cpu_ms;
  const perf::Comparison comparison = perf::compare(*baseline, *current, options);
  for (const std::string& message : comparison.notes)
    out << "note: " << message << "\n";
  for (const std::string& message : comparison.failures)
    out << "FAIL: " << message << "\n";
  out << (comparison.ok ? "perf gate: OK (" : "perf gate: FAILED (")
      << comparison.failures.size() << " failures, "
      << comparison.notes.size() << " notes)\n";
  return comparison.ok ? 0 : 1;
}

int cmd_export(Session& session, const CliArgs& args, std::ostream& out) {
  // --faults selects the exported universe; "both" concatenates the input
  // and output models into one run (default: input, the paper's program).
  std::vector<Fault> universe;
  if (args.faults == "input" || args.faults == "both")
    universe = session.input_stuck_faults();
  if (args.faults == "output" || args.faults == "both") {
    const auto output = session.output_stuck_faults();
    universe.insert(universe.end(), output.begin(), output.end());
  }
  StderrObserver observer;
  auto result = session.run(universe, args.progress ? &observer : nullptr);
  if (!result) return fail(result.error());
  const auto program = session.test_program(result.value());
  if (!program) return fail(program.error());
  out << program.value();
  return 0;
}

// --- serve ------------------------------------------------------------------

/// The daemon a signal must reach.  request_shutdown() is async-signal-safe
/// (atomic store + self-pipe write), so the handler calls it directly.
serve::Server* g_server = nullptr;

extern "C" void handle_shutdown_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

int cmd_serve(const CliArgs& args) {
  serve::ServeConfig config;
  config.workers = args.serve_workers;
  config.queue_capacity = args.queue_capacity;
  config.cache_bytes = args.cache_bytes;
  config.max_job_seconds = args.max_job_seconds;
  config.defaults = args.options;
  try {
    serve::Server server(config);
    g_server = &server;
    std::signal(SIGINT, handle_shutdown_signal);
    std::signal(SIGTERM, handle_shutdown_signal);
    const int code =
        args.pipe ? server.serve_pipe() : server.serve_unix(args.socket_path);
    g_server = nullptr;
    return code;
  } catch (const CheckError& e) {
    g_server = nullptr;
    return fail(Error{ErrorCode::ResourceError, e.what()});
  }
}

// --- client -----------------------------------------------------------------

/// Blocking newline-framed reader over a raw fd.
struct LineReader {
  int fd;
  std::string buffer;

  std::optional<std::string> next() {
    while (true) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Compose the submit frame for the CLI's circuit selection, mirroring the
/// run command's resolution (bench file / xnl file / benchmark name).
Expected<std::string> make_submit(const CliArgs& args, const std::string& id) {
  std::ostringstream os;
  os << "{\"op\":\"submit\",\"id\":\"" << json::escape(id)
     << "\",\"circuit\":{";
  if (looks_like_file(args.circuit)) {
    std::ifstream in(args.circuit);
    if (!in)
      return Error{ErrorCode::ResourceError,
                   "cannot open '" + args.circuit + "' for reading"};
    std::ostringstream text;
    text << in.rdbuf();
    os << "\"format\":\""
       << (looks_like_bench_file(args.circuit) ? "bench" : "xnl")
       << "\",\"text\":\"" << json::escape(text.str()) << '"';
  } else {
    os << "\"format\":\"benchmark\",\"name\":\"" << json::escape(args.circuit)
       << '"';
  }
  os << ",\"style\":\""
     << (args.style == SynthStyle::BoundedDelay ? "bd" : "si") << "\"}"
     << ",\"faults\":\"" << args.faults << "\",\"progress\":"
     << (args.progress ? "true" : "false")
     << ",\"options\":{\"threads\":" << args.options.threads
     << ",\"seed\":" << args.options.seed << ",\"k\":" << args.options.k
     << ",\"random_budget\":" << args.options.random_budget;
  if (args.options.reorder.enabled) os << ",\"reorder\":true";
  if (args.options.classify_undetectable) os << ",\"classify\":true";
  os << "}}\n";
  return os.str();
}

int cmd_client(const CliArgs& args) {
  int in_fd = -1;   // daemon -> client
  int out_fd = -1;  // client -> daemon
  pid_t daemon_pid = -1;

  if (args.pipe) {
    // Fork our own binary as the daemon: client stdin/stdout stay free for
    // the user, the daemon's stdin/stdout become the wire.
    int to_daemon[2];
    int from_daemon[2];
    if (::pipe(to_daemon) != 0 || ::pipe(from_daemon) != 0)
      return fail(Error{ErrorCode::ResourceError, "cannot create pipes"});
    daemon_pid = ::fork();
    if (daemon_pid < 0)
      return fail(Error{ErrorCode::ResourceError, "fork failed"});
    if (daemon_pid == 0) {
      ::dup2(to_daemon[0], STDIN_FILENO);
      ::dup2(from_daemon[1], STDOUT_FILENO);
      ::close(to_daemon[0]);
      ::close(to_daemon[1]);
      ::close(from_daemon[0]);
      ::close(from_daemon[1]);
      const std::string workers = std::to_string(args.serve_workers);
      const std::string capacity = std::to_string(args.queue_capacity);
      const std::string cache = std::to_string(args.cache_bytes);
      ::execl("/proc/self/exe", "xatpg", "serve", "--pipe", "--serve-workers",
              workers.c_str(), "--queue-capacity", capacity.c_str(),
              "--cache-bytes", cache.c_str(), static_cast<char*>(nullptr));
      std::perror("xatpg client: exec daemon");
      std::_Exit(127);
    }
    ::close(to_daemon[0]);
    ::close(from_daemon[1]);
    out_fd = to_daemon[1];
    in_fd = from_daemon[0];
  } else {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (fd < 0 || args.socket_path.size() >= sizeof(addr.sun_path))
      return fail(Error{ErrorCode::ResourceError, "cannot create socket"});
    std::strncpy(addr.sun_path, args.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      return fail(Error{ErrorCode::ResourceError,
                        "cannot connect to '" + args.socket_path + "'"});
    in_fd = out_fd = fd;
  }

  LineReader reader{in_fd, {}};
  bool all_ok = true;
  // Echo every received frame verbatim: the client's stdout IS the
  // machine-readable transcript the CI smoke validates.
  const auto frame_type = [](const std::string& line) -> std::string {
    try {
      return json::string_field(json::parse(line), "type");
    } catch (const CheckError&) {
      return {};
    }
  };

  for (std::size_t i = 1; i <= args.repeat && all_ok; ++i) {
    const Expected<std::string> submit = make_submit(args, "job-" + std::to_string(i));
    if (!submit) return fail(submit.error());
    if (!write_all(out_fd, submit.value()))
      return fail(Error{ErrorCode::ResourceError, "daemon pipe closed"});
    while (true) {
      const std::optional<std::string> line = reader.next();
      if (!line) {
        return fail(Error{ErrorCode::ResourceError,
                          "daemon closed the stream mid-job"});
      }
      std::cout << *line << "\n";
      const std::string type = frame_type(*line);
      if (type == "error" || type == "cancelled") {
        all_ok = false;
        break;
      }
      if (type == "result") break;
    }
  }

  // One stats frame at the end so cache hit/miss behaviour is visible in
  // the transcript.
  if (write_all(out_fd, "{\"op\":\"stats\"}\n")) {
    for (std::optional<std::string> line = reader.next(); line;
         line = reader.next()) {
      std::cout << *line << "\n";
      if (frame_type(*line) == "stats") break;
    }
  }

  if (args.shutdown_mode == "sigterm") {
    ::kill(daemon_pid, SIGTERM);
  } else {
    write_all(out_fd, "{\"op\":\"shutdown\"}\n");
  }
  // Drain to EOF (echoing the bye frame), then collect the daemon.
  for (std::optional<std::string> line = reader.next(); line;
       line = reader.next())
    std::cout << *line << "\n";
  ::close(out_fd);
  if (in_fd != out_fd) ::close(in_fd);

  if (daemon_pid > 0) {
    int status = 0;
    ::waitpid(daemon_pid, &status, 0);
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::cerr << "xatpg client: daemon "
              << (clean ? "exited 0" : "exited abnormally") << "\n";
    if (!clean) return 1;
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  CliArgs args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  std::ofstream file;
  if (!args.out.empty()) {
    file.open(args.out);
    if (!file)
      return fail(Error{ErrorCode::ResourceError,
                        "cannot open '" + args.out + "' for writing"});
  }
  std::ostream& out = args.out.empty() ? std::cout : file;

  if (args.command == "bench") return cmd_bench(args, out);
  if (args.command == "bench-compare") return cmd_bench_compare(args, out);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "client") return cmd_client(args);

  Expected<Session> session =
      looks_like_bench_file(args.circuit)
          ? Session::from_bench_file(args.circuit, args.options)
      : looks_like_file(args.circuit)
          ? Session::from_xnl_file(args.circuit, args.options)
          : Session::from_benchmark(args.circuit, args.style, args.options);
  if (!session) return fail(session.error());

  if (args.command == "run") return cmd_run(*session, args, out);
  if (args.command == "cssg") return cmd_cssg(*session, args, out);
  return cmd_export(*session, args, out);
}
