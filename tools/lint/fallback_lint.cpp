// Portable fallback implementation of the xatpg clang-tidy checks.
//
// The authoritative implementations live in this directory as a clang-tidy
// plugin (XatpgTidyModule) and reason over the AST.  But the plugin can only
// be built where clang-tidy development headers exist, and the project must
// stay testable on a bare gcc toolchain — so this tool re-implements each
// check as a conservative token-level scanner sharing the same check names,
// the same fixture files, and the same NOLINT escape hatch.  `ctest -R lint`
// drives it everywhere; CI additionally runs the real plugin where it can be
// built.
//
// The checks (see README "Static analysis" for the invariants they guard):
//
//   xatpg-same-manager      Bdd binary operations whose operands trace to
//                           DIFFERENT local BddManager objects.  Mixing
//                           managers is undefined behaviour the kernel can
//                           only catch at runtime (XATPG_CHECK death); this
//                           catches it at lint time.
//   xatpg-raw-edge-arith    Bit arithmetic on packed BDD edge words
//                           ((node << 1) | complement) outside src/bdd/.
//                           The complement-edge encoding is a kernel-private
//                           representation; everything above the kernel must
//                           go through the Bdd handle API.
//   xatpg-unchecked-expected  Expected<T> results that are discarded, or
//                           unwrapped with .value() when no dominating
//                           has_value()/boolean check of the same variable
//                           appears earlier in the function.
//   xatpg-frozen-base-mutation  Writes through a delta manager's frozen-base
//                           pointer (`base_->... = ...`, compound assignment,
//                           ++/--) or a const_cast that strips the base's
//                           constness.  The base arena is published read-only
//                           at freeze() and shared lock-free by every worker
//                           thread; any store through it is a data race.
//                           Unlike raw-edge-arith this check applies INSIDE
//                           src/bdd/ too — the kernel holds the only
//                           `const BddManager* base_` and must never write
//                           through it.
//
// Modes:
//   fallback_lint --verify file...   lit-style fixture verification: every
//       `// CHECK-MESSAGES: :[[@LINE-N]]:...: warning: <substr> [check]`
//       comment must be matched by a finding, and every finding by an
//       expectation.  Files with no expectations must scan clean.
//   fallback_lint --tree path...     scan production sources (recursing into
//       directories); any finding fails the run.  Files under src/bdd/ are
//       exempt from xatpg-raw-edge-arith (the kernel owns the encoding).
//
// Suppression: a `// NOLINT` or `// NOLINT(xatpg-...)` comment on the
// flagged line silences it, matching clang-tidy semantics.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string check;
  std::string message;
};

struct Expectation {
  std::size_t line = 0;
  std::string check;
  std::string substr;
  bool matched = false;
};

struct SourceLine {
  std::string code;     // comments and string/char literals blanked out
  std::string comment;  // trailing // comment text (for NOLINT / CHECK)
};

/// Strip comments and literals so token scans cannot trip on text inside
/// them.  Tracks /* */ across lines; literals are replaced by spaces.
class Preprocessor {
 public:
  SourceLine strip(const std::string& raw) {
    SourceLine out;
    out.code.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
      if (in_block_comment_) {
        if (c == '*' && next == '/') {
          in_block_comment_ = false;
          ++i;
        }
        out.code.push_back(' ');
        continue;
      }
      if (c == '/' && next == '/') {
        out.comment = raw.substr(i + 2);
        break;
      }
      if (c == '/' && next == '*') {
        in_block_comment_ = true;
        out.code.push_back(' ');
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        out.code.push_back(' ');
        ++i;
        while (i < raw.size()) {
          if (raw[i] == '\\') {
            ++i;
          } else if (raw[i] == quote) {
            break;
          }
          out.code.push_back(' ');
          ++i;
        }
        continue;
      }
      out.code.push_back(c);
    }
    return out;
  }

 private:
  bool in_block_comment_ = false;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool nolint_allows(const std::string& comment, const std::string& check) {
  const std::size_t pos = comment.find("NOLINT");
  if (pos == std::string::npos) return false;
  const std::size_t paren = comment.find('(', pos);
  if (paren == std::string::npos) return true;  // bare NOLINT: silence all
  const std::size_t close = comment.find(')', paren);
  if (close == std::string::npos) return true;
  const std::string list = comment.substr(paren + 1, close - paren - 1);
  return list.find(check) != std::string::npos;
}

// ---------------------------------------------------------------------------
// xatpg-raw-edge-arith
// ---------------------------------------------------------------------------

/// Single-character bit operator at `pos` (not &&, ||, &=, |=, <<=, or a
/// doubled shift used on a stream — stream shifts are filtered by operand
/// tests instead).
struct BitOp {
  std::size_t pos = 0;
  std::string op;
};

std::vector<BitOp> find_bit_ops(const std::string& code) {
  std::vector<BitOp> ops;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    const char prev = i > 0 ? code[i - 1] : '\0';
    const char next = i + 1 < code.size() ? code[i + 1] : '\0';
    if (c == '<' && next == '<') {
      if (i + 2 < code.size() && code[i + 2] == '=') continue;
      ops.push_back({i, "<<"});
      ++i;
    } else if (c == '>' && next == '>') {
      if (i + 2 < code.size() && code[i + 2] == '=') continue;
      ops.push_back({i, ">>"});
      ++i;
    } else if ((c == '&' || c == '|' || c == '^') && prev != c && next != c &&
               next != '=' && prev != '=') {
      // && || &= |= ^= excluded; so are &&-adjacent forms.  A unary
      // address-of / reference declarator can still land here; operand
      // classification below keeps those out.
      ops.push_back({i, std::string(1, c)});
    }
  }
  return ops;
}

std::string token_left_of(const std::string& code, std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 && code[end - 1] == ' ') --end;
  std::size_t begin = end;
  // Walk back over a postfix chain: identifiers, calls/subscripts, member
  // access (both . and ->), so `fault.edge_word` and `b.index()` are seen
  // whole.
  while (begin > 0 &&
         (is_ident_char(code[begin - 1]) ||
          std::strchr("()[].->", code[begin - 1]) != nullptr))
    --begin;
  std::string token = code.substr(begin, end - begin);
  // A leading '(' is the surrounding parenthesis, not part of the operand.
  while (!token.empty() && token.front() == '(') token.erase(token.begin());
  return token;
}

std::string token_right_of(const std::string& code, std::size_t pos) {
  std::size_t begin = pos;
  // Skip spaces and value-preserving unary prefixes (~x, (x).
  while (begin < code.size() &&
         (code[begin] == ' ' || code[begin] == '~' || code[begin] == '('))
    ++begin;
  std::size_t end = begin;
  while (end < code.size() && is_ident_char(code[end])) ++end;
  return code.substr(begin, end - begin);
}

bool lower_contains(const std::string& s, const char* needle) {
  std::string low(s);
  std::transform(low.begin(), low.end(), low.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return low.find(needle) != std::string::npos;
}

/// An operand that names a packed edge: an identifier containing "edge", or
/// a Bdd handle's raw word via .index().
bool is_edge_operand(const std::string& token) {
  if (token.find(".index()") != std::string::npos ||
      token.find("->index()") != std::string::npos)
    return true;
  // Identifier (possibly a member access chain tail) containing "edge".
  std::string tail = token;
  const std::size_t dot = tail.find_last_of(".>");
  if (dot != std::string::npos) tail = tail.substr(dot + 1);
  if (tail.empty() || !is_ident_char(tail[0])) return false;
  return lower_contains(tail, "edge");
}

bool is_numeric_literal(const std::string& token) {
  if (token.empty() || std::isdigit(static_cast<unsigned char>(token[0])) == 0)
    return false;
  return std::all_of(token.begin(), token.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '\'';
  });
}

void check_raw_edge_arith(const std::string& file,
                          const std::vector<SourceLine>& lines,
                          std::vector<Finding>& findings) {
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    std::string why;
    for (const BitOp& op : find_bit_ops(code)) {
      const std::string lhs = token_left_of(code, op.pos);
      const std::string rhs = token_right_of(code, op.pos + op.op.size());
      // Shifts: a packing/unpacking shift has the edge word on the left and
      // a literal distance on the right (`edge >> 1`); streaming an
      // edge-named value into an ostream must not trip this.
      if (op.op == "<<" || op.op == ">>") {
        if (is_edge_operand(lhs) && is_numeric_literal(rhs)) {
          why = "bit shift ('" + op.op + "') on a packed BDD edge value";
          break;
        }
        continue;
      }
      // Masking ops: require an edge operand AND a literal-or-edge partner,
      // so reference declarators (`const auto& edge`) and predicate
      // combinations stay out.
      const bool lhs_edge = is_edge_operand(lhs);
      const bool rhs_edge = is_edge_operand(rhs);
      if ((lhs_edge || rhs_edge) &&
          (lhs_edge ? (rhs_edge || is_numeric_literal(rhs))
                    : is_numeric_literal(lhs))) {
        why = "bit arithmetic ('" + op.op + "') on a packed BDD edge value";
        break;
      }
    }
    // The canonical packing idiom itself: (x << 1) | c — flag even when the
    // identifier does not say "edge"; nothing outside the kernel has a
    // legitimate (expr << 1) | expr.
    if (why.empty() &&
        std::regex_search(code, std::regex(R"(\(\s*[\w.>-]+\s*<<\s*1[uU]?\s*\)\s*\|)"))) {
      why = "packed-edge construction '(node << 1) | complement'";
    }
    if (why.empty()) continue;
    if (nolint_allows(lines[n].comment, "xatpg-raw-edge-arith")) continue;
    findings.push_back(
        {file, n + 1, "xatpg-raw-edge-arith",
         why + " outside src/bdd/ — the complement-edge encoding is "
               "kernel-private; use the Bdd/BddManager API"});
  }
}

// ---------------------------------------------------------------------------
// xatpg-unchecked-expected
// ---------------------------------------------------------------------------

/// Expected<T>-returning entry points of the public API whose result must
/// never be dropped on the floor (mirrors the [[nodiscard]] sweep; the
/// check exists for call sites compiled without warnings).
const char* const kExpectedReturning[] = {"validate", "test_program"};

void check_unchecked_expected(const std::string& file,
                              const std::vector<SourceLine>& lines,
                              std::vector<Finding>& findings) {
  // Brace depth tracking approximates function scope: a "checked" marker for
  // a variable lives until the depth drops below the level where we saw it.
  struct Checked {
    int depth = 0;
  };
  std::map<std::string, Checked> checked;
  int depth = 0;

  auto mark_checked = [&](const std::string& var) {
    if (var.empty()) return;
    // Keep the shallowest marker: a re-check deeper in a nested block must
    // not shorten the lifetime of an already-established dominating check.
    const auto it = checked.find(var);
    if (it == checked.end() || depth < it->second.depth)
      checked[var] = Checked{depth};
  };

  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;

    // Record dominating checks BEFORE flagging this line: has_value(),
    // boolean tests, and the common early-return-on-error forms.
    static const std::regex check_re(
        R"((\w+)(?:\.|->)has_value\s*\(|if\s*\(\s*!?\s*(\w+)\s*\)|XATPG_CHECK(?:_MSG)?\s*\(\s*!?\s*(\w+)[\s.)]|ASSERT_TRUE\s*\(\s*(\w+)|EXPECT_TRUE\s*\(\s*(\w+)|(\w+)(?:\.|->)error\s*\()");
    for (std::sregex_iterator it(code.begin(), code.end(), check_re), end;
         it != end; ++it) {
      for (std::size_t g = 1; g < it->size(); ++g)
        if ((*it)[g].matched) mark_checked((*it)[g].str());
    }

    // Discarded Expected result: a whole statement of the form
    //   [recv.]validate(...);   or   [recv->]test_program(...);
    // with no assignment, return, or surrounding expression.
    for (const char* fn : kExpectedReturning) {
      const std::regex discard_re("^\\s*(?:[\\w\\]\\[.>-]+(?:\\.|->))?" +
                                  std::string(fn) + R"(\s*\([^;=]*\)\s*;\s*$)");
      if (std::regex_match(code, discard_re) &&
          !nolint_allows(lines[n].comment, "xatpg-unchecked-expected")) {
        findings.push_back(
            {file, n + 1, "xatpg-unchecked-expected",
             std::string("result of '") + fn +
                 "' (an Expected) is discarded — check has_value() or "
                 "propagate the error"});
      }
    }

    // .value() with no dominating check of the same variable.
    static const std::regex value_re(R"((\w+)(?:\.|->)value\s*\(\s*\))");
    for (std::sregex_iterator it(code.begin(), code.end(), value_re), end;
         it != end; ++it) {
      const std::string var = (*it)[1].str();
      // A check anywhere earlier on the same line counts (e.g. the
      // `x.has_value() ? x.value() : ...` idiom).
      if (checked.count(var) != 0) continue;
      if (nolint_allows(lines[n].comment, "xatpg-unchecked-expected"))
        continue;
      findings.push_back(
          {file, n + 1, "xatpg-unchecked-expected",
           "'" + var + ".value()' has no dominating has_value()/boolean "
           "check of '" + var + "' — an errored Expected would throw here"});
    }

    // Track scope: drop markers whose block closed.
    for (const char c : code) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        for (auto it = checked.begin(); it != checked.end();) {
          if (it->second.depth > depth)
            it = checked.erase(it);
          else
            ++it;
        }
      }
    }
    // Function boundary at depth 0 resets everything.
    if (depth == 0) checked.clear();
  }
}

// ---------------------------------------------------------------------------
// xatpg-frozen-base-mutation
// ---------------------------------------------------------------------------

/// Mutating operator immediately after a `base_->member[...]...` access chain
/// starting at `pos` (the character past the `->`).  Reads — comparisons,
/// stream shifts, plain calls — return the empty string.
std::string mutation_after_chain(const std::string& code, std::size_t pos) {
  std::size_t i = pos;
  int parens = 0;
  // Consume the member-access chain: identifiers, further . / -> hops,
  // subscripts, and call parentheses (`base_->nodes_[n].next`,
  // `base_->subtable(v).head`).  A bare '-' is NOT a chain character —
  // only the two-character arrow is — so `-=` and postfix `--` survive as
  // operators.
  while (i < code.size()) {
    const char c = code[i];
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      i += 2;
      continue;
    }
    if (!is_ident_char(c) && std::strchr(".[]() ", c) == nullptr) break;
    if (c == '(') ++parens;
    if (c == ')') {
      // A closing parenthesis the chain never opened ends a surrounding
      // call argument, not the access path.
      if (parens == 0) break;
      --parens;
    }
    ++i;
  }
  const char a = i < code.size() ? code[i] : '\0';
  const char b = i + 1 < code.size() ? code[i + 1] : '\0';
  if ((a == '+' && b == '+') || (a == '-' && b == '-'))
    return std::string(1, a) + b;
  if (std::strchr("+-*/%&|^", a) != nullptr && b == '=')
    return std::string(1, a) + '=';
  if (a == '=' && b != '=') return "=";
  return {};
}

void check_frozen_base_mutation(const std::string& file,
                                const std::vector<SourceLine>& lines,
                                std::vector<Finding>& findings) {
  // A const_cast whose argument names the base strips the one qualifier
  // that makes the frozen arena thread-safe.
  static const std::regex cast_re(
      R"(const_cast\s*<[^;>]*>\s*\([^;)]*\bbase(_|\b))");
  // The frozen-base pointer spellings: the kernel's own member (`base_->`)
  // and the public accessor at call sites (`base()->`).
  static const std::regex deref_re(R"(\bbase(_|\s*\(\s*\))\s*->)");

  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    std::string why;
    if (std::regex_search(code, cast_re)) {
      why = "const_cast strips the frozen base's constness";
    } else {
      for (std::sregex_iterator it(code.begin(), code.end(), deref_re), end;
           it != end && why.empty(); ++it) {
        const std::size_t after =
            static_cast<std::size_t>(it->position(0) + it->length(0));
        // Prefix increment/decrement reaches the chain from the left, past
        // any object prefix (`++delta.base_->...`).
        std::size_t at = static_cast<std::size_t>(it->position(0));
        while (at > 0 && (is_ident_char(code[at - 1]) ||
                          std::strchr(". *", code[at - 1]) != nullptr))
          --at;
        if (at >= 2 && ((code[at - 1] == '+' && code[at - 2] == '+') ||
                        (code[at - 1] == '-' && code[at - 2] == '-'))) {
          why = "'" + code.substr(at - 2, 2) + "' through the frozen base";
          break;
        }
        const std::string op = mutation_after_chain(code, after);
        if (!op.empty()) why = "'" + op + "' through the frozen base";
      }
    }
    if (why.empty()) continue;
    if (nolint_allows(lines[n].comment, "xatpg-frozen-base-mutation"))
      continue;
    findings.push_back(
        {file, n + 1, "xatpg-frozen-base-mutation",
         why + " — the base arena is immutable after freeze() and read "
               "lock-free by every worker; allocate in the delta instead"});
  }
}

// ---------------------------------------------------------------------------
// xatpg-same-manager
// ---------------------------------------------------------------------------

void check_same_manager(const std::string& file,
                        const std::vector<SourceLine>& lines,
                        std::vector<Finding>& findings) {
  // Per-function tracking (reset when brace depth returns to 0):
  //   managers: local `BddManager m...;` declarations
  //   owner_of: Bdd variable -> manager variable it was built from
  std::vector<std::string> managers;
  std::map<std::string, std::string> owner_of;
  int depth = 0;

  static const std::regex mgr_decl_re(R"(\bBddManager\s+(\w+)\s*[;({])");
  static const std::regex bdd_bind_re(
      R"(\b(?:Bdd|auto)\s+(\w+)\s*=\s*(\w+)\s*\.)");
  static const std::regex bdd_copy_re(
      R"(\b(?:Bdd|auto)\s+(\w+)\s*=\s*(\w+)\s*[;&|^])");
  static const std::regex binop_re(R"((\w+)\s*[&|^]\s*(\w+))");
  static const std::regex recv_call_re(
      R"((\w+)\.(?:ite|apply_and|apply_or|apply_xor|apply_not|exists|forall|and_exists|permute|compose|cofactor|sat_count|pick_minterm|eval|all_minterms|support_cube|support_vars)\s*\(([^;]*))");

  auto is_manager = [&](const std::string& name) {
    return std::find(managers.begin(), managers.end(), name) != managers.end();
  };
  auto owner = [&](const std::string& name) -> std::string {
    const auto it = owner_of.find(name);
    return it == owner_of.end() ? std::string() : it->second;
  };

  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;

    for (std::sregex_iterator it(code.begin(), code.end(), mgr_decl_re), end;
         it != end; ++it)
      managers.push_back((*it)[1].str());

    // `Bdd x = m.var(0);` binds x to manager m; `Bdd y = x & z;` inherits.
    for (std::sregex_iterator it(code.begin(), code.end(), bdd_bind_re), end;
         it != end; ++it) {
      const std::string var = (*it)[1].str();
      const std::string src = (*it)[2].str();
      if (is_manager(src))
        owner_of[var] = src;
      else if (!owner(src).empty())
        owner_of[var] = owner(src);
    }
    for (std::sregex_iterator it(code.begin(), code.end(), bdd_copy_re), end;
         it != end; ++it) {
      const std::string var = (*it)[1].str();
      const std::string src = (*it)[2].str();
      if (!owner(src).empty() && owner(var).empty()) owner_of[var] = owner(src);
    }

    std::string why;
    // Operand pair with distinct owning managers under a binary Bdd op.
    for (std::sregex_iterator it(code.begin(), code.end(), binop_re), end;
         it != end && why.empty(); ++it) {
      const std::string a = owner((*it)[1].str());
      const std::string b = owner((*it)[2].str());
      if (!a.empty() && !b.empty() && a != b)
        why = "operands of this Bdd operation belong to different "
              "BddManagers ('" + a + "' vs '" + b + "')";
    }
    // Manager method call whose Bdd argument belongs to another manager.
    for (std::sregex_iterator it(code.begin(), code.end(), recv_call_re), end;
         it != end && why.empty(); ++it) {
      const std::string recv = (*it)[1].str();
      if (!is_manager(recv)) continue;
      const std::string args = (*it)[2].str();
      static const std::regex arg_ident_re(R"(\b(\w+)\b)");
      for (std::sregex_iterator at(args.begin(), args.end(), arg_ident_re),
           aend; at != aend; ++at) {
        const std::string own = owner((*at)[1].str());
        if (!own.empty() && own != recv) {
          why = "argument '" + (*at)[1].str() + "' belongs to BddManager '" +
                own + "' but the operation runs on '" + recv + "'";
          break;
        }
      }
    }

    if (!why.empty() &&
        !nolint_allows(lines[n].comment, "xatpg-same-manager")) {
      findings.push_back(
          {file, n + 1, "xatpg-same-manager",
           why + " — BDD operands must share one manager (the kernel "
                 "XATPG_CHECKs this at runtime; fix the call site)"});
    }

    for (const char c : code) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
    if (depth <= 0) {
      depth = 0;
      managers.clear();
      owner_of.clear();
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool under_src_bdd(const std::string& path) {
  return path.find("src/bdd/") != std::string::npos ||
         path.find("src\\bdd\\") != std::string::npos;
}

std::vector<Finding> scan_file(const std::string& path,
                               std::vector<SourceLine>* out_lines = nullptr) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fallback_lint: cannot open " << path << "\n";
    std::exit(2);
  }
  Preprocessor pp;
  std::vector<SourceLine> lines;
  for (std::string raw; std::getline(in, raw);) lines.push_back(pp.strip(raw));

  std::vector<Finding> findings;
  check_same_manager(path, lines, findings);
  if (!under_src_bdd(path)) check_raw_edge_arith(path, lines, findings);
  check_unchecked_expected(path, lines, findings);
  check_frozen_base_mutation(path, lines, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.line < b.line; });
  if (out_lines != nullptr) *out_lines = std::move(lines);
  return findings;
}

void print_finding(const Finding& f) {
  std::cout << f.file << ":" << f.line << ": warning: " << f.message << " ["
            << f.check << "]\n";
}

/// Parse `// CHECK-MESSAGES: :[[@LINE-N]]:COL: warning: <substr> [check]`
/// (COL and the warning prefix are optional; N defaults to 0 for @LINE).
std::optional<Expectation> parse_expectation(const std::string& comment,
                                             std::size_t comment_line) {
  const std::size_t tag = comment.find("CHECK-MESSAGES:");
  if (tag == std::string::npos) return std::nullopt;
  std::string rest = comment.substr(tag + std::strlen("CHECK-MESSAGES:"));

  static const std::regex line_re(R"(\[\[@LINE(?:-(\d+))?\]\])");
  std::smatch m;
  Expectation e;
  e.line = comment_line;
  if (std::regex_search(rest, m, line_re)) {
    if (m[1].matched) e.line = comment_line - std::stoul(m[1].str());
    rest = rest.substr(static_cast<std::size_t>(m.position(0) + m.length(0)));
  }
  const std::size_t open = rest.rfind('[');
  const std::size_t close = rest.rfind(']');
  if (open == std::string::npos || close == std::string::npos || close < open)
    return std::nullopt;
  e.check = rest.substr(open + 1, close - open - 1);
  std::string msg = rest.substr(0, open);
  const std::size_t warn = msg.find("warning:");
  if (warn != std::string::npos)
    msg = msg.substr(warn + std::strlen("warning:"));
  // Trim; drop a leading ":COL:" fragment if present.
  const auto not_space = [](unsigned char c) { return std::isspace(c) == 0; };
  msg.erase(msg.begin(), std::find_if(msg.begin(), msg.end(), not_space));
  msg.erase(std::find_if(msg.rbegin(), msg.rend(), not_space).base(),
            msg.end());
  e.substr = msg;
  return e;
}

int verify_fixture(const std::string& path) {
  std::vector<SourceLine> lines;
  std::vector<Finding> findings = scan_file(path, &lines);

  std::vector<Expectation> expects;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    if (auto e = parse_expectation(lines[n].comment, n + 1)) {
      expects.push_back(std::move(*e));
    }
  }

  int failures = 0;
  for (Expectation& e : expects) {
    const auto hit = std::find_if(
        findings.begin(), findings.end(), [&](const Finding& f) {
          return f.line == e.line && f.check == e.check &&
                 (e.substr.empty() ||
                  f.message.find(e.substr) != std::string::npos);
        });
    if (hit == findings.end()) {
      std::cerr << path << ":" << e.line << ": MISSING expected ["
                << e.check << "] diagnostic";
      if (!e.substr.empty()) std::cerr << " containing '" << e.substr << "'";
      std::cerr << "\n";
      ++failures;
    } else {
      e.matched = true;
      findings.erase(hit);
    }
  }
  for (const Finding& f : findings) {
    std::cerr << path << ":" << f.line << ": UNEXPECTED diagnostic ["
              << f.check << "]: " << f.message << "\n";
    ++failures;
  }
  const char* verdict = failures == 0 ? "OK" : "FAIL";
  std::cout << "fallback_lint --verify " << path << ": " << verdict << " ("
            << expects.size() << " expectation(s))\n";
  return failures;
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 2 || (args[0] != "--verify" && args[0] != "--tree")) {
    std::cerr << "usage: fallback_lint --verify fixture.cpp...\n"
                 "       fallback_lint --tree path...\n";
    return 2;
  }

  if (args[0] == "--verify") {
    int failures = 0;
    for (std::size_t i = 1; i < args.size(); ++i)
      failures += verify_fixture(args[i]);
    return failures == 0 ? 0 : 1;
  }

  // --tree
  std::vector<std::string> files;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::filesystem::path root(args[i]);
    if (std::filesystem::is_directory(root)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path()))
          files.push_back(entry.path().string());
      }
    } else {
      files.push_back(root.string());
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const std::string& file : files) {
    for (const Finding& f : scan_file(file)) {
      print_finding(f);
      ++total;
    }
  }
  std::cout << "fallback_lint --tree: " << files.size() << " file(s), "
            << total << " finding(s)\n";
  return total == 0 ? 0 : 1;
}
