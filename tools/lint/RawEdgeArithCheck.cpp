#include "XatpgTidyChecks.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"

using namespace clang::ast_matchers;

namespace clang::tidy::xatpg {
namespace {

/// src/bdd/ owns the complement-edge encoding and is exempt.
bool inKernel(const SourceManager& SM, SourceLocation Loc) {
  const StringRef File = SM.getFilename(SM.getSpellingLoc(Loc));
  return File.contains("src/bdd/") || File.contains("src\\bdd\\");
}

/// True when the expression reads a packed edge word: a call to
/// Bdd::index(), or a variable/member whose name contains "edge".
bool isEdgeWord(const Expr* E) {
  if (E == nullptr) return false;
  E = E->IgnoreParenImpCasts();
  if (const auto* Call = dyn_cast<CXXMemberCallExpr>(E)) {
    const CXXMethodDecl* MD = Call->getMethodDecl();
    if (MD != nullptr && MD->getName() == "index") {
      const CXXRecordDecl* RD = MD->getParent();
      return RD != nullptr && RD->getName() == "Bdd";
    }
    return false;
  }
  const auto nameHasEdge = [](StringRef Name) {
    return Name.lower().find("edge") != std::string::npos;
  };
  if (const auto* Ref = dyn_cast<DeclRefExpr>(E))
    return Ref->getDecl() != nullptr && nameHasEdge(Ref->getDecl()->getName());
  if (const auto* Member = dyn_cast<MemberExpr>(E))
    return nameHasEdge(Member->getMemberDecl()->getName());
  return false;
}

}  // namespace

void RawEdgeArithCheck::registerMatchers(MatchFinder* Finder) {
  // (x << 1) | c — the canonical packing idiom is flagged regardless of
  // operand names; nothing outside the kernel legitimately builds it.
  Finder->addMatcher(
      binaryOperator(hasOperatorName("|"),
                     hasLHS(ignoringParenImpCasts(binaryOperator(
                         hasOperatorName("<<"),
                         hasRHS(ignoringParenImpCasts(
                             integerLiteral(equals(1))))))))
          .bind("pack"),
      this);

  // Shift / mask / flip arithmetic where an operand is an edge word and the
  // partner is an integer constant (or another edge word).
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("<<", ">>", "&", "|", "^"))
          .bind("arith"),
      this);
}

void RawEdgeArithCheck::check(const MatchFinder::MatchResult& Result) {
  const SourceManager& SM = *Result.SourceManager;

  if (const auto* Pack = Result.Nodes.getNodeAs<BinaryOperator>("pack")) {
    if (inKernel(SM, Pack->getOperatorLoc())) return;
    diag(Pack->getOperatorLoc(),
         "packed-edge construction '(node << 1) | complement' outside "
         "src/bdd/ — the complement-edge encoding is kernel-private; use "
         "the Bdd/BddManager API");
    return;
  }

  const auto* Op = Result.Nodes.getNodeAs<BinaryOperator>("arith");
  if (Op == nullptr || inKernel(SM, Op->getOperatorLoc())) return;

  const Expr* Lhs = Op->getLHS()->IgnoreParenImpCasts();
  const Expr* Rhs = Op->getRHS()->IgnoreParenImpCasts();
  const bool LhsEdge = isEdgeWord(Lhs);
  const bool RhsEdge = isEdgeWord(Rhs);
  const auto isIntConst = [&](const Expr* E) {
    return E->isIntegerConstantExpr(*Result.Context);
  };

  bool Flag = false;
  if (Op->isShiftOp()) {
    // edge >> 1 / edge << 1; streaming into an ostream never has an integer
    // constant distance on the right.
    Flag = LhsEdge && isIntConst(Rhs);
  } else {
    Flag = (LhsEdge && (RhsEdge || isIntConst(Rhs))) ||
           (RhsEdge && isIntConst(Lhs));
  }
  if (!Flag) return;

  diag(Op->getOperatorLoc(),
       "bit %select{arithmetic|shift}0 ('%1') on a packed BDD edge value "
       "outside src/bdd/ — the complement-edge encoding is kernel-private; "
       "use the Bdd/BddManager API")
      << (Op->isShiftOp() ? 1 : 0) << Op->getOpcodeStr();
}

}  // namespace clang::tidy::xatpg
