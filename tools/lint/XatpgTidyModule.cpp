// clang-tidy plugin module registering the xatpg-* checks.
//
// Build (requires clang-tidy development headers; see CMakeLists.txt in this
// directory — the build is skipped with a loud notice when they are absent):
//
//   cmake -B build -S . -DXATPG_BUILD_TIDY_PLUGIN=ON
//   clang-tidy --load build/tools/lint/libXatpgTidyModule.so \
//              --checks='-*,xatpg-*' <file>...
//
// or use tools/lint/run_clang_tidy.sh, which locates the plugin and the
// compile database automatically.
#include "XatpgTidyChecks.h"

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {
namespace xatpg {

class XatpgModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& CheckFactories) override {
    CheckFactories.registerCheck<SameManagerCheck>("xatpg-same-manager");
    CheckFactories.registerCheck<RawEdgeArithCheck>("xatpg-raw-edge-arith");
    CheckFactories.registerCheck<UncheckedExpectedCheck>(
        "xatpg-unchecked-expected");
  }
};

}  // namespace xatpg

static ClangTidyModuleRegistry::Add<xatpg::XatpgModule> X(
    "xatpg-module", "Adds xatpg project-specific lint checks.");

// Anchor the module so --load keeps the registration alive.
volatile int XatpgModuleAnchorSource = 0;

}  // namespace clang::tidy
