#include "XatpgTidyChecks.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::xatpg {
namespace {

/// The VarDecl a member call like `x.value()` / `x.has_value()` is made on,
/// or nullptr when the receiver is not a plain variable reference.
const VarDecl* receiverVar(const CXXMemberCallExpr* Call) {
  const Expr* Obj = Call->getImplicitObjectArgument();
  if (Obj == nullptr) return nullptr;
  Obj = Obj->IgnoreParenImpCasts();
  if (const auto* Ref = dyn_cast<DeclRefExpr>(Obj))
    return dyn_cast<VarDecl>(Ref->getDecl());
  return nullptr;
}

/// Recursively scan `S` (stopping at `Until`) for a dominating check of
/// `Var`: a has_value()/error() member call, or a boolean conversion in an
/// if/while/XATPG_CHECK condition.  Statements after `Until` in source order
/// cannot dominate it and are ignored.
class CheckScanner {
 public:
  CheckScanner(const VarDecl* Var, const Stmt* Until, const SourceManager& SM)
      : Var(Var), Until(Until), SM(SM) {}

  bool found() const { return Found; }

  void scan(const Stmt* S) {
    if (S == nullptr || Found || Done) return;
    if (S == Until) {
      Done = true;
      return;
    }
    if (const auto* Call = dyn_cast<CXXMemberCallExpr>(S)) {
      if (receiverVar(Call) == Var) {
        const CXXMethodDecl* MD = Call->getMethodDecl();
        if (MD != nullptr &&
            (MD->getName() == "has_value" || MD->getName() == "error"))
          Found = true;
      }
    }
    if (const auto* Conv = dyn_cast<CXXMemberCallExpr>(S)) {
      if (isa_and_nonnull<CXXConversionDecl>(Conv->getMethodDecl()) &&
          receiverVar(Conv) == Var)
        Found = true;  // explicit operator bool() in a condition
    }
    for (const Stmt* Child : S->children()) scan(Child);
  }

 private:
  const VarDecl* Var;
  const Stmt* Until;
  const SourceManager& SM;
  bool Found = false;
  bool Done = false;
};

AST_MATCHER(CXXRecordDecl, isExpected) {
  return Node.getName() == "Expected";
}

}  // namespace

void UncheckedExpectedCheck::registerMatchers(MatchFinder* Finder) {
  const auto ExpectedType = hasType(hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(cxxRecordDecl(isExpected())))));

  // A whole-statement discard: the Expected-returning call is itself a
  // child of a CompoundStmt (not assigned, returned, or tested).
  Finder->addMatcher(
      compoundStmt(forEach(
          expr(anyOf(cxxMemberCallExpr(ExpectedType), callExpr(ExpectedType)))
              .bind("discard"))),
      this);

  // x.value() where x is a local Expected variable.
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasName("value"),
                                             ofClass(isExpected()))),
                        forFunction(functionDecl().bind("fn")))
          .bind("value"),
      this);
}

void UncheckedExpectedCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* Discard = Result.Nodes.getNodeAs<Expr>("discard")) {
    diag(Discard->getExprLoc(),
         "result of '%0' (an Expected) is discarded — check has_value() or "
         "propagate the error")
        << (isa<CXXMemberCallExpr>(Discard) &&
                    cast<CXXMemberCallExpr>(Discard)->getMethodDecl() != nullptr
                ? cast<CXXMemberCallExpr>(Discard)
                      ->getMethodDecl()
                      ->getName()
                : StringRef("this call"));
    return;
  }

  const auto* Value = Result.Nodes.getNodeAs<CXXMemberCallExpr>("value");
  const auto* Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (Value == nullptr || Fn == nullptr || !Fn->hasBody()) return;
  const VarDecl* Var = receiverVar(Value);
  if (Var == nullptr) return;

  CheckScanner Scanner(Var, Value, *Result.SourceManager);
  Scanner.scan(Fn->getBody());
  if (Scanner.found()) return;

  diag(Value->getExprLoc(),
       "'%0.value()' has no dominating has_value()/boolean check of '%0' — "
       "an errored Expected would throw here")
      << Var->getName();
}

}  // namespace clang::tidy::xatpg
