#!/usr/bin/env sh
# Run clang-tidy over the xatpg tree with the project .clang-tidy config,
# loading the custom xatpg-* plugin when it has been built.
#
# Usage: tools/lint/run_clang_tidy.sh [build-dir] [file...]
#
#   build-dir   directory holding compile_commands.json (default: build)
#   file...     sources to lint (default: all src/ + tools/xatpg_cli.cpp)
#
# Exits 0 when clang-tidy is clean, 1 on diagnostics, 2 when the toolchain
# is unusable (no clang-tidy, no compile database) — CI treats 2 as a loud
# skip, not a pass.
set -u

BUILD_DIR=${1:-build}
[ $# -gt 0 ] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: SKIP — clang-tidy not installed" >&2
    exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_clang_tidy: SKIP — $BUILD_DIR/compile_commands.json missing" \
         "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
    exit 2
fi

LOAD_ARGS=""
for candidate in \
    "$BUILD_DIR/tools/lint/libXatpgTidyModule.so" \
    "$BUILD_DIR/tools/lint/libXatpgTidyModule.dylib"; do
    if [ -f "$candidate" ]; then
        LOAD_ARGS="--load=$candidate"
        echo "run_clang_tidy: loading xatpg plugin $candidate" >&2
        break
    fi
done
if [ -z "$LOAD_ARGS" ]; then
    echo "run_clang_tidy: xatpg plugin not built — running base checks only" \
         "(configure with -DXATPG_BUILD_TIDY_PLUGIN=ON where clang-tidy" \
         "dev headers exist)" >&2
fi

if [ $# -eq 0 ]; then
    set -- $(find src tools/xatpg_cli.cpp -name '*.cpp' 2>/dev/null)
fi

# shellcheck disable=SC2086  # LOAD_ARGS is intentionally word-split (0/1 arg)
clang-tidy $LOAD_ARGS -p "$BUILD_DIR" --quiet "$@"
status=$?
[ $status -eq 0 ] && echo "run_clang_tidy: clean ($# file(s))"
exit $status
