// Declarations of the xatpg clang-tidy checks.
//
// These are the authoritative, AST-level implementations of the three
// project-specific checks; fallback_lint.cpp re-implements the same rules as
// a token scanner for toolchains without clang-tidy development headers.
// Both share check names, diagnostics vocabulary, and fixture files under
// fixtures/, so either implementation can drive the lit-style expectations.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::xatpg {

/// xatpg-same-manager: flags Bdd binary operations (operator&/|/^ and
/// BddManager method calls) whose operands trace back to *different* local
/// BddManager objects.  Mixing managers is undefined behaviour that the
/// kernel can only catch at runtime via XATPG_CHECK; this surfaces it at
/// lint time.  Ownership is traced through Bdd copy-initialisation chains.
class SameManagerCheck : public ClangTidyCheck {
 public:
  SameManagerCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

/// xatpg-raw-edge-arith: flags bit arithmetic on packed complement-edge
/// words — `(node << 1) | c`, `edge >> 1`, `edge & 1`, `b.index() ^ 1` —
/// in any file outside src/bdd/.  The encoding is kernel-private; everything
/// above the kernel must go through the Bdd handle API.
class RawEdgeArithCheck : public ClangTidyCheck {
 public:
  RawEdgeArithCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

/// xatpg-unchecked-expected: flags Expected<T> results that are discarded
/// outright, and `.value()` unwraps with no dominating `has_value()` /
/// boolean test of the same variable earlier in the enclosing function.
class UncheckedExpectedCheck : public ClangTidyCheck {
 public:
  UncheckedExpectedCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace clang::tidy::xatpg
