// Positive fixtures for xatpg-raw-edge-arith: bit arithmetic on packed
// complement-edge words ((node << 1) | complement) outside src/bdd/ must be
// flagged — the encoding is kernel-private.
#include <cstdint>

#include "xatpg_stub.hpp"

std::uint32_t repack_by_hand(std::uint32_t node, bool complement) {
  return (node << 1) | static_cast<std::uint32_t>(complement);
  // CHECK-MESSAGES: :[[@LINE-1]]:10: warning: packed-edge construction [xatpg-raw-edge-arith]
}

std::uint32_t peel_node_index(std::uint32_t edge) {
  return edge >> 1;
  // CHECK-MESSAGES: :[[@LINE-1]]:10: warning: bit shift [xatpg-raw-edge-arith]
}

bool read_complement_bit(std::uint32_t edge) {
  return (edge & 1u) != 0;
  // CHECK-MESSAGES: :[[@LINE-1]]:11: warning: bit arithmetic [xatpg-raw-edge-arith]
}

std::uint32_t negate_in_place(std::uint32_t edge_word) {
  return edge_word ^ 1u;
  // CHECK-MESSAGES: :[[@LINE-1]]:10: warning: bit arithmetic [xatpg-raw-edge-arith]
}

std::uint32_t flip_a_handles_raw_word(const xatpg::Bdd& b) {
  return b.index() ^ 1u;
  // CHECK-MESSAGES: :[[@LINE-1]]:10: warning: bit arithmetic [xatpg-raw-edge-arith]
}

std::uint32_t regularize(const xatpg::Bdd& b) {
  return b.index() & ~1u;
  // CHECK-MESSAGES: :[[@LINE-1]]:10: warning: bit arithmetic [xatpg-raw-edge-arith]
}
