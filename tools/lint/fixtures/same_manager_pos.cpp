// Positive fixtures for xatpg-same-manager: every line below that mixes
// operands from two BddManagers must be flagged.  Run via
// `ctest -R lint_same_manager` (fallback) or the clang-tidy plugin.
#include "xatpg_stub.hpp"

using xatpg::Bdd;
using xatpg::BddManager;

void cross_manager_binary_ops() {
  BddManager m1;
  BddManager m2;
  Bdd a = m1.var(0);
  Bdd b = m2.var(1);

  Bdd bad_and = a & b;
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: different BddManagers [xatpg-same-manager]

  Bdd bad_or = a | b;
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: different BddManagers [xatpg-same-manager]

  Bdd bad_xor = a ^ b;
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: different BddManagers [xatpg-same-manager]

  (void)bad_and;
  (void)bad_or;
  (void)bad_xor;
}

void cross_manager_through_copies() {
  BddManager m1;
  BddManager m2;
  Bdd a = m1.var(0);
  Bdd b = m2.var(0);
  Bdd a2 = a;
  Bdd mixed = a2 & b;
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: different BddManagers [xatpg-same-manager]
  (void)mixed;
}

void cross_manager_method_call() {
  BddManager m1;
  BddManager m2;
  Bdd f = m1.var(0);
  Bdd g = m2.var(1);
  Bdd h = m1.var(2);

  Bdd bad_ite = m1.ite(f, g, h);
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: runs on 'm1' [xatpg-same-manager]

  Bdd bad_apply = m2.apply_and(f, f);
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: runs on 'm2' [xatpg-same-manager]

  (void)bad_ite;
  (void)bad_apply;
}
