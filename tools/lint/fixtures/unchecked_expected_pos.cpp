// Positive fixtures for xatpg-unchecked-expected: discarding an Expected<T>
// result, or unwrapping one with .value() without a dominating has_value() /
// boolean check, must be flagged.
#include "xatpg_stub.hpp"

using xatpg::Error;
using xatpg::Expected;
using xatpg::Options;

Expected<int> parse_width(int raw) {
  if (raw < 0) return Error{1};
  return raw;
}

void discards_validate_result(const Options& opts) {
  opts.validate();
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: result of 'validate' (an Expected) is discarded [xatpg-unchecked-expected]
}

int unwraps_without_any_check(int raw) {
  Expected<int> width = parse_width(raw);
  return width.value();
  // CHECK-MESSAGES: :[[@LINE-1]]:10: warning: has no dominating has_value()/boolean check [xatpg-unchecked-expected]
}

int check_of_a_different_variable(int raw) {
  Expected<int> lhs = parse_width(raw);
  Expected<int> rhs = parse_width(raw + 1);
  if (!lhs) return 0;
  return rhs.value();
  // CHECK-MESSAGES: :[[@LINE-1]]:10: warning: has no dominating has_value()/boolean check [xatpg-unchecked-expected]
}

int check_does_not_outlive_its_block(int raw) {
  Expected<int> width = parse_width(raw);
  {
    if (!width) return 0;
  }
  return width.value();
  // CHECK-MESSAGES: :[[@LINE-1]]:10: warning: has no dominating has_value()/boolean check [xatpg-unchecked-expected]
}
