// Negative fixtures for xatpg-same-manager: everything here is legal and
// must produce zero diagnostics — two managers may coexist as long as no
// operation mixes their handles, and NOLINT silences an intentional mix.
#include "xatpg_stub.hpp"

using xatpg::Bdd;
using xatpg::BddManager;

void two_managers_kept_apart() {
  BddManager m1;
  BddManager m2;
  Bdd a1 = m1.var(0);
  Bdd b1 = m1.var(1);
  Bdd a2 = m2.var(0);
  Bdd b2 = m2.var(1);

  Bdd fine1 = a1 & b1;
  Bdd fine2 = a2 | b2;
  Bdd fine3 = m1.ite(a1, b1, fine1);
  Bdd fine4 = m2.apply_and(a2, fine2);
  (void)fine3;
  (void)fine4;
}

void copies_inherit_the_owner() {
  BddManager m1;
  BddManager m2;
  Bdd a = m1.var(0);
  Bdd b = a;
  Bdd c = a & b;
  Bdd other = m2.var(0);
  Bdd d = m2.apply_or(other, other);
  (void)c;
  (void)d;
}

void suppressed_with_nolint() {
  BddManager m1;
  BddManager m2;
  Bdd a = m1.var(0);
  Bdd b = m2.var(0);
  Bdd deliberate = a & b;  // NOLINT(xatpg-same-manager) — death-test pattern
  (void)deliberate;
}
