// Negative fixtures for xatpg-raw-edge-arith: everything here is legal and
// must produce zero diagnostics.  Bit arithmetic on values that are not
// packed edge words, stream shifts, reference declarators, and NOLINT'd
// kernel-style code are all fine outside src/bdd/.
#include <cstdint>
#include <iostream>
#include <vector>

#include "xatpg_stub.hpp"

struct GraphEdge {
  int to = 0;
  std::uint32_t edge_word = 0;
};

struct Graph {
  std::vector<GraphEdge> edges;
};

// Ordinary bit arithmetic on non-edge values is not the kernel encoding.
std::uint32_t hash_combine(std::uint32_t seed, std::uint32_t v) {
  seed ^= v + 0x9e3779b9u + (seed << 6) + (seed >> 2);
  return seed;
}

std::uint32_t align_up(std::uint32_t n) { return (n + 7u) & ~7u; }

// A wider shift is not the (node << 1) | c packing.
std::uint64_t pack_pair(std::uint32_t head, std::uint32_t tail) {
  return (static_cast<std::uint64_t>(head) << 32) | tail;
}

// Stream insertion of an edge-named value is a shift token but not edge
// arithmetic: the right operand is neither a literal nor an edge word.
void dump(std::ostream& os, const Graph& graph) {
  for (const auto& edge : graph.edges) {
    os << edge.to << '\n';
  }
}

// Reference declarators use '&' as part of the type, not as an operator.
std::uint32_t first_word(const Graph& graph) {
  const auto& edge = graph.edges.front();
  return edge.edge_word;
}

// Logical and compound forms are never bit arithmetic.
bool both_set(bool edge_live, bool edge_marked) {
  return edge_live && edge_marked;
}

// Kernel-style code that genuinely must touch the encoding documents it.
std::uint32_t sanctioned_peek(std::uint32_t edge) {
  return edge >> 1;  // NOLINT(xatpg-raw-edge-arith) mirrors kernel helper
}
