// Negative fixtures for xatpg-frozen-base-mutation: every form here is a
// legal READ through the frozen-base pointer (or not a base access at all)
// and must produce zero diagnostics.
#include <cstddef>
#include <cstdint>
#include <iostream>

#include "xatpg_stub.hpp"

struct Node {
  std::uint32_t next = 0;
  std::uint32_t ref = 0;
};

struct Manager {
  Node* nodes_ = nullptr;
  std::uint32_t head = 0;
  std::size_t size = 0;
  std::size_t allocated_nodes() const { return size; }
  const Manager* base() const { return base_; }
  const Manager* base_ = nullptr;
};

// Plain reads, comparisons, and const method calls through the pointer.
std::uint32_t walk_a_chain(const Manager& delta, std::uint32_t n) {
  std::uint32_t hops = 0;
  for (; n != 0; n = delta.base_->nodes_[n].next) ++hops;
  return hops;
}

bool arena_is_empty(const Manager& delta) {
  return delta.base_->allocated_nodes() == 0;
}

bool compares_are_not_mutations(const Manager& delta) {
  return delta.base_->head <= 4u && delta.base_->head != 0u &&
         delta.base()->head >= 1u;
}

// The pointer itself being tested / rebound locally is not a base write.
bool is_delta(const Manager& m) { return m.base_ != nullptr; }

std::size_t base_size_or_zero(const Manager& m) {
  const Manager* base = m.base();
  return base == nullptr ? 0 : base->allocated_nodes();
}

// Reads as call arguments and stream output.
void dump(std::ostream& os, const Manager& delta, std::uint32_t n) {
  os << delta.base_->nodes_[n].ref << '\n';
}

// An unrelated variable merely named like the member mutates freely.
std::uint32_t local_accumulator() {
  std::uint32_t base_total = 0;
  base_total += 3u;
  ++base_total;
  return base_total;
}

// A sanctioned exception documents itself (mirrors clang-tidy semantics).
void sanctioned(Manager& delta) {
  delta.base_->head = 0;  // NOLINT(xatpg-frozen-base-mutation) test rig only
}
