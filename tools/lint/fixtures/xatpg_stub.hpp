// Minimal self-contained stand-ins for the xatpg types the lint fixtures
// exercise.  The fixtures must compile as ordinary C++ (the clang-tidy
// plugin's tests parse them with the real AST), but they must not drag the
// whole library into the lint suite — so this stub mirrors just the shapes
// the checks reason about: Bdd handles bound to a BddManager, packed edge
// words, and the Expected<T> error carrier.
#pragma once

#include <cstdint>
#include <utility>

namespace xatpg {

class BddManager;

class Bdd {
 public:
  Bdd() = default;
  [[nodiscard]] BddManager* manager() const { return mgr_; }
  [[nodiscard]] std::uint32_t index() const { return idx_; }
  Bdd operator&(const Bdd& rhs) const { return rhs; }
  Bdd operator|(const Bdd& rhs) const { return rhs; }
  Bdd operator^(const Bdd& rhs) const { return rhs; }
  Bdd operator!() const { return *this; }

 private:
  friend class BddManager;
  BddManager* mgr_ = nullptr;
  std::uint32_t idx_ = 0;
};

class BddManager {
 public:
  Bdd var(std::uint32_t) { return Bdd(); }
  Bdd nvar(std::uint32_t) { return Bdd(); }
  Bdd bdd_true() { return Bdd(); }
  Bdd ite(const Bdd&, const Bdd& g, const Bdd&) { return g; }
  Bdd apply_and(const Bdd& f, const Bdd&) { return f; }
  Bdd apply_or(const Bdd& f, const Bdd&) { return f; }
  Bdd exists(const Bdd& f, const Bdd&) { return f; }
};

struct Error {
  int code = 0;
};

template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)), ok_(true) {}
  Expected(Error error) : error_(error) {}
  [[nodiscard]] bool has_value() const { return ok_; }
  explicit operator bool() const { return ok_; }
  T& value() { return value_; }
  [[nodiscard]] const Error& error() const { return error_; }

 private:
  T value_{};
  Error error_{};
  bool ok_ = false;
};

template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : error_(error), ok_(false) {}
  [[nodiscard]] bool has_value() const { return ok_; }
  explicit operator bool() const { return ok_; }
  void value() const {}
  [[nodiscard]] const Error& error() const { return error_; }

 private:
  Error error_{};
  bool ok_ = true;
};

struct Options {
  [[nodiscard]] Expected<void> validate() const { return {}; }
};

}  // namespace xatpg
