// Negative fixtures for xatpg-unchecked-expected: every unwrap below is
// dominated by a check of the same variable, and every Expected result is
// consumed — zero diagnostics expected.
#include "xatpg_stub.hpp"

using xatpg::Error;
using xatpg::Expected;
using xatpg::Options;

Expected<int> parse_depth(int raw) {
  if (raw < 0) return Error{2};
  return raw;
}

int assigned_and_tested(const Options& opts, int raw) {
  Expected<void> ok = opts.validate();
  if (!ok) return -1;
  Expected<int> depth = parse_depth(raw);
  if (!depth) return -1;
  return depth.value();
}

int dominated_by_has_value(int raw) {
  Expected<int> depth = parse_depth(raw);
  if (depth.has_value()) {
    return depth.value();
  }
  return 0;
}

int same_line_ternary(int raw) {
  Expected<int> depth = parse_depth(raw);
  return depth.has_value() ? depth.value() : 0;
}

int error_branch_dominates(int raw) {
  Expected<int> depth = parse_depth(raw);
  if (!depth.has_value()) {
    return -depth.error().code;
  }
  return depth.value();
}

void intentionally_ignored(const Options& opts) {
  opts.validate();  // NOLINT(xatpg-unchecked-expected) probing for aborts
}
