// Positive fixtures for xatpg-frozen-base-mutation: any write through a
// delta manager's frozen-base pointer — or a const_cast that would enable
// one — must be flagged.  The base arena is published read-only at freeze()
// and read lock-free by every worker thread; a store through it is a data
// race, not merely a style problem.
#include <cstdint>

#include "xatpg_stub.hpp"

struct Node {
  std::uint32_t next = 0;
  std::uint32_t ref = 0;
};

struct Manager {
  Node* nodes_ = nullptr;
  std::uint32_t head = 0;
  std::size_t gc_threshold = 0;
  const Manager* base() const { return base_; }
  const Manager* base_ = nullptr;
};

void assign_through_base(Manager& delta, std::uint32_t n) {
  delta.base_->nodes_[n].next = 0;
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: '=' through the frozen base [xatpg-frozen-base-mutation]
}

void compound_assign_through_base(Manager& delta) {
  delta.base_->head |= 1u;
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: '|=' through the frozen base [xatpg-frozen-base-mutation]
}

void bump_a_refcount(Manager& delta, std::uint32_t n) {
  delta.base_->nodes_[n].ref++;
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: '++' through the frozen base [xatpg-frozen-base-mutation]
}

void prefix_bump(Manager& delta, std::uint32_t n) {
  ++delta.base_->nodes_[n].ref;
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: '++' through the frozen base [xatpg-frozen-base-mutation]
}

void mutate_via_accessor(Manager& delta) {
  delta.base()->head -= 2u;
  // CHECK-MESSAGES: :[[@LINE-1]]:3: warning: '-=' through the frozen base [xatpg-frozen-base-mutation]
}

Manager* launder_away_the_const(const Manager& delta) {
  return const_cast<Manager*>(delta.base_);
  // CHECK-MESSAGES: :[[@LINE-1]]:10: warning: const_cast strips the frozen base's constness [xatpg-frozen-base-mutation]
}
