#include "XatpgTidyChecks.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::xatpg {
namespace {

/// Trace a Bdd-typed expression back to the local BddManager variable it was
/// produced from, looking through implicit casts, parentheses, copy
/// construction, and chains of `Bdd x = <expr on manager m>;` initialisers.
/// Returns nullptr when the owner cannot be determined (e.g. a parameter) —
/// unknown owners are never reported, keeping the check conservative.
const VarDecl* managerOf(const Expr* E, unsigned Depth = 0) {
  if (E == nullptr || Depth > 16) return nullptr;
  E = E->IgnoreParenImpCasts();

  // m.var(0), m.ite(...), ... : the implicit object argument is the owner.
  if (const auto* Call = dyn_cast<CXXMemberCallExpr>(E)) {
    const Expr* Obj = Call->getImplicitObjectArgument();
    if (Obj == nullptr) return nullptr;
    Obj = Obj->IgnoreParenImpCasts();
    if (const auto* Ref = dyn_cast<DeclRefExpr>(Obj)) {
      if (const auto* VD = dyn_cast<VarDecl>(Ref->getDecl())) {
        const auto* RD = VD->getType()->getAsCXXRecordDecl();
        if (RD != nullptr && RD->getName() == "BddManager") return VD;
        // A Bdd receiver (b.low(), f & g via member operator): recurse into
        // the receiver's own provenance.
        return managerOf(Obj, Depth + 1);
      }
    }
    return nullptr;
  }

  // Copy/move construction wraps the source expression.
  if (const auto* Construct = dyn_cast<CXXConstructExpr>(E)) {
    if (Construct->getNumArgs() == 1)
      return managerOf(Construct->getArg(0), Depth + 1);
    return nullptr;
  }

  // A named Bdd variable: follow its initialiser.
  if (const auto* Ref = dyn_cast<DeclRefExpr>(E)) {
    if (const auto* VD = dyn_cast<VarDecl>(Ref->getDecl())) {
      if (VD->hasInit()) return managerOf(VD->getInit(), Depth + 1);
    }
    return nullptr;
  }

  // f & g, f | g, ... : either side determines the owner.
  if (const auto* Op = dyn_cast<CXXOperatorCallExpr>(E)) {
    for (const Expr* Arg : Op->arguments()) {
      if (const VarDecl* VD = managerOf(Arg, Depth + 1)) return VD;
    }
  }
  return nullptr;
}

AST_MATCHER(CXXRecordDecl, isBddHandle) { return Node.getName() == "Bdd"; }

}  // namespace

void SameManagerCheck::registerMatchers(MatchFinder* Finder) {
  const auto BddType = hasType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(cxxRecordDecl(isBddHandle())))));

  // Bdd operator&/|/^ with Bdd operands.
  Finder->addMatcher(
      cxxOperatorCallExpr(hasAnyOperatorName("&", "|", "^"),
                          argumentCountIs(2), hasArgument(0, expr(BddType)),
                          hasArgument(1, expr(BddType)))
          .bind("binop"),
      this);

  // BddManager method calls taking Bdd arguments.
  Finder->addMatcher(
      cxxMemberCallExpr(
          on(declRefExpr(to(varDecl(hasType(cxxRecordDecl(
                                        hasName("BddManager"))))
                                .bind("recv")))))
          .bind("call"),
      this);
}

void SameManagerCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* Op = Result.Nodes.getNodeAs<CXXOperatorCallExpr>("binop")) {
    const VarDecl* Lhs = managerOf(Op->getArg(0));
    const VarDecl* Rhs = managerOf(Op->getArg(1));
    if (Lhs != nullptr && Rhs != nullptr && Lhs != Rhs) {
      diag(Op->getOperatorLoc(),
           "operands of this Bdd operation belong to different BddManagers "
           "('%0' vs '%1') — BDD operands must share one manager (the kernel "
           "XATPG_CHECKs this at runtime; fix the call site)")
          << Lhs->getName() << Rhs->getName();
    }
    return;
  }

  const auto* Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
  const auto* Recv = Result.Nodes.getNodeAs<VarDecl>("recv");
  if (Call == nullptr || Recv == nullptr) return;
  for (const Expr* Arg : Call->arguments()) {
    const VarDecl* Owner = managerOf(Arg);
    if (Owner != nullptr && Owner != Recv) {
      diag(Arg->getExprLoc(),
           "argument belongs to BddManager '%0' but the operation runs on "
           "'%1' — BDD operands must share one manager (the kernel "
           "XATPG_CHECKs this at runtime; fix the call site)")
          << Owner->getName() << Recv->getName();
      return;
    }
  }
}

}  // namespace clang::tidy::xatpg
