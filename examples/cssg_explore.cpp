// Explore the synchronous abstraction of an asynchronous benchmark: dump
// TCSG/CSSG statistics (the Figure 2 pipeline) and emit Graphviz for both
// the STG state graph and the CSSG.
//
//   $ ./examples/cssg_explore [benchmark-name]    (default: rpdft)
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "sgraph/cssg.hpp"

int main(int argc, char** argv) {
  using namespace xatpg;
  const std::string name = argc > 1 ? argv[1] : "rpdft";

  const Stg stg = benchmark_stg(name);
  const StateGraph sg = expand_stg(stg);
  std::cout << "# STG '" << name << "': " << stg.num_signals() << " signals, "
            << stg.num_transitions() << " transitions, " << sg.num_states()
            << " specification states\n";
  std::cout << "# specification state graph (Graphviz):\n"
            << state_graph_to_dot(sg) << "\n";

  const SynthResult synth = benchmark_circuit(name, SynthStyle::SpeedIndependent);
  CssgOptions options;
  options.k = 24;
  Cssg cssg(synth.netlist, {synth.reset_state}, options);
  const CssgStats& stats = cssg.stats();
  std::cout << "# TCSG reachable states:        " << stats.reachable_states
            << "\n# stable states:               " << stats.stable_states
            << "\n# TCR_k pairs:                 " << stats.tcr_pairs
            << "\n# pruned non-confluent pairs:  " << stats.nonconfluent_pairs
            << "\n# pruned oscillating pairs:    " << stats.unstable_pairs
            << "\n# CSSG edges (valid vectors):  " << stats.cssg_edges
            << "\n# CSSG-reachable states:       "
            << stats.cssg_reachable_states << "\n\n";
  std::cout << "# CSSG (Graphviz):\n" << cssg.to_dot();
  return 0;
}
