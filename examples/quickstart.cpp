// Quickstart for the public API: open an xatpg::Session on an asynchronous
// circuit, run the full ATPG flow with streaming progress, and print the
// generated synchronous test program.
//
//   $ ./examples/quickstart
//
// The circuit is a Muller C-element with a completion detector (the
// "chu150" benchmark reconstruction), synthesized speed-independently.
// Everything below uses only the installed headers (include/xatpg) — this
// is exactly what an out-of-tree consumer of find_package(xatpg) writes.
#include <iostream>

#include "xatpg/xatpg.hpp"

namespace {

/// Minimal observer: one line per phase transition (see xatpg/progress.hpp
/// for the full streaming contract — per-fault events, periodic snapshots
/// with per-shard BDD statistics, cooperative cancellation).
class PhasePrinter : public xatpg::RunObserver {
 public:
  void on_phase(xatpg::RunPhase phase) override {
    std::cout << "  [phase] " << xatpg::run_phase_name(phase) << "\n";
  }
};

}  // namespace

int main() {
  using namespace xatpg;

  // 1. Open a session.  Any failure — malformed .xnl text, unknown
  //    benchmark, degenerate options — comes back as a typed xatpg::Error
  //    instead of an abort.
  AtpgOptions options;
  options.k = 24;            // max gate transitions per test cycle
  options.random_budget = 32;
  options.threads = 2;       // fault-parallel 3-phase search (0 = all cores);
                             // outcomes are identical for any thread count
  options.reorder.enabled = true;  // dynamic BDD reordering (Rudell sifting)
                                   // on every symbolic shard; like threads,
                                   // it never changes outcomes — only node
                                   // counts and timing
  Expected<Session> session =
      Session::from_benchmark("chu150", SynthStyle::SpeedIndependent, options);
  if (!session) {
    std::cerr << "session failed: " << session.error().to_string() << "\n";
    return 1;
  }
  std::cout << "Circuit '" << session->circuit_name() << "': "
            << session->num_inputs() << " inputs, " << session->num_outputs()
            << " outputs, " << session->num_signals() << " signals, "
            << session->num_pins() << " gate input pins\n\n";

  const CssgStats& cssg = session->cssg_stats();
  std::cout << "CSSG: " << cssg.stable_states << " stable states, "
            << cssg.cssg_edges << " valid test vectors (pruned "
            << cssg.nonconfluent_pairs << " non-confluent and "
            << cssg.unstable_pairs << " oscillating pairs)\n\n";

  // 2. Run ATPG for the input stuck-at model, streaming phase transitions.
  //    A CancelToken could be passed alongside the observer to stop the run
  //    between faults; add_faults() would later grow the universe without
  //    redoing the committed work.
  PhasePrinter progress;
  const Expected<AtpgResult> result =
      session->run(session->input_stuck_faults(), &progress);
  if (!result) {
    std::cerr << "run failed: " << result.error().to_string() << "\n";
    return 1;
  }
  std::cout << "\nInput stuck-at coverage: " << result->stats.covered << "/"
            << result->stats.total_faults << " ("
            << 100.0 * result->stats.coverage() << "%)\n"
            << "  by random TPG:       " << result->stats.by_random << "\n"
            << "  by 3-phase ATPG:     " << result->stats.by_three_phase << "\n"
            << "  by fault simulation: " << result->stats.by_fault_sim << "\n\n";

  // 3. Export the test program a synchronous tester would replay.
  const Expected<std::string> program = session->test_program(*result);
  if (!program) {
    std::cerr << "export failed: " << program.error().to_string() << "\n";
    return 1;
  }
  std::cout << "Test program:\n" << *program;
  return 0;
}
