// Quickstart: load an asynchronous circuit, build its synchronous CSSG
// abstraction, run the full ATPG flow, and print the generated synchronous
// test program.
//
//   $ ./examples/quickstart
//
// The circuit is a Muller C-element with a completion detector (the
// "chu150" benchmark reconstruction), synthesized speed-independently.
#include <iostream>

#include "atpg/engine.hpp"
#include "benchmarks/benchmarks.hpp"

int main() {
  using namespace xatpg;

  // 1. Get a gate-level asynchronous circuit.  Any netlist parsed from the
  //    .xnl format works the same way; here we synthesize a benchmark from
  //    its STG specification.
  const SynthResult synth =
      benchmark_circuit("chu150", SynthStyle::SpeedIndependent);
  const Netlist& circuit = synth.netlist;
  std::cout << "Circuit '" << circuit.name() << "': "
            << circuit.inputs().size() << " inputs, "
            << circuit.outputs().size() << " outputs, "
            << circuit.num_signals() << " signals, " << circuit.num_pins()
            << " gate input pins\n\n";

  // 2. Build the CSSG (the deterministic synchronous FSM abstraction) and
  //    run ATPG for the input stuck-at model.
  AtpgOptions options;
  options.k = 24;            // max gate transitions per test cycle
  options.random_budget = 32;
  options.threads = 2;       // fault-parallel 3-phase search (0 = all cores);
                             // outcomes are identical for any thread count
  options.reorder.enabled = true;  // dynamic BDD reordering (Rudell sifting)
                                   // on every symbolic shard; like threads,
                                   // it never changes outcomes — only node
                                   // counts and timing
  AtpgEngine engine(circuit, synth.reset_state, options);

  const CssgStats& cssg = engine.cssg().stats();
  std::cout << "CSSG: " << cssg.stable_states << " stable states, "
            << cssg.cssg_edges << " valid test vectors (pruned "
            << cssg.nonconfluent_pairs << " non-confluent and "
            << cssg.unstable_pairs << " oscillating pairs)\n\n";

  const AtpgResult result = engine.run(input_stuck_faults(circuit));
  std::cout << "Input stuck-at coverage: " << result.stats.covered << "/"
            << result.stats.total_faults << " ("
            << 100.0 * result.stats.coverage() << "%)\n"
            << "  by random TPG:       " << result.stats.by_random << "\n"
            << "  by 3-phase ATPG:     " << result.stats.by_three_phase << "\n"
            << "  by fault simulation: " << result.stats.by_fault_sim << "\n\n";

  // 3. Export the test program a synchronous tester would replay.
  std::cout << "Test program:\n";
  write_test_program(std::cout, circuit, engine, result.sequences);
  return 0;
}
