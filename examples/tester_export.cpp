// Generate a complete synchronous test program through the public
// xatpg::Session facade and then *be* the tester: replay it cycle by cycle
// against a simulated device (fault-free, plus one sample faulty device)
// and report the verdicts.
//
//   $ ./examples/tester_export [benchmark-name]    (default: ebergen)
//
// The ATPG flow (load, run, export) uses only the public API.  The device
// replay at the bottom deliberately reaches into the internal simulators
// (sim/explicit.hpp, atpg/fault_sim.hpp): it plays the *device under test*,
// not the library — an out-of-tree tester would drive real silicon here.
#include <iostream>
#include <sstream>

#include "xatpg/xatpg.hpp"

// Internal headers, used only to simulate the DUT (see the file comment).
#include "sim/explicit.hpp"
#include "atpg/fault_sim.hpp"

int main(int argc, char** argv) {
  using namespace xatpg;
  const std::string name = argc > 1 ? argv[1] : "ebergen";

  AtpgOptions options;
  options.random_budget = 32;
  Expected<Session> session =
      Session::from_benchmark(name, SynthStyle::SpeedIndependent, options);
  if (!session) {
    std::cerr << "session failed: " << session.error().to_string() << "\n";
    return 1;
  }
  const Expected<AtpgResult> run = session->run(session->input_stuck_faults());
  if (!run) {
    std::cerr << "run failed: " << run.error().to_string() << "\n";
    return 1;
  }
  const AtpgResult& result = *run;
  const Expected<std::string> program = session->test_program(result);
  if (!program) {
    std::cerr << "export failed: " << program.error().to_string() << "\n";
    return 1;
  }
  std::cout << *program << "\n";

  // --- tester side: replay against simulated devices -----------------------
  // Reconstruct the circuit from the session's own .xnl export, exactly the
  // way a detached tester would receive it, and read the expected
  // primary-output strobes back out of the program *text* — the tester
  // trusts the shipped program, not the library internals.
  const Netlist circuit = parse_xnl_string(session->circuit_xnl());
  const std::vector<bool>& reset = session->reset_state();
  std::vector<std::vector<std::string>> expected;  // per sequence, per cycle
  {
    std::istringstream in(*program);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind(".sequence", 0) == 0) {
        expected.emplace_back();
      } else if (!expected.empty()) {
        const auto slash = line.find(" / ");
        if (slash != std::string::npos)
          expected.back().push_back(line.substr(slash + 3));
      }
    }
  }

  std::size_t cycles = 0;
  bool golden_ok = expected.size() == result.sequences.size();
  std::vector<std::vector<std::vector<bool>>> good_states;  // per seq, per cycle
  for (std::size_t s = 0; s < result.sequences.size(); ++s) {
    const auto& seq = result.sequences[s];
    std::vector<bool> device = reset;
    std::vector<std::vector<bool>> states;
    for (std::size_t t = 0; t < seq.vectors.size(); ++t) {
      const auto settled =
          explore_settling(circuit, device, seq.vectors[t], options.k);
      if (!settled.confluent()) {
        golden_ok = false;
        break;
      }
      device = *settled.stable_states.begin();
      states.push_back(device);
      ++cycles;
      // Strobe: the device's outputs must match the program's printed
      // response for this cycle.
      std::string response;
      for (const SignalId po : circuit.outputs())
        response += device[po] ? '1' : '0';
      if (s >= expected.size() || t >= expected[s].size() ||
          expected[s][t] != response)
        golden_ok = false;
    }
    good_states.push_back(std::move(states));
  }
  std::cout << "# golden-device replay: " << cycles << " cycles, "
            << (golden_ok ? "all strobes match" : "MISMATCH (bug!)") << "\n";

  // Replay against one faulty device (first covered fault).
  for (const auto& outcome : result.outcomes) {
    if (outcome.covered_by == CoveredBy::None) continue;
    const auto& seq = result.sequences[outcome.sequence_index];
    const auto& states = good_states[outcome.sequence_index];
    if (states.size() != seq.vectors.size()) continue;  // golden replay broke
    FaultSimulator sim(circuit, outcome.fault, reset);
    DetectStatus status = sim.status();
    std::size_t at = 0;
    for (std::size_t t = 0;
         t < seq.vectors.size() && status == DetectStatus::Undetermined; ++t) {
      status = sim.step(seq.vectors[t], states[t]);
      at = t + 1;
    }
    std::cout << "# faulty-device replay (" << session->describe(outcome.fault)
              << "): flagged at cycle " << at << " of sequence "
              << outcome.sequence_index << "\n";
    break;
  }
  return 0;
}
