// Generate a complete synchronous test program for a benchmark and then
// *be* the tester: replay it cycle by cycle against a simulated device
// (fault-free, plus one sample faulty device) and report the verdicts.
//
//   $ ./examples/tester_export [benchmark-name]    (default: ebergen)
#include <iostream>
#include <sstream>

#include "atpg/engine.hpp"
#include "atpg/fault_sim.hpp"
#include "benchmarks/benchmarks.hpp"
#include "sim/explicit.hpp"

int main(int argc, char** argv) {
  using namespace xatpg;
  const std::string name = argc > 1 ? argv[1] : "ebergen";

  const SynthResult synth = benchmark_circuit(name, SynthStyle::SpeedIndependent);
  const Netlist& circuit = synth.netlist;
  AtpgOptions options;
  options.random_budget = 32;
  AtpgEngine engine(circuit, synth.reset_state, options);
  const auto faults = input_stuck_faults(circuit);
  const AtpgResult result = engine.run(faults);

  std::ostringstream program;
  write_test_program(program, circuit, engine, result.sequences);
  std::cout << program.str() << "\n";

  // Replay against the fault-free device: every strobe must match.
  std::size_t cycles = 0;
  bool golden_ok = true;
  for (const auto& seq : result.sequences) {
    const auto path = engine.follow(seq);
    std::vector<bool> device = synth.reset_state;
    for (std::size_t t = 0; t < seq.vectors.size(); ++t) {
      const auto settled = explore_settling(circuit, device, seq.vectors[t],
                                            options.k);
      if (!settled.confluent()) {
        golden_ok = false;
        break;
      }
      device = *settled.stable_states.begin();
      ++cycles;
      for (const SignalId po : circuit.outputs())
        if (device[po] != engine.graph().states[(*path)[t + 1]][po])
          golden_ok = false;
    }
  }
  std::cout << "# golden-device replay: " << cycles << " cycles, "
            << (golden_ok ? "all strobes match" : "MISMATCH (bug!)") << "\n";

  // Replay against one faulty device (first covered fault).
  for (const auto& outcome : result.outcomes) {
    if (outcome.covered_by == CoveredBy::None) continue;
    const auto& seq = result.sequences[outcome.sequence_index];
    const auto path = engine.follow(seq);
    FaultSimulator sim(circuit, outcome.fault, synth.reset_state);
    DetectStatus status = sim.status();
    std::size_t at = 0;
    for (std::size_t t = 0;
         t < seq.vectors.size() && status == DetectStatus::Undetermined; ++t) {
      status = sim.step(seq.vectors[t], engine.graph().states[(*path)[t + 1]]);
      at = t + 1;
    }
    std::cout << "# faulty-device replay (" << outcome.fault.describe(circuit)
              << "): flagged at cycle " << at << " of sequence "
              << outcome.sequence_index << "\n";
    break;
  }
  return 0;
}
