// Side-by-side comparison of our CSSG-based flow with the virtual-FF
// synchronous baseline (§6.1), on one benchmark.
//
//   $ ./examples/baseline_compare [benchmark-name]    (default: dff)
#include <iostream>

#include "atpg/engine.hpp"
#include "baseline/baseline.hpp"
#include "benchmarks/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace xatpg;
  const std::string name = argc > 1 ? argv[1] : "dff";

  const SynthResult synth = benchmark_circuit(name, SynthStyle::SpeedIndependent);
  const auto faults = input_stuck_faults(synth.netlist);
  std::cout << "benchmark '" << name << "', " << faults.size()
            << " input stuck-at faults\n\n";

  AtpgOptions options;
  options.random_budget = 32;
  AtpgEngine engine(synth.netlist, synth.reset_state, options);
  const AtpgResult ours = engine.run(faults);
  std::cout << "CSSG flow (this paper):\n"
            << "  covered " << ours.stats.covered << "/" << faults.size()
            << " — every vector pre-validated by construction, no "
               "post-validation needed\n\n";

  const BaselineResult theirs =
      run_baseline(synth.netlist, synth.reset_state, faults);
  std::cout << "virtual-FF baseline [Banerjee et al.]:\n"
            << "  synchronous ATPG generated tests for " << theirs.generated
            << " faults\n"
            << "  unit-delay validation accepted      " << theirs.validated
            << "\n"
            << "  accepted but actually racy          " << theirs.optimistic
            << "  <- the optimism the paper criticises\n";
  for (const auto& fr : theirs.per_fault) {
    if (!fr.racy) continue;
    std::cout << "    e.g. " << fr.fault.describe(synth.netlist)
              << ": validated sequence contains a non-confluent vector\n";
    break;
  }
  return 0;
}
