// Walkthrough of the paper's §2 motivation (Figure 1): why asynchronous
// circuits cannot be tested with arbitrary synchronous vectors.
//
// Circuit (a) shows non-confluence: applying AB=10 to the stable state with
// A=0,B=1 races a rising `a` against a falling `b`; depending on gate
// delays the pulse on c may or may not latch y.  Circuit (b) shows
// oscillation: raising A with B=0 makes the NAND/OR ring unstable forever.
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "sim/explicit.hpp"
#include "sim/ternary.hpp"

namespace {

void show(const xatpg::Netlist& n, const std::vector<bool>& state) {
  for (xatpg::SignalId s = 0; s < n.num_signals(); ++s)
    std::cout << n.signal_name(s) << "=" << state[s] << " ";
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace xatpg;

  // --- Figure 1(a): non-confluence -----------------------------------------
  std::vector<bool> reset_a;
  const Netlist fig1a = fig1a_circuit(&reset_a);
  std::cout << "Figure 1(a) — non-confluence\ninitial stable state: ";
  show(fig1a, reset_a);

  std::cout << "\napplying AB = 10 (both inputs flip):\n";
  const auto race = explore_settling(fig1a, reset_a, {true, false}, 24);
  std::cout << "  exhaustive exploration finds " << race.stable_states.size()
            << " distinct settling states:\n";
  for (const auto& st : race.stable_states) {
    std::cout << "    ";
    show(fig1a, st);
  }
  TernarySim sim_a(fig1a);
  const auto ternary = sim_a.settle(reset_a, {true, false});
  std::cout << "  ternary simulation marks the racing signals Φ: y="
            << (ternary.state[fig1a.signal("y")] == Ternary::X ? "Φ" : "01")
            << " — the vector is rejected for testing\n";

  std::cout << "\napplying AB = 11 (A rises, B held):\n";
  const auto safe = explore_settling(fig1a, reset_a, {true, true}, 24);
  std::cout << "  unique settling state — a valid synchronous test vector:\n    ";
  show(fig1a, *safe.stable_states.begin());

  // --- Figure 1(b): oscillation ---------------------------------------------
  std::vector<bool> reset_b;
  const Netlist fig1b = fig1b_circuit(&reset_b);
  std::cout << "\nFigure 1(b) — oscillation\ninitial stable state: ";
  show(fig1b, reset_b);
  std::cout << "\napplying AB = 10 (A rises, ring enabled):\n";
  const auto osc = explore_settling(fig1b, reset_b, {true, false}, 32);
  std::cout << "  exploration still has unstable states after 32 transitions"
            << (osc.exceeded_bound ? " — the circuit oscillates (c-,d-,c+,d+ "
                                     "repeats)\n"
                                   : "?\n");
  std::cout << "\napplying AB = 01 (B rises, ring broken by the OR):\n";
  const auto ok = explore_settling(fig1b, reset_b, {false, true}, 32);
  std::cout << "  unique settling state:\n    ";
  show(fig1b, *ok.stable_states.begin());
  return 0;
}
