// The benchmark suite.
//
// The paper evaluates on 24 asynchronous control circuits synthesized by
// Petrify (speed-independent) and SIS (hazard-free bounded-delay) from the
// same STG specifications.  Those specific netlists were never published
// with the paper, so this module provides *reconstructions*: handshake
// controller STGs built from parameterized templates (sequencers, fork/join
// controllers, decoupled pipeline stages, C-element combiners, storage
// elements), named after the paper's benchmarks and sized comparably.  Each
// spec passes the CSC check and synthesizes in both implementation styles —
// see DESIGN.md §2 for why this substitution preserves the evaluation's
// shape.
//
// The three circuits the paper singles out for poor bounded-delay coverage
// (trimos-send, vbe10b, vbe6a) are mapped with `extra_redundancy`, modeling
// the spurious-pulse covers SIS adds (§6: "logic redundancies added by the
// synthesis tools in order to avoid spurious pulses").
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "stg/stg.hpp"
#include "synth/synth.hpp"

namespace xatpg {

/// Names in the speed-independent suite (Table 1), in the paper's order.
const std::vector<std::string>& si_benchmark_names();

/// Names in the hazard-free bounded-delay suite (Table 2).
const std::vector<std::string>& bd_benchmark_names();

/// True for the circuits whose SIS-style implementation carries redundant
/// hazard covers (trimos-send, vbe10b, vbe6a).
bool benchmark_is_redundant(const std::string& name);

/// Build the STG specification for a named benchmark; throws on unknown
/// names.
Stg benchmark_stg(const std::string& name);

/// Synthesize a named benchmark in the given style (redundancy applied
/// automatically for the flagged circuits when style == BoundedDelay).
SynthResult benchmark_circuit(const std::string& name, SynthStyle style);

// --- Figure 1 circuits -------------------------------------------------------

/// Reconstruction of Figure 1(a): non-confluence (a rising/falling input
/// race may or may not latch y).  Returns the netlist and the paper's
/// initial stable state (A=0, B=1).
Netlist fig1a_circuit(std::vector<bool>* initial_state = nullptr);

/// Reconstruction of Figure 1(b): oscillation (raising A with B=0 starts a
/// NAND/OR ring; B=1 breaks it).  Initial stable state has A=B=0.
Netlist fig1b_circuit(std::vector<bool>* initial_state = nullptr);

// --- template builders (exposed for tests and custom experiments) -----------

/// k-stage handshake sequencer: R0+ A0+ R1+ A1+ ... then the falling phase.
/// `internal_after` inserts an internal signal after the i-th rising event;
/// pairs listed in `inverted` start at 1 and fall first (active-low).
/// `fall_offset` shifts where each internal signal's falling transition is
/// spliced in the falling phase (asymmetric completion detection).
Stg make_sequencer(const std::string& name, unsigned pairs,
                   const std::vector<unsigned>& internal_after = {},
                   const std::vector<unsigned>& inverted = {},
                   unsigned fall_offset = 0);

/// Fork/join controller: Rin forks to `branches` request/acknowledge pairs,
/// joined into Ain.  `internal_tail` adds an internal completion signal.
Stg make_forkjoin(const std::string& name, unsigned branches,
                  bool internal_tail = false);

/// Two-stage decoupled pipeline controller with an internal latch signal;
/// `deep_output` adds an internal completion signal on the output handshake.
Stg make_pipeline2(const std::string& name, bool deep_output = false);

/// C-element combiner: all `inputs` requests rise -> ack rises, all fall ->
/// ack falls.  `tail` appends an internal delay signal after the ack.
Stg make_celem(const std::string& name, unsigned inputs, bool tail = false);

/// Sample-and-hold storage element (d is sampled by c into q); `shadow`
/// adds an internal shadow-latch signal behind q.
Stg make_storage(const std::string& name, bool shadow = false);

/// Toggle element: requests on r rotate through acknowledges a0..a_{ways-1},
/// steered by internal phase signals (whose faults flip the steering and
/// are therefore fully observable).  The steering covers carry literals of
/// both polarities — exactly the structure on which SIS-style consensus
/// hazard covers introduce redundancy.  `pre_detector` adds an internal
/// completion signal between each request and its acknowledge.
Stg make_toggle(const std::string& name, unsigned ways = 2,
                bool pre_detector = false);

}  // namespace xatpg
