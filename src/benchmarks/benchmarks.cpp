#include "benchmarks/benchmarks.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xatpg {

// ---------------------------------------------------------------------------
// Template builders
// ---------------------------------------------------------------------------

Stg make_sequencer(const std::string& name, unsigned pairs,
                   const std::vector<unsigned>& internal_after,
                   const std::vector<unsigned>& inverted,
                   unsigned fall_offset) {
  XATPG_CHECK(pairs >= 1);
  Stg stg(name);
  const auto is_inverted = [&](unsigned i) {
    return std::find(inverted.begin(), inverted.end(), i) != inverted.end();
  };
  std::vector<std::uint32_t> req(pairs), ack(pairs);
  for (unsigned i = 0; i < pairs; ++i) {
    req[i] = stg.add_signal("r" + std::to_string(i), SignalKind::Input,
                            is_inverted(i));
    ack[i] = stg.add_signal("a" + std::to_string(i), SignalKind::Output,
                            is_inverted(i));
  }
  std::vector<std::uint32_t> internals;
  for (std::size_t j = 0; j < internal_after.size(); ++j)
    internals.push_back(
        stg.add_signal("x" + std::to_string(j), SignalKind::Internal, false));

  // Build the event ring: rising phase r0+ a0+ r1+ a1+ ..., falling phase
  // r0- a0- r1- a1- ...; internal signals x_j+ are spliced after the
  // internal_after[j]-th rising event (and x_j- after the matching falling
  // event).
  std::vector<std::uint32_t> ring;
  const auto splice = [&](unsigned event_pos, bool rising) {
    for (std::size_t j = 0; j < internal_after.size(); ++j) {
      const unsigned want = rising ? internal_after[j]
                                   : (internal_after[j] + fall_offset) %
                                         (2 * pairs);
      if (want == event_pos)
        ring.push_back(stg.add_transition(internals[j], rising));
    }
  };
  for (unsigned i = 0; i < pairs; ++i) {
    ring.push_back(stg.add_transition(req[i], !is_inverted(i)));
    splice(2 * i, true);
    ring.push_back(stg.add_transition(ack[i], !is_inverted(i)));
    splice(2 * i + 1, true);
  }
  for (unsigned i = 0; i < pairs; ++i) {
    ring.push_back(stg.add_transition(req[i], is_inverted(i)));
    splice(2 * i, false);
    ring.push_back(stg.add_transition(ack[i], is_inverted(i)));
    splice(2 * i + 1, false);
  }
  for (std::size_t i = 0; i < ring.size(); ++i)
    stg.arc(ring[i], ring[(i + 1) % ring.size()], i + 1 == ring.size() ? 1 : 0);
  return stg;
}

Stg make_forkjoin(const std::string& name, unsigned branches,
                  bool internal_tail) {
  XATPG_CHECK(branches >= 1);
  Stg stg(name);
  const auto rin = stg.add_signal("rin", SignalKind::Input, false);
  const auto ain = stg.add_signal("ain", SignalKind::Output, false);
  std::vector<std::uint32_t> r(branches), a(branches);
  for (unsigned b = 0; b < branches; ++b) {
    r[b] = stg.add_signal("r" + std::to_string(b), SignalKind::Output, false);
    a[b] = stg.add_signal("a" + std::to_string(b), SignalKind::Input, false);
  }
  const auto rin_p = stg.add_transition(rin, true);
  const auto rin_m = stg.add_transition(rin, false);
  const auto ain_p = stg.add_transition(ain, true);
  const auto ain_m = stg.add_transition(ain, false);

  // Optional internal completion detector x: the branch joins route through
  // x+ (rising phase) and x- (falling phase) before acknowledging.
  std::uint32_t rise_join = ain_p, fall_join = ain_m;
  if (internal_tail) {
    const auto x = stg.add_signal("x", SignalKind::Internal, false);
    const auto x_p = stg.add_transition(x, true);
    const auto x_m = stg.add_transition(x, false);
    stg.arc(x_p, ain_p);
    stg.arc(x_m, ain_m);
    rise_join = x_p;
    fall_join = x_m;
  }

  for (unsigned b = 0; b < branches; ++b) {
    const auto r_p = stg.add_transition(r[b], true);
    const auto r_m = stg.add_transition(r[b], false);
    const auto a_p = stg.add_transition(a[b], true);
    const auto a_m = stg.add_transition(a[b], false);
    stg.arc(rin_p, r_p);
    stg.arc(r_p, a_p);
    stg.arc(a_p, rise_join);
    stg.arc(rin_m, r_m);
    stg.arc(r_m, a_m);
    stg.arc(a_m, fall_join);
  }
  stg.arc(ain_p, rin_m);
  stg.arc(ain_m, rin_p, 1);
  return stg;
}

Stg make_pipeline2(const std::string& name, bool deep_output) {
  Stg stg(name);
  const auto rin = stg.add_signal("rin", SignalKind::Input, false);
  const auto ain = stg.add_signal("ain", SignalKind::Output, false);
  const auto x = stg.add_signal("x", SignalKind::Internal, false);
  const auto rout = stg.add_signal("rout", SignalKind::Output, false);
  const auto aout = stg.add_signal("aout", SignalKind::Input, false);

  const auto rin_p = stg.add_transition(rin, true);
  const auto rin_m = stg.add_transition(rin, false);
  const auto ain_p = stg.add_transition(ain, true);
  const auto ain_m = stg.add_transition(ain, false);
  const auto x_p = stg.add_transition(x, true);
  const auto x_m = stg.add_transition(x, false);
  const auto rout_p = stg.add_transition(rout, true);
  const auto rout_m = stg.add_transition(rout, false);
  const auto aout_p = stg.add_transition(aout, true);
  const auto aout_m = stg.add_transition(aout, false);

  // Input side: rin+ -> x+ -> ain+ -> rin- -> x- -> ain- -> (rin+).
  // ain+ additionally waits for rout+ so the input side cannot wrap around
  // to the all-quiet code while the output request is still pending (that
  // would be a CSC violation).
  stg.arc(rin_p, x_p);
  stg.arc(x_p, ain_p);
  stg.arc(ain_p, rin_m);
  stg.arc(rin_m, x_m);
  stg.arc(x_m, ain_m);
  stg.arc(ain_m, rin_p, 1);
  // Output side handshake, decoupled: x+ also launches rout+, and rout+
  // must wait for the previous aout- (initial token).
  stg.arc(x_p, rout_p);
  stg.arc(rout_p, ain_p);
  // rout may not fall before the input side acknowledged: otherwise the
  // output handshake can complete entirely while ain+ is still pending and
  // the code loses the distinction (CSC).
  stg.arc(ain_p, rout_m);
  if (deep_output) {
    // Internal completion signal between the output request and its fall.
    const auto y = stg.add_signal("y", SignalKind::Internal, false);
    const auto y_p = stg.add_transition(y, true);
    const auto y_m = stg.add_transition(y, false);
    stg.arc(rout_p, aout_p);
    stg.arc(aout_p, y_p);
    stg.arc(y_p, rout_m);
    stg.arc(rout_m, aout_m);
    stg.arc(aout_m, y_m);
    stg.arc(y_m, rout_p, 1);
  } else {
    stg.arc(rout_p, aout_p);
    stg.arc(aout_p, rout_m);
    stg.arc(rout_m, aout_m);
    stg.arc(aout_m, rout_p, 1);
  }
  // Re-arm: x+ may not fire again until rout- acknowledged the previous
  // datum (conservatively couple the phases to keep CSC).
  stg.arc(rout_m, x_p, 1);
  return stg;
}

Stg make_celem(const std::string& name, unsigned inputs, bool tail) {
  XATPG_CHECK(inputs >= 2);
  Stg stg(name);
  std::vector<std::uint32_t> r(inputs);
  for (unsigned i = 0; i < inputs; ++i)
    r[i] = stg.add_signal("r" + std::to_string(i), SignalKind::Input, false);
  const auto ack = stg.add_signal("ack", SignalKind::Output, false);
  std::uint32_t z = 0;
  if (tail) z = stg.add_signal("z", SignalKind::Internal, false);

  const auto ack_p = stg.add_transition(ack, true);
  const auto ack_m = stg.add_transition(ack, false);
  // The internal tail z is a completion detector *ahead of* the ack, so the
  // ack's next-state function genuinely depends on it (an internal signal
  // gating only input transitions would be dead logic after minimization —
  // unlike anything a synthesis tool emits).
  std::uint32_t join_p = ack_p, join_m = ack_m;
  if (tail) {
    const auto z_p = stg.add_transition(z, true);
    const auto z_m = stg.add_transition(z, false);
    stg.arc(z_p, ack_p);
    stg.arc(z_m, ack_m);
    join_p = z_p;
    join_m = z_m;
  }
  for (unsigned i = 0; i < inputs; ++i) {
    const auto r_p = stg.add_transition(r[i], true);
    const auto r_m = stg.add_transition(r[i], false);
    stg.arc(r_p, join_p);
    stg.arc(ack_p, r_m);
    stg.arc(r_m, join_m);
    stg.arc(ack_m, r_p, 1);
  }
  return stg;
}

Stg make_storage(const std::string& name, bool shadow) {
  Stg stg(name);
  const auto d = stg.add_signal("d", SignalKind::Input, false);
  const auto c = stg.add_signal("c", SignalKind::Input, false);
  const auto q = stg.add_signal("q", SignalKind::Output, false);

  const auto d_p = stg.add_transition(d, true);
  const auto d_m = stg.add_transition(d, false);
  const auto c_p = stg.add_transition(c, true);
  const auto c_m = stg.add_transition(c, false);
  const auto q_p = stg.add_transition(q, true);
  const auto q_m = stg.add_transition(q, false);

  // d+ -> c+ -> q+ -> c- -> d- -> q- -> (d+): a sequential sample-and-
  // release protocol.  With `shadow`, an internal latch s follows q and the
  // release waits for it.
  stg.arc(d_p, c_p);
  stg.arc(c_p, q_p);
  if (shadow) {
    // The shadow latch falls *before* q releases, so q's reset function
    // must observe s (distinguishing hold (d=c=0,s=1) from release
    // (d=c=0,s=0)) — keeping s in the implementation's support.
    const auto s = stg.add_signal("s", SignalKind::Internal, false);
    const auto s_p = stg.add_transition(s, true);
    const auto s_m = stg.add_transition(s, false);
    stg.arc(q_p, s_p);
    stg.arc(s_p, c_m);
    stg.arc(c_m, d_m);
    stg.arc(d_m, s_m);
    stg.arc(s_m, q_m);
    stg.arc(q_m, d_p, 1);
  } else {
    stg.arc(q_p, c_m);
    stg.arc(c_m, d_m);
    stg.arc(d_m, q_m);
    stg.arc(q_m, d_p, 1);
  }
  return stg;
}

Stg make_toggle(const std::string& name, unsigned ways, bool pre_detector) {
  XATPG_CHECK(ways >= 2);
  Stg stg(name);
  const auto r = stg.add_signal("r", SignalKind::Input, false);
  std::vector<std::uint32_t> ack(ways);
  for (unsigned w = 0; w < ways; ++w)
    ack[w] = stg.add_signal("a" + std::to_string(w), SignalKind::Output, false);
  std::vector<std::uint32_t> phase(ways - 1);
  for (unsigned j = 0; j + 1 < ways; ++j)
    phase[j] = stg.add_signal("x" + std::to_string(j), SignalKind::Internal,
                              false);
  std::uint32_t z = 0;
  if (pre_detector) z = stg.add_signal("z", SignalKind::Internal, false);

  // Event ring: round j (j < ways-1):  r+ [z+] a_j+ x_j+ r- [z-] a_j-
  // last round:                        r+ [z+] a_last+ x_0- r- [z-] a_last-
  // followed by x_1- .. x_{ways-2}-, then the closing token.
  std::vector<std::uint32_t> ring;
  for (unsigned j = 0; j < ways; ++j) {
    ring.push_back(stg.add_transition(r, true));
    if (pre_detector) ring.push_back(stg.add_transition(z, true));
    ring.push_back(stg.add_transition(ack[j], true));
    if (j + 1 < ways) {
      ring.push_back(stg.add_transition(phase[j], true));
    } else {
      ring.push_back(stg.add_transition(phase[0], false));
    }
    ring.push_back(stg.add_transition(r, false));
    if (pre_detector) ring.push_back(stg.add_transition(z, false));
    ring.push_back(stg.add_transition(ack[j], false));
  }
  for (unsigned j = 1; j + 1 < ways; ++j)
    ring.push_back(stg.add_transition(phase[j], false));
  for (std::size_t i = 0; i < ring.size(); ++i)
    stg.arc(ring[i], ring[(i + 1) % ring.size()], i + 1 == ring.size() ? 1 : 0);
  return stg;
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

Netlist fig1a_circuit(std::vector<bool>* initial_state) {
  Netlist n = parse_xnl_string(R"(
.model fig1a
.inputs A B
.outputs y
.gate BUF a A
.gate BUF b B
.gate AND c a b
.gate OR  y c y
.end
)");
  if (initial_state) {
    std::vector<bool> st(n.num_signals(), false);
    st[n.signal("B")] = true;
    st[n.signal("b")] = true;
    *initial_state = st;
  }
  return n;
}

Netlist fig1b_circuit(std::vector<bool>* initial_state) {
  Netlist n = parse_xnl_string(R"(
.model fig1b
.inputs A B
.outputs d
.gate BUF a A
.gate BUF b B
.gate NAND c a d
.gate OR d c b
.end
)");
  if (initial_state) {
    std::vector<bool> st(n.num_signals(), false);
    st[n.signal("c")] = true;
    st[n.signal("d")] = true;
    *initial_state = st;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Named benchmark registry
// ---------------------------------------------------------------------------

const std::vector<std::string>& si_benchmark_names() {
  static const std::vector<std::string> names{
      "alloc-outbound", "atod",          "chu150",        "converta",
      "dff",            "ebergen",       "hazard",        "master-read",
      "mmu",            "mp-forward-pkt", "mr1",          "nak-pa",
      "nowick",         "ram-read-sbuf", "rcv-setup",     "rpdft",
      "sbuf-ram-write", "sbuf-send-ctl", "sbuf-send-pkt2", "seq4",
      "trimos-send",    "vbe10b",        "vbe5b",         "vbe6a",
  };
  return names;
}

const std::vector<std::string>& bd_benchmark_names() {
  static const std::vector<std::string> names{
      "chu150", "converta", "ebergen",     "hazard", "nowick",
      "rpdft",  "trimos-send", "vbe10b",   "vbe6a",
  };
  return names;
}

bool benchmark_is_redundant(const std::string& name) {
  return name == "trimos-send" || name == "vbe10b" || name == "vbe6a";
}

Stg benchmark_stg(const std::string& name) {
  // Controller family assignments; sizes chosen to mirror the paper's fault
  // totals (small circuits of 4-9 signals).
  if (name == "alloc-outbound") return make_forkjoin(name, 2);
  if (name == "atod") return make_sequencer(name, 3);
  if (name == "chu150") return make_celem(name, 2, /*tail=*/true);
  if (name == "converta") return make_sequencer(name, 2, {0});
  if (name == "dff") return make_storage(name);
  if (name == "ebergen") return make_sequencer(name, 2, {0, 2});
  if (name == "hazard") return make_forkjoin(name, 2, /*internal_tail=*/true);
  if (name == "master-read") return make_forkjoin(name, 3, /*internal_tail=*/true);
  if (name == "mmu") return make_forkjoin(name, 3);
  if (name == "mp-forward-pkt") return make_sequencer(name, 3, {2});
  if (name == "mr1") return make_sequencer(name, 5);
  if (name == "nak-pa") return make_sequencer(name, 2, {0, 2}, {}, 2);
  if (name == "nowick") return make_sequencer(name, 2, {2});
  if (name == "ram-read-sbuf") return make_sequencer(name, 4, {2});
  if (name == "rcv-setup") return make_sequencer(name, 2);
  if (name == "rpdft") return make_celem(name, 2);
  if (name == "sbuf-ram-write") return make_sequencer(name, 3, {0}, {}, 2);
  if (name == "sbuf-send-ctl") return make_sequencer(name, 4, {0, 4});
  if (name == "sbuf-send-pkt2") return make_sequencer(name, 3, {0, 2});
  if (name == "seq4") return make_sequencer(name, 4);
  if (name == "trimos-send") return make_toggle(name, 3);
  if (name == "vbe10b") return make_pipeline2(name, /*deep_output=*/true);
  if (name == "vbe5b") return make_toggle(name);
  if (name == "vbe6a") return make_toggle(name, 2, /*pre_detector=*/true);
  XATPG_CHECK_MSG(false, "unknown benchmark '" << name << "'");
  return Stg(name);
}

SynthResult benchmark_circuit(const std::string& name, SynthStyle style) {
  const Stg stg = benchmark_stg(name);
  const StateGraph sg = expand_stg(stg);
  SynthOptions options;
  options.style = style;
  if (style == SynthStyle::BoundedDelay) {
    options.hazard_consensus = true;
    options.extra_redundancy = benchmark_is_redundant(name);
  }
  return synthesize(sg, options);
}

}  // namespace xatpg
