// BddManager core: node arena, unique table, handle registry, garbage
// collection, and the computed cache.  The recursive operation cores live in
// ops.cpp.
#include "bdd/bdd.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xatpg {

namespace {
inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix(a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
             c * 0x94d049bb133111ebULL);
}
}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, std::uint32_t idx) : mgr_(mgr), idx_(idx) {
  attach();
}

Bdd::Bdd(const Bdd& other) : mgr_(other.mgr_), idx_(other.idx_) { attach(); }

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
  attach();
  other.detach();
  other.mgr_ = nullptr;
  other.idx_ = 0;
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) return *this;
  detach();
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  attach();
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  detach();
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  attach();
  other.detach();
  other.mgr_ = nullptr;
  other.idx_ = 0;
  return *this;
}

Bdd::~Bdd() { detach(); }

void Bdd::attach() {
  if (!mgr_) return;
  reg_prev_ = nullptr;
  reg_next_ = mgr_->registry_head_;
  if (reg_next_) reg_next_->reg_prev_ = this;
  mgr_->registry_head_ = this;
}

void Bdd::detach() {
  if (!mgr_) return;
  if (reg_prev_) {
    reg_prev_->reg_next_ = reg_next_;
  } else {
    mgr_->registry_head_ = reg_next_;
  }
  if (reg_next_) reg_next_->reg_prev_ = reg_prev_;
  reg_prev_ = reg_next_ = nullptr;
}

bool Bdd::is_false() const { return mgr_ != nullptr && idx_ == 0; }
bool Bdd::is_true() const { return mgr_ != nullptr && idx_ == 1; }

std::uint32_t Bdd::top_var() const {
  XATPG_CHECK(valid() && !is_const());
  return mgr_->nodes_[idx_].var;
}

Bdd Bdd::low() const {
  XATPG_CHECK(valid() && !is_const());
  return Bdd(mgr_, mgr_->nodes_[idx_].lo);
}

Bdd Bdd::high() const {
  XATPG_CHECK(valid() && !is_const());
  return Bdd(mgr_, mgr_->nodes_[idx_].hi);
}

// A default-constructed handle has mgr_ == nullptr; combinators used to
// dereference it straight away.  Check here so the failure names the handle
// instead of segfaulting, then let the manager entry points enforce that
// both operands belong to the same manager.
Bdd Bdd::operator&(const Bdd& rhs) const {
  XATPG_CHECK_MSG(valid(), "operator& on an invalid (default-constructed) Bdd");
  return mgr_->apply_and(*this, rhs);
}
Bdd Bdd::operator|(const Bdd& rhs) const {
  XATPG_CHECK_MSG(valid(), "operator| on an invalid (default-constructed) Bdd");
  return mgr_->apply_or(*this, rhs);
}
Bdd Bdd::operator^(const Bdd& rhs) const {
  XATPG_CHECK_MSG(valid(), "operator^ on an invalid (default-constructed) Bdd");
  return mgr_->apply_xor(*this, rhs);
}
Bdd Bdd::operator!() const {
  XATPG_CHECK_MSG(valid(), "operator! on an invalid (default-constructed) Bdd");
  return mgr_->apply_not(*this);
}
Bdd& Bdd::operator&=(const Bdd& rhs) { return *this = *this & rhs; }
Bdd& Bdd::operator|=(const Bdd& rhs) { return *this = *this | rhs; }
Bdd& Bdd::operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }

bool Bdd::implies(const Bdd& rhs) const {
  XATPG_CHECK_MSG(valid() && rhs.valid(),
                  "implies() on an invalid (default-constructed) Bdd");
  // f -> g  ===  f & !g == false
  return (*this & !rhs).is_false();
}

std::size_t Bdd::node_count() const {
  if (!valid()) return 0;
  std::vector<std::uint32_t> stack{idx_};
  std::vector<bool> seen(mgr_->nodes_.size(), false);
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (seen[n]) continue;
    seen[n] = true;
    ++count;
    if (mgr_->nodes_[n].var != BddManager::kVarTerminal) {
      stack.push_back(mgr_->nodes_[n].lo);
      stack.push_back(mgr_->nodes_[n].hi);
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// BddManager
// ---------------------------------------------------------------------------

BddManager::BddManager(std::uint32_t num_vars) {
  nodes_.reserve(1u << 12);
  // Terminal nodes: index 0 = false, index 1 = true.
  nodes_.push_back({kVarTerminal, 0, 0, kNil});
  nodes_.push_back({kVarTerminal, 1, 1, kNil});
  buckets_.assign(1u << 10, kNil);
  cache_.assign(1u << 16, CacheEntry{});
  cache_mask_ = cache_.size() - 1;
  for (std::uint32_t i = 0; i < num_vars; ++i) new_var();
}

BddManager::~BddManager() {
  // Orphan any handles that outlive the manager (programming error, but do
  // not crash in their destructors).
  for (Bdd* h = registry_head_; h != nullptr;) {
    Bdd* next = h->reg_next_;
    h->mgr_ = nullptr;
    h->reg_prev_ = h->reg_next_ = nullptr;
    h = next;
  }
}

std::uint32_t BddManager::new_var() {
  const std::uint32_t v = num_vars_++;
  var_nodes_.push_back(kNil);  // created lazily in var()
  return v;
}

Bdd BddManager::var(std::uint32_t v) {
  XATPG_CHECK_MSG(v < num_vars_, "variable " << v << " not allocated");
  if (var_nodes_[v] == kNil) var_nodes_[v] = make_node(v, 0, 1);
  return Bdd(this, var_nodes_[v]);
}

Bdd BddManager::nvar(std::uint32_t v) {
  XATPG_CHECK_MSG(v < num_vars_, "variable " << v << " not allocated");
  return Bdd(this, make_node(v, 1, 0));
}

std::uint32_t BddManager::make_node(std::uint32_t var, std::uint32_t lo,
                                    std::uint32_t hi) {
  if (lo == hi) return lo;  // reduction rule
  return unique_lookup(var, lo, hi);
}

std::uint32_t BddManager::unique_lookup(std::uint32_t var, std::uint32_t lo,
                                        std::uint32_t hi) {
  const std::uint64_t h = hash3(var, lo, hi);
  std::uint32_t bucket = static_cast<std::uint32_t>(h & (buckets_.size() - 1));
  for (std::uint32_t n = buckets_[bucket]; n != kNil; n = nodes_[n].next) {
    const Node& node = nodes_[n];
    if (node.var == var && node.lo == lo && node.hi == hi) return n;
  }
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = nodes_[idx].next;
    --free_count_;
  } else {
    // Node indices are 32-bit and kNil is reserved; past that point the
    // computed-cache key packing (operands in 32-bit lanes) would silently
    // alias, so refuse loudly instead.
    XATPG_CHECK_MSG(nodes_.size() < static_cast<std::size_t>(kNil),
                    "BDD node arena exhausted (2^32-1 nodes)");
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back({});
  }
  nodes_[idx] = {var, lo, hi, buckets_[bucket]};
  buckets_[bucket] = idx;
  peak_nodes_ = std::max(peak_nodes_, allocated_nodes());
  if (allocated_nodes() > 2 * buckets_.size()) grow_table();
  return idx;
}

void BddManager::grow_table() {
  buckets_.assign(buckets_.size() * 2, kNil);
  // Re-chain every live node.  Free-list nodes have var == kVarTerminal and
  // are identified by walking the free list first.
  std::vector<bool> is_free(nodes_.size(), false);
  for (std::uint32_t n = free_head_; n != kNil; n = nodes_[n].next)
    is_free[n] = true;
  for (std::uint32_t n = 2; n < nodes_.size(); ++n) {
    if (is_free[n]) continue;
    const std::uint64_t h = hash3(nodes_[n].var, nodes_[n].lo, nodes_[n].hi);
    const auto bucket = static_cast<std::uint32_t>(h & (buckets_.size() - 1));
    nodes_[n].next = buckets_[bucket];
    buckets_[bucket] = n;
  }
}

void BddManager::maybe_gc() {
  if (allocated_nodes() <= gc_threshold_) return;
  collect_garbage();
  if (allocated_nodes() > gc_threshold_ / 2) gc_threshold_ *= 2;
}

void BddManager::mark(std::uint32_t idx, std::vector<bool>& marked) const {
  std::vector<std::uint32_t> stack{idx};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (marked[n]) continue;
    marked[n] = true;
    if (nodes_[n].var != kVarTerminal) {
      stack.push_back(nodes_[n].lo);
      stack.push_back(nodes_[n].hi);
    }
  }
}

std::size_t BddManager::collect_garbage() {
  std::vector<bool> marked(nodes_.size(), false);
  marked[0] = marked[1] = true;
  for (const Bdd* h = registry_head_; h != nullptr; h = h->reg_next_)
    mark(h->idx_, marked);
  for (const std::uint32_t vn : var_nodes_)
    if (vn != kNil) mark(vn, marked);

  // Sweep: rebuild the free list and the unique table from scratch.
  std::fill(buckets_.begin(), buckets_.end(), kNil);
  free_head_ = kNil;
  free_count_ = 0;
  std::size_t freed = 0;
  for (std::uint32_t n = 2; n < nodes_.size(); ++n) {
    if (!marked[n]) {
      nodes_[n].var = kVarTerminal;
      nodes_[n].next = free_head_;
      free_head_ = n;
      ++free_count_;
      ++freed;
    } else {
      const std::uint64_t h = hash3(nodes_[n].var, nodes_[n].lo, nodes_[n].hi);
      const auto bucket = static_cast<std::uint32_t>(h & (buckets_.size() - 1));
      nodes_[n].next = buckets_[bucket];
      buckets_[bucket] = n;
    }
  }
  cache_clear();
  ++gc_count_;
  return freed;
}

// ---------------------------------------------------------------------------
// Computed cache
// ---------------------------------------------------------------------------

namespace {
// Key packing assumes a and b fit in 32-bit lanes of key_lo and c fits below
// the op tag's 40-bit shift in key_hi.  Operands are node indices (32-bit by
// construction, see the arena capacity check in unique_lookup) or small
// scalars (variable ids, permutation ids, cofactor keys), but a silent
// aliasing here corrupts results instead of crashing — so guard the pack
// site itself against any future widening.
inline void check_cache_key_widths(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c) {
  XATPG_CHECK_MSG((a >> 32) == 0 && (b >> 32) == 0 && (c >> 40) == 0,
                  "computed-cache operand exceeds packed key width");
}
}  // namespace

std::uint32_t BddManager::cache_lookup(Op op, std::uint64_t a, std::uint64_t b,
                                       std::uint64_t c) const {
  static_assert(static_cast<std::uint64_t>(Op::Cofactor) < (1ull << 24),
                "op tag must survive the 40-bit shift in key_hi");
  check_cache_key_widths(a, b, c);
  const std::uint64_t key_lo = a | (b << 32);
  const std::uint64_t key_hi = (static_cast<std::uint64_t>(op) << 40) | c;
  const std::size_t slot = hash3(key_lo, key_hi, 0) & cache_mask_;
  const CacheEntry& e = cache_[slot];
  if (e.valid && e.key_lo == key_lo && e.key_hi == key_hi) return e.result;
  return kNil;
}

void BddManager::cache_insert(Op op, std::uint64_t a, std::uint64_t b,
                              std::uint64_t c, std::uint32_t result) {
  check_cache_key_widths(a, b, c);
  const std::uint64_t key_lo = a | (b << 32);
  const std::uint64_t key_hi = (static_cast<std::uint64_t>(op) << 40) | c;
  const std::size_t slot = hash3(key_lo, key_hi, 0) & cache_mask_;
  cache_[slot] = CacheEntry{key_hi, key_lo, result, true};
}

void BddManager::cache_clear() {
  for (CacheEntry& e : cache_) e.valid = false;
}

std::uint32_t BddManager::register_perm(
    const std::vector<std::uint32_t>& var_map) {
  for (std::uint32_t i = 0; i < registered_perms_.size(); ++i)
    if (registered_perms_[i] == var_map) return i;
  registered_perms_.push_back(var_map);
  return next_perm_id_++;
}

}  // namespace xatpg
