// BddManager core: node arena, per-variable unique subtables, handle
// registry, garbage collection, the computed cache, and the level<->variable
// indirection the dynamic-reordering machinery (reorder.cpp) permutes.  The
// recursive operation cores live in ops.cpp.
//
// Complement-edge invariants maintained here (see bdd.hpp for the design):
//  * node index 0 is the single terminal; edges 0/1 are TRUE/FALSE;
//  * make_node() never stores a complemented THEN edge — it pushes the
//    complement onto the returned edge instead;
//  * the unique subtables key on the (lo, hi) EDGE pair, so hash-consing
//    identifies functions, not just node shapes.
#include "bdd/bdd.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xatpg {

namespace {
inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix(a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
             c * 0x94d049bb133111ebULL);
}

inline std::uint64_t hash_children(std::uint32_t lo, std::uint32_t hi) {
  return mix(lo * 0x9e3779b97f4a7c15ULL + hi * 0xbf58476d1ce4e5b9ULL);
}
}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, std::uint32_t idx) : mgr_(mgr), idx_(idx) {
  attach();
}

Bdd::Bdd(const Bdd& other) : mgr_(other.mgr_), idx_(other.idx_) { attach(); }

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
  attach();
  other.detach();
  other.mgr_ = nullptr;
  other.idx_ = 0;
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) return *this;
  detach();
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  attach();
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  detach();
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  attach();
  other.detach();
  other.mgr_ = nullptr;
  other.idx_ = 0;
  return *this;
}

Bdd::~Bdd() { detach(); }

void Bdd::attach() {
  if (!mgr_) return;
  reg_prev_ = nullptr;
  reg_next_ = mgr_->registry_head_;
  if (reg_next_) reg_next_->reg_prev_ = this;
  mgr_->registry_head_ = this;
}

void Bdd::detach() {
  if (!mgr_) return;
  if (reg_prev_) {
    reg_prev_->reg_next_ = reg_next_;
  } else {
    mgr_->registry_head_ = reg_next_;
  }
  if (reg_next_) reg_next_->reg_prev_ = reg_prev_;
  reg_prev_ = reg_next_ = nullptr;
}

bool Bdd::is_false() const {
  return mgr_ != nullptr && idx_ == BddManager::kFalseEdge;
}
bool Bdd::is_true() const {
  return mgr_ != nullptr && idx_ == BddManager::kTrueEdge;
}

std::uint32_t Bdd::top_var() const {
  XATPG_CHECK(valid() && !is_const());
  return mgr_->node_ref(BddManager::edge_node(idx_)).var;
}

Bdd Bdd::low() const {
  XATPG_CHECK(valid() && !is_const());
  const BddManager::Node& n = mgr_->node_ref(BddManager::edge_node(idx_));
  return Bdd(mgr_, n.lo ^ (idx_ & 1u));
}

Bdd Bdd::high() const {
  XATPG_CHECK(valid() && !is_const());
  const BddManager::Node& n = mgr_->node_ref(BddManager::edge_node(idx_));
  return Bdd(mgr_, n.hi ^ (idx_ & 1u));
}

// A default-constructed handle has mgr_ == nullptr; combinators used to
// dereference it straight away.  Check here so the failure names the handle
// instead of segfaulting, then let the manager entry points enforce that
// both operands belong to the same manager.
Bdd Bdd::operator&(const Bdd& rhs) const {
  XATPG_CHECK_MSG(valid(), "operator& on an invalid (default-constructed) Bdd");
  return mgr_->apply_and(*this, rhs);
}
Bdd Bdd::operator|(const Bdd& rhs) const {
  XATPG_CHECK_MSG(valid(), "operator| on an invalid (default-constructed) Bdd");
  return mgr_->apply_or(*this, rhs);
}
Bdd Bdd::operator^(const Bdd& rhs) const {
  XATPG_CHECK_MSG(valid(), "operator^ on an invalid (default-constructed) Bdd");
  return mgr_->apply_xor(*this, rhs);
}
Bdd Bdd::operator!() const {
  XATPG_CHECK_MSG(valid(), "operator! on an invalid (default-constructed) Bdd");
  // The whole point of complement edges: negation is a bit flip on the edge
  // — no manager entry, no GC point, no allocation.
  return Bdd(mgr_, idx_ ^ 1u);
}
Bdd& Bdd::operator&=(const Bdd& rhs) { return *this = *this & rhs; }
Bdd& Bdd::operator|=(const Bdd& rhs) { return *this = *this | rhs; }
Bdd& Bdd::operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }

bool Bdd::implies(const Bdd& rhs) const {
  XATPG_CHECK_MSG(valid() && rhs.valid(),
                  "implies() on an invalid (default-constructed) Bdd");
  // f -> g  ===  f & !g == false
  return (*this & !rhs).is_false();
}

std::size_t Bdd::node_count() const {
  if (!valid()) return 0;
  std::vector<std::uint32_t> stack{BddManager::edge_node(idx_)};
  std::vector<bool> seen(mgr_->global_node_limit(), false);
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (seen[n]) continue;
    seen[n] = true;
    ++count;
    const BddManager::Node& node = mgr_->node_ref(n);
    if (node.var != BddManager::kVarTerminal) {
      stack.push_back(BddManager::edge_node(node.lo));
      stack.push_back(BddManager::edge_node(node.hi));
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// BddManager
// ---------------------------------------------------------------------------

BddManager::BddManager(std::uint32_t num_vars) {
  nodes_.reserve(1u << 12);
  // The single terminal node (TRUE); FALSE is its complemented edge.
  nodes_.push_back({kVarTerminal, 0, 0, kNil});
  cache_.assign(1u << 16, CacheEntry{});
  cache_mask_ = cache_.size() - 1;
  for (std::uint32_t i = 0; i < num_vars; ++i) new_var();
}

BddManager::BddManager(const BddManager& base, Delta) : base_(&base) {
  XATPG_CHECK_MSG(base.frozen(), "delta manager requires a frozen base");
  XATPG_CHECK_MSG(!base.is_delta(), "cannot layer a delta over a delta");
  // Global node indices below base_limit_ address the shared base arena
  // (including its terminal at index 0); the local arena starts empty and
  // holds only fault-specific nodes.
  base_limit_ = static_cast<std::uint32_t>(base.nodes_.size());
  num_vars_ = base.num_vars_;
  var_nodes_ = base.var_nodes_;  // literals resolve into the base arena
  var_to_level_ = base.var_to_level_;
  level_to_var_ = base.level_to_var_;
  group_of_var_ = base.group_of_var_;
  // Permutation-id alignment: ids the base registered keep their meaning, so
  // base cache entries for Permute stay valid under delta fallback probes;
  // perms first registered by this delta get fresh, delta-local ids.
  registered_perms_ = base.registered_perms_;
  next_perm_id_ = base.next_perm_id_;
  // The base order is pinned at freeze time.  Inherit the swap history so
  // order-dependent fast paths (src/sgraph pick_state canonicity) make the
  // same decision the base would have; reordering itself stays disabled.
  swap_count_ = base.swap_count_;
  subtables_.resize(num_vars_);
  for (SubTable& table : subtables_) table.buckets.assign(4, kNil);
  cache_.assign(1u << 16, CacheEntry{});
  cache_mask_ = cache_.size() - 1;
}

void BddManager::freeze() {
  XATPG_CHECK_MSG(!frozen_, "freeze() called twice on one BddManager");
  XATPG_CHECK_MSG(!is_delta(), "cannot freeze a delta manager");
  XATPG_CHECK_MSG(!reordering_, "freeze() during a reordering pass");
  // Materialize every literal so deltas never have to allocate one (their
  // var_nodes_ copies must all resolve into this arena).
  for (std::uint32_t v = 0; v < num_vars_; ++v)
    if (var_nodes_[v] == kNil)
      var_nodes_[v] = make_node(v, kFalseEdge, kTrueEdge);
  // Drop garbage and scrub the cache so every table-resident node is live.
  // Free-list slots surviving this sweep are wasted for the lifetime of the
  // freeze (nothing allocates here again); the pre-freeze GC keeps that
  // waste to dead-since-last-sweep nodes only.
  collect_garbage();
  frozen_ = true;
}

Bdd BddManager::adopt(const Bdd& h) {
  if (!h.valid()) return {};
  if (h.manager() == this) return h;
  XATPG_CHECK_MSG(is_delta() && h.manager() == base_,
                  "adopt() accepts handles of this delta's frozen base only");
  // The edge word transfers verbatim: base indices are below base_limit_ in
  // this delta's global index space.  Note h itself is only read — adoption
  // must never touch the (possibly concurrently shared) base registry.
  return Bdd(this, h.index());
}

void BddManager::check_mutable() const {
  XATPG_CHECK_MSG(!frozen_,
                  "mutating operation on a frozen BddManager — the base "
                  "arena is immutable after freeze(); run the operation on "
                  "a delta manager layered over it instead");
}

BddManager::~BddManager() {
  // Orphan any handles that outlive the manager (programming error, but do
  // not crash in their destructors).
  for (Bdd* h = registry_head_; h != nullptr;) {
    Bdd* next = h->reg_next_;
    h->mgr_ = nullptr;
    h->reg_prev_ = h->reg_next_ = nullptr;
    h = next;
  }
}

std::uint32_t BddManager::new_var() {
  check_mutable();
  XATPG_CHECK_MSG(!is_delta(),
                  "new_var() on a delta manager — the variable set is fixed "
                  "by the frozen base");
  const std::uint32_t v = num_vars_++;
  var_nodes_.push_back(kNil);  // created lazily in var()
  var_to_level_.push_back(v);  // fresh variables join at the bottom
  level_to_var_.push_back(v);
  group_of_var_.push_back(kNoGroup);
  subtables_.emplace_back();
  subtables_.back().buckets.assign(4, kNil);
  return v;
}

Bdd BddManager::var(std::uint32_t v) {
  XATPG_CHECK_MSG(v < num_vars_, "variable " << v << " not allocated");
  if (var_nodes_[v] == kNil) {
    check_mutable();  // freeze() materializes every literal, so frozen
                      // managers never reach this allocation
    var_nodes_[v] = make_node(v, kFalseEdge, kTrueEdge);
  }
  return Bdd(this, var_nodes_[v]);
}

Bdd BddManager::nvar(std::uint32_t v) {
  XATPG_CHECK_MSG(v < num_vars_, "variable " << v << " not allocated");
  // !x_v shares x_v's node through a complemented edge.
  return Bdd(this, edge_not(var(v).index()));
}

std::uint32_t BddManager::make_node(std::uint32_t var, std::uint32_t lo,
                                    std::uint32_t hi) {
  if (lo == hi) return lo;  // reduction rule
  // Canonical form: the THEN edge is never complemented.  !(v ? h : l) ==
  // v ? !h : !l, so push the complement through the node onto the result.
  if (edge_comp(hi))
    return edge_not(unique_lookup(var, edge_not(lo), edge_not(hi)));
  return unique_lookup(var, lo, hi);
}

std::uint32_t BddManager::unique_lookup(std::uint32_t var, std::uint32_t lo,
                                        std::uint32_t hi) {
  const std::uint64_t h = hash_children(lo, hi);
  // Substrate sharing: a delta probes the frozen base's subtable first, so
  // any function the base already holds resolves to the shared node — the
  // encoding/CSSG substrate is paid for once across every delta.  The probe
  // is a pure read; post-freeze the base chains never change.
  if (base_ != nullptr) {
    const SubTable& base_table = base_->subtables_[var];
    const auto base_bucket =
        static_cast<std::uint32_t>(h & (base_table.buckets.size() - 1));
    for (std::uint32_t n = base_table.buckets[base_bucket]; n != kNil;
         n = base_->nodes_[n].next) {
      const Node& node = base_->nodes_[n];
      if (node.lo == lo && node.hi == hi) return make_edge(n, false);
    }
  }
  SubTable& table = subtables_[var];
  // The local arena uses LOCAL slot indices internally (buckets, chain
  // links, free list); only the returned edge is global.
  const auto bucket =
      static_cast<std::uint32_t>(h & (table.buckets.size() - 1));
  for (std::uint32_t n = table.buckets[bucket]; n != kNil; n = nodes_[n].next) {
    const Node& node = nodes_[n];
    if (node.lo == lo && node.hi == hi) return make_edge(global_of(n), false);
  }
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = nodes_[idx].next;
    --free_count_;
  } else {
    // Edges pack a node index plus the complement bit into 32 bits, and the
    // all-ones edge is reserved as kNil (the cache sentinel); past 2^31-1
    // nodes the packing would silently alias, so refuse loudly instead.
    // For a delta the GLOBAL index (base arena + local slot) must fit.
    XATPG_CHECK_MSG(global_node_limit() < static_cast<std::size_t>((1u << 31) - 1),
                    "BDD node arena exhausted (2^31-1 nodes)");
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back({});
  }
  nodes_[idx] = {var, lo, hi, table.buckets[bucket]};
  table.buckets[bucket] = idx;
  ++table.count;
  peak_nodes_ = std::max(peak_nodes_, allocated_nodes());
  if (table.count > 2 * table.buckets.size()) grow_subtable(var);
  return make_edge(global_of(idx), false);
}

void BddManager::subtable_insert(std::uint32_t var, std::uint32_t n) {
  SubTable& table = subtables_[var];
  const std::uint64_t h = hash_children(nodes_[n].lo, nodes_[n].hi);
  const auto bucket =
      static_cast<std::uint32_t>(h & (table.buckets.size() - 1));
  nodes_[n].next = table.buckets[bucket];
  table.buckets[bucket] = n;
  ++table.count;
  if (table.count > 2 * table.buckets.size()) grow_subtable(var);
}

void BddManager::subtable_remove(std::uint32_t var, std::uint32_t n) {
  SubTable& table = subtables_[var];
  const std::uint64_t h = hash_children(nodes_[n].lo, nodes_[n].hi);
  const auto bucket =
      static_cast<std::uint32_t>(h & (table.buckets.size() - 1));
  std::uint32_t cur = table.buckets[bucket];
  if (cur == n) {
    table.buckets[bucket] = nodes_[n].next;
  } else {
    while (cur != kNil && nodes_[cur].next != n) cur = nodes_[cur].next;
    XATPG_CHECK_MSG(cur != kNil, "node missing from its unique subtable");
    nodes_[cur].next = nodes_[n].next;
  }
  nodes_[n].next = kNil;
  --table.count;
}

void BddManager::grow_subtable(std::uint32_t var) {
  SubTable& table = subtables_[var];
  // Collect the chained nodes, then re-chain into the doubled bucket array.
  std::vector<std::uint32_t> chained;
  chained.reserve(table.count);
  for (const std::uint32_t head : table.buckets)
    for (std::uint32_t n = head; n != kNil; n = nodes_[n].next)
      chained.push_back(n);
  table.buckets.assign(table.buckets.size() * 2, kNil);
  for (const std::uint32_t n : chained) {
    const std::uint64_t h = hash_children(nodes_[n].lo, nodes_[n].hi);
    const auto bucket =
        static_cast<std::uint32_t>(h & (table.buckets.size() - 1));
    nodes_[n].next = table.buckets[bucket];
    table.buckets[bucket] = n;
  }
}

void BddManager::maybe_gc() {
  // Every node-allocating public operation funnels through here at entry, so
  // this is also where a frozen manager rejects mutation wholesale.
  check_mutable();
  if (allocated_nodes() > gc_threshold_) {
    collect_garbage();
    if (gc_adaptive_) {
      // Re-arm at twice the surviving size: garbage never exceeds live, so
      // the peak-allocated watermark tracks the real peak live size within
      // a factor of two (plus whatever one operation allocates).
      gc_threshold_ = std::max(kGcFloor, 2 * allocated_nodes());
    } else if (allocated_nodes() > gc_threshold_ / 2) {
      // Pinned mode keeps the legacy doubling so a stressed threshold of 0
      // stays 0 and a test-chosen watermark scales predictably.
      gc_threshold_ *= 2;
    }
  }
  maybe_grow_cache();
  maybe_reorder();
}

void BddManager::maybe_reorder() {
  // next_reorder_at_ is primed by set_reorder_policy (the only way to set
  // enabled) and re-armed after every auto-sift below.
  if (!reorder_policy_.enabled || reordering_) return;
  if (allocated_nodes() <= next_reorder_at_) return;
  // The trigger fires on allocated (live + garbage) nodes; sweep first and
  // skip the sift when the growth was mostly garbage — sifting cost scales
  // with blocks x positions and is only worth paying for live growth.
  sweep_dead();
  if (allocated_nodes() <= next_reorder_at_) return;
  const ReorderStats stats = sift();
  const auto scaled = static_cast<std::size_t>(
      static_cast<double>(stats.size_after) * reorder_policy_.trigger_growth);
  next_reorder_at_ = std::max(reorder_policy_.trigger_nodes, scaled);
}

void BddManager::mark(std::uint32_t edge, std::vector<bool>& marked) const {
  // `marked` covers the LOCAL arena only; base nodes are permanently live,
  // so the walk stops at the base_limit_ boundary.
  if (edge_node(edge) < base_limit_) return;
  std::vector<std::uint32_t> stack{local_of(edge_node(edge))};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (marked[n]) continue;
    marked[n] = true;
    if (nodes_[n].var != kVarTerminal) {
      const std::uint32_t lo = edge_node(nodes_[n].lo);
      const std::uint32_t hi = edge_node(nodes_[n].hi);
      if (lo >= base_limit_) stack.push_back(local_of(lo));
      if (hi >= base_limit_) stack.push_back(local_of(hi));
    }
  }
}

std::size_t BddManager::sweep_dead() {
  std::vector<bool> marked(nodes_.size(), false);
  // The terminal lives at local slot 0 only in a monolithic manager; a
  // delta's slot 0 (if any) is an ordinary node and earns its mark.
  std::uint32_t first = 0;
  if (base_limit_ == 0) {
    marked[0] = true;
    first = 1;
  }
  for (const Bdd* h = registry_head_; h != nullptr; h = h->reg_next_)
    mark(h->idx_, marked);
  for (const std::uint32_t vn : var_nodes_)
    if (vn != kNil) mark(vn, marked);

  // Sweep: rebuild the free list and every unique subtable from scratch.
  for (SubTable& table : subtables_) {
    std::fill(table.buckets.begin(), table.buckets.end(), kNil);
    table.count = 0;
  }
  free_head_ = kNil;
  free_count_ = 0;
  std::size_t freed = 0;
  for (std::uint32_t n = first; n < nodes_.size(); ++n) {
    if (!marked[n]) {
      nodes_[n].var = kVarTerminal;
      nodes_[n].next = free_head_;
      free_head_ = n;
      ++free_count_;
      ++freed;
    } else {
      SubTable& table = subtables_[nodes_[n].var];
      const std::uint64_t h = hash_children(nodes_[n].lo, nodes_[n].hi);
      const auto bucket =
          static_cast<std::uint32_t>(h & (table.buckets.size() - 1));
      nodes_[n].next = table.buckets[bucket];
      table.buckets[bucket] = n;
      ++table.count;
    }
  }
  cache_scrub_dead(marked);
  return freed;
}

std::size_t BddManager::collect_garbage() {
  check_mutable();
  const std::size_t freed = sweep_dead();
  ++gc_count_;
  return freed;
}

// ---------------------------------------------------------------------------
// Statistics & invariant checking
// ---------------------------------------------------------------------------

double BddManager::unique_load() const {
  std::size_t entries = 0, buckets = 0;
  for (const SubTable& table : subtables_) {
    entries += table.count;
    buckets += table.buckets.size();
  }
  return buckets == 0 ? 0.0
                      : static_cast<double>(entries) /
                            static_cast<double>(buckets);
}

std::size_t BddManager::validate_canonical() const {
  std::size_t checked = 0;
  for (std::uint32_t v = 0; v < num_vars_; ++v) {
    for (const std::uint32_t head : subtables_[v].buckets) {
      for (std::uint32_t n = head; n != kNil; n = nodes_[n].next) {
        const Node& node = nodes_[n];
        XATPG_CHECK_MSG(node.var == v,
                        "node " << n << " chained in subtable " << v
                                << " but labelled " << node.var);
        XATPG_CHECK_MSG(!edge_comp(node.hi),
                        "complemented THEN edge in the unique table (node "
                            << n << ")");
        XATPG_CHECK_MSG(node.lo != node.hi,
                        "redundant node " << n << " in the unique table");
        XATPG_CHECK_MSG(level_of_edge(node.lo) > var_to_level_[v] &&
                            level_of_edge(node.hi) > var_to_level_[v],
                        "node " << n << " has a child at or above its level");
        ++checked;
      }
    }
  }
  return checked;
}

// ---------------------------------------------------------------------------
// Computed cache
// ---------------------------------------------------------------------------

namespace {
// Key packing assumes a and b fit in 32-bit lanes of key_lo and c fits below
// the op tag's 40-bit shift in key_hi.  Operands are edges (32-bit by
// construction, see the arena capacity check in unique_lookup) or small
// scalars (variable ids, permutation ids, cofactor keys), but a silent
// aliasing here corrupts results instead of crashing — so guard the pack
// site itself against any future widening.
inline void check_cache_key_widths(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c) {
  XATPG_CHECK_MSG((a >> 32) == 0 && (b >> 32) == 0 && (c >> 40) == 0,
                  "computed-cache operand exceeds packed key width");
}
}  // namespace

std::uint32_t BddManager::cache_probe(const std::vector<CacheEntry>& cache,
                                      std::size_t mask, Op op, std::uint64_t a,
                                      std::uint64_t b, std::uint64_t c) {
  const std::uint64_t key_lo = a | (b << 32);
  const std::uint64_t key_hi = (static_cast<std::uint64_t>(op) << 40) | c;
  const std::size_t slot = hash3(key_lo, key_hi, 0) & mask;
  const CacheEntry& e = cache[slot];
  if (e.valid && e.key_lo == key_lo && e.key_hi == key_hi) return e.result;
  return kNil;
}

std::uint32_t BddManager::cache_lookup(Op op, std::uint64_t a, std::uint64_t b,
                                       std::uint64_t c) const {
  static_assert(static_cast<std::uint64_t>(Op::Cofactor) < (1ull << 24),
                "op tag must survive the 40-bit shift in key_hi");
  check_cache_key_widths(a, b, c);
  ++cache_lookups_;
  std::uint32_t result = cache_probe(cache_, cache_mask_, op, a, b, c);
  // Cross-fault reuse: a delta falls back to a read-only probe of its frozen
  // base's cache.  Sound because the base cache was scrubbed against the
  // freeze-time GC (every referenced node is permanently live), edges and
  // permutation ids mean the same thing in both index spaces, and the entry
  // array never changes after freeze.  The base's (mutable) counters are
  // deliberately NOT touched: they are not synchronized, and concurrent
  // deltas on other threads probe the same array.
  if (result == kNil && base_ != nullptr)
    result = cache_probe(base_->cache_, base_->cache_mask_, op, a, b, c);
  if (result != kNil) ++cache_hits_;
  return result;
}

void BddManager::cache_insert(Op op, std::uint64_t a, std::uint64_t b,
                              std::uint64_t c, std::uint32_t result) {
  check_cache_key_widths(a, b, c);
  const std::uint64_t key_lo = a | (b << 32);
  const std::uint64_t key_hi = (static_cast<std::uint64_t>(op) << 40) | c;
  const std::size_t slot = hash3(key_lo, key_hi, 0) & cache_mask_;
  cache_[slot] = CacheEntry{key_hi, key_lo, result, true};
}

void BddManager::cache_clear() {
  for (CacheEntry& e : cache_) e.valid = false;
}

void BddManager::cache_scrub_dead(const std::vector<bool>& marked) {
  // Per-op key layouts (see the pack sites in ops.cpp): operand `a` and the
  // result are always edges; `b` and `c` are edges or small scalars
  // depending on the operation, and scalar lanes must NOT be interpreted as
  // node references.
  const auto live_edge = [&](std::uint64_t e) {
    const std::uint32_t n = edge_node(static_cast<std::uint32_t>(e));
    return n < base_limit_ || marked[local_of(n)];  // base nodes never die
  };
  for (CacheEntry& entry : cache_) {
    if (!entry.valid) continue;
    const std::uint64_t a = entry.key_lo & 0xffffffffull;
    const std::uint64_t b = entry.key_lo >> 32;
    const std::uint64_t c = entry.key_hi & ((1ull << 40) - 1);
    bool live = live_edge(entry.result) && live_edge(a);
    if (live) {
      switch (static_cast<Op>(entry.key_hi >> 40)) {
        case Op::Ite:  // b = g edge, c = h edge
          live = live_edge(b) && live_edge(c);
          break;
        case Op::AndExists:  // b = g edge, c = cube edge
          live = live_edge(b) && live_edge(c);
          break;
        case Op::Exists:    // b = cube edge, c unused
        case Op::Compose0:  // b = g edge, c = variable id (scalar)
          live = live_edge(b);
          break;
        case Op::Permute:   // b = permutation id (scalar)
        case Op::Cofactor:  // b = packed (variable, phase) scalar
          break;
      }
    }
    if (!live) entry.valid = false;
  }
}

void BddManager::maybe_grow_cache() {
  // One slot per allocated node keeps the collision rate roughly constant
  // as structures grow; the cap bounds the cache at 2^22 entries (96 MiB).
  constexpr std::size_t kMaxCacheEntries = 1u << 22;
  if (allocated_nodes() <= cache_.size() || cache_.size() >= kMaxCacheEntries)
    return;
  std::size_t target = cache_.size();
  while (target < allocated_nodes() && target < kMaxCacheEntries) target *= 2;
  std::vector<CacheEntry> grown(target);
  const std::size_t mask = target - 1;
  for (const CacheEntry& e : cache_) {
    if (!e.valid) continue;
    grown[hash3(e.key_lo, e.key_hi, 0) & mask] = e;
  }
  cache_ = std::move(grown);
  cache_mask_ = mask;
}

std::uint32_t BddManager::register_perm(
    const std::vector<std::uint32_t>& var_map) {
  for (std::uint32_t i = 0; i < registered_perms_.size(); ++i)
    if (registered_perms_[i] == var_map) return i;
  registered_perms_.push_back(var_map);
  return next_perm_id_++;
}

}  // namespace xatpg
