// Dynamic variable reordering: in-place adjacent-level swap, block (group)
// moves, Rudell sifting, and explicit order changes.
//
// The central invariant: every node INDEX keeps representing the same
// Boolean function across any reorder.  swap_adjacent_levels restructures
// the affected upper-level nodes in place (relabelling them and giving them
// fresh children) instead of allocating replacements, so external Bdd
// handles, cached literal nodes, registered permutations and even computed
// cache entries all stay semantically valid — reordering is invisible to
// every layer above except through node counts and the level maps.
//
// Deadness discipline: this package has no per-node reference counts, so a
// swap cannot tell which orphaned children become garbage.  Dead nodes stay
// chained in their subtables and are restructured by later swaps exactly
// like live ones, which keeps every table-resident node consistent with the
// current order (the no-duplicate argument in swap_adjacent_levels relies
// on this).  Exact live sizes for the sifting decisions come from
// mark-and-sweep (live_size) after each block move; the sweeps also clear
// the computed cache, which is the required invalidation on reorder.
#include <algorithm>

#include "bdd/bdd.hpp"
#include "util/check.hpp"

namespace xatpg {

void BddManager::swap_adjacent_levels(std::uint32_t level) {
  XATPG_CHECK(level + 1 < num_vars_);
  const std::uint32_t xv = level_to_var_[level];      // upper variable
  const std::uint32_t yv = level_to_var_[level + 1];  // lower variable

  // Snapshot the nodes labelled xv: restructuring inserts fresh xv nodes
  // into the same subtable, and those must not be revisited.
  std::vector<std::uint32_t> upper;
  upper.reserve(subtables_[xv].count);
  for (const std::uint32_t head : subtables_[xv].buckets)
    for (std::uint32_t n = head; n != kNil; n = nodes_[n].next)
      upper.push_back(n);

  for (const std::uint32_t n : upper) {
    const Node node = nodes_[n];
    const std::uint32_t lo_n = edge_node(node.lo);
    const std::uint32_t hi_n = edge_node(node.hi);
    const bool lo_y = lo_n != 0 && nodes_[lo_n].var == yv;
    const bool hi_y = hi_n != 0 && nodes_[hi_n].var == yv;
    // A node independent of yv keeps its label and silently sinks one
    // level; nothing structural changes.
    if (!lo_y && !hi_y) continue;
    // f = x ? f1 : f0,  f1 = y ? f11 : f10,  f0 = y ? f01 : f00
    //   = y ? (x ? f11 : f01) : (x ? f10 : f00)
    // The ELSE edge's complement bit distributes onto f00/f01; the THEN
    // edge is uncomplemented by canonical form, so f10/f11 are verbatim.
    // That also makes f11 uncomplemented, so the rebuilt THEN child c1 is
    // always a plain edge and the relabelled node keeps the
    // no-complemented-THEN-edge invariant in place.
    const std::uint32_t lc = node.lo & 1u;
    const std::uint32_t f00 = lo_y ? (nodes_[lo_n].lo ^ lc) : node.lo;
    const std::uint32_t f01 = lo_y ? (nodes_[lo_n].hi ^ lc) : node.lo;
    const std::uint32_t f10 = hi_y ? nodes_[hi_n].lo : node.hi;
    const std::uint32_t f11 = hi_y ? nodes_[hi_n].hi : node.hi;
    // Unhook n before creating the new children: the (f0, f1) slot in the
    // subtable must not resolve to n itself.  The new children can never
    // collide with an unprocessed upper node (those have a yv child; the
    // new children's cofactor pairs never do), and the relabelled n cannot
    // collide with an existing yv node (at least one of its children is
    // xv-labelled — both collapsing would force node.lo == node.hi by
    // canonicity — impossible for children built while xv was above yv) —
    // so canonicity survives without a global rehash.
    subtable_remove(xv, n);
    const std::uint32_t c0 = make_node(xv, f00, f10);
    const std::uint32_t c1 = make_node(xv, f01, f11);
    nodes_[n].var = yv;
    nodes_[n].lo = c0;
    nodes_[n].hi = c1;
    subtable_insert(yv, n);
  }

  level_to_var_[level] = yv;
  level_to_var_[level + 1] = xv;
  var_to_level_[xv] = level + 1;
  var_to_level_[yv] = level;
  ++swap_count_;
}

void BddManager::swap_adjacent_blocks(std::uint32_t first, std::uint32_t a,
                                      std::uint32_t b) {
  // Bubble each variable of the lower block up through the upper block,
  // lowest-level-first, preserving the internal order of both: a*b swaps.
  for (std::uint32_t i = 0; i < b; ++i)
    for (std::uint32_t l = first + a + i; l-- > first + i;)
      swap_adjacent_levels(l);
}

void BddManager::block_at(std::uint32_t level, std::uint32_t* first,
                          std::uint32_t* size) const {
  const std::uint32_t group = group_of_var_[level_to_var_[level]];
  if (group == kNoGroup) {
    *first = level;
    *size = 1;
    return;
  }
  std::uint32_t lo = level, hi = level;
  while (lo > 0 && group_of_var_[level_to_var_[lo - 1]] == group) --lo;
  while (hi + 1 < num_vars_ && group_of_var_[level_to_var_[hi + 1]] == group)
    ++hi;
  *first = lo;
  *size = hi - lo + 1;
}

void BddManager::set_var_groups(
    const std::vector<std::vector<std::uint32_t>>& groups) {
  check_mutable();
  std::vector<std::uint32_t> assignment(num_vars_, kNoGroup);
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    XATPG_CHECK_MSG(!groups[g].empty(), "empty variable group");
    std::uint32_t lo = kNil, hi = 0;
    for (const std::uint32_t v : groups[g]) {
      XATPG_CHECK_MSG(v < num_vars_, "grouped variable " << v << " not allocated");
      XATPG_CHECK_MSG(assignment[v] == kNoGroup,
                      "variable " << v << " appears in two groups");
      assignment[v] = g;
      lo = std::min(lo, var_to_level_[v]);
      hi = std::max(hi, var_to_level_[v]);
    }
    XATPG_CHECK_MSG(hi - lo + 1 == groups[g].size(),
                    "variable group must occupy adjacent levels");
  }
  group_of_var_ = std::move(assignment);
}

void BddManager::clear_var_groups() {
  check_mutable();
  group_of_var_.assign(num_vars_, kNoGroup);
}

std::size_t BddManager::live_size() {
  sweep_dead();
  return allocated_nodes();
}

void BddManager::sift_block(std::uint32_t first, std::uint32_t size,
                            std::size_t* total_size, std::size_t* swaps) {
  // Walk the block down to the bottom of the order, then up to the top,
  // recording the canonical live size at every position; finish by moving
  // back to the best position seen.  A position's size is path-independent
  // (the live table at a fixed order is canonical), so the recorded best is
  // reproduced exactly on return.  Either walk aborts early once the table
  // grows past max_growth x the best size seen.
  std::size_t best_size = *total_size;
  std::uint32_t cur = first;  // the block's current first level
  std::uint32_t best = first;
  const double growth = std::max(1.0, reorder_policy_.max_growth);
  const auto exceeded = [&](std::size_t now) {
    return static_cast<double>(now) >
           growth * static_cast<double>(best_size);
  };

  // Down toward the bottom.
  while (cur + size < num_vars_) {
    std::uint32_t nfirst = 0, nsize = 0;
    block_at(cur + size, &nfirst, &nsize);
    swap_adjacent_blocks(cur, size, nsize);
    *swaps += static_cast<std::size_t>(size) * nsize;
    cur += nsize;
    const std::size_t now = live_size();
    if (now < best_size) {
      best_size = now;
      best = cur;
    } else if (exceeded(now)) {
      break;
    }
  }
  // Up toward the top (from wherever the down walk stopped).
  while (cur > 0) {
    std::uint32_t nfirst = 0, nsize = 0;
    block_at(cur - 1, &nfirst, &nsize);
    swap_adjacent_blocks(nfirst, nsize, size);
    *swaps += static_cast<std::size_t>(size) * nsize;
    cur = nfirst;
    const std::size_t now = live_size();
    if (now < best_size) {
      best_size = now;
      best = cur;
    } else if (exceeded(now)) {
      break;
    }
  }
  // Return to the best position (block ordinals have path-independent
  // first levels, so plain level comparison steers the walk).
  while (cur != best) {
    if (cur < best) {
      std::uint32_t nfirst = 0, nsize = 0;
      block_at(cur + size, &nfirst, &nsize);
      swap_adjacent_blocks(cur, size, nsize);
      *swaps += static_cast<std::size_t>(size) * nsize;
      cur += nsize;
    } else {
      std::uint32_t nfirst = 0, nsize = 0;
      block_at(cur - 1, &nfirst, &nsize);
      swap_adjacent_blocks(nfirst, nsize, size);
      *swaps += static_cast<std::size_t>(size) * nsize;
      cur = nfirst;
    }
  }
  *total_size = live_size();
  XATPG_CHECK_MSG(*total_size == best_size,
                  "sifting failed to reproduce the best size (canonicity bug)");
}

ReorderStats BddManager::sift() {
  check_mutable();
  ReorderStats stats;
  reordering_ = true;
  sweep_dead();
  stats.size_before = allocated_nodes();
  stats.size_after = stats.size_before;
  // The order is pinned at freeze time: base-arena nodes are structured for
  // it and cannot be restructured, so a delta's sift degenerates to the
  // garbage collection above (zero swaps, zero blocks) instead of failing —
  // callers polling sift() for live sizes keep working unchanged.
  if (is_delta() || num_vars_ < 2) {
    reordering_ = false;
    return stats;
  }

  // Enumerate the blocks (maximal group runs / singleton variables) and
  // order them by node population, largest first — Rudell's heuristic:
  // place the fattest variables early while the table is most malleable.
  struct BlockRef {
    std::uint32_t anchor;  // a member variable; relocates the block later
    std::size_t nodes;
  };
  std::vector<BlockRef> refs;
  for (std::uint32_t l = 0; l < num_vars_;) {
    std::uint32_t first = 0, size = 0;
    block_at(l, &first, &size);
    std::size_t count = 0;
    for (std::uint32_t i = 0; i < size; ++i)
      count += subtables_[level_to_var_[first + i]].count;
    refs.push_back({level_to_var_[first], count});
    l = first + size;
  }
  if (refs.size() < 2) {
    reordering_ = false;
    return stats;
  }
  std::sort(refs.begin(), refs.end(),
            [](const BlockRef& a, const BlockRef& b) {
              if (a.nodes != b.nodes) return a.nodes > b.nodes;
              return a.anchor < b.anchor;  // deterministic tie-break
            });

  std::size_t total = stats.size_before;
  for (const BlockRef& ref : refs) {
    std::uint32_t first = 0, size = 0;
    block_at(var_to_level_[ref.anchor], &first, &size);
    sift_block(first, size, &total, &stats.swaps);
    ++stats.blocks_sifted;
  }
  stats.size_after = total;
  ++reorder_count_;
  reordering_ = false;
  return stats;
}

ReorderStats BddManager::reorder_to(const std::vector<std::uint32_t>& order) {
  check_mutable();
  XATPG_CHECK_MSG(!is_delta(),
                  "reorder_to() on a delta manager — the variable order is "
                  "pinned by the frozen base");
  XATPG_CHECK_MSG(order.size() == num_vars_,
                  "reorder_to: order must list every variable");
  std::vector<bool> seen(num_vars_, false);
  for (const std::uint32_t v : order) {
    XATPG_CHECK_MSG(v < num_vars_ && !seen[v],
                    "reorder_to: order must be a permutation");
    seen[v] = true;
  }
  ReorderStats stats;
  reordering_ = true;
  sweep_dead();
  stats.size_before = allocated_nodes();
  // Selection by bubbling: fix each level top-down, lifting the wanted
  // variable into place with adjacent swaps.  O(n^2) swaps worst case —
  // this entry point trades speed for the handle-preserving in-place
  // machinery; it exists for tests and ordering experiments.
  for (std::uint32_t l = 0; l < num_vars_; ++l) {
    const std::uint32_t v = order[l];
    for (std::uint32_t at = var_to_level_[v]; at > l; --at) {
      swap_adjacent_levels(at - 1);
      ++stats.swaps;
    }
  }
  stats.size_after = live_size();
  reordering_ = false;
  return stats;
}

void BddManager::set_reorder_policy(const ReorderPolicy& policy) {
  check_mutable();
  XATPG_CHECK_MSG(!is_delta() || !policy.enabled,
                  "cannot enable dynamic reordering on a delta manager — the "
                  "variable order is pinned by the frozen base");
  reorder_policy_ = policy;
  next_reorder_at_ = policy.trigger_nodes;
}

}  // namespace xatpg
