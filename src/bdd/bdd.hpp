// From-scratch ROBDD package used by all symbolic machinery in xatpg
// (reachability, TCR_k composition, CSSG pruning, 3-phase ATPG).
//
// Design notes:
//  * Reduced, ordered BDDs WITH complemented (attributed) edges: an edge is
//    a 32-bit word `(node_index << 1) | complement_bit`, there is a single
//    terminal node (index 0, the constant TRUE), and the constant FALSE is
//    the complemented edge to it.  Canonical form: a node's THEN (high)
//    edge is never complemented — make_node() restores this by pushing the
//    complement onto the incoming edge, so equal functions always share one
//    node and `f == g` stays a single word compare.  Negation is a bit flip
//    (`operator!` allocates no nodes and never recurses), self-dual-heavy
//    functions share the nodes of their complements, and the computed cache
//    serves f and !f from one entry (the ITE core normalizes the complement
//    onto the result).
//  * Nodes live in a grow-only arena with a free list; external references
//    are RAII `Bdd` handles registered in an intrusive list, enabling
//    mark-and-sweep garbage collection between top-level operations.
//  * The computed cache is a direct-mapped hash cache keyed by
//    (operation, operands); permutations get a per-permutation id so
//    distinct variable maps never alias cache entries.  Hit/lookup counters
//    feed the perf harness (src/perf) and the per-shard progress stats.
//  * Variable order is DYNAMIC: a level<->variable indirection separates a
//    variable's identity (the `var` stored in nodes, stable for the life of
//    the manager) from its position in the order (its level).  A fresh
//    manager assigns level == creation order; `sift()` and `reorder_to()`
//    permute levels afterwards via in-place adjacent-level swaps that
//    preserve every node index's function — external handles, cached
//    literal nodes and registered permutations all survive a reorder
//    untouched.  The unique table is split into per-variable subtables
//    (equivalently per-level, through the indirection), so an adjacent-level
//    swap only touches the two affected subtables.  Auto-reordering is
//    governed by a ReorderPolicy (node-count trigger, growth bound) and runs
//    only at public operation entry — the same invariant GC relies on.
//    The symbolic encoding layer (src/sgraph) chooses the initial
//    interleaving and declares per-signal variable groups that sifting
//    moves as blocks; the ordering ablation bench measures both the static
//    assignments and dynamic sifting.
//
// Base/delta layering (the shared-kernel memory model):
//  * A manager can be FROZEN (freeze()): its node arena, unique subtables,
//    variable order and complement-edge invariants become immutable.  Every
//    mutating entry point on a frozen manager fails loudly via XATPG_CHECK.
//    Freezing first collects garbage, materializes every literal node and
//    scrubs the computed cache, so the frozen state is self-consistently
//    live.
//  * A DELTA manager (the `BddManager(base, Delta{})` constructor) layers a
//    private mutable arena over a frozen base.  The global node-index space
//    is partitioned at `base_limit_` (the base's arena size at freeze time):
//    an edge word whose node index is below the limit targets the shared
//    base arena, anything at or above it targets the delta's local arena.
//    make_node/unique_lookup probe the base's unique subtables first, so any
//    function already built in the base resolves to the shared node — the
//    substrate (encoding literals, transition relations, CSSG sets) is paid
//    for exactly once no matter how many deltas exist.  The delta's computed
//    cache likewise falls back to read-only probes of the base cache.
//  * GC on a delta marks and sweeps the LOCAL arena only (base nodes are
//    permanently live).  The variable order is pinned at freeze time: base
//    nodes are structured for that order, so deltas never swap levels —
//    sift() on a delta degenerates to a garbage collection and reorder_to()
//    is rejected.
//  * Handles into the base remain valid words in every delta (the index
//    spaces agree below base_limit_); adopt() rebinds a base handle to a
//    delta so delta-side operations accept it.
//
// Thread-safety contract:
//  * A BddManager and every Bdd handle attached to it are confined to ONE
//    thread at a time.  There is no internal synchronization: every
//    operation — including logically read-only queries like sat_count or
//    eval — mutates shared manager state (the handle registry, the unique
//    table, the computed cache, and GC bookkeeping).  Copying a Bdd handle
//    alone writes the manager's registry list.  Dynamic reordering mutates
//    node labels in place and is likewise confined to the owning thread.
//  * Concurrent use of DIFFERENT managers from different threads is safe;
//    managers share no global state.  This is the sharding model the
//    fault-parallel ATPG engine uses: one delta manager (inside one
//    SymbolicEncoding + Cssg view) per worker thread, all layered over one
//    frozen base built on the main thread (see src/atpg/engine.cpp).
//  * Publication protocol for the base/delta split: freeze() is the
//    documented publication point.  The freezing thread must
//    happens-before-publish the frozen manager to the worker threads (the
//    engine does this by freezing before std::thread construction, whose
//    completion synchronizes-with the start of the thread function).  After
//    publication the frozen base is READ-ONLY and lock-free: concurrent
//    deltas on different threads may probe its arena, subtables and cache
//    freely, but nothing — including the owning thread — may call mutating
//    operations on it, create/copy/destroy Bdd handles attached to it, or
//    bump its statistics counters while deltas are live on other threads.
//  * Handles must never outlive their manager on another thread, a delta
//    must never outlive its base, and a Bdd from one manager must never be
//    passed to another manager's operations (enforced by XATPG_CHECK at
//    every public entry point; adopt() is the explicit base-to-delta
//    crossing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xatpg/options.hpp"  // ReorderPolicy (public API type)

namespace xatpg {

class BddManager;

/// RAII reference to a BDD node.  Copyable and movable; the referenced node
/// is protected from garbage collection for the lifetime of the handle.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  /// True if this handle refers to a node (even the constant nodes).
  [[nodiscard]] bool valid() const { return mgr_ != nullptr; }
  [[nodiscard]] BddManager* manager() const { return mgr_; }
  /// The raw edge value: (node index << 1) | complement bit.  Stable across
  /// garbage collection and dynamic reordering; meaningful only to the
  /// owning manager.
  [[nodiscard]] std::uint32_t index() const { return idx_; }
  /// True if this handle travels through a complemented edge (the node it
  /// references stores !f).  Purely representational — two handles are equal
  /// iff edge AND complement agree, which is exactly function equality.
  [[nodiscard]] bool complemented() const { return (idx_ & 1u) != 0; }

  [[nodiscard]] bool is_false() const;
  [[nodiscard]] bool is_true() const;
  [[nodiscard]] bool is_const() const { return is_false() || is_true(); }

  /// Top variable; precondition: !is_const().  NOTE: under dynamic
  /// reordering "top" means highest level (closest to the root), which is
  /// not necessarily the smallest variable index.
  [[nodiscard]] std::uint32_t top_var() const;
  /// Low (var=0) cofactor; precondition: !is_const().  The handle's
  /// complement bit is folded in, so f == ite(top_var, high, low) always.
  [[nodiscard]] Bdd low() const;
  /// High (var=1) cofactor; precondition: !is_const().
  [[nodiscard]] Bdd high() const;

  // Boolean combinators (delegate to the manager; operator! is a local bit
  // flip and allocates nothing).
  [[nodiscard]] Bdd operator&(const Bdd& rhs) const;
  [[nodiscard]] Bdd operator|(const Bdd& rhs) const;
  [[nodiscard]] Bdd operator^(const Bdd& rhs) const;
  [[nodiscard]] Bdd operator!() const;
  Bdd& operator&=(const Bdd& rhs);
  Bdd& operator|=(const Bdd& rhs);
  Bdd& operator^=(const Bdd& rhs);

  /// Structural equality (canonical: equal iff same function).
  [[nodiscard]] bool operator==(const Bdd& rhs) const {
    return mgr_ == rhs.mgr_ && idx_ == rhs.idx_;
  }
  [[nodiscard]] bool operator!=(const Bdd& rhs) const { return !(*this == rhs); }

  /// f <= g in the implication order (f -> g is a tautology).
  [[nodiscard]] bool implies(const Bdd& rhs) const;

  /// Number of distinct nodes in this BDD (including the terminal; a node
  /// shared between f and parts of !f counts once — complement edges are
  /// exactly this sharing).
  [[nodiscard]] std::size_t node_count() const;

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, std::uint32_t idx);
  void attach();
  void detach();

  BddManager* mgr_ = nullptr;
  std::uint32_t idx_ = 0;
  // Intrusive registry linkage for GC root enumeration.
  Bdd* reg_prev_ = nullptr;
  Bdd* reg_next_ = nullptr;
};

/// Assignment value used by minterm extraction: 0, 1, or DontCare.
enum class Tri : signed char { Zero = 0, One = 1, DontCare = -1 };

// ReorderPolicy (the sifting knobs) is a public API type — see
// xatpg/options.hpp.

/// Outcome of one sifting pass (also accumulated into manager statistics).
struct ReorderStats {
  std::size_t size_before = 0;  ///< live nodes entering the pass (post-GC)
  std::size_t size_after = 0;   ///< live nodes after the pass (<= size_before)
  std::size_t swaps = 0;        ///< adjacent-level swaps performed
  std::size_t blocks_sifted = 0;
};

/// Owner of the node arena, per-variable unique subtables, computed cache,
/// and the dynamic variable order.
class BddManager {
 public:
  /// Tag type selecting the delta-manager constructor.
  struct Delta {};

  /// Create a manager with `num_vars` pre-allocated variables.
  explicit BddManager(std::uint32_t num_vars = 0);
  /// Create a lightweight delta manager layered over `base`, which must be
  /// frozen and must outlive this manager.  The delta shares the base's
  /// variable set, order, groups and registered permutations; its own arena,
  /// unique subtables, computed cache and statistics start empty.  See the
  /// base/delta design notes at the top of this header.
  BddManager(const BddManager& base, Delta);
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // --- base/delta layering -------------------------------------------------
  /// Make this manager immutable: collect garbage, materialize every literal
  /// node, scrub the computed cache, and reject every subsequent mutating
  /// operation via XATPG_CHECK.  Freezing is the publication point for
  /// sharing the manager read-only across threads (see the thread-safety
  /// contract above).  Idempotent is NOT supported: freezing twice, freezing
  /// a delta, or mutating after freeze all fail loudly.
  void freeze();
  /// True once freeze() has run.
  [[nodiscard]] bool frozen() const { return frozen_; }
  /// True for a delta manager (constructed over a frozen base).
  [[nodiscard]] bool is_delta() const { return base_ != nullptr; }
  /// The frozen base of a delta manager; nullptr for a monolithic manager.
  [[nodiscard]] const BddManager* base() const { return base_; }
  /// Live nodes in the shared base arena (0 for a monolithic manager).
  /// Constant after freeze, so safe to read concurrently.
  [[nodiscard]] std::size_t base_nodes() const {
    return base_ == nullptr ? 0 : base_->allocated_nodes();
  }
  /// Rebind a handle owned by this delta's frozen base to this delta (the
  /// node-index spaces agree below base_limit_, so the edge word transfers
  /// verbatim).  Handles owned by this manager pass through unchanged;
  /// invalid handles stay invalid.
  [[nodiscard]] Bdd adopt(const Bdd& h);

  /// Append a fresh variable at the bottom of the order; returns its index.
  std::uint32_t new_var();
  [[nodiscard]] std::uint32_t num_vars() const { return num_vars_; }

  [[nodiscard]] Bdd bdd_false() { return Bdd(this, kFalseEdge); }
  [[nodiscard]] Bdd bdd_true() { return Bdd(this, kTrueEdge); }
  /// Literal x_v (positive) — precondition: v < num_vars().
  [[nodiscard]] Bdd var(std::uint32_t v);
  /// Literal !x_v (negative) — the complemented edge to the same node; never
  /// allocates.
  [[nodiscard]] Bdd nvar(std::uint32_t v);

  // --- dynamic variable order ----------------------------------------------
  /// Position of variable v in the order (0 = root-most).
  [[nodiscard]] std::uint32_t level_of(std::uint32_t v) const { return var_to_level_[v]; }
  /// Variable occupying position `level`.
  [[nodiscard]] std::uint32_t var_at_level(std::uint32_t level) const {
    return level_to_var_[level];
  }
  /// Variables in level order (a permutation of 0..num_vars-1).
  [[nodiscard]] const std::vector<std::uint32_t>& current_order() const {
    return level_to_var_;
  }

  /// Declare variable groups that sifting moves as indivisible blocks (and
  /// never reorders internally).  Each group must occupy adjacent levels at
  /// declaration time; sifting preserves the adjacency.  Replaces any
  /// previous grouping; ungrouped variables sift as singletons.
  void set_var_groups(const std::vector<std::vector<std::uint32_t>>& groups);
  void clear_var_groups();

  /// One Rudell sifting pass: every block (group or singleton), in
  /// decreasing-size order, is walked to every position in the order and
  /// parked at its minimum-size position.  The final table is never larger
  /// than the starting one; transient growth during a walk is bounded by
  /// reorder_policy().max_growth.  Runs a garbage collection first and
  /// invalidates the computed cache.  Must only be called between
  /// operations (like GC, never from inside a recursion).
  ReorderStats sift();

  /// Rearrange to an explicit order: `order[l]` is the variable for level l
  /// (a permutation of 0..num_vars-1).  Implemented with the same in-place
  /// adjacent swaps as sifting, so handles survive.  Intended for tests and
  /// experiments.
  ReorderStats reorder_to(const std::vector<std::uint32_t>& order);

  void set_reorder_policy(const ReorderPolicy& policy);
  [[nodiscard]] const ReorderPolicy& reorder_policy() const { return reorder_policy_; }
  /// Sifting passes performed (explicit + auto-triggered).
  [[nodiscard]] std::size_t reorder_count() const { return reorder_count_; }
  /// Adjacent-level swaps performed over the manager's lifetime.
  [[nodiscard]] std::size_t swap_count() const { return swap_count_; }

  /// if-then-else: f ? g : h.  The workhorse all binary ops reduce to.
  [[nodiscard]] Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

  [[nodiscard]] Bdd apply_and(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_or(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_xor(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_not(const Bdd& f);

  /// Existential quantification of all variables in `cube` (a positive
  /// product of literals).
  [[nodiscard]] Bdd exists(const Bdd& f, const Bdd& cube);
  /// Universal quantification.  With complement edges this is literally
  /// !exists(!f, cube) — one quantifier core serves both, and forall shares
  /// the exists cache through the complement.
  [[nodiscard]] Bdd forall(const Bdd& f, const Bdd& cube);
  /// Fused relational product:  ∃ cube . f ∧ g  — the inner loop of every
  /// image computation in src/sgraph.
  [[nodiscard]] Bdd and_exists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Rename variables: var v in f becomes var_map[v].  var_map must be a
  /// permutation vector of size num_vars().
  [[nodiscard]] Bdd permute(const Bdd& f, const std::vector<std::uint32_t>& var_map);

  /// Substitute g for variable v in f (Shannon composition).
  [[nodiscard]] Bdd compose(const Bdd& f, std::uint32_t v, const Bdd& g);

  /// Cofactor of f with respect to literal (v = phase).
  [[nodiscard]] Bdd cofactor(const Bdd& f, std::uint32_t v, bool phase);

  /// Positive cube of all variables occurring in f.
  [[nodiscard]] Bdd support_cube(const Bdd& f);
  /// Sorted list of variables occurring in f (sorted by variable index,
  /// independent of the current order).
  [[nodiscard]] std::vector<std::uint32_t> support_vars(const Bdd& f);

  /// Number of satisfying assignments of f over `nvars` variables, divided
  /// by 2^divide_exp.  The division happens on the internal
  /// mantissa/exponent representation, so ratios like "states over a
  /// sub-universe" stay representable even when the raw count would
  /// overflow double (which throws CheckError).  The result depends only on
  /// the function, never on the current variable order.
  [[nodiscard]] double sat_count(const Bdd& f, std::uint32_t nvars,
                   std::int64_t divide_exp = 0);

  /// Extract one satisfying assignment over the given variables; entries for
  /// variables f does not constrain are DontCare.  Precondition: !f.is_false().
  /// NOTE: which minterm is picked depends on the current variable order;
  /// order-independent callers (src/sgraph) canonicalize on top of cofactor.
  [[nodiscard]] std::vector<Tri> pick_minterm(const Bdd& f,
                                const std::vector<std::uint32_t>& vars);

  /// Evaluate f under a complete assignment (indexed by variable).
  [[nodiscard]] bool eval(const Bdd& f, const std::vector<bool>& assignment);

  /// Enumerate every complete assignment over `vars` (which must be sorted
  /// by strictly ascending LEVEL — for a never-reordered manager that is
  /// ascending variable index — and cover f's support), expanding
  /// don't-cares.  Throws CheckError if more than `limit` assignments exist.
  [[nodiscard]] std::vector<std::vector<bool>> all_minterms(
      const Bdd& f, const std::vector<std::uint32_t>& vars,
      std::size_t limit = 1u << 20);

  /// Build the positive cube of the listed variables.
  [[nodiscard]] Bdd make_cube(const std::vector<std::uint32_t>& vars);

  /// Build the minterm ∧ (x_v == value_v) for parallel vectors vars/values.
  [[nodiscard]] Bdd make_minterm(const std::vector<std::uint32_t>& vars,
                   const std::vector<bool>& values);

  /// Nodes currently allocated in THIS manager's arena (live + garbage not
  /// yet collected).  For a delta this counts only the local fault-specific
  /// nodes; the shared substrate is reported by base_nodes().
  [[nodiscard]] std::size_t allocated_nodes() const { return nodes_.size() - free_count_; }
  /// Force a mark-and-sweep collection now; returns nodes freed.
  std::size_t collect_garbage();
  /// Collections performed so far (statistic for the ordering ablation;
  /// sifting-internal sweeps are not counted).
  [[nodiscard]] std::size_t gc_count() const { return gc_count_; }

  /// Allocated-node watermark that triggers a collection at the next public
  /// operation entry.  By default the watermark is ADAPTIVE: after each
  /// collection it re-arms at max(4096, 2x the surviving nodes), so the
  /// garbage fraction — and with it the peak-allocated watermark — stays
  /// bounded by a constant factor of the live size instead of a fixed
  /// 2^18-node cliff that image fixpoints on large circuits never reach.
  [[nodiscard]] std::size_t gc_threshold() const { return gc_threshold_; }
  /// Pin the watermark and disable the adaptive policy.  Exposed so stress
  /// tests can force a GC at every op entry (threshold 0 stays 0) and
  /// validate the "GC only at op entry" invariant the recursive cores rely
  /// on.
  void set_gc_threshold(std::size_t threshold) {
    check_mutable();
    gc_threshold_ = threshold;
    gc_adaptive_ = false;
  }

  /// Peak allocated node count observed in THIS manager's arena (statistic).
  /// For a delta this is the fault-specific watermark; a shard's true
  /// resident peak is base_nodes() + peak_nodes().
  [[nodiscard]] std::size_t peak_nodes() const { return peak_nodes_; }

  // --- cache / table statistics --------------------------------------------
  // Fed to the perf harness (src/perf), the per-shard progress snapshots
  // (ShardBddStats) and the CLI JSON records.  Counters are cumulative over
  // the manager's lifetime; rates are computed by the consumer so two
  // snapshots can be diffed.

  /// Computed-cache probes since construction.
  [[nodiscard]] std::size_t cache_lookups() const { return cache_lookups_; }
  /// Probes that returned a cached result.
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
  /// Chained unique-table entries (live + not-yet-swept garbage) divided by
  /// the total bucket count — the classic load factor.  Subtables double at
  /// load 2, so this stays in [0, 2] and a value near 2 means the table is
  /// about to grow.
  [[nodiscard]] double unique_load() const;

  /// Walk every unique subtable and XATPG_CHECK the canonical-form
  /// invariants the complement-edge kernel maintains for every
  /// table-resident node (live or not-yet-swept): the THEN edge is never
  /// complemented, lo != hi, the node is labelled with its subtable's
  /// variable, and both children live at strictly lower levels.  Returns the
  /// number of nodes checked.  Test/debug hook — O(allocated nodes).
  std::size_t validate_canonical() const;

 private:
  friend class Bdd;

  // --- edges ---------------------------------------------------------------
  // An edge addresses a node and carries the complement attribute in bit 0.
  // The sole terminal node has index 0; TRUE is the plain edge to it, FALSE
  // the complemented one.
  static constexpr std::uint32_t kTrueEdge = 0;
  static constexpr std::uint32_t kFalseEdge = 1;
  static std::uint32_t edge_node(std::uint32_t e) { return e >> 1; }
  static bool edge_comp(std::uint32_t e) { return (e & 1u) != 0; }
  static std::uint32_t edge_not(std::uint32_t e) { return e ^ 1u; }
  static std::uint32_t edge_regular(std::uint32_t e) { return e & ~1u; }
  static std::uint32_t make_edge(std::uint32_t node, bool comp) {
    return (node << 1) | static_cast<std::uint32_t>(comp);
  }

  struct Node {
    std::uint32_t var;   // variable index; kVarTerminal for the terminal
    std::uint32_t lo;    // low-cofactor EDGE (may be complemented)
    std::uint32_t hi;    // high-cofactor EDGE (never complemented)
    std::uint32_t next;  // unique-subtable chain / free-list link (node idx)
  };
  /// Per-variable unique subtable.  Through the level<->var indirection this
  /// doubles as the per-LEVEL subtable, which is what makes an
  /// adjacent-level swap local: all nodes of the upper level live in
  /// exactly one subtable.
  struct SubTable {
    std::vector<std::uint32_t> buckets;
    std::size_t count = 0;  ///< chained nodes (live + not-yet-swept garbage)
  };
  static constexpr std::uint32_t kVarTerminal = 0xffffffffu;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kNoGroup = 0xffffffffu;
  static constexpr std::uint32_t kLevelTerminal = 0xffffffffu;

  /// Arena-spanning node access: indices below base_limit_ resolve into the
  /// frozen base's arena, everything else into the local one.  For a
  /// monolithic manager base_limit_ is 0 and this is a plain nodes_ read.
  const Node& node_ref(std::uint32_t n) const {
    return n < base_limit_ ? base_->nodes_[n] : nodes_[n - base_limit_];
  }
  /// Local arena slot of a global node index; precondition n >= base_limit_.
  std::uint32_t local_of(std::uint32_t n) const { return n - base_limit_; }
  /// Global node index of a local arena slot.
  std::uint32_t global_of(std::uint32_t local) const {
    return base_limit_ + local;
  }
  /// One past the largest global node index in use (sizes `seen` vectors).
  std::size_t global_node_limit() const {
    return base_limit_ + nodes_.size();
  }
  /// XATPG_CHECK that this manager still accepts mutating operations.
  void check_mutable() const;

  /// Level of the node's top variable; the terminal sorts below everything.
  std::uint32_t level_of_node(std::uint32_t n) const {
    const Node& node = node_ref(n);
    return node.var == kVarTerminal ? kLevelTerminal : var_to_level_[node.var];
  }
  /// Level of the edge's target node.
  std::uint32_t level_of_edge(std::uint32_t e) const {
    return level_of_node(edge_node(e));
  }

  /// Canonicalizing node constructor over EDGES: applies the reduction rule
  /// (lo == hi) and restores the no-complemented-THEN-edge invariant by
  /// complementing both children and the returned edge when hi arrives
  /// complemented.
  std::uint32_t make_node(std::uint32_t var, std::uint32_t lo,
                          std::uint32_t hi);
  /// Hash-consing lookup; `hi` is guaranteed uncomplemented by make_node.
  /// Returns the (uncomplemented) edge to the node.
  std::uint32_t unique_lookup(std::uint32_t var, std::uint32_t lo,
                              std::uint32_t hi);
  void subtable_insert(std::uint32_t var, std::uint32_t n);
  void subtable_remove(std::uint32_t var, std::uint32_t n);
  void grow_subtable(std::uint32_t var);
  void maybe_gc();
  void maybe_reorder();

  // Recursive cores (raw edges; safe because GC/reordering only run at op
  // entry).
  std::uint32_t ite_rec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  std::uint32_t exists_rec(std::uint32_t f, std::uint32_t cube);
  std::uint32_t and_exists_rec(std::uint32_t f, std::uint32_t g,
                               std::uint32_t cube);
  std::uint32_t permute_rec(std::uint32_t f, std::uint32_t perm_id,
                            const std::vector<std::uint32_t>& var_map);
  std::uint32_t compose_rec(std::uint32_t f, std::uint32_t v, std::uint32_t g);
  std::uint32_t cofactor_rec(std::uint32_t f, std::uint32_t v, bool phase);

  void mark(std::uint32_t edge, std::vector<bool>& marked) const;
  /// Mark-and-sweep without touching gc_count_ (shared by collect_garbage
  /// and the sifting size measurements).
  std::size_t sweep_dead();

  // --- dynamic reordering ---------------------------------------------------
  /// Swap the variables at `level` and `level + 1`.  In place: every node
  /// index keeps its function; only nodes of the upper level that actually
  /// depend on the lower variable are restructured.  Never collects, never
  /// touches other levels' subtables (beyond child lookups).
  void swap_adjacent_levels(std::uint32_t level);
  /// Exchange the adjacent blocks [first, first+a) and [first+a, first+a+b)
  /// (level ranges), preserving the internal order of each.
  void swap_adjacent_blocks(std::uint32_t first, std::uint32_t a,
                            std::uint32_t b);
  /// Block containing `level`: [first, first + size).
  void block_at(std::uint32_t level, std::uint32_t* first,
                std::uint32_t* size) const;
  /// Sift the block whose top is at `first` to its best position.
  void sift_block(std::uint32_t first, std::uint32_t size,
                  std::size_t* best_size, std::size_t* swaps);
  /// Current live size: sweeps garbage, returns allocated_nodes().
  std::size_t live_size();

  // --- computed cache -----------------------------------------------------
  enum class Op : std::uint64_t {
    Ite = 1, Exists, AndExists, Permute, Compose0, Cofactor,
  };
  struct CacheEntry {
    std::uint64_t key_hi = 0;
    std::uint64_t key_lo = 0;
    std::uint32_t result = kNil;
    bool valid = false;
  };
  std::uint32_t cache_lookup(Op op, std::uint64_t a, std::uint64_t b,
                             std::uint64_t c) const;
  /// Read-only probe of one cache array (shared by the local lookup and the
  /// delta's fallback probe into the frozen base; never touches counters).
  static std::uint32_t cache_probe(const std::vector<CacheEntry>& cache,
                                   std::size_t mask, Op op, std::uint64_t a,
                                   std::uint64_t b, std::uint64_t c);
  void cache_insert(Op op, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                    std::uint32_t result);
  void cache_clear();
  /// Invalidate only the entries that reference a dead (about-to-be-recycled)
  /// node; everything else survives a collection.  Sound because an entry
  /// maps operand FUNCTIONS to a result function, node indices keep their
  /// function across both GC (live ones) and in-place reordering — only
  /// index reuse from the free list could alias, and that is exactly what
  /// the dead-operand scrub rules out.
  void cache_scrub_dead(const std::vector<bool>& marked);
  /// Keep the direct-mapped cache sized to the node population (entries >=
  /// allocated nodes, capped): a fixed-size cache thrashes on 1000-variable
  /// circuits and recomputes subproblems into fresh garbage nodes.  Doubles
  /// by rehashing the stored keys, so it can run at any operation entry.
  void maybe_grow_cache();

  // --- data ----------------------------------------------------------------
  // Base/delta layering.  For a monolithic manager all three stay at their
  // defaults and every code path below degenerates to the single-arena case.
  const BddManager* base_ = nullptr;  // frozen base arena (deltas only)
  std::uint32_t base_limit_ = 0;      // global indices below this are base's
  bool frozen_ = false;               // set by freeze(); rejects mutation

  std::vector<Node> nodes_;  // LOCAL arena (global index base_limit_ + slot)
  std::vector<SubTable> subtables_;     // one unique subtable per variable
  std::uint32_t free_head_ = kNil;      // free list through Node::next
  std::size_t free_count_ = 0;
  std::uint32_t num_vars_ = 0;
  std::vector<std::uint32_t> var_nodes_;  // cached positive-literal EDGES

  std::vector<std::uint32_t> var_to_level_;
  std::vector<std::uint32_t> level_to_var_;
  std::vector<std::uint32_t> group_of_var_;

  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_ = 0;
  mutable std::size_t cache_lookups_ = 0;
  mutable std::size_t cache_hits_ = 0;

  Bdd* registry_head_ = nullptr;  // GC roots: live external handles
  static constexpr std::size_t kGcFloor = 1u << 12;
  std::size_t gc_threshold_ = kGcFloor;
  bool gc_adaptive_ = true;  // cleared by set_gc_threshold (pinned mode)
  std::size_t gc_count_ = 0;
  std::size_t peak_nodes_ = 0;
  std::uint32_t next_perm_id_ = 0;
  std::vector<std::vector<std::uint32_t>> registered_perms_;
  std::uint32_t register_perm(const std::vector<std::uint32_t>& var_map);

  ReorderPolicy reorder_policy_;
  std::size_t next_reorder_at_ = 0;
  std::size_t reorder_count_ = 0;
  std::size_t swap_count_ = 0;
  bool reordering_ = false;  // re-entrancy guard for auto-triggering
};

}  // namespace xatpg
