// Recursive BDD operation cores.  All *_rec functions operate on raw node
// indices; garbage collection and dynamic reordering are only ever triggered
// at the public entry points (maybe_gc), so indices remain stable throughout
// a recursion.
//
// Ordering discipline: nodes store the VARIABLE index, but the order is the
// level permutation (BddManager::level_of).  Every "which operand is on
// top?" decision therefore compares LEVELS, never variable indices —
// variable indices only decide identity ("is this the quantified/composed
// variable?").  Terminals sort below every level (kLevelTerminal).
#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "util/check.hpp"

namespace xatpg {

// Every public operation entry must reject operands from a different
// manager (node indices are meaningless across arenas — mixing silently
// computes garbage) and invalid handles (null manager deref).  ite() always
// enforced this; these macros extend the same guard to the other entry
// points.
#define XATPG_CHECK_SAME_MGR1(f)                                            \
  XATPG_CHECK_MSG((f).manager() == this,                                    \
                  "Bdd operand is invalid or belongs to a different manager")
#define XATPG_CHECK_SAME_MGR2(f, g)                                         \
  do {                                                                      \
    XATPG_CHECK_SAME_MGR1(f);                                               \
    XATPG_CHECK_SAME_MGR1(g);                                               \
  } while (0)

// ---------------------------------------------------------------------------
// ite
// ---------------------------------------------------------------------------

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  XATPG_CHECK(f.manager() == this && g.manager() == this &&
              h.manager() == this);
  maybe_gc();
  return Bdd(this, ite_rec(f.index(), g.index(), h.index()));
}

std::uint32_t BddManager::ite_rec(std::uint32_t f, std::uint32_t g,
                                  std::uint32_t h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;
  if (g == 0 && h == 1) return not_rec(f);

  const std::uint32_t hit = cache_lookup(Op::Ite, f, g, h);
  if (hit != kNil) return hit;

  const std::uint32_t top_level = std::min(
      level_of_node(f), std::min(level_of_node(g), level_of_node(h)));
  const std::uint32_t top_var = level_to_var_[top_level];

  const auto cof = [&](std::uint32_t n, bool hi) {
    if (nodes_[n].var != top_var) return n;
    return hi ? nodes_[n].hi : nodes_[n].lo;
  };

  const std::uint32_t r0 = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  const std::uint32_t r1 = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  const std::uint32_t result = make_node(top_var, r0, r1);
  cache_insert(Op::Ite, f, g, h, result);
  return result;
}

std::uint32_t BddManager::not_rec(std::uint32_t f) {
  if (f == 0) return 1;
  if (f == 1) return 0;
  const std::uint32_t hit = cache_lookup(Op::Not, f, 0, 0);
  if (hit != kNil) return hit;
  const Node n = nodes_[f];
  const std::uint32_t r0 = not_rec(n.lo);
  const std::uint32_t r1 = not_rec(n.hi);
  const std::uint32_t result = make_node(n.var, r0, r1);
  cache_insert(Op::Not, f, 0, 0, result);
  return result;
}

Bdd BddManager::apply_and(const Bdd& f, const Bdd& g) {
  XATPG_CHECK_SAME_MGR2(f, g);
  maybe_gc();
  return Bdd(this, ite_rec(f.index(), g.index(), 0));
}

Bdd BddManager::apply_or(const Bdd& f, const Bdd& g) {
  XATPG_CHECK_SAME_MGR2(f, g);
  maybe_gc();
  return Bdd(this, ite_rec(f.index(), 1, g.index()));
}

Bdd BddManager::apply_xor(const Bdd& f, const Bdd& g) {
  XATPG_CHECK_SAME_MGR2(f, g);
  maybe_gc();
  const std::uint32_t ng = not_rec(g.index());
  return Bdd(this, ite_rec(f.index(), ng, g.index()));
}

Bdd BddManager::apply_not(const Bdd& f) {
  XATPG_CHECK_SAME_MGR1(f);
  maybe_gc();
  return Bdd(this, not_rec(f.index()));
}

// ---------------------------------------------------------------------------
// Quantification
// ---------------------------------------------------------------------------

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  XATPG_CHECK_SAME_MGR2(f, cube);
  maybe_gc();
  return Bdd(this, quant_rec(f.index(), cube.index(), /*universal=*/false));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  XATPG_CHECK_SAME_MGR2(f, cube);
  maybe_gc();
  return Bdd(this, quant_rec(f.index(), cube.index(), /*universal=*/true));
}

std::uint32_t BddManager::quant_rec(std::uint32_t f, std::uint32_t cube,
                                    bool universal) {
  if (f == 0 || f == 1) return f;
  // Skip quantified variables above f's top level (they do not occur in f).
  while (cube != 1 && level_of_node(cube) < level_of_node(f))
    cube = nodes_[cube].hi;
  if (cube == 1) return f;

  const Op op = universal ? Op::Forall : Op::Exists;
  const std::uint32_t hit = cache_lookup(op, f, cube, 0);
  if (hit != kNil) return hit;

  const Node nf = nodes_[f];
  const Node nc = nodes_[cube];
  std::uint32_t result;
  if (nf.var == nc.var) {
    const std::uint32_t l = quant_rec(nf.lo, nc.hi, universal);
    const std::uint32_t r = quant_rec(nf.hi, nc.hi, universal);
    result = universal ? ite_rec(l, r, 0) : ite_rec(l, 1, r);
  } else {  // f's top level is above the cube's next variable
    const std::uint32_t l = quant_rec(nf.lo, cube, universal);
    const std::uint32_t r = quant_rec(nf.hi, cube, universal);
    result = make_node(nf.var, l, r);
  }
  cache_insert(op, f, cube, 0, result);
  return result;
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  XATPG_CHECK_SAME_MGR2(f, g);
  XATPG_CHECK_SAME_MGR1(cube);
  maybe_gc();
  return Bdd(this, and_exists_rec(f.index(), g.index(), cube.index()));
}

std::uint32_t BddManager::and_exists_rec(std::uint32_t f, std::uint32_t g,
                                         std::uint32_t cube) {
  if (f == 0 || g == 0) return 0;
  if (f == 1 && g == 1) return 1;
  if (f == 1) return quant_rec(g, cube, /*universal=*/false);
  if (g == 1) return quant_rec(f, cube, /*universal=*/false);
  if (cube == 1) return ite_rec(f, g, 0);

  const std::uint32_t top_level =
      std::min(level_of_node(f), level_of_node(g));
  while (cube != 1 && level_of_node(cube) < top_level) cube = nodes_[cube].hi;
  if (cube == 1) return ite_rec(f, g, 0);

  const std::uint32_t hit = cache_lookup(Op::AndExists, f, g, cube);
  if (hit != kNil) return hit;

  const std::uint32_t top_var = level_to_var_[top_level];
  const auto cof = [&](std::uint32_t n, bool hi) {
    if (nodes_[n].var != top_var) return n;
    return hi ? nodes_[n].hi : nodes_[n].lo;
  };

  std::uint32_t result;
  if (nodes_[cube].var == top_var) {
    const std::uint32_t rest = nodes_[cube].hi;
    const std::uint32_t r0 = and_exists_rec(cof(f, false), cof(g, false), rest);
    if (r0 == 1) {
      result = 1;
    } else {
      const std::uint32_t r1 = and_exists_rec(cof(f, true), cof(g, true), rest);
      result = ite_rec(r0, 1, r1);
    }
  } else {
    const std::uint32_t r0 = and_exists_rec(cof(f, false), cof(g, false), cube);
    const std::uint32_t r1 = and_exists_rec(cof(f, true), cof(g, true), cube);
    result = make_node(top_var, r0, r1);
  }
  cache_insert(Op::AndExists, f, g, cube, result);
  return result;
}

// ---------------------------------------------------------------------------
// Renaming / composition / cofactors
// ---------------------------------------------------------------------------

Bdd BddManager::permute(const Bdd& f, const std::vector<std::uint32_t>& var_map) {
  XATPG_CHECK_SAME_MGR1(f);
  XATPG_CHECK(var_map.size() == num_vars_);
  maybe_gc();
  const std::uint32_t perm_id = register_perm(var_map);
  return Bdd(this, permute_rec(f.index(), perm_id, var_map));
}

std::uint32_t BddManager::permute_rec(
    std::uint32_t f, std::uint32_t perm_id,
    const std::vector<std::uint32_t>& var_map) {
  if (f == 0 || f == 1) return f;
  const std::uint32_t hit = cache_lookup(Op::Permute, f, perm_id, 0);
  if (hit != kNil) return hit;
  const Node nf = nodes_[f];
  const std::uint32_t l = permute_rec(nf.lo, perm_id, var_map);
  const std::uint32_t r = permute_rec(nf.hi, perm_id, var_map);
  // The renamed variable may fall anywhere in the order relative to the
  // rebuilt children, so route through ite on the fresh literal.
  const std::uint32_t lit = make_node(var_map[nf.var], 0, 1);
  const std::uint32_t result = ite_rec(lit, r, l);
  cache_insert(Op::Permute, f, perm_id, 0, result);
  return result;
}

Bdd BddManager::compose(const Bdd& f, std::uint32_t v, const Bdd& g) {
  XATPG_CHECK_SAME_MGR2(f, g);
  maybe_gc();
  return Bdd(this, compose_rec(f.index(), v, g.index()));
}

std::uint32_t BddManager::compose_rec(std::uint32_t f, std::uint32_t v,
                                      std::uint32_t g) {
  if (f == 0 || f == 1) return f;
  const Node nf = nodes_[f];
  if (var_to_level_[nf.var] > var_to_level_[v]) return f;  // v cannot occur below
  const std::uint32_t hit = cache_lookup(Op::Compose0, f, g, v);
  if (hit != kNil) return hit;
  std::uint32_t result;
  if (nf.var == v) {
    result = ite_rec(g, nf.hi, nf.lo);
  } else {
    const std::uint32_t l = compose_rec(nf.lo, v, g);
    const std::uint32_t r = compose_rec(nf.hi, v, g);
    const std::uint32_t lit = make_node(nf.var, 0, 1);
    result = ite_rec(lit, r, l);
  }
  cache_insert(Op::Compose0, f, g, v, result);
  return result;
}

Bdd BddManager::cofactor(const Bdd& f, std::uint32_t v, bool phase) {
  XATPG_CHECK_SAME_MGR1(f);
  maybe_gc();
  return Bdd(this, cofactor_rec(f.index(), v, phase));
}

std::uint32_t BddManager::cofactor_rec(std::uint32_t f, std::uint32_t v,
                                       bool phase) {
  if (f == 0 || f == 1) return f;
  const Node nf = nodes_[f];
  if (var_to_level_[nf.var] > var_to_level_[v]) return f;
  if (nf.var == v) return phase ? nf.hi : nf.lo;
  const std::uint32_t key = (static_cast<std::uint32_t>(v) << 1) |
                            static_cast<std::uint32_t>(phase);
  const std::uint32_t hit = cache_lookup(Op::Cofactor, f, key, 0);
  if (hit != kNil) return hit;
  const std::uint32_t l = cofactor_rec(nf.lo, v, phase);
  const std::uint32_t r = cofactor_rec(nf.hi, v, phase);
  const std::uint32_t result = make_node(nf.var, l, r);
  cache_insert(Op::Cofactor, f, key, 0, result);
  return result;
}

// ---------------------------------------------------------------------------
// Support / counting / extraction
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> BddManager::support_vars(const Bdd& f) {
  XATPG_CHECK_SAME_MGR1(f);
  std::vector<bool> in_support(num_vars_, false);
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<std::uint32_t> stack;
  if (f.valid()) stack.push_back(f.index());
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (n <= 1 || seen[n]) continue;
    seen[n] = true;
    in_support[nodes_[n].var] = true;
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < num_vars_; ++v)
    if (in_support[v]) out.push_back(v);
  return out;
}

Bdd BddManager::support_cube(const Bdd& f) {
  return make_cube(support_vars(f));
}

Bdd BddManager::make_cube(const std::vector<std::uint32_t>& vars) {
  // Build bottom-up (deepest level first) so each step is O(1).
  std::vector<std::uint32_t> sorted = vars;
  std::sort(sorted.begin(), sorted.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return var_to_level_[a] < var_to_level_[b];
            });
  std::uint32_t acc = 1;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it)
    acc = make_node(*it, 0, acc);
  return Bdd(this, acc);
}

Bdd BddManager::make_minterm(const std::vector<std::uint32_t>& vars,
                             const std::vector<bool>& values) {
  XATPG_CHECK(vars.size() == values.size());
  std::vector<std::pair<std::uint32_t, bool>> lits;
  lits.reserve(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i)
    lits.emplace_back(vars[i], values[i]);
  std::sort(lits.begin(), lits.end(),
            [&](const auto& a, const auto& b) {
              return var_to_level_[a.first] < var_to_level_[b.first];
            });
  std::uint32_t acc = 1;
  for (auto it = lits.rbegin(); it != lits.rend(); ++it)
    acc = it->second ? make_node(it->first, 0, acc)
                     : make_node(it->first, acc, 0);
  return Bdd(this, acc);
}

double BddManager::sat_count(const Bdd& f, std::uint32_t nvars,
                             std::int64_t divide_exp) {
  XATPG_CHECK_SAME_MGR1(f);
  // Counts are kept as mantissa * 2^exponent with the exponent tracked
  // separately: the plain-double formulation (weights of 2^gap per skipped
  // level) overflows to inf past ~1023 effective variables, silently turning
  // every downstream statistic into inf/nan.  With the split representation
  // only the final conversion can overflow, and that is checked.
  struct Scaled {
    double m = 0;  // 0, or in [0.5, 1) after normalization
    std::int64_t e = 0;
  };
  const auto normalize = [](Scaled s) {
    if (s.m == 0) return Scaled{0, 0};
    int shift = 0;
    s.m = std::frexp(s.m, &shift);
    s.e += shift;
    return s;
  };
  const auto add = [&](Scaled a, Scaled b) {
    if (a.m == 0) return b;
    if (b.m == 0) return a;
    if (a.e < b.e) std::swap(a, b);
    // b is at most 2^64 below a; beyond double precision it vanishes, which
    // is the same rounding the all-double version performed.
    const std::int64_t down = b.e - a.e;
    a.m += down < -1074 ? 0.0 : std::ldexp(b.m, static_cast<int>(down));
    return normalize(a);
  };

  // The recursion counts assignments of the levels below each node; the gap
  // weights use LEVELS, so the per-node count depends on the current order —
  // but the final total is scaled over all num_vars() levels and then
  // adjusted to the caller's `nvars`-variable universe by a pure power of
  // two, making the returned count a function of f alone (reordering f
  // never changes its sat_count).
  std::unordered_map<std::uint32_t, Scaled> memo;
  // rec(n) = number of assignments of the levels in [level(n), num_vars_)
  // that satisfy n; terminals behave as level == num_vars_.
  auto level_of = [&](std::uint32_t n) -> std::uint32_t {
    return (n <= 1) ? num_vars_ : var_to_level_[nodes_[n].var];
  };
  auto rec = [&](auto&& self, std::uint32_t n) -> Scaled {
    if (n == 0) return Scaled{0, 0};
    if (n == 1) return Scaled{0.5, 1};
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const Node nn = nodes_[n];
    const std::uint32_t lvl = level_of(n);
    Scaled cl = self(self, nn.lo);
    cl.e += level_of(nn.lo) - lvl - 1;
    Scaled ch = self(self, nn.hi);
    ch.e += level_of(nn.hi) - lvl - 1;
    const Scaled result = add(cl, ch);
    memo.emplace(n, result);
    return result;
  };

  Scaled total = rec(rec, f.index());
  // Levels above the root are free: scale by 2^level(root) (terminals act
  // as level == num_vars_, making the constants 0 and 2^num_vars_), then
  // rescale from the manager's universe to the caller's nvars universe.
  total.e += level_of(f.index());
  total.e += static_cast<std::int64_t>(nvars) -
             static_cast<std::int64_t>(num_vars_);
  total.e -= divide_exp;
  const double out = std::ldexp(total.m, static_cast<int>(
      std::clamp<std::int64_t>(total.e, -100000, 100000)));
  XATPG_CHECK_MSG(std::isfinite(out),
                  "sat_count overflows double (count ~ 2^" << total.e
                      << "); reduce the variable universe or divide_exp");
  return out;
}

std::vector<Tri> BddManager::pick_minterm(
    const Bdd& f, const std::vector<std::uint32_t>& vars) {
  XATPG_CHECK_SAME_MGR1(f);
  XATPG_CHECK_MSG(!f.is_false(), "cannot pick a minterm of the zero function");
  std::vector<Tri> by_var(num_vars_, Tri::DontCare);
  std::uint32_t n = f.index();
  while (n > 1) {
    const Node nn = nodes_[n];
    if (nn.lo != 0) {
      by_var[nn.var] = Tri::Zero;
      n = nn.lo;
    } else {
      by_var[nn.var] = Tri::One;
      n = nn.hi;
    }
  }
  std::vector<Tri> out;
  out.reserve(vars.size());
  for (const std::uint32_t v : vars) out.push_back(by_var[v]);
  return out;
}

std::vector<std::vector<bool>> BddManager::all_minterms(
    const Bdd& f, const std::vector<std::uint32_t>& vars, std::size_t limit) {
  XATPG_CHECK_SAME_MGR1(f);
  for (std::size_t i = 1; i < vars.size(); ++i)
    XATPG_CHECK_MSG(var_to_level_[vars[i - 1]] < var_to_level_[vars[i]],
                    "vars must be strictly ascending in level");
  std::vector<std::vector<bool>> out;
  std::vector<bool> current(vars.size(), false);
  auto rec = [&](auto&& self, std::uint32_t node, std::size_t pos) -> void {
    if (node == 0) return;
    if (pos == vars.size()) {
      XATPG_CHECK_MSG(node == 1,
                      "all_minterms: variable list does not cover support");
      XATPG_CHECK_MSG(out.size() < limit, "all_minterms: limit exceeded");
      out.push_back(current);
      return;
    }
    const std::uint32_t node_level = level_of_node(node);
    XATPG_CHECK_MSG(node_level >= var_to_level_[vars[pos]],
                    "all_minterms: variable list does not cover support");
    if (node_level == var_to_level_[vars[pos]]) {
      const Node nn = nodes_[node];
      current[pos] = false;
      self(self, nn.lo, pos + 1);
      current[pos] = true;
      self(self, nn.hi, pos + 1);
    } else {  // don't-care on vars[pos]
      current[pos] = false;
      self(self, node, pos + 1);
      current[pos] = true;
      self(self, node, pos + 1);
    }
  };
  rec(rec, f.index(), 0);
  return out;
}

bool BddManager::eval(const Bdd& f, const std::vector<bool>& assignment) {
  XATPG_CHECK_SAME_MGR1(f);
  std::uint32_t n = f.index();
  while (n > 1) {
    const Node nn = nodes_[n];
    XATPG_CHECK(nn.var < assignment.size());
    n = assignment[nn.var] ? nn.hi : nn.lo;
  }
  return n == 1;
}

}  // namespace xatpg
