// Recursive BDD operation cores over complemented edges.  All *_rec
// functions operate on raw edge values ((node << 1) | complement); garbage
// collection and dynamic reordering are only ever triggered at the public
// entry points (maybe_gc), so edges remain stable throughout a recursion.
//
// Complement discipline: the cofactors of a complemented edge are the
// complemented cofactors of its node (!(v ? h : l) == v ? !h : !l), so every
// recursion folds the incoming complement bit into the child edges it
// descends.  Operations that commute with complement (permute, compose,
// cofactor) strip the bit before probing the computed cache and re-apply it
// to the result, so f and !f share one cache entry; ITE normalizes with the
// standard-triple rules and carries the complement on its result; forall is
// literally !exists(!f) and needs no core of its own.
//
// Ordering discipline: nodes store the VARIABLE index, but the order is the
// level permutation (BddManager::level_of).  Every "which operand is on
// top?" decision therefore compares LEVELS, never variable indices —
// variable indices only decide identity ("is this the quantified/composed
// variable?").  The terminal sorts below every level (kLevelTerminal).
#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "util/check.hpp"

namespace xatpg {

// Every public operation entry must reject operands from a different
// manager (edges are meaningless across arenas — mixing silently computes
// garbage) and invalid handles (null manager deref).  ite() always
// enforced this; these macros extend the same guard to the other entry
// points.
#define XATPG_CHECK_SAME_MGR1(f)                                            \
  XATPG_CHECK_MSG((f).manager() == this,                                    \
                  "Bdd operand is invalid or belongs to a different manager")
#define XATPG_CHECK_SAME_MGR2(f, g)                                         \
  do {                                                                      \
    XATPG_CHECK_SAME_MGR1(f);                                               \
    XATPG_CHECK_SAME_MGR1(g);                                               \
  } while (0)

// ---------------------------------------------------------------------------
// ite
// ---------------------------------------------------------------------------

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  XATPG_CHECK(f.manager() == this && g.manager() == this &&
              h.manager() == this);
  maybe_gc();
  return Bdd(this, ite_rec(f.index(), g.index(), h.index()));
}

std::uint32_t BddManager::ite_rec(std::uint32_t f, std::uint32_t g,
                                  std::uint32_t h) {
  // Terminal cases.
  if (f == kTrueEdge) return g;
  if (f == kFalseEdge) return h;
  if (g == h) return g;
  // Arguments that repeat (or complement) f collapse to constants: on the
  // branch where g (resp. h) is consulted, f's value is already fixed.
  if (g == f) g = kTrueEdge;
  else if (g == edge_not(f)) g = kFalseEdge;
  if (h == f) h = kFalseEdge;
  else if (h == edge_not(f)) h = kTrueEdge;
  if (g == h) return g;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return edge_not(f);

  // Standard-triple normalization (Brace/Rudell/Bryant): among the
  // equivalent spellings of an OR/AND/XOR-shaped call pick the one whose
  // first argument has the smaller node index, then force f and g
  // uncomplemented (the g rule complements the cached result instead).
  // Together these map up to 8 complement/operand variants of one function
  // pair onto a single cache entry — the effective-hit-rate win complement
  // edges are known for.
  if (g == kTrueEdge) {  // f | h == h | f
    if (edge_node(h) < edge_node(f)) std::swap(f, h);
  } else if (h == kFalseEdge) {  // f & g == g & f
    if (edge_node(g) < edge_node(f)) std::swap(f, g);
  } else if (g == kFalseEdge) {  // !f & h == !h-first spelling
    if (edge_node(h) < edge_node(f)) {
      const std::uint32_t of = f;
      f = edge_not(h);
      h = edge_not(of);
    }
  } else if (h == kTrueEdge) {  // f -> g == !g -> !f
    if (edge_node(g) < edge_node(f)) {
      const std::uint32_t of = f;
      f = edge_not(g);
      g = edge_not(of);
    }
  } else if (h == edge_not(g)) {  // xnor commutes: ite(f,g,!g) == ite(g,f,!f)
    if (edge_node(g) < edge_node(f)) {
      const std::uint32_t of = f;
      f = g;
      g = of;
      h = edge_not(of);
    }
  }
  if (edge_comp(f)) {  // ite(!f, g, h) == ite(f, h, g)
    f = edge_not(f);
    std::swap(g, h);
  }
  bool out_comp = false;
  if (edge_comp(g)) {  // ite(f, !g, !h) == !ite(f, g, h)
    g = edge_not(g);
    h = edge_not(h);
    out_comp = true;
  }

  const std::uint32_t hit = cache_lookup(Op::Ite, f, g, h);
  if (hit != kNil) return out_comp ? edge_not(hit) : hit;

  const std::uint32_t top_level = std::min(
      level_of_edge(f), std::min(level_of_edge(g), level_of_edge(h)));
  const std::uint32_t top_var = level_to_var_[top_level];

  const auto cof = [&](std::uint32_t e, bool hi_side) {
    const Node& n = node_ref(edge_node(e));
    if (n.var != top_var) return e;
    return (hi_side ? n.hi : n.lo) ^ (e & 1u);
  };

  const std::uint32_t r0 = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  const std::uint32_t r1 = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  const std::uint32_t result = make_node(top_var, r0, r1);
  cache_insert(Op::Ite, f, g, h, result);
  return out_comp ? edge_not(result) : result;
}

Bdd BddManager::apply_and(const Bdd& f, const Bdd& g) {
  XATPG_CHECK_SAME_MGR2(f, g);
  maybe_gc();
  return Bdd(this, ite_rec(f.index(), g.index(), kFalseEdge));
}

Bdd BddManager::apply_or(const Bdd& f, const Bdd& g) {
  XATPG_CHECK_SAME_MGR2(f, g);
  maybe_gc();
  return Bdd(this, ite_rec(f.index(), kTrueEdge, g.index()));
}

Bdd BddManager::apply_xor(const Bdd& f, const Bdd& g) {
  XATPG_CHECK_SAME_MGR2(f, g);
  maybe_gc();
  return Bdd(this, ite_rec(f.index(), edge_not(g.index()), g.index()));
}

Bdd BddManager::apply_not(const Bdd& f) {
  XATPG_CHECK_SAME_MGR1(f);
  // A pure bit flip: no recursion, no allocation, no GC point.
  return Bdd(this, edge_not(f.index()));
}

// ---------------------------------------------------------------------------
// Quantification
// ---------------------------------------------------------------------------

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  XATPG_CHECK_SAME_MGR2(f, cube);
  maybe_gc();
  return Bdd(this, exists_rec(f.index(), cube.index()));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  XATPG_CHECK_SAME_MGR2(f, cube);
  maybe_gc();
  // ∀x.f == !∃x.!f — with O(1) negation the dual quantifier is free, and
  // forall shares the exists computed-cache entries through the complement.
  return Bdd(this, edge_not(exists_rec(edge_not(f.index()), cube.index())));
}

std::uint32_t BddManager::exists_rec(std::uint32_t f, std::uint32_t cube) {
  if (edge_node(f) == 0) return f;  // constants quantify to themselves
  // Skip quantified variables above f's top level (they do not occur in f).
  while (cube != kTrueEdge && level_of_edge(cube) < level_of_edge(f))
    cube = node_ref(edge_node(cube)).hi;
  if (cube == kTrueEdge) return f;

  const std::uint32_t hit = cache_lookup(Op::Exists, f, cube, 0);
  if (hit != kNil) return hit;

  const std::uint32_t fc = f & 1u;
  const Node nf = node_ref(edge_node(f));
  const Node nc = node_ref(edge_node(cube));
  const std::uint32_t lo = nf.lo ^ fc;
  const std::uint32_t hi = nf.hi ^ fc;
  std::uint32_t result;
  if (nf.var == nc.var) {
    const std::uint32_t l = exists_rec(lo, nc.hi);
    result = l == kTrueEdge ? kTrueEdge
                            : ite_rec(l, kTrueEdge, exists_rec(hi, nc.hi));
  } else {  // f's top level is above the cube's next variable
    const std::uint32_t l = exists_rec(lo, cube);
    const std::uint32_t r = exists_rec(hi, cube);
    result = make_node(nf.var, l, r);
  }
  cache_insert(Op::Exists, f, cube, 0, result);
  return result;
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  XATPG_CHECK_SAME_MGR2(f, g);
  XATPG_CHECK_SAME_MGR1(cube);
  maybe_gc();
  return Bdd(this, and_exists_rec(f.index(), g.index(), cube.index()));
}

std::uint32_t BddManager::and_exists_rec(std::uint32_t f, std::uint32_t g,
                                         std::uint32_t cube) {
  if (f == kFalseEdge || g == kFalseEdge) return kFalseEdge;
  if (f == edge_not(g)) return kFalseEdge;  // f ∧ !f — free with complements
  if (f == g) g = kTrueEdge;                // f ∧ f
  if (f == kTrueEdge) return exists_rec(g, cube);
  if (g == kTrueEdge) return exists_rec(f, cube);
  if (cube == kTrueEdge) return ite_rec(f, g, kFalseEdge);

  const std::uint32_t top_level =
      std::min(level_of_edge(f), level_of_edge(g));
  while (cube != kTrueEdge && level_of_edge(cube) < top_level)
    cube = node_ref(edge_node(cube)).hi;
  if (cube == kTrueEdge) return ite_rec(f, g, kFalseEdge);

  // The conjunction commutes: canonicalize the operand order so (f, g) and
  // (g, f) share one cache entry.
  if (edge_node(g) < edge_node(f)) std::swap(f, g);
  const std::uint32_t hit = cache_lookup(Op::AndExists, f, g, cube);
  if (hit != kNil) return hit;

  const std::uint32_t top_var = level_to_var_[top_level];
  const auto cof = [&](std::uint32_t e, bool hi_side) {
    const Node& n = node_ref(edge_node(e));
    if (n.var != top_var) return e;
    return (hi_side ? n.hi : n.lo) ^ (e & 1u);
  };

  std::uint32_t result;
  if (node_ref(edge_node(cube)).var == top_var) {
    const std::uint32_t rest = node_ref(edge_node(cube)).hi;
    const std::uint32_t r0 = and_exists_rec(cof(f, false), cof(g, false), rest);
    if (r0 == kTrueEdge) {
      result = kTrueEdge;
    } else {
      const std::uint32_t r1 = and_exists_rec(cof(f, true), cof(g, true), rest);
      result = ite_rec(r0, kTrueEdge, r1);
    }
  } else {
    const std::uint32_t r0 = and_exists_rec(cof(f, false), cof(g, false), cube);
    const std::uint32_t r1 = and_exists_rec(cof(f, true), cof(g, true), cube);
    result = make_node(top_var, r0, r1);
  }
  cache_insert(Op::AndExists, f, g, cube, result);
  return result;
}

// ---------------------------------------------------------------------------
// Renaming / composition / cofactors
// ---------------------------------------------------------------------------

Bdd BddManager::permute(const Bdd& f, const std::vector<std::uint32_t>& var_map) {
  XATPG_CHECK_SAME_MGR1(f);
  XATPG_CHECK(var_map.size() == num_vars_);
  maybe_gc();
  const std::uint32_t perm_id = register_perm(var_map);
  return Bdd(this, permute_rec(f.index(), perm_id, var_map));
}

std::uint32_t BddManager::permute_rec(
    std::uint32_t f, std::uint32_t perm_id,
    const std::vector<std::uint32_t>& var_map) {
  if (edge_node(f) == 0) return f;
  // Renaming commutes with complement: cache on the regular (uncomplemented)
  // edge, re-apply the bit on the way out — f and !f share the entry.
  const std::uint32_t fc = f & 1u;
  const std::uint32_t fr = edge_regular(f);
  const std::uint32_t hit = cache_lookup(Op::Permute, fr, perm_id, 0);
  if (hit != kNil) return hit ^ fc;
  const Node nf = node_ref(edge_node(f));
  const std::uint32_t l = permute_rec(nf.lo, perm_id, var_map);
  const std::uint32_t r = permute_rec(nf.hi, perm_id, var_map);
  // The renamed variable may fall anywhere in the order relative to the
  // rebuilt children.  When it still sits strictly above both (the common
  // case: the sgraph layouts keep each signal's cur/next/aux triple
  // adjacent, so group renamings preserve relative depth) one make_node
  // suffices; only genuine inversions pay for the ite on a fresh literal.
  const std::uint32_t new_level = var_to_level_[var_map[nf.var]];
  std::uint32_t result;
  if (new_level < level_of_edge(l) && new_level < level_of_edge(r)) {
    result = make_node(var_map[nf.var], l, r);
  } else {
    const std::uint32_t lit =
        make_node(var_map[nf.var], kFalseEdge, kTrueEdge);
    result = ite_rec(lit, r, l);
  }
  cache_insert(Op::Permute, fr, perm_id, 0, result);
  return result ^ fc;
}

Bdd BddManager::compose(const Bdd& f, std::uint32_t v, const Bdd& g) {
  XATPG_CHECK_SAME_MGR2(f, g);
  maybe_gc();
  return Bdd(this, compose_rec(f.index(), v, g.index()));
}

std::uint32_t BddManager::compose_rec(std::uint32_t f, std::uint32_t v,
                                      std::uint32_t g) {
  if (edge_node(f) == 0) return f;
  const Node nf = node_ref(edge_node(f));
  if (var_to_level_[nf.var] > var_to_level_[v]) return f;  // v cannot occur below
  // Composition commutes with complement on f (not on g): strip f's bit for
  // the cache, re-apply on return.
  const std::uint32_t fc = f & 1u;
  const std::uint32_t fr = edge_regular(f);
  const std::uint32_t hit = cache_lookup(Op::Compose0, fr, g, v);
  if (hit != kNil) return hit ^ fc;
  std::uint32_t result;
  if (nf.var == v) {
    result = ite_rec(g, nf.hi, nf.lo);
  } else {
    const std::uint32_t l = compose_rec(nf.lo, v, g);
    const std::uint32_t r = compose_rec(nf.hi, v, g);
    // Same fast path as permute_rec: when this node's variable is still
    // strictly above both rebuilt children, the substitution did not
    // reorder anything at this level and one make_node suffices.
    const std::uint32_t level = var_to_level_[nf.var];
    if (level < level_of_edge(l) && level < level_of_edge(r)) {
      result = make_node(nf.var, l, r);
    } else {
      const std::uint32_t lit = make_node(nf.var, kFalseEdge, kTrueEdge);
      result = ite_rec(lit, r, l);
    }
  }
  cache_insert(Op::Compose0, fr, g, v, result);
  return result ^ fc;
}

Bdd BddManager::cofactor(const Bdd& f, std::uint32_t v, bool phase) {
  XATPG_CHECK_SAME_MGR1(f);
  maybe_gc();
  return Bdd(this, cofactor_rec(f.index(), v, phase));
}

std::uint32_t BddManager::cofactor_rec(std::uint32_t f, std::uint32_t v,
                                       bool phase) {
  if (edge_node(f) == 0) return f;
  const Node nf = node_ref(edge_node(f));
  if (var_to_level_[nf.var] > var_to_level_[v]) return f;
  const std::uint32_t fc = f & 1u;
  if (nf.var == v) return (phase ? nf.hi : nf.lo) ^ fc;
  const std::uint32_t fr = edge_regular(f);
  const std::uint32_t key = (static_cast<std::uint32_t>(v) << 1) |
                            static_cast<std::uint32_t>(phase);
  const std::uint32_t hit = cache_lookup(Op::Cofactor, fr, key, 0);
  if (hit != kNil) return hit ^ fc;
  const std::uint32_t l = cofactor_rec(nf.lo, v, phase);
  const std::uint32_t r = cofactor_rec(nf.hi, v, phase);
  const std::uint32_t result = make_node(nf.var, l, r);
  cache_insert(Op::Cofactor, fr, key, 0, result);
  return result ^ fc;
}

// ---------------------------------------------------------------------------
// Support / counting / extraction
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> BddManager::support_vars(const Bdd& f) {
  XATPG_CHECK_SAME_MGR1(f);
  std::vector<bool> in_support(num_vars_, false);
  std::vector<bool> seen(global_node_limit(), false);
  std::vector<std::uint32_t> stack;
  if (f.valid()) stack.push_back(edge_node(f.index()));
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (n == 0 || seen[n]) continue;
    seen[n] = true;
    const Node& node = node_ref(n);
    in_support[node.var] = true;
    stack.push_back(edge_node(node.lo));
    stack.push_back(edge_node(node.hi));
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < num_vars_; ++v)
    if (in_support[v]) out.push_back(v);
  return out;
}

Bdd BddManager::support_cube(const Bdd& f) {
  return make_cube(support_vars(f));
}

Bdd BddManager::make_cube(const std::vector<std::uint32_t>& vars) {
  check_mutable();  // allocates via make_node without a maybe_gc entry
  // Build bottom-up (deepest level first) so each step is O(1).
  std::vector<std::uint32_t> sorted = vars;
  std::sort(sorted.begin(), sorted.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return var_to_level_[a] < var_to_level_[b];
            });
  std::uint32_t acc = kTrueEdge;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it)
    acc = make_node(*it, kFalseEdge, acc);
  return Bdd(this, acc);
}

Bdd BddManager::make_minterm(const std::vector<std::uint32_t>& vars,
                             const std::vector<bool>& values) {
  check_mutable();  // allocates via make_node without a maybe_gc entry
  XATPG_CHECK(vars.size() == values.size());
  std::vector<std::pair<std::uint32_t, bool>> lits;
  lits.reserve(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i)
    lits.emplace_back(vars[i], values[i]);
  std::sort(lits.begin(), lits.end(),
            [&](const auto& a, const auto& b) {
              return var_to_level_[a.first] < var_to_level_[b.first];
            });
  std::uint32_t acc = kTrueEdge;
  for (auto it = lits.rbegin(); it != lits.rend(); ++it)
    acc = it->second ? make_node(it->first, kFalseEdge, acc)
                     : make_node(it->first, acc, kFalseEdge);
  return Bdd(this, acc);
}

double BddManager::sat_count(const Bdd& f, std::uint32_t nvars,
                             std::int64_t divide_exp) {
  XATPG_CHECK_SAME_MGR1(f);
  // Counts are kept as mantissa * 2^exponent with the exponent tracked
  // separately: the plain-double formulation (weights of 2^gap per skipped
  // level) overflows to inf past ~1023 effective variables, silently turning
  // every downstream statistic into inf/nan.  With the split representation
  // only the final conversion can overflow, and that is checked.
  struct Scaled {
    double m = 0;  // 0, or in [0.5, 1) after normalization
    std::int64_t e = 0;
  };
  const auto normalize = [](Scaled s) {
    if (s.m == 0) return Scaled{0, 0};
    int shift = 0;
    s.m = std::frexp(s.m, &shift);
    s.e += shift;
    return s;
  };
  const auto add = [&](Scaled a, Scaled b) {
    if (a.m == 0) return b;
    if (b.m == 0) return a;
    if (a.e < b.e) std::swap(a, b);
    // b is at most 2^64 below a; beyond double precision it vanishes, which
    // is the same rounding the all-double version performed.
    const std::int64_t down = b.e - a.e;
    a.m += down < -1074 ? 0.0 : std::ldexp(b.m, static_cast<int>(down));
    return normalize(a);
  };

  // The recursion counts assignments of the levels below each edge; the gap
  // weights use LEVELS, so the per-edge count depends on the current order —
  // but the final total is scaled over all num_vars() levels and then
  // adjusted to the caller's `nvars`-variable universe by a pure power of
  // two, making the returned count a function of f alone (reordering f
  // never changes its sat_count).  The memo keys on the full EDGE: an edge
  // and its complement count different functions.
  std::unordered_map<std::uint32_t, Scaled> memo;
  // rec(e) = number of assignments of the levels in [level(e), num_vars_)
  // that satisfy e; the terminal behaves as level == num_vars_.
  auto level_of = [&](std::uint32_t e) -> std::uint32_t {
    return edge_node(e) == 0 ? num_vars_
                             : var_to_level_[node_ref(edge_node(e)).var];
  };
  auto rec = [&](auto&& self, std::uint32_t e) -> Scaled {
    if (e == kFalseEdge) return Scaled{0, 0};
    if (e == kTrueEdge) return Scaled{0.5, 1};
    auto it = memo.find(e);
    if (it != memo.end()) return it->second;
    const Node nn = node_ref(edge_node(e));
    const std::uint32_t ec = e & 1u;
    const std::uint32_t lo = nn.lo ^ ec;
    const std::uint32_t hi = nn.hi ^ ec;
    const std::uint32_t lvl = level_of(e);
    Scaled cl = self(self, lo);
    cl.e += level_of(lo) - lvl - 1;
    Scaled ch = self(self, hi);
    ch.e += level_of(hi) - lvl - 1;
    const Scaled result = add(cl, ch);
    memo.emplace(e, result);
    return result;
  };

  Scaled total = rec(rec, f.index());
  // Levels above the root are free: scale by 2^level(root) (the terminal
  // acts as level == num_vars_, making the constants 0 and 2^num_vars_),
  // then rescale from the manager's universe to the caller's nvars universe.
  total.e += level_of(f.index());
  total.e += static_cast<std::int64_t>(nvars) -
             static_cast<std::int64_t>(num_vars_);
  total.e -= divide_exp;
  const double out = std::ldexp(total.m, static_cast<int>(
      std::clamp<std::int64_t>(total.e, -100000, 100000)));
  XATPG_CHECK_MSG(std::isfinite(out),
                  "sat_count overflows double (count ~ 2^" << total.e
                      << "); reduce the variable universe or divide_exp");
  return out;
}

std::vector<Tri> BddManager::pick_minterm(
    const Bdd& f, const std::vector<std::uint32_t>& vars) {
  XATPG_CHECK_SAME_MGR1(f);
  XATPG_CHECK_MSG(!f.is_false(), "cannot pick a minterm of the zero function");
  std::vector<Tri> by_var(num_vars_, Tri::DontCare);
  std::uint32_t e = f.index();
  while (edge_node(e) != 0) {
    const Node nn = node_ref(edge_node(e));
    const std::uint32_t lo = nn.lo ^ (e & 1u);
    if (lo != kFalseEdge) {
      by_var[nn.var] = Tri::Zero;
      e = lo;
    } else {
      by_var[nn.var] = Tri::One;
      e = nn.hi ^ (e & 1u);
    }
  }
  std::vector<Tri> out;
  out.reserve(vars.size());
  for (const std::uint32_t v : vars) out.push_back(by_var[v]);
  return out;
}

std::vector<std::vector<bool>> BddManager::all_minterms(
    const Bdd& f, const std::vector<std::uint32_t>& vars, std::size_t limit) {
  XATPG_CHECK_SAME_MGR1(f);
  for (std::size_t i = 1; i < vars.size(); ++i)
    XATPG_CHECK_MSG(var_to_level_[vars[i - 1]] < var_to_level_[vars[i]],
                    "vars must be strictly ascending in level");
  std::vector<std::vector<bool>> out;
  std::vector<bool> current(vars.size(), false);
  auto rec = [&](auto&& self, std::uint32_t e, std::size_t pos) -> void {
    if (e == kFalseEdge) return;
    if (pos == vars.size()) {
      XATPG_CHECK_MSG(e == kTrueEdge,
                      "all_minterms: variable list does not cover support");
      XATPG_CHECK_MSG(out.size() < limit, "all_minterms: limit exceeded");
      out.push_back(current);
      return;
    }
    const std::uint32_t edge_level = level_of_edge(e);
    XATPG_CHECK_MSG(edge_level >= var_to_level_[vars[pos]],
                    "all_minterms: variable list does not cover support");
    if (edge_level == var_to_level_[vars[pos]]) {
      const Node nn = node_ref(edge_node(e));
      const std::uint32_t ec = e & 1u;
      current[pos] = false;
      self(self, nn.lo ^ ec, pos + 1);
      current[pos] = true;
      self(self, nn.hi ^ ec, pos + 1);
    } else {  // don't-care on vars[pos]
      current[pos] = false;
      self(self, e, pos + 1);
      current[pos] = true;
      self(self, e, pos + 1);
    }
  };
  rec(rec, f.index(), 0);
  return out;
}

bool BddManager::eval(const Bdd& f, const std::vector<bool>& assignment) {
  XATPG_CHECK_SAME_MGR1(f);
  std::uint32_t e = f.index();
  while (edge_node(e) != 0) {
    const Node& nn = node_ref(edge_node(e));
    XATPG_CHECK(nn.var < assignment.size());
    e = (assignment[nn.var] ? nn.hi : nn.lo) ^ (e & 1u);
  }
  return e == kTrueEdge;
}

}  // namespace xatpg
