#include "atpg/fault_sim.hpp"

#include "sim/explicit.hpp"
#include "util/check.hpp"

namespace xatpg {

FaultSimulator::FaultSimulator(const Netlist& good, const Fault& fault,
                               const std::vector<bool>& reset_state,
                               const FaultSimOptions& options)
    : good_(&good),
      fault_(fault),
      faulty_(apply_fault(good, fault)),
      reset_values_(reset_state),
      options_(options) {
  restart();
}

void FaultSimulator::restart() {
  if (status_ == DetectStatus::Detected) return;  // sticky once proven
  status_ = DetectStatus::Undetermined;
  candidates_.clear();
  // Reset drives every (shared) signal to the good reset value; the faulty
  // circuit then relaxes freely.  No strobe is compared at reset time.
  const std::vector<bool> start =
      fault_initial_state(*good_, fault_, reset_values_);
  std::vector<bool> inputs;
  for (const SignalId in : faulty_.inputs()) inputs.push_back(start[in]);
  std::set<std::vector<bool>> settled;
  const ExploreResult result =
      explore_settling(faulty_, start, inputs, options_.k);
  if (result.exceeded_bound) {
    status_ = DetectStatus::GaveUp;  // faulty circuit does not even reset
    return;
  }
  candidates_ = result.stable_states;
  if (candidates_.size() > options_.candidate_cap)
    status_ = DetectStatus::GaveUp;
}

void FaultSimulator::settle_into(const std::vector<bool>& start,
                                 const std::vector<bool>& input_values,
                                 const std::vector<bool>* good_state,
                                 std::set<std::vector<bool>>& out) {
  const ExploreResult result = explore_settling(
      faulty_, start, map_input_vector(*good_, faulty_, input_values),
      options_.k);
  if (result.exceeded_bound) {
    status_ = DetectStatus::GaveUp;
    return;
  }
  for (const auto& candidate : result.stable_states) {
    if (good_state) {
      // Strobe: executions whose primary outputs differ from the expected
      // response have been flagged by the tester — drop them.
      bool mismatch = false;
      for (const SignalId po : good_->outputs())
        if (candidate[po] != (*good_state)[po]) {
          mismatch = true;
          break;
        }
      if (mismatch) continue;
    }
    out.insert(candidate);
  }
}

DetectStatus FaultSimulator::step(const std::vector<bool>& input_values,
                                  const std::vector<bool>& good_state) {
  if (status_ != DetectStatus::Undetermined) return status_;
  std::set<std::vector<bool>> next;
  for (const auto& candidate : candidates_) {
    settle_into(candidate, input_values, &good_state, next);
    if (status_ == DetectStatus::GaveUp) return status_;
    if (next.size() > options_.candidate_cap) {
      status_ = DetectStatus::GaveUp;
      return status_;
    }
  }
  candidates_ = std::move(next);
  if (candidates_.empty()) status_ = DetectStatus::Detected;
  return status_;
}

std::string FaultSimulator::candidates_key() const {
  std::string key;
  for (const auto& candidate : candidates_) {
    for (const bool b : candidate) key += b ? '1' : '0';
    key += '|';
  }
  return key;
}

std::vector<std::size_t> ternary_screen(
    const Netlist& netlist, const std::vector<bool>& reset_state,
    const std::vector<Fault>& faults,
    const std::vector<std::vector<bool>>& vectors) {
  XATPG_CHECK_MSG(faults.size() <= 63, "ternary screen handles <= 63 faults");
  std::vector<LaneInjection> injections;
  injections.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i)
    injections.push_back(faults[i].to_injection(1ull << (i + 1)));

  ParallelTernarySim sim(netlist, injections);
  sim.load_state(reset_state);

  std::uint64_t detected = 0;
  for (const auto& vec : vectors) {
    sim.settle(vec);
    for (const SignalId po : netlist.outputs()) {
      // Lane 0 is the fault-free circuit; a faulty lane is caught when both
      // values are definite and differ.
      const std::uint64_t good1 = sim.lanes_definite(po, true);
      const std::uint64_t good0 = sim.lanes_definite(po, false);
      if (good1 & 1ull) detected |= good0;
      if (good0 & 1ull) detected |= good1;
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (detected & (1ull << (i + 1))) out.push_back(i);
  return out;
}

}  // namespace xatpg
