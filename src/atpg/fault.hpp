// Stuck-at fault universe (§1, §5): the paper's fault model is the *input*
// stuck-at model — every gate input pin stuck at 0/1 — which subsumes the
// output stuck-at model (every signal stuck at 0/1) because each signal
// drives some pin; the tables report both universes separately and so do we.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/parallel.hpp"
#include "xatpg/types.hpp"  // Fault (public API type)

namespace xatpg {

/// All input (gate-pin) stuck-at faults: 2 per pin.
std::vector<Fault> input_stuck_faults(const Netlist& netlist);

/// All output (signal) stuck-at faults: 2 per signal.
std::vector<Fault> output_stuck_faults(const Netlist& netlist);

/// Materialize the faulty circuit: output faults replace the gate with a
/// constant; pin faults redirect the pin to a fresh constant signal appended
/// at the end (original signal ids are preserved, so states of the good and
/// faulty circuit are comparable position-wise).
Netlist apply_fault(const Netlist& netlist, const Fault& fault);

/// Initial state of apply_fault(netlist, fault) corresponding to a state of
/// the good circuit (appends the constant's value if one was added).  The
/// returned state is NOT necessarily stable — the fault may excite gates.
std::vector<bool> fault_initial_state(const Netlist& netlist,
                                      const Fault& fault,
                                      const std::vector<bool>& good_state);

/// Translate an input vector indexed by `good`'s inputs into one indexed by
/// `faulty`'s inputs (a stuck primary input disappears from the faulty
/// circuit's input list; all surviving inputs are matched by name).
std::vector<bool> map_input_vector(const Netlist& good, const Netlist& faulty,
                                   const std::vector<bool>& good_vector);

}  // namespace xatpg
