// Stuck-at fault universe (§1, §5): the paper's fault model is the *input*
// stuck-at model — every gate input pin stuck at 0/1 — which subsumes the
// output stuck-at model (every signal stuck at 0/1) because each signal
// drives some pin; the tables report both universes separately and so do we.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/parallel.hpp"

namespace xatpg {

struct Fault {
  enum class Site : std::uint8_t {
    GatePin,       ///< connection into fanin position `pin` of gate `gate`
    SignalOutput,  ///< output of gate `gate` (includes primary inputs)
  };
  Site site = Site::GatePin;
  SignalId gate = kNoSignal;
  std::size_t pin = 0;
  bool stuck_value = false;

  bool operator==(const Fault&) const = default;

  /// "pin c.1 s-a-0" / "out y s-a-1" style description.
  std::string describe(const Netlist& netlist) const;

  /// Injection spec for the 64-lane parallel ternary simulator.
  LaneInjection to_injection(std::uint64_t lanes) const;
};

/// All input (gate-pin) stuck-at faults: 2 per pin.
std::vector<Fault> input_stuck_faults(const Netlist& netlist);

/// All output (signal) stuck-at faults: 2 per signal.
std::vector<Fault> output_stuck_faults(const Netlist& netlist);

/// Materialize the faulty circuit: output faults replace the gate with a
/// constant; pin faults redirect the pin to a fresh constant signal appended
/// at the end (original signal ids are preserved, so states of the good and
/// faulty circuit are comparable position-wise).
Netlist apply_fault(const Netlist& netlist, const Fault& fault);

/// Initial state of apply_fault(netlist, fault) corresponding to a state of
/// the good circuit (appends the constant's value if one was added).  The
/// returned state is NOT necessarily stable — the fault may excite gates.
std::vector<bool> fault_initial_state(const Netlist& netlist,
                                      const Fault& fault,
                                      const std::vector<bool>& good_state);

/// Translate an input vector indexed by `good`'s inputs into one indexed by
/// `faulty`'s inputs (a stuck primary input disappears from the faulty
/// circuit's input list; all surviving inputs are matched by name).
std::vector<bool> map_input_vector(const Netlist& good, const Netlist& faulty,
                                   const std::vector<bool>& good_vector);

}  // namespace xatpg
