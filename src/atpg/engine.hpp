// The ATPG engine (§5): random TPG on the CSSG, 3-phase symbolic ATPG
// (fault activation / state justification / state differentiation), and
// cross fault simulation of every generated sequence — with per-phase
// statistics matching the paper's table columns (rnd / 3-ph / sim).
//
// Public-surface note: the plain data types this engine produces and
// consumes (AtpgOptions, Fault, TestSequence, CoveredBy, FaultOutcome,
// AtpgStats, AtpgResult) and the streaming run model (RunObserver,
// RunProgress, CancelToken) are part of the installed API and live under
// include/xatpg/; the engine itself is internal — out-of-tree consumers
// drive it through xatpg::Session.
//
// Parallel architecture: the 3-phase search is embarrassingly parallel
// across the fault list, so run() fans it out over `threads` workers.
//   * Each worker owns a private symbolic shard — a full Cssg (its own
//     BddManager + SymbolicEncoding + relations) built once per worker from
//     the shared read-only netlist and reused across run() calls.  BDD
//     managers are single-threaded by contract (bdd/bdd.hpp); sharding
//     sidesteps all symbolic-layer locking.
//   * The explicit CSSG and the netlist are shared read-only by all workers
//     (the const query path: ExplicitCssg lookups, FaultSimulator replay).
//   * Faults are distributed through a chunked MPMC work queue
//     (util/work_queue.hpp): workers claim coarse blocks of fault indices
//     with one atomic op per block, so imbalanced per-fault search cost
//     still load-balances without a contended head pointer.
//   * The merge is deterministic: every still-uncovered fault's test is
//     generated up front (each fault's search depends only on the fault, not
//     on scheduling), then outcomes are committed strictly in fault-list
//     order, and cross fault simulation of each committed sequence (the
//     paper's "sim" column) runs as a post-merge word-parallel ternary pass
//     in 64-lane batches (+ exact confirmation).  Results are therefore
//     byte-identical for any thread count, including threads=1.
//
// Streaming, cancellation, incrementality:
//   * run(faults, observer, cancel) fires RunObserver callbacks from the
//     calling thread only, checks the CancelToken between faults (and
//     between work blocks inside the parallel fan-out), and on cancellation
//     returns the deterministic partial result: the sequence list is a
//     prefix of the uncancelled run's, and every committed outcome is
//     final.
//   * Generated tests are memoized per fault across runs (each test is a
//     pure function of the fault given the circuit/options), so
//     add_faults() — which re-runs the cheap phases on the grown universe
//     and reuses every cached search — produces a result byte-identical to
//     a from-scratch run on the union universe while paying 3-phase cost
//     only for genuinely new, still-uncovered faults.  add_faults({}) after
//     a cancelled run resumes it for the same reason.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "sgraph/cssg.hpp"
#include "xatpg/options.hpp"
#include "xatpg/progress.hpp"
#include "xatpg/types.hpp"

namespace xatpg {

/// ATPG driver bound to one circuit + reset state.  The CSSG is computed
/// once and shared across fault universes (run() can be called repeatedly);
/// worker shards and memoized 3-phase searches are likewise reused by later
/// run()/add_faults() calls on the same engine.
class AtpgEngine {
 public:
  /// Rejects degenerate options loudly: throws CheckError when
  /// options.validate() fails (the Session facade reports the same failure
  /// as a typed OptionError before ever reaching this constructor).
  AtpgEngine(const Netlist& netlist, const std::vector<bool>& reset_state,
             const AtpgOptions& options = {});

  const Cssg& cssg() const { return *cssg_; }
  const ExplicitCssg& graph() const { return graph_; }
  const AtpgOptions& options() const { return options_; }

  /// Run the full flow (random TPG -> fault-parallel 3-phase ->
  /// deterministic merge with cross fault simulation) on the given fault
  /// universe, replacing any previous universe.  `observer` (optional)
  /// receives the streaming events, `cancel` (optional) stops the run
  /// cooperatively between faults — see xatpg/progress.hpp for the
  /// contract.
  AtpgResult run(const std::vector<Fault>& faults,
                 RunObserver* observer = nullptr,
                 const CancelToken* cancel = nullptr);

  /// Grow the current universe by `faults` and run the flow on the union.
  /// New faults are cross-simulated against the committed sequences before
  /// any 3-phase search; cached searches are reused, so the result is
  /// byte-identical to run(union) at a fraction of the cost.
  AtpgResult add_faults(const std::vector<Fault>& faults,
                        RunObserver* observer = nullptr,
                        const CancelToken* cancel = nullptr);

  /// The fault universe accumulated by run()/add_faults().
  const std::vector<Fault>& universe() const { return universe_; }

  /// 3-phase ATPG for a single fault; returns the test sequence (from
  /// reset) or nullopt if the search space is exhausted (fault redundant or
  /// beyond the caps).
  std::optional<TestSequence> generate_test(const Fault& fault) const;

  /// True if the a-priori classifier proves the fault undetectable: the
  /// faulted line equals the stuck value in every state any legal test can
  /// drive the circuit through (stable or transient), so the fault can
  /// never change any gate's behaviour during test.
  bool provably_redundant(const Fault& fault) const;

  /// Good-circuit states visited by a sequence (from reset); nullopt if a
  /// vector is not a valid CSSG edge.
  std::optional<std::vector<std::uint32_t>> follow(
      const TestSequence& seq) const;

 private:
  struct DiffResult {
    bool found = false;
    TestSequence sequence;
  };
  struct FaultHash {
    std::size_t operator()(const Fault& fault) const;
  };
  /// Per-worker progress counters published at fault granularity so the
  /// main thread can stream per-shard BDD statistics while workers run.
  struct ShardCounters;

  /// Phase 3 BFS.  Touches only shared read-only state (netlist, explicit
  /// graph) — safe from any worker.
  DiffResult differentiate(const Fault& fault, const TestSequence& prefix) const;
  /// 3-phase search against a specific symbolic shard (phases 1+2 run on
  /// the shard's BddManager; phase 3 on the shared explicit graph).
  std::optional<TestSequence> generate_test_on(const Cssg& shard,
                                               const Fault& fault) const;
  bool provably_redundant_on(const Cssg& shard, const Fault& fault) const;
  /// A fresh worker shard: the same Cssg the constructor builds.
  std::unique_ptr<Cssg> build_shard() const;
  /// The full deterministic flow over universe_ (shared by run/add_faults).
  AtpgResult run_universe(RunObserver* observer, const CancelToken* cancel);
  /// Fan the 3-phase search for `todo` (fault indices) out over the worker
  /// shards, memoizing each completed search in generated_cache_.  Faults
  /// skipped because `cancel` fired are left unmemoized (a later run
  /// attempts them again).  Progress snapshots stream from the calling
  /// thread between its own work blocks; `make_base` supplies a fresh
  /// run-level snapshot (elapsed time, resolved counts) per emission, and
  /// `shard_done` accumulates per-shard completed-search counts across
  /// batches so later snapshots keep reporting them.
  void generate_parallel(const std::vector<Fault>& faults,
                         const std::vector<std::size_t>& todo,
                         const CancelToken* cancel, RunObserver* observer,
                         const std::function<RunProgress()>& make_base,
                         std::vector<std::size_t>& shard_done);
  /// Post-merge cross fault simulation of one committed sequence: 64-lane
  /// ternary screen over the remaining uncovered faults, exact confirmation
  /// of every flag, exact fallback for faults with no generated test.
  /// `sims` are the long-lived per-fault exact simulators (restart()ed per
  /// sequence, as in the random phase).  `resolved` collects the indices
  /// whose outcome this call finalized (for observer events).
  void cross_simulate(const std::vector<Fault>& faults,
                      std::vector<std::unique_ptr<FaultSimulator>>& sims,
                      std::size_t committed, const TestSequence& seq,
                      const std::vector<std::uint32_t>& path, int seq_index,
                      AtpgResult& result,
                      std::vector<std::size_t>& resolved) const;

  const Netlist* netlist_;
  std::vector<bool> reset_state_;
  AtpgOptions options_;
  std::unique_ptr<Cssg> cssg_;
  ExplicitCssg graph_;
  std::uint32_t reset_id_ = 0;
  /// Lazily built per-worker shards (slot w serves pool worker w); the main
  /// thread always works on cssg_.  Reused by subsequent run() calls.
  std::vector<std::unique_ptr<Cssg>> extra_shards_;
  /// The current fault universe (run() replaces, add_faults() extends).
  std::vector<Fault> universe_;
  /// Memoized 3-phase searches: presence means the search was *completed*
  /// for that fault (value nullopt = search exhausted, fault undetected by
  /// its own test).  Never invalidated — a generated test is a pure
  /// function of (circuit, reset, options, fault).
  std::unordered_map<Fault, std::optional<TestSequence>, FaultHash>
      generated_cache_;
};

/// Tester-facing export: vectors and expected primary-output responses per
/// cycle, in a simple line format a synchronous tester can replay.
void write_test_program(std::ostream& out, const Netlist& netlist,
                        const AtpgEngine& engine,
                        const std::vector<TestSequence>& sequences);

}  // namespace xatpg
