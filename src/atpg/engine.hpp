// The ATPG engine (§5): random TPG on the CSSG, 3-phase symbolic ATPG
// (fault activation / state justification / state differentiation), and
// cross fault simulation of every generated sequence — with per-phase
// statistics matching the paper's table columns (rnd / 3-ph / sim).
//
// Public-surface note: the plain data types this engine produces and
// consumes (AtpgOptions, Fault, TestSequence, CoveredBy, FaultOutcome,
// AtpgStats, AtpgResult) and the streaming run model (RunObserver,
// RunProgress, CancelToken) are part of the installed API and live under
// include/xatpg/; the engine itself is internal — out-of-tree consumers
// drive it through xatpg::Session.
//
// Parallel architecture: the 3-phase search is embarrassingly parallel
// across the fault list, so run() fans it out over `threads` workers.
//   * The constructor builds the shared symbolic substrate (encoding +
//     CSSG relations + reachable sets) ONCE, then freezes its BddManager:
//     the node arena, unique subtables and variable order become immutable
//     and lock-free readable (the freeze is the publication point — see
//     bdd/bdd.hpp's base/delta layering).  Each worker owns a lightweight
//     *delta view* over that frozen base: substrate nodes resolve against
//     the shared arena, fault-specific nodes allocate in a private delta
//     arena, and GC runs on the delta only.  Workers therefore pay for the
//     substrate zero times instead of once each — the old private-shard
//     design multiplied the paper's peak-node accounting by the worker
//     count.  BDD managers stay single-threaded by contract (bdd/bdd.hpp);
//     only the read-only base is shared.
//   * The explicit CSSG and the netlist are shared read-only by all workers
//     (the const query path: ExplicitCssg lookups, FaultSimulator replay).
//   * Faults are distributed through a work-stealing scheduler
//     (util/work_queue.hpp): the fault batch is pre-split into coarse
//     blocks dealt out to per-worker deques; each worker drains its own
//     deque front-first and, when dry, steals whole blocks from the back of
//     a victim's deque.  Per-fault search cost is heavy-tailed (one "whale"
//     fault can cost 10000x the median), so stealing keeps the other
//     workers fed when one is pinned — without putting thieves on the
//     owner's common path (they only collide on a deque's last block).
//   * The merge is deterministic: every still-uncovered fault's test is
//     generated up front (each fault's search depends only on the fault, not
//     on scheduling or which shard ran it), then outcomes are committed
//     strictly in fault-list order, and cross fault simulation of each
//     committed sequence (the paper's "sim" column) runs as a post-merge
//     word-parallel ternary pass in 64-lane batches (+ exact confirmation).
//     Every search cutoff is deterministic too (diff_depth/diff_node_cap;
//     the wall clock is an off-by-default fallback).  Results are therefore
//     byte-identical for any thread count and any steal interleaving,
//     including threads=1.
//
// Streaming, cancellation, incrementality:
//   * run(faults, observer, cancel) fires RunObserver callbacks from the
//     calling thread only, checks the CancelToken between faults (and
//     between work blocks inside the parallel fan-out), and on cancellation
//     returns the deterministic partial result: the sequence list is a
//     prefix of the uncancelled run's, and every committed outcome is
//     final.
//   * Generated tests are memoized per fault across runs (each test is a
//     pure function of the fault given the circuit/options), so
//     add_faults() — which re-runs the cheap phases on the grown universe
//     and reuses every cached search — produces a result byte-identical to
//     a from-scratch run on the union universe while paying 3-phase cost
//     only for genuinely new, still-uncovered faults.  add_faults({}) after
//     a cancelled run resumes it for the same reason.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "sgraph/cssg.hpp"
#include "xatpg/options.hpp"
#include "xatpg/progress.hpp"
#include "xatpg/types.hpp"

namespace xatpg {

/// ATPG driver bound to one circuit + reset state.  The CSSG is computed
/// once and shared across fault universes (run() can be called repeatedly);
/// worker shards and memoized 3-phase searches are likewise reused by later
/// run()/add_faults() calls on the same engine.
class AtpgEngine {
 public:
  /// Rejects degenerate options loudly: throws CheckError when
  /// options.validate() fails (the Session facade reports the same failure
  /// as a typed OptionError before ever reaching this constructor).
  AtpgEngine(const Netlist& netlist, const std::vector<bool>& reset_state,
             const AtpgOptions& options = {});

  /// The main thread's delta view of the shared abstraction.  Queries on it
  /// (to_dot, justify, image…) allocate in the view's private delta arena;
  /// the frozen base underneath is never mutated.  Use base_cssg() to reach
  /// the frozen substrate itself (handle reads only).
  const Cssg& cssg() const { return *shard0_; }
  /// The frozen shared base (read-only; mutating queries would throw).
  const Cssg& base_cssg() const { return *cssg_; }
  const ExplicitCssg& graph() const { return graph_; }
  const AtpgOptions& options() const { return options_; }

  /// Run the full flow (random TPG -> fault-parallel 3-phase ->
  /// deterministic merge with cross fault simulation) on the given fault
  /// universe, replacing any previous universe.  `observer` (optional)
  /// receives the streaming events, `cancel` (optional) stops the run
  /// cooperatively between faults — see xatpg/progress.hpp for the
  /// contract.
  AtpgResult run(const std::vector<Fault>& faults,
                 RunObserver* observer = nullptr,
                 const CancelToken* cancel = nullptr);

  /// Grow the current universe by `faults` and run the flow on the union.
  /// New faults are cross-simulated against the committed sequences before
  /// any 3-phase search; cached searches are reused, so the result is
  /// byte-identical to run(union) at a fraction of the cost.
  AtpgResult add_faults(const std::vector<Fault>& faults,
                        RunObserver* observer = nullptr,
                        const CancelToken* cancel = nullptr);

  /// The fault universe accumulated by run()/add_faults().
  const std::vector<Fault>& universe() const { return universe_; }

  /// BDD accounting for every built symbolic shard (shard 0 = the engine's
  /// own context, then each lazily built worker shard), with faults_done /
  /// blocks_stolen from the most recent run.  Main-thread only, between
  /// runs — the same snapshot the final progress callback reports.
  std::vector<ShardBddStats> shard_bdd_stats() const;

  /// 3-phase ATPG for a single fault; returns the test sequence (from
  /// reset) or nullopt if the search space is exhausted (fault redundant or
  /// beyond the caps).
  std::optional<TestSequence> generate_test(const Fault& fault) const;

  /// True if the a-priori classifier proves the fault undetectable: the
  /// faulted line equals the stuck value in every state any legal test can
  /// drive the circuit through (stable or transient), so the fault can
  /// never change any gate's behaviour during test.
  bool provably_redundant(const Fault& fault) const;

  /// Good-circuit states visited by a sequence (from reset); nullopt if a
  /// vector is not a valid CSSG edge.
  std::optional<std::vector<std::uint32_t>> follow(
      const TestSequence& seq) const;

 private:
  struct DiffResult {
    bool found = false;
    TestSequence sequence;
    /// Some part of the space was cut off by a cap (depth, node count,
    /// simulator candidate cap, wall-clock fallback) — "not found" means
    /// "gave up", not "proved absent".
    bool truncated = false;
  };
  /// A completed 3-phase search: the test (nullopt = none found) plus
  /// whether the search was cap-truncated.  gave_up is meaningful only when
  /// sequence is empty — a found test is a found test however hard the
  /// search worked.
  struct SearchOutcome {
    std::optional<TestSequence> sequence;
    bool gave_up = false;
  };
  struct FaultHash {
    std::size_t operator()(const Fault& fault) const;
  };
  /// Per-worker progress counters published at fault granularity so the
  /// main thread can stream per-shard BDD statistics while workers run.
  struct ShardCounters;

  /// Phase 3 BFS.  Touches only shared read-only state (netlist, explicit
  /// graph) — safe from any worker.
  DiffResult differentiate(const Fault& fault, const TestSequence& prefix) const;
  /// 3-phase search against a specific symbolic shard (phases 1+2 run on
  /// the shard's BddManager; phase 3 on the shared explicit graph).
  SearchOutcome generate_test_on(const Cssg& shard, const Fault& fault) const;
  bool provably_redundant_on(const Cssg& shard, const Fault& fault) const;
  /// The full monolithic Cssg the constructor builds (and then freezes into
  /// the shared base).
  std::unique_ptr<Cssg> build_shard() const;
  /// A fresh delta view over the frozen base — what every worker gets.
  std::unique_ptr<Cssg> build_delta() const;
  /// The full deterministic flow over universe_ (shared by run/add_faults).
  AtpgResult run_universe(RunObserver* observer, const CancelToken* cancel);
  /// Fan the 3-phase search for `todo` (fault indices) out over the worker
  /// shards, memoizing each completed search in generated_cache_.  Faults
  /// skipped because `cancel` fired are left unmemoized (a later run
  /// attempts them again).  Progress snapshots stream from the calling
  /// thread between its own work blocks; `make_base` supplies a fresh
  /// run-level snapshot (elapsed time, resolved counts) per emission, and
  /// `shard_done` accumulates per-shard completed-search counts across
  /// batches so later snapshots keep reporting them.
  void generate_parallel(const std::vector<Fault>& faults,
                         const std::vector<std::size_t>& todo,
                         const CancelToken* cancel, RunObserver* observer,
                         const std::function<RunProgress()>& make_base);
  /// Post-merge cross fault simulation of one committed sequence: 64-lane
  /// ternary screen over the remaining uncovered faults, exact confirmation
  /// of every flag, exact fallback for faults with no generated test.
  /// `sims` are the long-lived per-fault exact simulators (restart()ed per
  /// sequence, as in the random phase).  `resolved` collects the indices
  /// whose outcome this call finalized (for observer events).
  void cross_simulate(const std::vector<Fault>& faults,
                      std::vector<std::unique_ptr<FaultSimulator>>& sims,
                      std::size_t committed, const TestSequence& seq,
                      const std::vector<std::uint32_t>& path, int seq_index,
                      AtpgResult& result,
                      std::vector<std::size_t>& resolved) const;

  const Netlist* netlist_;
  std::vector<bool> reset_state_;
  AtpgOptions options_;
  /// The shared symbolic substrate: built once by the constructor, then
  /// frozen (immutable, lock-free readable).  Must outlive every delta view.
  std::unique_ptr<Cssg> cssg_;
  /// The main thread's delta view over cssg_ (worker slot 0).
  std::unique_ptr<Cssg> shard0_;
  /// Frozen-base arena size and sifting-pass count, captured at freeze time
  /// so worker-snapshot composition never touches the base manager from
  /// another thread.  Base reorders are attributed to shard 0 (once), so
  /// summing shard reorders across shards counts the base exactly once.
  std::size_t base_node_count_ = 0;
  std::size_t base_reorder_count_ = 0;
  ExplicitCssg graph_;
  std::uint32_t reset_id_ = 0;
  /// Lazily built per-worker delta views (slot w serves pool worker w); the
  /// main thread always works on shard0_.  Reused by subsequent run() calls.
  std::vector<std::unique_ptr<Cssg>> extra_shards_;
  /// The current fault universe (run() replaces, add_faults() extends).
  std::vector<Fault> universe_;
  /// Per-shard 3-phase searches completed / blocks stolen during the most
  /// recent run (index = worker slot).  Reset at the start of run_universe,
  /// accumulated across its generation batches, reported by progress
  /// snapshots and shard_bdd_stats().
  std::vector<std::size_t> shard_done_;
  std::vector<std::size_t> shard_steals_;
  /// Memoized 3-phase searches: presence means the search was *completed*
  /// for that fault (SearchOutcome::sequence nullopt = search exhausted or
  /// gave up, fault undetected by its own test).  Never invalidated — a
  /// search outcome is a pure function of (circuit, reset, options, fault).
  std::unordered_map<Fault, SearchOutcome, FaultHash> generated_cache_;
};

/// Tester-facing export: vectors and expected primary-output responses per
/// cycle, in a simple line format a synchronous tester can replay.
void write_test_program(std::ostream& out, const Netlist& netlist,
                        const AtpgEngine& engine,
                        const std::vector<TestSequence>& sequences);

}  // namespace xatpg
