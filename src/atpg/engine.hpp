// The ATPG engine (§5): random TPG on the CSSG, 3-phase symbolic ATPG
// (fault activation / state justification / state differentiation), and
// cross fault simulation of every generated sequence — with per-phase
// statistics matching the paper's table columns (rnd / 3-ph / sim).
//
// Parallel architecture: the 3-phase search is embarrassingly parallel
// across the fault list, so run() fans it out over `threads` workers.
//   * Each worker owns a private symbolic shard — a full Cssg (its own
//     BddManager + SymbolicEncoding + relations) built once per worker from
//     the shared read-only netlist and reused across run() calls.  BDD
//     managers are single-threaded by contract (bdd/bdd.hpp); sharding
//     sidesteps all symbolic-layer locking.
//   * The explicit CSSG and the netlist are shared read-only by all workers
//     (the const query path: ExplicitCssg lookups, FaultSimulator replay).
//   * Faults are distributed through a chunked MPMC work queue
//     (util/work_queue.hpp): workers claim coarse blocks of fault indices
//     with one atomic op per block, so imbalanced per-fault search cost
//     still load-balances without a contended head pointer.
//   * The merge is deterministic: every still-uncovered fault's test is
//     generated up front (each fault's search depends only on the fault, not
//     on scheduling), then outcomes are committed strictly in fault-list
//     order, and cross fault simulation of each committed sequence (the
//     paper's "sim" column) runs as a post-merge word-parallel ternary pass
//     in 64-lane batches (+ exact confirmation).  Results are therefore
//     byte-identical for any thread count, including threads=1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "sgraph/cssg.hpp"

namespace xatpg {

struct AtpgOptions {
  std::size_t k = 24;                    ///< settle bound (TCR_k)
  VarOrder order = VarOrder::Interleaved;
  /// Dynamic BDD reordering for the symbolic shards.  Every worker shard
  /// (and the engine's own context) gets the same policy and reorders
  /// independently whenever its own tables cross the trigger; results stay
  /// byte-identical across thread counts and orders because every symbolic
  /// query the engine consumes is canonicalized to be order-independent.
  ReorderPolicy reorder{};
  std::size_t random_budget = 512;       ///< vectors spent in random TPG
  std::size_t random_walk_len = 48;      ///< restart interval (reset pulses)
  std::uint64_t seed = 1;
  std::size_t diff_depth = 16;           ///< differentiation BFS depth
  std::size_t diff_node_cap = 20000;     ///< differentiation BFS nodes
  /// Wall-clock budget per fault for the 3-phase search (the classic ATPG
  /// backtrack limit, in time units): exceeded => fault left undetected.
  /// NOTE: this is the one nondeterministic cap — under heavy load a search
  /// can time out that otherwise would not.  The deterministic caps
  /// (diff_depth / diff_node_cap) bind long before it on every shipped
  /// benchmark; raise it when exercising the cross-thread determinism
  /// guarantee under slow sanitizers.
  double per_fault_seconds = 2.0;
  FaultSimOptions sim;
  /// Phase 1+2 enabled (ablation: false forces pure differentiation BFS
  /// from reset for every fault).
  bool use_activation = true;
  /// A-priori undetectable-fault classification (§6's proposed
  /// improvement): before searching, prove a fault redundant when its
  /// faulted line never carries the opposite of the stuck value in *any*
  /// state a legal test session can pass through.  Sound; skips the
  /// 3-phase search for proven faults.
  bool classify_undetectable = false;
  /// Worker threads for the fault-parallel 3-phase search.  1 = run on the
  /// engine's own symbolic context only; 0 = one worker per hardware
  /// thread.  Outcomes and sequences are byte-identical for every value.
  std::size_t threads = 1;
};

/// One synchronous test: input vectors applied from reset, one per test
/// cycle.
struct TestSequence {
  std::vector<std::vector<bool>> vectors;

  bool operator==(const TestSequence&) const = default;
};

enum class CoveredBy : std::uint8_t {
  None,        ///< undetected (possibly redundant)
  Random,      ///< random TPG (the paper's "rnd" column)
  ThreePhase,  ///< 3-phase symbolic ATPG ("3-ph")
  FaultSim,    ///< detected while simulating another fault's test ("sim")
};

struct FaultOutcome {
  Fault fault;
  CoveredBy covered_by = CoveredBy::None;
  int sequence_index = -1;  ///< index into AtpgResult::sequences
  /// Proven undetectable by the a-priori classifier (covered_by == None).
  bool proven_redundant = false;

  bool operator==(const FaultOutcome&) const = default;
};

struct AtpgStats {
  std::size_t total_faults = 0;
  std::size_t covered = 0;
  std::size_t by_random = 0;
  std::size_t by_three_phase = 0;
  std::size_t by_fault_sim = 0;
  std::size_t undetected = 0;
  std::size_t proven_redundant = 0;
  double seconds = 0;
  double random_seconds = 0;
  double three_phase_seconds = 0;

  double coverage() const {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(covered) / static_cast<double>(total_faults);
  }
};

struct AtpgResult {
  std::vector<FaultOutcome> outcomes;
  std::vector<TestSequence> sequences;
  AtpgStats stats;
};

/// ATPG driver bound to one circuit + reset state.  The CSSG is computed
/// once and shared across fault universes (run() can be called repeatedly);
/// worker shards are likewise built once per worker slot and reused by
/// later run() calls on the same engine.
class AtpgEngine {
 public:
  AtpgEngine(const Netlist& netlist, const std::vector<bool>& reset_state,
             const AtpgOptions& options = {});

  const Cssg& cssg() const { return *cssg_; }
  const ExplicitCssg& graph() const { return graph_; }
  const AtpgOptions& options() const { return options_; }

  /// Run the full flow (random TPG -> fault-parallel 3-phase ->
  /// deterministic merge with cross fault simulation) on the given fault
  /// universe.
  AtpgResult run(const std::vector<Fault>& faults);

  /// 3-phase ATPG for a single fault; returns the test sequence (from
  /// reset) or nullopt if the search space is exhausted (fault redundant or
  /// beyond the caps).
  std::optional<TestSequence> generate_test(const Fault& fault) const;

  /// True if the a-priori classifier proves the fault undetectable: the
  /// faulted line equals the stuck value in every state any legal test can
  /// drive the circuit through (stable or transient), so the fault can
  /// never change any gate's behaviour during test.
  bool provably_redundant(const Fault& fault) const;

  /// Good-circuit states visited by a sequence (from reset); nullopt if a
  /// vector is not a valid CSSG edge.
  std::optional<std::vector<std::uint32_t>> follow(
      const TestSequence& seq) const;

 private:
  struct DiffResult {
    bool found = false;
    TestSequence sequence;
  };
  /// Phase 3 BFS.  Touches only shared read-only state (netlist, explicit
  /// graph) — safe from any worker.
  DiffResult differentiate(const Fault& fault, const TestSequence& prefix) const;
  /// 3-phase search against a specific symbolic shard (phases 1+2 run on
  /// the shard's BddManager; phase 3 on the shared explicit graph).
  std::optional<TestSequence> generate_test_on(const Cssg& shard,
                                               const Fault& fault) const;
  bool provably_redundant_on(const Cssg& shard, const Fault& fault) const;
  /// A fresh worker shard: the same Cssg the constructor builds.
  std::unique_ptr<Cssg> build_shard() const;
  /// Fan the 3-phase search for `todo` (fault indices) out over the worker
  /// shards; fills `generated` slots.
  void generate_parallel(const std::vector<Fault>& faults,
                         const std::vector<std::size_t>& todo,
                         std::vector<std::optional<TestSequence>>& generated);
  /// Post-merge cross fault simulation of one committed sequence: 64-lane
  /// ternary screen over the remaining uncovered faults, exact confirmation
  /// of every flag, exact fallback for faults with no generated test.
  /// `sims` are the long-lived per-fault exact simulators (restart()ed per
  /// sequence, as in the random phase).
  void cross_simulate(const std::vector<Fault>& faults,
                      const std::vector<std::optional<TestSequence>>& generated,
                      std::vector<std::unique_ptr<FaultSimulator>>& sims,
                      std::size_t committed, const TestSequence& seq,
                      const std::vector<std::uint32_t>& path, int seq_index,
                      AtpgResult& result) const;

  const Netlist* netlist_;
  std::vector<bool> reset_state_;
  AtpgOptions options_;
  std::unique_ptr<Cssg> cssg_;
  ExplicitCssg graph_;
  std::uint32_t reset_id_ = 0;
  /// Lazily built per-worker shards (slot w serves pool worker w); the main
  /// thread always works on cssg_.  Reused by subsequent run() calls.
  std::vector<std::unique_ptr<Cssg>> extra_shards_;
};

/// Tester-facing export: vectors and expected primary-output responses per
/// cycle, in a simple line format a synchronous tester can replay.
void write_test_program(std::ostream& out, const Netlist& netlist,
                        const AtpgEngine& engine,
                        const std::vector<TestSequence>& sequences);

}  // namespace xatpg
