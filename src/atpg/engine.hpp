// The ATPG engine (§5): random TPG on the CSSG, 3-phase symbolic ATPG
// (fault activation / state justification / state differentiation), and
// cross fault simulation of every generated sequence — with per-phase
// statistics matching the paper's table columns (rnd / 3-ph / sim).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "sgraph/cssg.hpp"

namespace xatpg {

struct AtpgOptions {
  std::size_t k = 24;                    ///< settle bound (TCR_k)
  VarOrder order = VarOrder::Interleaved;
  std::size_t random_budget = 512;       ///< vectors spent in random TPG
  std::size_t random_walk_len = 48;      ///< restart interval (reset pulses)
  std::uint64_t seed = 1;
  std::size_t diff_depth = 16;           ///< differentiation BFS depth
  std::size_t diff_node_cap = 20000;     ///< differentiation BFS nodes
  /// Wall-clock budget per fault for the 3-phase search (the classic ATPG
  /// backtrack limit, in time units): exceeded => fault left undetected.
  double per_fault_seconds = 2.0;
  FaultSimOptions sim;
  /// Phase 1+2 enabled (ablation: false forces pure differentiation BFS
  /// from reset for every fault).
  bool use_activation = true;
  /// A-priori undetectable-fault classification (§6's proposed
  /// improvement): before searching, prove a fault redundant when its
  /// faulted line never carries the opposite of the stuck value in *any*
  /// state a legal test session can pass through.  Sound; skips the
  /// 3-phase search for proven faults.
  bool classify_undetectable = false;
};

/// One synchronous test: input vectors applied from reset, one per test
/// cycle.
struct TestSequence {
  std::vector<std::vector<bool>> vectors;
};

enum class CoveredBy : std::uint8_t {
  None,        ///< undetected (possibly redundant)
  Random,      ///< random TPG (the paper's "rnd" column)
  ThreePhase,  ///< 3-phase symbolic ATPG ("3-ph")
  FaultSim,    ///< detected while simulating another fault's test ("sim")
};

struct FaultOutcome {
  Fault fault;
  CoveredBy covered_by = CoveredBy::None;
  int sequence_index = -1;  ///< index into AtpgResult::sequences
  /// Proven undetectable by the a-priori classifier (covered_by == None).
  bool proven_redundant = false;
};

struct AtpgStats {
  std::size_t total_faults = 0;
  std::size_t covered = 0;
  std::size_t by_random = 0;
  std::size_t by_three_phase = 0;
  std::size_t by_fault_sim = 0;
  std::size_t undetected = 0;
  std::size_t proven_redundant = 0;
  double seconds = 0;
  double random_seconds = 0;
  double three_phase_seconds = 0;

  double coverage() const {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(covered) / static_cast<double>(total_faults);
  }
};

struct AtpgResult {
  std::vector<FaultOutcome> outcomes;
  std::vector<TestSequence> sequences;
  AtpgStats stats;
};

/// ATPG driver bound to one circuit + reset state.  The CSSG is computed
/// once and shared across fault universes (run() can be called repeatedly).
class AtpgEngine {
 public:
  AtpgEngine(const Netlist& netlist, const std::vector<bool>& reset_state,
             const AtpgOptions& options = {});

  const Cssg& cssg() const { return *cssg_; }
  const ExplicitCssg& graph() const { return graph_; }
  const AtpgOptions& options() const { return options_; }

  /// Run the full flow (random TPG -> 3-phase -> fault simulation) on the
  /// given fault universe.
  AtpgResult run(const std::vector<Fault>& faults);

  /// 3-phase ATPG for a single fault; returns the test sequence (from
  /// reset) or nullopt if the search space is exhausted (fault redundant or
  /// beyond the caps).
  std::optional<TestSequence> generate_test(const Fault& fault);

  /// True if the a-priori classifier proves the fault undetectable: the
  /// faulted line equals the stuck value in every state any legal test can
  /// drive the circuit through (stable or transient), so the fault can
  /// never change any gate's behaviour during test.
  bool provably_redundant(const Fault& fault);

  /// Good-circuit states visited by a sequence (from reset); nullopt if a
  /// vector is not a valid CSSG edge.
  std::optional<std::vector<std::uint32_t>> follow(
      const TestSequence& seq) const;

 private:
  struct DiffResult {
    bool found = false;
    TestSequence sequence;
  };
  DiffResult differentiate(const Fault& fault, const TestSequence& prefix);

  const Netlist* netlist_;
  std::vector<bool> reset_state_;
  AtpgOptions options_;
  std::unique_ptr<Cssg> cssg_;
  ExplicitCssg graph_;
  std::uint32_t reset_id_ = 0;
};

/// Tester-facing export: vectors and expected primary-output responses per
/// cycle, in a simple line format a synchronous tester can replay.
void write_test_program(std::ostream& out, const Netlist& netlist,
                        const AtpgEngine& engine,
                        const std::vector<TestSequence>& sequences);

}  // namespace xatpg
