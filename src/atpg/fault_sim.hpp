// Fault detection under non-deterministic faulty behaviour (§5.2–§5.3).
//
// A test sequence guarantees detection of a fault only if *every* possible
// execution of the faulty circuit mismatches the fault-free output response
// at some strobe — the paper's Figure 3/4 discussion: corruption that shows
// only on some delay assignments does not shorten or conclude the test.
//
// FaultSimulator tracks the set of faulty-circuit states that are still
// consistent with the fault-free responses observed so far:
//   * per test cycle, each candidate is settled exactly (all interleavings,
//     bounded by k) on the materialized faulty netlist;
//   * outcomes that differ from the good circuit at a primary output strobe
//     correspond to executions on which the tester already flagged the
//     fault — they leave the consistent set;
//   * outcomes matching the good response stay;
//   * a trajectory that fails to settle within k (faulty oscillation) can
//     never be *proven* to mismatch, so it poisons the sequence
//     conservatively.
// The fault is detected exactly when the consistent set becomes empty.
//
// This is the exact-race strengthening of the paper's ternary detector: the
// two agree when ternary resolves, and the exact detector additionally
// credits detections ternary reports as Φ.  TernaryFaultScreen below is the
// word-parallel ternary pass the paper uses for cheap screening; it is
// sound (definite mismatch => every execution mismatches) but incomplete.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "atpg/fault.hpp"
#include "netlist/netlist.hpp"
#include "xatpg/options.hpp"  // FaultSimOptions (public API type)

namespace xatpg {

enum class DetectStatus : std::uint8_t {
  Undetermined,  ///< some faulty execution is still consistent
  Detected,      ///< every faulty execution has mismatched a strobe
  GaveUp,        ///< candidate explosion or unsettled faulty trajectory
};

// FaultSimOptions (the simulator caps) is a public API type — see
// xatpg/options.hpp.

/// Exact consistent-set simulator for one fault.
class FaultSimulator {
 public:
  /// `reset_state` is the good circuit's (stable) reset state; the faulty
  /// circuit is reset to the same values and relaxed.
  FaultSimulator(const Netlist& good, const Fault& fault,
                 const std::vector<bool>& reset_state,
                 const FaultSimOptions& options = {});

  DetectStatus status() const { return status_; }
  const Fault& fault() const { return fault_; }
  std::size_t num_candidates() const { return candidates_.size(); }

  /// Apply one test vector.  `good_state` is the good circuit's stable
  /// state after this cycle (its PO values are the expected responses).
  DetectStatus step(const std::vector<bool>& input_values,
                    const std::vector<bool>& good_state);

  /// Restart from reset (new test sequence); keeps Detected sticky.
  void restart();

  /// Cheap snapshot/rollback for the differentiation BFS.
  struct Snapshot {
    std::set<std::vector<bool>> candidates;
    DetectStatus status;
  };
  Snapshot snapshot() const { return {candidates_, status_}; }
  void restore(const Snapshot& snap) {
    candidates_ = snap.candidates;
    status_ = snap.status;
  }

  /// Canonical serialization of the candidate set (BFS visited keys).
  std::string candidates_key() const;

 private:
  void settle_into(const std::vector<bool>& start,
                   const std::vector<bool>& input_values,
                   const std::vector<bool>* good_state,
                   std::set<std::vector<bool>>& out);

  const Netlist* good_;
  Fault fault_;
  Netlist faulty_;
  std::vector<bool> reset_values_;
  FaultSimOptions options_;
  std::set<std::vector<bool>> candidates_;
  DetectStatus status_ = DetectStatus::Undetermined;
};

/// Word-parallel ternary screen: simulate up to 63 faults against the good
/// circuit (lane 0) along a vector sequence; returns the faults *provably*
/// detected by ternary analysis.  Sound but conservative (§5.4).
std::vector<std::size_t> ternary_screen(
    const Netlist& netlist, const std::vector<bool>& reset_state,
    const std::vector<Fault>& faults,
    const std::vector<std::vector<bool>>& vectors);

}  // namespace xatpg
