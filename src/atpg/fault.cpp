#include "atpg/fault.hpp"

#include <sstream>

#include "util/check.hpp"

namespace xatpg {

std::string Fault::describe(const Netlist& netlist) const {
  std::ostringstream os;
  if (site == Site::GatePin) {
    const Gate& g = netlist.gate(gate);
    os << "pin " << g.name << "." << pin << " ("
       << netlist.signal_name(g.fanins[pin]) << ") s-a-" << (stuck_value ? 1 : 0);
  } else {
    os << "out " << netlist.signal_name(gate) << " s-a-" << (stuck_value ? 1 : 0);
  }
  return os.str();
}

LaneInjection Fault::to_injection(std::uint64_t lanes) const {
  LaneInjection inj;
  inj.site = site == Site::GatePin ? LaneInjection::Site::GatePin
                                   : LaneInjection::Site::SignalOutput;
  inj.gate = gate;
  inj.pin = pin;
  inj.stuck_value = stuck_value;
  inj.lanes = lanes;
  return inj;
}

std::vector<Fault> input_stuck_faults(const Netlist& netlist) {
  std::vector<Fault> out;
  for (SignalId s = 0; s < netlist.num_signals(); ++s)
    for (std::size_t pin = 0; pin < netlist.gate(s).fanins.size(); ++pin)
      for (const bool v : {false, true})
        out.push_back(Fault{Fault::Site::GatePin, s, pin, v});
  return out;
}

std::vector<Fault> output_stuck_faults(const Netlist& netlist) {
  std::vector<Fault> out;
  for (SignalId s = 0; s < netlist.num_signals(); ++s)
    for (const bool v : {false, true})
      out.push_back(Fault{Fault::Site::SignalOutput, s, 0, v});
  return out;
}

namespace {
/// Add a constant-function SOP gate (empty cover = 0; single empty cube = 1).
SignalId add_const_gate(Netlist& netlist, const std::string& name, bool value) {
  Cover cover;
  if (value) cover.push_back(Cube{});
  return netlist.add_sop(name, {}, std::move(cover));
}
}  // namespace

Netlist apply_fault(const Netlist& netlist, const Fault& fault) {
  XATPG_CHECK(fault.gate < netlist.num_signals());
  Netlist faulty(netlist.name() + "#faulty");

  // Recreate signals in the same order so ids line up.
  for (SignalId s = 0; s < netlist.num_signals(); ++s)
    faulty.declare_signal(netlist.signal_name(s));

  for (SignalId s = 0; s < netlist.num_signals(); ++s) {
    const Gate& g = netlist.gate(s);
    if (fault.site == Fault::Site::SignalOutput && fault.gate == s) {
      // The signal is tied to a constant regardless of the original gate
      // (for a primary input this models the pad stuck).
      Cover cover;
      if (fault.stuck_value) cover.push_back(Cube{});
      faulty.add_sop(g.name, {}, std::move(cover));
      continue;
    }
    switch (g.type) {
      case GateType::Input:
        faulty.add_input(g.name);
        break;
      case GateType::Sop:
        faulty.add_sop(g.name, g.fanins, g.cover);
        break;
      case GateType::Gc:
        faulty.add_gc(g.name, g.fanins, g.cover, g.reset_cover);
        break;
      default:
        faulty.add_gate(g.type, g.name, g.fanins);
        break;
    }
  }
  for (const SignalId po : netlist.outputs())
    faulty.set_output(netlist.signal_name(po));

  if (fault.site == Fault::Site::GatePin) {
    XATPG_CHECK(fault.pin < netlist.gate(fault.gate).fanins.size());
    const SignalId cst =
        add_const_gate(faulty, "#stuck", fault.stuck_value);
    // Redirect the faulted pin.  Gate vectors are private; rebuild through
    // the public API is clumsy, so Netlist grants a dedicated mutator.
    faulty.redirect_pin(fault.gate, fault.pin, cst);
  }
  faulty.check_invariants();
  return faulty;
}

std::vector<bool> map_input_vector(const Netlist& good, const Netlist& faulty,
                                   const std::vector<bool>& good_vector) {
  XATPG_CHECK(good_vector.size() == good.inputs().size());
  std::vector<bool> out;
  out.reserve(faulty.inputs().size());
  for (const SignalId fin : faulty.inputs()) {
    const std::string& name = faulty.signal_name(fin);
    bool found = false;
    for (std::size_t i = 0; i < good.inputs().size(); ++i) {
      if (good.signal_name(good.inputs()[i]) == name) {
        out.push_back(good_vector[i]);
        found = true;
        break;
      }
    }
    XATPG_CHECK_MSG(found, "faulty input '" << name << "' unknown to good circuit");
  }
  return out;
}

std::vector<bool> fault_initial_state(const Netlist& /*netlist*/,
                                      const Fault& fault,
                                      const std::vector<bool>& good_state) {
  std::vector<bool> state = good_state;
  if (fault.site == Fault::Site::GatePin) {
    state.push_back(fault.stuck_value);  // the appended constant signal
  } else {
    state[fault.gate] = fault.stuck_value;
  }
  return state;
}

}  // namespace xatpg
