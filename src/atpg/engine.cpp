#include "atpg/engine.hpp"

#include <deque>
#include <ostream>
#include <unordered_set>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace xatpg {

AtpgEngine::AtpgEngine(const Netlist& netlist,
                       const std::vector<bool>& reset_state,
                       const AtpgOptions& options)
    : netlist_(&netlist), reset_state_(reset_state), options_(options) {
  CssgOptions cssg_options;
  cssg_options.k = options.k;
  cssg_options.order = options.order;
  cssg_ = std::make_unique<Cssg>(
      netlist, std::vector<std::vector<bool>>{reset_state}, cssg_options);
  graph_ = cssg_->extract_explicit();
  const auto reset_id = graph_.find(reset_state);
  XATPG_CHECK(reset_id.has_value());
  reset_id_ = *reset_id;
}

std::optional<std::vector<std::uint32_t>> AtpgEngine::follow(
    const TestSequence& seq) const {
  std::vector<std::uint32_t> path{reset_id_};
  for (const auto& vec : seq.vectors) {
    bool advanced = false;
    for (const auto& edge : graph_.edges[path.back()]) {
      if (edge.pattern == vec) {
        path.push_back(edge.to);
        advanced = true;
        break;
      }
    }
    if (!advanced) return std::nullopt;
  }
  return path;
}

// ---------------------------------------------------------------------------
// 3-phase ATPG
// ---------------------------------------------------------------------------

AtpgEngine::DiffResult AtpgEngine::differentiate(const Fault& fault,
                                                 const TestSequence& prefix) {
  DiffResult result;

  // Replay the (justification) prefix on the faulty circuit.
  FaultSimulator sim(*netlist_, fault, reset_state_, options_.sim);
  if (sim.status() == DetectStatus::GaveUp) return result;
  const auto path = follow(prefix);
  if (!path) return result;
  TestSequence applied;
  for (std::size_t i = 0; i < prefix.vectors.size(); ++i) {
    applied.vectors.push_back(prefix.vectors[i]);
    const DetectStatus status =
        sim.step(prefix.vectors[i], graph_.states[(*path)[i + 1]]);
    if (status == DetectStatus::Detected) {
      // Corruption surfaced during justification — in all terminal states,
      // so the shortened sequence is already a test (paper, Fig. 3a).
      result.found = true;
      result.sequence = applied;
      return result;
    }
    if (status == DetectStatus::GaveUp) return result;
  }

  // Phase 3: breadth-first search over valid vectors for the shortest
  // extension that makes every faulty execution observable.
  struct Node {
    std::uint32_t good_id;
    FaultSimulator::Snapshot sim_state;
    std::vector<std::vector<bool>> suffix;
  };
  std::deque<Node> queue;
  std::unordered_set<std::string> visited;
  const auto key_of = [](std::uint32_t good_id, const std::string& cand_key) {
    return std::to_string(good_id) + "#" + cand_key;
  };
  queue.push_back(Node{path->back(), sim.snapshot(), {}});
  visited.insert(key_of(path->back(), sim.candidates_key()));

  std::size_t expanded = 0;
  Timer budget_timer;
  while (!queue.empty()) {
    const Node node = std::move(queue.front());
    queue.pop_front();
    if (node.suffix.size() >= options_.diff_depth) continue;
    if (budget_timer.seconds() > options_.per_fault_seconds) return result;
    for (const auto& edge : graph_.edges[node.good_id]) {
      if (++expanded > options_.diff_node_cap) return result;
      sim.restore(node.sim_state);
      const DetectStatus status =
          sim.step(edge.pattern, graph_.states[edge.to]);
      if (status == DetectStatus::GaveUp) continue;
      auto suffix = node.suffix;
      suffix.push_back(edge.pattern);
      if (status == DetectStatus::Detected) {
        result.found = true;
        result.sequence = applied;
        for (auto& vec : suffix) result.sequence.vectors.push_back(vec);
        return result;
      }
      const std::string key = key_of(edge.to, sim.candidates_key());
      if (visited.insert(key).second)
        queue.push_back(Node{edge.to, sim.snapshot(), std::move(suffix)});
    }
  }
  return result;
}

bool AtpgEngine::provably_redundant(const Fault& fault) {
  SymbolicEncoding& enc = cssg_->encoding();
  const SignalId src = fault.site == Fault::Site::GatePin
                           ? netlist_->gate(fault.gate).fanins[fault.pin]
                           : fault.gate;
  const Bdd lit = enc.cur(src);
  const Bdd differs = fault.stuck_value ? !lit : lit;
  // The line never differs from the stuck value in any test-mode-reachable
  // state => the faulty circuit is trajectory-equivalent to the good one
  // (inductively: identical states produce identical successor sets).
  return (cssg_->test_mode_reachable() & differs).is_false();
}

std::optional<TestSequence> AtpgEngine::generate_test(const Fault& fault) {
  // Phase 1 — fault activation (§5.1): stable, valid-vector-reachable
  // states in which the faulted line carries the opposite of its stuck
  // value.
  TestSequence prefix;
  bool have_prefix = false;
  if (options_.use_activation) {
    SymbolicEncoding& enc = cssg_->encoding();
    const SignalId src = fault.site == Fault::Site::GatePin
                             ? netlist_->gate(fault.gate).fanins[fault.pin]
                             : fault.gate;
    const Bdd lit = enc.cur(src);
    const Bdd excited = fault.stuck_value ? !lit : lit;
    const Bdd activation = excited & cssg_->cssg_reachable();
    if (!activation.is_false()) {
      // Phase 2 — state justification via the onion rings (§5.2).
      const auto just = cssg_->justify(activation);
      if (just) {
        prefix.vectors = just->vectors;
        have_prefix = true;
      }
    }
    // Faults with no stable excitation state go directly to phase 3
    // (§5.1's "left directly to the last phase").
  }

  if (have_prefix) {
    const DiffResult with_prefix = differentiate(fault, prefix);
    if (with_prefix.found) return with_prefix.sequence;
  }
  // Fall back to a full differentiation search from reset: complete within
  // the caps, subsumes any choice of activation state.
  const DiffResult from_reset = differentiate(fault, TestSequence{});
  if (from_reset.found) return from_reset.sequence;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Full flow
// ---------------------------------------------------------------------------

AtpgResult AtpgEngine::run(const std::vector<Fault>& faults) {
  Timer total_timer;
  AtpgResult result;
  result.outcomes.reserve(faults.size());
  for (const Fault& f : faults) result.outcomes.push_back(FaultOutcome{f});
  result.stats.total_faults = faults.size();

  // Long-lived exact simulators, one per fault.
  std::vector<std::unique_ptr<FaultSimulator>> sims;
  sims.reserve(faults.size());
  for (const Fault& f : faults)
    sims.push_back(std::make_unique<FaultSimulator>(*netlist_, f,
                                                    reset_state_, options_.sim));

  // --- Random TPG (§5.4) ----------------------------------------------------
  Timer random_timer;
  Rng rng(options_.seed);
  std::size_t budget = options_.random_budget;
  while (budget > 0) {
    // A fresh walk models a reset pulse followed by random valid vectors.
    // A circuit whose reset state has no valid vector at all (every pattern
    // races — it happens on heavily hazardous bounded-delay circuits)
    // cannot be random-tested.
    if (graph_.edges[reset_id_].empty()) break;
    for (auto& sim : sims) sim->restart();
    TestSequence walk;
    std::uint32_t good_id = reset_id_;
    bool detected_any = false;
    for (std::size_t step = 0; step < options_.random_walk_len && budget > 0;
         ++step) {
      const auto& edges = graph_.edges[good_id];
      if (edges.empty()) break;
      const auto& edge = edges[rng.below(edges.size())];
      --budget;
      walk.vectors.push_back(edge.pattern);
      const auto& good_state = graph_.states[edge.to];
      for (std::size_t i = 0; i < sims.size(); ++i) {
        if (result.outcomes[i].covered_by != CoveredBy::None) continue;
        if (sims[i]->status() != DetectStatus::Undetermined) continue;
        if (sims[i]->step(edge.pattern, good_state) == DetectStatus::Detected) {
          result.outcomes[i].covered_by = CoveredBy::Random;
          result.outcomes[i].sequence_index =
              static_cast<int>(result.sequences.size());
          ++result.stats.by_random;
          detected_any = true;
        }
      }
      good_id = edge.to;
    }
    if (detected_any) result.sequences.push_back(walk);
    // Stop early once everything is covered.
    if (result.stats.by_random == faults.size()) break;
  }
  result.stats.random_seconds = random_timer.seconds();

  // --- a-priori undetectable-fault classification (optional, §6) ------------
  if (options_.classify_undetectable) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (result.outcomes[i].covered_by != CoveredBy::None) continue;
      if (provably_redundant(faults[i])) {
        result.outcomes[i].proven_redundant = true;
        ++result.stats.proven_redundant;
      }
    }
  }

  // --- 3-phase ATPG + fault simulation (§5.1–§5.4) ---------------------------
  Timer three_phase_timer;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (result.outcomes[i].covered_by != CoveredBy::None) continue;
    if (result.outcomes[i].proven_redundant) continue;
    const auto test = generate_test(faults[i]);
    if (!test) continue;  // undetected (redundant or beyond caps)
    result.outcomes[i].covered_by = CoveredBy::ThreePhase;
    result.outcomes[i].sequence_index =
        static_cast<int>(result.sequences.size());
    ++result.stats.by_three_phase;

    // Fault-simulate the new sequence on every remaining fault.
    const auto path = follow(*test);
    XATPG_CHECK(path.has_value());
    for (std::size_t j = 0; j < faults.size(); ++j) {
      if (j == i || result.outcomes[j].covered_by != CoveredBy::None) continue;
      sims[j]->restart();
      if (sims[j]->status() != DetectStatus::Undetermined) continue;
      for (std::size_t t = 0; t < test->vectors.size(); ++t) {
        const DetectStatus status =
            sims[j]->step(test->vectors[t], graph_.states[(*path)[t + 1]]);
        if (status == DetectStatus::Detected) {
          result.outcomes[j].covered_by = CoveredBy::FaultSim;
          result.outcomes[j].sequence_index =
              static_cast<int>(result.sequences.size());
          ++result.stats.by_fault_sim;
          break;
        }
        if (status != DetectStatus::Undetermined) break;
      }
    }
    result.sequences.push_back(*test);
  }
  result.stats.three_phase_seconds = three_phase_timer.seconds();

  result.stats.covered = result.stats.by_random + result.stats.by_three_phase +
                         result.stats.by_fault_sim;
  result.stats.undetected = result.stats.total_faults - result.stats.covered;
  result.stats.seconds = total_timer.seconds();
  return result;
}

void write_test_program(std::ostream& out, const Netlist& netlist,
                        const AtpgEngine& engine,
                        const std::vector<TestSequence>& sequences) {
  out << "# xatpg synchronous test program for '" << netlist.name() << "'\n";
  out << ".inputs";
  for (const SignalId in : netlist.inputs())
    out << " " << netlist.signal_name(in);
  out << "\n.outputs";
  for (const SignalId po : netlist.outputs())
    out << " " << netlist.signal_name(po);
  out << "\n";
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    const auto path = engine.follow(sequences[s]);
    XATPG_CHECK_MSG(path.has_value(), "sequence is not CSSG-valid");
    out << ".sequence " << s << "  # apply from reset\n";
    for (std::size_t t = 0; t < sequences[s].vectors.size(); ++t) {
      for (const bool b : sequences[s].vectors[t]) out << (b ? '1' : '0');
      out << " / ";
      const auto& state = engine.graph().states[(*path)[t + 1]];
      for (const SignalId po : netlist.outputs()) out << (state[po] ? '1' : '0');
      out << "\n";
    }
  }
  out << ".end\n";
}

}  // namespace xatpg
