#include "atpg/engine.hpp"

#include <deque>
#include <exception>
#include <ostream>
#include <thread>
#include <unordered_set>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/work_queue.hpp"

namespace xatpg {

namespace {

std::size_t resolved_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace

AtpgEngine::AtpgEngine(const Netlist& netlist,
                       const std::vector<bool>& reset_state,
                       const AtpgOptions& options)
    : netlist_(&netlist), reset_state_(reset_state), options_(options) {
  cssg_ = build_shard();
  graph_ = cssg_->extract_explicit();
  const auto reset_id = graph_.find(reset_state);
  XATPG_CHECK(reset_id.has_value());
  reset_id_ = *reset_id;
}

std::unique_ptr<Cssg> AtpgEngine::build_shard() const {
  CssgOptions cssg_options;
  cssg_options.k = options_.k;
  cssg_options.order = options_.order;
  cssg_options.reorder = options_.reorder;
  return std::make_unique<Cssg>(
      *netlist_, std::vector<std::vector<bool>>{reset_state_}, cssg_options);
}

std::optional<std::vector<std::uint32_t>> AtpgEngine::follow(
    const TestSequence& seq) const {
  std::vector<std::uint32_t> path{reset_id_};
  for (const auto& vec : seq.vectors) {
    bool advanced = false;
    for (const auto& edge : graph_.edges[path.back()]) {
      if (edge.pattern == vec) {
        path.push_back(edge.to);
        advanced = true;
        break;
      }
    }
    if (!advanced) return std::nullopt;
  }
  return path;
}

// ---------------------------------------------------------------------------
// 3-phase ATPG
// ---------------------------------------------------------------------------

AtpgEngine::DiffResult AtpgEngine::differentiate(
    const Fault& fault, const TestSequence& prefix) const {
  DiffResult result;

  // Replay the (justification) prefix on the faulty circuit.
  FaultSimulator sim(*netlist_, fault, reset_state_, options_.sim);
  if (sim.status() == DetectStatus::GaveUp) return result;
  const auto path = follow(prefix);
  if (!path) return result;
  TestSequence applied;
  for (std::size_t i = 0; i < prefix.vectors.size(); ++i) {
    applied.vectors.push_back(prefix.vectors[i]);
    const DetectStatus status =
        sim.step(prefix.vectors[i], graph_.states[(*path)[i + 1]]);
    if (status == DetectStatus::Detected) {
      // Corruption surfaced during justification — in all terminal states,
      // so the shortened sequence is already a test (paper, Fig. 3a).
      result.found = true;
      result.sequence = applied;
      return result;
    }
    if (status == DetectStatus::GaveUp) return result;
  }

  // Phase 3: breadth-first search over valid vectors for the shortest
  // extension that makes every faulty execution observable.
  struct Node {
    std::uint32_t good_id;
    FaultSimulator::Snapshot sim_state;
    std::vector<std::vector<bool>> suffix;
  };
  std::deque<Node> queue;
  std::unordered_set<std::string> visited;
  const auto key_of = [](std::uint32_t good_id, const std::string& cand_key) {
    return std::to_string(good_id) + "#" + cand_key;
  };
  queue.push_back(Node{path->back(), sim.snapshot(), {}});
  visited.insert(key_of(path->back(), sim.candidates_key()));

  std::size_t expanded = 0;
  Timer budget_timer;
  while (!queue.empty()) {
    const Node node = std::move(queue.front());
    queue.pop_front();
    if (node.suffix.size() >= options_.diff_depth) continue;
    if (budget_timer.seconds() > options_.per_fault_seconds) return result;
    for (const auto& edge : graph_.edges[node.good_id]) {
      if (++expanded > options_.diff_node_cap) return result;
      sim.restore(node.sim_state);
      const DetectStatus status =
          sim.step(edge.pattern, graph_.states[edge.to]);
      if (status == DetectStatus::GaveUp) continue;
      auto suffix = node.suffix;
      suffix.push_back(edge.pattern);
      if (status == DetectStatus::Detected) {
        result.found = true;
        result.sequence = applied;
        for (auto& vec : suffix) result.sequence.vectors.push_back(vec);
        return result;
      }
      const std::string key = key_of(edge.to, sim.candidates_key());
      if (visited.insert(key).second)
        queue.push_back(Node{edge.to, sim.snapshot(), std::move(suffix)});
    }
  }
  return result;
}

bool AtpgEngine::provably_redundant_on(const Cssg& shard,
                                       const Fault& fault) const {
  const SymbolicEncoding& enc = shard.encoding();
  const SignalId src = fault.site == Fault::Site::GatePin
                           ? netlist_->gate(fault.gate).fanins[fault.pin]
                           : fault.gate;
  const Bdd lit = enc.cur(src);
  const Bdd differs = fault.stuck_value ? !lit : lit;
  // The line never differs from the stuck value in any test-mode-reachable
  // state => the faulty circuit is trajectory-equivalent to the good one
  // (inductively: identical states produce identical successor sets).
  return (shard.test_mode_reachable() & differs).is_false();
}

bool AtpgEngine::provably_redundant(const Fault& fault) const {
  return provably_redundant_on(*cssg_, fault);
}

std::optional<TestSequence> AtpgEngine::generate_test_on(
    const Cssg& shard, const Fault& fault) const {
  // Phase 1 — fault activation (§5.1): stable, valid-vector-reachable
  // states in which the faulted line carries the opposite of its stuck
  // value.
  TestSequence prefix;
  bool have_prefix = false;
  if (options_.use_activation) {
    const SymbolicEncoding& enc = shard.encoding();
    const SignalId src = fault.site == Fault::Site::GatePin
                             ? netlist_->gate(fault.gate).fanins[fault.pin]
                             : fault.gate;
    const Bdd lit = enc.cur(src);
    const Bdd excited = fault.stuck_value ? !lit : lit;
    const Bdd activation = excited & shard.cssg_reachable();
    if (!activation.is_false()) {
      // Phase 2 — state justification via the onion rings (§5.2).  The
      // justification is a pure function of the canonical activation set,
      // so every shard computes the identical prefix.
      const auto just = shard.justify(activation);
      if (just) {
        prefix.vectors = just->vectors;
        have_prefix = true;
      }
    }
    // Faults with no stable excitation state go directly to phase 3
    // (§5.1's "left directly to the last phase").
  }

  if (have_prefix) {
    const DiffResult with_prefix = differentiate(fault, prefix);
    if (with_prefix.found) return with_prefix.sequence;
  }
  // Fall back to a full differentiation search from reset: complete within
  // the caps, subsumes any choice of activation state.
  const DiffResult from_reset = differentiate(fault, TestSequence{});
  if (from_reset.found) return from_reset.sequence;
  return std::nullopt;
}

std::optional<TestSequence> AtpgEngine::generate_test(
    const Fault& fault) const {
  return generate_test_on(*cssg_, fault);
}

// ---------------------------------------------------------------------------
// Fault-parallel generation
// ---------------------------------------------------------------------------

void AtpgEngine::generate_parallel(
    const std::vector<Fault>& faults, const std::vector<std::size_t>& todo,
    std::vector<std::optional<TestSequence>>& generated) {
  const std::size_t workers =
      std::min(resolved_threads(options_.threads),
               todo.empty() ? std::size_t{1} : todo.size());
  if (workers <= 1) {
    for (const std::size_t i : todo)
      generated[i] = generate_test_on(*cssg_, faults[i]);
    return;
  }

  // Workers claim coarse blocks of fault indices; each block is processed
  // on the worker's private shard.  Writing generated[i] is race-free: every
  // index is claimed by exactly one block.
  ChunkedWorkQueue<std::size_t> queue(todo,
                                      work_block_size(todo.size(), workers));
  if (extra_shards_.size() < workers - 1) extra_shards_.resize(workers - 1);
  std::vector<std::exception_ptr> errors(workers);
  {
    ThreadPool pool(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      pool.submit([&, w] {
        try {
          // Claim a block before (lazily) building the shard: a worker that
          // never gets work must not pay for a full symbolic construction.
          while (const auto block = queue.pop_block()) {
            if (!extra_shards_[w - 1]) extra_shards_[w - 1] = build_shard();
            const Cssg& shard = *extra_shards_[w - 1];
            for (const std::size_t i : *block)
              generated[i] = generate_test_on(shard, faults[i]);
          }
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    // The main thread is worker 0, on the engine's own context.
    try {
      while (const auto block = queue.pop_block())
        for (const std::size_t i : *block)
          generated[i] = generate_test_on(*cssg_, faults[i]);
    } catch (...) {
      errors[0] = std::current_exception();
    }
    pool.wait_idle();
  }
  for (const std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);
}

// ---------------------------------------------------------------------------
// Deterministic merge: cross fault simulation
// ---------------------------------------------------------------------------

void AtpgEngine::cross_simulate(
    const std::vector<Fault>& faults,
    const std::vector<std::optional<TestSequence>>& generated,
    std::vector<std::unique_ptr<FaultSimulator>>& sims,
    std::size_t committed, const TestSequence& seq,
    const std::vector<std::uint32_t>& path, int seq_index,
    AtpgResult& result) const {
  std::vector<std::size_t> remaining;
  for (std::size_t j = 0; j < faults.size(); ++j) {
    if (j == committed) continue;
    if (result.outcomes[j].covered_by != CoveredBy::None) continue;
    if (result.outcomes[j].proven_redundant) continue;
    remaining.push_back(j);
  }
  if (remaining.empty()) return;

  // Word-parallel ternary screen, 64 lanes per batch (lane 0 carries the
  // fault-free circuit, up to 63 lanes carry faults).  Sound: a ternary
  // flag means every execution of the faulty circuit mismatches a strobe.
  std::vector<bool> flagged(faults.size(), false);
  for (std::size_t begin = 0; begin < remaining.size(); begin += 63) {
    const std::size_t count = std::min<std::size_t>(63, remaining.size() - begin);
    std::vector<Fault> batch;
    batch.reserve(count);
    for (std::size_t b = 0; b < count; ++b)
      batch.push_back(faults[remaining[begin + b]]);
    for (const std::size_t hit :
         ternary_screen(*netlist_, reset_state_, batch, seq.vectors))
      flagged[remaining[begin + hit]] = true;
  }

  for (const std::size_t j : remaining) {
    // Exact pass for ternary flags (confirmation before attribution) and
    // for faults whose own 3-phase search failed — for those the exact
    // simulator is the only remaining chance at coverage, exactly as in the
    // serial engine; skipping it would regress coverage where ternary is
    // too conservative.
    if (!flagged[j] && generated[j].has_value()) continue;
    FaultSimulator& sim = *sims[j];
    sim.restart();
    DetectStatus status = sim.status();
    for (std::size_t t = 0;
         t < seq.vectors.size() && status == DetectStatus::Undetermined; ++t)
      status = sim.step(seq.vectors[t], graph_.states[path[t + 1]]);
    if (status == DetectStatus::Detected) {
      result.outcomes[j].covered_by = CoveredBy::FaultSim;
      result.outcomes[j].sequence_index = seq_index;
      ++result.stats.by_fault_sim;
    }
  }
}

// ---------------------------------------------------------------------------
// Full flow
// ---------------------------------------------------------------------------

AtpgResult AtpgEngine::run(const std::vector<Fault>& faults) {
  Timer total_timer;
  AtpgResult result;
  result.outcomes.reserve(faults.size());
  for (const Fault& f : faults) result.outcomes.push_back(FaultOutcome{f});
  result.stats.total_faults = faults.size();

  // Long-lived exact simulators, one per fault — stepped along random walks
  // first, restart()ed per committed sequence in the merge phase later.
  std::vector<std::unique_ptr<FaultSimulator>> sims;
  sims.reserve(faults.size());
  for (const Fault& f : faults)
    sims.push_back(std::make_unique<FaultSimulator>(*netlist_, f,
                                                    reset_state_, options_.sim));

  // --- Random TPG (§5.4) ----------------------------------------------------
  Timer random_timer;
  Rng rng(options_.seed);
  std::size_t budget = options_.random_budget;
  while (budget > 0) {
    // A fresh walk models a reset pulse followed by random valid vectors.
    // A circuit whose reset state has no valid vector at all (every pattern
    // races — it happens on heavily hazardous bounded-delay circuits)
    // cannot be random-tested.
    if (graph_.edges[reset_id_].empty()) break;
    for (auto& sim : sims) sim->restart();
    TestSequence walk;
    std::uint32_t good_id = reset_id_;
    bool detected_any = false;
    for (std::size_t step = 0; step < options_.random_walk_len && budget > 0;
         ++step) {
      const auto& edges = graph_.edges[good_id];
      if (edges.empty()) break;
      const auto& edge = edges[rng.below(edges.size())];
      --budget;
      walk.vectors.push_back(edge.pattern);
      const auto& good_state = graph_.states[edge.to];
      for (std::size_t i = 0; i < sims.size(); ++i) {
        if (result.outcomes[i].covered_by != CoveredBy::None) continue;
        if (sims[i]->status() != DetectStatus::Undetermined) continue;
        if (sims[i]->step(edge.pattern, good_state) == DetectStatus::Detected) {
          result.outcomes[i].covered_by = CoveredBy::Random;
          result.outcomes[i].sequence_index =
              static_cast<int>(result.sequences.size());
          ++result.stats.by_random;
          detected_any = true;
        }
      }
      good_id = edge.to;
    }
    if (detected_any) result.sequences.push_back(walk);
    // Stop early once everything is covered.
    if (result.stats.by_random == faults.size()) break;
  }
  result.stats.random_seconds = random_timer.seconds();

  // --- a-priori undetectable-fault classification (optional, §6) ------------
  if (options_.classify_undetectable) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (result.outcomes[i].covered_by != CoveredBy::None) continue;
      if (provably_redundant(faults[i])) {
        result.outcomes[i].proven_redundant = true;
        ++result.stats.proven_redundant;
      }
    }
  }

  // --- fault-parallel 3-phase ATPG (§5.1–§5.3) -------------------------------
  Timer three_phase_timer;
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (result.outcomes[i].covered_by == CoveredBy::None &&
        !result.outcomes[i].proven_redundant)
      todo.push_back(i);
  std::vector<std::optional<TestSequence>> generated(faults.size());
  generate_parallel(faults, todo, generated);

  // --- deterministic merge + cross fault simulation (§5.4) -------------------
  // Commit strictly in fault-list order; a fault already picked up by an
  // earlier committed sequence's cross simulation discards its own test.
  for (const std::size_t i : todo) {
    if (result.outcomes[i].covered_by != CoveredBy::None) continue;
    if (!generated[i]) continue;  // undetected (redundant or beyond caps)
    const int seq_index = static_cast<int>(result.sequences.size());
    result.outcomes[i].covered_by = CoveredBy::ThreePhase;
    result.outcomes[i].sequence_index = seq_index;
    ++result.stats.by_three_phase;

    const auto path = follow(*generated[i]);
    XATPG_CHECK(path.has_value());
    cross_simulate(faults, generated, sims, i, *generated[i], *path,
                   seq_index, result);
    result.sequences.push_back(*generated[i]);
  }
  result.stats.three_phase_seconds = three_phase_timer.seconds();

  result.stats.covered = result.stats.by_random + result.stats.by_three_phase +
                         result.stats.by_fault_sim;
  result.stats.undetected = result.stats.total_faults - result.stats.covered;
  result.stats.seconds = total_timer.seconds();
  return result;
}

void write_test_program(std::ostream& out, const Netlist& netlist,
                        const AtpgEngine& engine,
                        const std::vector<TestSequence>& sequences) {
  out << "# xatpg synchronous test program for '" << netlist.name() << "'\n";
  out << ".inputs";
  for (const SignalId in : netlist.inputs())
    out << " " << netlist.signal_name(in);
  out << "\n.outputs";
  for (const SignalId po : netlist.outputs())
    out << " " << netlist.signal_name(po);
  out << "\n";
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    const auto path = engine.follow(sequences[s]);
    XATPG_CHECK_MSG(path.has_value(), "sequence is not CSSG-valid");
    out << ".sequence " << s << "  # apply from reset\n";
    for (std::size_t t = 0; t < sequences[s].vectors.size(); ++t) {
      for (const bool b : sequences[s].vectors[t]) out << (b ? '1' : '0');
      out << " / ";
      const auto& state = engine.graph().states[(*path)[t + 1]];
      for (const SignalId po : netlist.outputs()) out << (state[po] ? '1' : '0');
      out << "\n";
    }
  }
  out << ".end\n";
}

}  // namespace xatpg
