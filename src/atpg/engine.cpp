#include "atpg/engine.hpp"

#include <atomic>
#include <cstring>
#include <deque>
#include <exception>
#include <ostream>
#include <thread>
#include <unordered_set>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/work_queue.hpp"

namespace xatpg {

namespace {

std::size_t resolved_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

bool cancel_fired(const CancelToken* cancel) {
  return cancel != nullptr && cancel->cancelled();
}

}  // namespace

std::size_t AtpgEngine::FaultHash::operator()(const Fault& fault) const {
  // splitmix-style mix of the four fields; quality matters little (the map
  // holds at most a few thousand faults) but determinism does not — this is
  // never iterated, only probed.
  std::uint64_t h = static_cast<std::uint64_t>(fault.gate);
  h = (h << 20) ^ (static_cast<std::uint64_t>(fault.pin) << 2);
  h ^= static_cast<std::uint64_t>(fault.site == Fault::Site::GatePin) << 1;
  h ^= static_cast<std::uint64_t>(fault.stuck_value);
  h *= 0x9e3779b97f4a7c15ull;
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

/// Published by each worker at fault granularity; read by the run's calling
/// thread to stream per-shard BDD statistics while generation is running.
///
/// Publication protocol (lock-free; outside the scope of the mutex-based
/// thread-safety annotations in util/annotations.hpp, verified by the TSan
/// CI job instead): every field is an independent monotonic counter written
/// by exactly one worker with relaxed stores and read by the progress
/// thread with relaxed loads.  Readers may observe a torn *set* of counters
/// (e.g. done advanced but cache_hits not yet) — each individual value is
/// still a real point-in-time value, which is all the streaming progress
/// display needs.  Nothing downstream derives control flow from a
/// cross-field invariant.
struct AtpgEngine::ShardCounters {
  std::atomic<std::size_t> live{0};
  std::atomic<std::size_t> peak{0};
  std::atomic<std::size_t> reorders{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> steals{0};
  std::atomic<std::size_t> cache_lookups{0};
  std::atomic<std::size_t> cache_hits{0};
  /// Unique-table load factor, published as its raw bit pattern so the
  /// counter stays a lock-free word on every platform.
  std::atomic<std::uint64_t> unique_load_bits{0};
};

namespace {

/// Snapshot one manager's BDD accounting into the public stats struct —
/// only safe on the thread that owns the manager (the worker publishing its
/// own shard, or the main thread reading its own context / idle shards).
ShardBddStats snapshot_shard(std::size_t shard, const BddManager& mgr,
                             std::size_t faults_done,
                             std::size_t blocks_stolen = 0) {
  ShardBddStats stats;
  stats.shard = shard;
  // For a delta manager allocated_nodes()/peak_nodes() cover the private
  // delta arena only; the resident totals add the frozen shared base once.
  // A monolithic manager has base_nodes() == 0, so the old semantics hold.
  stats.base_nodes = mgr.base_nodes();
  stats.delta_peak = mgr.peak_nodes();
  stats.live_nodes = mgr.base_nodes() + mgr.allocated_nodes();
  stats.peak_nodes = mgr.base_nodes() + mgr.peak_nodes();
  stats.reorders = mgr.reorder_count();
  stats.faults_done = faults_done;
  stats.cache_lookups = mgr.cache_lookups();
  stats.cache_hits = mgr.cache_hits();
  stats.unique_load = mgr.unique_load();
  stats.blocks_stolen = blocks_stolen;
  return stats;
}

std::uint64_t double_to_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

double bits_to_double(std::uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace

AtpgEngine::AtpgEngine(const Netlist& netlist,
                       const std::vector<bool>& reset_state,
                       const AtpgOptions& options)
    : netlist_(&netlist), reset_state_(reset_state), options_(options) {
  const Expected<void> valid = options_.validate();
  XATPG_CHECK_MSG(valid.has_value(),
                  "invalid AtpgOptions — " << valid.error().message);
  cssg_ = build_shard();
  graph_ = cssg_->extract_explicit();
  const auto reset_id = graph_.find(reset_state);
  XATPG_CHECK(reset_id.has_value());
  reset_id_ = *reset_id;
  // Publication point: freeze the substrate before any worker thread can
  // exist, so thread creation's happens-before edge covers the whole frozen
  // arena.  Everything after this runs on delta views.
  cssg_->freeze();
  base_node_count_ = cssg_->encoding().mgr().allocated_nodes();
  base_reorder_count_ = cssg_->encoding().mgr().reorder_count();
  shard0_ = build_delta();
}

std::unique_ptr<Cssg> AtpgEngine::build_shard() const {
  CssgOptions cssg_options;
  cssg_options.k = options_.k;
  cssg_options.order = options_.order;
  cssg_options.reorder = options_.reorder;
  return std::make_unique<Cssg>(
      *netlist_, std::vector<std::vector<bool>>{reset_state_}, cssg_options);
}

std::unique_ptr<Cssg> AtpgEngine::build_delta() const {
  return std::make_unique<Cssg>(*cssg_, BddManager::Delta{});
}

std::optional<std::vector<std::uint32_t>> AtpgEngine::follow(
    const TestSequence& seq) const {
  std::vector<std::uint32_t> path{reset_id_};
  for (const auto& vec : seq.vectors) {
    bool advanced = false;
    for (const auto& edge : graph_.edges[path.back()]) {
      if (edge.pattern == vec) {
        path.push_back(edge.to);
        advanced = true;
        break;
      }
    }
    if (!advanced) return std::nullopt;
  }
  return path;
}

// ---------------------------------------------------------------------------
// 3-phase ATPG
// ---------------------------------------------------------------------------

AtpgEngine::DiffResult AtpgEngine::differentiate(
    const Fault& fault, const TestSequence& prefix) const {
  DiffResult result;

  // Replay the (justification) prefix on the faulty circuit.
  FaultSimulator sim(*netlist_, fault, reset_state_, options_.sim);
  if (sim.status() == DetectStatus::GaveUp) {
    result.truncated = true;  // candidate cap blew at reset — nothing proven
    return result;
  }
  const auto path = follow(prefix);
  if (!path) return result;
  TestSequence applied;
  for (std::size_t i = 0; i < prefix.vectors.size(); ++i) {
    applied.vectors.push_back(prefix.vectors[i]);
    const DetectStatus status =
        sim.step(prefix.vectors[i], graph_.states[(*path)[i + 1]]);
    if (status == DetectStatus::Detected) {
      // Corruption surfaced during justification — in all terminal states,
      // so the shortened sequence is already a test (paper, Fig. 3a).
      result.found = true;
      result.sequence = applied;
      return result;
    }
    if (status == DetectStatus::GaveUp) {
      result.truncated = true;
      return result;
    }
  }

  // Phase 3: breadth-first search over valid vectors for the shortest
  // extension that makes every faulty execution observable.
  struct Node {
    std::uint32_t good_id;
    FaultSimulator::Snapshot sim_state;
    std::vector<std::vector<bool>> suffix;
  };
  std::deque<Node> queue;
  std::unordered_set<std::string> visited;
  const auto key_of = [](std::uint32_t good_id, const std::string& cand_key) {
    return std::to_string(good_id) + "#" + cand_key;
  };
  queue.push_back(Node{path->back(), sim.snapshot(), {}});
  visited.insert(key_of(path->back(), sim.candidates_key()));

  // The per-fault budget is the DETERMINISTIC pair diff_depth /
  // diff_node_cap — both depend only on (circuit, options, fault), never on
  // machine speed, load, or scheduling, which is what makes outcomes
  // byte-identical across hosts and thread counts.  per_fault_seconds > 0
  // additionally arms a wall-clock fallback for exploratory runs with the
  // deterministic caps raised; tripping it is loudly logged because that
  // run's results are machine-dependent.
  std::size_t expanded = 0;
  Timer budget_timer;
  while (!queue.empty()) {
    const Node node = std::move(queue.front());
    queue.pop_front();
    if (node.suffix.size() >= options_.diff_depth) {
      result.truncated = true;  // deeper extensions exist but are unexplored
      continue;
    }
    if (options_.per_fault_seconds > 0 &&
        budget_timer.seconds() > options_.per_fault_seconds) {
      XATPG_WARN("per-fault wall-clock fallback ("
                 << options_.per_fault_seconds << "s) tripped after "
                 << expanded
                 << " expansions — this outcome is machine-dependent; raise "
                    "per_fault_seconds (or set 0) for reproducible results");
      result.truncated = true;
      return result;
    }
    for (const auto& edge : graph_.edges[node.good_id]) {
      if (++expanded > options_.diff_node_cap) {
        result.truncated = true;
        return result;
      }
      sim.restore(node.sim_state);
      const DetectStatus status =
          sim.step(edge.pattern, graph_.states[edge.to]);
      if (status == DetectStatus::GaveUp) {
        result.truncated = true;  // this branch is abandoned, not refuted
        continue;
      }
      auto suffix = node.suffix;
      suffix.push_back(edge.pattern);
      if (status == DetectStatus::Detected) {
        result.found = true;
        result.sequence = applied;
        for (auto& vec : suffix) result.sequence.vectors.push_back(vec);
        return result;
      }
      const std::string key = key_of(edge.to, sim.candidates_key());
      if (visited.insert(key).second)
        queue.push_back(Node{edge.to, sim.snapshot(), std::move(suffix)});
    }
  }
  return result;
}

bool AtpgEngine::provably_redundant_on(const Cssg& shard,
                                       const Fault& fault) const {
  const SymbolicEncoding& enc = shard.encoding();
  const SignalId src = fault.site == Fault::Site::GatePin
                           ? netlist_->gate(fault.gate).fanins[fault.pin]
                           : fault.gate;
  const Bdd lit = enc.cur(src);
  const Bdd differs = fault.stuck_value ? !lit : lit;
  // The line never differs from the stuck value in any test-mode-reachable
  // state => the faulty circuit is trajectory-equivalent to the good one
  // (inductively: identical states produce identical successor sets).
  return (shard.test_mode_reachable() & differs).is_false();
}

bool AtpgEngine::provably_redundant(const Fault& fault) const {
  return provably_redundant_on(*shard0_, fault);
}

AtpgEngine::SearchOutcome AtpgEngine::generate_test_on(
    const Cssg& shard, const Fault& fault) const {
  // Phase 1 — fault activation (§5.1): stable, valid-vector-reachable
  // states in which the faulted line carries the opposite of its stuck
  // value.
  TestSequence prefix;
  bool have_prefix = false;
  if (options_.use_activation) {
    const SymbolicEncoding& enc = shard.encoding();
    const SignalId src = fault.site == Fault::Site::GatePin
                             ? netlist_->gate(fault.gate).fanins[fault.pin]
                             : fault.gate;
    const Bdd lit = enc.cur(src);
    const Bdd excited = fault.stuck_value ? !lit : lit;
    const Bdd activation = excited & shard.cssg_reachable();
    if (!activation.is_false()) {
      // Phase 2 — state justification via the onion rings (§5.2).  The
      // justification is a pure function of the canonical activation set,
      // so every shard computes the identical prefix.
      const auto just = shard.justify(activation);
      if (just) {
        prefix.vectors = just->vectors;
        have_prefix = true;
      }
    }
    // Faults with no stable excitation state go directly to phase 3
    // (§5.1's "left directly to the last phase").
  }

  bool truncated = false;
  if (have_prefix) {
    const DiffResult with_prefix = differentiate(fault, prefix);
    if (with_prefix.found) return SearchOutcome{with_prefix.sequence, false};
    truncated = with_prefix.truncated;
  }
  // Fall back to a full differentiation search from reset: complete within
  // the caps, subsumes any choice of activation state.
  const DiffResult from_reset = differentiate(fault, TestSequence{});
  if (from_reset.found) return SearchOutcome{from_reset.sequence, false};
  // No test.  "Gave up" iff any cap truncated either search — an
  // untruncated exhaustion means the fault really has no test within the
  // caps' full space (redundant-in-practice), which bench coverage floors
  // must not confuse with a cap blowout.
  return SearchOutcome{std::nullopt, truncated || from_reset.truncated};
}

std::optional<TestSequence> AtpgEngine::generate_test(
    const Fault& fault) const {
  return generate_test_on(*shard0_, fault).sequence;
}

// ---------------------------------------------------------------------------
// Fault-parallel generation
// ---------------------------------------------------------------------------

void AtpgEngine::generate_parallel(const std::vector<Fault>& faults,
                                   const std::vector<std::size_t>& todo,
                                   const CancelToken* cancel,
                                   RunObserver* observer,
                                   const std::function<RunProgress()>& make_base) {
  const std::size_t workers =
      std::min(resolved_threads(options_.threads),
               todo.empty() ? std::size_t{1} : todo.size());
  if (shard_done_.size() < workers) shard_done_.resize(workers, 0);
  if (shard_steals_.size() < workers) shard_steals_.resize(workers, 0);

  // Results land here first (slot per fault index, written by exactly one
  // worker) and are memoized after the join: the cache is not touched from
  // worker threads.
  std::vector<SearchOutcome> generated(faults.size());
  std::vector<char> attempted(faults.size(), 0);

  if (workers <= 1) {
    for (const std::size_t i : todo) {
      if (cancel_fired(cancel)) break;
      generated[i] = generate_test_on(*shard0_, faults[i]);
      attempted[i] = 1;
      ++shard_done_[0];
    }
  } else {
    // Work-stealing fan-out: the batch is pre-split into coarse blocks of
    // fault indices dealt out across per-worker deques; a worker drains its
    // own deque first and steals whole blocks from a victim once dry, so a
    // whale fault pinning one worker donates that worker's untouched blocks
    // instead of stranding them.  Each block is processed on the claiming
    // worker's private shard.  Writing generated[i] is race-free: every
    // index is claimed by exactly one block, every block by exactly one
    // worker (the queue's single-CAS claim).
    StealingWorkQueue<std::size_t> queue(
        todo, work_block_size(todo.size(), workers), workers);
    if (extra_shards_.size() < workers - 1) extra_shards_.resize(workers - 1);
    std::vector<ShardCounters> counters(workers);
    std::vector<std::exception_ptr> errors(workers);
    {
      ThreadPool pool(workers - 1);
      for (std::size_t w = 1; w < workers; ++w) {
        pool.submit([&, w] {
          try {
            // Claim a block before (lazily) building the delta view: a
            // worker that never gets work pays nothing at all.  View
            // construction is cheap (handle adoption, no node copies) and
            // reads only the frozen base, which thread creation published.
            while (const auto block = queue.pop_block(w)) {
              if (!extra_shards_[w - 1]) extra_shards_[w - 1] = build_delta();
              const Cssg& shard = *extra_shards_[w - 1];
              counters[w].steals.store(queue.steals(w),
                                       std::memory_order_relaxed);
              for (const std::size_t i : *block) {
                if (cancel_fired(cancel)) return;
                generated[i] = generate_test_on(shard, faults[i]);
                attempted[i] = 1;
                const BddManager& mgr = shard.encoding().mgr();
                counters[w].live.store(mgr.allocated_nodes(),
                                       std::memory_order_relaxed);
                counters[w].peak.store(mgr.peak_nodes(),
                                       std::memory_order_relaxed);
                counters[w].reorders.store(mgr.reorder_count(),
                                           std::memory_order_relaxed);
                counters[w].cache_lookups.store(mgr.cache_lookups(),
                                                std::memory_order_relaxed);
                counters[w].cache_hits.store(mgr.cache_hits(),
                                             std::memory_order_relaxed);
                counters[w].unique_load_bits.store(
                    double_to_bits(mgr.unique_load()),
                    std::memory_order_relaxed);
                counters[w].done.fetch_add(1, std::memory_order_relaxed);
              }
            }
          } catch (...) {
            errors[w] = std::current_exception();
          }
        });
      }
      // The main thread is worker 0, on the engine's own context.  Between
      // its own blocks it streams a progress snapshot assembled from the
      // workers' published counters (observer contract: callbacks fire on
      // the calling thread only).
      try {
        while (const auto block = queue.pop_block(0)) {
          for (const std::size_t i : *block) {
            if (cancel_fired(cancel)) break;
            generated[i] = generate_test_on(*shard0_, faults[i]);
            attempted[i] = 1;
            counters[0].done.fetch_add(1, std::memory_order_relaxed);
          }
          if (observer != nullptr) {
            RunProgress progress = make_base();
            progress.shards.push_back(snapshot_shard(
                0, shard0_->encoding().mgr(),
                shard_done_[0] +
                    counters[0].done.load(std::memory_order_relaxed),
                shard_steals_[0] + queue.steals(0)));
            // Base sifting passes belong to shard 0 (counted once).
            progress.shards.back().reorders += base_reorder_count_;
            for (std::size_t w = 1; w < workers; ++w) {
              ShardBddStats stats;
              stats.shard = w;
              // Workers publish delta-arena counters only; the shared-base
              // size is a frozen constant the main thread composes in.
              stats.base_nodes = base_node_count_;
              stats.delta_peak =
                  counters[w].peak.load(std::memory_order_relaxed);
              stats.live_nodes =
                  base_node_count_ +
                  counters[w].live.load(std::memory_order_relaxed);
              stats.peak_nodes = base_node_count_ + stats.delta_peak;
              stats.reorders =
                  counters[w].reorders.load(std::memory_order_relaxed);
              stats.faults_done =
                  shard_done_[w] +
                  counters[w].done.load(std::memory_order_relaxed);
              stats.cache_lookups =
                  counters[w].cache_lookups.load(std::memory_order_relaxed);
              stats.cache_hits =
                  counters[w].cache_hits.load(std::memory_order_relaxed);
              stats.unique_load = bits_to_double(
                  counters[w].unique_load_bits.load(std::memory_order_relaxed));
              stats.blocks_stolen =
                  shard_steals_[w] +
                  counters[w].steals.load(std::memory_order_relaxed);
              progress.shards.push_back(stats);
            }
            observer->on_progress(progress);
          }
          if (cancel_fired(cancel)) break;
        }
      } catch (...) {
        errors[0] = std::current_exception();
      }
      pool.wait_idle();
    }
    for (const std::exception_ptr& error : errors)
      if (error) std::rethrow_exception(error);
    // Fold this batch's per-shard completions into the run-level totals so
    // snapshots emitted after the join keep reporting them.  Steal counts
    // come straight from the queue — exact after the join.
    for (std::size_t w = 0; w < workers; ++w) {
      shard_done_[w] += counters[w].done.load(std::memory_order_relaxed);
      shard_steals_[w] += queue.steals(w);
    }
  }

  // Memoize completed searches (single-threaded again).  Faults skipped by
  // a fired CancelToken stay unmemoized and are attempted by a later run.
  for (const std::size_t i : todo)
    if (attempted[i]) generated_cache_.emplace(faults[i], std::move(generated[i]));
}

std::vector<ShardBddStats> AtpgEngine::shard_bdd_stats() const {
  const auto count_of = [](const std::vector<std::size_t>& v, std::size_t w) {
    return w < v.size() ? v[w] : std::size_t{0};
  };
  std::vector<ShardBddStats> shards;
  shards.push_back(snapshot_shard(0, shard0_->encoding().mgr(),
                                  count_of(shard_done_, 0),
                                  count_of(shard_steals_, 0)));
  // Base sifting passes belong to shard 0 (counted once across shards).
  shards.back().reorders += base_reorder_count_;
  for (std::size_t w = 0; w < extra_shards_.size(); ++w) {
    if (!extra_shards_[w]) continue;
    shards.push_back(snapshot_shard(w + 1, extra_shards_[w]->encoding().mgr(),
                                    count_of(shard_done_, w + 1),
                                    count_of(shard_steals_, w + 1)));
  }
  return shards;
}

// ---------------------------------------------------------------------------
// Deterministic merge: cross fault simulation
// ---------------------------------------------------------------------------

void AtpgEngine::cross_simulate(
    const std::vector<Fault>& faults,
    std::vector<std::unique_ptr<FaultSimulator>>& sims, std::size_t committed,
    const TestSequence& seq, const std::vector<std::uint32_t>& path,
    int seq_index, AtpgResult& result,
    std::vector<std::size_t>& resolved) const {
  std::vector<std::size_t> remaining;
  for (std::size_t j = 0; j < faults.size(); ++j) {
    if (j == committed) continue;
    if (result.outcomes[j].covered_by != CoveredBy::None) continue;
    if (result.outcomes[j].proven_redundant) continue;
    remaining.push_back(j);
  }
  if (remaining.empty()) return;

  // Word-parallel ternary screen, 64 lanes per batch (lane 0 carries the
  // fault-free circuit, up to 63 lanes carry faults).  Sound: a ternary
  // flag means every execution of the faulty circuit mismatches a strobe.
  std::vector<bool> flagged(faults.size(), false);
  for (std::size_t begin = 0; begin < remaining.size(); begin += 63) {
    const std::size_t count = std::min<std::size_t>(63, remaining.size() - begin);
    std::vector<Fault> batch;
    batch.reserve(count);
    for (std::size_t b = 0; b < count; ++b)
      batch.push_back(faults[remaining[begin + b]]);
    for (const std::size_t hit :
         ternary_screen(*netlist_, reset_state_, batch, seq.vectors))
      flagged[remaining[begin + hit]] = true;
  }

  for (const std::size_t j : remaining) {
    // Exact pass for ternary flags (confirmation before attribution) and
    // for faults whose own 3-phase search already completed and failed —
    // for those the exact simulator is the only remaining chance at
    // coverage, exactly as in the serial engine; skipping it would regress
    // coverage where ternary is too conservative.  Faults whose search has
    // not run yet (incremental growth) are screened by ternary only here;
    // the post-generation catch-up in run_universe replays the committed
    // sequences for any of them that turn out search-exhausted, which keeps
    // incremental results byte-identical to a from-scratch union run.
    if (!flagged[j]) {
      const auto it = generated_cache_.find(faults[j]);
      const bool search_exhausted =
          it != generated_cache_.end() && !it->second.sequence.has_value();
      if (!search_exhausted) continue;
    }
    FaultSimulator& sim = *sims[j];
    sim.restart();
    DetectStatus status = sim.status();
    for (std::size_t t = 0;
         t < seq.vectors.size() && status == DetectStatus::Undetermined; ++t)
      status = sim.step(seq.vectors[t], graph_.states[path[t + 1]]);
    if (status == DetectStatus::Detected) {
      result.outcomes[j].covered_by = CoveredBy::FaultSim;
      result.outcomes[j].sequence_index = seq_index;
      ++result.stats.by_fault_sim;
      resolved.push_back(j);
    }
  }
}

// ---------------------------------------------------------------------------
// Full flow
// ---------------------------------------------------------------------------

AtpgResult AtpgEngine::run(const std::vector<Fault>& faults,
                           RunObserver* observer, const CancelToken* cancel) {
  universe_ = faults;
  return run_universe(observer, cancel);
}

AtpgResult AtpgEngine::add_faults(const std::vector<Fault>& faults,
                                  RunObserver* observer,
                                  const CancelToken* cancel) {
  universe_.insert(universe_.end(), faults.begin(), faults.end());
  return run_universe(observer, cancel);
}

AtpgResult AtpgEngine::run_universe(RunObserver* observer,
                                    const CancelToken* cancel) {
  const std::vector<Fault>& faults = universe_;
  Timer total_timer;
  AtpgResult result;
  result.outcomes.reserve(faults.size());
  for (const Fault& f : faults) result.outcomes.push_back(FaultOutcome{f});
  result.stats.total_faults = faults.size();

  const auto is_cancelled = [&] {
    if (cancel_fired(cancel)) {
      result.cancelled = true;
      return true;
    }
    return false;
  };
  std::size_t resolved_count = 0;
  const auto notify_resolved = [&](std::size_t index) {
    ++resolved_count;
    if (observer != nullptr)
      observer->on_fault_resolved(index, result.outcomes[index]);
  };
  const auto progress_snapshot = [&](RunPhase phase) {
    RunProgress progress;
    progress.phase = phase;
    progress.faults_total = faults.size();
    progress.faults_resolved = resolved_count;
    progress.covered = result.stats.by_random + result.stats.by_three_phase +
                       result.stats.by_fault_sim;
    progress.sequences_committed = result.sequences.size();
    progress.elapsed_seconds = total_timer.seconds();
    return progress;
  };
  // Per-shard completion/steal counters restart with each run (filled by
  // generate_parallel, reported by every later snapshot).
  shard_done_.assign(shard_done_.size(), 0);
  shard_steals_.assign(shard_steals_.size(), 0);
  // Full snapshot incl. shard stats — only safe while no workers run (the
  // parallel fan-out assembles its own snapshots from published counters).
  const auto emit_progress = [&](RunPhase phase) {
    if (observer == nullptr) return;
    RunProgress progress = progress_snapshot(phase);
    progress.shards = shard_bdd_stats();
    observer->on_progress(progress);
  };

  // Long-lived exact simulators, one per fault — stepped along random walks
  // first, restart()ed per committed sequence in the merge phase later.
  std::vector<std::unique_ptr<FaultSimulator>> sims;
  sims.reserve(faults.size());
  for (const Fault& f : faults)
    sims.push_back(std::make_unique<FaultSimulator>(*netlist_, f,
                                                    reset_state_, options_.sim));

  // --- Random TPG (§5.4) ----------------------------------------------------
  if (observer != nullptr) observer->on_phase(RunPhase::RandomTpg);
  Timer random_timer;
  Rng rng(options_.seed);
  std::size_t budget = options_.random_budget;
  while (budget > 0 && !is_cancelled()) {
    // A fresh walk models a reset pulse followed by random valid vectors.
    // A circuit whose reset state has no valid vector at all (every pattern
    // races — it happens on heavily hazardous bounded-delay circuits)
    // cannot be random-tested.
    if (graph_.edges[reset_id_].empty()) break;
    for (auto& sim : sims) sim->restart();
    TestSequence walk;
    std::uint32_t good_id = reset_id_;
    std::vector<std::size_t> walk_resolved;
    for (std::size_t step = 0; step < options_.random_walk_len && budget > 0;
         ++step) {
      const auto& edges = graph_.edges[good_id];
      if (edges.empty()) break;
      const auto& edge = edges[rng.below(edges.size())];
      --budget;
      walk.vectors.push_back(edge.pattern);
      const auto& good_state = graph_.states[edge.to];
      for (std::size_t i = 0; i < sims.size(); ++i) {
        if (result.outcomes[i].covered_by != CoveredBy::None) continue;
        if (sims[i]->status() != DetectStatus::Undetermined) continue;
        if (sims[i]->step(edge.pattern, good_state) == DetectStatus::Detected) {
          result.outcomes[i].covered_by = CoveredBy::Random;
          result.outcomes[i].sequence_index =
              static_cast<int>(result.sequences.size());
          ++result.stats.by_random;
          walk_resolved.push_back(i);
        }
      }
      good_id = edge.to;
    }
    if (!walk_resolved.empty()) {
      result.sequences.push_back(walk);
      for (const std::size_t i : walk_resolved) notify_resolved(i);
      emit_progress(RunPhase::RandomTpg);
    }
    // Stop early once everything is covered.
    if (result.stats.by_random == faults.size()) break;
  }
  result.stats.random_seconds = random_timer.seconds();

  // --- a-priori undetectable-fault classification (optional, §6) ------------
  if (options_.classify_undetectable && !result.cancelled) {
    if (observer != nullptr) observer->on_phase(RunPhase::Classify);
    for (std::size_t i = 0; i < faults.size() && !is_cancelled(); ++i) {
      if (result.outcomes[i].covered_by != CoveredBy::None) continue;
      if (provably_redundant(faults[i])) {
        result.outcomes[i].proven_redundant = true;
        ++result.stats.proven_redundant;
        notify_resolved(i);
      }
    }
    emit_progress(RunPhase::Classify);
  }

  // --- fault-parallel 3-phase ATPG (§5.1–§5.3) -------------------------------
  Timer three_phase_timer;
  if (observer != nullptr) observer->on_phase(RunPhase::ThreePhase);
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (result.outcomes[i].covered_by == CoveredBy::None &&
        !result.outcomes[i].proven_redundant)
      todo.push_back(i);

  // --- deterministic merge + cross fault simulation (§5.4) -------------------
  // Commit strictly in fault-list order; a fault already picked up by an
  // earlier committed sequence's cross simulation discards its own test.
  // Generation is batched lazily *inside* the merge: the first fault whose
  // search is not memoized triggers one parallel fan-out over every
  // still-uncovered unmemoized fault.  On a fresh universe that batch is
  // the entire todo list before any commit (identical to generating up
  // front); on an incrementally grown universe the committed prefix runs
  // from the cache first, its cross simulation covers new faults for free,
  // and only the survivors pay for a search.
  std::vector<std::vector<std::uint32_t>> committed_paths;  // 3-phase commits
  std::vector<int> committed_indices;                       // their seq indices
  // Unmemoized faults that cross simulation covers get a *tentative*
  // FaultSim attribution: once their search status is known (see the
  // fix-up after the merge loop) the attributed sequence may move earlier.
  std::vector<std::pair<std::size_t, std::size_t>> tentative;  // (fault, commit#)
  // Exact replay of one committed sequence (by commit position) for fault
  // j; true if the fault is detected.
  const auto replays_detect = [&](std::size_t j, std::size_t commit) {
    const TestSequence& seq = result.sequences[committed_indices[commit]];
    const auto& path = committed_paths[commit];
    FaultSimulator& sim = *sims[j];
    sim.restart();
    DetectStatus status = sim.status();
    for (std::size_t t = 0;
         t < seq.vectors.size() && status == DetectStatus::Undetermined; ++t)
      status = sim.step(seq.vectors[t], graph_.states[path[t + 1]]);
    return status == DetectStatus::Detected;
  };
  for (const std::size_t i : todo) {
    if (is_cancelled()) break;
    if (result.outcomes[i].covered_by != CoveredBy::None) continue;
    auto cached = generated_cache_.find(faults[i]);
    if (cached == generated_cache_.end()) {
      std::vector<std::size_t> batch;
      for (const std::size_t j : todo)
        if (result.outcomes[j].covered_by == CoveredBy::None &&
            !generated_cache_.contains(faults[j]))
          batch.push_back(j);
      generate_parallel(faults, batch, cancel, observer,
                        [&] { return progress_snapshot(RunPhase::ThreePhase); });

      // Catch-up for byte-identity with a from-scratch run: a batch fault
      // whose search turned out exhausted would — in the from-scratch run —
      // have had the exact-fallback replay at *every* earlier commit.  Redo
      // that now against this run's committed sequences, in commit order;
      // the earliest detection wins.  (Batch faults were all uncovered at
      // batch time, so any detection here is their first.)
      for (const std::size_t j : batch) {
        const auto it = generated_cache_.find(faults[j]);
        if (it == generated_cache_.end() || it->second.sequence.has_value())
          continue;
        for (std::size_t c = 0; c < committed_paths.size(); ++c) {
          if (!replays_detect(j, c)) continue;
          ++result.stats.by_fault_sim;
          result.outcomes[j].covered_by = CoveredBy::FaultSim;
          result.outcomes[j].sequence_index = committed_indices[c];
          notify_resolved(j);
          break;
        }
      }

      if (is_cancelled()) break;
      cached = generated_cache_.find(faults[i]);
      // The batch itself was cut short by a cancel before reaching fault i.
      if (cached == generated_cache_.end()) break;
      if (result.outcomes[i].covered_by != CoveredBy::None) continue;
    }
    if (!cached->second.sequence) continue;  // undetected (redundant or gave up)
    const TestSequence& seq = *cached->second.sequence;
    const int seq_index = static_cast<int>(result.sequences.size());
    result.outcomes[i].covered_by = CoveredBy::ThreePhase;
    result.outcomes[i].sequence_index = seq_index;
    ++result.stats.by_three_phase;

    const auto path = follow(seq);
    XATPG_CHECK(path.has_value());
    std::vector<std::size_t> resolved;
    cross_simulate(faults, sims, i, seq, *path, seq_index, result, resolved);
    result.sequences.push_back(seq);
    committed_paths.push_back(*path);
    committed_indices.push_back(seq_index);
    for (const std::size_t j : resolved)
      if (!generated_cache_.contains(faults[j]))
        tentative.emplace_back(j, committed_paths.size() - 1);
    notify_resolved(i);
    for (const std::size_t j : resolved) notify_resolved(j);
    emit_progress(RunPhase::ThreePhase);
  }

  // Attribution fix-up for the tentatively covered faults.  A from-scratch
  // run knows every fault's search status before its first commit, so a
  // search-exhausted fault is FaultSim-attributed to the earliest commit
  // its *exact* replay detects — which can precede the flagged commit that
  // covered it here (the ternary screen is conservative).  Replay the
  // earlier commits; only if one detects does the search status matter, and
  // only then is the (memoized, per-fault-pure, main-thread — so still
  // deterministic) search actually paid for.
  for (const auto& [j, covered_at] : tentative) {
    std::optional<int> earlier;
    for (std::size_t c = 0; c < covered_at; ++c) {
      if (replays_detect(j, c)) {
        earlier = committed_indices[c];
        break;
      }
    }
    if (!earlier) continue;  // attribution already matches from-scratch
    auto it = generated_cache_.find(faults[j]);
    if (it == generated_cache_.end())
      it = generated_cache_
               .emplace(faults[j], generate_test_on(*shard0_, faults[j]))
               .first;
    if (!it->second.sequence.has_value())
      result.outcomes[j].sequence_index = *earlier;
  }
  result.stats.three_phase_seconds = three_phase_timer.seconds();

  // Surface which uncovered faults were cap-truncated ("gave up") vs
  // genuinely search-exhausted — the distinction bench coverage floors need
  // to tell a redundant design from a budget blowout.  Cancelled runs may
  // leave faults unsearched; those stay gave_up = false (they were never
  // attempted, a later run will search them).
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (result.outcomes[i].covered_by != CoveredBy::None) continue;
    if (result.outcomes[i].proven_redundant) continue;
    const auto it = generated_cache_.find(faults[i]);
    if (it != generated_cache_.end() && it->second.gave_up) {
      result.outcomes[i].gave_up = true;
      ++result.stats.gave_up;
    }
  }

  result.stats.covered = result.stats.by_random + result.stats.by_three_phase +
                         result.stats.by_fault_sim;
  result.stats.undetected = result.stats.total_faults - result.stats.covered;
  result.stats.seconds = total_timer.seconds();
  if (observer != nullptr) {
    observer->on_phase(RunPhase::Done);
    emit_progress(RunPhase::Done);
  }
  return result;
}

void write_test_program(std::ostream& out, const Netlist& netlist,
                        const AtpgEngine& engine,
                        const std::vector<TestSequence>& sequences) {
  out << "# xatpg synchronous test program for '" << netlist.name() << "'\n";
  out << ".inputs";
  for (const SignalId in : netlist.inputs())
    out << " " << netlist.signal_name(in);
  out << "\n.outputs";
  for (const SignalId po : netlist.outputs())
    out << " " << netlist.signal_name(po);
  out << "\n";
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    const auto path = engine.follow(sequences[s]);
    XATPG_CHECK_MSG(path.has_value(), "sequence is not CSSG-valid");
    out << ".sequence " << s << "  # apply from reset\n";
    for (std::size_t t = 0; t < sequences[s].vectors.size(); ++t) {
      for (const bool b : sequences[s].vectors[t]) out << (b ? '1' : '0');
      out << " / ";
      const auto& state = engine.graph().states[(*path)[t + 1]];
      for (const SignalId po : netlist.outputs()) out << (state[po] ? '1' : '0');
      out << "\n";
    }
  }
  out << ".end\n";
}

}  // namespace xatpg
