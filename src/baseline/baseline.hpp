// The §6.1 comparator: Banerjee/Chakradhar/Roy-style synchronous test
// generation for asynchronous circuits.
//
// Their method cuts feedback loops with *virtual synchronous flip-flops*,
// runs standard synchronous sequential ATPG on the cut model, and validates
// the resulting vectors afterwards by deterministic (zero/unit-delay)
// simulation of the real asynchronous circuit.  The paper's criticism —
// which this module reproduces experimentally — is that such validation
// catches oscillation but is *blind to non-confluence*: a deterministic
// simulator picks one interleaving, so a racy vector can pass validation
// while a real device may settle elsewhere.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/engine.hpp"
#include "atpg/fault.hpp"
#include "netlist/netlist.hpp"

namespace xatpg {

/// Synchronous (cut) model of an asynchronous netlist: every feedback pin
/// and every state-holding gate's own-value dependence is replaced by a
/// virtual flip-flop.
class VffModel {
 public:
  explicit VffModel(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }
  /// Number of virtual flip-flops (cut pins + state-holding gates).
  std::size_t num_state_bits() const {
    return cuts_.size() + holding_gates_.size();
  }

  /// Combinational evaluation: compute all signal values from primary
  /// inputs and the virtual-FF outputs.
  std::vector<bool> eval(const std::vector<bool>& input_values,
                         const std::vector<bool>& state_bits) const;

  /// Virtual-FF next-state values given the evaluated signals.
  std::vector<bool> next_state(const std::vector<bool>& signals) const;

  /// State bits corresponding to an asynchronous circuit state.
  std::vector<bool> state_bits_of(const std::vector<bool>& async_state) const;

 private:
  const Netlist* netlist_;
  std::vector<FeedbackArc> cuts_;
  std::vector<SignalId> holding_gates_;
  std::vector<SignalId> topo_;
};

struct BaselineOptions {
  std::size_t depth_cap = 24;          ///< product-machine BFS depth
  std::size_t node_cap = 50000;        ///< product-machine BFS nodes
  std::size_t unit_delay_bound = 256;  ///< validation settle bound
  std::size_t k_exact = 24;            ///< exact-race audit bound
};

struct BaselineFaultResult {
  Fault fault;
  bool generated = false;  ///< synchronous ATPG produced a sequence
  bool validated = false;  ///< unit-delay validation accepted it
  bool racy = false;       ///< exact analysis: some vector is non-confluent
  TestSequence sequence;
};

struct BaselineResult {
  std::vector<BaselineFaultResult> per_fault;
  std::size_t generated = 0;
  std::size_t validated = 0;
  std::size_t optimistic = 0;  ///< validated but racy (the §6.1 gap)
  double seconds = 0;
};

/// Run the baseline flow on a fault universe.
BaselineResult run_baseline(const Netlist& netlist,
                            const std::vector<bool>& reset_state,
                            const std::vector<Fault>& faults,
                            const BaselineOptions& options = {});

/// Deterministic unit-delay settling: all excited gates switch
/// simultaneously each step.  Returns the stable state, or nullopt on
/// oscillation (state repetition / bound exhaustion).  This is the
/// validation model of [Banerjee et al.].
std::optional<std::vector<bool>> unit_delay_settle(
    const Netlist& netlist, const std::vector<bool>& from,
    const std::vector<bool>& input_values, std::size_t bound = 256);

}  // namespace xatpg
