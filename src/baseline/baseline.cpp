#include "baseline/baseline.hpp"

#include <deque>
#include <map>
#include <set>

#include "sim/explicit.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace xatpg {

VffModel::VffModel(const Netlist& netlist) : netlist_(&netlist) {
  cuts_ = netlist.feedback_arcs();
  for (SignalId s = 0; s < netlist.num_signals(); ++s)
    if (is_state_holding(netlist.gate(s).type)) holding_gates_.push_back(s);
  topo_ = netlist.topo_order(cuts_);
}

std::vector<bool> VffModel::eval(const std::vector<bool>& input_values,
                                 const std::vector<bool>& state_bits) const {
  XATPG_CHECK(input_values.size() == netlist_->inputs().size());
  XATPG_CHECK(state_bits.size() == num_state_bits());

  // Cut-pin overrides: (gate, pin) -> state bit index.
  std::map<std::pair<SignalId, std::size_t>, std::size_t> cut_bit;
  for (std::size_t i = 0; i < cuts_.size(); ++i)
    cut_bit[{cuts_[i].gate, cuts_[i].pin}] = i;
  std::map<SignalId, std::size_t> own_bit;
  for (std::size_t i = 0; i < holding_gates_.size(); ++i)
    own_bit[holding_gates_[i]] = cuts_.size() + i;

  std::vector<bool> values(netlist_->num_signals(), false);
  for (std::size_t i = 0; i < input_values.size(); ++i)
    values[netlist_->inputs()[i]] = input_values[i];

  for (const SignalId s : topo_) {
    const Gate& g = netlist_->gate(s);
    if (g.type == GateType::Input) continue;
    std::vector<bool> fanin_vals;
    fanin_vals.reserve(g.fanins.size());
    for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
      auto it = cut_bit.find({s, pin});
      fanin_vals.push_back(it != cut_bit.end() ? state_bits[it->second]
                                               : values[g.fanins[pin]]);
    }
    const bool own = own_bit.count(s) ? state_bits[own_bit.at(s)]
                                      : static_cast<bool>(values[s]);
    values[s] = eval_gate(g, fanin_vals, own, BoolOps{});
  }
  return values;
}

std::vector<bool> VffModel::next_state(const std::vector<bool>& signals) const {
  std::vector<bool> bits;
  bits.reserve(num_state_bits());
  for (const FeedbackArc& cut : cuts_)
    bits.push_back(signals[netlist_->gate(cut.gate).fanins[cut.pin]]);
  for (const SignalId s : holding_gates_) bits.push_back(signals[s]);
  return bits;
}

std::vector<bool> VffModel::state_bits_of(
    const std::vector<bool>& async_state) const {
  return next_state(async_state);
}

std::optional<std::vector<bool>> unit_delay_settle(
    const Netlist& netlist, const std::vector<bool>& from,
    const std::vector<bool>& input_values, std::size_t bound) {
  std::vector<bool> state = from;
  for (std::size_t i = 0; i < input_values.size(); ++i)
    state[netlist.inputs()[i]] = input_values[i];
  std::set<std::vector<bool>> seen;
  for (std::size_t step = 0; step < bound; ++step) {
    if (!seen.insert(state).second) return std::nullopt;  // cycle
    std::vector<bool> next = state;
    bool changed = false;
    for (SignalId s = 0; s < netlist.num_signals(); ++s) {
      if (netlist.is_input(s)) continue;
      const bool target = netlist.eval_gate_bool(s, state);
      if (target != state[s]) {
        next[s] = target;
        changed = true;
      }
    }
    if (!changed) return state;
    state = std::move(next);
  }
  return std::nullopt;  // did not settle within the bound
}

namespace {

/// Synchronous product-machine BFS on the virtual-FF models: find the
/// shortest input sequence making a primary output differ.
std::optional<TestSequence> sync_atpg(const Netlist& good_netlist,
                                      const Netlist& faulty_netlist,
                                      const std::vector<bool>& good_reset,
                                      const std::vector<bool>& faulty_reset,
                                      const BaselineOptions& options) {
  const VffModel good(good_netlist);
  const VffModel faulty(faulty_netlist);
  const std::size_t m = good_netlist.inputs().size();
  XATPG_CHECK_MSG(m <= 12, "too many inputs for explicit synchronous ATPG");

  struct Node {
    std::vector<bool> good_bits, faulty_bits;
    std::vector<std::vector<bool>> path;
  };
  std::deque<Node> queue;
  std::set<std::pair<std::vector<bool>, std::vector<bool>>> visited;

  Node root{good.state_bits_of(good_reset), faulty.state_bits_of(faulty_reset),
            {}};
  visited.insert({root.good_bits, root.faulty_bits});
  queue.push_back(std::move(root));

  std::size_t expanded = 0;
  while (!queue.empty()) {
    const Node node = std::move(queue.front());
    queue.pop_front();
    if (node.path.size() >= options.depth_cap) continue;
    for (std::uint64_t bits = 0; bits < (1ull << m); ++bits) {
      if (++expanded > options.node_cap) return std::nullopt;
      std::vector<bool> vec(m);
      for (std::size_t i = 0; i < m; ++i) vec[i] = (bits >> i) & 1;
      const auto good_vals = good.eval(vec, node.good_bits);
      const auto faulty_vals = faulty.eval(
          map_input_vector(good_netlist, faulty_netlist, vec),
          node.faulty_bits);
      auto path = node.path;
      path.push_back(vec);
      // Observable difference at a primary output?
      bool differs = false;
      for (const SignalId po : good_netlist.outputs())
        if (good_vals[po] !=
            faulty_vals[faulty_netlist.signal(good_netlist.signal_name(po))]) {
          differs = true;
          break;
        }
      if (differs) {
        TestSequence seq;
        seq.vectors = std::move(path);
        return seq;
      }
      Node succ{good.next_state(good_vals), faulty.next_state(faulty_vals),
                std::move(path)};
      if (visited.insert({succ.good_bits, succ.faulty_bits}).second)
        queue.push_back(std::move(succ));
    }
  }
  return std::nullopt;
}

}  // namespace

BaselineResult run_baseline(const Netlist& netlist,
                            const std::vector<bool>& reset_state,
                            const std::vector<Fault>& faults,
                            const BaselineOptions& options) {
  Timer timer;
  BaselineResult result;
  result.per_fault.reserve(faults.size());

  for (const Fault& fault : faults) {
    BaselineFaultResult fr;
    fr.fault = fault;
    const Netlist faulty = apply_fault(netlist, fault);
    const std::vector<bool> faulty_reset =
        fault_initial_state(netlist, fault, reset_state);

    const auto seq =
        sync_atpg(netlist, faulty, reset_state, faulty_reset, options);
    if (seq) {
      fr.generated = true;
      fr.sequence = *seq;
      ++result.generated;

      // Validation à la [2]: deterministic unit-delay re-simulation of the
      // real asynchronous circuits; accepted if everything settles and the
      // mismatch is still observed.
      bool ok = true;
      bool observed = false;
      std::vector<bool> good_state = reset_state;
      std::vector<bool> faulty_state = faulty_reset;
      if (auto settled = unit_delay_settle(
              faulty, faulty_state,
              [&] {
                std::vector<bool> in;
                for (const SignalId s : faulty.inputs())
                  in.push_back(faulty_state[s]);
                return in;
              }(),
              options.unit_delay_bound)) {
        faulty_state = *settled;
      } else {
        ok = false;
      }
      for (const auto& vec : fr.sequence.vectors) {
        if (!ok) break;
        const auto g = unit_delay_settle(netlist, good_state, vec,
                                         options.unit_delay_bound);
        const auto f =
            unit_delay_settle(faulty, faulty_state,
                              map_input_vector(netlist, faulty, vec),
                              options.unit_delay_bound);
        if (!g || !f) {
          ok = false;  // oscillation caught by validation
          break;
        }
        good_state = *g;
        faulty_state = *f;
        for (const SignalId po : netlist.outputs())
          if (good_state[po] !=
              faulty_state[faulty.signal(netlist.signal_name(po))])
            observed = true;
      }
      fr.validated = ok && observed;
      if (fr.validated) ++result.validated;

      // Exact-race audit (what validation cannot see): replay the sequence
      // on the *good* circuit with exhaustive interleaving; flag vectors
      // whose settling is non-confluent or unbounded.
      if (fr.validated) {
        std::vector<bool> state = reset_state;
        for (const auto& vec : fr.sequence.vectors) {
          const auto exact =
              explore_settling(netlist, state, vec, options.k_exact);
          if (!exact.confluent()) {
            fr.racy = true;
            break;
          }
          state = *exact.stable_states.begin();
        }
        if (fr.racy) ++result.optimistic;
      }
    }
    result.per_fault.push_back(std::move(fr));
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace xatpg
