// `xatpg bench --serve`: measure the serve daemon (src/serve) end to end —
// admission on the reader thread, queue hand-off, worker execution, result
// caching and frame serialization — through a real socketpair byte stream,
// exactly the path a unix-socket client exercises.  Two passes over the
// corpus: cold (fresh daemon, every request a full engine run) and cached
// (same requests again, every one must hit the result cache).  Per-request
// latency is submit-to-result wall clock; the record carries requests/sec
// plus p50/p99 for both passes.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/random_netlist.hpp"
#include "perf/perf.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace xatpg::perf {

namespace {

using Clock = std::chrono::steady_clock;

/// One submit line for a corpus entry (id doubles as the job id; pass makes
/// repeat-pass ids unique so the daemon's dup-id admission check stays out
/// of the way).
std::string submit_line(const CorpusEntry& entry, std::size_t pass) {
  std::ostringstream os;
  os << "{\"op\":\"submit\",\"id\":\"" << json::escape(entry.id) << "#" << pass
     << "\",\"circuit\":";
  switch (entry.kind) {
    case CorpusEntry::Kind::SiBenchmark:
      os << "{\"format\":\"benchmark\",\"name\":\"" << json::escape(entry.name)
         << "\",\"style\":\"si\"}";
      break;
    case CorpusEntry::Kind::BdBenchmark:
      os << "{\"format\":\"benchmark\",\"name\":\"" << json::escape(entry.name)
         << "\",\"style\":\"bd\"}";
      break;
    case CorpusEntry::Kind::RandomNetlist: {
      RandomNetlistOptions shape;
      shape.num_inputs = entry.rand_inputs;
      shape.num_gates = entry.rand_gates;
      os << "{\"format\":\"xnl\",\"text\":\""
         << json::escape(write_xnl_string(random_netlist(entry.seed, shape)))
         << "\"}";
      break;
    }
    case CorpusEntry::Kind::BenchText:
      os << "{\"format\":\"bench\",\"text\":\"" << json::escape(entry.text)
         << "\"}";
      break;
  }
  os << ",\"faults\":\"both\"}\n";
  return os.str();
}

/// Minimal blocking NDJSON client half for an in-process daemon.
class BenchClient {
 public:
  explicit BenchClient(int fd) : fd_(fd) {}
  ~BenchClient() { ::close(fd_); }

  void send(const std::string& line) {
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
      XATPG_CHECK_MSG(n > 0, "serve bench: client write failed");
      off += static_cast<std::size_t>(n);
    }
  }

  std::string next_line() {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[65536];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      XATPG_CHECK_MSG(n > 0, "serve bench: daemon stream ended unexpectedly");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Submit, wait for the result frame, and return (latency_ms, cached).
  std::pair<double, bool> timed_request(const std::string& line) {
    const Clock::time_point start = Clock::now();
    send(line);
    while (true) {
      const json::Value frame = json::parse(next_line());
      const std::string type = json::string_field(frame, "type");
      if (type == "ack") continue;
      XATPG_CHECK_MSG(type == "result",
                      "serve bench: unexpected '" << type << "' frame");
      const std::chrono::duration<double, std::milli> elapsed =
          Clock::now() - start;
      return {elapsed.count(), json::bool_field(frame, "cached", false)};
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

double percentile(std::vector<double> values_ms, double p) {
  if (values_ms.empty()) return 0;
  std::sort(values_ms.begin(), values_ms.end());
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(values_ms.size() - 1) + 0.5);
  return values_ms[std::min(index, values_ms.size() - 1)];
}

}  // namespace

ServeRecord run_serve_bench(const std::vector<CorpusEntry>& corpus,
                            const AtpgOptions& options,
                            std::size_t cached_repeats,
                            std::ostream* progress) {
  XATPG_CHECK_MSG(!corpus.empty(), "serve bench: empty corpus");
  serve::ServeConfig config;
  config.workers = 1;  // latency, not queueing, is what this measures
  config.queue_capacity = 4;
  config.cache_bytes = 64u << 20;  // the whole corpus must stay resident
  config.defaults = options;
  serve::Server server(config);
  server.start();

  int sv[2] = {-1, -1};
  XATPG_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                  "serve bench: socketpair failed");
  server.attach(sv[0], sv[0], /*owns_fds=*/true);
  BenchClient client(sv[1]);

  ServeRecord record;
  record.circuits = corpus.size();
  record.workers = config.workers;

  std::vector<double> cold_ms;
  cold_ms.reserve(corpus.size());
  const Clock::time_point cold_start = Clock::now();
  for (const CorpusEntry& entry : corpus) {
    const auto [ms, cached] = client.timed_request(submit_line(entry, 0));
    XATPG_CHECK_MSG(!cached, "serve bench: cold request for '"
                                 << entry.id << "' hit the cache");
    cold_ms.push_back(ms);
    if (progress)
      *progress << "[serve] cold " << entry.id << ": " << ms << " ms\n";
  }
  const std::chrono::duration<double> cold_wall = Clock::now() - cold_start;

  std::vector<double> cached_ms;
  cached_ms.reserve(corpus.size() * cached_repeats);
  const Clock::time_point cached_start = Clock::now();
  for (std::size_t pass = 1; pass <= cached_repeats; ++pass) {
    for (const CorpusEntry& entry : corpus) {
      const auto [ms, cached] = client.timed_request(submit_line(entry, pass));
      XATPG_CHECK_MSG(cached, "serve bench: repeat request for '"
                                  << entry.id << "' missed the cache");
      cached_ms.push_back(ms);
    }
  }
  const std::chrono::duration<double> cached_wall = Clock::now() - cached_start;

  server.shutdown();

  record.requests = cold_ms.size() + cached_ms.size();
  record.cold_rps =
      static_cast<double>(cold_ms.size()) / std::max(cold_wall.count(), 1e-9);
  record.cold_p50_ms = percentile(cold_ms, 0.50);
  record.cold_p99_ms = percentile(cold_ms, 0.99);
  record.cached_rps = static_cast<double>(cached_ms.size()) /
                      std::max(cached_wall.count(), 1e-9);
  record.cached_p50_ms = percentile(cached_ms, 0.50);
  record.cached_p99_ms = percentile(cached_ms, 0.99);
  if (progress)
    *progress << "[serve] " << record.requests << " requests over "
              << record.circuits << " circuits: cold " << record.cold_rps
              << " req/s (p50 " << record.cold_p50_ms << " ms, p99 "
              << record.cold_p99_ms << " ms), cached " << record.cached_rps
              << " req/s (p50 " << record.cached_p50_ms << " ms, p99 "
              << record.cached_p99_ms << " ms)\n";
  return record;
}

}  // namespace xatpg::perf
