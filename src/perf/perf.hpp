// Corpus performance harness + machine-readable perf records + regression
// comparator.  `xatpg bench` (tools/xatpg_cli.cpp) is the front end; the CI
// perf-smoke job runs it on every push and diffs the produced record against
// the checked-in bench/baseline.json.
//
// The corpus covers three workload families, all driven through the public
// Session facade:
//   * every named benchmark reconstruction, in both synthesis styles
//     (Table 1 speed-independent, Table 2 hazard-free bounded-delay);
//   * seeded random netlist families (deterministic: same seed, same
//     circuit, same counts on every platform);
//   * embedded ISCAS-style .bench circuits (combinational workloads with
//     shapes the handshake corpus does not produce: NAND meshes, parity
//     trees, mux/decode logic).
//
// A record is versioned JSON (schema below).  Everything the comparator
// gates on — coverage and BDD node counts — is bit-deterministic, so the
// gate has zero flake surface; CPU times are recorded too but only compared
// between records carrying the same host tag (a GitHub runner and a laptop
// are not comparable machines).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "xatpg/options.hpp"

namespace xatpg::perf {

// Schema history:
//   1 — initial record: per-circuit coverage/nodes/CPU + host/threads tags.
//   2 — adds per-circuit `gave_up` (cap-truncated searches, so coverage
//       floors can tell "searched and redundant" from "gave up"), the
//       `host_cores` tag (hardware threads of the recording machine — a
//       single-core host cannot demonstrate scaling), and the optional
//       `sweep` array (per-thread-count corpus CPU with speedup /
//       parallel-efficiency columns).  Old parsers ignore the new keys;
//       this parser defaults them when reading schema-1 records.
//   3 — base/delta-aware memory accounting: per-circuit `base_nodes` (the
//       frozen shared arena, counted once however many workers ran) and
//       `delta_peak` (shard 0's private-arena watermark), plus
//       `peak_resident_nodes` (base once + every shard's delta peak — the
//       true resident footprint; schema-2's per-shard peaks implicitly
//       multiplied the shared substrate by the worker count).  Sweep points
//       carry `peak_resident_nodes` too, which arms the comparator's
//       cross-thread memory gate.  All doubles are now emitted through a
//       finite-checked max_digits10 formatter (schema-2 records could emit
//       invalid `nan`/`inf` tokens and drop digits on round-trip).  The
//       parser defaults the new keys when reading schema-1/2 records.
//   4 — adds the optional `serve` object (`xatpg bench --serve`): the
//       NDJSON daemon driven over the corpus, requests/sec plus p50/p99
//       per-request latency for a cold pass (every request an engine run)
//       and a cached pass (every request a result-cache hit).  Absent
//       unless the serve benchmark ran; the parser defaults it when
//       reading schema-1/2/3 records.
inline constexpr int kSchemaVersion = 4;
/// Identifies the kernel generation a record was produced by (recorded in
/// the JSON so a cross-kernel diff is visible in the comparator output).
inline constexpr const char* kKernelName = "complement-edge";

// --- corpus -----------------------------------------------------------------

struct CorpusEntry {
  enum class Kind : std::uint8_t {
    SiBenchmark,    ///< named reconstruction, speed-independent synthesis
    BdBenchmark,    ///< named reconstruction, bounded-delay synthesis
    RandomNetlist,  ///< seeded generator family member
    BenchText,      ///< embedded ISCAS-style .bench source
  };
  Kind kind;
  std::string id;    ///< unique record key, e.g. "si/chu150", "rand/s11"
  std::string name;  ///< benchmark name / circuit label
  std::uint64_t seed = 0;               ///< RandomNetlist: generator seed
  std::size_t rand_inputs = 3;          ///< RandomNetlist: input count
  std::size_t rand_gates = 8;           ///< RandomNetlist: gate count
  std::string text;                     ///< BenchText: the .bench source
};

/// The full default corpus: all Table 1 + Table 2 names, the seeded random
/// families, and the embedded .bench circuits.
std::vector<CorpusEntry> default_corpus();

// --- records ----------------------------------------------------------------

struct CircuitRecord {
  std::string id;
  std::size_t signals = 0, pins = 0;
  /// Input- plus output-stuck universes, summed (the paper's two tables).
  std::size_t faults_total = 0, faults_covered = 0;
  double coverage = 0;  ///< faults_covered / faults_total
  /// Uncovered faults whose 3-phase search was truncated by a resource cap
  /// (vs genuinely search-exhausted/redundant).  0 on a redundant-by-design
  /// circuit means the low coverage is real, not a silent cap blowout.
  std::size_t gave_up = 0;
  std::size_t sequences = 0;
  double cpu_ms = 0;  ///< wall clock from before Session construction
  /// Shard 0's resident watermark: base_nodes + delta_peak (schema 1/2:
  /// the monolithic manager's allocated-node watermark).
  std::size_t peak_nodes = 0;
  std::size_t live_nodes = 0;       ///< live after a final collection
  /// Frozen shared-base arena size — identical for every worker shard, so
  /// it must be counted ONCE per circuit, never once per shard (0 on
  /// schema-1/2 records).
  std::size_t base_nodes = 0;
  /// Shard 0's private delta-arena watermark (0 on schema-1/2 records).
  std::size_t delta_peak = 0;
  /// True resident footprint across every shard that ran: base_nodes once
  /// plus each shard's delta peak (0 on schema-1/2 records).
  std::size_t peak_resident_nodes = 0;
  std::size_t post_sift_nodes = 0;  ///< live after one explicit sift pass
  std::size_t reorders = 0;
  std::size_t cache_lookups = 0, cache_hits = 0;
  double cache_hit_rate = 0;
  double unique_load = 0;
};

/// One threads-sweep measurement point: the whole corpus re-run at a fixed
/// thread count.  speedup/efficiency are relative to the sweep's own
/// threads=1 point, so they are meaningful even on records whose absolute
/// CPU numbers are not comparable across hosts.
struct SweepPoint {
  std::size_t threads = 0;
  double cpu_ms = 0;      ///< corpus total at this thread count
  double speedup = 0;     ///< threads=1 cpu_ms / this cpu_ms
  double efficiency = 0;  ///< speedup / threads (1.0 = perfect scaling)
  /// Corpus total of per-circuit peak_resident_nodes at this thread count
  /// (base arenas once + every shard's delta peak).  Base arenas are
  /// bit-deterministic; delta peaks shift by a fraction of a percent with
  /// the steal interleaving, far inside the comparator's memory-gate
  /// headroom (0 on schema-1/2 records — the gate skips those).
  std::size_t peak_resident_nodes = 0;
};

/// `xatpg bench --serve`: the serve daemon measured end to end (admission,
/// queue, worker execution, cache, frame serialization) through real
/// socketpair byte streams.  Latencies are submit-to-result per request.
struct ServeRecord {
  std::size_t requests = 0;  ///< total requests measured (0 = no serve bench)
  std::size_t circuits = 0;  ///< distinct corpus circuits driven
  std::size_t workers = 0;   ///< daemon worker-pool size
  /// Cold pass: fresh daemon, every request pays a full engine run.
  double cold_rps = 0;
  double cold_p50_ms = 0;
  double cold_p99_ms = 0;
  /// Cached pass: same circuits re-requested, every request a cache hit.
  double cached_rps = 0;
  double cached_p50_ms = 0;
  double cached_p99_ms = 0;
};

struct BenchRecord {
  int schema = kSchemaVersion;
  std::string kernel = kKernelName;
  /// Free-form machine tag; compare() only gates CPU between equal tags.
  std::string host;
  std::size_t threads = 1;
  /// Hardware threads of the recording machine (0 = unknown, schema-1
  /// records).  A sweep recorded with host_cores = 1 cannot show real
  /// scaling — workers time-slice one core — and compare() treats its
  /// efficiency columns as informational only.
  std::size_t host_cores = 0;
  std::vector<CircuitRecord> circuits;
  /// Threads-sweep scaling curve (empty unless recorded with
  /// `xatpg bench --threads-sweep`).
  std::vector<SweepPoint> sweep;
  /// Serve-daemon throughput/latency (requests == 0 unless recorded with
  /// `xatpg bench --serve`).
  ServeRecord serve;

  std::size_t total_faults() const;
  std::size_t total_covered() const;
  std::size_t total_gave_up() const;
  std::size_t total_peak_nodes() const;
  double total_cpu_ms() const;
};

/// Run one corpus entry through a fresh Session.  Throws CheckError when the
/// entry does not build or the run fails — the harness is in-tree tooling
/// and a broken corpus is a bug, not an input error.
CircuitRecord run_entry(const CorpusEntry& entry, const AtpgOptions& options);

/// Run the corpus in order.  `progress` (optional) receives one line per
/// circuit as it completes.
BenchRecord run_corpus(const std::vector<CorpusEntry>& corpus,
                       const AtpgOptions& options, const std::string& host_tag,
                       std::ostream* progress = nullptr);

/// Run the corpus once per thread count in `thread_counts` and record the
/// scaling curve.  The returned record's `circuits` come from the FIRST
/// point (canonically threads=1); every later point must reproduce the
/// same per-circuit coverage — a live byte-identity cross-check of the
/// work-stealing scheduler — or the harness throws CheckError.
BenchRecord run_sweep(const std::vector<CorpusEntry>& corpus,
                      const AtpgOptions& options, const std::string& host_tag,
                      const std::vector<std::size_t>& thread_counts,
                      std::ostream* progress = nullptr);

/// Drive an in-process serve daemon (src/serve) over the corpus through a
/// real socketpair byte stream: one cold pass (every request a full engine
/// run) then `cached_repeats` passes of the same requests (every one a
/// result-cache hit — verified: a miss on the repeat pass throws
/// CheckError).  Implemented in serve_bench.cpp.
ServeRecord run_serve_bench(const std::vector<CorpusEntry>& corpus,
                            const AtpgOptions& options,
                            std::size_t cached_repeats = 4,
                            std::ostream* progress = nullptr);

// --- JSON -------------------------------------------------------------------

/// Escape a string for embedding in a JSON double-quoted literal (shared by
/// the record writer and the CLI's run --json output).
std::string json_escape(const std::string& s);

/// Format a double as a valid JSON number token: non-finite values — which
/// operator<< would emit as the invalid tokens `nan`/`inf` — clamp to 0,
/// and finite values print with max_digits10 precision so every record
/// round-trips parse(emit(x)) == x bit-exactly.  Shared by the record
/// writer and the CLI's run --json output.
std::string json_double(double value);

void write_json(const BenchRecord& record, std::ostream& out);
std::string to_json(const BenchRecord& record);

/// Parse a record produced by write_json (unknown keys are ignored, so newer
/// records stay readable by older comparators).  Throws CheckError with a
/// position diagnostic on malformed input.
BenchRecord parse_record(const std::string& json_text);

// --- comparator ---------------------------------------------------------------

struct CompareOptions {
  /// A circuit fails when current peak nodes exceed baseline * (1 + this).
  double max_node_regression = 0.25;
  /// Same bound for CPU — applied per circuit (above min_cpu_ms) and to the
  /// corpus total, but only when both records carry the same host tag.
  double max_cpu_regression = 0.25;
  /// Per-circuit CPU gates ignore circuits faster than this in the baseline
  /// (sub-threshold times are dominated by noise, not by the code).
  double min_cpu_ms = 25.0;
  /// A sweep point fails when its speedup falls below baseline speedup *
  /// (1 - this).  Only applied between records with the same host tag AND
  /// the same host_cores (a 1-core and a 4-core runner have incomparable
  /// curves), and never against a host_cores = 1 baseline point (no real
  /// parallelism to regress).
  double max_speedup_regression = 0.25;
  /// Cross-thread memory gate, applied WITHIN the current record's sweep: a
  /// point at >= 4 threads fails when its peak_resident_nodes exceed this
  /// fraction of threads x the threads=1 point's — i.e. 0.6 locks in a
  /// >= 40% resident-memory win over the old design's N private shards
  /// (whose footprint scales as threads x the single-shard peak).  The
  /// shared-base design measures ~0.27 at threads=4, so the sub-percent
  /// jitter delta peaks pick up from the steal interleaving cannot reach
  /// the bound.  Points without the schema-3 field (old records) skip.
  double max_peak_resident_frac = 0.6;
};

struct Comparison {
  bool ok = true;
  std::vector<std::string> failures;  ///< each one is a gate violation
  std::vector<std::string> notes;     ///< informational (improvements, skips)
};

/// Diff `current` against `baseline`.  Gates: every baseline circuit must be
/// present with an unchanged fault universe, coverage must not drop, peak
/// nodes and (host tags permitting) CPU must stay within the regression
/// bounds.  Circuits only in `current` are reported as notes.
Comparison compare(const BenchRecord& baseline, const BenchRecord& current,
                   const CompareOptions& options = {});

}  // namespace xatpg::perf
