// Corpus performance harness + machine-readable perf records + regression
// comparator.  `xatpg bench` (tools/xatpg_cli.cpp) is the front end; the CI
// perf-smoke job runs it on every push and diffs the produced record against
// the checked-in bench/baseline.json.
//
// The corpus covers three workload families, all driven through the public
// Session facade:
//   * every named benchmark reconstruction, in both synthesis styles
//     (Table 1 speed-independent, Table 2 hazard-free bounded-delay);
//   * seeded random netlist families (deterministic: same seed, same
//     circuit, same counts on every platform);
//   * embedded ISCAS-style .bench circuits (combinational workloads with
//     shapes the handshake corpus does not produce: NAND meshes, parity
//     trees, mux/decode logic).
//
// A record is versioned JSON (schema below).  Everything the comparator
// gates on — coverage and BDD node counts — is bit-deterministic, so the
// gate has zero flake surface; CPU times are recorded too but only compared
// between records carrying the same host tag (a GitHub runner and a laptop
// are not comparable machines).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "xatpg/options.hpp"

namespace xatpg::perf {

// Schema history:
//   1 — initial record: per-circuit coverage/nodes/CPU + host/threads tags.
//   2 — adds per-circuit `gave_up` (cap-truncated searches, so coverage
//       floors can tell "searched and redundant" from "gave up"), the
//       `host_cores` tag (hardware threads of the recording machine — a
//       single-core host cannot demonstrate scaling), and the optional
//       `sweep` array (per-thread-count corpus CPU with speedup /
//       parallel-efficiency columns).  Old parsers ignore the new keys;
//       this parser defaults them when reading schema-1 records.
inline constexpr int kSchemaVersion = 2;
/// Identifies the kernel generation a record was produced by (recorded in
/// the JSON so a cross-kernel diff is visible in the comparator output).
inline constexpr const char* kKernelName = "complement-edge";

// --- corpus -----------------------------------------------------------------

struct CorpusEntry {
  enum class Kind : std::uint8_t {
    SiBenchmark,    ///< named reconstruction, speed-independent synthesis
    BdBenchmark,    ///< named reconstruction, bounded-delay synthesis
    RandomNetlist,  ///< seeded generator family member
    BenchText,      ///< embedded ISCAS-style .bench source
  };
  Kind kind;
  std::string id;    ///< unique record key, e.g. "si/chu150", "rand/s11"
  std::string name;  ///< benchmark name / circuit label
  std::uint64_t seed = 0;               ///< RandomNetlist: generator seed
  std::size_t rand_inputs = 3;          ///< RandomNetlist: input count
  std::size_t rand_gates = 8;           ///< RandomNetlist: gate count
  std::string text;                     ///< BenchText: the .bench source
};

/// The full default corpus: all Table 1 + Table 2 names, the seeded random
/// families, and the embedded .bench circuits.
std::vector<CorpusEntry> default_corpus();

// --- records ----------------------------------------------------------------

struct CircuitRecord {
  std::string id;
  std::size_t signals = 0, pins = 0;
  /// Input- plus output-stuck universes, summed (the paper's two tables).
  std::size_t faults_total = 0, faults_covered = 0;
  double coverage = 0;  ///< faults_covered / faults_total
  /// Uncovered faults whose 3-phase search was truncated by a resource cap
  /// (vs genuinely search-exhausted/redundant).  0 on a redundant-by-design
  /// circuit means the low coverage is real, not a silent cap blowout.
  std::size_t gave_up = 0;
  std::size_t sequences = 0;
  double cpu_ms = 0;  ///< wall clock from before Session construction
  std::size_t peak_nodes = 0;       ///< allocated-node watermark (shard 0)
  std::size_t live_nodes = 0;       ///< live after a final collection
  std::size_t post_sift_nodes = 0;  ///< live after one explicit sift pass
  std::size_t reorders = 0;
  std::size_t cache_lookups = 0, cache_hits = 0;
  double cache_hit_rate = 0;
  double unique_load = 0;
};

/// One threads-sweep measurement point: the whole corpus re-run at a fixed
/// thread count.  speedup/efficiency are relative to the sweep's own
/// threads=1 point, so they are meaningful even on records whose absolute
/// CPU numbers are not comparable across hosts.
struct SweepPoint {
  std::size_t threads = 0;
  double cpu_ms = 0;      ///< corpus total at this thread count
  double speedup = 0;     ///< threads=1 cpu_ms / this cpu_ms
  double efficiency = 0;  ///< speedup / threads (1.0 = perfect scaling)
};

struct BenchRecord {
  int schema = kSchemaVersion;
  std::string kernel = kKernelName;
  /// Free-form machine tag; compare() only gates CPU between equal tags.
  std::string host;
  std::size_t threads = 1;
  /// Hardware threads of the recording machine (0 = unknown, schema-1
  /// records).  A sweep recorded with host_cores = 1 cannot show real
  /// scaling — workers time-slice one core — and compare() treats its
  /// efficiency columns as informational only.
  std::size_t host_cores = 0;
  std::vector<CircuitRecord> circuits;
  /// Threads-sweep scaling curve (empty unless recorded with
  /// `xatpg bench --threads-sweep`).
  std::vector<SweepPoint> sweep;

  std::size_t total_faults() const;
  std::size_t total_covered() const;
  std::size_t total_gave_up() const;
  std::size_t total_peak_nodes() const;
  double total_cpu_ms() const;
};

/// Run one corpus entry through a fresh Session.  Throws CheckError when the
/// entry does not build or the run fails — the harness is in-tree tooling
/// and a broken corpus is a bug, not an input error.
CircuitRecord run_entry(const CorpusEntry& entry, const AtpgOptions& options);

/// Run the corpus in order.  `progress` (optional) receives one line per
/// circuit as it completes.
BenchRecord run_corpus(const std::vector<CorpusEntry>& corpus,
                       const AtpgOptions& options, const std::string& host_tag,
                       std::ostream* progress = nullptr);

/// Run the corpus once per thread count in `thread_counts` and record the
/// scaling curve.  The returned record's `circuits` come from the FIRST
/// point (canonically threads=1); every later point must reproduce the
/// same per-circuit coverage — a live byte-identity cross-check of the
/// work-stealing scheduler — or the harness throws CheckError.
BenchRecord run_sweep(const std::vector<CorpusEntry>& corpus,
                      const AtpgOptions& options, const std::string& host_tag,
                      const std::vector<std::size_t>& thread_counts,
                      std::ostream* progress = nullptr);

// --- JSON -------------------------------------------------------------------

/// Escape a string for embedding in a JSON double-quoted literal (shared by
/// the record writer and the CLI's run --json output).
std::string json_escape(const std::string& s);

void write_json(const BenchRecord& record, std::ostream& out);
std::string to_json(const BenchRecord& record);

/// Parse a record produced by write_json (unknown keys are ignored, so newer
/// records stay readable by older comparators).  Throws CheckError with a
/// position diagnostic on malformed input.
BenchRecord parse_record(const std::string& json_text);

// --- comparator ---------------------------------------------------------------

struct CompareOptions {
  /// A circuit fails when current peak nodes exceed baseline * (1 + this).
  double max_node_regression = 0.25;
  /// Same bound for CPU — applied per circuit (above min_cpu_ms) and to the
  /// corpus total, but only when both records carry the same host tag.
  double max_cpu_regression = 0.25;
  /// Per-circuit CPU gates ignore circuits faster than this in the baseline
  /// (sub-threshold times are dominated by noise, not by the code).
  double min_cpu_ms = 25.0;
  /// A sweep point fails when its speedup falls below baseline speedup *
  /// (1 - this).  Only applied between records with the same host tag AND
  /// the same host_cores (a 1-core and a 4-core runner have incomparable
  /// curves), and never against a host_cores = 1 baseline point (no real
  /// parallelism to regress).
  double max_speedup_regression = 0.25;
};

struct Comparison {
  bool ok = true;
  std::vector<std::string> failures;  ///< each one is a gate violation
  std::vector<std::string> notes;     ///< informational (improvements, skips)
};

/// Diff `current` against `baseline`.  Gates: every baseline circuit must be
/// present with an unchanged fault universe, coverage must not drop, peak
/// nodes and (host tags permitting) CPU must stay within the regression
/// bounds.  Circuits only in `current` are reported as notes.
Comparison compare(const BenchRecord& baseline, const BenchRecord& current,
                   const CompareOptions& options = {});

}  // namespace xatpg::perf
