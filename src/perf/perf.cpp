#include "perf/perf.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "benchmarks/benchmarks.hpp"
#include "netlist/netlist.hpp"
#include "netlist/random_netlist.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"
#include "xatpg/progress.hpp"  // safe_ratio
#include "xatpg/session.hpp"

namespace xatpg::perf {

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

namespace {

// Embedded ISCAS-style workloads.  c17 is the classic NAND mesh; the parity
// tree is the complement-edge showcase shape (every subfunction and its
// negation share nodes); the mux covers AND/OR decode logic with inverted
// selects.
constexpr const char* kC17Bench = R"(# ISCAS-85 c17 (NAND-only mesh)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";

constexpr const char* kParity5Bench = R"(# 5-input XOR parity tree
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(p)
x1 = XOR(a, b)
x2 = XOR(c, d)
x3 = XOR(x1, x2)
p = XOR(x3, e)
)";

constexpr const char* kMux4Bench = R"(# 4:1 multiplexer with decoded selects
INPUT(s0)
INPUT(s1)
INPUT(d0)
INPUT(d1)
INPUT(d2)
INPUT(d3)
OUTPUT(y)
n0 = NOT(s0)
n1 = NOT(s1)
t0 = AND(d0, n0, n1)
t1 = AND(d1, s0, n1)
t2 = AND(d2, n0, s1)
t3 = AND(d3, s0, s1)
o1 = OR(t0, t1)
o2 = OR(t2, t3)
y = OR(o1, o2)
)";

struct RandomFamilyMember {
  std::uint64_t seed;
  std::size_t inputs, gates;
};

// Two shapes x several seeds: the default fixture shape and a wider/deeper
// one.  Deterministic across platforms (the generator draws only from Rng);
// seeds chosen so each member stays around a second even unoptimized — the
// corpus is a CI gate, not a soak test.
constexpr RandomFamilyMember kRandomFamily[] = {
    {11, 3, 8}, {12, 3, 8}, {13, 3, 8}, {24, 4, 10}, {25, 4, 10},
};

}  // namespace

std::vector<CorpusEntry> default_corpus() {
  std::vector<CorpusEntry> corpus;
  for (const std::string& name : si_benchmark_names()) {
    CorpusEntry entry;
    entry.kind = CorpusEntry::Kind::SiBenchmark;
    entry.id = "si/" + name;
    entry.name = name;
    corpus.push_back(std::move(entry));
  }
  for (const std::string& name : bd_benchmark_names()) {
    CorpusEntry entry;
    entry.kind = CorpusEntry::Kind::BdBenchmark;
    entry.id = "bd/" + name;
    entry.name = name;
    corpus.push_back(std::move(entry));
  }
  for (const RandomFamilyMember& member : kRandomFamily) {
    CorpusEntry entry;
    entry.kind = CorpusEntry::Kind::RandomNetlist;
    entry.id = "rand/s" + std::to_string(member.seed);
    entry.name = "random" + std::to_string(member.seed);
    entry.seed = member.seed;
    entry.rand_inputs = member.inputs;
    entry.rand_gates = member.gates;
    corpus.push_back(std::move(entry));
  }
  const std::pair<const char*, const char*> bench_texts[] = {
      {"c17", kC17Bench}, {"parity5", kParity5Bench}, {"mux4", kMux4Bench}};
  for (const auto& [name, text] : bench_texts) {
    CorpusEntry entry;
    entry.kind = CorpusEntry::Kind::BenchText;
    entry.id = std::string("bench/") + name;
    entry.name = name;
    entry.text = text;
    corpus.push_back(std::move(entry));
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// Running
// ---------------------------------------------------------------------------

std::size_t BenchRecord::total_faults() const {
  std::size_t n = 0;
  for (const CircuitRecord& c : circuits) n += c.faults_total;
  return n;
}
std::size_t BenchRecord::total_covered() const {
  std::size_t n = 0;
  for (const CircuitRecord& c : circuits) n += c.faults_covered;
  return n;
}
std::size_t BenchRecord::total_gave_up() const {
  std::size_t n = 0;
  for (const CircuitRecord& c : circuits) n += c.gave_up;
  return n;
}
std::size_t BenchRecord::total_peak_nodes() const {
  std::size_t n = 0;
  for (const CircuitRecord& c : circuits) n += c.peak_nodes;
  return n;
}
double BenchRecord::total_cpu_ms() const {
  double n = 0;
  for (const CircuitRecord& c : circuits) n += c.cpu_ms;
  return n;
}

CircuitRecord run_entry(const CorpusEntry& entry, const AtpgOptions& options) {
  // The timed window starts before Session construction: CSSG building is
  // part of the paper's CPU column (same convention as bench_table1/2).
  Timer timer;
  Expected<Session> session = [&]() -> Expected<Session> {
    switch (entry.kind) {
      case CorpusEntry::Kind::SiBenchmark:
        return Session::from_benchmark(entry.name,
                                       SynthStyle::SpeedIndependent, options);
      case CorpusEntry::Kind::BdBenchmark:
        return Session::from_benchmark(entry.name, SynthStyle::BoundedDelay,
                                       options);
      case CorpusEntry::Kind::RandomNetlist: {
        RandomNetlistOptions shape;
        shape.num_inputs = entry.rand_inputs;
        shape.num_gates = entry.rand_gates;
        return Session::from_xnl(
            write_xnl_string(random_netlist(entry.seed, shape)), options);
      }
      case CorpusEntry::Kind::BenchText:
        return Session::from_bench(entry.text, options);
    }
    return Error{ErrorCode::OptionError, "unknown corpus entry kind"};
  }();
  XATPG_CHECK_MSG(session.has_value(), "corpus entry '"
                                           << entry.id << "' failed to build: "
                                           << session.error().to_string());

  const Expected<AtpgResult> out_result =
      session->run(session->output_stuck_faults());
  XATPG_CHECK_MSG(out_result.has_value(),
                  "corpus entry '" << entry.id << "' output-stuck run failed: "
                                   << out_result.error().to_string());
  const Expected<AtpgResult> in_result =
      session->run(session->input_stuck_faults());
  XATPG_CHECK_MSG(in_result.has_value(),
                  "corpus entry '" << entry.id << "' input-stuck run failed: "
                                   << in_result.error().to_string());

  CircuitRecord record;
  record.id = entry.id;
  record.signals = session->num_signals();
  record.pins = session->num_pins();
  record.faults_total =
      out_result->stats.total_faults + in_result->stats.total_faults;
  record.faults_covered =
      out_result->stats.covered + in_result->stats.covered;
  record.coverage = record.faults_total == 0
                        ? 0.0
                        : static_cast<double>(record.faults_covered) /
                              static_cast<double>(record.faults_total);
  record.gave_up = out_result->stats.gave_up + in_result->stats.gave_up;
  record.sequences = in_result->sequences.size();
  record.cpu_ms = timer.millis();

  const ShardBddStats bdd = session->bdd_stats();
  record.peak_nodes = bdd.peak_nodes;
  record.live_nodes = bdd.live_nodes;
  record.base_nodes = bdd.base_nodes;
  record.delta_peak = bdd.delta_peak;
  record.cache_lookups = bdd.cache_lookups;
  record.cache_hits = bdd.cache_hits;
  record.cache_hit_rate = bdd.cache_hit_rate();
  record.unique_load = bdd.unique_load;
  record.post_sift_nodes = session->sift_now();
  // Count sifting passes LAST and across EVERY shard: the explicit pass
  // behind post_sift_nodes is a real reorder the record used to miss, and
  // on a multi-threaded run the worker shards sift independently of shard 0
  // (reading bdd_stats() alone reported 0 forever — the schema-1 records'
  // all-zero reorders column).  The resident footprint likewise spans every
  // shard — but counts the shared base arena exactly ONCE: per-shard
  // base_nodes are the same frozen arena, and summing them per shard is the
  // N x double count schema 3 exists to fix.
  record.peak_resident_nodes = record.base_nodes;
  for (const ShardBddStats& shard : session->shard_bdd_stats()) {
    record.reorders += shard.reorders;
    record.peak_resident_nodes += shard.delta_peak;
  }
  return record;
}

namespace {

std::size_t detect_host_cores() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace

BenchRecord run_corpus(const std::vector<CorpusEntry>& corpus,
                       const AtpgOptions& options, const std::string& host_tag,
                       std::ostream* progress) {
  BenchRecord record;
  record.host = host_tag;
  record.threads = options.threads;
  record.host_cores = detect_host_cores();
  record.circuits.reserve(corpus.size());
  for (const CorpusEntry& entry : corpus) {
    record.circuits.push_back(run_entry(entry, options));
    if (progress != nullptr) {
      const CircuitRecord& c = record.circuits.back();
      *progress << "[bench] " << c.id << ": " << c.faults_covered << "/"
                << c.faults_total << " covered";
      if (c.gave_up > 0) *progress << " (" << c.gave_up << " gave up)";
      *progress << ", peak " << c.peak_nodes << " nodes (post-sift "
                << c.post_sift_nodes << "), " << c.cpu_ms << " ms\n";
    }
  }
  return record;
}

BenchRecord run_sweep(const std::vector<CorpusEntry>& corpus,
                      const AtpgOptions& options, const std::string& host_tag,
                      const std::vector<std::size_t>& thread_counts,
                      std::ostream* progress) {
  XATPG_CHECK_MSG(!thread_counts.empty(),
                  "threads sweep needs at least one thread count");
  BenchRecord record;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    AtpgOptions point_options = options;
    point_options.threads = thread_counts[i];
    if (progress != nullptr)
      *progress << "[bench] --- threads = " << thread_counts[i] << " ---\n";
    BenchRecord point = run_corpus(corpus, point_options, host_tag, progress);
    SweepPoint measured;
    measured.threads = thread_counts[i];
    measured.cpu_ms = point.total_cpu_ms();
    for (const CircuitRecord& c : point.circuits)
      measured.peak_resident_nodes += c.peak_resident_nodes;
    if (i == 0) {
      // The first point (canonically threads = 1) supplies the record's
      // per-circuit data; later points contribute timing only.
      record = std::move(point);
    } else {
      // Scheduler byte-identity cross-check: every sweep point must cover
      // the exact same faults per circuit, whatever the thread count and
      // steal interleaving.
      XATPG_CHECK_MSG(point.circuits.size() == record.circuits.size(),
                      "threads sweep produced a different corpus size");
      for (std::size_t c = 0; c < point.circuits.size(); ++c) {
        const CircuitRecord& base = record.circuits[c];
        const CircuitRecord& cur = point.circuits[c];
        XATPG_CHECK_MSG(
            cur.id == base.id && cur.faults_total == base.faults_total &&
                cur.faults_covered == base.faults_covered &&
                cur.gave_up == base.gave_up && cur.sequences == base.sequences,
            "threads sweep: '" << base.id << "' diverged at threads = "
                               << thread_counts[i]
                               << " — the scheduler broke determinism");
      }
    }
    record.sweep.push_back(measured);
  }
  // speedup/efficiency relative to the sweep's own first point (canonically
  // threads = 1) — through the uniform zero-denominator guard, so a 0 ms
  // corpus or a degenerate thread count yields 0, never NaN/inf.
  const double base_ms = record.sweep.front().cpu_ms;
  for (SweepPoint& point : record.sweep) {
    point.speedup = safe_ratio(base_ms, point.cpu_ms);
    point.efficiency =
        safe_ratio(point.speedup, static_cast<double>(point.threads));
  }
  if (progress != nullptr) {
    *progress << "[bench] threads-sweep (host_cores = " << record.host_cores
              << "):\n";
    for (const SweepPoint& point : record.sweep)
      *progress << "[bench]   threads " << point.threads << ": "
                << point.cpu_ms << " ms, speedup " << point.speedup
                << "x, efficiency " << point.efficiency << ", peak resident "
                << point.peak_resident_nodes << " nodes\n";
  }
  return record;
}

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) { return json::escape(s); }

std::string json_double(double value) { return json::number(value); }

void write_json(const BenchRecord& record, std::ostream& out) {
  out << "{\n"
      << "  \"schema\": " << record.schema << ",\n"
      << "  \"kernel\": \"" << json_escape(record.kernel) << "\",\n"
      << "  \"host\": \"" << json_escape(record.host) << "\",\n"
      << "  \"threads\": " << record.threads << ",\n"
      << "  \"host_cores\": " << record.host_cores << ",\n"
      << "  \"circuits\": [\n";
  for (std::size_t i = 0; i < record.circuits.size(); ++i) {
    const CircuitRecord& c = record.circuits[i];
    out << "    {\"id\": \"" << json_escape(c.id) << "\""
        << ", \"signals\": " << c.signals << ", \"pins\": " << c.pins
        << ", \"faults_total\": " << c.faults_total
        << ", \"faults_covered\": " << c.faults_covered
        << ", \"coverage\": " << json_double(c.coverage)
        << ", \"gave_up\": " << c.gave_up
        << ", \"sequences\": " << c.sequences
        << ", \"cpu_ms\": " << json_double(c.cpu_ms)
        << ", \"peak_nodes\": " << c.peak_nodes
        << ", \"live_nodes\": " << c.live_nodes
        << ", \"base_nodes\": " << c.base_nodes
        << ", \"delta_peak\": " << c.delta_peak
        << ", \"peak_resident_nodes\": " << c.peak_resident_nodes
        << ", \"post_sift_nodes\": " << c.post_sift_nodes
        << ", \"reorders\": " << c.reorders
        << ", \"cache_lookups\": " << c.cache_lookups
        << ", \"cache_hits\": " << c.cache_hits
        << ", \"cache_hit_rate\": " << json_double(c.cache_hit_rate)
        << ", \"unique_load\": " << json_double(c.unique_load) << "}"
        << (i + 1 < record.circuits.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  if (!record.sweep.empty()) {
    out << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < record.sweep.size(); ++i) {
      const SweepPoint& p = record.sweep[i];
      out << "    {\"threads\": " << p.threads
          << ", \"cpu_ms\": " << json_double(p.cpu_ms)
          << ", \"speedup\": " << json_double(p.speedup)
          << ", \"efficiency\": " << json_double(p.efficiency)
          << ", \"peak_resident_nodes\": " << p.peak_resident_nodes << "}"
          << (i + 1 < record.sweep.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
  }
  if (record.serve.requests > 0) {
    const ServeRecord& s = record.serve;
    out << "  \"serve\": {\"requests\": " << s.requests
        << ", \"circuits\": " << s.circuits << ", \"workers\": " << s.workers
        << ", \"cold_rps\": " << json_double(s.cold_rps)
        << ", \"cold_p50_ms\": " << json_double(s.cold_p50_ms)
        << ", \"cold_p99_ms\": " << json_double(s.cold_p99_ms)
        << ", \"cached_rps\": " << json_double(s.cached_rps)
        << ", \"cached_p50_ms\": " << json_double(s.cached_p50_ms)
        << ", \"cached_p99_ms\": " << json_double(s.cached_p99_ms) << "},\n";
  }
  out << "  \"totals\": {\"faults_total\": " << record.total_faults()
      << ", \"faults_covered\": " << record.total_covered()
      << ", \"gave_up\": " << record.total_gave_up()
      << ", \"peak_nodes\": " << record.total_peak_nodes()
      << ", \"cpu_ms\": " << json_double(record.total_cpu_ms()) << "}\n"
      << "}\n";
}

std::string to_json(const BenchRecord& record) {
  std::ostringstream out;
  write_json(record, out);
  return out.str();
}

// ---------------------------------------------------------------------------
// JSON parsing: the document model and the recursive-descent parser moved to
// util/json.hpp (shared with the serve protocol); this file keeps only the
// record-shaped reading on top of it.
// ---------------------------------------------------------------------------

using json::num_field;
using json::size_field;
using json::string_field;
using JsonValue = json::Value;

BenchRecord parse_record(const std::string& json_text) {
  const JsonValue root = json::parse(json_text);
  XATPG_CHECK_MSG(root.type == JsonValue::Type::Object,
                  "perf record: top level is not an object");
  BenchRecord record;
  record.schema = static_cast<int>(num_field(root, "schema", 0));
  XATPG_CHECK_MSG(record.schema >= 1,
                  "perf record: missing or invalid 'schema'");
  record.kernel = string_field(root, "kernel");
  record.host = string_field(root, "host");
  record.threads = size_field(root, "threads");
  record.host_cores = size_field(root, "host_cores");  // 0 on schema-1 records
  const JsonValue* circuits = root.find("circuits");
  XATPG_CHECK_MSG(circuits != nullptr &&
                      circuits->type == JsonValue::Type::Array,
                  "perf record: missing 'circuits' array");
  for (const JsonValue& entry : circuits->array) {
    XATPG_CHECK_MSG(entry.type == JsonValue::Type::Object,
                    "perf record: circuit entry is not an object");
    CircuitRecord c;
    c.id = string_field(entry, "id");
    XATPG_CHECK_MSG(!c.id.empty(), "perf record: circuit entry without 'id'");
    c.signals = size_field(entry, "signals");
    c.pins = size_field(entry, "pins");
    c.faults_total = size_field(entry, "faults_total");
    c.faults_covered = size_field(entry, "faults_covered");
    c.coverage = num_field(entry, "coverage", 0);
    c.gave_up = size_field(entry, "gave_up");  // 0 on schema-1 records
    c.sequences = size_field(entry, "sequences");
    c.cpu_ms = num_field(entry, "cpu_ms", 0);
    c.peak_nodes = size_field(entry, "peak_nodes");
    c.live_nodes = size_field(entry, "live_nodes");
    c.base_nodes = size_field(entry, "base_nodes");      // 0 pre-schema-3
    c.delta_peak = size_field(entry, "delta_peak");      // 0 pre-schema-3
    c.peak_resident_nodes =
        size_field(entry, "peak_resident_nodes");        // 0 pre-schema-3
    c.post_sift_nodes = size_field(entry, "post_sift_nodes");
    c.reorders = size_field(entry, "reorders");
    c.cache_lookups = size_field(entry, "cache_lookups");
    c.cache_hits = size_field(entry, "cache_hits");
    c.cache_hit_rate = num_field(entry, "cache_hit_rate", 0);
    c.unique_load = num_field(entry, "unique_load", 0);
    record.circuits.push_back(std::move(c));
  }
  if (const JsonValue* sweep = root.find("sweep")) {
    XATPG_CHECK_MSG(sweep->type == JsonValue::Type::Array,
                    "perf record: 'sweep' is not an array");
    for (const JsonValue& entry : sweep->array) {
      XATPG_CHECK_MSG(entry.type == JsonValue::Type::Object,
                      "perf record: sweep entry is not an object");
      SweepPoint point;
      point.threads = size_field(entry, "threads");
      XATPG_CHECK_MSG(point.threads > 0,
                      "perf record: sweep entry without 'threads'");
      point.cpu_ms = num_field(entry, "cpu_ms", 0);
      point.speedup = num_field(entry, "speedup", 0);
      point.efficiency = num_field(entry, "efficiency", 0);
      point.peak_resident_nodes =
          size_field(entry, "peak_resident_nodes");  // 0 pre-schema-3
      record.sweep.push_back(point);
    }
  }
  if (const JsonValue* serve = root.find("serve")) {  // absent pre-schema-4
    XATPG_CHECK_MSG(serve->type == JsonValue::Type::Object,
                    "perf record: 'serve' is not an object");
    ServeRecord& s = record.serve;
    s.requests = size_field(*serve, "requests");
    s.circuits = size_field(*serve, "circuits");
    s.workers = size_field(*serve, "workers");
    s.cold_rps = num_field(*serve, "cold_rps", 0);
    s.cold_p50_ms = num_field(*serve, "cold_p50_ms", 0);
    s.cold_p99_ms = num_field(*serve, "cold_p99_ms", 0);
    s.cached_rps = num_field(*serve, "cached_rps", 0);
    s.cached_p50_ms = num_field(*serve, "cached_p50_ms", 0);
    s.cached_p99_ms = num_field(*serve, "cached_p99_ms", 0);
  }
  return record;
}

// ---------------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------------

Comparison compare(const BenchRecord& baseline, const BenchRecord& current,
                   const CompareOptions& options) {
  Comparison result;
  const auto fail = [&](std::string message) {
    result.ok = false;
    result.failures.push_back(std::move(message));
  };
  const auto note = [&](std::string message) {
    result.notes.push_back(std::move(message));
  };
  const auto fmt = [](double value) {
    std::ostringstream os;
    os << value;
    return os.str();
  };

  if (baseline.schema != current.schema)
    note("schema changed: " + std::to_string(baseline.schema) + " -> " +
         std::to_string(current.schema));
  if (baseline.kernel != current.kernel)
    note("kernel changed: '" + baseline.kernel + "' -> '" + current.kernel +
         "'");
  const bool cpu_comparable = !baseline.host.empty() &&
                              baseline.host == current.host &&
                              baseline.threads == current.threads;
  if (!cpu_comparable) {
    if (baseline.host.empty() || current.host.empty())
      note("CPU gates skipped: record(s) carry no host tag (run `xatpg "
           "bench --host TAG` or set XATPG_BENCH_HOST to arm them)");
    else
      note("CPU gates skipped: host/threads tags differ ('" + baseline.host +
           "'/" + std::to_string(baseline.threads) + " vs '" + current.host +
           "'/" + std::to_string(current.threads) + ")");
  }

  std::unordered_map<std::string, const CircuitRecord*> by_id;
  for (const CircuitRecord& c : current.circuits) by_id.emplace(c.id, &c);

  for (const CircuitRecord& base : baseline.circuits) {
    const auto it = by_id.find(base.id);
    if (it == by_id.end()) {
      fail(base.id + ": missing from the current record");
      continue;
    }
    const CircuitRecord& cur = *it->second;
    if (cur.faults_total != base.faults_total) {
      fail(base.id + ": fault universe changed (" +
           std::to_string(base.faults_total) + " -> " +
           std::to_string(cur.faults_total) +
           "); refresh the baseline intentionally");
      continue;
    }
    if (cur.faults_covered < base.faults_covered)
      fail(base.id + ": coverage dropped (" +
           std::to_string(base.faults_covered) + " -> " +
           std::to_string(cur.faults_covered) + " of " +
           std::to_string(base.faults_total) + ")");
    else if (cur.faults_covered > base.faults_covered)
      note(base.id + ": coverage improved (" +
           std::to_string(base.faults_covered) + " -> " +
           std::to_string(cur.faults_covered) + ")");
    // gave_up distinguishes "searched and redundant" from "cap blowout":
    // a rise with flat coverage means the caps started truncating searches
    // that previously ran to completion — worth eyes even when no covered
    // fault regressed.
    if (cur.gave_up > base.gave_up)
      note(base.id + ": gave_up rose (" + std::to_string(base.gave_up) +
           " -> " + std::to_string(cur.gave_up) +
           "); searches are newly hitting resource caps");
    else if (cur.gave_up < base.gave_up)
      note(base.id + ": gave_up fell (" + std::to_string(base.gave_up) +
           " -> " + std::to_string(cur.gave_up) + ")");

    const double node_bound = static_cast<double>(base.peak_nodes) *
                              (1.0 + options.max_node_regression);
    if (static_cast<double>(cur.peak_nodes) > node_bound)
      fail(base.id + ": peak nodes regressed >" +
           fmt(100.0 * options.max_node_regression) + "% (" +
           std::to_string(base.peak_nodes) + " -> " +
           std::to_string(cur.peak_nodes) + ")");
    else if (static_cast<double>(cur.peak_nodes) <
             static_cast<double>(base.peak_nodes) *
                 (1.0 - options.max_node_regression))
      note(base.id + ": peak nodes improved >" +
           fmt(100.0 * options.max_node_regression) + "% (" +
           std::to_string(base.peak_nodes) + " -> " +
           std::to_string(cur.peak_nodes) + "); consider refreshing the "
           "baseline to lock it in");

    if (cpu_comparable && base.cpu_ms >= options.min_cpu_ms &&
        cur.cpu_ms > base.cpu_ms * (1.0 + options.max_cpu_regression))
      fail(base.id + ": CPU regressed >" +
           fmt(100.0 * options.max_cpu_regression) + "% (" +
           fmt(base.cpu_ms) + " -> " + fmt(cur.cpu_ms) + " ms)");
  }

  for (const CircuitRecord& cur : current.circuits) {
    const auto in_baseline = [&] {
      for (const CircuitRecord& base : baseline.circuits)
        if (base.id == cur.id) return true;
      return false;
    };
    if (!in_baseline())
      note(cur.id + ": new circuit (not in the baseline)");
  }

  if (cpu_comparable) {
    const double base_total = baseline.total_cpu_ms();
    const double cur_total = current.total_cpu_ms();
    if (base_total > 0 &&
        cur_total > base_total * (1.0 + options.max_cpu_regression))
      fail("total CPU regressed >" + fmt(100.0 * options.max_cpu_regression) +
           "% (" + fmt(base_total) + " -> " + fmt(cur_total) + " ms)");
  }

  // Scaling gates: sweep curves are only comparable between records from
  // the same machine class — same host tag AND same core count.  A 1-core
  // host's curve carries no parallelism signal at all (workers time-slice
  // one core), so it never gates.
  if (!baseline.sweep.empty() && !current.sweep.empty()) {
    const bool sweep_comparable = !baseline.host.empty() &&
                                  baseline.host == current.host &&
                                  baseline.host_cores == current.host_cores &&
                                  baseline.host_cores > 1;
    if (!sweep_comparable) {
      note("scaling gates skipped: sweep records are from different or "
           "single-core hosts ('" + baseline.host + "'/" +
           std::to_string(baseline.host_cores) + " cores vs '" +
           current.host + "'/" + std::to_string(current.host_cores) +
           " cores)");
    } else {
      for (const SweepPoint& base : baseline.sweep) {
        const SweepPoint* cur = nullptr;
        for (const SweepPoint& p : current.sweep)
          if (p.threads == base.threads) cur = &p;
        if (cur == nullptr) {
          note("sweep point threads=" + std::to_string(base.threads) +
               " missing from the current record");
          continue;
        }
        if (base.threads <= 1 || base.speedup <= 0) continue;
        if (cur->speedup <
            base.speedup * (1.0 - options.max_speedup_regression))
          fail("scaling at threads=" + std::to_string(base.threads) +
               " regressed >" + fmt(100.0 * options.max_speedup_regression) +
               "% (speedup " + fmt(base.speedup) + "x -> " +
               fmt(cur->speedup) + "x)");
        else if (cur->speedup >
                 base.speedup * (1.0 + options.max_speedup_regression))
          note("scaling at threads=" + std::to_string(base.threads) +
               " improved (speedup " + fmt(base.speedup) + "x -> " +
               fmt(cur->speedup) + "x)");
      }
    }
  } else if (!baseline.sweep.empty()) {
    note("scaling gates skipped: current record has no threads sweep");
  }

  // Cross-thread memory gate — self-contained within the CURRENT record's
  // sweep (node counts do not depend on machine speed, so unlike CPU it needs no
  // matching host tags): resident peak at T >= 4 threads must stay under
  // max_peak_resident_frac x T x the threads=1 footprint.  The old
  // private-shard design scaled as T x single-shard peak; the shared frozen
  // base holds the substrate once, and this gate keeps that win locked in.
  if (!current.sweep.empty()) {
    const SweepPoint* single = nullptr;
    for (const SweepPoint& p : current.sweep)
      if (p.threads == 1) single = &p;
    if (single == nullptr || single->peak_resident_nodes == 0) {
      note("memory gates skipped: sweep has no threads=1 "
           "peak_resident_nodes (pre-schema-3 record)");
    } else {
      for (const SweepPoint& p : current.sweep) {
        if (p.threads < 4 || p.peak_resident_nodes == 0) continue;
        const double bound = options.max_peak_resident_frac *
                             static_cast<double>(p.threads) *
                             static_cast<double>(single->peak_resident_nodes);
        if (static_cast<double>(p.peak_resident_nodes) > bound)
          fail("memory at threads=" + std::to_string(p.threads) +
               ": peak resident nodes " +
               std::to_string(p.peak_resident_nodes) + " exceed " +
               fmt(100.0 * options.max_peak_resident_frac) + "% of " +
               std::to_string(p.threads) + "x the threads=1 footprint (" +
               std::to_string(single->peak_resident_nodes) +
               ") — the shared-base memory win regressed");
      }
    }
  }
  return result;
}

}  // namespace xatpg::perf
