// Two-level cover algebra: cubes over up to 32 variables as (care, value)
// bit masks, prime generation (Quine–McCluskey) with don't-cares, greedy
// irredundant covering, and consensus-term generation (the hazard covers
// SIS-style synthesis inserts — the source of the redundancy that drives the
// paper's Table 2 result).
#pragma once

#include <cstdint>
#include <vector>

namespace xatpg {

/// Product term over `nvars` variables: variable i is constrained to
/// bit i of `value` when bit i of `care` is set, free otherwise.
struct MinCube {
  std::uint32_t care = 0;
  std::uint32_t value = 0;  // invariant: value subset of care

  bool operator==(const MinCube&) const = default;
  bool operator<(const MinCube& o) const {
    return care != o.care ? care < o.care : value < o.value;
  }

  bool covers_minterm(std::uint32_t m) const { return (m & care) == value; }
  /// True if this cube's cover contains other's cover.
  bool contains(const MinCube& other) const {
    return (care & ~other.care) == 0 && ((other.value ^ value) & care) == 0;
  }
  int num_literals() const { return __builtin_popcount(care); }
};

/// All prime implicants of on ∪ dc (classic QM combining pass).
std::vector<MinCube> prime_implicants(const std::vector<std::uint32_t>& on,
                                      const std::vector<std::uint32_t>& dc,
                                      unsigned nvars);

/// Greedy minimum cover of `on` by primes of on ∪ dc (essential primes
/// first, then largest-gain / fewest-literal cubes).
std::vector<MinCube> minimize_sop(const std::vector<std::uint32_t>& on,
                                  const std::vector<std::uint32_t>& dc,
                                  unsigned nvars);

/// Consensus (resolvent) of two cubes if they clash in exactly one variable;
/// returns false otherwise.
bool consensus(const MinCube& a, const MinCube& b, MinCube* out);

/// Add every consensus term of cube pairs in `cover` that is not already
/// contained in an existing cube (closing the cover against single-variable
/// transition hazards).  Added cubes are implicants by construction.
/// Returns the number of cubes added.
std::size_t add_consensus_cubes(std::vector<MinCube>& cover);

/// Evaluate a cover on a minterm.
bool cover_eval(const std::vector<MinCube>& cover, std::uint32_t minterm);

/// True iff every on-minterm is covered and no off-minterm is.
bool cover_is_correct(const std::vector<MinCube>& cover,
                      const std::vector<std::uint32_t>& on,
                      const std::vector<std::uint32_t>& off);

}  // namespace xatpg
