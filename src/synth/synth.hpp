// State-graph -> gate-level synthesis, standing in for the tools that
// produced the paper's two benchmark suites:
//
//  * SpeedIndependent (Petrify's role): each non-input signal becomes one
//    generalized C-element (gC) whose set cover holds the signal's rising
//    excitation region and whose reset cover holds the falling one.  Under
//    the complex-gate assumption the result is speed-independent by
//    construction.
//  * BoundedDelay (SIS's role): each non-input signal becomes a two-level
//    AND-OR network (shared input inverters) computing the next-state
//    function, closed in combinational feedback.  With `hazard_consensus`
//    the cover is closed under consensus so single-variable transitions
//    cannot glitch the OR output — these extra cubes are logically
//    redundant, which is precisely what makes several SIS-suite circuits
//    poorly testable in Table 2.  `extra_redundancy` additionally keeps
//    *all* consensus terms even when subsumed, modeling the heavier
//    spurious-pulse covers the paper blames for trimos-send/vbe10b/vbe6a.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "stg/stg.hpp"
#include "synth/cover.hpp"
#include "xatpg/types.hpp"  // SynthStyle (public API type)

namespace xatpg {

/// Implementation architecture for the SpeedIndependent style.
enum class SiArchitecture : std::uint8_t {
  AtomicGc,   ///< one complex gC gate per signal (complex-gate assumption)
  StandardC,  ///< decomposed: 2-level set/reset networks + C-element
              ///< (more gates and fault sites; the decomposition is not
              ///< guaranteed hazard-free — the CSSG prunes what races)
};

struct SynthOptions {
  SynthStyle style = SynthStyle::SpeedIndependent;
  SiArchitecture architecture = SiArchitecture::AtomicGc;
  /// BoundedDelay: close covers under consensus (hazard-free covers).
  bool hazard_consensus = true;
  /// BoundedDelay: retain redundant consensus cubes aggressively.
  bool extra_redundancy = false;
};

struct SynthResult {
  Netlist netlist;
  /// A stable state of the netlist corresponding to a quiescent SG state
  /// (no non-input signal excited) — the test-mode reset state.
  std::vector<bool> reset_state;
  /// Synthesis statistics.
  std::size_t num_cubes = 0;
  std::size_t num_consensus_cubes = 0;
};

/// Synthesize a netlist from an expanded state graph.  Requires CSC to hold
/// (throws CheckError otherwise) and at least one quiescent SG state.
SynthResult synthesize(const StateGraph& sg, const SynthOptions& options = {});

/// Helper shared with tests: on/off/dc minterm sets of signal `sig`'s
/// next-state function over the SG's signal variables (bit i = signal i).
struct NsFunction {
  std::vector<std::uint32_t> on, off, dc;
  unsigned nvars = 0;
};
NsFunction next_state_function(const StateGraph& sg, std::uint32_t sig);

/// Rising/falling excitation-region functions for the gC mapper:
///   set:   on = {code : sig=0, NS=1},  off = {code : NS=0}
///   reset: on = {code : sig=1, NS=0},  off = {code : NS=1}
NsFunction set_function(const StateGraph& sg, std::uint32_t sig);
NsFunction reset_function(const StateGraph& sg, std::uint32_t sig);

}  // namespace xatpg
