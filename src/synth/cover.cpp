#include "synth/cover.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace xatpg {

std::vector<MinCube> prime_implicants(const std::vector<std::uint32_t>& on,
                                      const std::vector<std::uint32_t>& dc,
                                      unsigned nvars) {
  XATPG_CHECK(nvars <= 32);
  const std::uint32_t full_care =
      nvars == 32 ? ~0u : ((1u << nvars) - 1);

  std::set<MinCube> current;
  for (const std::uint32_t m : on) current.insert(MinCube{full_care, m});
  for (const std::uint32_t m : dc) current.insert(MinCube{full_care, m});

  std::vector<MinCube> primes;
  while (!current.empty()) {
    std::set<MinCube> combined;
    std::set<MinCube> used;
    // Two cubes combine when they have identical care sets and differ in
    // exactly one cared bit.
    std::vector<MinCube> cubes(current.begin(), current.end());
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      for (std::size_t j = i + 1; j < cubes.size(); ++j) {
        if (cubes[i].care != cubes[j].care) continue;
        const std::uint32_t diff = cubes[i].value ^ cubes[j].value;
        if (__builtin_popcount(diff) != 1) continue;
        combined.insert(MinCube{cubes[i].care & ~diff,
                                cubes[i].value & ~diff});
        used.insert(cubes[i]);
        used.insert(cubes[j]);
      }
    }
    for (const MinCube& c : cubes)
      if (!used.count(c)) primes.push_back(c);
    current = std::move(combined);
  }
  // Deduplicate and drop primes contained in other primes (can appear when
  // combining across different care patterns is impossible but containment
  // still holds through don't-cares).
  std::sort(primes.begin(), primes.end());
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  std::vector<MinCube> out;
  for (const MinCube& c : primes) {
    bool dominated = false;
    for (const MinCube& d : primes)
      if (!(d == c) && d.contains(c)) {
        dominated = true;
        break;
      }
    if (!dominated) out.push_back(c);
  }
  return out;
}

std::vector<MinCube> minimize_sop(const std::vector<std::uint32_t>& on,
                                  const std::vector<std::uint32_t>& dc,
                                  unsigned nvars) {
  if (on.empty()) return {};
  const auto primes = prime_implicants(on, dc, nvars);

  // Greedy set cover over the on-set.
  std::vector<std::uint32_t> uncovered = on;
  std::sort(uncovered.begin(), uncovered.end());
  uncovered.erase(std::unique(uncovered.begin(), uncovered.end()),
                  uncovered.end());
  std::vector<MinCube> cover;
  std::vector<bool> prime_used(primes.size(), false);

  // Essential primes first: an on-minterm covered by exactly one prime.
  for (const std::uint32_t m : uncovered) {
    int only = -1, count = 0;
    for (std::size_t p = 0; p < primes.size(); ++p)
      if (primes[p].covers_minterm(m)) {
        ++count;
        only = static_cast<int>(p);
      }
    XATPG_CHECK_MSG(count > 0, "on-minterm not covered by any prime");
    if (count == 1 && !prime_used[only]) {
      prime_used[only] = true;
      cover.push_back(primes[only]);
    }
  }
  const auto strip_covered = [&] {
    uncovered.erase(std::remove_if(uncovered.begin(), uncovered.end(),
                                   [&](std::uint32_t m) {
                                     return cover_eval(cover, m);
                                   }),
                    uncovered.end());
  };
  strip_covered();

  while (!uncovered.empty()) {
    std::size_t best = primes.size();
    long best_gain = -1;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (prime_used[p]) continue;
      long gain = 0;
      for (const std::uint32_t m : uncovered)
        if (primes[p].covers_minterm(m)) ++gain;
      // Prefer more coverage; tie-break on fewer literals (bigger cube).
      gain = gain * 64 - primes[p].num_literals();
      if (gain > best_gain) {
        best_gain = gain;
        best = p;
      }
    }
    XATPG_CHECK(best < primes.size());
    prime_used[best] = true;
    cover.push_back(primes[best]);
    strip_covered();
  }

  // Irredundancy pass: drop cubes whose on-minterms are covered elsewhere.
  for (std::size_t i = cover.size(); i-- > 0;) {
    std::vector<MinCube> without = cover;
    without.erase(without.begin() + static_cast<long>(i));
    bool redundant = true;
    for (const std::uint32_t m : on)
      if (!cover_eval(without, m)) {
        redundant = false;
        break;
      }
    if (redundant) cover = std::move(without);
  }
  return cover;
}

bool consensus(const MinCube& a, const MinCube& b, MinCube* out) {
  const std::uint32_t both = a.care & b.care;
  const std::uint32_t clash = (a.value ^ b.value) & both;
  if (__builtin_popcount(clash) != 1) return false;
  out->care = (a.care | b.care) & ~clash;
  out->value = (a.value | b.value) & out->care;
  return true;
}

std::size_t add_consensus_cubes(std::vector<MinCube>& cover) {
  std::size_t added = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::size_t size = cover.size();
    for (std::size_t i = 0; i < size && !changed; ++i) {
      for (std::size_t j = i + 1; j < size && !changed; ++j) {
        MinCube c;
        if (!consensus(cover[i], cover[j], &c)) continue;
        bool contained = false;
        for (const MinCube& d : cover)
          if (d.contains(c)) {
            contained = true;
            break;
          }
        if (contained) continue;
        cover.push_back(c);
        ++added;
        changed = true;  // restart: new cube enables new consensus pairs
      }
    }
  }
  return added;
}

bool cover_eval(const std::vector<MinCube>& cover, std::uint32_t minterm) {
  for (const MinCube& c : cover)
    if (c.covers_minterm(minterm)) return true;
  return false;
}

bool cover_is_correct(const std::vector<MinCube>& cover,
                      const std::vector<std::uint32_t>& on,
                      const std::vector<std::uint32_t>& off) {
  for (const std::uint32_t m : on)
    if (!cover_eval(cover, m)) return false;
  for (const std::uint32_t m : off)
    if (cover_eval(cover, m)) return false;
  return true;
}

}  // namespace xatpg
