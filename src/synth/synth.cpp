#include "synth/synth.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace xatpg {

namespace {

/// Deduplicated reachable codes of the SG as minterms (bit i = signal i).
std::vector<std::uint32_t> reachable_codes(const StateGraph& sg) {
  std::set<std::uint32_t> codes;
  for (const auto& code : sg.codes) {
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < code.size(); ++i)
      if (code[i]) m |= 1u << i;
    codes.insert(m);
  }
  return {codes.begin(), codes.end()};
}

std::uint32_t code_of(const StateGraph& sg, std::uint32_t state) {
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < sg.codes[state].size(); ++i)
    if (sg.codes[state][i]) m |= 1u << i;
  return m;
}

std::vector<std::uint32_t> unreachable_codes(const StateGraph& sg) {
  const unsigned n = static_cast<unsigned>(sg.stg->num_signals());
  XATPG_CHECK_MSG(n <= 20, "too many STG signals for minterm enumeration");
  const auto reach = reachable_codes(sg);
  std::set<std::uint32_t> reach_set(reach.begin(), reach.end());
  std::vector<std::uint32_t> out;
  for (std::uint32_t m = 0; m < (1u << n); ++m)
    if (!reach_set.count(m)) out.push_back(m);
  return out;
}

/// Translate a MinCube over SG signal variables into a netlist Cube over
/// the given fanin signal list.
Cube to_netlist_cube(const MinCube& cube,
                     const std::vector<std::uint32_t>& fanin_signals) {
  Cube out;
  out.lits.reserve(fanin_signals.size());
  for (const std::uint32_t sig : fanin_signals) {
    if (cube.care & (1u << sig)) {
      out.lits.push_back((cube.value >> sig) & 1);
    } else {
      out.lits.push_back(-1);
    }
  }
  return out;
}

/// Signals appearing in any cube of the cover.
std::vector<std::uint32_t> cover_support(const std::vector<MinCube>& cover,
                                         unsigned nvars) {
  std::uint32_t mask = 0;
  for (const MinCube& c : cover) mask |= c.care;
  std::vector<std::uint32_t> out;
  for (unsigned i = 0; i < nvars; ++i)
    if (mask & (1u << i)) out.push_back(i);
  return out;
}

}  // namespace

NsFunction next_state_function(const StateGraph& sg, std::uint32_t sig) {
  NsFunction fn;
  fn.nvars = static_cast<unsigned>(sg.stg->num_signals());
  std::set<std::uint32_t> on, off;
  for (std::uint32_t st = 0; st < sg.num_states(); ++st) {
    const std::uint32_t code = code_of(sg, st);
    if (sg.next_value(st, sig)) {
      on.insert(code);
    } else {
      off.insert(code);
    }
  }
  for (const std::uint32_t m : on)
    XATPG_CHECK_MSG(!off.count(m),
                    "CSC violation reached synthesis for signal "
                        << sg.stg->signal(sig).name);
  fn.on.assign(on.begin(), on.end());
  fn.off.assign(off.begin(), off.end());
  fn.dc = unreachable_codes(sg);
  return fn;
}

NsFunction set_function(const StateGraph& sg, std::uint32_t sig) {
  // on: rising excitation region (sig=0, NS=1); off: anything driving the
  // output low (NS=0); codes with sig=1 and NS=1 may be covered freely.
  NsFunction ns = next_state_function(sg, sig);
  NsFunction fn;
  fn.nvars = ns.nvars;
  fn.dc = ns.dc;
  for (const std::uint32_t m : ns.on) {
    if (m & (1u << sig)) {
      fn.dc.push_back(m);
    } else {
      fn.on.push_back(m);
    }
  }
  fn.off = ns.off;
  return fn;
}

NsFunction reset_function(const StateGraph& sg, std::uint32_t sig) {
  // Dual: on = falling excitation region (sig=1, NS=0); off = NS=1.
  NsFunction ns = next_state_function(sg, sig);
  NsFunction fn;
  fn.nvars = ns.nvars;
  fn.dc = ns.dc;
  for (const std::uint32_t m : ns.off) {
    if (m & (1u << sig)) {
      fn.on.push_back(m);
    } else {
      fn.dc.push_back(m);
    }
  }
  fn.off = ns.on;
  return fn;
}

namespace {

/// Builder for the BoundedDelay two-level implementation of one signal.
class TwoLevelBuilder {
 public:
  TwoLevelBuilder(Netlist& netlist, const StateGraph& sg)
      : netlist_(&netlist), sg_(&sg) {}

  /// Inverter output for an SG signal, created on first use.
  SignalId inverted(std::uint32_t sig) {
    const std::string inv_name = sg_->stg->signal(sig).name + "_inv";
    if (auto existing = netlist_->find_signal(inv_name);
        existing && netlist_->gate(*existing).type == GateType::Not)
      return *existing;
    return netlist_->add_gate(GateType::Not, inv_name,
                              {netlist_->signal(sg_->stg->signal(sig).name)});
  }

  /// Literal signal (plain or inverted) for a cared cube position.
  SignalId literal(std::uint32_t sig, bool positive) {
    if (positive) return netlist_->signal(sg_->stg->signal(sig).name);
    return inverted(sig);
  }

  /// Build AND-OR logic for `cover` and define signal `out_name` with it.
  void build(const std::string& out_name, const std::vector<MinCube>& cover,
             unsigned nvars) {
    XATPG_CHECK_MSG(!cover.empty(),
                    "constant-0 next-state function for " << out_name);
    std::vector<SignalId> terms;
    int cube_index = 0;
    for (const MinCube& cube : cover) {
      XATPG_CHECK_MSG(cube.care != 0,
                      "constant-1 next-state function for " << out_name);
      std::vector<SignalId> lits;
      for (unsigned sig = 0; sig < nvars; ++sig)
        if (cube.care & (1u << sig))
          lits.push_back(literal(sig, (cube.value >> sig) & 1));
      if (lits.size() == 1 && cover.size() > 1) {
        terms.push_back(lits[0]);
      } else if (cover.size() == 1) {
        // Single-cube cover: the term gate *is* the output signal.
        if (lits.size() == 1) {
          netlist_->add_gate(GateType::Buf, out_name, {lits[0]});
        } else {
          netlist_->add_gate(GateType::And, out_name, lits);
        }
        return;
      } else {
        terms.push_back(netlist_->add_gate(
            GateType::And, out_name + "_c" + std::to_string(cube_index),
            lits));
      }
      ++cube_index;
    }
    netlist_->add_gate(GateType::Or, out_name, terms);
  }

 private:
  Netlist* netlist_;
  const StateGraph* sg_;
};

/// Extra redundant consensus cubes: every pairwise consensus term, retained
/// even when contained in an existing cube (modeling SIS's conservative
/// spurious-pulse covers).  Exact duplicates are dropped.
std::size_t add_redundant_consensus(std::vector<MinCube>& cover) {
  std::size_t added = 0;
  const std::size_t original = cover.size();
  for (std::size_t i = 0; i < original; ++i) {
    for (std::size_t j = i + 1; j < original; ++j) {
      MinCube c;
      if (!consensus(cover[i], cover[j], &c)) continue;
      if (std::find(cover.begin(), cover.end(), c) != cover.end()) continue;
      cover.push_back(c);
      ++added;
    }
  }
  return added;
}

}  // namespace

SynthResult synthesize(const StateGraph& sg, const SynthOptions& options) {
  const auto violations = csc_violations(sg);
  XATPG_CHECK_MSG(violations.empty(),
                  "cannot synthesize '" << sg.stg->name()
                                        << "': " << violations.front());
  const unsigned n = static_cast<unsigned>(sg.stg->num_signals());

  SynthResult result;
  Netlist& netlist = result.netlist;
  netlist.set_name(sg.stg->name());

  // Interface first: input signals, then declarations of all logic signals
  // so feedback references resolve.
  for (std::uint32_t sig = 0; sig < n; ++sig)
    if (sg.stg->signal(sig).kind == SignalKind::Input)
      netlist.add_input(sg.stg->signal(sig).name);
  for (std::uint32_t sig = 0; sig < n; ++sig)
    if (sg.stg->signal(sig).kind != SignalKind::Input)
      netlist.declare_signal(sg.stg->signal(sig).name);

  for (std::uint32_t sig = 0; sig < n; ++sig) {
    if (sg.stg->signal(sig).kind == SignalKind::Input) continue;
    const std::string& name = sg.stg->signal(sig).name;

    if (options.style == SynthStyle::SpeedIndependent) {
      const NsFunction set_fn = set_function(sg, sig);
      const NsFunction reset_fn = reset_function(sg, sig);
      auto set_cover = minimize_sop(set_fn.on, set_fn.dc, n);
      auto reset_cover = minimize_sop(reset_fn.on, reset_fn.dc, n);
      XATPG_CHECK_MSG(!set_cover.empty() && !reset_cover.empty(),
                      "signal '" << name << "' never switches");
      result.num_cubes += set_cover.size() + reset_cover.size();

      if (options.architecture == SiArchitecture::StandardC) {
        // Decomposed standard-C architecture: the C-element rises when the
        // set function S is 1 and the reset function R is 0, and falls
        // when S=0 and R=1 — so its second input is the *complement* of R,
        // synthesized directly from R's off-set (same don't-cares).
        auto rstn_cover = minimize_sop(reset_fn.off, reset_fn.dc, n);
        XATPG_CHECK_MSG(!rstn_cover.empty(),
                        "reset of '" << name << "' is a tautology");
        TwoLevelBuilder builder(netlist, sg);
        builder.build(name + "_set", set_cover, n);
        builder.build(name + "_rstn", rstn_cover, n);
        netlist.add_gate(GateType::Celem, name,
                         {netlist.signal(name + "_set"),
                          netlist.signal(name + "_rstn")});
        continue;
      }

      std::vector<std::uint32_t> support = cover_support(set_cover, n);
      for (const std::uint32_t s : cover_support(reset_cover, n))
        support.push_back(s);
      std::sort(support.begin(), support.end());
      support.erase(std::unique(support.begin(), support.end()),
                    support.end());
      std::vector<SignalId> fanins;
      for (const std::uint32_t s : support)
        fanins.push_back(netlist.signal(sg.stg->signal(s).name));

      Cover set_cubes, reset_cubes;
      for (const MinCube& c : set_cover)
        set_cubes.push_back(to_netlist_cube(c, support));
      for (const MinCube& c : reset_cover)
        reset_cubes.push_back(to_netlist_cube(c, support));
      netlist.add_gc(name, fanins, std::move(set_cubes),
                     std::move(reset_cubes));
    } else {
      const NsFunction ns = next_state_function(sg, sig);
      auto cover = minimize_sop(ns.on, ns.dc, n);
      XATPG_CHECK_MSG(!cover.empty(), "signal '" << name << "' is constant 0");
      if (options.hazard_consensus)
        result.num_consensus_cubes += add_consensus_cubes(cover);
      if (options.extra_redundancy)
        result.num_consensus_cubes += add_redundant_consensus(cover);
      result.num_cubes += cover.size();
      TwoLevelBuilder builder(netlist, sg);
      builder.build(name, cover, n);
    }
  }

  for (std::uint32_t sig = 0; sig < n; ++sig)
    if (sg.stg->signal(sig).kind == SignalKind::Output)
      netlist.set_output(sg.stg->signal(sig).name);
  netlist.check_invariants();

  // Reset state: a quiescent SG state (prefer the initial one), extended to
  // all netlist-internal gates by combinational relaxation.
  const auto quiescent = sg.quiescent_states();
  XATPG_CHECK_MSG(!quiescent.empty(),
                  "'" << sg.stg->name() << "' has no quiescent state to reset into");
  std::uint32_t reset_sg_state = quiescent.front();
  for (const std::uint32_t q : quiescent)
    if (q == sg.initial) reset_sg_state = q;

  std::vector<bool> state(netlist.num_signals(), false);
  for (std::uint32_t sig = 0; sig < n; ++sig)
    state[netlist.signal(sg.stg->signal(sig).name)] =
        sg.codes[reset_sg_state][sig];
  // Relax the auxiliary gates (inverters / AND terms / OR trees) until the
  // whole netlist is stable; bounded by the logic depth.
  for (std::size_t pass = 0; pass < netlist.num_signals() + 2; ++pass) {
    bool changed = false;
    for (SignalId s = 0; s < netlist.num_signals(); ++s) {
      if (netlist.is_input(s)) continue;
      const bool target = netlist.eval_gate_bool(s, state);
      if (state[s] != target) {
        state[s] = target;
        changed = true;
      }
    }
    if (!changed) break;
  }
  XATPG_CHECK_MSG(netlist.is_stable_state(state),
                  "'" << sg.stg->name()
                      << "': reset state failed to stabilize — "
                         "implementation disagrees with the SG");
  result.reset_state = std::move(state);
  return result;
}

}  // namespace xatpg
