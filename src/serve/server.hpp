// The xatpg ATPG daemon: a long-lived server that runs Sessions on behalf of
// newline-delimited-JSON clients (see serve/protocol.hpp for the frames and
// docs/PROTOCOL.md for the normative spec).
//
// Architecture
// ------------
//   reader threads (one per connection)
//     parse request lines, answer ping/stats inline, and ADMIT submits:
//     canonicalize the circuit, probe the cross-request result cache (a hit
//     is answered right here, never consuming a queue slot), then try_push
//     onto the bounded job queue — a full queue is a typed ResourceError
//     back to the client, never an unbounded buffer or a hang.
//   worker pool (fixed size, config.workers)
//     pops jobs, builds a Session per job (one session per job — see the
//     contract in xatpg/session.hpp), runs it under the job's CancelToken
//     and cooperative budgets, streams progress frames if requested, and
//     inserts successful results into the cache.
//   cancellation
//     one CancelToken per job, fired by: an explicit {"op":"cancel"}, the
//     client's disconnect (reader EOF fires every in-flight token of that
//     connection), the per-job time budget (enforced from the run's own
//     progress callbacks), or server shutdown for still-queued jobs.
//   shutdown
//     request_shutdown() is async-signal-safe (atomic store + self-pipe
//     write) so the CLI installs it directly as the SIGINT/SIGTERM action;
//     the serving loop then drains: in-flight jobs run to completion,
//     queued jobs get cancelled frames, every connection gets a bye frame,
//     and the process exits 0.
//
// All frame writes to one connection go through a per-connection mutex so
// worker progress frames and reader error frames never interleave bytes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"
#include "xatpg/options.hpp"

namespace xatpg::serve {

struct ServeConfig {
  /// Worker threads executing jobs.  0 is a legal (test) configuration:
  /// jobs are admitted and queued but never executed, which makes
  /// queue-full admission behaviour deterministic to test.
  std::size_t workers = 1;
  /// Bounded job-queue depth; submissions beyond it are rejected with a
  /// typed ResourceError (admission control, not backpressure-by-hanging).
  std::size_t queue_capacity = 16;
  /// Byte cap of the cross-request result cache (0 disables caching).
  std::size_t cache_bytes = std::size_t{8} << 20;
  /// Per-job wall-clock budget, enforced cooperatively from the run's own
  /// progress callbacks (0 = unlimited).  A job over budget is cancelled
  /// and reported with reason "budget".
  double max_job_seconds = 0;
  /// Per-job node-budget ceiling: a request's diff_node_cap is clamped to
  /// this at admission (0 = no clamp).
  std::size_t max_diff_node_cap = 0;
  /// Longest accepted request line; longer lines are a typed error and the
  /// connection is closed (a client that overflows this is not framing).
  std::size_t max_request_bytes = std::size_t{4} << 20;
  /// Options a submit starts from (request "options" override these).
  AtpgOptions defaults;
};

/// Snapshot of server behaviour since start, exposed as the stats frame.
struct ServerStats {
  std::size_t submitted = 0;  ///< admitted submits (queued or cache-served)
  std::size_t completed = 0;  ///< result frames sent (incl. cache hits)
  std::size_t cancelled = 0;  ///< jobs ending cancelled (any reason)
  std::size_t rejected = 0;   ///< submits refused at admission (queue full)
  std::size_t failed = 0;     ///< jobs ending in a typed error
  std::size_t queue_depth = 0;
  std::size_t running = 0;    ///< jobs currently executing on workers
  CacheStats cache;
};

class Server {
 public:
  explicit Server(ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawn the worker pool.  Call once before attaching connections.
  void start();

  /// Serve one established byte stream (socketpair in tests, an accepted
  /// AF_UNIX connection, or stdin/stdout in pipe mode).  Spawns the reader
  /// thread and returns immediately.  `owns_fds` closes the fds at
  /// shutdown.
  void attach(int in_fd, int out_fd, bool owns_fds);

  /// Pipe mode: start(), serve stdin/stdout, block until a shutdown request
  /// or client EOF (whichever first, draining in-flight jobs), then
  /// shutdown().  Returns the process exit code (0 on clean drain).
  int serve_pipe();

  /// Socket mode: start(), listen on an AF_UNIX socket at `path` (an
  /// existing socket file is replaced), accept until a shutdown request,
  /// then shutdown().  Returns the process exit code.
  int serve_unix(const std::string& path);

  /// Async-signal-safe shutdown trigger: atomic store + self-pipe write,
  /// nothing else.  Safe to install directly as a signal action.
  void request_shutdown() noexcept;

  /// Drain and stop: cancels queued jobs, lets in-flight jobs finish,
  /// sends bye frames, joins every thread.  Idempotent; called by the
  /// destructor as a backstop.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;

  /// True when no job is queued or executing (the test suites' drain
  /// barrier).
  [[nodiscard]] bool drained() const;

 private:
  struct Connection;
  struct Job;
  class JobObserver;

  void reader_loop(std::shared_ptr<Connection> conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void admit_submit(const std::shared_ptr<Connection>& conn, Request request);
  void worker_loop();
  void execute(const std::shared_ptr<Job>& job);
  void finish_job(const std::shared_ptr<Job>& job);

  const ServeConfig config_;
  ResultCache cache_;

  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> shut_down_{false};
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe; never drained, POLLIN = stop

  // Job queue + worker pool.
  mutable Mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_ XATPG_GUARDED_BY(queue_mu_);
  std::size_t running_ XATPG_GUARDED_BY(queue_mu_) = 0;
  bool stop_workers_ XATPG_GUARDED_BY(queue_mu_) = false;
  std::vector<std::thread> workers_;

  // Connections + readers.  Connections are append-only until shutdown —
  // a daemon's connection count is bounded by its clients, and keeping the
  // records lets shutdown deliver bye frames to every live stream.
  mutable Mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_ XATPG_GUARDED_BY(conns_mu_);
  std::vector<std::thread> readers_ XATPG_GUARDED_BY(conns_mu_);

  // State watched by the serving loops (serve_pipe/serve_unix): notified on
  // shutdown requests, reader exits and job completions.
  mutable Mutex state_mu_;
  std::condition_variable state_cv_;
  std::thread shutdown_waiter_;  ///< relays the self-pipe into state_cv_

  // Monotonic counters (atomics: bumped from readers and workers alike).
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> cancelled_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> failed_{0};
};

}  // namespace xatpg::serve
