// Wire protocol of the xatpg ATPG daemon (`xatpg serve`): newline-delimited
// JSON frames over a byte stream (a local socket, or stdin/stdout in pipe
// mode).  docs/PROTOCOL.md is the normative spec; this header is the single
// in-tree implementation both the server and the `xatpg client` sender use,
// so the two cannot drift.
//
// Requests (client -> server), one JSON object per line:
//   {"op":"submit","id":ID,"circuit":{...},"faults":F,"options":{...},
//    "progress":BOOL}
//   {"op":"cancel","id":ID} | {"op":"stats"} | {"op":"ping"} |
//   {"op":"shutdown"}
//
// Responses (server -> client), one JSON object per line, every one carrying
// the protocol version under "v":
//   ack | progress | result | cancelled | error | stats | pong | bye
//
// The result payload (serialize_result) is DETERMINISTIC: it contains the
// run's outcomes, sequences and integer statistics but none of the wall
// clocks (those ride on the frame as engine_ms), so a repeat request served
// from the cross-request cache is byte-identical to the cold response, and a
// daemon response is byte-identical to a direct Session run serialized the
// same way — the integration suite asserts exactly that.
#pragma once

#include <cstddef>
#include <string>

#include "xatpg/error.hpp"
#include "xatpg/options.hpp"
#include "xatpg/progress.hpp"
#include "xatpg/types.hpp"

namespace xatpg::serve {

/// Version stamped into every response frame.  Bump on any incompatible
/// frame change and record the history in docs/PROTOCOL.md.
inline constexpr int kProtocolVersion = 1;

// --- requests ---------------------------------------------------------------

struct Request {
  enum class Op { Submit, Cancel, Stats, Ping, Shutdown };
  enum class CircuitFormat { Xnl, Bench, Benchmark };

  Op op = Op::Ping;
  std::string id;  ///< client-chosen job id (submit/cancel)

  // Submit payload.
  CircuitFormat format = CircuitFormat::Benchmark;
  std::string circuit_text;  ///< xnl/bench source text
  std::string benchmark;     ///< benchmark name
  SynthStyle style = SynthStyle::SpeedIndependent;
  std::string faults = "both";  ///< "input" | "output" | "both"
  bool progress = false;        ///< stream progress frames for this job
  AtpgOptions options;          ///< request options over the given defaults
};

/// Parse one request line.  Malformed JSON -> ParseError; a structurally
/// valid frame with an unknown op / circuit format / fault spec / option key
/// -> OptionError (unknown keys inside "options" are rejected rather than
/// ignored: an option typo silently falling back to defaults would change
/// results without any diagnostic).  Unknown top-level keys are ignored for
/// forward compatibility.  `defaults` seeds the options a submit starts
/// from.
[[nodiscard]] Expected<Request> parse_request(const std::string& line,
                                              const AtpgOptions& defaults);

// --- responses --------------------------------------------------------------
// Each builder returns one complete frame including the trailing newline.

[[nodiscard]] std::string ack_frame(const std::string& id,
                                    std::size_t queue_depth);
[[nodiscard]] std::string error_frame(const std::string& id, const Error& error);
[[nodiscard]] std::string progress_frame(const std::string& id,
                                         const RunProgress& progress);
[[nodiscard]] std::string result_frame(const std::string& id,
                                       const std::string& payload, bool cached,
                                       double engine_ms);
[[nodiscard]] std::string cancelled_frame(const std::string& id,
                                          const std::string& reason);
[[nodiscard]] std::string pong_frame();
[[nodiscard]] std::string bye_frame();

/// Serialize a completed run: integer statistics, per-fault outcomes
/// (compact arrays: [site, gate, pin, stuck, covered_by, sequence_index,
/// proven_redundant, gave_up]) and test sequences (one bit-string per
/// vector).  Deliberately excludes every wall-clock field so the payload is
/// a pure function of (circuit, options, faults) — the cache-identity
/// contract above.
[[nodiscard]] std::string serialize_result(const std::string& circuit_name,
                                           const std::string& faults_spec,
                                           const AtpgResult& result);

// --- cache keying -----------------------------------------------------------

/// Fingerprint of every option that can change a run's outcome.  Knobs the
/// engine's determinism suites prove result-invariant — threads (byte-equal
/// results for any worker count), the BDD variable order and the reorder
/// policy (every symbolic query is canonicalized to be order-independent) —
/// are deliberately EXCLUDED, so requests differing only in those share a
/// cache entry.
[[nodiscard]] std::string options_fingerprint(const AtpgOptions& options);

/// Cross-request cache key: canonicalized circuit identity + options
/// fingerprint + fault-universe spec.  `canonical_circuit` is the
/// canonicalization produced by the server's admission path (re-emitted
/// .xnl for text formats; name+style for named benchmarks).
[[nodiscard]] std::string cache_key(const std::string& canonical_circuit,
                                    const AtpgOptions& options,
                                    const std::string& faults_spec);

}  // namespace xatpg::serve
