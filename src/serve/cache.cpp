#include "serve/cache.hpp"

namespace xatpg::serve {

bool ResultCache::lookup(const std::string& key, std::string& payload_out) {
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  // Refresh recency: splice the entry to the MRU front (iterators stay
  // valid, so the index needs no update).
  order_.splice(order_.begin(), order_, it->second);
  payload_out = it->second->payload;
  ++hits_;
  return true;
}

void ResultCache::insert(const std::string& key, const std::string& payload) {
  if (key.size() + payload.size() > capacity_) return;
  MutexLock lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Same key resubmitted (two clients racing the same cold circuit): the
    // engine is deterministic, so the payloads match; just refresh recency.
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.push_front(Entry{key, payload});
  index_.emplace(key, order_.begin());
  bytes_ += entry_bytes(order_.front());
  ++insertions_;
  evict_to_cap();
}

void ResultCache::evict_to_cap() {
  while (bytes_ > capacity_) {
    const Entry& victim = order_.back();
    bytes_ -= entry_bytes(victim);
    index_.erase(victim.key);
    order_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  MutexLock lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = index_.size();
  s.bytes = bytes_;
  s.capacity = capacity_;
  return s;
}

}  // namespace xatpg::serve
