#include "serve/protocol.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace xatpg::serve {

namespace {

/// Longest client-chosen job id the server will echo back.  Ids ride on
/// every frame for the job, so an unbounded id would let one request inflate
/// every response; 256 bytes is generous for any correlation scheme.
constexpr std::size_t kMaxIdBytes = 256;

Error option_error(std::string message) {
  return Error{ErrorCode::OptionError, std::move(message)};
}

/// Read a non-negative integer option ("threads": 4).  Type errors and
/// negative/fractional values are OptionError-shaped CheckErrors caught by
/// the caller.
std::size_t count_option(const json::Value& options, const char* key,
                         std::size_t fallback) {
  const json::Value* value = options.find(key);
  if (value == nullptr) return fallback;
  XATPG_CHECK_MSG(value->type == json::Value::Type::Number,
                  "option '" << key << "' is not a number");
  // Bound BEFORE casting: for a hostile magnitude like 1e300 the size_t cast
  // itself is UB.  2^53 keeps the round-trip comparison below exact.
  XATPG_CHECK_MSG(value->number >= 0 && value->number <= 9007199254740992.0 &&
                      value->number == static_cast<double>(static_cast<std::size_t>(
                                           value->number)),
                  "option '" << key << "' is not a non-negative integer");
  return static_cast<std::size_t>(value->number);
}

Expected<void> parse_options(const json::Value& options, AtpgOptions& out) {
  // Reject unknown keys instead of ignoring them: an option typo silently
  // falling back to the default would change results with no diagnostic.
  static constexpr const char* kKnown[] = {
      "threads",       "seed",     "k",       "random_budget",
      "random_walk_len", "diff_depth", "diff_node_cap", "reorder",
      "classify",      "use_activation"};
  for (const auto& [key, value] : options.object) {
    (void)value;
    bool known = false;
    for (const char* k : kKnown) known = known || key == k;
    if (!known)
      return option_error("unknown option '" + key +
                          "' (known: threads, seed, k, random_budget, "
                          "random_walk_len, diff_depth, diff_node_cap, "
                          "reorder, classify, use_activation)");
  }
  out.threads = count_option(options, "threads", out.threads);
  out.seed = count_option(options, "seed", static_cast<std::size_t>(out.seed));
  out.k = count_option(options, "k", out.k);
  out.sim.k = out.k;
  out.random_budget = count_option(options, "random_budget", out.random_budget);
  out.random_walk_len =
      count_option(options, "random_walk_len", out.random_walk_len);
  out.diff_depth = count_option(options, "diff_depth", out.diff_depth);
  out.diff_node_cap = count_option(options, "diff_node_cap", out.diff_node_cap);
  out.reorder.enabled =
      json::bool_field(options, "reorder", out.reorder.enabled);
  out.classify_undetectable =
      json::bool_field(options, "classify", out.classify_undetectable);
  out.use_activation =
      json::bool_field(options, "use_activation", out.use_activation);
  return {};
}

}  // namespace

Expected<Request> parse_request(const std::string& line,
                                const AtpgOptions& defaults) {
  json::Value root;
  try {
    root = json::parse(line);
  } catch (const CheckError& e) {
    return Error{ErrorCode::ParseError,
                 std::string("malformed request: ") + e.what()};
  }
  if (root.type != json::Value::Type::Object)
    return Error{ErrorCode::ParseError, "request is not a JSON object"};

  Request request;
  request.options = defaults;
  try {
    const std::string op = json::string_field(root, "op");
    request.id = json::string_field(root, "id");
    if (request.id.size() > kMaxIdBytes)
      return option_error("job id exceeds " + std::to_string(kMaxIdBytes) +
                          " bytes");
    if (op == "ping") {
      request.op = Request::Op::Ping;
      return request;
    }
    if (op == "stats") {
      request.op = Request::Op::Stats;
      return request;
    }
    if (op == "shutdown") {
      request.op = Request::Op::Shutdown;
      return request;
    }
    if (op == "cancel") {
      request.op = Request::Op::Cancel;
      if (request.id.empty()) return option_error("cancel needs a job 'id'");
      return request;
    }
    if (op != "submit")
      return option_error("unknown op '" + op +
                          "' (known: submit, cancel, stats, ping, shutdown)");

    request.op = Request::Op::Submit;
    if (request.id.empty()) return option_error("submit needs a job 'id'");

    const json::Value* circuit = root.find("circuit");
    if (circuit == nullptr || circuit->type != json::Value::Type::Object)
      return option_error("submit needs a 'circuit' object");
    const std::string format = json::string_field(*circuit, "format");
    if (format == "xnl" || format == "bench") {
      request.format = format == "xnl" ? Request::CircuitFormat::Xnl
                                       : Request::CircuitFormat::Bench;
      request.circuit_text = json::string_field(*circuit, "text");
      if (request.circuit_text.empty())
        return option_error("circuit format '" + format +
                            "' needs a non-empty 'text'");
    } else if (format == "benchmark") {
      request.format = Request::CircuitFormat::Benchmark;
      request.benchmark = json::string_field(*circuit, "name");
      if (request.benchmark.empty())
        return option_error("circuit format 'benchmark' needs a 'name'");
    } else {
      return option_error("unknown circuit format '" + format +
                          "' (known: xnl, bench, benchmark)");
    }
    const std::string style = json::string_field(*circuit, "style");
    if (style == "bd") {
      request.style = SynthStyle::BoundedDelay;
    } else if (!style.empty() && style != "si") {
      return option_error("unknown circuit style '" + style +
                          "' (known: si, bd)");
    }

    if (const json::Value* faults = root.find("faults")) {
      XATPG_CHECK_MSG(faults->type == json::Value::Type::String,
                      "field 'faults' is not a string");
      if (faults->string != "input" && faults->string != "output" &&
          faults->string != "both")
        return option_error("unknown fault universe '" + faults->string +
                            "' (known: input, output, both)");
      request.faults = faults->string;
    }
    request.progress = json::bool_field(root, "progress", false);
    if (const json::Value* options = root.find("options")) {
      if (options->type != json::Value::Type::Object)
        return option_error("'options' is not an object");
      if (const auto parsed = parse_options(*options, request.options);
          !parsed)
        return parsed.error();
    }
  } catch (const CheckError& e) {
    // Wrong-typed fields in a structurally valid frame: the client named a
    // real key but gave it a value of the wrong shape.
    return option_error(e.what());
  }
  return request;
}

// --- responses --------------------------------------------------------------

namespace {

std::ostringstream frame_head(const char* type, const std::string& id) {
  std::ostringstream os;
  os << "{\"v\":" << kProtocolVersion << ",\"type\":\"" << type << '"';
  if (!id.empty()) os << ",\"id\":\"" << json::escape(id) << '"';
  return os;
}

}  // namespace

std::string ack_frame(const std::string& id, std::size_t queue_depth) {
  std::ostringstream os = frame_head("ack", id);
  os << ",\"queue_depth\":" << queue_depth << "}\n";
  return os.str();
}

std::string error_frame(const std::string& id, const Error& error) {
  std::ostringstream os = frame_head("error", id);
  os << ",\"error\":{\"code\":\"" << error_code_name(error.code)
     << "\",\"message\":\"" << json::escape(error.message) << "\"}}\n";
  return os.str();
}

std::string progress_frame(const std::string& id,
                           const RunProgress& progress) {
  std::ostringstream os = frame_head("progress", id);
  os << ",\"phase\":\"" << run_phase_name(progress.phase)
     << "\",\"faults_total\":" << progress.faults_total
     << ",\"faults_resolved\":" << progress.faults_resolved
     << ",\"covered\":" << progress.covered
     << ",\"sequences\":" << progress.sequences_committed
     << ",\"elapsed_seconds\":" << json::number(progress.elapsed_seconds)
     << "}\n";
  return os.str();
}

std::string result_frame(const std::string& id, const std::string& payload,
                         bool cached, double engine_ms) {
  std::ostringstream os = frame_head("result", id);
  os << ",\"cached\":" << (cached ? "true" : "false")
     << ",\"engine_ms\":" << json::number(engine_ms) << ",\"result\":" << payload
     << "}\n";
  return os.str();
}

std::string cancelled_frame(const std::string& id, const std::string& reason) {
  std::ostringstream os = frame_head("cancelled", id);
  os << ",\"reason\":\"" << json::escape(reason) << "\"}\n";
  return os.str();
}

std::string pong_frame() { return frame_head("pong", "").str() + "}\n"; }
std::string bye_frame() { return frame_head("bye", "").str() + "}\n"; }

std::string serialize_result(const std::string& circuit_name,
                             const std::string& faults_spec,
                             const AtpgResult& result) {
  std::ostringstream os;
  const AtpgStats& s = result.stats;
  os << "{\"circuit\":\"" << json::escape(circuit_name) << "\",\"faults\":\""
     << json::escape(faults_spec) << "\",\"cancelled\":"
     << (result.cancelled ? "true" : "false") << ",\"stats\":{\"total\":"
     << s.total_faults << ",\"covered\":" << s.covered << ",\"rnd\":"
     << s.by_random << ",\"three_phase\":" << s.by_three_phase
     << ",\"sim\":" << s.by_fault_sim << ",\"undetected\":" << s.undetected
     << ",\"proven_redundant\":" << s.proven_redundant
     << ",\"gave_up\":" << s.gave_up
     << ",\"coverage\":" << json::number(s.coverage()) << "},\"outcomes\":[";
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const FaultOutcome& o = result.outcomes[i];
    os << (i == 0 ? "" : ",") << '['
       << (o.fault.site == Fault::Site::GatePin ? 0 : 1) << ',' << o.fault.gate
       << ',' << o.fault.pin << ',' << (o.fault.stuck_value ? 1 : 0) << ','
       << static_cast<int>(o.covered_by) << ',' << o.sequence_index << ','
       << (o.proven_redundant ? 1 : 0) << ',' << (o.gave_up ? 1 : 0) << ']';
  }
  os << "],\"sequences\":[";
  for (std::size_t i = 0; i < result.sequences.size(); ++i) {
    os << (i == 0 ? "" : ",") << '[';
    const TestSequence& seq = result.sequences[i];
    for (std::size_t v = 0; v < seq.vectors.size(); ++v) {
      os << (v == 0 ? "" : ",") << '"';
      for (const bool bit : seq.vectors[v]) os << (bit ? '1' : '0');
      os << '"';
    }
    os << ']';
  }
  os << "]}";
  return os.str();
}

// --- cache keying -----------------------------------------------------------

std::string options_fingerprint(const AtpgOptions& options) {
  std::ostringstream os;
  // threads, order and the reorder policy are absent by design: the
  // determinism suites (test_parallel_atpg, test_differential) prove results
  // byte-identical across all of them, so including any would only fragment
  // the cache.
  os << "k=" << options.k << ";seed=" << options.seed
     << ";rb=" << options.random_budget << ";rwl=" << options.random_walk_len
     << ";dd=" << options.diff_depth << ";dnc=" << options.diff_node_cap
     << ";pfs=" << json::number(options.per_fault_seconds)
     << ";simk=" << options.sim.k << ";cc=" << options.sim.candidate_cap
     << ";act=" << (options.use_activation ? 1 : 0)
     << ";cls=" << (options.classify_undetectable ? 1 : 0);
  return os.str();
}

std::string cache_key(const std::string& canonical_circuit,
                      const AtpgOptions& options,
                      const std::string& faults_spec) {
  // 0x1f (ASCII unit separator) cannot appear in canonical circuit text or
  // in the fingerprint, so concatenation is collision-free.
  return canonical_circuit + '\x1f' + options_fingerprint(options) + '\x1f' +
         faults_spec;
}

}  // namespace xatpg::serve
