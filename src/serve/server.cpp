#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "benchmarks/benchmarks.hpp"
#include "netlist/netlist.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "xatpg/session.hpp"

namespace xatpg::serve {

namespace {

/// Why a job ended cancelled (stored as an atomic int on the job; first
/// writer wins so the reported reason matches the cause that fired first).
enum JobCancelReason : int {
  kNotCancelled = 0,
  kClientCancel,  ///< explicit {"op":"cancel"}
  kDisconnect,    ///< client closed its stream mid-run
  kShutdown,      ///< server shutting down before the job started
  kBudget,        ///< per-job time budget exceeded
};

const char* cancel_reason_name(int reason) {
  switch (reason) {
    case kClientCancel: return "cancel";
    case kDisconnect: return "disconnect";
    case kShutdown: return "shutdown";
    case kBudget: return "budget";
    default: return "cancelled";
  }
}

/// SIGPIPE would kill the daemon the first time it writes to a client that
/// disconnected; with it ignored, write() fails with EPIPE and the
/// connection is retired gracefully.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

/// Best-effort id recovery for error frames on requests parse_request
/// rejected: correlation beats a blank id, but a malformed line may simply
/// not have one.
std::string best_effort_id(const std::string& line) {
  try {
    const json::Value root = json::parse(line);
    if (root.type == json::Value::Type::Object)
      return json::string_field(root, "id");
  } catch (const CheckError&) {
  }
  return {};
}

}  // namespace

// --- connection -------------------------------------------------------------

struct Server::Connection {
  int in_fd = -1;
  int out_fd = -1;
  bool owns_fds = false;
  std::atomic<bool> alive{true};

  Mutex write_mu;
  Mutex jobs_mu;
  /// Tokens of this connection's admitted-but-unfinished jobs, so
  /// disconnect and {"op":"cancel"} can reach them.
  std::map<std::string, std::shared_ptr<Job>> active
      XATPG_GUARDED_BY(jobs_mu);

  /// Write one complete frame; serialized per connection so concurrent
  /// worker/reader frames never interleave bytes.  A failed write (client
  /// gone) retires the connection.
  bool send(const std::string& frame) {
    MutexLock lock(write_mu);
    return send_locked(frame);
  }

  /// send() body for callers that already hold write_mu (admission holds it
  /// across queue-push + ack so a fast worker's result frame cannot reach
  /// the wire before the ack does).
  bool send_locked(const std::string& frame) XATPG_REQUIRES(write_mu) {
    if (!alive.load(std::memory_order_acquire)) return false;
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          ::write(out_fd, frame.data() + off, frame.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        alive.store(false, std::memory_order_release);
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }
};

// --- job --------------------------------------------------------------------

struct Server::Job {
  std::string id;
  Request request;
  std::shared_ptr<Connection> conn;
  std::string canonical;      ///< canonicalized circuit identity
  std::string circuit_label;  ///< human label for the result payload
  std::string key;            ///< cross-request cache key
  CancelToken cancel;
  std::atomic<int> reason{kNotCancelled};

  void cancel_with(int reason_code) {
    int expected = kNotCancelled;
    reason.compare_exchange_strong(expected, reason_code,
                                   std::memory_order_relaxed);
    cancel.request_cancel();
  }
};

/// Per-job observer on the run's calling thread: forwards progress frames
/// when the client asked for them and enforces the cooperative time budget
/// (both ride the engine's own between-faults checkpoints, so neither needs
/// an extra thread).
class Server::JobObserver : public RunObserver {
 public:
  JobObserver(std::shared_ptr<Job> job, double budget_seconds)
      : job_(std::move(job)), budget_seconds_(budget_seconds) {}

  void on_progress(const RunProgress& progress) override {
    if (budget_seconds_ > 0 && progress.elapsed_seconds > budget_seconds_)
      job_->cancel_with(kBudget);
    if (job_->request.progress &&
        job_->conn->alive.load(std::memory_order_acquire)) {
      if (!job_->conn->send(progress_frame(job_->id, progress)))
        job_->cancel_with(kDisconnect);
    }
  }

 private:
  std::shared_ptr<Job> job_;
  const double budget_seconds_;
};

// --- lifecycle --------------------------------------------------------------

Server::Server(ServeConfig config)
    : config_(config), cache_(config.cache_bytes) {
  ignore_sigpipe_once();
  XATPG_CHECK_MSG(::pipe(wake_pipe_) == 0, "serve: cannot create wake pipe");
}

Server::~Server() { shutdown(); }

void Server::start() {
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  // Relay the async-signal-safe self-pipe into the condition variable the
  // serving loops wait on (notify_all is not legal from a signal handler).
  shutdown_waiter_ = std::thread([this] {
    struct pollfd pfd = {wake_pipe_[0], POLLIN, 0};
    while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
    }
    MutexLock lock(state_mu_);
    state_cv_.notify_all();
  });
}

void Server::request_shutdown() noexcept {
  shutting_down_.store(true, std::memory_order_release);
  const char byte = 1;
  // The pipe is intentionally never drained: one byte keeps POLLIN raised
  // for every poller forever, which is the broadcast we want.
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::shutdown() {
  if (shut_down_.exchange(true)) return;
  request_shutdown();

  // Cancel everything still queued; in-flight jobs drain to completion.
  std::deque<std::shared_ptr<Job>> queued;
  {
    MutexLock lock(queue_mu_);
    queued.swap(queue_);
    stop_workers_ = true;
    queue_cv_.notify_all();
  }
  for (const std::shared_ptr<Job>& job : queued) {
    job->cancel_with(kShutdown);
    job->conn->send(cancelled_frame(job->id, cancel_reason_name(kShutdown)));
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    finish_job(job);
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  if (shutdown_waiter_.joinable()) shutdown_waiter_.join();

  // Every live stream gets a farewell, then the readers (woken by the
  // self-pipe) are joined and owned fds closed.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    MutexLock lock(conns_mu_);
    conns = conns_;
    readers.swap(readers_);
  }
  for (const std::shared_ptr<Connection>& conn : conns)
    conn->send(bye_frame());
  for (std::thread& reader : readers) reader.join();
  for (const std::shared_ptr<Connection>& conn : conns) {
    conn->alive.store(false, std::memory_order_release);
    if (conn->owns_fds) {
      ::close(conn->in_fd);
      if (conn->out_fd != conn->in_fd) ::close(conn->out_fd);
    }
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

// --- serving loops ----------------------------------------------------------

void Server::attach(int in_fd, int out_fd, bool owns_fds) {
  auto conn = std::make_shared<Connection>();
  conn->in_fd = in_fd;
  conn->out_fd = out_fd;
  conn->owns_fds = owns_fds;
  MutexLock lock(conns_mu_);
  conns_.push_back(conn);
  readers_.emplace_back([this, conn] { reader_loop(conn); });
}

int Server::serve_pipe() {
  start();
  attach(STDIN_FILENO, STDOUT_FILENO, /*owns_fds=*/false);
  std::shared_ptr<Connection> conn;
  {
    MutexLock lock(conns_mu_);
    conn = conns_.back();
  }
  {
    MutexLock lock(state_mu_);
    // Exit on an explicit shutdown request, or once the client closed the
    // pipe and everything it submitted has drained.
    lock.wait(state_cv_, [&] {
      return shutting_down_.load(std::memory_order_acquire) ||
             (!conn->alive.load(std::memory_order_acquire) && drained());
    });
  }
  shutdown();
  return 0;
}

int Server::serve_unix(const std::string& path) {
  start();
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  XATPG_CHECK_MSG(listen_fd >= 0, "serve: cannot create AF_UNIX socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  XATPG_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                  "serve: socket path too long: " << path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  XATPG_CHECK_MSG(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "serve: cannot bind '" << path << "': " << std::strerror(errno));
  XATPG_CHECK_MSG(::listen(listen_fd, 64) == 0, "serve: listen failed");

  while (!shutting_down_.load(std::memory_order_acquire)) {
    struct pollfd pfds[2] = {{listen_fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) break;  // shutdown requested
    if ((pfds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client >= 0) attach(client, client, /*owns_fds=*/true);
    }
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  shutdown();
  return 0;
}

// --- reader side ------------------------------------------------------------

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  while (!shutting_down_.load(std::memory_order_acquire) &&
         conn->alive.load(std::memory_order_acquire)) {
    struct pollfd pfds[2] = {{conn->in_fd, POLLIN, 0},
                             {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) return;  // shutdown: bye is sent centrally
    if (pfds[0].revents == 0) continue;
    const ssize_t n = ::read(conn->in_fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF or error: the client is gone
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > config_.max_request_bytes &&
        buffer.find('\n') == std::string::npos) {
      conn->send(error_frame(
          "", Error{ErrorCode::ResourceError,
                    "request line exceeds " +
                        std::to_string(config_.max_request_bytes) +
                        " bytes"}));
      break;  // a client that overflows the line cap is not framing
    }
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) handle_line(conn, line);
    }
    buffer.erase(0, start);
  }
  // Shutdown observed at the loop condition (the shutdown op arrived on
  // THIS connection): same as the wake-pipe path above — the connection is
  // still live, and shutdown() sends the farewell centrally.
  if (shutting_down_.load(std::memory_order_acquire)) return;
  // Disconnect: every job this client still has in flight is cancelled; the
  // jobs themselves are retired by the worker (or already drained).
  conn->alive.store(false, std::memory_order_release);
  std::vector<std::shared_ptr<Job>> orphans;
  {
    MutexLock lock(conn->jobs_mu);
    for (const auto& [id, job] : conn->active) orphans.push_back(job);
  }
  for (const std::shared_ptr<Job>& job : orphans) job->cancel_with(kDisconnect);
  MutexLock lock(state_mu_);
  state_cv_.notify_all();
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  Expected<Request> parsed = parse_request(line, config_.defaults);
  if (!parsed) {
    conn->send(error_frame(best_effort_id(line), parsed.error()));
    return;
  }
  Request& request = *parsed;
  switch (request.op) {
    case Request::Op::Ping:
      conn->send(pong_frame());
      return;
    case Request::Op::Stats: {
      const ServerStats s = stats();
      std::ostringstream os;
      os << "{\"v\":" << kProtocolVersion << ",\"type\":\"stats\""
         << ",\"submitted\":" << s.submitted << ",\"completed\":" << s.completed
         << ",\"cancelled\":" << s.cancelled << ",\"rejected\":" << s.rejected
         << ",\"failed\":" << s.failed << ",\"queue_depth\":" << s.queue_depth
         << ",\"running\":" << s.running << ",\"workers\":" << config_.workers
         << ",\"queue_capacity\":" << config_.queue_capacity
         << ",\"cache\":{\"hits\":" << s.cache.hits
         << ",\"misses\":" << s.cache.misses
         << ",\"insertions\":" << s.cache.insertions
         << ",\"evictions\":" << s.cache.evictions
         << ",\"entries\":" << s.cache.entries << ",\"bytes\":" << s.cache.bytes
         << ",\"capacity\":" << s.cache.capacity << "}}\n";
      conn->send(os.str());
      return;
    }
    case Request::Op::Shutdown:
      request_shutdown();
      return;
    case Request::Op::Cancel: {
      std::shared_ptr<Job> job;
      {
        MutexLock lock(conn->jobs_mu);
        const auto it = conn->active.find(request.id);
        if (it != conn->active.end()) job = it->second;
      }
      if (job == nullptr) {
        conn->send(error_frame(
            request.id, Error{ErrorCode::OptionError,
                              "no active job '" + request.id + "'"}));
        return;
      }
      job->cancel_with(kClientCancel);
      return;
    }
    case Request::Op::Submit:
      admit_submit(conn, std::move(request));
      return;
  }
}

void Server::admit_submit(const std::shared_ptr<Connection>& conn,
                          Request request) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    conn->send(error_frame(request.id, Error{ErrorCode::ResourceError,
                                             "server is shutting down"}));
    return;
  }
  {
    MutexLock lock(conn->jobs_mu);
    if (conn->active.count(request.id) != 0) {
      conn->send(error_frame(
          request.id, Error{ErrorCode::OptionError,
                            "job id '" + request.id + "' already active"}));
      return;
    }
  }

  // Per-job node budget: clamp, don't reject — the job still runs, just
  // under the server's ceiling.
  if (config_.max_diff_node_cap != 0 &&
      request.options.diff_node_cap > config_.max_diff_node_cap)
    request.options.diff_node_cap = config_.max_diff_node_cap;
  if (const auto valid = request.options.validate(); !valid) {
    conn->send(error_frame(request.id, valid.error()));
    return;
  }

  // Canonicalize the circuit identity.  Text formats are parsed and
  // re-emitted as .xnl so formatting differences (whitespace, bench vs xnl
  // source) cannot fragment the cache; named benchmarks are identified by
  // (name, style) without paying for synthesis on the connection thread.
  auto job = std::make_shared<Job>();
  job->id = request.id;
  job->conn = conn;
  try {
    switch (request.format) {
      case Request::CircuitFormat::Xnl:
        job->canonical = write_xnl_string(parse_xnl_string(request.circuit_text));
        break;
      case Request::CircuitFormat::Bench:
        job->canonical =
            write_xnl_string(parse_bench_string(request.circuit_text));
        break;
      case Request::CircuitFormat::Benchmark:
        // Resolve the name NOW (cheap: STG spec only, no synthesis) so an
        // unknown benchmark is a synchronous OptionError, not an ack
        // followed by a worker-side failure.
        if (request.benchmark != "fig1a" && request.benchmark != "fig1b") {
          try {
            (void)benchmark_stg(request.benchmark);
          } catch (const CheckError&) {
            conn->send(error_frame(
                request.id,
                Error{ErrorCode::OptionError,
                      "unknown benchmark '" + request.benchmark + "'"}));
            return;
          }
        }
        job->canonical =
            std::string("benchmark\x1e") + request.benchmark + '\x1e' +
            (request.style == SynthStyle::BoundedDelay ? "bd" : "si");
        break;
    }
  } catch (const CheckError& e) {
    conn->send(
        error_frame(request.id, Error{ErrorCode::ParseError, e.what()}));
    return;
  }
  job->circuit_label = request.format == Request::CircuitFormat::Benchmark
                           ? request.benchmark
                           : "inline";
  job->key = cache_key(job->canonical, request.options, request.faults);
  job->request = std::move(request);

  // Cache probe at admission: popular circuits are answered on the
  // connection thread and never consume a queue slot or a worker.
  std::string payload;
  if (cache_.lookup(job->key, payload)) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    conn->send(result_frame(job->id, payload, /*cached=*/true,
                            /*engine_ms=*/0.0));
    return;
  }

  // Register BEFORE queueing so a fast worker cannot finish the job (and
  // no-op its unregistration) before the registration lands.
  {
    MutexLock lock(conn->jobs_mu);
    if (!conn->active.emplace(job->id, job).second) {
      conn->send(error_frame(
          job->id, Error{ErrorCode::OptionError,
                         "job id '" + job->id + "' already active"}));
      return;
    }
  }
  // Bounded admission: a full queue is a typed rejection, never a hang.
  // The queue push and the ack write happen under one hold of the
  // connection's write lock: a worker could otherwise pop the job and have
  // its result frame on the wire before this thread writes the ack.
  bool full = false;
  {
    MutexLock wlock(conn->write_mu);
    std::size_t depth = 0;
    {
      MutexLock lock(queue_mu_);
      if (queue_.size() >= config_.queue_capacity) {
        full = true;
      } else {
        queue_.push_back(job);
        depth = queue_.size();
        queue_cv_.notify_one();
      }
    }
    if (!full) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      conn->send_locked(ack_frame(job->id, depth));
    }
  }
  if (full) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    finish_job(job);
    conn->send(error_frame(
        job->id, Error{ErrorCode::ResourceError,
                       "job queue full (capacity " +
                           std::to_string(config_.queue_capacity) + ")"}));
  }
}

// --- worker side ------------------------------------------------------------

void Server::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(queue_mu_);
      lock.wait(queue_cv_, [&] { return !queue_.empty() || stop_workers_; });
      if (queue_.empty()) return;  // stop requested and nothing left
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    execute(job);
    {
      MutexLock lock(queue_mu_);
      --running_;
    }
    MutexLock lock(state_mu_);
    state_cv_.notify_all();
  }
}

void Server::execute(const std::shared_ptr<Job>& job) {
  const Request& req = job->request;
  const auto send_cancelled = [&] {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    job->conn->send(cancelled_frame(
        job->id,
        cancel_reason_name(job->reason.load(std::memory_order_relaxed))));
    finish_job(job);
  };
  if (job->cancel.cancelled()) {
    // Cancelled while queued (client cancel or disconnect).
    send_cancelled();
    return;
  }

  Expected<Session> session =
      req.format == Request::CircuitFormat::Benchmark
          ? Session::from_benchmark(req.benchmark, req.style, req.options)
          : Session::from_xnl(job->canonical, req.options);
  if (!session) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    job->conn->send(error_frame(job->id, session.error()));
    finish_job(job);
    return;
  }
  job->circuit_label = session->circuit_name();

  // One run per submit: input|output|both concatenate into one universe so
  // the result payload covers exactly what the request asked for.
  std::vector<Fault> universe;
  if (req.faults == "input" || req.faults == "both")
    universe = session->input_stuck_faults();
  if (req.faults == "output" || req.faults == "both") {
    const auto output = session->output_stuck_faults();
    universe.insert(universe.end(), output.begin(), output.end());
  }

  JobObserver observer(job, config_.max_job_seconds);
  const auto t0 = std::chrono::steady_clock::now();
  const Expected<AtpgResult> result =
      session->run(universe, &observer, &job->cancel);
  const double engine_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  if (!result) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    job->conn->send(error_frame(job->id, result.error()));
    finish_job(job);
    return;
  }
  if (result->cancelled) {
    // The token fired mid-run (disconnect, explicit cancel, budget, or
    // shutdown racing the pop); the partial result is discarded, never
    // cached.
    send_cancelled();
    return;
  }
  const std::string payload =
      serialize_result(job->circuit_label, req.faults, *result);
  // Only complete, uncancelled results are cacheable: a partial payload
  // replayed to the next client would silently under-report coverage.
  cache_.insert(job->key, payload);
  completed_.fetch_add(1, std::memory_order_relaxed);
  job->conn->send(result_frame(job->id, payload, /*cached=*/false, engine_ms));
  finish_job(job);
}

void Server::finish_job(const std::shared_ptr<Job>& job) {
  MutexLock lock(job->conn->jobs_mu);
  job->conn->active.erase(job->id);
}

// --- stats ------------------------------------------------------------------

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  {
    MutexLock lock(queue_mu_);
    s.queue_depth = queue_.size();
    s.running = running_;
  }
  s.cache = cache_.stats();
  return s;
}

bool Server::drained() const {
  MutexLock lock(queue_mu_);
  return queue_.empty() && running_ == 0;
}

}  // namespace xatpg::serve
