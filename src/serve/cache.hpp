// Cross-request result cache of the serve subsystem: completed result
// payloads keyed by serve::cache_key (canonical circuit bytes + options
// fingerprint + fault universe), so a repeat request for a popular circuit
// is answered in ~zero engine time without re-synthesis or re-search.
//
// Byte-capped LRU: the cap bounds the sum of key + payload bytes, entries
// are evicted least-recently-USED first (a hit refreshes recency), and a
// payload larger than the whole cap is simply not admitted.  Thread-safe;
// every query/insert is a single short critical section, so connection
// threads can probe the cache at admission time without serializing behind
// running jobs.
//
// Only payloads from *successful, uncancelled* runs may be inserted — a
// cancelled run's payload reflects a truncated fault universe and would be
// wrong to replay for the next client.  The server enforces this at the
// call site; the cache itself stores what it is given.
#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace xatpg::serve {

/// Monotonic counters describing cache behaviour since construction, plus a
/// snapshot of current occupancy.  Exposed verbatim in the daemon's stats
/// frames so tests (and operators) can observe hits without timing.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;   ///< current entry count
  std::size_t bytes = 0;     ///< current key+payload bytes
  std::size_t capacity = 0;  ///< configured byte cap
};

class ResultCache {
 public:
  /// `capacity_bytes` caps the total key + payload bytes held (0 disables
  /// caching entirely: every lookup is a miss, every insert a no-op).
  explicit ResultCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Look up a payload; copies it into `payload_out` and refreshes the
  /// entry's recency on hit.  Counts a hit or miss either way.
  [[nodiscard]] bool lookup(const std::string& key, std::string& payload_out);

  /// Insert (or overwrite) an entry, then evict least-recently-used entries
  /// until the byte cap holds again.  Oversized payloads (> capacity) are
  /// rejected without disturbing existing entries.
  void insert(const std::string& key, const std::string& payload);

  [[nodiscard]] CacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string payload;
  };

  [[nodiscard]] static std::size_t entry_bytes(const Entry& e) {
    return e.key.size() + e.payload.size();
  }

  /// Evict from the LRU tail until bytes_ <= capacity_.
  void evict_to_cap() XATPG_REQUIRES(mu_);

  const std::size_t capacity_;
  mutable Mutex mu_;
  /// MRU at front, LRU at back; the map holds iterators into the list.
  std::list<Entry> order_ XATPG_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      XATPG_GUARDED_BY(mu_);
  std::size_t bytes_ XATPG_GUARDED_BY(mu_) = 0;
  std::size_t hits_ XATPG_GUARDED_BY(mu_) = 0;
  std::size_t misses_ XATPG_GUARDED_BY(mu_) = 0;
  std::size_t insertions_ XATPG_GUARDED_BY(mu_) = 0;
  std::size_t evictions_ XATPG_GUARDED_BY(mu_) = 0;
};

}  // namespace xatpg::serve
