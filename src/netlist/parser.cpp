// Text-format readers/writers for the native .xnl format and ISCAS-style
// .bench files.
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

#include "netlist/netlist.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace xatpg {

namespace {

Cube parse_cube(const std::string& text, std::size_t arity, int line_no) {
  Cube cube;
  XATPG_CHECK_MSG(text.size() == arity,
                  "line " << line_no << ": cube '" << text << "' has "
                          << text.size() << " literals, expected " << arity);
  for (char c : text) {
    switch (c) {
      case '0': cube.lits.push_back(0); break;
      case '1': cube.lits.push_back(1); break;
      case '-': cube.lits.push_back(-1); break;
      default:
        XATPG_CHECK_MSG(false, "line " << line_no << ": bad cube literal '"
                                       << c << "'");
    }
  }
  return cube;
}

Cover parse_cover(const std::string& field, std::size_t arity, int line_no) {
  Cover cover;
  for (const std::string& tok : split_ws(field)) {
    for (const std::string& cube_text : split(tok, ',')) {
      if (cube_text.empty()) continue;
      cover.push_back(parse_cube(cube_text, arity, line_no));
    }
  }
  return cover;
}

// Parsed names must survive canonicalization: serve caches on the bytes of
// write_xnl(parse(...)), where whitespace splits tokens, ':' splits .sop/.gc
// fields and '#' starts a comment.  A name containing any of those would
// write a netlist that re-parses as a *different* circuit (e.g. the .bench
// argument list "AND(a b)" used to intern "a b" verbatim), so both parsers
// reject them here.  Programmatic names (fault injection's "#stuck" etc.)
// never pass through text and stay unrestricted.
const std::string& checked_name(const std::string& name, int line_no) {
  XATPG_CHECK_MSG(!name.empty(), "line " << line_no << ": empty signal name");
  for (const char c : name)
    XATPG_CHECK_MSG(
        std::isgraph(static_cast<unsigned char>(c)) && c != ':' && c != '#',
        "line " << line_no << ": signal name '" << name << "' contains '" << c
                << "': names must be printable with no whitespace, ':' or "
                   "'#'");
  return name;
}

std::string cube_to_string(const Cube& cube) {
  std::string s;
  for (const std::int8_t lit : cube.lits)
    s += (lit == 1) ? '1' : (lit == 0) ? '0' : '-';
  return s;
}

std::string cover_to_string(const Cover& cover) {
  std::string s;
  for (std::size_t i = 0; i < cover.size(); ++i) {
    if (i) s += ' ';
    s += cube_to_string(cover[i]);
  }
  return s;
}

}  // namespace

Netlist parse_xnl(std::istream& in) {
  Netlist netlist;
  std::string line;
  int line_no = 0;
  bool ended = false;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto text = std::string(trim(line));
    if (text.empty()) continue;
    XATPG_CHECK_MSG(!ended, "line " << line_no << ": content after .end");

    const auto tokens = split_ws(text);
    const std::string& keyword = tokens[0];
    if (keyword == ".model") {
      XATPG_CHECK_MSG(tokens.size() == 2, "line " << line_no << ": .model NAME");
      netlist.set_name(tokens[1]);
    } else if (keyword == ".inputs") {
      for (std::size_t i = 1; i < tokens.size(); ++i)
        netlist.add_input(checked_name(tokens[i], line_no));
    } else if (keyword == ".outputs") {
      for (std::size_t i = 1; i < tokens.size(); ++i)
        netlist.declare_signal(checked_name(tokens[i], line_no));
      // Output markings are applied after all declarations (below we mark
      // immediately; declare_signal makes the id available).
      for (std::size_t i = 1; i < tokens.size(); ++i)
        netlist.set_output(netlist.signal(tokens[i]));
    } else if (keyword == ".gate") {
      XATPG_CHECK_MSG(tokens.size() >= 3,
                      "line " << line_no << ": .gate TYPE out in...");
      const GateType type = parse_gate_type(tokens[1]);
      std::vector<SignalId> fanins;
      for (std::size_t i = 3; i < tokens.size(); ++i)
        fanins.push_back(netlist.declare_signal(checked_name(tokens[i], line_no)));
      netlist.add_gate(type, checked_name(tokens[2], line_no), fanins);
    } else if (keyword == ".sop" || keyword == ".gc") {
      // .sop out : in1 in2 : cubes      /  .gc out : ins : set : reset
      const auto fields = split(text.substr(keyword.size()), ':');
      const bool is_gc = keyword == ".gc";
      XATPG_CHECK_MSG(fields.size() == (is_gc ? 4u : 3u),
                      "line " << line_no << ": expected " << (is_gc ? 4 : 3)
                              << " ':'-separated fields");
      const auto out_names = split_ws(fields[0]);
      XATPG_CHECK_MSG(out_names.size() == 1,
                      "line " << line_no << ": exactly one output name");
      std::vector<SignalId> fanins;
      for (const std::string& in_name : split_ws(fields[1]))
        fanins.push_back(netlist.declare_signal(checked_name(in_name, line_no)));
      if (is_gc) {
        netlist.add_gc(checked_name(out_names[0], line_no), fanins,
                       parse_cover(fields[2], fanins.size(), line_no),
                       parse_cover(fields[3], fanins.size(), line_no));
      } else {
        netlist.add_sop(checked_name(out_names[0], line_no), fanins,
                        parse_cover(fields[2], fanins.size(), line_no));
      }
    } else if (keyword == ".end") {
      ended = true;
    } else {
      XATPG_CHECK_MSG(false, "line " << line_no << ": unknown directive '"
                                     << keyword << "'");
    }
  }
  netlist.check_invariants();
  return netlist;
}

Netlist parse_xnl_string(const std::string& text) {
  std::istringstream in(text);
  return parse_xnl(in);
}

void write_xnl(const Netlist& netlist, std::ostream& out) {
  out << ".model " << (netlist.name().empty() ? "anon" : netlist.name())
      << "\n.inputs";
  for (const SignalId s : netlist.inputs()) out << " " << netlist.signal_name(s);
  out << "\n.outputs";
  for (const SignalId s : netlist.outputs())
    out << " " << netlist.signal_name(s);
  out << "\n";
  for (SignalId s = 0; s < netlist.num_signals(); ++s) {
    const Gate& g = netlist.gate(s);
    if (g.type == GateType::Input) continue;
    if (g.type == GateType::Sop || g.type == GateType::Gc) {
      out << (g.type == GateType::Sop ? ".sop " : ".gc ") << g.name << " :";
      for (const SignalId f : g.fanins) out << " " << netlist.signal_name(f);
      out << " : " << cover_to_string(g.cover);
      if (g.type == GateType::Gc) out << " : " << cover_to_string(g.reset_cover);
      out << "\n";
    } else {
      out << ".gate " << gate_type_name(g.type) << " " << g.name;
      for (const SignalId f : g.fanins) out << " " << netlist.signal_name(f);
      out << "\n";
    }
  }
  out << ".end\n";
}

std::string write_xnl_string(const Netlist& netlist) {
  std::ostringstream os;
  write_xnl(netlist, os);
  return os.str();
}

Netlist parse_bench(std::istream& in) {
  Netlist netlist("bench");
  std::string line;
  int line_no = 0;
  std::vector<std::string> pending_outputs;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::string text(trim(line));
    if (text.empty()) continue;

    if (starts_with(text, "INPUT(")) {
      const auto close = text.find(')');
      XATPG_CHECK_MSG(close != std::string::npos,
                      "line " << line_no << ": missing ')'");
      netlist.add_input(
          checked_name(std::string(trim(text.substr(6, close - 6))), line_no));
      continue;
    }
    if (starts_with(text, "OUTPUT(")) {
      const auto close = text.find(')');
      XATPG_CHECK_MSG(close != std::string::npos,
                      "line " << line_no << ": missing ')'");
      pending_outputs.emplace_back(trim(text.substr(7, close - 7)));
      continue;
    }
    const auto eq = text.find('=');
    XATPG_CHECK_MSG(eq != std::string::npos,
                    "line " << line_no << ": expected assignment");
    const std::string out_name(trim(text.substr(0, eq)));
    std::string rhs(trim(text.substr(eq + 1)));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    XATPG_CHECK_MSG(open != std::string::npos && close != std::string::npos &&
                        close > open,
                    "line " << line_no << ": expected TYPE(args)");
    const std::string type_name(trim(rhs.substr(0, open)));
    XATPG_CHECK_MSG(type_name != "DFF" && type_name != "dff",
                    "line " << line_no
                            << ": DFF not supported (asynchronous model)");
    std::vector<SignalId> fanins;
    for (const std::string& arg : split(rhs.substr(open + 1, close - open - 1),
                                        ','))
      fanins.push_back(netlist.declare_signal(
          checked_name(std::string(trim(arg)), line_no)));
    netlist.add_gate(parse_gate_type(type_name), checked_name(out_name, line_no),
                     fanins);
  }
  for (const std::string& name : pending_outputs) netlist.set_output(name);
  netlist.check_invariants();
  return netlist;
}

Netlist parse_bench_string(const std::string& text) {
  std::istringstream in(text);
  return parse_bench(in);
}

}  // namespace xatpg
