#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xatpg {

SignalId Netlist::intern(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const auto id = static_cast<SignalId>(gates_.size());
  Gate g;
  g.name = name;
  gates_.push_back(std::move(g));
  defined_.push_back(false);
  by_name_.emplace(name, id);
  return id;
}

SignalId Netlist::declare_signal(const std::string& name) {
  return intern(name);
}

SignalId Netlist::add_input(const std::string& name) {
  const SignalId id = intern(name);
  XATPG_CHECK_MSG(!defined_[id], "signal '" << name << "' defined twice");
  gates_[id].type = GateType::Input;
  defined_[id] = true;
  inputs_.push_back(id);
  return id;
}

SignalId Netlist::add_gate(GateType type, const std::string& name,
                           const std::vector<SignalId>& fanins) {
  XATPG_CHECK_MSG(type != GateType::Input, "use add_input for primary inputs");
  XATPG_CHECK_MSG(type != GateType::Sop && type != GateType::Gc,
                  "use add_sop/add_gc for cover-based gates");
  const SignalId id = intern(name);
  XATPG_CHECK_MSG(!defined_[id], "signal '" << name << "' defined twice");
  gates_[id].type = type;
  gates_[id].fanins = fanins;
  defined_[id] = true;
  return id;
}

SignalId Netlist::add_sop(const std::string& name,
                          const std::vector<SignalId>& fanins, Cover cover) {
  const SignalId id = intern(name);
  XATPG_CHECK_MSG(!defined_[id], "signal '" << name << "' defined twice");
  gates_[id].type = GateType::Sop;
  gates_[id].fanins = fanins;
  gates_[id].cover = std::move(cover);
  defined_[id] = true;
  return id;
}

SignalId Netlist::add_gc(const std::string& name,
                         const std::vector<SignalId>& fanins, Cover set_cover,
                         Cover reset_cover) {
  const SignalId id = intern(name);
  XATPG_CHECK_MSG(!defined_[id], "signal '" << name << "' defined twice");
  gates_[id].type = GateType::Gc;
  gates_[id].fanins = fanins;
  gates_[id].cover = std::move(set_cover);
  gates_[id].reset_cover = std::move(reset_cover);
  defined_[id] = true;
  return id;
}

void Netlist::redirect_pin(SignalId gate, std::size_t pin,
                           SignalId new_source) {
  XATPG_CHECK(gate < gates_.size() && new_source < gates_.size());
  XATPG_CHECK(pin < gates_[gate].fanins.size());
  gates_[gate].fanins[pin] = new_source;
}

void Netlist::set_output(SignalId s) {
  XATPG_CHECK(s < gates_.size());
  if (std::find(outputs_.begin(), outputs_.end(), s) == outputs_.end())
    outputs_.push_back(s);
}

void Netlist::set_output(const std::string& name) { set_output(signal(name)); }

bool Netlist::is_output(SignalId s) const {
  return std::find(outputs_.begin(), outputs_.end(), s) != outputs_.end();
}

std::optional<SignalId> Netlist::find_signal(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

SignalId Netlist::signal(const std::string& name) const {
  auto s = find_signal(name);
  XATPG_CHECK_MSG(s.has_value(), "unknown signal '" << name << "'");
  return *s;
}

std::size_t Netlist::num_pins() const {
  std::size_t pins = 0;
  for (const Gate& g : gates_) pins += g.fanins.size();
  return pins;
}

void Netlist::check_invariants() const {
  for (SignalId s = 0; s < gates_.size(); ++s) {
    const Gate& g = gates_[s];
    XATPG_CHECK_MSG(defined_[s], "signal '" << g.name << "' has no driver");
    for (const SignalId f : g.fanins)
      XATPG_CHECK_MSG(f < gates_.size(),
                      "gate '" << g.name << "' has out-of-range fanin");
    switch (g.type) {
      case GateType::Input:
        XATPG_CHECK_MSG(g.fanins.empty(), "input '" << g.name << "' has fanins");
        break;
      case GateType::Buf:
      case GateType::Not:
        XATPG_CHECK_MSG(g.fanins.size() == 1,
                        "gate '" << g.name << "' needs exactly one fanin");
        break;
      case GateType::Maj:
        XATPG_CHECK_MSG(g.fanins.size() == 3,
                        "MAJ gate '" << g.name << "' needs three fanins");
        break;
      case GateType::Celem:
        XATPG_CHECK_MSG(g.fanins.size() >= 2,
                        "C-element '" << g.name << "' needs >= 2 fanins");
        break;
      case GateType::Sop:
        for (const Cube& c : g.cover)
          XATPG_CHECK_MSG(c.lits.size() == g.fanins.size(),
                          "SOP cube arity mismatch in '" << g.name << "'");
        break;
      case GateType::Gc:
        for (const Cube& c : g.cover)
          XATPG_CHECK_MSG(c.lits.size() == g.fanins.size(),
                          "GC set-cube arity mismatch in '" << g.name << "'");
        for (const Cube& c : g.reset_cover)
          XATPG_CHECK_MSG(c.lits.size() == g.fanins.size(),
                          "GC reset-cube arity mismatch in '" << g.name << "'");
        break;
      default:
        XATPG_CHECK_MSG(g.fanins.size() >= 2,
                        "gate '" << g.name << "' needs >= 2 fanins");
        break;
    }
  }
  // Note: a netlist may legitimately have zero primary inputs — e.g. the
  // faulty materialization of a circuit whose only input is stuck.
}

std::vector<std::vector<FeedbackArc>> Netlist::fanouts() const {
  std::vector<std::vector<FeedbackArc>> out(gates_.size());
  for (SignalId s = 0; s < gates_.size(); ++s)
    for (std::size_t pin = 0; pin < gates_[s].fanins.size(); ++pin)
      out[gates_[s].fanins[pin]].push_back(FeedbackArc{s, pin});
  return out;
}

std::vector<std::uint32_t> Netlist::scc_ids(std::uint32_t* num_sccs) const {
  // Iterative Tarjan over the signal graph (edges fanin -> gate).
  const auto n = static_cast<std::uint32_t>(gates_.size());
  std::vector<std::uint32_t> index(n, 0), low(n, 0), comp(n, 0);
  std::vector<bool> on_stack(n, false), visited(n, false);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 1, next_comp = 0;

  struct Frame {
    std::uint32_t node;
    std::size_t child;
  };
  const auto fo = fanouts();

  for (std::uint32_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    std::vector<Frame> frames{{root, 0}};
    visited[root] = true;
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const std::uint32_t u = fr.node;
      if (fr.child < fo[u].size()) {
        const std::uint32_t v = fo[u][fr.child++].gate;
        if (!visited[v]) {
          visited[v] = true;
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0});
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], index[v]);
        }
      } else {
        if (low[u] == index[u]) {
          while (true) {
            const std::uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == u) break;
          }
          ++next_comp;
        }
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().node] = std::min(low[frames.back().node], low[u]);
      }
    }
  }
  if (num_sccs) *num_sccs = next_comp;
  return comp;
}

std::vector<FeedbackArc> Netlist::feedback_arcs() const {
  // DFS over the signal graph; a fanin pin is a feedback arc when the fanin
  // is grey (on the current DFS path) — plus self-loops (state-holding
  // gates reading their own output).  Restricting attention to back arcs
  // breaks every cycle.
  const auto n = static_cast<std::uint32_t>(gates_.size());
  enum : std::uint8_t { White, Grey, Black };
  std::vector<std::uint8_t> color(n, White);
  std::vector<FeedbackArc> cuts;

  struct Frame {
    std::uint32_t node;
    std::size_t pin;
  };
  for (std::uint32_t root = 0; root < n; ++root) {
    if (color[root] != White) continue;
    std::vector<Frame> frames{{root, 0}};
    color[root] = Grey;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const std::uint32_t u = fr.node;
      const auto& fanins = gates_[u].fanins;
      if (fr.pin < fanins.size()) {
        const std::size_t pin = fr.pin++;
        const std::uint32_t v = fanins[pin];
        if (v == u || color[v] == Grey) {
          cuts.push_back(FeedbackArc{u, pin});  // back arc: cut here
        } else if (color[v] == White) {
          color[v] = Grey;
          frames.push_back({v, 0});
        }
      } else {
        color[u] = Black;
        frames.pop_back();
      }
    }
  }
  return cuts;
}

std::vector<SignalId> Netlist::topo_order(
    const std::vector<FeedbackArc>& cuts) const {
  const auto n = static_cast<std::uint32_t>(gates_.size());
  // Effective fanin counts with cut pins removed.
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<std::vector<bool>> cut_pin(n);
  for (std::uint32_t s = 0; s < n; ++s)
    cut_pin[s].assign(gates_[s].fanins.size(), false);
  for (const FeedbackArc& a : cuts) {
    XATPG_CHECK(a.gate < n && a.pin < gates_[a.gate].fanins.size());
    cut_pin[a.gate][a.pin] = true;
  }
  for (std::uint32_t s = 0; s < n; ++s)
    for (std::size_t pin = 0; pin < gates_[s].fanins.size(); ++pin)
      if (!cut_pin[s][pin]) ++pending[s];

  std::vector<SignalId> order;
  order.reserve(n);
  std::vector<SignalId> ready;
  for (std::uint32_t s = 0; s < n; ++s)
    if (pending[s] == 0) ready.push_back(s);
  const auto fo = fanouts();
  while (!ready.empty()) {
    const SignalId u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (const FeedbackArc& arc : fo[u]) {
      if (cut_pin[arc.gate][arc.pin]) continue;
      if (--pending[arc.gate] == 0) ready.push_back(arc.gate);
    }
  }
  XATPG_CHECK_MSG(order.size() == n,
                  "cycles remain after cutting " << cuts.size() << " arcs");
  return order;
}

bool Netlist::eval_gate_bool(SignalId s, const std::vector<bool>& state) const {
  const Gate& g = gates_[s];
  std::vector<bool> fanin_vals;
  fanin_vals.reserve(g.fanins.size());
  for (const SignalId f : g.fanins) fanin_vals.push_back(state[f]);
  return eval_gate(g, fanin_vals, static_cast<bool>(state[s]), BoolOps{});
}

bool Netlist::is_gate_stable(SignalId s, const std::vector<bool>& state) const {
  return eval_gate_bool(s, state) == state[s];
}

bool Netlist::is_stable_state(const std::vector<bool>& state) const {
  XATPG_CHECK(state.size() == gates_.size());
  for (SignalId s = 0; s < gates_.size(); ++s)
    if (!is_gate_stable(s, state)) return false;
  return true;
}

}  // namespace xatpg
